// Command camasm assembles Cambricon assembly into its 64-bit binary
// program image.
//
// Usage:
//
//	camasm [-o out.bin] [-list] prog.cam
//
// With -list, the assembled program is printed as a numbered listing with
// hexadecimal instruction words instead of (or in addition to) the binary.
package main

import (
	"flag"
	"fmt"
	"os"

	"cambricon"
	"cambricon/internal/asm"
	"cambricon/internal/core"
)

func main() {
	out := flag.String("o", "", "output binary path (default: stdout listing only)")
	list := flag.Bool("list", false, "print a numbered listing with encodings")
	version := flag.Bool("version", false, "print the simulator version and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: camasm [-o out.bin] [-list] prog.cam\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *version {
		fmt.Printf("camasm %s (cambricon-bench-sim)\n", cambricon.Version)
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	img, err := core.EncodeProgram(prog.Instructions)
	if err != nil {
		fatal(err)
	}
	if *list || *out == "" {
		for pc, inst := range prog.Instructions {
			w, _ := core.Encode(inst)
			fmt.Printf("%4d  %016x  %s\n", pc, w, inst)
		}
		fmt.Printf("# %d instructions, %d bytes\n", prog.Len(), len(img))
	}
	if *out != "" {
		if err := os.WriteFile(*out, img, 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "camasm:", err)
	os.Exit(1)
}
