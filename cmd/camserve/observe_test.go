package main

// Tests for the observability loop (observe.go, autoscale.go): the
// sampled-history endpoints, the SLO-driven readiness degrade, the
// pressure-aware Retry-After, and the metrics-driven pool autoscaler.
// Everything runs under an injected clock with observeTick driven
// directly — no wall-clock sleeps, no background sampler goroutine.

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"cambricon/internal/metrics"
	"cambricon/internal/tsdb"
)

// obsClock is a hand-cranked clock shared between the test goroutine
// and the HTTP handler goroutines (which read it through tsdb queries).
type obsClock struct {
	mu sync.Mutex
	t  time.Time
}

func newObsClock() *obsClock {
	return &obsClock{t: time.UnixMilli(1_700_000_000_000)}
}

func (c *obsClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *obsClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// observeServer builds a server with the sampler enabled under an
// injected clock. The observe goroutine is never started; tests call
// s.observeTick() themselves after advancing the clock.
func observeServer(t *testing.T, mutate func(*serverConfig)) (*server, *httptest.Server, *obsClock) {
	t.Helper()
	clock := newObsClock()
	cfg := serverConfig{
		seed: 7, warm: true, predecode: true,
		maxInflight: 2, ledgerSize: 16,
		sampleInterval: time.Second,
		clock:          clock.now,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, ts := testServerCfg(t, cfg)
	return s, ts, clock
}

// queueWait returns the labelled queue-wait histogram the admission
// path observes into, so tests can synthesize congestion history.
func queueWait(s *server) *metrics.Histogram {
	return s.reg.Histogram(metricQueueWait, "seconds spent queued for a run slot, by benchmark",
		queueWaitBuckets, metrics.L("benchmark", "MLP"))
}

// get fetches a path and returns status and body.
func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestObservabilityEndpointsDisabled: without -sample-interval the
// history endpoints explain themselves with a 404 instead of serving
// empty data.
func TestObservabilityEndpointsDisabled(t *testing.T) {
	_, ts := testServer(t, 1, 8)
	for _, path := range []string{"/vars", "/alerts", "/dash"} {
		code, body := get(t, ts, path)
		if code != http.StatusNotFound {
			t.Fatalf("GET %s = %d without sampler, want 404", path, code)
		}
		if !strings.Contains(body, "sample-interval") {
			t.Fatalf("GET %s body %q does not point at -sample-interval", path, body)
		}
	}
}

// TestVarsEndpoint: sampled history comes back as JSON with the
// documented envelope, and a malformed window is a 400.
func TestVarsEndpoint(t *testing.T) {
	s, ts, clock := observeServer(t, nil)
	queueWait(s).Observe(0.0001) // series must exist before the baseline pass
	s.observeTick()              // baseline pass
	queueWait(s).Observe(0.01)
	clock.advance(time.Second)
	s.observeTick()

	code, body := get(t, ts, "/vars?window=5m")
	if code != http.StatusOK {
		t.Fatalf("GET /vars = %d, want 200: %s", code, body)
	}
	var vars struct {
		Now      int64 `json:"now_ms"`
		Passes   int64 `json:"passes"`
		Capacity int   `json:"capacity"`
		Series   []struct {
			Name string `json:"name"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("GET /vars is not JSON: %v\n%s", err, body)
	}
	if vars.Passes != 2 || vars.Capacity <= 0 || vars.Now != clock.now().UnixMilli() {
		t.Fatalf("vars envelope %+v disagrees with the injected clock (want passes=2, now=%d)",
			vars, clock.now().UnixMilli())
	}
	found := false
	for _, sr := range vars.Series {
		if strings.HasPrefix(sr.Name, metricQueueWait) {
			found = true
		}
	}
	if !found {
		t.Fatalf("queue-wait series missing from /vars: %s", body)
	}

	if code, _ := get(t, ts, "/vars?window=bogus"); code != http.StatusBadRequest {
		t.Fatalf("GET /vars?window=bogus = %d, want 400", code)
	}
}

// TestAlertsAndReadyzDegrade: sustained over-threshold queue waits push
// the default queue-wait-fast rule into fast-burn, which surfaces in
// /alerts and degrades /readyz to 503 until the burn clears.
func TestAlertsAndReadyzDegrade(t *testing.T) {
	s, ts, clock := observeServer(t, nil)
	queueWait(s).Observe(0.0001) // series must exist before the baseline pass
	s.observeTick()              // baseline

	if code, body := get(t, ts, "/readyz"); code != http.StatusOK {
		t.Fatalf("healthy /readyz = %d: %s", code, body)
	}
	code, body := get(t, ts, "/alerts")
	if code != http.StatusOK {
		t.Fatalf("GET /alerts = %d: %s", code, body)
	}

	// Every request spending a full second queued blows the 25.6ms
	// threshold: bad fraction 1.0 against a 1% budget is a 100x burn,
	// far over the 14.4 fast-burn bar in both windows.
	h := queueWait(s)
	for i := 0; i < 50; i++ {
		h.Observe(1.0)
	}
	clock.advance(time.Second)
	s.observeTick()

	code, body = get(t, ts, "/alerts")
	if code != http.StatusOK {
		t.Fatalf("GET /alerts = %d: %s", code, body)
	}
	var alerts struct {
		Alerts []struct {
			Name  string `json:"name"`
			State string `json:"state"`
		} `json:"alerts"`
		FastBurning []string `json:"fast_burning"`
	}
	if err := json.Unmarshal([]byte(body), &alerts); err != nil {
		t.Fatalf("GET /alerts is not JSON: %v\n%s", err, body)
	}
	burning := false
	for _, a := range alerts.Alerts {
		if a.Name == "queue-wait-fast" && a.State == tsdb.StateFastBurn {
			burning = true
		}
	}
	if !burning || len(alerts.FastBurning) == 0 {
		t.Fatalf("queue-wait-fast not fast-burning after sustained 1s waits: %s", body)
	}

	code, body = get(t, ts, "/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "queue-wait-fast") {
		t.Fatalf("/readyz during fast-burn = %d %q, want 503 naming queue-wait-fast", code, body)
	}
}

// TestShedRetryAfterTracksQueueWait: with queue-wait history available a
// shed request's Retry-After stretches to the recent p90 instead of the
// blind 1..4s jitter — a client told to come back in a few seconds
// during 8-second queues would only be shed again.
func TestShedRetryAfterTracksQueueWait(t *testing.T) {
	s, ts, clock := observeServer(t, func(cfg *serverConfig) {
		cfg.maxInflight = 1
		cfg.queueDepth = 0
	})
	h := queueWait(s)
	h.Observe(0.0001) // series must exist before the baseline pass
	s.observeTick()   // baseline
	for i := 0; i < 20; i++ {
		h.Observe(8.0)
	}
	clock.advance(time.Second)
	s.observeTick()

	s.adm.slots <- struct{}{} // occupy the only slot so every POST sheds
	defer func() { <-s.adm.slots }()
	resp, _ := postRun(t, ts, "MLP")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed = %d, want 503", resp.StatusCode)
	}
	hint, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("unparsable Retry-After %q: %v", resp.Header.Get("Retry-After"), err)
	}
	// The jittered fallback never exceeds 4; a pressure-derived hint from
	// 8s queue waits lands well above it, clamped to the 30s cap.
	if hint < 5 || hint > retryAfterMax {
		t.Fatalf("Retry-After = %d under 8s queue waits, want pressure-derived hint in [5, %d]",
			hint, retryAfterMax)
	}
}

// TestAutoscalerScalesUpAndDown drives the acceptance criterion end to
// end under the injected clock: queue pressure grows the pool (idle
// machines appear before any request needs them, scale-up counter
// moves), quiescence shrinks it back to the floor and releases the
// prepared snapshots, and the service still serves afterwards.
func TestAutoscalerScalesUpAndDown(t *testing.T) {
	s, ts, clock := observeServer(t, func(cfg *serverConfig) {
		cfg.autoscaleSpec = "min=0,max=4,step=2,idle=3s,window=2s"
	})
	h := queueWait(s)
	h.Observe(0.0001) // series must exist before the baseline pass
	s.observeTick()   // baseline

	// One real run so prepared snapshots exist for the drop to release.
	if resp, _ := postRun(t, ts, "MLP"); resp.StatusCode != http.StatusOK {
		t.Fatalf("priming run = %d, want 200", resp.StatusCode)
	}

	// Pressure phase: queued requests observed in two consecutive ticks.
	for tick := 0; tick < 2; tick++ {
		h.Observe(0.05)
		clock.advance(time.Second)
		s.observeTick()
	}
	if idle := s.suite.PoolIdle(); idle < 2 {
		t.Fatalf("pool idle = %d after sustained pressure, want prewarmed machines (target max=4)", idle)
	}
	page := scrape(t, ts)
	if got := metricValue(t, page, metricPoolScaleUp); got < 1 {
		t.Fatalf("%s = %v after pressure, want >= 1", metricPoolScaleUp, got)
	}
	if got := metricValue(t, page, metricPoolTarget); got < 2 {
		t.Fatalf("%s = %v after pressure, want >= 2", metricPoolTarget, got)
	}

	// Quiescence: no new observations; tick past the window and the idle
	// deadline until the pool is back at the floor.
	for tick := 0; tick < 10; tick++ {
		clock.advance(time.Second)
		s.observeTick()
	}
	if idle := s.suite.PoolIdle(); idle != 0 {
		t.Fatalf("pool idle = %d after quiescence, want 0 (min=0)", idle)
	}
	page = scrape(t, ts)
	if got := metricValue(t, page, metricPoolScaleDown); got < 1 {
		t.Fatalf("%s = %v after quiescence, want >= 1", metricPoolScaleDown, got)
	}
	if got := metricValue(t, page, metricPoolTarget); got != 0 {
		t.Fatalf("%s = %v after quiescence, want 0", metricPoolTarget, got)
	}
	if got := metricValue(t, page, "cambricon_snapshot_prepared"); got != 0 {
		t.Fatalf("prepared snapshots = %v after quiesced drop, want 0", got)
	}

	// The scaled-to-zero service still serves: the next run rebuilds its
	// snapshot and machine on demand.
	if resp, rec := postRun(t, ts, "MLP"); resp.StatusCode != http.StatusOK || rec.Cycles <= 0 {
		t.Fatalf("post-shrink run = %d cycles=%d, want 200 with cycles", resp.StatusCode, rec.Cycles)
	}
}

// TestDashEndpoint: the dashboard renders HTML with sparklines for the
// sampled families and is byte-deterministic under the frozen clock.
func TestDashEndpoint(t *testing.T) {
	s, ts, clock := observeServer(t, nil)
	s.observeTick()
	queueWait(s).Observe(0.01)
	clock.advance(time.Second)
	s.observeTick()

	code, body := get(t, ts, "/dash")
	if code != http.StatusOK {
		t.Fatalf("GET /dash = %d", code)
	}
	for _, want := range []string{"<svg", "cambricon_serve_queue_wait_seconds", "queue-wait-fast"} {
		if !strings.Contains(body, want) {
			t.Fatalf("GET /dash missing %q:\n%.2000s", want, body)
		}
	}
	_, again := get(t, ts, "/dash")
	if body != again {
		t.Fatal("two /dash renders under a frozen clock differ — rendering is not deterministic")
	}
}

// TestParseAutoscaleErrors pins the -autoscale grammar diagnostics.
func TestParseAutoscaleErrors(t *testing.T) {
	good, err := parseAutoscale("min=1,max=8,step=2,idle=30s,window=5s")
	if err != nil {
		t.Fatal(err)
	}
	if good.min != 1 || good.max != 8 || good.step != 2 || good.idle != 30*time.Second || good.window != 5*time.Second {
		t.Fatalf("parsed spec %+v does not match input", good)
	}
	for _, spec := range []string{
		"min",         // no '='
		"min=-1",      // negative count
		"min=x",       // not a number
		"idle=0s",     // non-positive duration
		"window=fast", // unparsable duration
		"burst=3",     // unknown key
		"min=4,max=2", // inverted bounds
	} {
		if _, err := parseAutoscale(spec); err == nil {
			t.Fatalf("parseAutoscale(%q) accepted a bad spec", spec)
		}
	}
}

// TestObservabilityFlagValidation: -slo and -autoscale without
// -sample-interval are configuration errors, not silent no-ops, and a
// bad -slo spec is rejected at startup.
func TestObservabilityFlagValidation(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	base := serverConfig{seed: 7, warm: true, maxInflight: 1, ledgerSize: 4}

	cfg := base
	cfg.sloSpec = "x=latency:m:0.1:0.01"
	if _, err := newServer(cfg, logger); err == nil {
		t.Fatal("-slo without -sample-interval was accepted")
	}
	cfg = base
	cfg.autoscaleSpec = "max=2"
	if _, err := newServer(cfg, logger); err == nil {
		t.Fatal("-autoscale without -sample-interval was accepted")
	}
	cfg = base
	cfg.sampleInterval = time.Second
	cfg.sloSpec = "not-a-rule"
	if _, err := newServer(cfg, logger); err == nil {
		t.Fatal("malformed -slo spec was accepted")
	}
	cfg = base
	cfg.sampleInterval = time.Second
	cfg.autoscaleSpec = "min=4,max=2"
	if _, err := newServer(cfg, logger); err == nil {
		t.Fatal("inverted -autoscale bounds were accepted")
	}
}
