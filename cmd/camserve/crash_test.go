package main

// Crash-safety tests (docs/ROBUSTNESS.md, "Serving-layer robustness"):
// restart recovery over a shared WAL directory, per-request panic
// isolation under chaos, injected restore failures, per-request
// deadlines, and end-to-end survival of a torn WAL append. The
// SIGKILL-a-real-process variant lives in `make smoke-crash`.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cambricon/internal/ledger"
)

func getRuns(t *testing.T, ts *httptest.Server) []runRecord {
	t.Helper()
	resp, err := http.Get(ts.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Runs []runRecord `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.Runs
}

func findRun(runs []runRecord, id int64) (runRecord, bool) {
	for _, r := range runs {
		if r.ID == id {
			return r, true
		}
	}
	return runRecord{}, false
}

// TestCrashRecoveryAcrossRestart is the kill-and-restart criterion,
// in-process: a server dies (no shutdown, no Close — the SIGKILL shape)
// with one finished run and one still in flight; a second server over
// the same WAL directory serves the finished run back, surfaces the
// in-flight one as interrupted, continues the ID sequence, and fresh
// runs reproduce the recovered stats digest bit for bit.
func TestCrashRecoveryAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := serverConfig{seed: 7, warm: true, predecode: true, maxInflight: 2, ledgerSize: 16, walDir: dir}
	s1, ts1 := testServerCfg(t, cfg)
	resp, rec1 := postRun(t, ts1, "MLP")
	if resp.StatusCode != http.StatusOK || rec1.StatsDigest == "" {
		t.Fatalf("run 1 = %d, digest %q", resp.StatusCode, rec1.StatsDigest)
	}
	// A run accepted and started but never finished: the in-flight-at-
	// crash shape. Only transient events reach the WAL.
	id2 := s1.ledger.NewID()
	row := ledger.Row{ID: id2, Benchmark: "Conv", ConfigKey: s1.configKey,
		Start: time.Now().UTC().Format(time.RFC3339Nano), Status: ledger.StatusAccepted}
	s1.append(context.Background(), row)
	row.Status = ledger.StatusRunning
	s1.append(context.Background(), row)
	ts1.Close() // crash: no drain, no ledger.Close

	s2, ts2 := testServerCfg(t, cfg)
	if s2.recovery.Rows != 2 || s2.recovery.Interrupted != 1 {
		t.Fatalf("recovery %+v, want 2 rows with 1 interrupted", s2.recovery)
	}
	runs := getRuns(t, ts2)
	r1, ok := findRun(runs, rec1.ID)
	if !ok || r1.Status != "ok" || !r1.Recovered || r1.StatsDigest != rec1.StatsDigest {
		t.Fatalf("recovered run 1 = %+v (found %v), want recovered ok with digest %q", r1, ok, rec1.StatsDigest)
	}
	r2, ok := findRun(runs, id2)
	if !ok || r2.Status != "interrupted" || !r2.Recovered || r2.Error == "" {
		t.Fatalf("recovered run 2 = %+v (found %v), want recovered interrupted", r2, ok)
	}
	// IDs stay monotonic and fresh runs agree with recovered history.
	resp, rec3 := postRun(t, ts2, "MLP")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart run = %d", resp.StatusCode)
	}
	if rec3.ID <= id2 {
		t.Fatalf("post-restart run id %d did not advance past recovered high-water %d", rec3.ID, id2)
	}
	if rec3.Recovered {
		t.Fatalf("live run %+v marked recovered", rec3)
	}
	if rec3.StatsDigest != rec1.StatsDigest {
		t.Fatalf("post-restart digest %q != pre-crash digest %q; stats drifted across restart",
			rec3.StatsDigest, rec1.StatsDigest)
	}
}

// TestChaosPanicCostsOne500NotTheDaemon: with panic=1 every simulation
// panics; each request must come back as a 500 with a failed ledger row
// while the daemon keeps answering.
func TestChaosPanicCostsOne500NotTheDaemon(t *testing.T) {
	_, ts := testServerCfg(t, serverConfig{
		seed: 7, warm: true, predecode: true, maxInflight: 2, ledgerSize: 8,
		chaosSpec: "panic=1",
	})
	for i := 0; i < 3; i++ {
		resp, _ := postRun(t, ts, "MLP")
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("chaos-panic run %d = %d, want 500", i, resp.StatusCode)
		}
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("daemon died under chaos: %v", err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz after chaos panics = %d", hresp.StatusCode)
	}
	runs := getRuns(t, ts)
	if len(runs) != 3 {
		t.Fatalf("%d ledger rows, want 3", len(runs))
	}
	for _, r := range runs {
		if r.Status != "failed" || r.HTTPStatus != http.StatusInternalServerError || !strings.Contains(r.Error, "panic") {
			t.Fatalf("chaos-panic row %+v, want failed/500 with the panic surfaced", r)
		}
	}
}

// TestChaosRestoreFailureIsA500: an injected snapshot-restore failure
// is this run's 500, and the next chaos-free slot still works (the
// suite-level test proves the pool is unpoisoned; here we prove the
// HTTP mapping).
func TestChaosRestoreFailureIsA500(t *testing.T) {
	_, ts := testServerCfg(t, serverConfig{
		seed: 7, warm: true, predecode: true, maxInflight: 2, ledgerSize: 8,
		chaosSpec: "restore-fail=1",
	})
	resp, _ := postRun(t, ts, "MLP")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("chaos-restore-fail run = %d, want 500", resp.StatusCode)
	}
	runs := getRuns(t, ts)
	if len(runs) != 1 || runs[0].Status != "failed" || !strings.Contains(runs[0].Error, "injected") {
		t.Fatalf("ledger rows %+v, want one failed row naming the injected failure", runs)
	}
}

// TestRequestTimeoutWhileQueued: a client deadline expires while the
// request waits for a slot — 504, a timeout ledger row, and the slot
// holder is unaffected.
func TestRequestTimeoutWhileQueued(t *testing.T) {
	s, ts := testServerCfg(t, serverConfig{
		seed: 7, warm: true, predecode: true, maxInflight: 1, queueDepth: 4, ledgerSize: 8,
	})
	s.adm.slots <- struct{}{} // hold the only slot for the whole test
	defer func() { <-s.adm.slots }()

	body, _ := json.Marshal(runRequest{Benchmark: "MLP"})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Request-Timeout", "75ms")
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("queued-past-deadline POST /run = %d, want 504", resp.StatusCode)
	}
	if el := time.Since(start); el < 50*time.Millisecond || el > 5*time.Second {
		t.Fatalf("timeout surfaced after %v, want ≈ the 75ms client deadline", el)
	}
	runs := getRuns(t, ts)
	if len(runs) != 1 || runs[0].Status != "timeout" || runs[0].HTTPStatus != http.StatusGatewayTimeout {
		t.Fatalf("ledger rows %+v, want one timeout/504 row", runs)
	}
}

// TestWALTearSurvivesRestart: a WAL append torn mid-frame (chaos) does
// not fail the request, and a restart over the torn history replays the
// good records and serves the run back.
func TestWALTearSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := testServerCfg(t, serverConfig{
		seed: 7, warm: true, predecode: true, maxInflight: 2, ledgerSize: 8,
		walDir: dir, chaosSpec: "wal-tear=2",
	})
	resp, rec := postRun(t, ts1, "MLP")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run over torn WAL = %d, want 200 (durability degrades, requests do not)", resp.StatusCode)
	}
	_ = s1
	ts1.Close() // crash

	s2, ts2 := testServerCfg(t, serverConfig{
		seed: 7, warm: true, predecode: true, maxInflight: 2, ledgerSize: 8,
		walDir: dir,
	})
	if s2.recovery.BadSegments != 1 {
		t.Fatalf("recovery %+v, want exactly the torn segment flagged bad", s2.recovery)
	}
	runs := getRuns(t, ts2)
	r, ok := findRun(runs, rec.ID)
	if !ok || r.Status != "ok" || !r.Recovered {
		t.Fatalf("run after torn-WAL restart = %+v (found %v), want recovered ok", r, ok)
	}
}
