package main

// Admission control for POST /run (docs/ROBUSTNESS.md, "Serving-layer
// robustness"): a fixed pool of run slots fronted by a bounded
// per-benchmark wait queue. A request that finds a free slot runs
// immediately; otherwise it queues — up to -queue-depth waiters per
// benchmark — until a slot frees, its deadline expires, the client goes
// away, or the daemon starts draining. Everything past the queue bound
// sheds immediately with a jittered Retry-After, so overload degrades
// into fast 503s instead of an unbounded goroutine pile-up.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"cambricon/internal/metrics"
)

// Metric names owned by the admission layer.
const (
	metricSheds        = "cambricon_serve_sheds_total"
	metricQueueWaiting = "cambricon_serve_queue_waiting"
	metricQueueWait    = "cambricon_serve_queue_wait_seconds"
)

// queueWaitBuckets spans a sub-millisecond slot handoff up through
// multi-second waits behind slow benchmarks.
var queueWaitBuckets = metrics.ExpBuckets(100e-6, 4, 10)

// admitVerdict is the outcome of one admission attempt.
type admitVerdict uint8

const (
	// admitted: the caller holds a run slot and must release() it.
	admitted admitVerdict = iota
	// admitQueueFull: the benchmark's wait queue is at depth; shed.
	admitQueueFull
	// admitDraining: the daemon is shutting down; shed.
	admitDraining
	// admitTimeout: the request deadline expired while queued.
	admitTimeout
	// admitCanceled: the client went away while queued.
	admitCanceled
)

func (v admitVerdict) String() string {
	switch v {
	case admitted:
		return "admitted"
	case admitQueueFull:
		return "queue-full"
	case admitDraining:
		return "draining"
	case admitTimeout:
		return "timeout"
	case admitCanceled:
		return "canceled"
	}
	return "unknown"
}

// shed reports whether the verdict is a load-shedding rejection (503
// with a Retry-After hint) as opposed to a deadline/cancel outcome.
func (v admitVerdict) shed() bool { return v == admitQueueFull || v == admitDraining }

// admission is the bounded-queue admission controller.
type admission struct {
	// slots bounds concurrent runs; holding a token = holding a slot.
	slots chan struct{}
	// depth bounds queued waiters per benchmark; 0 disables queueing
	// (no free slot -> immediate shed, the historical semantics).
	depth int
	reg   *metrics.Registry

	mu      sync.Mutex
	waiting map[string]int

	draining  atomic.Bool
	drainCh   chan struct{}
	drainOnce sync.Once
}

func newAdmission(slots, depth int, reg *metrics.Registry) *admission {
	if slots <= 0 {
		slots = 1
	}
	if depth < 0 {
		depth = 0
	}
	return &admission{
		slots:   make(chan struct{}, slots),
		depth:   depth,
		reg:     reg,
		waiting: map[string]int{},
		drainCh: make(chan struct{}),
	}
}

// acquire tries to claim a run slot for benchmark, queueing within the
// per-benchmark bound until ctx expires or a drain begins. On admitted
// the caller must release().
func (a *admission) acquire(ctx context.Context, benchmark string) admitVerdict {
	if a.draining.Load() {
		return admitDraining
	}
	select {
	case a.slots <- struct{}{}:
		return admitted
	default:
	}
	// No free slot: join the benchmark's bounded queue.
	a.mu.Lock()
	if a.waiting[benchmark] >= a.depth {
		a.mu.Unlock()
		return admitQueueFull
	}
	a.waiting[benchmark]++
	a.mu.Unlock()
	gauge := a.reg.Gauge(metricQueueWaiting, "POST /run requests queued for a run slot, by benchmark",
		metrics.L("benchmark", benchmark))
	gauge.Add(1)
	start := time.Now()
	defer func() {
		a.mu.Lock()
		a.waiting[benchmark]--
		a.mu.Unlock()
		gauge.Add(-1)
		a.reg.Histogram(metricQueueWait, "seconds spent queued for a run slot, by benchmark",
			queueWaitBuckets, metrics.L("benchmark", benchmark)).Observe(time.Since(start).Seconds())
	}()
	select {
	case a.slots <- struct{}{}:
		if a.draining.Load() {
			// Raced with drain start; hand the slot back and shed.
			<-a.slots
			return admitDraining
		}
		return admitted
	case <-a.drainCh:
		return admitDraining
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return admitTimeout
		}
		return admitCanceled
	}
}

// release hands an admitted request's slot back.
func (a *admission) release() { <-a.slots }

// startDrain flips the controller into shutdown mode: queued waiters
// shed immediately and no new request is admitted. Idempotent.
func (a *admission) startDrain() {
	a.drainOnce.Do(func() {
		a.draining.Store(true)
		close(a.drainCh)
	})
}
