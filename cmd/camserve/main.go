// Command camserve exposes the benchmark suite as a long-running
// simulation service (docs/OBSERVABILITY.md, "Service metrics"): every
// POST /run is one real simulation on a pooled, snapshot-restored
// machine, the aggregate behaviour streams out of GET /metrics in
// Prometheus text format, and GET /runs is the in-memory ledger of
// recent runs.
//
// Usage:
//
//	camserve                    # listen on :8080
//	camserve -addr :9090        # another port
//	camserve -max-inflight 8    # concurrent /run bound (excess -> 503)
//	camserve -ledger 256        # runs retained by GET /runs
//	camserve -seed 7            # benchmark generation seed
//	camserve -warm=false        # disable machine pooling / warm-starts
//
// Endpoints:
//
//	GET  /metrics   Prometheus text exposition (version 0.0.4)
//	GET  /healthz   liveness (200 once the listener is up)
//	GET  /readyz    readiness (200 once programs are generated)
//	POST /run       {"benchmark":"MLP"} -> one simulation, JSON result
//	GET  /runs      recent runs, newest first
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight runs
// finish, new connections are refused.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"cambricon"
	"cambricon/internal/bench"
	"cambricon/internal/metrics"
)

// Metric names owned by the HTTP layer (the suite's own instruments are
// the cambricon_bench_*/cambricon_pool_*/cambricon_snapshot_* families,
// see internal/bench).
const (
	metricRequests  = "cambricon_serve_requests_total"
	metricRejected  = "cambricon_serve_busy_rejections_total"
	metricInFlight  = "cambricon_serve_runs_in_flight"
	metricRunsTotal = "cambricon_serve_ledger_runs_total"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Uint64("seed", 7, "benchmark generation seed")
	maxInflight := flag.Int("max-inflight", 8, "concurrent POST /run bound; excess requests get 503")
	ledgerSize := flag.Int("ledger", 256, "runs retained by GET /runs")
	warm := flag.Bool("warm", true, "reuse pooled, snapshot-restored machines across runs")
	predecode := flag.Bool("predecode", true, "run through the pre-decoded fused dispatch loop (false = per-step decode)")
	version := flag.Bool("version", false, "print the simulator version and exit")
	flag.Parse()

	if *version {
		fmt.Printf("camserve %s (cambricon-bench-sim)\n", cambricon.Version)
		return
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "camserve: unexpected arguments %q (all inputs are flags)\n", flag.Args())
		os.Exit(2)
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv := newServer(*seed, *warm, *predecode, *maxInflight, *ledgerSize, logger)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	go srv.warmup()
	logger.Info("camserve listening", "addr", *addr, "version", cambricon.Version)

	select {
	case err := <-errCh:
		logger.Error("listener failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Info("shutting down", "grace", "30s")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		logger.Error("shutdown", "err", err)
		os.Exit(1)
	}
}

// server wires the benchmark suite, its metrics registry and the run
// ledger behind the HTTP handlers.
type server struct {
	suite  *bench.Suite
	reg    *metrics.Registry
	logger *slog.Logger

	// sem bounds concurrent /run simulations; a full channel is the 503
	// signal, never a queue — the client owns its retry policy.
	sem      chan struct{}
	inFlight *metrics.Gauge
	rejected *metrics.Counter

	ledger *runLedger
	ready  atomic.Bool
}

func newServer(seed uint64, warm, predecode bool, maxInflight, ledgerSize int, logger *slog.Logger) *server {
	if maxInflight <= 0 {
		maxInflight = 1
	}
	if ledgerSize <= 0 {
		ledgerSize = 1
	}
	reg := metrics.New()
	suite := bench.NewSuite(seed)
	suite.Warm = warm
	suite.Predecode = predecode
	suite.Metrics = reg
	return &server{
		suite:    suite,
		reg:      reg,
		logger:   logger,
		sem:      make(chan struct{}, maxInflight),
		inFlight: reg.Gauge(metricInFlight, "POST /run simulations currently executing"),
		rejected: reg.Counter(metricRejected, "POST /run requests rejected because max-inflight was reached"),
		ledger:   newRunLedger(ledgerSize),
	}
}

// warmup pays the one-time program-generation cost off the request path
// and then flips readiness. A generation failure is fatal to readiness
// but not liveness — /healthz keeps answering so the failure is
// observable where the probes look.
func (s *server) warmup() {
	if _, err := s.suite.Programs(); err != nil {
		s.logger.Error("program generation failed; staying unready", "err", err)
		return
	}
	s.ready.Store(true)
	s.logger.Info("ready", "benchmarks", "generated")
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("GET /runs", s.handleRuns)
	return s.logRequests(mux)
}

// logRequests is the slog access-log middleware; it also feeds the
// per-path request counter.
func (s *server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		path := r.URL.Path
		s.reg.Counter(metricRequests, "HTTP requests served, by path and status",
			metrics.L("path", path), metrics.L("code", fmt.Sprint(rec.status))).Inc()
		s.logger.Info("request",
			"method", r.Method, "path", path, "status", rec.status,
			"dur", time.Since(start).Round(time.Microsecond))
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.logger.Error("metrics write", "err", err)
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		http.Error(w, "generating benchmark programs", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// runRequest is the POST /run body.
type runRequest struct {
	Benchmark string `json:"benchmark"`
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if req.Benchmark == "" {
		writeJSONError(w, http.StatusBadRequest, `missing "benchmark"`)
		return
	}
	if _, err := s.suite.Program(req.Benchmark); err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		writeJSONError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("at capacity (%d runs in flight)", cap(s.sem)))
		return
	}
	defer func() { <-s.sem }()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	rec := s.ledger.begin(req.Benchmark)
	start := time.Now()
	st, err := s.suite.RunOnce(r.Context(), req.Benchmark)
	rec.WallSeconds = time.Since(start).Seconds()
	if err != nil {
		rec.Status = "error"
		rec.Error = err.Error()
		s.ledger.finish(rec)
		status := http.StatusInternalServerError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The client went away mid-run; 499-style, but stay standard.
			status = http.StatusServiceUnavailable
		}
		writeJSONError(w, status, err.Error())
		return
	}
	rec.Status = "ok"
	rec.Cycles = st.Cycles
	rec.Instructions = st.Instructions
	s.ledger.finish(rec)
	s.reg.Counter(metricRunsTotal, "runs recorded in the ledger, by status",
		metrics.L("status", rec.Status)).Inc()
	writeJSON(w, http.StatusOK, rec)
}

func (s *server) handleRuns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Runs []runRecord `json:"runs"`
	}{Runs: s.ledger.list()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	// The suite's errors already carry a "bench: " prefix; strip it so
	// clients see the fact, not the package.
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{Error: strings.TrimPrefix(msg, "bench: ")})
}

// runRecord is one ledger row (and the POST /run success body).
type runRecord struct {
	ID           int64   `json:"id"`
	Benchmark    string  `json:"benchmark"`
	Start        string  `json:"start"`
	Status       string  `json:"status"`
	Cycles       int64   `json:"cycles,omitempty"`
	Instructions int64   `json:"instructions,omitempty"`
	WallSeconds  float64 `json:"wall_seconds"`
	Error        string  `json:"error,omitempty"`
}

// runLedger is a fixed-size ring of completed runs, newest first on
// read. Records enter only on finish, so a reader never sees a
// half-filled row.
type runLedger struct {
	mu     sync.Mutex
	nextID int64
	ring   []runRecord
	n      int // rows filled, up to len(ring)
	head   int // next write position
}

func newRunLedger(size int) *runLedger {
	return &runLedger{ring: make([]runRecord, size)}
}

// begin stamps identity and start time; the caller fills the outcome and
// hands the record to finish.
func (l *runLedger) begin(benchmark string) runRecord {
	l.mu.Lock()
	l.nextID++
	id := l.nextID
	l.mu.Unlock()
	return runRecord{
		ID:        id,
		Benchmark: benchmark,
		Start:     time.Now().UTC().Format(time.RFC3339Nano),
	}
}

func (l *runLedger) finish(rec runRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ring[l.head] = rec
	l.head = (l.head + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
}

// list returns the retained runs, newest first.
func (l *runLedger) list() []runRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]runRecord, 0, l.n)
	for i := 1; i <= l.n; i++ {
		out = append(out, l.ring[(l.head-i+len(l.ring))%len(l.ring)])
	}
	return out
}
