// Command camserve exposes the benchmark suite as a long-running
// simulation service (docs/OBSERVABILITY.md, "Service metrics"): every
// POST /run is one real simulation on a pooled, snapshot-restored
// machine, the aggregate behaviour streams out of GET /metrics in
// Prometheus text format, and GET /runs is the in-memory ledger of
// recent runs.
//
// Every request is traced end to end (docs/OBSERVABILITY.md, "Request
// tracing & the flight recorder"): camserve joins the caller's W3C
// `traceparent` (or mints a root), records a span per phase — semaphore
// wait, pool acquire, snapshot restore, simulation, JSON encode — and
// keeps the finished timeline in a bounded flight recorder, queryable
// per run id as a JSON debug bundle or a Chrome/Perfetto trace.
//
// Usage:
//
//	camserve                    # listen on :8080
//	camserve -addr :9090        # another port
//	camserve -max-inflight 8    # concurrent /run bound (excess -> 503)
//	camserve -ledger 256        # runs retained by GET /runs and the flight recorder
//	camserve -seed 7            # benchmark generation seed
//	camserve -warm=false        # disable machine pooling / warm-starts
//	camserve -log-format json   # structured access logs (default text)
//	camserve -debug-addr :6060  # opt-in net/http/pprof listener
//
// Endpoints:
//
//	GET  /metrics          Prometheus text exposition (version 0.0.4,
//	                       simulator + Go runtime families)
//	GET  /healthz          liveness (200 once the listener is up)
//	GET  /readyz           readiness (200 once programs are generated)
//	POST /run              {"benchmark":"MLP"} -> one simulation, JSON result
//	GET  /runs             recent runs, newest first
//	GET  /runs/{id}        per-run debug bundle: span timeline, CPI-stack
//	                       stall breakdown, restore bytes, trace id
//	GET  /runs/{id}/trace  the span timeline as Chrome Trace Event JSON
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight runs
// finish, new connections are refused.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"cambricon"
	"cambricon/internal/bench"
	"cambricon/internal/metrics"
	"cambricon/internal/reqtrace"
	"cambricon/internal/trace"
)

// Metric names owned by the HTTP layer (the suite's own instruments are
// the cambricon_bench_*/cambricon_pool_*/cambricon_snapshot_* families,
// see internal/bench; the Go runtime families are cambricon_go_*, see
// internal/metrics).
const (
	metricRequests  = "cambricon_serve_requests_total"
	metricRejected  = "cambricon_serve_busy_rejections_total"
	metricInFlight  = "cambricon_serve_runs_in_flight"
	metricRunsTotal = "cambricon_serve_ledger_runs_total"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Uint64("seed", 7, "benchmark generation seed")
	maxInflight := flag.Int("max-inflight", 8, "concurrent POST /run bound; excess requests get 503")
	ledgerSize := flag.Int("ledger", 256, "runs retained by GET /runs and the /runs/{id} flight recorder")
	warm := flag.Bool("warm", true, "reuse pooled, snapshot-restored machines across runs")
	predecode := flag.Bool("predecode", true, "run through the pre-decoded fused dispatch loop (false = per-step decode)")
	logFormat := flag.String("log-format", "text", "access-log encoding: text or json")
	debugAddr := flag.String("debug-addr", "", "optional listen address for net/http/pprof (e.g. 127.0.0.1:6060); empty disables")
	version := flag.Bool("version", false, "print the simulator version and exit")
	flag.Parse()

	if *version {
		fmt.Printf("camserve %s (cambricon-bench-sim)\n", cambricon.Version)
		return
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "camserve: unexpected arguments %q (all inputs are flags)\n", flag.Args())
		os.Exit(2)
	}
	logger, err := buildLogger(os.Stderr, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "camserve: %v\n", err)
		os.Exit(2)
	}
	srv := newServer(*seed, *warm, *predecode, *maxInflight, *ledgerSize, logger)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	go srv.warmup()
	if *debugAddr != "" {
		go func() {
			logger.Info("pprof debug listener", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, debugHandler()); err != nil {
				logger.Error("debug listener failed", "err", err)
			}
		}()
	}
	logger.Info("camserve listening", "addr", *addr, "version", cambricon.Version)

	select {
	case err := <-errCh:
		logger.Error("listener failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Info("shutting down", "grace", "30s")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		logger.Error("shutdown", "err", err)
		os.Exit(1)
	}
}

// buildLogger selects the slog handler for the access log: "text" (the
// default, human-oriented) or "json" (one object per line, the shape
// log aggregators ingest without a parse rule).
func buildLogger(w *os.File, format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
}

// debugHandler serves the net/http/pprof endpoints on a private mux, so
// profiling never rides the public listener and nothing registers on
// http.DefaultServeMux.
func debugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// server wires the benchmark suite, its metrics registry, the run
// ledger and the flight recorder behind the HTTP handlers.
type server struct {
	suite   *bench.Suite
	reg     *metrics.Registry
	runtime *metrics.RuntimeBridge
	logger  *slog.Logger

	// sem bounds concurrent /run simulations; a full channel is the 503
	// signal, never a queue — the client owns its retry policy.
	sem      chan struct{}
	inFlight *metrics.Gauge
	rejected *metrics.Counter

	ledger *runLedger
	// flight retains the per-run debug bundles GET /runs/{id} and
	// /runs/{id}/trace serve, bounded to the same depth as the ledger.
	flight *reqtrace.Store[*runDebug]
	ready  atomic.Bool
}

func newServer(seed uint64, warm, predecode bool, maxInflight, ledgerSize int, logger *slog.Logger) *server {
	if maxInflight <= 0 {
		maxInflight = 1
	}
	if ledgerSize <= 0 {
		ledgerSize = 1
	}
	reg := metrics.New()
	suite := bench.NewSuite(seed)
	suite.Warm = warm
	suite.Predecode = predecode
	suite.Metrics = reg
	return &server{
		suite:    suite,
		reg:      reg,
		runtime:  metrics.NewRuntimeBridge(reg),
		logger:   logger,
		sem:      make(chan struct{}, maxInflight),
		inFlight: reg.Gauge(metricInFlight, "POST /run simulations currently executing"),
		rejected: reg.Counter(metricRejected, "POST /run requests rejected because max-inflight was reached"),
		ledger:   newRunLedger(ledgerSize),
		flight:   reqtrace.NewStore[*runDebug](ledgerSize),
	}
}

// warmup pays the one-time program-generation cost off the request path
// and then flips readiness. A generation failure is fatal to readiness
// but not liveness — /healthz keeps answering so the failure is
// observable where the probes look.
func (s *server) warmup() {
	if _, err := s.suite.Programs(); err != nil {
		s.logger.Error("program generation failed; staying unready", "err", err)
		return
	}
	s.ready.Store(true)
	s.logger.Info("ready", "benchmarks", "generated")
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("GET /runs", s.handleRuns)
	mux.HandleFunc("GET /runs/{id}", s.handleRunByID)
	mux.HandleFunc("GET /runs/{id}/trace", s.handleRunTrace)
	return s.logRequests(mux)
}

// logRequests is the tracing + slog access-log middleware: it joins (or
// mints) the request's W3C trace via the traceparent header, attaches a
// recorder to the context for the handlers to span, echoes the outgoing
// traceparent on the response, feeds the per-path request counter, and
// logs every request with its trace id so log lines join against
// GET /runs/{id}.
func (s *server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tp, _ := reqtrace.ParseTraceparent(r.Header.Get("traceparent"))
		rec := reqtrace.NewRecorder("request", tp)
		rec.AnnotateStr(reqtrace.Root, "method", r.Method)
		rec.AnnotateStr(reqtrace.Root, "path", r.URL.Path)
		w.Header().Set("traceparent", rec.Traceparent())
		srec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(srec, r.WithContext(reqtrace.With(r.Context(), rec)))
		path := r.URL.Path
		s.reg.Counter(metricRequests, "HTTP requests served, by path and status",
			metrics.L("path", path), metrics.L("code", fmt.Sprint(srec.status))).Inc()
		s.logger.Info("request",
			"method", r.Method, "path", path, "status", srec.status,
			"dur", time.Since(start).Round(time.Microsecond),
			"trace_id", rec.TraceID())
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.runtime.Collect()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.logger.Error("metrics write", "err", err)
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		http.Error(w, "generating benchmark programs", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// runRequest is the POST /run body.
type runRequest struct {
	Benchmark string `json:"benchmark"`
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	rec := reqtrace.From(r.Context())
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if req.Benchmark == "" {
		writeJSONError(w, http.StatusBadRequest, `missing "benchmark"`)
		return
	}
	if _, err := s.suite.Program(req.Benchmark); err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Every validated request gets a ledger identity, including the ones
	// the semaphore bounces — a 503 is an outcome worth debugging too.
	row := s.ledger.begin(req.Benchmark)
	row.TraceID = rec.TraceID()
	rec.AnnotateInt(reqtrace.Root, "run_id", row.ID)
	rec.AnnotateStr(reqtrace.Root, "benchmark", req.Benchmark)

	sp := rec.Start(reqtrace.Root, "sem.acquire")
	select {
	case s.sem <- struct{}{}:
		rec.End(sp)
	default:
		rec.AnnotateBool(sp, "rejected", true)
		rec.End(sp)
		s.rejected.Inc()
		row.Status = "rejected"
		row.HTTPStatus = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
		s.finishRun(w, rec, row, nil,
			fmt.Sprintf("at capacity (%d runs in flight)", cap(s.sem)))
		return
	}
	defer func() { <-s.sem }()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	start := time.Now()
	st, err := s.suite.RunOnce(r.Context(), req.Benchmark)
	row.WallSeconds = time.Since(start).Seconds()
	if err != nil {
		row.Status = "error"
		row.Error = err.Error()
		row.HTTPStatus = http.StatusInternalServerError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The client went away mid-run; 499-style, but stay standard.
			row.HTTPStatus = http.StatusServiceUnavailable
		}
		s.finishRun(w, rec, row, nil, err.Error())
		return
	}
	row.Status = "ok"
	row.HTTPStatus = http.StatusOK
	row.Cycles = st.Cycles
	row.Instructions = st.Instructions
	s.finishRun(w, rec, row, &st.Stalls, "")
}

// finishRun is the single exit of the /run attempt path: it writes the
// response inside an "encode.json" span, commits the ledger row, and
// files the finished span bundle in the flight recorder under the run's
// id so GET /runs/{id} can replay the request.
func (s *server) finishRun(w http.ResponseWriter, rec *reqtrace.Recorder, row runRecord, stalls *trace.Breakdown, errMsg string) {
	rec.AnnotateStr(reqtrace.Root, "status", row.Status)
	sp := rec.Start(reqtrace.Root, "encode.json")
	if errMsg != "" {
		writeJSONError(w, row.HTTPStatus, errMsg)
	} else {
		writeJSON(w, row.HTTPStatus, row)
	}
	rec.End(sp)
	s.ledger.finish(row)
	s.reg.Counter(metricRunsTotal, "runs recorded in the ledger, by status",
		metrics.L("status", row.Status)).Inc()
	bundle := rec.Finish()
	d := &runDebug{runRecord: row, Stalls: stalls, Trace: bundle}
	if b, ok := bundle.IntAttr("snapshot.restore", "bytes"); ok {
		d.RestoreBytes = b
	}
	if c, ok := bundle.StrAttr("decode.lookup", "cache"); ok {
		d.DecodeCache = c
	}
	s.flight.Put(strconv.FormatInt(row.ID, 10), d)
}

func (s *server) handleRuns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Runs []runRecord `json:"runs"`
	}{Runs: s.ledger.list()})
}

// handleRunByID serves the flight-recorder debug bundle of one run:
// ledger row, CPI-stack stall breakdown, restore/decode activity, and
// the full span timeline.
func (s *server) handleRunByID(w http.ResponseWriter, r *http.Request) {
	d, ok := s.flight.Get(r.PathValue("id"))
	if !ok {
		writeJSONError(w, http.StatusNotFound,
			fmt.Sprintf("no run %q in the flight recorder", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, d)
}

// handleRunTrace exports one run's span timeline as Chrome Trace Event
// JSON — the same format camsim -trace emits for simulated pipelines —
// loadable in ui.perfetto.dev or chrome://tracing.
func (s *server) handleRunTrace(w http.ResponseWriter, r *http.Request) {
	d, ok := s.flight.Get(r.PathValue("id"))
	if !ok {
		writeJSONError(w, http.StatusNotFound,
			fmt.Sprintf("no run %q in the flight recorder", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := d.Trace.WriteChrome(w); err != nil {
		s.logger.Error("trace write", "err", err)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	// The suite's errors already carry a "bench: " prefix; strip it so
	// clients see the fact, not the package.
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{Error: strings.TrimPrefix(msg, "bench: ")})
}

// runRecord is one ledger row (and the POST /run success body).
type runRecord struct {
	ID           int64   `json:"id"`
	Benchmark    string  `json:"benchmark"`
	Start        string  `json:"start"`
	Status       string  `json:"status"`
	HTTPStatus   int     `json:"http_status"`
	TraceID      string  `json:"trace_id,omitempty"`
	Cycles       int64   `json:"cycles,omitempty"`
	Instructions int64   `json:"instructions,omitempty"`
	WallSeconds  float64 `json:"wall_seconds"`
	Error        string  `json:"error,omitempty"`
}

// runDebug is the GET /runs/{id} body: the ledger row joined with the
// run's simulator stall attribution and its wall-clock span timeline.
type runDebug struct {
	runRecord
	// Stalls is the attributed CPI stack of the simulated run (absent on
	// rejected/failed requests): where the simulated cycles went, while
	// Trace says where the host wall time went.
	Stalls *trace.Breakdown `json:"stall_breakdown,omitempty"`
	// RestoreBytes is the dirty-page volume the warm-start restore
	// copied for this run (0 when the run built a machine cold).
	RestoreBytes int64 `json:"restore_bytes"`
	// DecodeCache is the decode-cache outcome ("hit"/"miss") when this
	// request performed the lookup; steady-state warm runs load the
	// pre-decoded program via the snapshot and never look up.
	DecodeCache string `json:"decode_cache,omitempty"`
	// Trace is the span timeline (reqtrace bundle) of the request.
	Trace *reqtrace.Bundle `json:"trace"`
}

// runLedger is a fixed-size ring of completed runs, newest first on
// read. Records enter only on finish, so a reader never sees a
// half-filled row.
type runLedger struct {
	mu     sync.Mutex
	nextID int64
	ring   []runRecord
	n      int // rows filled, up to len(ring)
	head   int // next write position
}

func newRunLedger(size int) *runLedger {
	return &runLedger{ring: make([]runRecord, size)}
}

// begin stamps identity and start time; the caller fills the outcome and
// hands the record to finish.
func (l *runLedger) begin(benchmark string) runRecord {
	l.mu.Lock()
	l.nextID++
	id := l.nextID
	l.mu.Unlock()
	return runRecord{
		ID:        id,
		Benchmark: benchmark,
		Start:     time.Now().UTC().Format(time.RFC3339Nano),
	}
}

func (l *runLedger) finish(rec runRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ring[l.head] = rec
	l.head = (l.head + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
}

// list returns the retained runs, newest first.
func (l *runLedger) list() []runRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]runRecord, 0, l.n)
	for i := 1; i <= l.n; i++ {
		out = append(out, l.ring[(l.head-i+len(l.ring))%len(l.ring)])
	}
	return out
}
