// Command camserve exposes the benchmark suite as a long-running
// simulation service (docs/OBSERVABILITY.md, "Service metrics"): every
// POST /run is one real simulation on a pooled, snapshot-restored
// machine, the aggregate behaviour streams out of GET /metrics in
// Prometheus text format, and GET /runs is the run ledger.
//
// The ledger is crash-safe (docs/ROBUSTNESS.md, "Serving-layer
// robustness"): with -wal set, every run's lifecycle — accepted →
// running → ok/failed/rejected/timeout — is appended to a CRC-checked
// write-ahead log, so a restarted daemon serves its history back and
// surfaces runs that were in flight at the crash as `interrupted`.
// In front of the run path sits admission control: a bounded
// per-benchmark queue with per-request deadlines (the -run-timeout
// default, tightened by a client `Request-Timeout` header), jittered
// `Retry-After` hints on shed load, and per-request panic isolation —
// a panicking simulation costs one 500 and a `failed` ledger row, not
// the daemon. Shutdown drains in-flight runs under -drain-timeout and
// records whatever could not finish as `aborted`.
//
// Every request is traced end to end (docs/OBSERVABILITY.md, "Request
// tracing & the flight recorder"): camserve joins the caller's W3C
// `traceparent` (or mints a root), records a span per phase — queue
// wait, pool acquire, snapshot restore, simulation, WAL append, JSON
// encode — and keeps the finished timeline in a bounded flight
// recorder, queryable per run id as a JSON debug bundle or a
// Chrome/Perfetto trace.
//
// Usage:
//
//	camserve                    # listen on :8080, in-memory ledger
//	camserve -wal /var/lib/cam  # durable, crash-recoverable run ledger
//	camserve -addr :9090        # another port
//	camserve -max-inflight 8    # concurrent run slots
//	camserve -queue-depth 16    # queued waiters per benchmark (0 = shed immediately)
//	camserve -run-timeout 60s   # default per-request deadline
//	camserve -drain-timeout 30s # graceful-shutdown drain budget
//	camserve -ledger 256        # runs retained by GET /runs and the flight recorder
//	camserve -seed 7            # benchmark generation seed
//	camserve -warm=false        # disable machine pooling / warm-starts
//	camserve -chaos 'restore-fail=0.1,panic=0.05'  # service-path fault injection
//	camserve -log-format json   # structured access logs (default text)
//	camserve -debug-addr :6060  # opt-in net/http/pprof listener
//
// Endpoints:
//
//	GET  /metrics          Prometheus text exposition (version 0.0.4,
//	                       simulator + ledger + Go runtime families)
//	GET  /healthz          liveness (200 once the listener is up)
//	GET  /readyz           readiness (200 once programs are generated)
//	POST /run              {"benchmark":"MLP"} -> one simulation, JSON result
//	GET  /runs             retained runs, newest first (incl. recovered rows)
//	GET  /runs/{id}        per-run debug bundle: span timeline, CPI-stack
//	                       stall breakdown, restore bytes, trace id
//	GET  /runs/{id}/trace  the span timeline as Chrome Trace Event JSON
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"cambricon"
	"cambricon/internal/bench"
	"cambricon/internal/chaos"
	"cambricon/internal/ledger"
	"cambricon/internal/metrics"
	"cambricon/internal/reqtrace"
	"cambricon/internal/sim"
	"cambricon/internal/trace"
	"cambricon/internal/tsdb"
)

// Metric names owned by the HTTP layer (the suite's own instruments are
// the cambricon_bench_*/cambricon_pool_*/cambricon_snapshot_* families,
// see internal/bench; the ledger's are cambricon_ledger_*, see
// internal/ledger; admission's are in admission.go; the Go runtime
// families are cambricon_go_*, see internal/metrics).
const (
	metricRequests  = "cambricon_serve_requests_total"
	metricInFlight  = "cambricon_serve_runs_in_flight"
	metricRunsTotal = "cambricon_serve_ledger_runs_total"
	// metricInflightRuns (admitted minus completed, the full admitted
	// window including response encoding) lives in observe.go; it must
	// read 0 after every drain.
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Uint64("seed", 7, "benchmark generation seed")
	maxInflight := flag.Int("max-inflight", 8, "concurrent POST /run run slots")
	queueDepth := flag.Int("queue-depth", 16, "queued POST /run waiters per benchmark; excess sheds with 503 (0 disables queueing)")
	runTimeout := flag.Duration("run-timeout", 60*time.Second, "default per-request deadline; a client Request-Timeout header may tighten it")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for draining in-flight runs; the rest are recorded as aborted")
	ledgerSize := flag.Int("ledger", 256, "runs retained by GET /runs and the /runs/{id} flight recorder")
	walDir := flag.String("wal", "", "run-ledger WAL directory for crash-safe history; empty keeps the ledger in memory only")
	walSync := flag.Bool("wal-sync", false, "fsync every WAL append (survive power loss, not just crashes)")
	walSegBytes := flag.Int64("wal-segment-bytes", 1<<20, "WAL segment rotation threshold in bytes")
	chaosSpec := flag.String("chaos", "", "service-path chaos spec, e.g. 'seed=7,restore-fail=0.1,panic=0.05,wal-tear=3' (docs/ROBUSTNESS.md)")
	warm := flag.Bool("warm", true, "reuse pooled, snapshot-restored machines across runs")
	predecode := flag.Bool("predecode", true, "run through the pre-decoded fused dispatch loop (false = per-step decode)")
	logFormat := flag.String("log-format", "text", "access-log encoding: text or json")
	debugAddr := flag.String("debug-addr", "", "optional listen address for net/http/pprof (e.g. 127.0.0.1:6060); empty disables")
	sampleInterval := flag.Duration("sample-interval", 0, "metrics-history sampling cadence for /vars, /alerts, /dash and -autoscale (0 disables)")
	sloSpec := flag.String("slo", "", "SLO burn-rate rules, e.g. 'wait=latency:cambricon_serve_queue_wait_seconds:0.0256:0.01'; empty installs the defaults when sampling, 'none' disables (docs/OBSERVABILITY.md)")
	autoscaleSpec := flag.String("autoscale", "", "pool autoscaler spec, e.g. 'min=0,max=4,step=2,idle=30s,window=10s'; empty disables (requires -sample-interval)")
	version := flag.Bool("version", false, "print the simulator version and exit")
	flag.Parse()

	if *version {
		fmt.Printf("camserve %s (cambricon-bench-sim)\n", cambricon.Version)
		return
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "camserve: unexpected arguments %q (all inputs are flags)\n", flag.Args())
		os.Exit(2)
	}
	logger, err := buildLogger(os.Stderr, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "camserve: %v\n", err)
		os.Exit(2)
	}
	srv, err := newServer(serverConfig{
		seed:            *seed,
		warm:            *warm,
		predecode:       *predecode,
		maxInflight:     *maxInflight,
		queueDepth:      *queueDepth,
		ledgerSize:      *ledgerSize,
		runTimeout:      *runTimeout,
		drainTimeout:    *drainTimeout,
		walDir:          *walDir,
		walSync:         *walSync,
		walSegmentBytes: *walSegBytes,
		chaosSpec:       *chaosSpec,
		sampleInterval:  *sampleInterval,
		sloSpec:         *sloSpec,
		autoscaleSpec:   *autoscaleSpec,
	}, logger)
	if err != nil {
		fmt.Fprintf(os.Stderr, "camserve: %v\n", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	go srv.warmup()
	if *sampleInterval > 0 {
		go srv.observe(ctx)
	}
	if *debugAddr != "" {
		go func() {
			logger.Info("pprof debug listener", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, debugHandler()); err != nil {
				logger.Error("debug listener failed", "err", err)
			}
		}()
	}
	logger.Info("camserve listening", "addr", *addr, "version", cambricon.Version)

	select {
	case err := <-errCh:
		logger.Error("listener failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Info("shutting down", "drain", *drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain order: stop admitting (queued waiters shed fast), let the
	// HTTP server wait for in-flight handlers, then record whatever is
	// still running as aborted and seal the WAL.
	srv.adm.startDrain()
	shutErr := httpSrv.Shutdown(shutCtx)
	aborted := srv.finalize(shutCtx)
	if shutErr != nil {
		logger.Error("shutdown incomplete", "err", shutErr, "aborted_runs", aborted)
		os.Exit(1)
	}
}

// buildLogger selects the slog handler for the access log: "text" (the
// default, human-oriented) or "json" (one object per line, the shape
// log aggregators ingest without a parse rule).
func buildLogger(w *os.File, format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
}

// debugHandler serves the net/http/pprof endpoints on a private mux, so
// profiling never rides the public listener and nothing registers on
// http.DefaultServeMux.
func debugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serverConfig is everything newServer needs; main fills it from flags,
// tests construct it directly.
type serverConfig struct {
	seed            uint64
	warm            bool
	predecode       bool
	maxInflight     int
	queueDepth      int
	ledgerSize      int
	runTimeout      time.Duration
	drainTimeout    time.Duration
	walDir          string
	walSync         bool
	walSegmentBytes int64
	chaosSpec       string

	// sampleInterval > 0 turns on the metrics-history sampler (and with
	// it /vars, /alerts, /dash); sloSpec and autoscaleSpec configure the
	// burn-rate rules and the pool autoscaler on top of it (observe.go).
	sampleInterval time.Duration
	sloSpec        string
	autoscaleSpec  string
	// clock overrides time.Now for the sampler, SLO windows and
	// autoscaler; tests inject a manual clock and drive observeTick.
	clock func() time.Time
}

// server wires the benchmark suite, its metrics registry, the durable
// run ledger, admission control and the flight recorder behind the HTTP
// handlers.
type server struct {
	cfg     serverConfig
	suite   *bench.Suite
	reg     *metrics.Registry
	runtime *metrics.RuntimeBridge
	logger  *slog.Logger

	// adm bounds concurrent runs and the per-benchmark wait queues;
	// everything it sheds is a fast 503 with a jittered Retry-After.
	adm      *admission
	inFlight *metrics.Gauge

	// ledger is the durable (or, without -wal, in-memory) run history
	// behind GET /runs; recovery summarizes what boot replayed.
	ledger    *ledger.Ledger
	recovery  ledger.Recovery
	configKey string

	// inflight tracks the rows of currently executing runs so shutdown
	// can record un-drained work as aborted instead of dropping it.
	inflight sync.Map
	runWG    sync.WaitGroup

	// flight retains the per-run debug bundles GET /runs/{id} and
	// /runs/{id}/trace serve, bounded to the same depth as the ledger.
	flight *reqtrace.Store[*runDebug]
	ready  atomic.Bool

	// retry seeds the jittered Retry-After hints so shed clients spread
	// their retries instead of stampeding back in lockstep.
	retryMu sync.Mutex
	retry   *rand.Rand

	// Observability loop (observe.go): the metrics-history sampler, the
	// SLO rules evaluated over it, the pool autoscaler, and the clock
	// they all share. All nil/zero when -sample-interval is unset.
	tsdb         *tsdb.Store
	sloRules     []tsdb.Rule
	scaler       *autoscaler
	clock        func() time.Time
	inflightRuns *metrics.Gauge
}

func newServer(cfg serverConfig, logger *slog.Logger) (*server, error) {
	if cfg.maxInflight <= 0 {
		cfg.maxInflight = 1
	}
	if cfg.ledgerSize <= 0 {
		cfg.ledgerSize = 1
	}
	if cfg.runTimeout <= 0 {
		cfg.runTimeout = 60 * time.Second
	}
	reg := metrics.New()
	ch, err := chaos.Parse(cfg.chaosSpec)
	if err != nil {
		return nil, err
	}
	ch.SetMetrics(reg)
	led, recovery, err := ledger.Open(ledger.Options{
		Dir:          cfg.walDir,
		SegmentBytes: cfg.walSegmentBytes,
		Retain:       cfg.ledgerSize,
		Sync:         cfg.walSync,
		Metrics:      reg,
		Logger:       logger,
		Chaos:        ch,
	})
	if err != nil {
		return nil, err
	}
	suite := bench.NewSuite(cfg.seed)
	suite.Warm = cfg.warm
	suite.Predecode = cfg.predecode
	suite.Metrics = reg
	suite.Chaos = ch
	s := &server{
		cfg:       cfg,
		suite:     suite,
		reg:       reg,
		runtime:   metrics.NewRuntimeBridge(reg),
		logger:    logger,
		adm:       newAdmission(cfg.maxInflight, cfg.queueDepth, reg),
		inFlight:  reg.Gauge(metricInFlight, "POST /run simulations currently executing"),
		ledger:    led,
		recovery:  recovery,
		configKey: suite.ConfigKey(),
		flight:    reqtrace.NewStore[*runDebug](cfg.ledgerSize),
		retry:     rand.New(rand.NewPCG(cfg.seed, 0x52657472)),
		clock:     cfg.clock,
		inflightRuns: reg.Gauge(metricInflightRuns,
			"POST /run requests admitted and not yet completed (0 after a clean drain)"),
	}
	if err := s.setupObservability(reg); err != nil {
		return nil, err
	}
	if ch != nil {
		logger.Warn("chaos enabled", "spec", cfg.chaosSpec, "seed", ch.Seed())
	}
	if recovery.Rows > 0 || recovery.TornTail {
		logger.Info("ledger recovered",
			"rows", recovery.Rows, "interrupted", recovery.Interrupted,
			"events", recovery.Events, "segments", recovery.Segments,
			"torn_tail", recovery.TornTail)
	}
	return s, nil
}

// warmup pays the one-time program-generation cost off the request path
// and then flips readiness. A generation failure is fatal to readiness
// but not liveness — /healthz keeps answering so the failure is
// observable where the probes look.
func (s *server) warmup() {
	if _, err := s.suite.Programs(); err != nil {
		s.logger.Error("program generation failed; staying unready", "err", err)
		return
	}
	s.ready.Store(true)
	s.logger.Info("ready", "benchmarks", "generated")
}

// finalize waits (within ctx) for in-flight runs to drain, records any
// still-running request in the ledger as aborted instead of dropping it
// silently, and seals the WAL. It returns the aborted-run count.
func (s *server) finalize(ctx context.Context) int {
	done := make(chan struct{})
	go func() { s.runWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
	}
	n := 0
	s.inflight.Range(func(_, v any) bool {
		row := v.(ledger.Row)
		row.Status = ledger.StatusAborted
		row.Error = "camserve shut down before the run finished"
		s.append(context.Background(), row)
		n++
		return true
	})
	if n > 0 {
		s.logger.Warn("drain deadline expired; still-running requests recorded as aborted", "count", n)
	}
	if err := s.ledger.Close(); err != nil {
		s.logger.Error("ledger close", "err", err)
	}
	return n
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("GET /vars", s.handleVars)
	mux.HandleFunc("GET /alerts", s.handleAlerts)
	mux.HandleFunc("GET /dash", s.handleDash)
	mux.HandleFunc("GET /runs", s.handleRuns)
	mux.HandleFunc("GET /runs/{id}", s.handleRunByID)
	mux.HandleFunc("GET /runs/{id}/trace", s.handleRunTrace)
	return s.logRequests(s.recoverPanics(mux))
}

// logRequests is the tracing + slog access-log middleware: it joins (or
// mints) the request's W3C trace via the traceparent header, attaches a
// recorder to the context for the handlers to span, echoes the outgoing
// traceparent on the response, feeds the per-path request counter, and
// logs every request with its trace id so log lines join against
// GET /runs/{id}.
func (s *server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tp, _ := reqtrace.ParseTraceparent(r.Header.Get("traceparent"))
		rec := reqtrace.NewRecorder("request", tp)
		rec.AnnotateStr(reqtrace.Root, "method", r.Method)
		rec.AnnotateStr(reqtrace.Root, "path", r.URL.Path)
		w.Header().Set("traceparent", rec.Traceparent())
		srec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(srec, r.WithContext(reqtrace.With(r.Context(), rec)))
		path := r.URL.Path
		s.reg.Counter(metricRequests, "HTTP requests served, by path and status",
			metrics.L("path", path), metrics.L("code", fmt.Sprint(srec.status))).Inc()
		s.logger.Info("request",
			"method", r.Method, "path", path, "status", srec.status,
			"dur", time.Since(start).Round(time.Microsecond),
			"trace_id", rec.TraceID())
	})
}

// recoverPanics is the handler-level isolation boundary: a panicking
// handler is a bug, but it must cost one 500, not the daemon. (The run
// path has a second, tighter guard so a panicking simulation also gets
// a failed ledger row; this one catches everything else.)
func (s *server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.logger.Error("handler panic", "path", r.URL.Path, "panic", fmt.Sprint(rec))
				// Best-effort: if the handler already wrote a header this
				// write is a no-op on the status.
				writeJSONError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.runtime.Collect()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.logger.Error("metrics write", "err", err)
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		http.Error(w, "generating benchmark programs", http.StatusServiceUnavailable)
		return
	}
	// A fast-burning SLO degrades readiness: fall out of the load
	// balancer while error budget is burning at page speed.
	if burning := s.readyzDegraded(); len(burning) > 0 {
		http.Error(w, "slo fast-burn: "+strings.Join(burning, ", "), http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// runRequest is the POST /run body.
type runRequest struct {
	Benchmark string `json:"benchmark"`
}

// runRecord is one ledger row (and the POST /run success body) — the
// durable shape lives in internal/ledger.
type runRecord = ledger.Row

// requestTimeout resolves the run deadline: the -run-timeout default,
// tightened (never extended) by a client `Request-Timeout` header given
// as a Go duration ("2s", "500ms") or a plain number of seconds.
func (s *server) requestTimeout(r *http.Request) time.Duration {
	d := s.cfg.runTimeout
	h := strings.TrimSpace(r.Header.Get("Request-Timeout"))
	if h == "" {
		return d
	}
	var v time.Duration
	if dur, err := time.ParseDuration(h); err == nil && dur > 0 {
		v = dur
	} else if secs, err := strconv.ParseFloat(h, 64); err == nil && secs > 0 {
		v = time.Duration(secs * float64(time.Second))
	} else {
		return d
	}
	if v < d {
		return v
	}
	return d
}

// retryAfter returns the Retry-After hint for a shed request: when the
// sampler has queue-wait history, the recent p90 (clamped to 1..30s) —
// clients back off for about as long as the queue actually takes —
// otherwise a jittered 1..4s from a seeded stream, so shed clients
// spread their retries instead of stampeding back in lockstep.
func (s *server) retryAfter() int {
	if hint, ok := s.pressureRetryAfter(); ok {
		return hint
	}
	s.retryMu.Lock()
	defer s.retryMu.Unlock()
	return 1 + s.retry.IntN(4)
}

// append records row in the ledger. Persistence failures are logged by
// the ledger and must not fail the request — the daemon keeps serving
// with degraded durability.
func (s *server) append(ctx context.Context, row ledger.Row) {
	_ = s.ledger.Append(ctx, row)
}

// runGuarded is the per-request panic isolation boundary around the
// simulation: a panic anywhere below (the suite has its own recover,
// this one backstops the wiring above it) becomes this run's error —
// one 500 and a failed ledger row, never a dead daemon.
func (s *server) runGuarded(ctx context.Context, name string) (st sim.Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("run panic: %v", r)
		}
	}()
	return s.suite.RunOnce(ctx, name)
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	rec := reqtrace.From(r.Context())
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if req.Benchmark == "" {
		writeJSONError(w, http.StatusBadRequest, `missing "benchmark"`)
		return
	}
	if _, err := s.suite.Program(req.Benchmark); err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Every validated request gets a durable ledger identity, including
	// the ones admission sheds — a 503 is an outcome worth debugging too.
	row := ledger.Row{
		ID:        s.ledger.NewID(),
		Benchmark: req.Benchmark,
		ConfigKey: s.configKey,
		TraceID:   rec.TraceID(),
		Start:     time.Now().UTC().Format(time.RFC3339Nano),
		Status:    ledger.StatusAccepted,
	}
	rec.AnnotateInt(reqtrace.Root, "run_id", row.ID)
	rec.AnnotateStr(reqtrace.Root, "benchmark", req.Benchmark)
	s.append(r.Context(), row)

	// One deadline covers queueing and the simulation.
	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(r))
	defer cancel()

	sp := rec.Start(reqtrace.Root, "queue.wait")
	verdict := s.adm.acquire(ctx, req.Benchmark)
	rec.AnnotateStr(sp, "verdict", verdict.String())
	if verdict != admitted {
		rec.AnnotateBool(sp, "rejected", true)
	}
	rec.End(sp)
	switch verdict {
	case admitted:
	case admitQueueFull, admitDraining:
		s.reg.Counter(metricSheds, "POST /run requests shed by admission control, by benchmark and reason",
			metrics.L("benchmark", req.Benchmark), metrics.L("reason", verdict.String())).Inc()
		row.Status = ledger.StatusRejected
		row.HTTPStatus = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		row.Error = fmt.Sprintf("at capacity (%d runs in flight, %s)", cap(s.adm.slots), verdict)
		s.finishRun(w, rec, row, nil, row.Error)
		return
	case admitTimeout:
		row.Status = ledger.StatusTimeout
		row.HTTPStatus = http.StatusGatewayTimeout
		row.Error = "deadline expired while queued"
		s.finishRun(w, rec, row, nil, row.Error)
		return
	case admitCanceled:
		row.Status = ledger.StatusCanceled
		row.HTTPStatus = http.StatusServiceUnavailable
		row.Error = "client went away while queued"
		s.finishRun(w, rec, row, nil, row.Error)
		return
	}
	defer s.adm.release()
	s.runWG.Add(1)
	defer s.runWG.Done()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	s.inflightRuns.Add(1)
	defer s.inflightRuns.Add(-1)

	row.Status = ledger.StatusRunning
	s.inflight.Store(row.ID, row)
	defer s.inflight.Delete(row.ID)
	s.append(ctx, row)

	start := time.Now()
	st, err := s.runGuarded(ctx, req.Benchmark)
	row.WallSeconds = time.Since(start).Seconds()
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			row.Status = ledger.StatusTimeout
			row.HTTPStatus = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			// The client went away mid-run; 499-style, but stay standard.
			row.Status = ledger.StatusCanceled
			row.HTTPStatus = http.StatusServiceUnavailable
		default:
			row.Status = ledger.StatusFailed
			row.HTTPStatus = http.StatusInternalServerError
		}
		row.Error = err.Error()
		s.finishRun(w, rec, row, nil, err.Error())
		return
	}
	row.Status = ledger.StatusOK
	row.HTTPStatus = http.StatusOK
	row.Cycles = st.Cycles
	row.Instructions = st.Instructions
	row.StatsDigest = statsDigest(&st)
	s.finishRun(w, rec, row, &st.Stalls, "")
}

// statsDigest renders the cross-restart outcome digest of one run: the
// cycle and instruction totals plus the CPI stack, in cause order.
func statsDigest(st *sim.Stats) string {
	stalls := make([]int64, 0, len(trace.Causes()))
	for _, c := range trace.Causes() {
		stalls = append(stalls, st.Stalls[c])
	}
	return ledger.StatsDigest(st.Cycles, st.Instructions, stalls)
}

// finishRun is the single exit of the /run attempt path: it writes the
// response inside an "encode.json" span, appends the terminal ledger
// row (a "wal.append" span when durable), and files the finished span
// bundle in the flight recorder under the run's id so GET /runs/{id}
// can replay the request.
func (s *server) finishRun(w http.ResponseWriter, rec *reqtrace.Recorder, row runRecord, stalls *trace.Breakdown, errMsg string) {
	rec.AnnotateStr(reqtrace.Root, "status", row.Status)
	sp := rec.Start(reqtrace.Root, "encode.json")
	if errMsg != "" {
		writeJSONError(w, row.HTTPStatus, errMsg)
	} else {
		writeJSON(w, row.HTTPStatus, row)
	}
	rec.End(sp)
	s.append(reqtrace.With(context.Background(), rec), row)
	s.reg.Counter(metricRunsTotal, "runs recorded in the ledger, by status",
		metrics.L("status", row.Status)).Inc()
	bundle := rec.Finish()
	d := &runDebug{runRecord: row, Stalls: stalls, Trace: bundle}
	if b, ok := bundle.IntAttr("snapshot.restore", "bytes"); ok {
		d.RestoreBytes = b
	}
	if c, ok := bundle.StrAttr("decode.lookup", "cache"); ok {
		d.DecodeCache = c
	}
	s.flight.Put(strconv.FormatInt(row.ID, 10), d)
}

func (s *server) handleRuns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Runs []runRecord `json:"runs"`
	}{Runs: s.ledger.List()})
}

// handleRunByID serves the flight-recorder debug bundle of one run:
// ledger row, CPI-stack stall breakdown, restore/decode activity, and
// the full span timeline.
func (s *server) handleRunByID(w http.ResponseWriter, r *http.Request) {
	d, ok := s.flight.Get(r.PathValue("id"))
	if !ok {
		writeJSONError(w, http.StatusNotFound,
			fmt.Sprintf("no run %q in the flight recorder", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, d)
}

// handleRunTrace exports one run's span timeline as Chrome Trace Event
// JSON — the same format camsim -trace emits for simulated pipelines —
// loadable in ui.perfetto.dev or chrome://tracing.
func (s *server) handleRunTrace(w http.ResponseWriter, r *http.Request) {
	d, ok := s.flight.Get(r.PathValue("id"))
	if !ok {
		writeJSONError(w, http.StatusNotFound,
			fmt.Sprintf("no run %q in the flight recorder", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := d.Trace.WriteChrome(w); err != nil {
		s.logger.Error("trace write", "err", err)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	// The suite's errors already carry a "bench: " prefix; strip it so
	// clients see the fact, not the package.
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{Error: strings.TrimPrefix(msg, "bench: ")})
}

// runDebug is the GET /runs/{id} body: the ledger row joined with the
// run's simulator stall attribution and its wall-clock span timeline.
type runDebug struct {
	runRecord
	// Stalls is the attributed CPI stack of the simulated run (absent on
	// rejected/failed requests): where the simulated cycles went, while
	// Trace says where the host wall time went.
	Stalls *trace.Breakdown `json:"stall_breakdown,omitempty"`
	// RestoreBytes is the dirty-page volume the warm-start restore
	// copied for this run (0 when the run built a machine cold).
	RestoreBytes int64 `json:"restore_bytes"`
	// DecodeCache is the decode-cache outcome ("hit"/"miss") when this
	// request performed the lookup; steady-state warm runs load the
	// pre-decoded program via the snapshot and never look up.
	DecodeCache string `json:"decode_cache,omitempty"`
	// Trace is the span timeline (reqtrace bundle) of the request.
	Trace *reqtrace.Bundle `json:"trace"`
}
