package main

// The observability loop (docs/OBSERVABILITY.md, "Metrics history, SLOs,
// and autoscaling"): with -sample-interval set, camserve samples its own
// metrics registry into an in-process tsdb ring on every tick, evaluates
// the -slo burn-rate rules against that history, and (with -autoscale)
// drives the machine pool's prewarm/shrink levers from the observed
// queue pressure. The history feeds three endpoints — GET /vars (JSON),
// GET /alerts (rule states), GET /dash (server-rendered HTML with SVG
// sparklines) — and two closed loops: /readyz degrades to 503 while any
// fast-burn rule fires, and shed Retry-After hints stretch to the recent
// queue-wait p90 instead of blind jitter.

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"time"

	"cambricon/internal/metrics"
	"cambricon/internal/tsdb"
)

// Metric names owned by the observability loop.
const (
	metricInflightRuns = "cambricon_serve_inflight_runs"
)

// retryHintWindow is how far back the pressure-aware Retry-After looks
// for a queue-wait p90.
const retryHintWindow = 2 * time.Minute

// retryAfterMax caps the pressure-derived hint; the jittered fallback
// stays at 1..4 seconds.
const retryAfterMax = 30

// defaultVarsWindow bounds /vars, /alerts and /dash queries when the
// request names no ?window.
const defaultVarsWindow = 10 * time.Minute

// observe is the sampling loop: one registry sample (plus a runtime
// collection, so Go memory gauges have history too) and one autoscaler
// tick per -sample-interval, until ctx ends. Run as a goroutine; tests
// call observeTick directly under an injected clock instead.
func (s *server) observe(ctx context.Context) {
	t := time.NewTicker(s.cfg.sampleInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.observeTick()
		}
	}
}

// observeTick performs one sampling pass and one autoscaler step.
func (s *server) observeTick() {
	s.runtime.Collect()
	s.tsdb.Sample()
	if s.scaler != nil {
		s.scaler.tick(s.clock())
	}
}

// alerts evaluates the installed SLO rules against the sampled history
// (nil when sampling or rules are disabled).
func (s *server) alerts() []tsdb.Alert {
	if s.tsdb == nil || len(s.sloRules) == 0 {
		return nil
	}
	return tsdb.Eval(s.tsdb, s.sloRules)
}

// pressureRetryAfter derives a Retry-After hint from the recent
// queue-wait p90: a shed during real congestion tells clients to stay
// away for about as long as the queue is actually taking, clamped to
// [1s, 30s]. ok is false when the sampler is off or has no queue-wait
// observations yet — callers fall back to the jittered 1..4s hint.
func (s *server) pressureRetryAfter() (int, bool) {
	p90, ok := s.tsdb.Quantile(metricQueueWait, 0.9, retryHintWindow)
	if !ok {
		return 0, false
	}
	hint := int(math.Ceil(p90))
	if hint < 1 {
		hint = 1
	}
	if hint > retryAfterMax {
		hint = retryAfterMax
	}
	return hint, true
}

// queryWindow resolves the ?window= parameter (Go duration syntax) with
// a default and a cap at the store's retention.
func (s *server) queryWindow(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("window")
	if raw == "" {
		return defaultVarsWindow, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("bad window %q (want a positive Go duration like 30s or 5m)", raw)
	}
	return d, nil
}

// handleVars serves the sampled metrics history as JSON.
func (s *server) handleVars(w http.ResponseWriter, r *http.Request) {
	if s.tsdb == nil {
		writeJSONError(w, http.StatusNotFound, "metrics history disabled (start camserve with -sample-interval)")
		return
	}
	window, err := s.queryWindow(r)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := s.tsdb.WriteVars(w, window); err != nil {
		s.logger.Error("vars write", "err", err)
	}
}

// handleAlerts serves the SLO rule evaluations.
func (s *server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if s.tsdb == nil {
		writeJSONError(w, http.StatusNotFound, "slo alerts disabled (start camserve with -sample-interval)")
		return
	}
	alerts := s.alerts()
	if alerts == nil {
		alerts = []tsdb.Alert{}
	}
	writeJSON(w, http.StatusOK, struct {
		Alerts      []tsdb.Alert `json:"alerts"`
		FastBurning []string     `json:"fast_burning,omitempty"`
	}{Alerts: alerts, FastBurning: tsdb.FastBurning(alerts)})
}

// handleDash serves the server-rendered HTML dashboard.
func (s *server) handleDash(w http.ResponseWriter, r *http.Request) {
	if s.tsdb == nil {
		writeJSONError(w, http.StatusNotFound, "dashboard disabled (start camserve with -sample-interval)")
		return
	}
	window, err := s.queryWindow(r)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := s.tsdb.WriteDash(w, window, s.alerts()); err != nil {
		s.logger.Error("dash write", "err", err)
	}
}

// setupObservability wires the tsdb sampler, SLO rules and autoscaler
// from the server config; a zero sample interval disables all three
// (and rejects -slo/-autoscale, which would silently do nothing).
func (s *server) setupObservability(reg *metrics.Registry) error {
	cfg := s.cfg
	if s.clock == nil {
		s.clock = time.Now
	}
	if cfg.sampleInterval <= 0 {
		if cfg.sloSpec != "" && cfg.sloSpec != "none" {
			return fmt.Errorf("-slo requires -sample-interval")
		}
		if cfg.autoscaleSpec != "" {
			return fmt.Errorf("-autoscale requires -sample-interval")
		}
		return nil
	}
	s.tsdb = tsdb.New(reg, tsdb.Options{
		Interval: cfg.sampleInterval,
		Now:      s.clock,
		Metrics:  reg,
	})
	if cfg.sloSpec == "" {
		s.sloRules = tsdb.DefaultRules()
	} else {
		rules, err := tsdb.ParseRules(cfg.sloSpec)
		if err != nil {
			return err
		}
		s.sloRules = rules
	}
	if cfg.autoscaleSpec != "" {
		asCfg, err := parseAutoscale(cfg.autoscaleSpec)
		if err != nil {
			return err
		}
		s.scaler = newAutoscaler(asCfg, s.suite, s.tsdb, reg, s.clock())
	}
	return nil
}

// readyzDegraded reports the fast-burning rule names (empty when healthy
// or when the SLO engine is off) for /readyz to surface as a 503: a
// service burning error budget at page speed should fall out of its
// load balancer before it pages anyone.
func (s *server) readyzDegraded() []string {
	return tsdb.FastBurning(s.alerts())
}
