package main

// The metrics-driven pool autoscaler (docs/OBSERVABILITY.md, "Metrics
// history, SLOs, and autoscaling"): a tick-based control loop over the
// tsdb history that pre-builds pooled machines when queue pressure
// appears — an admitted request then finds a 16 MiB machine waiting
// instead of paying its construction on the request path — and releases
// idle machines (and, at the floor, the prepared snapshots) back to the
// collector once traffic quiesces. Pressure is read from the sampled
// cambricon_serve_queue_wait_seconds history, activity from the
// cambricon_bench_runs_started_total rate, so the loop reacts to what
// the service actually experienced rather than instantaneous gauges.

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"cambricon/internal/bench"
	"cambricon/internal/metrics"
	"cambricon/internal/tsdb"
)

// Metric names owned by the autoscaler.
const (
	metricPoolScaleUp   = "cambricon_pool_scale_up_total"
	metricPoolScaleDown = "cambricon_pool_scale_down_total"
	metricPoolTarget    = "cambricon_pool_target_size"
	metricPoolIdle      = "cambricon_pool_idle_machines"
)

// autoscaleConfig is the parsed -autoscale spec.
type autoscaleConfig struct {
	min, max int           // idle-machine target bounds
	step     int           // machines added/removed per scaling decision
	idle     time.Duration // quiet time before scaling down a step
	window   time.Duration // history window pressure/activity are read over
}

// parseAutoscale parses a -autoscale spec of comma-separated key=value
// pairs: min, max, step (machine counts), idle, window (Go durations).
// Example: `min=0,max=4,step=2,idle=30s,window=10s`. Omitted keys take
// the defaults min=0 max=4 step=1 idle=1m window=10s.
func parseAutoscale(spec string) (autoscaleConfig, error) {
	cfg := autoscaleConfig{min: 0, max: 4, step: 1, idle: time.Minute, window: 10 * time.Second}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return cfg, fmt.Errorf("bad -autoscale fragment %q (want key=value)", part)
		}
		switch key {
		case "min", "max", "step":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return cfg, fmt.Errorf("bad -autoscale %s=%q (want a non-negative integer)", key, val)
			}
			switch key {
			case "min":
				cfg.min = n
			case "max":
				cfg.max = n
			case "step":
				cfg.step = n
			}
		case "idle", "window":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return cfg, fmt.Errorf("bad -autoscale %s=%q (want a positive duration)", key, val)
			}
			if key == "idle" {
				cfg.idle = d
			} else {
				cfg.window = d
			}
		default:
			return cfg, fmt.Errorf("unknown -autoscale key %q (want min/max/step/idle/window)", key)
		}
	}
	if cfg.max < cfg.min {
		return cfg, fmt.Errorf("-autoscale max=%d below min=%d", cfg.max, cfg.min)
	}
	if cfg.step <= 0 {
		cfg.step = 1
	}
	return cfg, nil
}

// autoscaler is the control loop state. tick is only ever called from
// the single observe goroutine (or a test driving it directly), so the
// fields need no lock; the suite's pool levers do their own locking.
type autoscaler struct {
	cfg   autoscaleConfig
	suite *bench.Suite
	store *tsdb.Store

	target       int
	lastActive   time.Time
	droppedSnaps bool

	scaleUp   *metrics.Counter
	scaleDown *metrics.Counter
	targetG   *metrics.Gauge
	idleG     *metrics.Gauge
}

func newAutoscaler(cfg autoscaleConfig, suite *bench.Suite, store *tsdb.Store, reg *metrics.Registry, now time.Time) *autoscaler {
	a := &autoscaler{
		cfg:        cfg,
		suite:      suite,
		store:      store,
		target:     cfg.min,
		lastActive: now,
		scaleUp:    reg.Counter(metricPoolScaleUp, "autoscaler decisions that raised the pool target"),
		scaleDown:  reg.Counter(metricPoolScaleDown, "autoscaler decisions that lowered the pool target"),
		targetG:    reg.Gauge(metricPoolTarget, "idle pooled machines the autoscaler is steering toward"),
		idleG:      reg.Gauge(metricPoolIdle, "machines sitting idle on the pool free lists"),
	}
	a.targetG.Set(int64(cfg.min))
	return a
}

// tick makes one scaling decision against the sampled history and
// applies it to the pool.
func (a *autoscaler) tick(now time.Time) {
	// Pressure: requests spent time in the admission queue during the
	// window. Activity: any runs started (a busy-but-unqueued service
	// must not be scaled down, even though it needs no growth).
	queueRate, qok := a.store.CountRate(metricQueueWait, a.cfg.window)
	pressure := qok && queueRate > 0
	runRate, rok := a.store.Rate(bench.MetricRunsStarted, a.cfg.window)
	active := pressure || (rok && runRate > 0)
	if active {
		a.lastActive = now
		a.droppedSnaps = false
	}

	switch {
	case pressure && a.target < a.cfg.max:
		a.target += a.cfg.step
		if a.target > a.cfg.max {
			a.target = a.cfg.max
		}
		a.scaleUp.Inc()
	case !active && now.Sub(a.lastActive) >= a.cfg.idle && a.target > a.cfg.min:
		a.target -= a.cfg.step
		if a.target < a.cfg.min {
			a.target = a.cfg.min
		}
		a.scaleDown.Inc()
	}
	a.targetG.Set(int64(a.target))

	idle := a.suite.PoolIdle()
	if idle < a.target {
		// Best-effort: a prewarm failure costs warmth, not correctness —
		// requests fall back to building machines on the request path.
		_, _ = a.suite.PoolPrewarm(a.target)
	} else if idle > a.target && !active {
		a.suite.PoolShrink(a.target)
	}
	a.idleG.Set(int64(a.suite.PoolIdle()))

	// At the floor with a fully quiesced service, hand the prepared
	// snapshots back too — once per quiet period.
	if a.target == a.cfg.min && !active && !a.droppedSnaps && now.Sub(a.lastActive) >= a.cfg.idle {
		a.suite.DropPreparedSnapshots()
		a.droppedSnaps = true
	}
}
