package main

// Tests for the request-tracing middleware and the flight recorder
// (docs/OBSERVABILITY.md, "Request tracing & the flight recorder"):
// W3C traceparent join/mint/propagate, the rejected-request span, the
// GET /runs/{id} debug bundle, and the Chrome Trace Event export.

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"cambricon/internal/reqtrace"
)

const testTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

// postRunHeader is postRun with a traceparent request header; it returns
// the response (body closed) and the decoded success record.
func postRunHeader(t *testing.T, ts *httptest.Server, benchmark, traceparent string) (*http.Response, runRecord) {
	t.Helper()
	body, _ := json.Marshal(runRequest{Benchmark: benchmark})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rec runRecord
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
			t.Fatal(err)
		}
	}
	return resp, rec
}

// getRunDebug fetches GET /runs/{id} and decodes the debug bundle.
func getRunDebug(t *testing.T, ts *httptest.Server, id string) (*http.Response, runDebug) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var d runDebug
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			t.Fatal(err)
		}
	}
	return resp, d
}

// findSpan returns the first span with the given name, or nil.
func findSpan(b *reqtrace.Bundle, name string) *reqtrace.Span {
	if b == nil {
		return nil
	}
	for i := range b.Spans {
		if b.Spans[i].Name == name {
			return &b.Spans[i]
		}
	}
	return nil
}

// TestTraceparentPropagation: a request carrying a valid W3C traceparent
// joins that trace — the response header, the ledger row and the flight
// recorder all carry the caller's trace id (with camserve's own span id
// substituted, per the spec).
func TestTraceparentPropagation(t *testing.T) {
	_, ts := testServer(t, 2, 8)
	resp, rec := postRunHeader(t, ts, "MLP", testTraceparent)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /run = %d", resp.StatusCode)
	}
	const wantTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	if rec.TraceID != wantTrace {
		t.Fatalf("record trace_id = %q, want %q", rec.TraceID, wantTrace)
	}
	out := resp.Header.Get("traceparent")
	parts := strings.Split(out, "-")
	if len(parts) != 4 || parts[0] != "00" || parts[1] != wantTrace {
		t.Fatalf("response traceparent %q does not continue trace %s", out, wantTrace)
	}
	if parts[2] == "00f067aa0ba902b7" {
		t.Fatalf("response traceparent %q reuses the caller's span id; camserve must substitute its own", out)
	}
	// The flight recorder joins on the same trace.
	dresp, d := getRunDebug(t, ts, "1")
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /runs/1 = %d", dresp.StatusCode)
	}
	if d.Trace == nil || d.Trace.TraceID != wantTrace {
		t.Fatalf("flight-recorder bundle %+v not on trace %s", d.Trace, wantTrace)
	}
	if d.TraceID != wantTrace {
		t.Fatalf("debug row trace_id = %q, want %q", d.TraceID, wantTrace)
	}
}

// TestTraceparentMintedWhenAbsentOrMalformed: with no usable incoming
// context camserve mints a fresh root — a well-formed, non-zero 32-hex
// trace id that is NOT the malformed header's id.
func TestTraceparentMintedWhenAbsentOrMalformed(t *testing.T) {
	_, ts := testServer(t, 2, 8)
	for _, tc := range []struct {
		name, header string
	}{
		{"absent", ""},
		{"malformed", "00-ZZZ92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"truncated", "00-4bf92f3577b34da6"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, rec := postRunHeader(t, ts, "MLP", tc.header)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("POST /run = %d", resp.StatusCode)
			}
			if len(rec.TraceID) != 32 || rec.TraceID == strings.Repeat("0", 32) {
				t.Fatalf("minted trace id %q is not a 32-hex non-zero id", rec.TraceID)
			}
			if strings.Contains(tc.header, rec.TraceID) {
				t.Fatalf("trace id %q was salvaged from malformed header %q", rec.TraceID, tc.header)
			}
			out := resp.Header.Get("traceparent")
			if _, ok := reqtrace.ParseTraceparent(out); !ok {
				t.Fatalf("response traceparent %q does not parse", out)
			}
			if !strings.Contains(out, rec.TraceID) {
				t.Fatalf("response traceparent %q disagrees with record trace id %q", out, rec.TraceID)
			}
		})
	}
}

// TestRejectedRunRecordsSpan: a 503 capacity bounce is a first-class
// observable outcome — the ledger row says rejected/503 and the flight
// recorder holds a queue.wait span carrying the shed verdict.
func TestRejectedRunRecordsSpan(t *testing.T) {
	s, ts := testServer(t, 1, 8)
	s.adm.slots <- struct{}{} // occupy the only slot
	resp, _ := postRun(t, ts, "MLP")
	<-s.adm.slots
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated POST /run = %d, want 503", resp.StatusCode)
	}
	dresp, d := getRunDebug(t, ts, "1")
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /runs/1 = %d; rejected runs must reach the flight recorder", dresp.StatusCode)
	}
	if d.Status != "rejected" || d.HTTPStatus != http.StatusServiceUnavailable {
		t.Fatalf("rejected row = %+v, want status=rejected http_status=503", d.runRecord)
	}
	sp := findSpan(d.Trace, "queue.wait")
	if sp == nil {
		t.Fatalf("no queue.wait span in rejected bundle: %+v", d.Trace)
	}
	var rejected bool
	var verdict string
	for _, a := range sp.Attrs {
		switch a.Key {
		case "rejected":
			if b, ok := a.Value.(bool); ok && b {
				rejected = true
			}
		case "verdict":
			verdict, _ = a.Value.(string)
		}
	}
	if !rejected {
		t.Fatalf("queue.wait span %+v missing rejected=true attr", sp)
	}
	if verdict != "queue-full" {
		t.Fatalf("queue.wait verdict = %q, want queue-full", verdict)
	}
	if d.Stalls != nil {
		t.Fatalf("rejected run has a stall breakdown %+v; nothing was simulated", d.Stalls)
	}
}

// TestRunDebugBundle: a successful warm run's GET /runs/{id} joins the
// ledger row with the span timeline, the CPI-stack stall breakdown
// (summing exactly to the cycle count), restore bytes and HTTP status.
func TestRunDebugBundle(t *testing.T) {
	_, ts := testServer(t, 2, 8)
	// First run pays snapshot prep; the second is the steady-state warm
	// request whose flight-recorder entry we assert.
	if resp, _ := postRun(t, ts, "MLP"); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup run = %d", resp.StatusCode)
	}
	resp, rec := postRun(t, ts, "MLP")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /run = %d", resp.StatusCode)
	}
	dresp, d := getRunDebug(t, ts, "2")
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /runs/2 = %d", dresp.StatusCode)
	}
	if d.HTTPStatus != http.StatusOK || d.Status != "ok" || d.Cycles != rec.Cycles {
		t.Fatalf("debug row %+v disagrees with response %+v", d.runRecord, rec)
	}
	if d.Stalls == nil {
		t.Fatal("debug bundle missing stall breakdown")
	}
	if sum := d.Stalls.Sum(); sum != d.Cycles {
		t.Fatalf("stall breakdown sums to %d, want exactly cycles=%d", sum, d.Cycles)
	}
	if d.RestoreBytes <= 0 {
		t.Fatalf("warm run restore_bytes = %d, want > 0", d.RestoreBytes)
	}
	for _, want := range []string{"queue.wait", "pool.acquire", "snapshot.restore", "sim.run", "wal.append", "encode.json"} {
		if findSpan(d.Trace, want) == nil {
			t.Fatalf("span %q missing from bundle: %+v", want, d.Trace.Spans)
		}
	}
}

// TestRunByIDNotFound: unknown and non-numeric ids are JSON 404s, and
// ids evicted from the bounded flight store 404 too.
func TestRunByIDNotFound(t *testing.T) {
	_, ts := testServer(t, 2, 2) // flight recorder bounded to 2 entries
	for _, id := range []string{"99", "not-a-number"} {
		resp, _ := getRunDebug(t, ts, id)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET /runs/%s = %d, want 404", id, resp.StatusCode)
		}
	}
	for i := 0; i < 3; i++ {
		if resp, _ := postRun(t, ts, "MLP"); resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d failed", i)
		}
	}
	// Run 1 was evicted by run 3; runs 2 and 3 remain.
	if resp, _ := getRunDebug(t, ts, "1"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted GET /runs/1 = %d, want 404", resp.StatusCode)
	}
	if resp, _ := getRunDebug(t, ts, "3"); resp.StatusCode != http.StatusOK {
		t.Fatalf("retained GET /runs/3 = %d, want 200", resp.StatusCode)
	}
}

// TestRunTraceChromeExport: GET /runs/{id}/trace is structurally valid
// Chrome Trace Event JSON — the shape ui.perfetto.dev loads.
func TestRunTraceChromeExport(t *testing.T) {
	_, ts := testServer(t, 2, 8)
	if resp, _ := postRun(t, ts, "MLP"); resp.StatusCode != http.StatusOK {
		t.Fatal("run failed")
	}
	resp, err := http.Get(ts.URL + "/runs/1/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /runs/1/trace = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("trace content-type %q", ct)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	var complete int
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			complete++
			names[ev.Name] = true
			if ev.Dur < 0 || ev.TS < 0 {
				t.Fatalf("event %+v has negative timing", ev)
			}
		}
	}
	if complete < 3 {
		t.Fatalf("only %d complete (X) events in trace, want at least request+queue.wait+sim.run", complete)
	}
	for _, want := range []string{"request", "sim.run"} {
		if !names[want] {
			t.Fatalf("trace events %v missing %q", names, want)
		}
	}
	// 404 for unknown ids on the trace route too.
	r2, err := http.Get(ts.URL + "/runs/99/trace")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /runs/99/trace = %d, want 404", r2.StatusCode)
	}
}

// TestAccessLogCarriesTraceID: the slog access line for a request joins
// the trace — both in text and JSON formats — so logs correlate with
// GET /runs/{id} without extra plumbing.
func TestAccessLogCarriesTraceID(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	s, err := newServer(serverConfig{seed: 7, warm: true, predecode: true, maxInflight: 2, ledgerSize: 8}, logger)
	if err != nil {
		t.Fatal(err)
	}
	s.warmup()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	resp, _ := postRunHeader(t, ts, "MLP", testTraceparent)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /run = %d", resp.StatusCode)
	}
	var line struct {
		Msg     string `json:"msg"`
		Path    string `json:"path"`
		TraceID string `json:"trace_id"`
		Status  int    `json:"status"`
	}
	found := false
	for _, raw := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if err := json.Unmarshal([]byte(raw), &line); err != nil {
			continue
		}
		if line.Msg == "request" && line.Path == "/run" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no /run access-log line in:\n%s", buf.String())
	}
	if line.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("access log trace_id = %q, want the caller's trace", line.TraceID)
	}
	if line.Status != http.StatusOK {
		t.Fatalf("access log status = %d, want 200", line.Status)
	}
}

// TestBuildLogger: the -log-format flag selects the slog handler, and
// unknown formats are a startup error, not a silent default.
func TestBuildLogger(t *testing.T) {
	if _, err := buildLogger(os.Stderr, "text"); err != nil {
		t.Fatalf("text: %v", err)
	}
	if _, err := buildLogger(os.Stderr, "json"); err != nil {
		t.Fatalf("json: %v", err)
	}
	if _, err := buildLogger(os.Stderr, "yaml"); err == nil {
		t.Fatal("unknown format accepted; want an error")
	}
}

// TestDebugHandlerServesPprof: the opt-in debug mux serves the pprof
// index without touching the public handler.
func TestDebugHandlerServesPprof(t *testing.T) {
	ts := httptest.NewServer(debugHandler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ = %d", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(b), "goroutine") {
		t.Fatal("pprof index does not list profiles")
	}

	// The public handler must NOT expose pprof.
	_, public := testServer(t, 1, 1)
	r2, err := http.Get(public.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode == http.StatusOK {
		t.Fatal("public handler serves /debug/pprof/; profiling must be opt-in via -debug-addr")
	}
}

// TestMetricsIncludeRuntimeFamilies: scraping camserve covers the Go
// runtime — the bridge collects on each scrape.
func TestMetricsIncludeRuntimeFamilies(t *testing.T) {
	_, ts := testServer(t, 2, 8)
	page := scrape(t, ts)
	if got := metricValue(t, page, "cambricon_go_goroutines"); got < 1 {
		t.Fatalf("cambricon_go_goroutines = %v, want >= 1", got)
	}
	if got := metricValue(t, page, "cambricon_go_mem_total_bytes"); got <= 0 {
		t.Fatalf("cambricon_go_mem_total_bytes = %v, want > 0", got)
	}
}
