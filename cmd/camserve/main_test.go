package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// testServer builds a memory-only server over a discarding logger and
// runs warmup synchronously so /readyz is deterministic in tests. Queue
// depth 0 keeps the historical semantics: no free slot means an
// immediate 503.
func testServer(t *testing.T, maxInflight, ledgerSize int) (*server, *httptest.Server) {
	t.Helper()
	return testServerCfg(t, serverConfig{
		seed: 7, warm: true, predecode: true,
		maxInflight: maxInflight, ledgerSize: ledgerSize,
	})
}

func testServerCfg(t *testing.T, cfg serverConfig) (*server, *httptest.Server) {
	t.Helper()
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	s, err := newServer(cfg, logger)
	if err != nil {
		t.Fatal(err)
	}
	s.warmup()
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postRun(t *testing.T, ts *httptest.Server, benchmark string) (*http.Response, runRecord) {
	t.Helper()
	body, _ := json.Marshal(runRequest{Benchmark: benchmark})
	resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rec runRecord
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
			t.Fatal(err)
		}
	}
	return resp, rec
}

// metricValue digs one un-labelled sample out of a Prometheus text page.
func metricValue(t *testing.T, page, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(page, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
		if err != nil {
			t.Fatalf("unparsable sample %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in page:\n%s", name, page)
	return 0
}

// labeledMetricValue digs one labelled sample out of a Prometheus text
// page; series is the full prefix, e.g. `name{a="b",c="d"}`.
func labeledMetricValue(t *testing.T, page, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(page, "\n") {
		if !strings.HasPrefix(line, series+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, series+" "), 64)
		if err != nil {
			t.Fatalf("unparsable sample %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("series %s not found in page:\n%s", series, page)
	return 0
}

func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content-type %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestHealthAndReadiness(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	s, err := newServer(serverConfig{seed: 7, warm: true, predecode: true, maxInflight: 2, ledgerSize: 8}, logger)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}
	// Not ready until warmup has generated the programs.
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before warmup = %d, want 503", resp.StatusCode)
	}
	s.warmup()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after warmup = %d", resp.StatusCode)
	}
}

func TestRunEndpoint(t *testing.T) {
	_, ts := testServer(t, 2, 8)
	resp, rec := postRun(t, ts, "MLP")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /run = %d", resp.StatusCode)
	}
	if rec.Status != "ok" || rec.Benchmark != "MLP" || rec.Cycles <= 0 || rec.ID != 1 {
		t.Fatalf("run record %+v", rec)
	}
	// Unknown benchmark and malformed body are client errors.
	resp, _ = postRun(t, ts, "no-such-benchmark")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown benchmark = %d, want 400", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body = %d, want 400", resp.StatusCode)
	}
	// Wrong method on a registered path.
	resp, err = http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /run = %d, want 405", resp.StatusCode)
	}
	// The run shows up in metrics and ledger.
	page := scrape(t, ts)
	if got := metricValue(t, page, "cambricon_bench_runs_completed_total"); got != 1 {
		t.Fatalf("runs completed = %v, want 1", got)
	}
}

func TestRunSaturationReturns503(t *testing.T) {
	s, ts := testServer(t, 1, 8)
	// Occupy the single slot; with queue depth 0 the next request must
	// bounce immediately, not queue.
	s.adm.slots <- struct{}{}
	resp, _ := postRun(t, ts, "MLP")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated POST /run = %d, want 503", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("503 missing Retry-After")
	}
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 || secs > 5 {
		t.Fatalf("Retry-After = %q, want a jittered 1..5 whole-second hint", ra)
	}
	<-s.adm.slots
	resp, _ = postRun(t, ts, "MLP")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /run after slot freed = %d", resp.StatusCode)
	}
	page := scrape(t, ts)
	if got := labeledMetricValue(t, page, metricSheds+`{benchmark="MLP",reason="queue-full"}`); got != 1 {
		t.Fatalf("%s{MLP,queue-full} = %v, want 1", metricSheds, got)
	}
}

// TestRetryAfterJitter: with no sampler (testServer runs without
// -sample-interval, so there is no queue-wait history) the Retry-After
// hint on shed load falls back to a seeded jitter stream over 1..4, not
// a constant — repeated sheds must see more than one value so clients
// spread their retries. The pressure-aware path is pinned by
// TestShedRetryAfterTracksQueueWait in observe_test.go.
func TestRetryAfterJitter(t *testing.T) {
	s, ts := testServer(t, 1, 64)
	s.adm.slots <- struct{}{}
	defer func() { <-s.adm.slots }()
	seen := map[string]bool{}
	for i := 0; i < 32; i++ {
		resp, _ := postRun(t, ts, "MLP")
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("shed %d = %d, want 503", i, resp.StatusCode)
		}
		seen[resp.Header.Get("Retry-After")] = true
	}
	if len(seen) < 2 {
		t.Fatalf("32 sheds produced Retry-After values %v; want jitter, not a constant", seen)
	}
}

// TestConcurrentRunsConsistentMetrics drives the acceptance criterion:
// 8 concurrent POST /run all succeed (the semaphore has 8 slots), every
// run reports the same deterministic cycle count, and /metrics agrees
// with the ledger afterwards.
func TestConcurrentRunsConsistentMetrics(t *testing.T) {
	const n = 8
	_, ts := testServer(t, n, 2*n)
	var wg sync.WaitGroup
	codes := make([]int, n)
	cycles := make([]int64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(runRequest{Benchmark: "MLP"})
			resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			var rec runRecord
			if json.NewDecoder(resp.Body).Decode(&rec) == nil {
				cycles[i] = rec.Cycles
			}
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d = %d, want 200 (semaphore has %d slots)", i, code, n)
		}
		if cycles[i] != cycles[0] {
			t.Fatalf("run %d reported %d cycles, run 0 reported %d — not deterministic",
				i, cycles[i], cycles[0])
		}
	}
	page := scrape(t, ts)
	if got := metricValue(t, page, "cambricon_bench_runs_completed_total"); got != n {
		t.Fatalf("runs completed = %v, want %d", got, n)
	}
	if got := metricValue(t, page, "cambricon_bench_runs_started_total"); got != n {
		t.Fatalf("runs started = %v, want %d", got, n)
	}
	if got := metricValue(t, page, metricInFlight); got != 0 {
		t.Fatalf("in-flight gauge = %v after the burst, want 0", got)
	}
	if got := metricValue(t, page, metricInflightRuns); got != 0 {
		t.Fatalf("inflight-runs gauge = %v after the burst, want 0 (admitted != completed)", got)
	}
	resp, err := http.Get(ts.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ledger struct {
		Runs []runRecord `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ledger); err != nil {
		t.Fatal(err)
	}
	if len(ledger.Runs) != n {
		t.Fatalf("ledger holds %d runs, want %d", len(ledger.Runs), n)
	}
	for _, r := range ledger.Runs {
		if r.Status != "ok" || r.Cycles != cycles[0] {
			t.Fatalf("ledger row %+v disagrees with responses", r)
		}
	}
}

func TestRunsLedgerRingNewestFirst(t *testing.T) {
	_, ts := testServer(t, 2, 3)
	for i := 0; i < 5; i++ {
		if resp, _ := postRun(t, ts, "MLP"); resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d = %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ledger struct {
		Runs []runRecord `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ledger); err != nil {
		t.Fatal(err)
	}
	if len(ledger.Runs) != 3 {
		t.Fatalf("ring retained %d rows, want 3", len(ledger.Runs))
	}
	for i, wantID := range []int64{5, 4, 3} {
		if ledger.Runs[i].ID != wantID {
			t.Fatalf("ledger order %+v, want ids newest-first 5,4,3", ledger.Runs)
		}
	}
}
