package main

// Admission-control tests: bounded queueing admits when a slot frees,
// drain sheds queued waiters and refuses new work, and finalize records
// un-drained runs as aborted.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"cambricon/internal/ledger"
)

// TestQueuedRequestAdmittedWhenSlotFrees: with queue depth > 0 a
// request that finds the slots busy waits instead of bouncing, and
// completes once the slot frees.
func TestQueuedRequestAdmittedWhenSlotFrees(t *testing.T) {
	s, ts := testServerCfg(t, serverConfig{
		seed: 7, warm: true, predecode: true, maxInflight: 1, queueDepth: 4, ledgerSize: 8,
	})
	s.adm.slots <- struct{}{} // occupy the only slot
	done := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(runRequest{Benchmark: "MLP"})
		resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	// The request must be queued, not answered, while the slot is held.
	select {
	case code := <-done:
		t.Fatalf("request answered %d while the slot was held; want it queued", code)
	case <-time.After(150 * time.Millisecond):
	}
	<-s.adm.slots // free the slot; the queued waiter takes it
	select {
	case code := <-done:
		if code != http.StatusOK {
			t.Fatalf("queued request = %d, want 200 after the slot freed", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("queued request never completed after the slot freed")
	}
}

// TestQueueOverflowShedsPerBenchmark: waiters beyond -queue-depth shed
// with queue-full while the queue itself keeps waiting.
func TestQueueOverflowSheds(t *testing.T) {
	s, ts := testServerCfg(t, serverConfig{
		seed: 7, warm: true, predecode: true, maxInflight: 1, queueDepth: 1, ledgerSize: 16,
	})
	s.adm.slots <- struct{}{}
	queued := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(runRequest{Benchmark: "MLP"})
		resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
		if err != nil {
			queued <- -1
			return
		}
		resp.Body.Close()
		queued <- resp.StatusCode
	}()
	// Wait until the waiter is registered in the queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.adm.mu.Lock()
		n := s.adm.waiting["MLP"]
		s.adm.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never joined the queue")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The queue is at depth: the next request sheds immediately.
	resp, _ := postRun(t, ts, "MLP")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-depth POST /run = %d, want 503", resp.StatusCode)
	}
	page := scrape(t, ts)
	if got := labeledMetricValue(t, page, metricSheds+`{benchmark="MLP",reason="queue-full"}`); got != 1 {
		t.Fatalf("queue-full sheds = %v, want 1", got)
	}
	<-s.adm.slots
	if code := <-queued; code != http.StatusOK {
		t.Fatalf("queued request = %d, want 200", code)
	}
}

// TestDrainShedsAndFinalizeRecordsAborted: startDrain turns new work
// into draining 503s, and finalize writes an aborted ledger row for
// whatever was still running when the drain deadline expired.
func TestDrainShedsAndFinalizeRecordsAborted(t *testing.T) {
	s, ts := testServerCfg(t, serverConfig{
		seed: 7, warm: true, predecode: true, maxInflight: 2, queueDepth: 4, ledgerSize: 8,
	})
	s.adm.startDrain()
	resp, _ := postRun(t, ts, "MLP")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /run while draining = %d, want 503", resp.StatusCode)
	}
	page := scrape(t, ts)
	if got := labeledMetricValue(t, page, metricSheds+`{benchmark="MLP",reason="draining"}`); got != 1 {
		t.Fatalf("draining sheds = %v, want 1", got)
	}
	// A run that never finished by the drain deadline gets an aborted row.
	id := s.ledger.NewID()
	row := ledger.Row{ID: id, Benchmark: "MLP", Start: "t", Status: ledger.StatusRunning}
	s.append(context.Background(), row)
	s.inflight.Store(id, row)
	if aborted := s.finalize(context.Background()); aborted != 1 {
		t.Fatalf("finalize recorded %d aborted runs, want 1", aborted)
	}
	got, ok := s.ledger.Get(id)
	if !ok || got.Status != ledger.StatusAborted || got.Error == "" {
		t.Fatalf("un-drained run row = %+v (found %v), want aborted with an error", got, ok)
	}
}
