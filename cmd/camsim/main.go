// Command camsim runs Cambricon programs on the cycle-approximate
// Cambricon-ACC simulator.
//
// Run an assembly file (optionally seeding registers and memory, and
// dumping memory regions afterwards):
//
//	camsim [-gpr n=v ...] [-poke addr=v0,v1,... ] [-dump addr:count ...] prog.cam
//
// Or run one of the built-in Table III benchmarks (generated, executed and
// verified against its float reference):
//
//	camsim -benchmark MLP [-seed 7] [-v]
//
// Or run all ten benchmarks across a worker pool (per-benchmark summaries
// print in table order regardless of scheduling):
//
//	camsim -benchmark all [-j 8]
//
// Observability (single runs only; see docs/OBSERVABILITY.md):
//
//	camsim -benchmark MLP -trace mlp.json    # Chrome Trace Event timeline
//	camsim -benchmark MLP -profile           # stall-attribution profile
//	camsim -benchmark MLP -profile-json p.json
//	camsim -itrace prog.cam                  # textual per-instruction trace
//
// Robustness (see docs/ROBUSTNESS.md):
//
//	camsim -max-cycles 100000 prog.cam       # watchdog: fail instead of hang
//	camsim -bin prog.bin                     # run a binary instruction image;
//	                                         # a corrupted image is a clean error
//
// Mid-run checkpointing (docs/PERF.md, Level 5): capture the machine at a
// dynamic instruction boundary into a CAMCKPT1 file, and later resume it
// to completion — the resumed run's statistics are bit-identical to the
// uninterrupted run's:
//
//	camsim -checkpoint-at 500 -checkpoint c.bin prog.cam
//	camsim -resume c.bin
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"cambricon"
	"cambricon/internal/asm"
	"cambricon/internal/bench"
	"cambricon/internal/codegen"
	"cambricon/internal/core"
	"cambricon/internal/fixed"
	"cambricon/internal/sim"
	"cambricon/internal/trace"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	var gprs, pokes, dumps multiFlag
	benchmark := flag.String("benchmark", "", "run a built-in benchmark (MLP, CNN, ..., Logistic), or \"all\"")
	workers := flag.Int("j", 0, "workers for -benchmark all (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 7, "benchmark generation seed")
	verbose := flag.Bool("v", false, "print the generated assembly before running")
	itrace := flag.Bool("itrace", false, "print a textual per-instruction execution trace")
	traceOut := flag.String("trace", "", "write a Chrome Trace Event / Perfetto timeline to this file (open at ui.perfetto.dev)")
	profileFlag := flag.Bool("profile", false, "print the stall-attribution profile after the run")
	profileJSON := flag.String("profile-json", "", "write the stall-attribution profile as JSON to this file")
	topN := flag.Int("top", 10, "opcode rows in the profile (0 = all)")
	hist := flag.Bool("hist", false, "print the dynamic opcode histogram")
	jsonOut := flag.Bool("json", false, "print run statistics as JSON")
	maxCycles := flag.Int64("max-cycles", 0, "watchdog: fail the run once the simulated clock passes this budget (0 = off)")
	warm := flag.Bool("warm", true, "with -benchmark all: reuse pooled, snapshot-restored machines across runs (false = build a machine per run)")
	predecode := flag.Bool("predecode", true, "run through the pre-decoded fused dispatch loop (false = per-step decode; statistics are bit-identical either way)")
	dumpDecoded := flag.Bool("dump-decoded", false, "print the pre-decoded listing with fusion decisions instead of running")
	binFlag := flag.Bool("bin", false, "treat the program argument as a binary instruction image (8 bytes per instruction, little-endian), not assembly text")
	ckptAt := flag.Int64("checkpoint-at", -1, "with a program file: capture a mid-run checkpoint at this dynamic instruction index, then continue (requires -checkpoint)")
	ckptOut := flag.String("checkpoint", "", "write the CAMCKPT1 checkpoint captured by -checkpoint-at to this file")
	resumeFile := flag.String("resume", "", "resume a CAMCKPT1 checkpoint file to completion instead of running a program")
	version := flag.Bool("version", false, "print the simulator version and exit")
	flag.Var(&gprs, "gpr", "initialize a register, e.g. -gpr 1=64 (repeatable)")
	flag.Var(&pokes, "poke", "write fixed-point values to main memory, e.g. -poke 100=1.5,2.25 (repeatable)")
	flag.Var(&dumps, "dump", "print a main-memory region after the run, e.g. -dump 200:8 (repeatable)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: camsim [flags] prog.cam\n       camsim -benchmark NAME [flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *version {
		fmt.Printf("camsim %s (cambricon-bench-sim)\n", cambricon.Version)
		return
	}

	if (*ckptAt >= 0) != (*ckptOut != "") {
		fmt.Fprintln(os.Stderr, "camsim: -checkpoint-at and -checkpoint go together")
		os.Exit(2)
	}

	if *resumeFile != "" {
		if *benchmark != "" || flag.NArg() > 0 || *ckptAt >= 0 {
			fmt.Fprintln(os.Stderr, "camsim: -resume replaces the program; drop -benchmark, -checkpoint-at and file arguments")
			os.Exit(2)
		}
		f, err := os.Open(*resumeFile)
		if err != nil {
			fatal(fmt.Errorf("-resume: %w", err))
		}
		stats, err := resumeCheckpoint(f, *maxCycles)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			printJSON(&stats)
		} else {
			fmt.Printf("%v\n", &stats)
		}
		if *hist {
			printHistogram(&stats)
		}
		return
	}

	cfg := sim.DefaultConfig()
	cfg.MaxCycles = *maxCycles
	m, err := sim.New(cfg)
	if err != nil {
		fatal(err)
	}
	if *itrace {
		m.SetTrace(os.Stdout)
	}

	if *benchmark != "" {
		if flag.NArg() > 0 {
			fmt.Fprintf(os.Stderr, "camsim: unexpected arguments %q with -benchmark\n", flag.Args())
			os.Exit(2)
		}
		if len(gprs)+len(pokes)+len(dumps) > 0 {
			fmt.Fprintln(os.Stderr, "camsim: -gpr/-poke/-dump are ignored with -benchmark (the benchmark carries its own image)")
		}
		if *ckptAt >= 0 {
			fmt.Fprintln(os.Stderr, "camsim: -checkpoint-at needs a program file (benchmarks verify against their reference model in one piece)")
			os.Exit(2)
		}
		if *benchmark == "all" {
			if *traceOut != "" || *profileFlag || *profileJSON != "" {
				fmt.Fprintln(os.Stderr, "camsim: -trace/-profile/-profile-json need a single run; use -benchmark NAME (or camrepro -profile-json for the whole suite)")
				os.Exit(2)
			}
			if *dumpDecoded {
				fmt.Fprintln(os.Stderr, "camsim: -dump-decoded needs a single program; use -benchmark NAME")
				os.Exit(2)
			}
			runAll(*seed, *workers, *jsonOut, *warm, *predecode)
			return
		}
		p, err := codegen.ByName(*benchmark, *seed)
		if err != nil {
			fatal(err)
		}
		if *dumpDecoded {
			dumpDecodedProgram(p.Asm.Instructions)
			return
		}
		obs := newObserver(m, *traceOut, *profileFlag, *profileJSON, *benchmark)
		if *verbose {
			fmt.Print(p.Source)
		}
		stats, err := executeBenchmark(p, m, *predecode)
		obs.finish(err, *topN)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			printJSON(&stats)
			return
		}
		fmt.Printf("%s: verified against reference model\n", p.Name)
		fmt.Printf("static code length: %d instructions\n", p.Len())
		fmt.Printf("%v\n", &stats)
		fmt.Printf("time at 1 GHz: %.2f us\n", stats.Seconds(1e9)*1e6)
		if *hist {
			printHistogram(&stats)
		}
		return
	}

	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var insts []core.Instruction
	if *binFlag {
		// A binary image carries no .data section; -poke seeds memory.
		insts, err = core.DecodeProgram(src)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", flag.Arg(0), err))
		}
	} else {
		prog, err := asm.Assemble(string(src))
		if err != nil {
			fatal(err)
		}
		// Apply the program's own .data image first; -poke can override it.
		for _, c := range prog.Data {
			if err := m.WriteMainNums(c.Addr, c.Values); err != nil {
				fatal(err)
			}
		}
		insts = prog.Instructions
	}
	for _, g := range gprs {
		reg, val, err := parsePair(g)
		if err != nil {
			fatal(fmt.Errorf("-gpr %s: %w", g, err))
		}
		m.SetGPR(uint8(reg), uint32(val))
	}
	for _, p := range pokes {
		addr, vals, err := parsePoke(p)
		if err != nil {
			fatal(fmt.Errorf("-poke %s: %w", p, err))
		}
		if err := m.WriteMainNums(addr, vals); err != nil {
			fatal(err)
		}
	}
	if *dumpDecoded {
		dumpDecodedProgram(insts)
		return
	}
	if *predecode {
		dp, err := sim.Predecode(insts)
		if err != nil {
			fatal(err)
		}
		m.LoadDecoded(dp)
	} else {
		m.LoadProgram(insts)
	}
	obs := newObserver(m, *traceOut, *profileFlag, *profileJSON, flag.Arg(0))
	var stats sim.Stats
	if *ckptAt >= 0 {
		f, cerr := os.Create(*ckptOut)
		if cerr != nil {
			fatal(fmt.Errorf("-checkpoint: %w", cerr))
		}
		stats, err = runCheckpointed(m, *ckptAt, f)
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("-checkpoint %s: %w", *ckptOut, cerr)
		}
	} else {
		stats, err = m.Run()
	}
	obs.finish(err, *topN)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		printJSON(&stats)
	} else {
		fmt.Printf("%v\n", &stats)
	}
	if *hist {
		printHistogram(&stats)
	}
	for _, d := range dumps {
		addr, count, err := parsePair(strings.Replace(d, ":", "=", 1))
		if err != nil {
			fatal(fmt.Errorf("-dump %s: %w", d, err))
		}
		ns, err := m.ReadMainNums(addr, count)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("[%d:%d] %v\n", addr, count, fixed.Floats(ns))
	}
}

// observer bundles the run's trace sinks: a Chrome timeline writer, a
// stall-attribution profile, or both, teed onto the machine.
type observer struct {
	chrome      *trace.Chrome
	chromeFile  *os.File
	chromePath  string
	profile     *trace.Profile
	profileText bool
	profilePath string
}

// newObserver opens the requested sinks, attaches them to m, and exits
// with a diagnostic if an output file cannot be created.
func newObserver(m *sim.Machine, tracePath string, profileText bool, profilePath, label string) *observer {
	o := &observer{chromePath: tracePath, profileText: profileText, profilePath: profilePath}
	var sinks []trace.Tracer
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fatal(fmt.Errorf("-trace: %w", err))
		}
		o.chromeFile = f
		o.chrome = trace.NewChrome(f)
		sinks = append(sinks, o.chrome)
	}
	if profileText || profilePath != "" {
		o.profile = trace.NewProfile()
		o.profile.Label = label
		sinks = append(sinks, o.profile)
	}
	if t := trace.Tee(sinks...); t != nil {
		m.SetTracer(t)
	}
	return o
}

// finish flushes the sinks after the run. The Chrome file is completed
// even when the run failed (the partial timeline is the most useful
// debugging artifact); profile output is suppressed on failure.
func (o *observer) finish(runErr error, topN int) {
	if o.chrome != nil {
		if err := o.chrome.Close(); err != nil {
			fatal(fmt.Errorf("-trace %s: %w", o.chromePath, err))
		}
		if err := o.chromeFile.Close(); err != nil {
			fatal(fmt.Errorf("-trace %s: %w", o.chromePath, err))
		}
	}
	if o.profile == nil || runErr != nil {
		return
	}
	rep := o.profile.Report(topN)
	if o.profileText {
		fmt.Print(rep.Render())
	}
	if o.profilePath != "" {
		f, err := os.Create(o.profilePath)
		if err != nil {
			fatal(fmt.Errorf("-profile-json: %w", err))
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			fatal(fmt.Errorf("-profile-json %s: %w", o.profilePath, err))
		}
		if err := f.Close(); err != nil {
			fatal(fmt.Errorf("-profile-json %s: %w", o.profilePath, err))
		}
	}
}

// executeBenchmark runs one generated benchmark, through the pre-decoded
// fused dispatch loop (the default) or the per-step decode path.
// Statistics are bit-identical either way.
func executeBenchmark(p *codegen.Program, m *sim.Machine, predecode bool) (sim.Stats, error) {
	if !predecode {
		return p.Execute(m)
	}
	if err := p.Init(m); err != nil {
		return sim.Stats{}, err
	}
	dp, err := sim.Predecode(p.Asm.Instructions)
	if err != nil {
		return sim.Stats{}, err
	}
	m.LoadDecoded(dp)
	return p.ExecutePreparedContext(context.Background(), m)
}

// runCheckpointed is the testable core of -checkpoint-at/-checkpoint:
// run the loaded program until the given dynamic instruction boundary,
// write the CAMCKPT1 checkpoint, and continue to completion. The final
// statistics are bit-identical to an uninterrupted run's; a program that
// ends before the boundary is an error (there is nothing to checkpoint).
func runCheckpointed(m *sim.Machine, at int64, w io.Writer) (sim.Stats, error) {
	stats, done, err := m.RunUntil(at)
	if err != nil {
		return stats, err
	}
	if done {
		return stats, fmt.Errorf("-checkpoint-at %d: program ended after %d instructions", at, stats.Instructions)
	}
	if err := sim.WriteCheckpoint(w, m.Checkpoint()); err != nil {
		return stats, fmt.Errorf("-checkpoint: %w", err)
	}
	return m.Resume()
}

// resumeCheckpoint is the testable core of -resume: rebuild the machine
// a CAMCKPT1 checkpoint describes and run it to completion. maxCycles,
// when positive, re-arms the watchdog for the remainder.
func resumeCheckpoint(r io.Reader, maxCycles int64) (sim.Stats, error) {
	snap, err := sim.ReadCheckpoint(r)
	if err != nil {
		return sim.Stats{}, err
	}
	m, err := sim.New(snap.Config())
	if err != nil {
		return sim.Stats{}, err
	}
	if maxCycles > 0 {
		m.SetMaxCycles(maxCycles)
	}
	if err := m.Restore(snap); err != nil {
		return sim.Stats{}, err
	}
	return m.Resume()
}

// dumpDecodedProgram prints the program's pre-decoded listing — encoded
// words, operand roles and the fusion plan — to stdout.
func dumpDecodedProgram(insts []core.Instruction) {
	if err := writeDecodedListing(os.Stdout, insts); err != nil {
		fatal(err)
	}
}

// writeDecodedListing is the testable core of -dump-decoded: pre-decode,
// plan fusion, and write the stable listing to w.
func writeDecodedListing(w io.Writer, insts []core.Instruction) error {
	dp, err := sim.Predecode(insts)
	if err != nil {
		return err
	}
	return dp.Dump(w)
}

// runAll executes every Table III benchmark through the shared suite's
// parallel harness (bench.Suite.RunAll) and prints one summary line per
// benchmark in deterministic table order.
func runAll(seed uint64, workers int, jsonOut, warm, predecode bool) {
	s := bench.NewSuite(seed)
	s.Warm = warm
	s.Predecode = predecode
	results, err := s.RunAll(context.Background(), workers)
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		out := make(map[string]*sim.Stats, len(results))
		for i := range results {
			out[results[i].Name] = &results[i].Stats
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}
	for _, r := range results {
		fmt.Printf("%-18s verified  cycles=%-8d instructions=%-7d time=%.2f us\n",
			r.Name, r.Stats.Cycles, r.Stats.Instructions, r.Stats.Seconds(s.Config.ClockHz)*1e6)
	}
}

func parsePair(s string) (int, int, error) {
	parts := strings.SplitN(s, "=", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want KEY=VALUE")
	}
	k, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, err
	}
	v, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, err
	}
	return k, v, nil
}

func parsePoke(s string) (int, []fixed.Num, error) {
	parts := strings.SplitN(s, "=", 2)
	if len(parts) != 2 {
		return 0, nil, fmt.Errorf("want ADDR=v0,v1,...")
	}
	addr, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, nil, err
	}
	var vals []fixed.Num
	for _, f := range strings.Split(parts[1], ",") {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return 0, nil, err
		}
		vals = append(vals, fixed.FromFloat(v))
	}
	return addr, vals, nil
}

func printJSON(stats *sim.Stats) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(stats); err != nil {
		fatal(err)
	}
}

func printHistogram(stats *sim.Stats) {
	fmt.Println("dynamic opcode histogram:")
	for _, oc := range stats.TopOpcodes(0) {
		fmt.Printf("  %-8v %10d (%5.1f%%)\n", oc.Op, oc.Count,
			100*float64(oc.Count)/float64(stats.Instructions))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "camsim:", err)
	os.Exit(1)
}
