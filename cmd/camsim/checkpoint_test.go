package main

// Tests pinning the -checkpoint-at/-checkpoint/-resume CLI surface: a
// run interrupted by a checkpoint finishes with statistics bit-identical
// to the uninterrupted run, the written CAMCKPT1 file resumes to the
// same statistics in a fresh process, and corrupted files are rejected.

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cambricon/internal/asm"
	"cambricon/internal/sim"
)

// loadSumLoop builds a fresh machine with the sum_loop smoke program
// loaded (data image applied), ready to run from PC 0.
func loadSumLoop(t *testing.T) *sim.Machine {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "sum_loop.cam"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range prog.Data {
		if err := m.WriteMainNums(c.Addr, c.Values); err != nil {
			t.Fatal(err)
		}
	}
	m.LoadProgram(prog.Instructions)
	return m
}

func TestCheckpointResumeCLI(t *testing.T) {
	full, err := loadSumLoop(t).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []int64{1, full.Instructions / 2, full.Instructions - 1} {
		var buf bytes.Buffer
		st, err := runCheckpointed(loadSumLoop(t), at, &buf)
		if err != nil {
			t.Fatalf("at=%d: %v", at, err)
		}
		if !reflect.DeepEqual(st, full) {
			t.Fatalf("at=%d: checkpointed run stats diverge:\n got  %+v\n want %+v", at, st, full)
		}
		resumed, err := resumeCheckpoint(bytes.NewReader(buf.Bytes()), 0)
		if err != nil {
			t.Fatalf("at=%d: resume: %v", at, err)
		}
		if !reflect.DeepEqual(resumed, full) {
			t.Fatalf("at=%d: resumed run stats diverge:\n got  %+v\n want %+v", at, resumed, full)
		}
	}
}

func TestCheckpointPastEndRejected(t *testing.T) {
	full, err := loadSumLoop(t).Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := runCheckpointed(loadSumLoop(t), full.Instructions+10, &buf); err == nil {
		t.Fatal("expected error checkpointing past program end")
	}
}

func TestResumeCorruptedCheckpointRejected(t *testing.T) {
	var buf bytes.Buffer
	if _, err := runCheckpointed(loadSumLoop(t), 3, &buf); err != nil {
		t.Fatal(err)
	}
	data := bytes.Clone(buf.Bytes())
	data[len(data)-1] ^= 1 // CRC trailer
	if _, err := resumeCheckpoint(bytes.NewReader(data), 0); err == nil {
		t.Fatal("expected corrupted checkpoint to be rejected")
	}
	if _, err := resumeCheckpoint(bytes.NewReader(data[:len(data)/2]), 0); err == nil {
		t.Fatal("expected truncated checkpoint to be rejected")
	}
}
