package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cambricon/internal/asm"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestDumpDecodedGolden pins the -dump-decoded listing format: the
// fixture program exercises all three fusion kinds (load->matvec,
// matvec->act, vec-chain) plus unfused scalar/control tails, and the
// listing — encoded words, operand roles, fusion markers, summary line —
// must match testdata/dump_decoded.golden byte for byte. Regenerate with
// `go test ./cmd/camsim -run TestDumpDecodedGolden -update` after a
// deliberate format change.
func TestDumpDecodedGolden(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "dump_decoded.cam"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeDecodedListing(&buf, prog.Instructions); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "dump_decoded.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-dump-decoded listing diverged from golden:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestParsePair(t *testing.T) {
	k, v, err := parsePair("3=64")
	if err != nil || k != 3 || v != 64 {
		t.Errorf("parsePair = %d,%d,%v", k, v, err)
	}
	for _, bad := range []string{"", "3", "x=1", "1=y", "=", "1=2=3"} {
		if _, _, err := parsePair(bad); err == nil {
			t.Errorf("parsePair(%q) accepted", bad)
		}
	}
}

func TestParsePoke(t *testing.T) {
	addr, vals, err := parsePoke("100=1.5,-2,0.25")
	if err != nil {
		t.Fatal(err)
	}
	if addr != 100 || len(vals) != 3 {
		t.Errorf("parsePoke = %d,%v", addr, vals)
	}
	if vals[0].Float() != 1.5 || vals[1].Float() != -2 || vals[2].Float() != 0.25 {
		t.Errorf("values = %v", vals)
	}
	for _, bad := range []string{"", "100", "x=1", "100=", "100=1,,2", "100=zz"} {
		if _, _, err := parsePoke(bad); err == nil {
			t.Errorf("parsePoke(%q) accepted", bad)
		}
	}
}

func TestMultiFlag(t *testing.T) {
	var m multiFlag
	if err := m.Set("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("b"); err != nil {
		t.Fatal(err)
	}
	if m.String() != "a,b" || len(m) != 2 {
		t.Errorf("multiFlag = %q", m.String())
	}
}
