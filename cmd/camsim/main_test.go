package main

import (
	"testing"
)

func TestParsePair(t *testing.T) {
	k, v, err := parsePair("3=64")
	if err != nil || k != 3 || v != 64 {
		t.Errorf("parsePair = %d,%d,%v", k, v, err)
	}
	for _, bad := range []string{"", "3", "x=1", "1=y", "=", "1=2=3"} {
		if _, _, err := parsePair(bad); err == nil {
			t.Errorf("parsePair(%q) accepted", bad)
		}
	}
}

func TestParsePoke(t *testing.T) {
	addr, vals, err := parsePoke("100=1.5,-2,0.25")
	if err != nil {
		t.Fatal(err)
	}
	if addr != 100 || len(vals) != 3 {
		t.Errorf("parsePoke = %d,%v", addr, vals)
	}
	if vals[0].Float() != 1.5 || vals[1].Float() != -2 || vals[2].Float() != 0.25 {
		t.Errorf("values = %v", vals)
	}
	for _, bad := range []string{"", "100", "x=1", "100=", "100=1,,2", "100=zz"} {
		if _, _, err := parsePoke(bad); err == nil {
			t.Errorf("parsePoke(%q) accepted", bad)
		}
	}
}

func TestMultiFlag(t *testing.T) {
	var m multiFlag
	if err := m.Set("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("b"); err != nil {
		t.Fatal(err)
	}
	if m.String() != "a,b" || len(m) != 2 {
		t.Errorf("multiFlag = %q", m.String())
	}
}
