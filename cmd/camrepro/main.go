// Command camrepro regenerates the paper's evaluation: every table and
// figure of Section V (plus the Section VI extension), each rendered with
// the published value alongside the measured one.
//
// Usage:
//
//	camrepro                   # run every experiment, plain-text tables
//	camrepro -exp fig12        # one experiment
//	camrepro -md               # markdown output (EXPERIMENTS.md body)
//	camrepro -seed 7           # benchmark generation seed
//	camrepro -j 8              # benchmark simulation worker count (0 = all cores)
//	camrepro -bench-json BENCH_sim.json  # emit the machine-readable perf record
//	camrepro -host-json BENCH_host.json  # warm-vs-cold host throughput record
//	camrepro -check-host BENCH_host.json # re-measure and gate against the committed record
//	camrepro -warm=false       # disable machine pooling / snapshot warm-starts
//	camrepro -profile-json PROFILES.json # per-benchmark stall-attribution profiles
//	camrepro -fault-json FAULTS.json     # fault-injection campaign record
//	camrepro -listing x86:MLP  # dump a baseline pseudo-assembly listing
//	camrepro -source BM        # dump a generated Cambricon program
//
// The fault campaign (see docs/ROBUSTNESS.md) sweeps deterministic
// injected faults across the Table III benchmarks and classifies each
// run against the fault-free golden run:
//
//	camrepro -fault-json FAULTS.json -fault-sites 50   # sites per benchmark
//	camrepro -fault-json - -fault-bench MLP            # one benchmark, stdout
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cambricon"
	"cambricon/internal/baseline/genarch"
	"cambricon/internal/bench"
	"cambricon/internal/codegen"
	"cambricon/internal/fault"
	"cambricon/internal/trace"
	"cambricon/internal/workload"
)

func main() {
	exp := flag.String("exp", "", "experiment id (tab1..tab4, fig10..fig13, flex, logreg, ablate); empty = all")
	seed := flag.Uint64("seed", 7, "benchmark generation seed")
	md := flag.Bool("md", false, "render markdown instead of plain text")
	workers := flag.Int("j", 0, "benchmark simulation workers (0 = GOMAXPROCS, 1 = serial)")
	benchJSON := flag.String("bench-json", "", "run the suite and write the perf record to this file (e.g. BENCH_sim.json)")
	profileJSON := flag.String("profile-json", "", "write per-benchmark stall-attribution profiles as JSON to this file")
	faultJSON := flag.String("fault-json", "", "run a fault-injection campaign and write the report to this file (\"-\" = stdout)")
	faultSites := flag.Int("fault-sites", 50, "fault sites injected per benchmark in the campaign")
	faultBench := flag.String("fault-bench", "", "restrict the fault campaign to one benchmark (empty = all)")
	faultCkpts := flag.Int("fault-checkpoints", 8, "interval checkpoints per benchmark for campaign fast-forwarding (0 = full prefix replay; report bytes are identical either way)")
	hostJSON := flag.String("host-json", "", "run the host-throughput benchmarks and write the record to this file (e.g. BENCH_host.json, - for stdout)")
	hostRuns := flag.Int("host-runs", 10, "timed iterations per host-benchmark row")
	checkHost := flag.String("check-host", "", "re-run the host benchmarks and exit nonzero if they regressed against this baseline record")
	checkRuns := flag.Int("check-runs", 5, "timed iterations per row for -check-host (fewer than -host-runs: the gate compares ratios, not raw times)")
	checkTol := flag.Float64("check-tol", bench.DefaultHostTolerance, "fractional tolerance for -check-host (ratios may drop, and warm allocations grow, by this much)")
	warm := flag.Bool("warm", true, "reuse pooled, snapshot-restored machines across runs (false = build a machine per run)")
	predecode := flag.Bool("predecode", true, "run through the pre-decoded fused dispatch loop (false = per-step decode; statistics are bit-identical either way)")
	listing := flag.String("listing", "", "dump a baseline listing, e.g. x86:MLP (arches: x86, MIPS, GPU)")
	source := flag.String("source", "", "dump the generated Cambricon assembly of a benchmark")
	version := flag.Bool("version", false, "print the simulator version and exit")
	flag.Parse()

	if *version {
		fmt.Printf("camrepro %s (cambricon-bench-sim)\n", cambricon.Version)
		return
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "camrepro: unexpected arguments %q (all inputs are flags)\n", flag.Args())
		os.Exit(2)
	}

	if *listing != "" {
		dumpListing(*listing)
		return
	}
	if *source != "" {
		p, err := codegen.ByName(*source, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "camrepro:", err)
			os.Exit(1)
		}
		fmt.Print(p.Source)
		return
	}

	suite := bench.NewSuite(*seed)
	suite.Warm = *warm
	suite.Predecode = *predecode

	if *hostJSON != "" {
		if err := emitHostJSON(*seed, *hostRuns, *hostJSON); err != nil {
			fmt.Fprintln(os.Stderr, "camrepro:", err)
			os.Exit(1)
		}
		return
	}

	if *checkHost != "" {
		regressions, err := runHostCheck(*checkHost, *seed, *checkRuns, *checkTol)
		if err != nil {
			fmt.Fprintln(os.Stderr, "camrepro:", err)
			os.Exit(1)
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "camrepro: host benchmarks regressed against %s:\n", *checkHost)
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "  -", r)
			}
			os.Exit(1)
		}
		fmt.Printf("host benchmarks within tolerance of %s\n", *checkHost)
		return
	}

	if *benchJSON != "" {
		if err := emitBenchJSON(suite, *workers, *benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "camrepro:", err)
			os.Exit(1)
		}
		return
	}

	if *profileJSON != "" {
		if err := emitProfileJSON(suite, *profileJSON); err != nil {
			fmt.Fprintln(os.Stderr, "camrepro:", err)
			os.Exit(1)
		}
		return
	}

	if *faultJSON != "" {
		if err := emitFaultJSON(suite, *workers, *faultSites, *faultCkpts, *faultBench, *faultJSON); err != nil {
			fmt.Fprintln(os.Stderr, "camrepro:", err)
			os.Exit(1)
		}
		return
	}

	// Pre-warm the suite caches across all cores: every experiment below
	// then reads simulation results without re-running anything. -j 1
	// reproduces the historical strictly-serial behaviour.
	if *workers != 1 {
		if _, err := suite.RunAll(context.Background(), *workers); err != nil {
			fmt.Fprintln(os.Stderr, "camrepro:", err)
			os.Exit(1)
		}
	}

	var experiments []bench.Experiment
	if *exp == "" {
		experiments = bench.Experiments()
	} else {
		e, ok := bench.ExperimentByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "camrepro: unknown experiment %q\navailable:", *exp)
			for _, e := range bench.Experiments() {
				fmt.Fprintf(os.Stderr, " %s", e.ID)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(2)
		}
		experiments = []bench.Experiment{e}
	}

	for _, e := range experiments {
		tbl, err := e.Run(suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "camrepro: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *md {
			fmt.Println(tbl.Markdown())
		} else {
			fmt.Println(tbl.Render())
		}
	}
}

// emitBenchJSON runs the full benchmark suite through the parallel harness
// and writes the machine-readable perf record (see bench.Report).
func emitBenchJSON(suite *bench.Suite, workers int, path string) error {
	start := time.Now()
	results, err := suite.RunAll(context.Background(), workers)
	if err != nil {
		return err
	}
	rep := bench.BuildReport(suite, results, workers, time.Since(start))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// emitHostJSON measures host-side throughput of the warm-start layer —
// campaign runs and machine acquisition, warm vs cold — and writes the
// cambricon-bench-host/v1 record (see docs/PERF.md, Level 3).
func emitHostJSON(seed uint64, runs int, path string) error {
	rep, err := bench.RunHostBenchmarks(seed, runs, 32)
	if err != nil {
		return err
	}
	if path == "-" {
		return rep.Write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runHostCheck is the perf-regression gate (`make check-host`): it
// re-measures the host benchmarks with the baseline's seed and compares
// the host-portable signals (cold/warm ratios, warm-row allocation
// counts) against the committed record within the given tolerance.
func runHostCheck(path string, seed uint64, runs int, tol float64) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var baseline bench.HostReport
	if err := json.NewDecoder(f).Decode(&baseline); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if baseline.Seed != 0 {
		// Measure what the baseline measured, whatever -seed says.
		seed = baseline.Seed
	}
	fresh, err := bench.RunHostBenchmarks(seed, runs, 32)
	if err != nil {
		return nil, err
	}
	return bench.CheckHost(&baseline, fresh, tol), nil
}

// emitProfileJSON re-runs every Table III benchmark with a
// stall-attribution profile attached (bench.Suite.Profile) and writes
// the collected reports as one JSON document.
func emitProfileJSON(suite *bench.Suite, path string) error {
	doc := struct {
		Schema   string          `json:"schema"`
		Seed     uint64          `json:"seed"`
		Profiles []*trace.Report `json:"profiles"`
	}{Schema: "cambricon-profile/v1", Seed: suite.Seed}
	for _, name := range workload.Names() {
		rep, err := suite.Profile(name)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		doc.Profiles = append(doc.Profiles, rep)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// emitFaultJSON runs a deterministic fault-injection campaign over the
// Table III benchmarks (or one of them) and writes the
// cambricon-fault/v1 report. The campaign seed is the suite seed, so
// `-seed N -fault-sites K` fully determines the report bytes —
// checkpoints only change how fast the sites are swept (docs/PERF.md,
// Level 5), never what the report says.
func emitFaultJSON(suite *bench.Suite, workers, sites, checkpoints int, only, path string) error {
	targets, err := suite.FaultTargets()
	if err != nil {
		return err
	}
	if only != "" {
		kept := targets[:0]
		for _, t := range targets {
			if t.Name() == only {
				kept = append(kept, t)
			}
		}
		if len(kept) == 0 {
			return fmt.Errorf("unknown benchmark %q for -fault-bench", only)
		}
		targets = kept
	}
	c := fault.Campaign{Seed: suite.Seed, Sites: sites, Workers: workers, Checkpoints: checkpoints}
	rep, err := c.Run(context.Background(), targets)
	if err != nil {
		return err
	}
	fmt.Fprint(os.Stderr, rep.Render())
	if path == "-" {
		return rep.Write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// dumpListing prints one baseline architecture's pseudo-assembly for a
// benchmark, the raw material of the Fig. 10 comparison.
func dumpListing(spec string) {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		fmt.Fprintln(os.Stderr, "camrepro: -listing wants ARCH:BENCHMARK (e.g. x86:MLP)")
		os.Exit(2)
	}
	var arch genarch.Arch
	switch strings.ToLower(parts[0]) {
	case "x86":
		arch = genarch.X86()
	case "mips":
		arch = genarch.MIPS()
	case "gpu":
		arch = genarch.GPU()
	default:
		fmt.Fprintf(os.Stderr, "camrepro: unknown architecture %q (x86, MIPS, GPU)\n", parts[0])
		os.Exit(2)
	}
	b, ok := workload.ByName(parts[1])
	if !ok {
		fmt.Fprintf(os.Stderr, "camrepro: unknown benchmark %q\n", parts[1])
		os.Exit(2)
	}
	for _, line := range arch.Listing(&b) {
		fmt.Println(line)
	}
}
