// Command camrepro regenerates the paper's evaluation: every table and
// figure of Section V (plus the Section VI extension), each rendered with
// the published value alongside the measured one.
//
// Usage:
//
//	camrepro                   # run every experiment, plain-text tables
//	camrepro -exp fig12        # one experiment
//	camrepro -md               # markdown output (EXPERIMENTS.md body)
//	camrepro -seed 7           # benchmark generation seed
//	camrepro -listing x86:MLP  # dump a baseline pseudo-assembly listing
//	camrepro -source BM        # dump a generated Cambricon program
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cambricon/internal/baseline/genarch"
	"cambricon/internal/bench"
	"cambricon/internal/codegen"
	"cambricon/internal/workload"
)

func main() {
	exp := flag.String("exp", "", "experiment id (tab1..tab4, fig10..fig13, flex, logreg, ablate); empty = all")
	seed := flag.Uint64("seed", 7, "benchmark generation seed")
	md := flag.Bool("md", false, "render markdown instead of plain text")
	listing := flag.String("listing", "", "dump a baseline listing, e.g. x86:MLP (arches: x86, MIPS, GPU)")
	source := flag.String("source", "", "dump the generated Cambricon assembly of a benchmark")
	flag.Parse()

	if *listing != "" {
		dumpListing(*listing)
		return
	}
	if *source != "" {
		p, err := codegen.ByName(*source, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "camrepro:", err)
			os.Exit(1)
		}
		fmt.Print(p.Source)
		return
	}

	suite := bench.NewSuite(*seed)
	var experiments []bench.Experiment
	if *exp == "" {
		experiments = bench.Experiments()
	} else {
		e, ok := bench.ExperimentByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "camrepro: unknown experiment %q\navailable:", *exp)
			for _, e := range bench.Experiments() {
				fmt.Fprintf(os.Stderr, " %s", e.ID)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(2)
		}
		experiments = []bench.Experiment{e}
	}

	for _, e := range experiments {
		tbl, err := e.Run(suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "camrepro: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *md {
			fmt.Println(tbl.Markdown())
		} else {
			fmt.Println(tbl.Render())
		}
	}
}

// dumpListing prints one baseline architecture's pseudo-assembly for a
// benchmark, the raw material of the Fig. 10 comparison.
func dumpListing(spec string) {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		fmt.Fprintln(os.Stderr, "camrepro: -listing wants ARCH:BENCHMARK (e.g. x86:MLP)")
		os.Exit(2)
	}
	var arch genarch.Arch
	switch strings.ToLower(parts[0]) {
	case "x86":
		arch = genarch.X86()
	case "mips":
		arch = genarch.MIPS()
	case "gpu":
		arch = genarch.GPU()
	default:
		fmt.Fprintf(os.Stderr, "camrepro: unknown architecture %q (x86, MIPS, GPU)\n", parts[0])
		os.Exit(2)
	}
	b, ok := workload.ByName(parts[1])
	if !ok {
		fmt.Fprintf(os.Stderr, "camrepro: unknown benchmark %q\n", parts[1])
		os.Exit(2)
	}
	for _, line := range arch.Listing(&b) {
		fmt.Println(line)
	}
}
