// Command camdis disassembles a Cambricon binary program image back to
// assembly text.
//
// Usage:
//
//	camdis prog.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"cambricon"
	"cambricon/internal/asm"
	"cambricon/internal/core"
)

func main() {
	version := flag.Bool("version", false, "print the simulator version and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: camdis prog.bin\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *version {
		fmt.Printf("camdis %s (cambricon-bench-sim)\n", cambricon.Version)
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	img, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := core.DecodeProgram(img)
	if err != nil {
		fatal(err)
	}
	fmt.Print(asm.Disassemble(prog))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "camdis:", err)
	os.Exit(1)
}
