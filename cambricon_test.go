package cambricon

import (
	"strings"
	"testing"
)

func TestFacadeAssembleRun(t *testing.T) {
	p := mustAssemble(t, `
	SMOVE $1, #8
	SMOVE $2, #0
	RV    $2, $1
	VEXP  $2, $1, $2
	VSTORE $2, $1, #4096
`)
	m, err := NewMachine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.LoadProgram(p.Instructions)
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Instructions != 5 || stats.Cycles <= 0 {
		t.Errorf("stats: %+v", stats)
	}
	out, err := m.ReadMainNums(4096, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if f := v.Float(); f < 1 || f >= 3 {
			t.Errorf("exp of [0,1) out of range at %d: %v", i, f)
		}
	}
}

func TestFacadeRoundTrips(t *testing.T) {
	p := mustAssemble(t, "\tSADD $1, $2, #3\n")
	w, err := Encode(p.Instructions[0])
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	if inst != p.Instructions[0] {
		t.Error("encode/decode mismatch")
	}
	img, err := EncodeProgram(p.Instructions)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeProgram(img)
	if err != nil || len(back) != 1 {
		t.Fatal(err)
	}
	if !strings.Contains(Disassemble(back), "SADD $1, $2, #3") {
		t.Error("disassembly mismatch")
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 10 {
		t.Fatalf("%d benchmarks", len(names))
	}
	if len(Workloads()) != 10 {
		t.Fatal("workloads mismatch")
	}
	stats, err := RunBenchmark("MLP", 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MACOps == 0 {
		t.Error("no MACs recorded")
	}
	if _, err := GenerateBenchmark("Logistic", 5); err != nil {
		t.Error(err)
	}
	if _, err := GenerateBenchmark("bogus", 5); err == nil {
		t.Error("unknown benchmark resolved")
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 12 {
		t.Fatalf("%d experiments: %v", len(ids), ids)
	}
	tbl, err := RunExperiment("tab2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.Render(), "issue width") {
		t.Error("Table II render wrong")
	}
	if _, err := RunExperiment("nope", 1); err == nil {
		t.Error("unknown experiment resolved")
	}
}

func TestFixedPointFacade(t *testing.T) {
	if FromFloat(1).Float() != 1 {
		t.Error("fixed-point conversion broken")
	}
	if NumInstructions != 43 || NumGPRs != 64 {
		t.Error("architectural constants wrong")
	}
}
