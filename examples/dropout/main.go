// Dropout: the paper's other headline use of the Random-Vector instruction
// (§III-B: "the random vector generation is an important operation common
// in many NN techniques (e.g., dropout [8] and random sampling [39])").
//
// An activation vector is masked with keep probability p and rescaled by
// 1/p (inverted dropout), entirely with Cambricon instructions:
//
//	r    = RV              uniform draws
//	keep = VGT(p, r)       1.0 where r < p
//	y    = VMV(a, keep)    mask
//	y    = VMV(y, 1/p)     rescale (constant vector)
//
//	go run ./examples/dropout
package main

import (
	"fmt"
	"log"

	"cambricon"
	"cambricon/internal/fixed"
)

const (
	n        = 32
	keepProb = 0.75
)

const src = `
	// $1: vector length; regions: $10 activations, $11 draws, $12 keep
	// mask, $13 p-vector, $14 scale vector, $15 output
	SMOVE  $1, #32
	SMOVE  $10, #0
	SMOVE  $11, #64
	SMOVE  $12, #128
	SMOVE  $13, #192
	SMOVE  $14, #256
	SMOVE  $15, #320
	VLOAD  $10, $1, #1000       // activations
	RV     $11, $1              // r ~ U[0,1)
	VSV    $13, $1, $13, $13    // zero
	VAS    $13, $1, $13, #192   // p = 0.75
	VGT    $12, $1, $13, $11    // keep = (p > r) ? 1 : 0
	VSV    $14, $1, $14, $14    // zero
	VAS    $14, $1, $14, #341   // 1/p = 1.3320 in Q8.8
	VMV    $15, $1, $10, $12    // mask
	VMV    $15, $1, $15, $14    // rescale
	VSTORE $15, $1, #2000
	VSTORE $12, $1, #3000       // the mask, for inspection
`

func main() {
	prog, err := cambricon.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	m, err := cambricon.NewMachine(cambricon.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	acts := make([]float64, n)
	for i := range acts {
		acts[i] = 0.5 + 0.01*float64(i)
	}
	if err := m.WriteMainNums(1000, fixed.FromFloats(acts)); err != nil {
		log.Fatal(err)
	}
	m.LoadProgram(prog.Instructions)
	stats, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	out, _ := m.ReadMainNums(2000, n)
	mask, _ := m.ReadMainNums(3000, n)

	kept := 0
	for i := 0; i < n; i++ {
		if mask[i] != 0 {
			kept++
			// A kept activation must be scaled up by ~1/p.
			want := acts[i] / keepProb
			if d := out[i].Float() - want; d > 0.02 || d < -0.02 {
				log.Fatalf("lane %d: %v, want ~%v", i, out[i].Float(), want)
			}
		} else if out[i] != 0 {
			log.Fatalf("dropped lane %d not zeroed: %v", i, out[i].Float())
		}
	}
	fmt.Printf("inverted dropout over %d activations, keep probability %.2f\n", n, keepProb)
	fmt.Printf("kept %d/%d lanes (empirical rate %.2f)\n", kept, n, float64(kept)/n)
	fmt.Println("kept lanes scaled by 1/p, dropped lanes exactly zero")
	fmt.Printf("%v\n", &stats)
}
