// Flexibility: the Section V-B1 experiment as a runnable demonstration.
//
// For each of the ten Table III benchmarks, the example first tries to
// compile it to DaDianNao's four layer-type VLIW instructions (printing the
// compiler's rejection for the seven it cannot express), then generates the
// Cambricon program, runs it on the simulated accelerator and verifies the
// outputs against the float reference — Cambricon covers all ten.
//
//	go run ./examples/flexibility [-seed 7]
package main

import (
	"flag"
	"fmt"
	"log"

	"cambricon"
)

func main() {
	seed := flag.Uint64("seed", 7, "benchmark generation seed")
	flag.Parse()

	fmt.Println("ISA flexibility over the ten Table III benchmarks (Section V-B1)")
	fmt.Println()

	ddnOK, cambOK := 0, 0
	workloads := cambricon.Workloads()
	for i := range workloads {
		w := &workloads[i]
		fmt.Printf("%-20s", w.Name)

		if cambricon.DaDianNaoSupports(w) {
			ddnOK++
			fmt.Printf("  DaDianNao: ok (aggregation of the four layer types)\n")
		} else {
			fmt.Printf("  DaDianNao: REJECTED (%v)\n", cambricon.DaDianNaoCompileError(w))
		}

		prog, err := cambricon.GenerateBenchmark(w.Name, *seed)
		if err != nil {
			log.Fatalf("%s: Cambricon generation failed: %v", w.Name, err)
		}
		m, err := cambricon.NewMachine(cambricon.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		stats, err := prog.Execute(m)
		if err != nil {
			log.Fatalf("%s: Cambricon run failed: %v", w.Name, err)
		}
		cambOK++
		fmt.Printf("%-20s  Cambricon: ok — %d instructions, %d cycles, outputs verified\n",
			"", prog.Len(), stats.Cycles)
	}

	fmt.Println()
	fmt.Printf("DaDianNao expresses %d/10 benchmarks; Cambricon runs %d/10.\n", ddnOK, cambOK)
	fmt.Println("(paper: 3/10 vs 10/10)")
}
