// Gaussian: §III-B claims that "given uniform random vectors, we can
// further generate random vectors obeying other distributions (e.g.,
// Gaussian distribution) ... with the help of vector arithmetic
// instructions and vector compare instructions in Cambricon."
//
// This example demonstrates the claim with the Irwin-Hall construction
// (the classic fixed-point-friendly alternative to Ziggurat's table walk):
// the sum of 12 independent U[0,1) draws minus 6 is approximately N(0,1).
// Only RV, VAV and VAS are needed:
//
//	acc = 0
//	repeat 12: r = RV; acc = VAV(acc, r)
//	z = VAS(acc, -6)
//
//	go run ./examples/gaussian
package main

import (
	"fmt"
	"log"
	"math"

	"cambricon"
	"cambricon/internal/fixed"
)

const n = 2048

const src = `
	SMOVE  $1, #2048       // vector length
	SMOVE  $10, #0         // accumulator region
	SMOVE  $11, #8192      // draw region
	SMOVE  $2, #12         // Irwin-Hall term count
	VSV    $10, $1, $10, $10   // acc = 0
sum:	RV     $11, $1             // r ~ U[0,1)
	VAV    $10, $1, $10, $11   // acc += r
	SADD   $2, $2, #-1
	CB     #sum, $2
	VAS    $10, $1, $10, #-1536 // z = acc - 6  (6.0 = 1536 in Q8.8)
	VSTORE $10, $1, #65536
`

func main() {
	prog, err := cambricon.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	m, err := cambricon.NewMachine(cambricon.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	m.LoadProgram(prog.Instructions)
	stats, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	out, err := m.ReadMainNums(65536, n)
	if err != nil {
		log.Fatal(err)
	}
	z := fixed.Floats(out)

	var mean, m2 float64
	for _, v := range z {
		mean += v
	}
	mean /= n
	for _, v := range z {
		m2 += (v - mean) * (v - mean)
	}
	variance := m2 / n

	// A coarse histogram over [-3, 3).
	var hist [12]int
	for _, v := range z {
		b := int((v + 3) / 0.5)
		if b >= 0 && b < len(hist) {
			hist[b]++
		}
	}
	fmt.Printf("Irwin-Hall Gaussian from 12 RV draws, %d samples\n", n)
	fmt.Printf("mean     %+.4f (expect ~0)\n", mean)
	fmt.Printf("variance %.4f (expect ~1)\n", variance)
	fmt.Println("\nhistogram over [-3, 3):")
	for b, c := range hist {
		lo := -3 + 0.5*float64(b)
		fmt.Printf("  [%+.1f, %+.1f)  %s\n", lo, lo+0.5,
			bar(c, n))
	}
	if math.Abs(mean) > 0.1 || variance < 0.7 || variance > 1.3 {
		log.Fatal("distribution is off: not approximately N(0,1)")
	}
	fmt.Printf("\n%v\n", &stats)
}

func bar(c, total int) string {
	width := c * 400 / total
	out := ""
	for i := 0; i < width; i++ {
		out += "#"
	}
	return fmt.Sprintf("%-4d %s", c, out)
}
