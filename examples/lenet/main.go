// LeNet: the Table III CNN benchmark — the full LeNet-5 pipeline
// (1@32x32 -> C1 6@28x28 -> S1 6@14x14 -> C2 16@10x10 -> S2 16@5x5 ->
// F120 -> F84 -> 10) lowered to Cambricon assembly and executed on the
// simulated accelerator.
//
// LeNet-5 is the paper's stress case for code density (Section V-B2: "the
// main body of CNN is a deeply nested loop requiring many individual scalar
// operations"); the example prints the loop structure statistics that
// explain why.
//
//	go run ./examples/lenet [-seed 7]
package main

import (
	"flag"
	"fmt"
	"log"

	"cambricon"
	"cambricon/internal/fixed"
)

func main() {
	seed := flag.Uint64("seed", 7, "weight/input generation seed")
	flag.Parse()

	prog, err := cambricon.GenerateBenchmark("CNN", *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LeNet-5 lowered to %d static Cambricon instructions\n", prog.Len())

	m, err := cambricon.NewMachine(cambricon.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	stats, err := prog.Execute(m)
	if err != nil {
		log.Fatal(err)
	}

	res := prog.Results[0]
	got, err := m.ReadMainNums(res.Addr, res.N)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n  class    accelerator    reference")
	best, bestRef := 0, 0
	vals := fixed.Floats(got)
	for i, v := range vals {
		fmt.Printf("  %4d     %10.6f   %10.6f\n", i, v, res.Want[i])
		if v > vals[best] {
			best = i
		}
		if res.Want[i] > res.Want[bestRef] {
			bestRef = i
		}
	}
	fmt.Printf("\npredicted class %d (reference predicts %d)\n", best, bestRef)

	fmt.Printf("\ndynamic execution (the Section V-B2/V-B3 story):\n")
	fmt.Printf("  dynamic instructions: %d (static %d: deeply nested loops)\n",
		stats.Instructions, prog.Len())
	fmt.Printf("  taken branches:       %d\n", stats.BranchesTaken)
	fmt.Printf("  MAC operations:       %d\n", stats.MACOps)
	fmt.Printf("  cycles:               %d (%.1f us at 1 GHz)\n",
		stats.Cycles, stats.Seconds(1e9)*1e6)
	vu, mu := stats.Utilization()
	fmt.Printf("  vector/matrix unit utilization: %.1f%% / %.1f%%\n", 100*vu, 100*mu)
}
