// MLP: the full Table III benchmark (input(64) - H1(150) - H2(150) -
// output(14), anchorperson detection) generated, executed on the simulated
// accelerator and verified against the float64 reference model.
//
// The example prints the generated Cambricon assembly (pass -v), the
// classifier outputs next to the reference, and the run statistics the
// paper's Figs. 11-13 are built from.
//
//	go run ./examples/mlp [-v] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"log"

	"cambricon"
	"cambricon/internal/fixed"
)

func main() {
	verbose := flag.Bool("v", false, "print the generated assembly")
	seed := flag.Uint64("seed", 7, "weight/input generation seed")
	flag.Parse()

	prog, err := cambricon.GenerateBenchmark("MLP", *seed)
	if err != nil {
		log.Fatal(err)
	}
	if *verbose {
		fmt.Print(prog.Source)
		fmt.Println()
	}
	fmt.Printf("generated %d Cambricon instructions for the 64-150-150-14 MLP\n",
		prog.Len())

	m, err := cambricon.NewMachine(cambricon.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	stats, err := prog.Execute(m) // loads the image, runs, verifies
	if err != nil {
		log.Fatal(err)
	}

	// The program's result table records where the outputs live and what
	// the reference expects.
	res := prog.Results[len(prog.Results)-1]
	got, err := m.ReadMainNums(res.Addr, res.N)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n  output   accelerator    reference")
	for i, v := range fixed.Floats(got) {
		fmt.Printf("  y[%2d]    %10.6f   %10.6f\n", i, v, res.Want[i])
	}

	fmt.Printf("\nall outputs within |err| <= %.3f of the float64 reference\n", res.Tol)
	fmt.Printf("%v\n", &stats)
	fmt.Printf("execution time at 1 GHz: %.2f us\n", stats.Seconds(1e9)*1e6)

	// Static instruction mix: the Fig. 11 measurement for this benchmark.
	fmt.Println("\nstatic instruction mix (Fig. 11):")
	for typ, n := range prog.TypeMix() {
		fmt.Printf("  %-14v %3d (%.1f%%)\n", typ, n, 100*float64(n)/float64(prog.Len()))
	}
}
