// Pooling: the paper's Fig. 7 max-pooling fragment (Section III-C).
//
// A 4x4 image with 4 feature maps in [y][x][channel] layout is max-pooled
// with 2x2 windows down to 2x2x4, using the Vector-Greater-Than-Merge
// (VGTM) instruction exactly as Fig. 5c illustrates: the channel vectors of
// the window's positions merge iteratively into the output accumulator.
//
//	go run ./examples/pooling
package main

import (
	"fmt"
	"log"

	"cambricon"
	"cambricon/internal/fixed"
)

const (
	channels = 4
	inEdge   = 4
	outEdge  = 2
)

// The Fig. 7 pooling fragment, one loop nest per output window, adapted to
// pool a full feature map (outer loops over windows added around the
// paper's single-window fragment).
const src = `
	// $0: feature map count, $1: input size, $2: output channel vector
	// $3: window edge - as loop count, $6: input cursor, $7: output cursor
	// $8: window row stride remainder, $9/$10: window x/y counters
	// $11: window base cursor, $12: outer x counter, $13: outer y counter
	SMOVE  $0, #4          // feature maps
	SMOVE  $1, #64         // input elements (4x4x4)
	SMOVE  $2, #4          // output elems per window (channel vector)
	SMOVE  $3, #2          // pooling window edge
	SMOVE  $6, #0          // input base (vector scratchpad)
	SMOVE  $7, #512        // output cursor
	VLOAD  $6, $1, #100    // load input neurons from address (100)
	SMOVE  $13, #2         // outer y windows
oy:	SMOVE  $12, #2         // outer x windows
ox:	SMOVE  $11, $6         // window base
	SMOVE  $5, $3          // init y (Fig. 7)
L0:	SMOVE  $4, $3          // init x (Fig. 7)
L1:	VGTM   $7, $0, $11, $7 // output[m] = max(input[x][y][m], output[m])
	SADD   $11, $11, #8    // next pixel (4 channels x 2 bytes)
	SADD   $4, $4, #-1     // x--
	CB     #L1, $4
	SADD   $11, $11, #16   // skip to the window's next row
	SADD   $5, $5, #-1     // y--
	CB     #L0, $5
	SADD   $7, $7, #8      // next output position
	SADD   $6, $6, #16     // next window base (2 pixels right)
	SADD   $12, $12, #-1
	CB     #ox, $12
	SADD   $6, $6, #32     // skip the second input row of this band
	SADD   $13, $13, #-1
	CB     #oy, $13
	SMOVE  $7, #512
	SMOVE  $1, #16         // output elements (2x2x4)
	VSTORE $7, $1, #200    // store output neurons to address (200)
`

func main() {
	// Build a [y][x][c] image where channel c at (x, y) is
	// c*10 + y*4 + x, so every pooled maximum is predictable.
	input := make([]float64, inEdge*inEdge*channels)
	for y := 0; y < inEdge; y++ {
		for x := 0; x < inEdge; x++ {
			for c := 0; c < channels; c++ {
				input[(y*inEdge+x)*channels+c] = float64(c*10 + y*4 + x)
			}
		}
	}

	prog, err := cambricon.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	m, err := cambricon.NewMachine(cambricon.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := m.WriteMainNums(100, fixed.FromFloats(input)); err != nil {
		log.Fatal(err)
	}
	m.LoadProgram(prog.Instructions)
	stats, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	out, err := m.ReadMainNums(200, outEdge*outEdge*channels)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("max-pooled %dx%dx%d -> %dx%dx%d with VGTM\n\n",
		inEdge, inEdge, channels, outEdge, outEdge, channels)
	ok := true
	for y := 0; y < outEdge; y++ {
		for x := 0; x < outEdge; x++ {
			fmt.Printf("window (%d,%d):", x, y)
			for c := 0; c < channels; c++ {
				got := out[(y*outEdge+x)*channels+c].Float()
				// Reference: maximum of the 2x2 window.
				want := 0.0
				for ky := 0; ky < 2; ky++ {
					for kx := 0; kx < 2; kx++ {
						v := input[((2*y+ky)*inEdge+2*x+kx)*channels+c]
						if v > want {
							want = v
						}
					}
				}
				marker := " "
				if got != want {
					marker = "!"
					ok = false
				}
				fmt.Printf("  c%d=%g%s", c, got, marker)
			}
			fmt.Println()
		}
	}
	if !ok {
		log.Fatal("pooled output does not match the reference")
	}
	fmt.Printf("\nall windows match the reference\n%v\n", &stats)
}
