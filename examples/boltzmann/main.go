// Boltzmann: the paper's Fig. 7 BM fragment with the Random-Vector (RV)
// instruction (Section III-B: "random vector generation is an important
// operation common in many NN techniques ... but is not deemed as a
// necessity in traditional linear algebra libraries").
//
// One Gibbs update of a small Boltzmann machine's hidden layer:
//
//	y = sigmoid(W v + L h + b);  h'[i] = (r[i] > y[i]) ? 1 : 0
//
//	go run ./examples/boltzmann
package main

import (
	"fmt"
	"log"
	"math"

	"cambricon"
	"cambricon/internal/fixed"
)

const n = 16 // visible and hidden sizes

// The Fig. 7 BM fragment verbatim (plus a bias load), at V(16)-H(16).
const src = `
	// $0: visible size, $1: hidden size, $2: W size, $3: L size
	// $4: visible addr, $5: W addr, $6: L addr, $7: bias addr
	// $8: hidden addr, $9-$17: temporaries
	SMOVE  $0, #16
	SMOVE  $1, #16
	SMOVE  $2, #256
	SMOVE  $3, #256
	SMOVE  $4, #0
	SMOVE  $5, #0
	SMOVE  $6, #512
	SMOVE  $7, #64
	SMOVE  $8, #128
	SMOVE  $9, #192
	SMOVE  $10, #256
	SMOVE  $11, #320
	SMOVE  $12, #384
	SMOVE  $13, #448
	SMOVE  $14, #512
	SMOVE  $15, #576
	SMOVE  $16, #640
	SMOVE  $17, #704
	VLOAD  $4, $0, #1000         // load visible vector from address (1000)
	VLOAD  $9, $1, #2000         // load hidden vector from address (2000)
	VLOAD  $7, $1, #6000         // load bias vector
	MLOAD  $5, $2, #3000         // load W matrix from address (3000)
	MLOAD  $6, $3, #4000         // load L matrix from address (4000)
	MMV    $10, $1, $5, $4, $0   // Wv
	MMV    $11, $1, $6, $9, $1   // Lh
	VAV    $12, $1, $10, $11     // Wv + Lh
	VAV    $13, $1, $12, $7      // tmp = Wv + Lh + b
	VEXP   $14, $1, $13          // exp(tmp)
	VAS    $15, $1, $14, #256    // 1 + exp(tmp)
	VDV    $16, $1, $14, $15     // y = exp(tmp)/(1+exp(tmp))
	RV     $17, $1               // r[i] = random(0, 1)
	VGT    $8, $1, $17, $16      // h[i] = (r[i] > y[i]) ? 1 : 0
	VSTORE $8, $1, #5000         // store hidden vector to address (5000)
	VSTORE $16, $1, #7000        // store probabilities for inspection
	VSTORE $17, $1, #8000        // store draws for inspection
`

func main() {
	prog, err := cambricon.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	m, err := cambricon.NewMachine(cambricon.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Small symmetric weights keep the sigmoid well away from saturation.
	v := make([]float64, n)
	h := make([]float64, n)
	w := make([]float64, n*n)
	l := make([]float64, n*n)
	bias := make([]float64, n)
	for i := 0; i < n; i++ {
		v[i] = float64(i % 2) // alternating visible state
		h[i] = float64((i / 2) % 2)
		bias[i] = 0.05 * float64(i-n/2)
		for j := 0; j < n; j++ {
			w[i*n+j] = 0.03 * float64((i+j)%5-2)
			if i != j {
				l[i*n+j] = 0.02 * float64((i*j)%3-1)
			}
		}
	}
	// Round everything to the Q8.8 grid first so the float reference
	// compares against exactly the parameters the accelerator sees.
	for _, vals := range [][]float64{v, h, w, l, bias} {
		copy(vals, fixed.Floats(fixed.FromFloats(vals)))
	}
	for addr, vals := range map[int][]float64{1000: v, 2000: h, 3000: w, 4000: l, 6000: bias} {
		if err := m.WriteMainNums(addr, fixed.FromFloats(vals)); err != nil {
			log.Fatal(err)
		}
	}

	m.LoadProgram(prog.Instructions)
	stats, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}

	probs, _ := m.ReadMainNums(7000, n)
	draws, _ := m.ReadMainNums(8000, n)
	hNew, _ := m.ReadMainNums(5000, n)

	fmt.Println("  i   p=sigmoid(Wv+Lh+b)   reference    r ~ U[0,1)   h' = (r > p)")
	for i := 0; i < n; i++ {
		pre := bias[i]
		for j := 0; j < n; j++ {
			pre += w[i*n+j]*v[j] + l[i*n+j]*h[j]
		}
		ref := 1 / (1 + math.Exp(-pre))
		fmt.Printf(" %2d   %12.4f       %12.4f  %10.4f   %10g\n",
			i, probs[i].Float(), ref, draws[i].Float(), hNew[i].Float())
	}
	fmt.Printf("\n%v\n", &stats)
	fmt.Println("re-running with the same seed reproduces the same draws (deterministic RV)")
}
