// Quickstart: assemble and run the paper's Fig. 7 MLP layer fragment.
//
// The program computes one sigmoid MLP layer y = sigmoid(Wx + b) on the
// Cambricon-ACC simulator, exactly as the paper's listing does: MMV for Wx,
// VAV for the bias, and the published VEXP/VAS/VDV sigmoid chain.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"cambricon"
	"cambricon/internal/fixed"
)

// The Fig. 7 MLP fragment, extended with a bias load and the register
// setup the paper omits "for the sake of brevity".
const src = `
	// $0: input size, $1: output size, $2: matrix size
	// $3: input address, $4: weight address (matrix scratchpad)
	// $5: bias address, $6: output address, $7-$8: temporaries
	SMOVE  $0, #3
	SMOVE  $1, #3
	SMOVE  $2, #9
	SMOVE  $3, #0
	SMOVE  $4, #0
	SMOVE  $5, #64
	SMOVE  $6, #512
	SMOVE  $7, #128
	SMOVE  $8, #192
	VLOAD  $3, $0, #100       // load input vector from address (100)
	VLOAD  $5, $1, #400       // load bias vector
	MLOAD  $4, $2, #300       // load weight matrix from address (300)
	MMV    $7, $1, $4, $3, $0 // Wx
	VAV    $7, $1, $7, $5     // tmp = Wx + b
	VEXP   $8, $1, $7         // exp(tmp)
	VAS    $7, $1, $8, #256   // 1 + exp(tmp)   (Q8.8: 256 = 1.0)
	VDV    $6, $1, $8, $7     // y = exp(tmp)/(1+exp(tmp))
	VSTORE $6, $1, #200       // store output vector to address (200)
`

func main() {
	prog, err := cambricon.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %d Cambricon instructions\n\n", prog.Len())

	m, err := cambricon.NewMachine(cambricon.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Problem data: the Fig. 3 layer (3 inputs, 3 outputs).
	x := []float64{0.5, -1, 0.25}
	w := []float64{
		0.5, 1.0, -0.5,
		-1.0, 0.25, 0.75,
		2.0, -1.0, 0.5,
	}
	bias := []float64{0.1, -0.2, 0.3}
	for addr, vals := range map[int][]float64{100: x, 300: w, 400: bias} {
		if err := m.WriteMainNums(addr, fixed.FromFloats(vals)); err != nil {
			log.Fatal(err)
		}
	}

	m.LoadProgram(prog.Instructions)
	stats, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}

	out, err := m.ReadMainNums(200, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  i   accelerator    reference      |error|")
	for i := 0; i < 3; i++ {
		pre := bias[i]
		for j := 0; j < 3; j++ {
			pre += w[i*3+j] * x[j]
		}
		want := 1 / (1 + math.Exp(-pre))
		got := out[i].Float()
		fmt.Printf("  %d   %10.6f   %10.6f   %10.6f\n", i, got, want, math.Abs(got-want))
	}
	fmt.Printf("\n%v\n", &stats)
	fmt.Printf("execution time at 1 GHz: %.0f ns\n", stats.Seconds(1e9)*1e9)
}
