# Build/verify entry points for the Cambricon reproduction. `make ci` is
# the gate every PR must pass: formatting, vet, build, the full test suite
# under the race detector (covering the parallel benchmark harness), a
# short run of the hot-kernel microbenchmarks (docs/PERF.md), a traced
# smoke run of the observability layer (docs/OBSERVABILITY.md), a
# fault-campaign smoke run of the robustness layer (docs/ROBUSTNESS.md),
# an end-to-end camserve smoke run (start the daemon, drive one /run,
# scrape /metrics), a kill-and-restart crash-recovery smoke run over the
# durable run ledger (docs/ROBUSTNESS.md, "Serving-layer robustness"),
# a checkpoint/resume smoke run of the mid-run snapshot layer
# (docs/PERF.md, Level 5), and the host-benchmark regression gate
# against BENCH_host.json.

GO ?= go

.PHONY: ci fmt vet build test race bench bench-host bench-json repro smoke smoke-fault smoke-host smoke-serve smoke-predecode smoke-reqtrace smoke-crash smoke-checkpoint smoke-autoscale check-host fault-json

ci: fmt vet build race bench smoke smoke-fault smoke-host smoke-serve smoke-predecode smoke-reqtrace smoke-crash smoke-checkpoint smoke-autoscale check-host

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short-benchtime kernel microbenchmarks: enough iterations to catch an
# allocation or order-of-magnitude regression without taking minutes.
bench:
	$(GO) test -run '^$$' -bench 'Kernel|AccessCycles|NumsView|ReadNumsInto' -benchmem -benchtime 50x ./internal/sim ./internal/mem
	$(GO) test -run '^$$' -bench 'SuiteSerial|SuiteParallel' -benchmem -benchtime 2x ./internal/bench

# Traced smoke run: one benchmark with the Chrome timeline and the
# stall-attribution profile attached, proving the observability layer
# end to end (the trace file is checked non-empty, then discarded).
smoke:
	$(GO) run ./cmd/camsim -benchmark MLP -trace /tmp/cambricon-smoke-trace.json -profile >/dev/null
	@test -s /tmp/cambricon-smoke-trace.json || { echo "smoke: empty trace file"; exit 1; }
	@rm -f /tmp/cambricon-smoke-trace.json

# Fault-campaign smoke run: a small deterministic injection sweep over
# one benchmark, proving the fault subsystem end to end (the report is
# checked for the schema marker, then discarded).
smoke-fault:
	$(GO) run ./cmd/camrepro -fault-json /tmp/cambricon-smoke-faults.json -fault-bench MLP -fault-sites 10 2>/dev/null
	@grep -q cambricon-fault/v1 /tmp/cambricon-smoke-faults.json || { echo "smoke-fault: bad report"; exit 1; }
	@rm -f /tmp/cambricon-smoke-faults.json

# Warm-start smoke run: one iteration of each host benchmark (campaign
# throughput, warm restart) proving the warm-start layer end to end
# without taking the minutes a real measurement needs.
smoke-host:
	$(GO) test -run '^$$' -bench 'CampaignThroughput|WarmRestart' -benchtime 1x ./internal/bench

# Service smoke run: start camserve, wait for readiness, drive one
# simulation through POST /run, and assert the run shows up in the
# Prometheus scrape — the observability daemon proven end to end.
smoke-serve:
	@$(GO) build -o /tmp/cambricon-smoke-camserve ./cmd/camserve
	@/tmp/cambricon-smoke-camserve -addr 127.0.0.1:18931 >/dev/null 2>&1 & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		curl -fsS http://127.0.0.1:18931/readyz >/dev/null 2>&1 && break; \
		sleep 0.2; \
	done; \
	curl -fsS http://127.0.0.1:18931/healthz >/dev/null || { echo "smoke-serve: healthz failed"; exit 1; }; \
	curl -fsS -X POST -d '{"benchmark":"MLP"}' http://127.0.0.1:18931/run > /tmp/cambricon-smoke-run.json || { echo "smoke-serve: /run failed"; exit 1; }; \
	grep -q '"status": "ok"' /tmp/cambricon-smoke-run.json || { echo "smoke-serve: /run failed"; cat /tmp/cambricon-smoke-run.json; exit 1; }; \
	curl -fsS http://127.0.0.1:18931/metrics > /tmp/cambricon-smoke-metrics.txt || { echo "smoke-serve: /metrics failed"; exit 1; }; \
	grep -q '^cambricon_bench_runs_completed_total 1$$' /tmp/cambricon-smoke-metrics.txt || { echo "smoke-serve: run not visible in /metrics"; exit 1; }; \
	rm -f /tmp/cambricon-smoke-run.json /tmp/cambricon-smoke-metrics.txt; \
	echo "smoke-serve: ok"
	@rm -f /tmp/cambricon-smoke-camserve

# Pre-decode smoke run: one benchmark through both dispatch loops — the
# pre-decoded fused path (the default) and the per-step decode escape
# hatch — asserting the reported statistics are byte-identical
# (docs/PERF.md, Level 4).
smoke-predecode:
	@$(GO) run ./cmd/camsim -benchmark SOM -json > /tmp/cambricon-smoke-predec.json
	@$(GO) run ./cmd/camsim -benchmark SOM -json -predecode=false > /tmp/cambricon-smoke-base.json
	@diff /tmp/cambricon-smoke-predec.json /tmp/cambricon-smoke-base.json >/dev/null || { \
		echo "smoke-predecode: statistics diverge between dispatch loops"; \
		diff /tmp/cambricon-smoke-predec.json /tmp/cambricon-smoke-base.json; exit 1; }
	@rm -f /tmp/cambricon-smoke-predec.json /tmp/cambricon-smoke-base.json
	@echo "smoke-predecode: ok"

# Request-tracing smoke run: start camserve, send a W3C traceparent
# through POST /run, and assert the trace is joined end to end — the
# response continues the caller's trace id, the flight recorder serves
# the run's debug bundle with its span timeline, and the Chrome export
# is a loadable trace (docs/OBSERVABILITY.md, "Request tracing & the
# flight recorder").
smoke-reqtrace:
	@$(GO) build -o /tmp/cambricon-smoke-reqtrace-srv ./cmd/camserve
	@/tmp/cambricon-smoke-reqtrace-srv -addr 127.0.0.1:18932 -log-format json >/dev/null 2>&1 & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		curl -fsS http://127.0.0.1:18932/readyz >/dev/null 2>&1 && break; \
		sleep 0.2; \
	done; \
	tp='00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01'; \
	curl -fsS -X POST -H "traceparent: $$tp" -d '{"benchmark":"MLP"}' \
		http://127.0.0.1:18932/run > /tmp/cambricon-smoke-rt-run.json || { echo "smoke-reqtrace: /run failed"; exit 1; }; \
	grep -q '"trace_id": "4bf92f3577b34da6a3ce929d0e0e4736"' /tmp/cambricon-smoke-rt-run.json || { \
		echo "smoke-reqtrace: run did not join the caller's trace"; cat /tmp/cambricon-smoke-rt-run.json; exit 1; }; \
	curl -fsS http://127.0.0.1:18932/runs/1 > /tmp/cambricon-smoke-rt-dbg.json || { echo "smoke-reqtrace: /runs/1 failed"; exit 1; }; \
	grep -q '"sim.run"' /tmp/cambricon-smoke-rt-dbg.json || { echo "smoke-reqtrace: bundle missing sim.run span"; exit 1; }; \
	grep -q '"stall_breakdown"' /tmp/cambricon-smoke-rt-dbg.json || { echo "smoke-reqtrace: bundle missing stall breakdown"; exit 1; }; \
	curl -fsS http://127.0.0.1:18932/runs/1/trace > /tmp/cambricon-smoke-rt-trace.json || { echo "smoke-reqtrace: /runs/1/trace failed"; exit 1; }; \
	grep -q '"traceEvents"' /tmp/cambricon-smoke-rt-trace.json || { echo "smoke-reqtrace: not a Chrome trace"; exit 1; }; \
	curl -fsS http://127.0.0.1:18932/metrics | grep -q '^cambricon_go_goroutines ' || { echo "smoke-reqtrace: runtime metrics missing"; exit 1; }; \
	rm -f /tmp/cambricon-smoke-rt-run.json /tmp/cambricon-smoke-rt-dbg.json /tmp/cambricon-smoke-rt-trace.json; \
	echo "smoke-reqtrace: ok"
	@rm -f /tmp/cambricon-smoke-reqtrace-srv

# Crash-recovery smoke run: the kill-and-restart criterion against a
# real process (docs/ROBUSTNESS.md, "Serving-layer robustness"). Start
# camserve with a durable WAL and a chaos spec that stalls every
# simulation, SIGKILL it while a run is in flight (its accepted/running
# events are already durable), restart over the same WAL, and assert
# GET /runs serves the recovered history with the in-flight run
# surfaced as interrupted — then prove the restarted daemon still runs.
# The ledger package is also re-checked under the race detector.
smoke-crash:
	$(GO) test -race -count=1 ./internal/ledger
	@$(GO) build -o /tmp/cambricon-smoke-crash-srv ./cmd/camserve
	@rm -rf /tmp/cambricon-smoke-crash-wal; \
	/tmp/cambricon-smoke-crash-srv -addr 127.0.0.1:18933 -wal /tmp/cambricon-smoke-crash-wal -chaos 'run-delay=30s:1' >/dev/null 2>&1 & \
	pid=$$!; \
	trap 'kill -9 $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		curl -fsS http://127.0.0.1:18933/readyz >/dev/null 2>&1 && break; \
		sleep 0.2; \
	done; \
	curl -fsS -X POST -d '{"benchmark":"MLP"}' http://127.0.0.1:18933/run >/dev/null 2>&1 & \
	sleep 2; \
	kill -9 $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	/tmp/cambricon-smoke-crash-srv -addr 127.0.0.1:18934 -wal /tmp/cambricon-smoke-crash-wal >/dev/null 2>&1 & \
	pid=$$!; \
	for i in $$(seq 1 50); do \
		curl -fsS http://127.0.0.1:18934/readyz >/dev/null 2>&1 && break; \
		sleep 0.2; \
	done; \
	curl -fsS http://127.0.0.1:18934/runs > /tmp/cambricon-smoke-crash-runs.json || { echo "smoke-crash: /runs failed after restart"; exit 1; }; \
	grep -q '"status": "interrupted"' /tmp/cambricon-smoke-crash-runs.json || { \
		echo "smoke-crash: no interrupted row after kill-and-restart"; cat /tmp/cambricon-smoke-crash-runs.json; exit 1; }; \
	grep -q '"recovered": true' /tmp/cambricon-smoke-crash-runs.json || { \
		echo "smoke-crash: recovered rows not marked"; cat /tmp/cambricon-smoke-crash-runs.json; exit 1; }; \
	curl -fsS -X POST -d '{"benchmark":"MLP"}' http://127.0.0.1:18934/run > /tmp/cambricon-smoke-crash-run2.json || { \
		echo "smoke-crash: /run failed after restart"; exit 1; }; \
	grep -q '"status": "ok"' /tmp/cambricon-smoke-crash-run2.json || { \
		echo "smoke-crash: post-restart run failed"; cat /tmp/cambricon-smoke-crash-run2.json; exit 1; }; \
	kill $$pid 2>/dev/null; \
	rm -rf /tmp/cambricon-smoke-crash-wal /tmp/cambricon-smoke-crash-runs.json /tmp/cambricon-smoke-crash-run2.json; \
	echo "smoke-crash: ok"
	@rm -f /tmp/cambricon-smoke-crash-srv

# Checkpoint smoke run: interrupt a program with -checkpoint-at, resume
# the written CAMCKPT1 file in a fresh process, and assert both the
# interrupted run and the resumed run report statistics byte-identical
# to one uninterrupted run (docs/PERF.md, Level 5).
smoke-checkpoint:
	@$(GO) build -o /tmp/cambricon-smoke-ckpt-sim ./cmd/camsim
	@/tmp/cambricon-smoke-ckpt-sim -json testdata/sum_loop.cam > /tmp/cambricon-smoke-ckpt-plain.json
	@/tmp/cambricon-smoke-ckpt-sim -checkpoint-at 12 -checkpoint /tmp/cambricon-smoke-ckpt.bin -json testdata/sum_loop.cam > /tmp/cambricon-smoke-ckpt-run.json
	@diff /tmp/cambricon-smoke-ckpt-plain.json /tmp/cambricon-smoke-ckpt-run.json >/dev/null || { \
		echo "smoke-checkpoint: interrupted run diverges from plain run"; \
		diff /tmp/cambricon-smoke-ckpt-plain.json /tmp/cambricon-smoke-ckpt-run.json; exit 1; }
	@/tmp/cambricon-smoke-ckpt-sim -resume /tmp/cambricon-smoke-ckpt.bin -json > /tmp/cambricon-smoke-ckpt-resumed.json
	@diff /tmp/cambricon-smoke-ckpt-plain.json /tmp/cambricon-smoke-ckpt-resumed.json >/dev/null || { \
		echo "smoke-checkpoint: resumed run diverges from plain run"; \
		diff /tmp/cambricon-smoke-ckpt-plain.json /tmp/cambricon-smoke-ckpt-resumed.json; exit 1; }
	@rm -f /tmp/cambricon-smoke-ckpt-sim /tmp/cambricon-smoke-ckpt.bin \
		/tmp/cambricon-smoke-ckpt-plain.json /tmp/cambricon-smoke-ckpt-run.json /tmp/cambricon-smoke-ckpt-resumed.json
	@echo "smoke-checkpoint: ok"

# Autoscaler smoke run: the metrics-driven pool autoscaler proven
# against a real process (docs/OBSERVABILITY.md, "Metrics history, SLOs,
# and autoscaling"). Start camserve with the sampler and an aggressive
# autoscale spec, drive a queued burst through a single run slot, and
# assert the pool scaled up under the observed queue pressure, the
# history endpoints serve, and the pool scaled back down after the idle
# deadline. The tsdb package is also re-checked under the race detector.
smoke-autoscale:
	$(GO) test -race -count=1 ./internal/tsdb
	@$(GO) build -o /tmp/cambricon-smoke-as-srv ./cmd/camserve
	@/tmp/cambricon-smoke-as-srv -addr 127.0.0.1:18935 -max-inflight 1 -queue-depth 32 \
		-sample-interval 100ms -autoscale 'min=0,max=4,step=2,idle=1s,window=1s' \
		-chaos 'run-delay=300ms:1' >/dev/null 2>&1 & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		curl -fsS http://127.0.0.1:18935/readyz >/dev/null 2>&1 && break; \
		sleep 0.2; \
	done; \
	for i in $$(seq 1 16); do \
		curl -fsS -X POST -d '{"benchmark":"MLP"}' http://127.0.0.1:18935/run >/dev/null 2>&1 & \
	done; \
	up=0; \
	for i in $$(seq 1 50); do \
		curl -fsS http://127.0.0.1:18935/metrics 2>/dev/null | grep -q '^cambricon_pool_scale_up_total [1-9]' && { up=1; break; }; \
		sleep 0.2; \
	done; \
	[ $$up = 1 ] || { echo "smoke-autoscale: pool never scaled up under queue pressure"; exit 1; }; \
	curl -fsS http://127.0.0.1:18935/alerts 2>/dev/null | grep -q '"alerts"' || { echo "smoke-autoscale: /alerts failed"; exit 1; }; \
	curl -fsS 'http://127.0.0.1:18935/dash?window=1m' 2>/dev/null | grep -q '<svg' || { echo "smoke-autoscale: /dash failed"; exit 1; }; \
	curl -fsS 'http://127.0.0.1:18935/vars?window=1m' 2>/dev/null | grep -q '"series"' || { echo "smoke-autoscale: /vars failed"; exit 1; }; \
	down=0; \
	for i in $$(seq 1 100); do \
		curl -fsS http://127.0.0.1:18935/metrics 2>/dev/null | grep -q '^cambricon_pool_scale_down_total [1-9]' && { down=1; break; }; \
		sleep 0.2; \
	done; \
	[ $$down = 1 ] || { echo "smoke-autoscale: pool never scaled down after quiescence"; exit 1; }; \
	echo "smoke-autoscale: ok"
	@rm -f /tmp/cambricon-smoke-as-srv

# Host-benchmark regression gate: re-measure the warm-start layer and
# fail if the host-portable signals (cold/warm ratios, warm-row
# allocation counts) regressed against the committed BENCH_host.json.
check-host:
	$(GO) run ./cmd/camrepro -check-host BENCH_host.json -check-runs 3

# Regenerate the machine-readable perf record tracked in BENCH_sim.json.
bench-json:
	$(GO) run ./cmd/camrepro -bench-json BENCH_sim.json

# Regenerate the warm-vs-cold host-throughput record tracked in
# BENCH_host.json (docs/PERF.md, Level 3).
bench-host:
	$(GO) run ./cmd/camrepro -host-json BENCH_host.json

# Run a full fault-injection campaign across all ten benchmarks.
fault-json:
	$(GO) run ./cmd/camrepro -fault-json FAULTS_sim.json

# Regenerate every paper table/figure using all cores.
repro:
	$(GO) run ./cmd/camrepro
