# Build/verify entry points for the Cambricon reproduction. `make ci` is
# the gate every PR must pass: vet, build, the full test suite under the
# race detector (covering the parallel benchmark harness), and a short run
# of the hot-kernel microbenchmarks (docs/PERF.md).

GO ?= go

.PHONY: ci vet build test race bench bench-json repro

ci: vet build race bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short-benchtime kernel microbenchmarks: enough iterations to catch an
# allocation or order-of-magnitude regression without taking minutes.
bench:
	$(GO) test -run '^$$' -bench 'Kernel|AccessCycles|NumsView|ReadNumsInto' -benchmem -benchtime 50x ./internal/sim ./internal/mem
	$(GO) test -run '^$$' -bench 'SuiteSerial|SuiteParallel' -benchmem -benchtime 2x ./internal/bench

# Regenerate the machine-readable perf record tracked in BENCH_sim.json.
bench-json:
	$(GO) run ./cmd/camrepro -bench-json BENCH_sim.json

# Regenerate every paper table/figure using all cores.
repro:
	$(GO) run ./cmd/camrepro
