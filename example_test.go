package cambricon_test

import (
	"fmt"
	"log"

	"cambricon"
)

// Assemble and run the paper's published sigmoid chain on the simulated
// accelerator.
func ExampleAssemble() {
	prog, err := cambricon.Assemble(`
	SMOVE  $1, #4
	SMOVE  $2, #0
	SMOVE  $3, #64
	VLOAD  $2, $1, #1000     // load pre-activations
	VEXP   $3, $1, $2        // exp(x)
	VAS    $2, $1, $3, #256  // 1 + exp(x)
	VDV    $2, $1, $3, $2    // sigmoid
	VSTORE $2, $1, #2000
`)
	if err != nil {
		log.Fatal(err)
	}
	m, err := cambricon.NewMachine(cambricon.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	pre := []cambricon.Num{
		cambricon.FromFloat(0),
		cambricon.FromFloat(2),
		cambricon.FromFloat(-2),
		cambricon.FromFloat(4),
	}
	if err := m.WriteMainNums(1000, pre); err != nil {
		log.Fatal(err)
	}
	m.LoadProgram(prog.Instructions)
	if _, err := m.Run(); err != nil {
		log.Fatal(err)
	}
	out, err := m.ReadMainNums(2000, 4)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range out {
		fmt.Printf("%.3f\n", v.Float())
	}
	// Output:
	// 0.500
	// 0.879
	// 0.121
	// 0.980
}

// Generate, run and verify a Table III benchmark in three lines.
func ExampleRunBenchmark() {
	stats, err := cambricon.RunBenchmark("HNN", 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified:", err == nil)
	fmt.Println("executed instructions:", stats.Instructions > 0)
	// Output:
	// verified: true
	// executed instructions: true
}

// Reproduce a figure of the paper's evaluation.
func ExampleRunExperiment() {
	tbl, err := cambricon.RunExperiment("tab2", 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tbl.Rows[0][0], "=", tbl.Rows[0][1])
	// Output:
	// issue width = 2
}

// Inspect the DaDianNao flexibility result programmatically.
func ExampleDaDianNaoSupports() {
	for _, w := range cambricon.Workloads() {
		w := w
		if !cambricon.DaDianNaoSupports(&w) && w.Name == "BM" {
			fmt.Println(cambricon.DaDianNaoCompileError(&w))
		}
	}
	// Output:
	// dadiannao: BM requires capabilities outside the four layer types: recurrence, lateral intra-layer connections
}
