package cambricon

import "testing"

// mustAssemble parses known-good test source, failing the test
// otherwise. (The facade has no panicking assembler.)
func mustAssemble(tb testing.TB, src string) *Program {
	tb.Helper()
	p, err := Assemble(src)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}
