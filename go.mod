module cambricon

go 1.22
