package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestEachVisitsSortedState pins the visitor contract Each shares with
// the Prometheus encoder: series arrive in (family name, label key)
// order carrying the same values a scrape would serialize.
func TestEachVisitsSortedState(t *testing.T) {
	r := New()
	r.Counter("b_total", "b", L("x", "2")).Add(5)
	r.Counter("b_total", "b", L("x", "1")).Add(3)
	r.Gauge("a_gauge", "a").Set(-7)
	h := r.Histogram("c_seconds", "c", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(2)
	h.Observe(100)

	type got struct {
		name, labels string
		kind         Kind
		value        float64
		count        uint64
		sum          float64
		buckets      []uint64
	}
	var visits []got
	r.Each(func(s *Sample) {
		g := got{name: s.Name, labels: s.Labels, kind: s.Kind, value: s.Value, count: s.Count, sum: s.Sum}
		g.buckets = append(g.buckets, s.BucketCounts...) // must copy: reused buffer
		visits = append(visits, g)
	})
	if len(visits) != 4 {
		t.Fatalf("Each visited %d series, want 4: %+v", len(visits), visits)
	}
	order := []string{"a_gauge", "b_total", "b_total", "c_seconds"}
	for i, want := range order {
		if visits[i].name != want {
			t.Fatalf("visit %d = %q, want %q (sorted family order)", i, visits[i].name, want)
		}
	}
	if visits[1].labels != `x="1"` || visits[1].value != 3 || visits[2].labels != `x="2"` || visits[2].value != 5 {
		t.Fatalf("labelled counters out of order or wrong: %+v", visits[1:3])
	}
	if visits[0].value != -7 {
		t.Fatalf("gauge value = %v, want -7", visits[0].value)
	}
	hv := visits[3]
	if hv.count != 3 || hv.sum != 102.5 {
		t.Fatalf("histogram totals count=%d sum=%v, want 3 and 102.5", hv.count, hv.sum)
	}
	if len(hv.buckets) != 3 || hv.buckets[0] != 1 || hv.buckets[1] != 1 || hv.buckets[2] != 1 {
		t.Fatalf("per-bucket counts = %v, want [1 1 1] (non-cumulative)", hv.buckets)
	}
	// Nil registry: no visits, no panic.
	var nilReg *Registry
	nilReg.Each(func(*Sample) { t.Fatal("nil registry visited a series") })
}

// TestLabelValueEscaping pins the exposition-format escaping of label
// values character by character: backslash, newline and double quote
// must come out as \\, \n and \" (and nothing else may be touched).
func TestLabelValueEscaping(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain`, `plain`},
		{`back\slash`, `back\\slash`},
		{"new\nline", `new\nline`},
		{`dou"ble`, `dou\"ble`},
		{"all\\three\"here\n", `all\\three\"here\n`},
		{"tab\tand ünïcode stay", "tab\tand ünïcode stay"},
	}
	for _, c := range cases {
		r := New()
		r.Counter("esc_total", "h", L("v", c.in)).Inc()
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		wantLine := `esc_total{v="` + c.want + `"} 1`
		if !strings.Contains(buf.String(), wantLine+"\n") {
			t.Fatalf("escaping %q: page lacks %q:\n%s", c.in, wantLine, buf.String())
		}
		// The escaped key must round-trip identically through Each.
		r.Each(func(s *Sample) {
			if s.Labels != `v="`+c.want+`"` {
				t.Fatalf("Each label key = %q, want %q", s.Labels, `v="`+c.want+`"`)
			}
		})
	}
}

// TestHelpEscaping pins HELP-comment escaping: backslash and newline are
// escaped, double quotes pass through verbatim (per the format spec).
func TestHelpEscaping(t *testing.T) {
	r := New()
	r.Counter("help_total", "line\nbreak \\ and \"quotes\"").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP help_total line\nbreak \\ and "quotes"`
	if !strings.Contains(buf.String(), want+"\n") {
		t.Fatalf("help escaping: page lacks %q:\n%s", want, buf.String())
	}
}

// TestExpBucketsEdgeCases pins every degenerate input to nil (callers
// registering with nil buckets get the bare +Inf histogram) and the
// well-formed shape to exact powers.
func TestExpBucketsEdgeCases(t *testing.T) {
	for _, c := range []struct {
		name          string
		start, factor float64
		n             int
	}{
		{"n=0", 1, 2, 0},
		{"n<0", 1, 2, -3},
		{"factor=1", 1, 1, 4},
		{"factor<1", 1, 0.5, 4},
		{"start=0", 0, 2, 4},
		{"start<0", -1, 2, 4},
	} {
		if got := ExpBuckets(c.start, c.factor, c.n); got != nil {
			t.Fatalf("ExpBuckets(%s) = %v, want nil", c.name, got)
		}
	}
	got := ExpBuckets(0.25, 2, 5)
	want := []float64{0.25, 0.5, 1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("ExpBuckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// A degenerate-bucket histogram still observes into +Inf and totals.
	r := New()
	h := r.Histogram("degen_seconds", "", ExpBuckets(1, 1, 0))
	h.Observe(3)
	if h.Count() != 1 || h.Sum() != 3 {
		t.Fatalf("bare +Inf histogram count=%d sum=%v, want 1 and 3", h.Count(), h.Sum())
	}
	r.Each(func(s *Sample) {
		if len(s.Bounds) != 0 || len(s.BucketCounts) != 1 || s.BucketCounts[0] != 1 {
			t.Fatalf("bare histogram sample %+v, want only the +Inf bucket", s)
		}
	})
	// Non-finite bounds are dropped at registration, not at observe time.
	h2 := New().Histogram("inf_seconds", "", []float64{1, math.Inf(1), math.NaN(), 2})
	h2.Observe(1.5)
	if h2.Count() != 1 {
		t.Fatalf("histogram with non-finite bounds lost an observation")
	}
}
