package metrics

import (
	"runtime"
	"strings"
	"testing"
)

func TestRuntimeBridgeCollect(t *testing.T) {
	reg := New()
	b := NewRuntimeBridge(reg)
	runtime.GC() // guarantee at least one GC cycle and pause exist
	b.Collect()

	if got := reg.Gauge(MetricGoGoroutines, "").Value(); got < 1 {
		t.Fatalf("goroutines = %d, want >= 1", got)
	}
	if got := reg.Gauge(MetricGoHeapBytes, "").Value(); got <= 0 {
		t.Fatalf("heap bytes = %d, want > 0", got)
	}
	if got := reg.Gauge(MetricGoMemBytes, "").Value(); got <= 0 {
		t.Fatalf("mem bytes = %d, want > 0", got)
	}
	if got := reg.Counter(MetricGoGCCycles, "").Value(); got < 1 {
		t.Fatalf("gc cycles = %d, want >= 1", got)
	}
	if got := reg.Counter(MetricGoGCPauses, "").Value(); got < 1 {
		t.Fatalf("gc pauses = %d, want >= 1", got)
	}

	// Counters are republished as deltas: a second collection must not
	// re-add the cumulative totals.
	cycles := reg.Counter(MetricGoGCCycles, "").Value()
	b.Collect()
	after := reg.Counter(MetricGoGCCycles, "").Value()
	if after < cycles || after > cycles+16 {
		t.Fatalf("gc cycles jumped %d -> %d across one collection; delta accounting broken", cycles, after)
	}

	// The bridge's families encode into the scrape page.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	page := sb.String()
	for _, name := range []string{
		MetricGoGoroutines, MetricGoHeapBytes, MetricGoMemBytes,
		MetricGoGCCycles, MetricGoGCPauses, MetricGoGCPauseNS,
	} {
		if !strings.Contains(page, name+" ") {
			t.Fatalf("scrape page missing %s:\n%s", name, page)
		}
	}
}

// TestRuntimeBridgeNilIsFree pins the nil contract: a nil registry
// yields a nil bridge, and a nil bridge collects nothing.
func TestRuntimeBridgeNilIsFree(t *testing.T) {
	if b := NewRuntimeBridge(nil); b != nil {
		t.Fatal("NewRuntimeBridge(nil) should be nil")
	}
	var b *RuntimeBridge
	allocs := testing.AllocsPerRun(10, func() { b.Collect() })
	if allocs != 0 {
		t.Fatalf("nil bridge Collect allocates %v per run, want 0", allocs)
	}
}
