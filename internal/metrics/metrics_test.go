package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusGolden pins the text exposition format byte for byte:
// sorted families, sorted series, HELP/TYPE comments, cumulative
// histogram buckets with _sum and _count, label escaping.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("zz_last_total", "sorted after the others").Add(3)
	c := r.Counter("app_requests_total", "requests served", L("handler", "run"), L("code", "200"))
	c.Inc()
	c.Inc()
	r.Counter("app_requests_total", "requests served", L("handler", "run"), L("code", "503")).Inc()
	r.Gauge("app_inflight", "requests in flight").Set(2)
	r.Gauge("app_weird", "label escaping", L("path", `a"b\c`)).Set(-1)
	h := r.Histogram("app_latency_seconds", "request latency", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(99)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_inflight requests in flight
# TYPE app_inflight gauge
app_inflight 2
# HELP app_latency_seconds request latency
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.1"} 1
app_latency_seconds_bucket{le="1"} 2
app_latency_seconds_bucket{le="10"} 2
app_latency_seconds_bucket{le="+Inf"} 3
app_latency_seconds_sum 99.55
app_latency_seconds_count 3
# HELP app_requests_total requests served
# TYPE app_requests_total counter
app_requests_total{code="200",handler="run"} 2
app_requests_total{code="503",handler="run"} 1
# HELP app_weird label escaping
# TYPE app_weird gauge
app_weird{path="a\"b\\c"} -1
# HELP zz_last_total sorted after the others
# TYPE zz_last_total counter
zz_last_total 3
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSameSeriesIsShared pins the get-or-create contract: repeated
// registration (including label reordering) returns the same instance.
func TestSameSeriesIsShared(t *testing.T) {
	r := New()
	a := r.Counter("x_total", "x", L("a", "1"), L("b", "2"))
	b := r.Counter("x_total", "x", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("equivalent label sets produced distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("shared counter did not share state")
	}
}

// TestKindMismatchDetaches pins the no-panic contract: re-registering a
// name under a different kind hands back a live but detached metric and
// leaves the original family intact.
func TestKindMismatchDetaches(t *testing.T) {
	r := New()
	r.Counter("dual_total", "first registration wins").Inc()
	g := r.Gauge("dual_total", "conflicting kind")
	g.Set(42) // must not panic, must not leak into the exposition
	h := r.Histogram("dual_total", "conflicting kind", []float64{1})
	h.Observe(0.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "dual_total 1\n") {
		t.Fatalf("counter lost after kind mismatch:\n%s", out)
	}
	if strings.Contains(out, "42") || strings.Contains(out, "gauge") {
		t.Fatalf("mismatched kind leaked into exposition:\n%s", out)
	}
}

// TestNilSafety pins the nil-registry contract instrumented code relies
// on: every lookup and every metric method is a safe no-op.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("a_total", "")
	g := r.Gauge("b", "")
	h := r.Histogram("c", "", []float64{1})
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(2)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics accumulated state")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentRegistryUse hammers registration, updates and encoding
// from many goroutines; the race detector is the assertion.
func TestConcurrentRegistryUse(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			names := []string{"m_a_total", "m_b_total", "m_c_total"}
			for i := 0; i < 500; i++ {
				c := r.Counter(names[i%len(names)], "c", L("w", "shared"))
				c.Inc()
				r.Gauge("m_gauge", "g").Add(1)
				r.Histogram("m_hist", "h", []float64{1, 10, 100}).Observe(float64(i))
				if i%100 == 0 {
					if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
						t.Error(err)
					}
				}
			}
			_ = w
		}(w)
	}
	wg.Wait()
	var total uint64
	for _, n := range []string{"m_a_total", "m_b_total", "m_c_total"} {
		total += r.Counter(n, "c", L("w", "shared")).Value()
	}
	if total != 8*500 {
		t.Fatalf("lost increments: total = %d, want %d", total, 8*500)
	}
	if got := r.Histogram("m_hist", "h", []float64{1, 10, 100}).Count(); got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
}

// TestExpBuckets pins the helper's shape and its degenerate cases.
func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	if len(got) != len(want) {
		t.Fatalf("ExpBuckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	if ExpBuckets(0, 10, 4) != nil || ExpBuckets(1, 1, 4) != nil || ExpBuckets(1, 10, 0) != nil {
		t.Fatal("degenerate ExpBuckets should be nil")
	}
}

// BenchmarkNilCounterInc pins the unattached instrumentation path at
// 0 allocs/op: incrementing through a nil counter must cost a nil check
// and nothing else.
func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		c.Add(3)
		g.Add(1)
		h.Observe(1)
	}
}

// TestNilCounterZeroAllocs pins the benchmark's claim as a hard test.
func TestNilCounterZeroAllocs(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(1)
		h.Observe(1)
	})
	if allocs != 0 {
		t.Fatalf("nil-metric ops allocated %v allocs/op, want 0", allocs)
	}
}
