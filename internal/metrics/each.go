package metrics

// Registry.Each is the snapshot/visitor API over the registry's current
// state: the tsdb sampler (internal/tsdb) and the /dash renderer read
// the same sorted family/series walk the Prometheus encoder serializes,
// so a scrape, a sample pass and a dashboard row all agree on series
// identity and order.

// Sample is the point-in-time state of one series as delivered to Each.
// The struct and its slices are reused across visits — a visitor that
// retains anything must copy it.
type Sample struct {
	// Name and Help identify the family; Labels is the pre-rendered,
	// escaped `a="b",c="d"` label body ("" for the unlabelled series) —
	// the same key the Prometheus encoder emits inside the braces.
	Name   string
	Help   string
	Kind   Kind
	Labels string

	// Value is the cumulative count (counters) or current value (gauges).
	Value float64

	// Histogram state: Bounds are the finite bucket upper bounds
	// (ascending; an implicit +Inf bucket follows), BucketCounts the
	// per-bucket (non-cumulative) observation counts with the +Inf
	// overflow at index len(Bounds), Count/Sum the totals. Bounds aliases
	// the registry's own slice and must not be mutated.
	Bounds       []float64
	BucketCounts []uint64
	Count        uint64
	Sum          float64
}

// Each visits every registered series in deterministic order (family
// name, then label key) with its current state. Values are read
// atomically per series; the walk as a whole is not a consistent cut
// across series, which is the same property a Prometheus scrape has.
// A nil registry visits nothing.
func (r *Registry) Each(visit func(*Sample)) {
	if r == nil {
		return
	}
	var s Sample
	var counts []uint64
	for _, fv := range r.snapshot() {
		f := fv.f
		for _, se := range fv.series {
			s = Sample{Name: f.name, Help: f.help, Kind: f.kind, Labels: se.key}
			switch f.kind {
			case KindCounter:
				s.Value = float64(se.c.Value())
			case KindGauge:
				s.Value = float64(se.g.Value())
			case KindHistogram:
				h := se.h
				if cap(counts) < len(h.counts) {
					counts = make([]uint64, len(h.counts))
				}
				counts = counts[:len(h.counts)]
				for i := range h.counts {
					counts[i] = h.counts[i].Load()
				}
				s.Bounds = h.bounds
				s.BucketCounts = counts
				s.Count = h.count.Load()
				s.Sum = h.Sum()
			}
			visit(&s)
		}
	}
}
