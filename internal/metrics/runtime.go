package metrics

// This file is the Go-runtime bridge (docs/OBSERVABILITY.md, "Runtime
// metrics"): a fixed sample set read from runtime/metrics on demand and
// republished through the registry, so a Prometheus scrape of camserve
// covers the host process — goroutines, heap, GC — and not just the
// simulator. Collection is pull-driven: the HTTP handler calls Collect
// right before encoding, so the samples are as fresh as the scrape and
// idle daemons pay nothing.

import (
	rm "runtime/metrics"
)

// Runtime metric names exported by the bridge.
const (
	MetricGoGoroutines = "cambricon_go_goroutines"
	MetricGoHeapBytes  = "cambricon_go_heap_objects_bytes"
	MetricGoMemBytes   = "cambricon_go_mem_total_bytes"
	MetricGoGCCycles   = "cambricon_go_gc_cycles_total"
	MetricGoGCPauses   = "cambricon_go_gc_pauses_total"
	MetricGoGCPauseNS  = "cambricon_go_gc_pause_nanoseconds_total"
)

// runtime/metrics sample names behind the bridge (all present since Go
// 1.16; unknown names degrade to KindBad and are skipped, so the bridge
// never breaks on a runtime that drops one).
const (
	sampleGoroutines = "/sched/goroutines:goroutines"
	sampleHeapBytes  = "/memory/classes/heap/objects:bytes"
	sampleMemBytes   = "/memory/classes/total:bytes"
	sampleGCCycles   = "/gc/cycles/total:gc-cycles"
	sampleGCPauses   = "/gc/pauses:seconds"
)

// RuntimeBridge republishes Go runtime telemetry into a Registry. Build
// one with NewRuntimeBridge and call Collect before each scrape. A nil
// bridge (no registry attached) collects nothing — the usual nil-is-free
// contract.
type RuntimeBridge struct {
	samples []rm.Sample

	goroutines *Gauge
	heapBytes  *Gauge
	memBytes   *Gauge

	// Counters only move forward, so cumulative runtime totals are
	// republished as deltas against the previous collection.
	gcCycles, gcPauses, gcPauseNS *Counter
	lastCycles, lastPauses        uint64
	lastPauseNS                   int64
}

// NewRuntimeBridge registers the bridge's instruments on reg. A nil
// registry yields a nil bridge.
func NewRuntimeBridge(reg *Registry) *RuntimeBridge {
	if reg == nil {
		return nil
	}
	return &RuntimeBridge{
		samples: []rm.Sample{
			{Name: sampleGoroutines},
			{Name: sampleHeapBytes},
			{Name: sampleMemBytes},
			{Name: sampleGCCycles},
			{Name: sampleGCPauses},
		},
		goroutines: reg.Gauge(MetricGoGoroutines, "live goroutines in the daemon process"),
		heapBytes:  reg.Gauge(MetricGoHeapBytes, "bytes of live heap objects"),
		memBytes:   reg.Gauge(MetricGoMemBytes, "total bytes of memory mapped by the Go runtime"),
		gcCycles:   reg.Counter(MetricGoGCCycles, "completed GC cycles"),
		gcPauses:   reg.Counter(MetricGoGCPauses, "stop-the-world GC pauses observed"),
		gcPauseNS:  reg.Counter(MetricGoGCPauseNS, "approximate cumulative stop-the-world GC pause time in nanoseconds (histogram-bucket midpoints)"),
	}
}

// Collect reads the sample set and updates the registry. Safe for
// concurrent use only in the sense a scrape path needs: concurrent
// Collects may double-publish a delta window, but values never go
// backwards. A nil bridge is a no-op.
func (b *RuntimeBridge) Collect() {
	if b == nil {
		return
	}
	rm.Read(b.samples)
	for i := range b.samples {
		s := &b.samples[i]
		switch s.Name {
		case sampleGoroutines:
			if s.Value.Kind() == rm.KindUint64 {
				b.goroutines.Set(int64(s.Value.Uint64()))
			}
		case sampleHeapBytes:
			if s.Value.Kind() == rm.KindUint64 {
				b.heapBytes.Set(int64(s.Value.Uint64()))
			}
		case sampleMemBytes:
			if s.Value.Kind() == rm.KindUint64 {
				b.memBytes.Set(int64(s.Value.Uint64()))
			}
		case sampleGCCycles:
			if s.Value.Kind() == rm.KindUint64 {
				v := s.Value.Uint64()
				b.gcCycles.Add(int64(v - b.lastCycles))
				b.lastCycles = v
			}
		case sampleGCPauses:
			if s.Value.Kind() == rm.KindFloat64Histogram {
				pauses, pauseNS := summarizePauses(s.Value.Float64Histogram())
				b.gcPauses.Add(int64(pauses - b.lastPauses))
				b.gcPauseNS.Add(pauseNS - b.lastPauseNS)
				b.lastPauses, b.lastPauseNS = pauses, pauseNS
			}
		}
	}
}

// summarizePauses collapses the runtime's cumulative pause-time
// histogram into a pause count and an approximate total (each bucket's
// count at its midpoint; the runtime's buckets are tight enough at
// pause scale that the midpoint error is a few percent). Open-ended
// edge buckets fall back to their finite boundary.
func summarizePauses(h *rm.Float64Histogram) (count uint64, totalNS int64) {
	if h == nil {
		return 0, 0
	}
	var total float64
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		count += n
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := (lo + hi) / 2
		if isInf(lo) {
			mid = hi
		} else if isInf(hi) {
			mid = lo
		}
		total += float64(n) * mid
	}
	return count, int64(total * 1e9)
}

// isInf avoids importing math for one check.
func isInf(f float64) bool { return f > 1e308 || f < -1e308 }
