// Package metrics is the service-level observability layer: a
// dependency-free registry of atomic counters, gauges and fixed-bucket
// histograms with a hand-rolled Prometheus text-format encoder
// (prometheus.go). Where internal/trace answers "where did the cycles of
// one run go", this package answers "how is the fleet behaving" —
// aggregate run counts, pool hit rates, latency distributions across
// thousands of warm-started simulations.
//
// The contract mirrors trace.Tracer's: instrumentation must be free when
// unused. Every metric method is nil-safe — a nil *Counter, *Gauge or
// *Histogram is a no-op receiver, and a nil *Registry hands out nil
// metrics — so instrumented hot paths stay allocation-free and
// branch-predictable when no registry is attached. All operations are
// atomic and safe for concurrent use.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Kind discriminates the metric families a Registry holds.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing count. The zero value is ready;
// a nil receiver is a no-op (the detached/unregistered fast path).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add increases the counter by n. Negative deltas are ignored — a
// counter only goes up.
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(uint64(n))
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. The zero value is ready; a
// nil receiver is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add shifts the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution: observation counts per
// upper bound plus a running sum. Buckets are chosen at registration and
// never change; observing is lock-free. A nil receiver is a no-op.
type Histogram struct {
	// bounds are the inclusive upper bounds, ascending; an implicit +Inf
	// bucket follows. counts[i] holds observations in (bounds[i-1],
	// bounds[i]]; counts[len(bounds)] is the +Inf overflow.
	bounds  []float64
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// newHistogram sanitizes the bucket bounds: sorted, deduplicated, with
// non-finite values dropped (the +Inf bucket is implicit).
func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if !math.IsInf(b, 0) && !math.IsNaN(b) {
			bs = append(bs, b)
		}
	}
	sort.Float64s(bs)
	n := 0
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			bs[n] = b
			n++
		}
	}
	bs = bs[:n]
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// ExpBuckets returns n bucket bounds starting at start and growing by
// factor — the usual shape for latency and size distributions.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		return nil
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// series is one label-set instance inside a family.
type series struct {
	// key is the pre-rendered, escaped `{a="b",c="d"}` suffix ("" for the
	// unlabelled series); encode order sorts on it.
	key string
	c   *Counter
	g   *Gauge
	h   *Histogram
}

// family groups the series of one metric name.
type family struct {
	name, help string
	kind       Kind
	buckets    []float64
	series     map[string]*series
}

// Registry holds metric families and encodes them in Prometheus text
// format. The zero value is NOT usable — use New — but a nil *Registry
// is: every lookup on it returns a nil metric, keeping instrumented code
// unconditional.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: map[string]*family{}}
}

// lookup finds or creates the series for (name, kind, labels). A name
// already registered under a different kind cannot be re-registered:
// the caller gets a live but detached metric so instrumentation keeps
// working, and the exposition keeps the first registration only.
func (r *Registry) lookup(name, help string, kind Kind, buckets []float64, labels []Label) *series {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, buckets: buckets, series: map[string]*series{}}
		r.families[name] = f
	}
	if f.kind != kind {
		return nil // caller substitutes a detached metric
	}
	s := f.series[key]
	if s == nil {
		s = &series{key: key}
		switch kind {
		case KindCounter:
			s.c = &Counter{}
		case KindGauge:
			s.g = &Gauge{}
		case KindHistogram:
			s.h = newHistogram(f.buckets)
		}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter for name and labels, registering it on
// first use. A nil registry returns nil (a no-op counter).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, KindCounter, nil, labels)
	if s == nil {
		return &Counter{}
	}
	return s.c
}

// Gauge returns the gauge for name and labels, registering it on first
// use. A nil registry returns nil.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, KindGauge, nil, labels)
	if s == nil {
		return &Gauge{}
	}
	return s.g
}

// Histogram returns the histogram for name and labels, registering it
// (with the given bucket upper bounds; +Inf is implicit) on first use.
// Later calls for the same name reuse the registered buckets. A nil
// registry returns nil.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, KindHistogram, buckets, labels)
	if s == nil {
		return &Histogram{counts: make([]atomic.Uint64, 1)}
	}
	return s.h
}
