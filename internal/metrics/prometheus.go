package metrics

// Prometheus text exposition format v0.0.4, hand-rolled: the registry is
// dependency-free by design, and the format is small — HELP/TYPE
// comments, one `name{labels} value` line per series, and the cumulative
// bucket/sum/count triplet for histograms. Families and series are
// emitted in sorted order so the output is byte-deterministic for a
// given registry state (the golden test relies on this).

import (
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus encodes the registry's current state in Prometheus
// text format v0.0.4. A nil registry writes nothing. It walks the same
// sorted family/series snapshot Registry.Each visits, so the exposition
// and the tsdb sampler observe series in the same deterministic order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var buf []byte
	for _, fv := range r.snapshot() {
		buf = fv.f.append(buf, fv.series)
	}
	_, err := w.Write(buf)
	return err
}

// famView is one family plus its series, both in deterministic order.
type famView struct {
	f      *family
	series []*series
}

// snapshot captures the registry's family and series sets — sorted by
// name, then label key — under the registry lock. It is the shared
// iteration base of WritePrometheus and Each: both walk series in the
// same deterministic order. The pointers stay live (series hold
// atomics); only the set membership is snapshotted.
func (r *Registry) snapshot() []famView {
	r.mu.Lock()
	fams := make([]famView, 0, len(r.families))
	for _, f := range r.families {
		ss := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			ss = append(ss, s)
		}
		sort.Slice(ss, func(i, j int) bool { return ss[i].key < ss[j].key })
		fams = append(fams, famView{f: f, series: ss})
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].f.name < fams[j].f.name })
	return fams
}

func (f *family) append(buf []byte, series []*series) []byte {
	buf = append(buf, "# HELP "...)
	buf = append(buf, f.name...)
	buf = append(buf, ' ')
	buf = append(buf, escapeHelp(f.help)...)
	buf = append(buf, "\n# TYPE "...)
	buf = append(buf, f.name...)
	buf = append(buf, ' ')
	buf = append(buf, f.kind.String()...)
	buf = append(buf, '\n')

	for _, s := range series {
		switch f.kind {
		case KindCounter:
			buf = appendSample(buf, f.name, "", s.key, "", float64(s.c.Value()), true)
		case KindGauge:
			buf = appendSample(buf, f.name, "", s.key, "", float64(s.g.Value()), true)
		case KindHistogram:
			buf = s.h.appendText(buf, f.name, s.key)
		}
	}
	return buf
}

// appendText emits the cumulative _bucket series plus _sum and _count.
func (h *Histogram) appendText(buf []byte, name, key string) []byte {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		buf = appendSample(buf, name, "_bucket", key, formatLe(b), float64(cum), true)
	}
	cum += h.counts[len(h.bounds)].Load()
	buf = appendSample(buf, name, "_bucket", key, "+Inf", float64(cum), true)
	buf = appendSample(buf, name, "_sum", key, "", h.Sum(), false)
	buf = appendSample(buf, name, "_count", key, "", float64(h.count.Load()), true)
	return buf
}

// appendSample writes one exposition line. le, when non-empty, is merged
// into the label set as the bucket bound. integer selects exact integer
// rendering for counts.
func appendSample(buf []byte, name, suffix, key, le string, v float64, integer bool) []byte {
	buf = append(buf, name...)
	buf = append(buf, suffix...)
	switch {
	case key == "" && le == "":
	case le == "":
		buf = append(buf, '{')
		buf = append(buf, key...)
		buf = append(buf, '}')
	default:
		buf = append(buf, '{')
		if key != "" {
			buf = append(buf, key...)
			buf = append(buf, ',')
		}
		buf = append(buf, `le="`...)
		buf = append(buf, le...)
		buf = append(buf, `"`...)
		buf = append(buf, '}')
	}
	buf = append(buf, ' ')
	if integer && v == math.Trunc(v) && math.Abs(v) < 1e15 {
		buf = strconv.AppendInt(buf, int64(v), 10)
	} else {
		buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
	}
	return append(buf, '\n')
}

// formatLe renders a bucket bound the way Prometheus clients do.
func formatLe(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// labelKey pre-renders a label set as its escaped `a="b",c="d"` body,
// sorted by label name so equivalent sets collide.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var sb strings.Builder
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	return sb.String()
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeHelp escapes a HELP string: backslash and newline only.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}
