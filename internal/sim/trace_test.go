package sim

import (
	"testing"

	"cambricon/internal/asm"
	"cambricon/internal/trace"
)

// traceTestPrograms are small programs covering the pipeline's corners:
// scalar loops (branch redirects), dependent vector chains (memory-queue
// dependences), matrix work and DMA traffic.
var traceTestPrograms = map[string]string{
	"scalar-loop": `
	SMOVE  $1, #10
	SMOVE  $2, #0
top:	SADD   $2, $2, $1
	SADD   $1, $1, #-1
	CB     #top, $1
`,
	"mlp-layer": `
.data 100: 0.5, -1, 0.25
.data 300: 0.5, 1, -0.5, -1, 0.25, 0.75, 2, -1, 0.5
.data 400: 0.1, -0.2, 0.3
	SMOVE  $0, #3
	SMOVE  $1, #3
	SMOVE  $2, #9
	SMOVE  $3, #0
	SMOVE  $4, #0
	SMOVE  $5, #64
	SMOVE  $6, #512
	SMOVE  $7, #128
	SMOVE  $8, #192
	VLOAD  $3, $0, #100
	VLOAD  $5, $1, #400
	MLOAD  $4, $2, #300
	MMV    $7, $1, $4, $3, $0
	VAV    $7, $1, $7, $5
	VEXP   $8, $1, $7
	VAS    $7, $1, $8, #256
	VDV    $6, $1, $8, $7
	VSTORE $6, $1, #200
`,
	"dependent-vectors": `
.data 100: 1, 2, 3, 4, 5, 6, 7, 8
	SMOVE  $0, #8
	SMOVE  $1, #0
	VLOAD  $1, $0, #100
	VAV    $1, $0, $1, $1
	VAV    $1, $0, $1, $1
	VMV    $1, $0, $1, $1
	VSTORE $1, $0, #200
`,
}

// runTraced executes src on a fresh default machine with the given
// tracer attached.
func runTraced(t *testing.T, src string, tr trace.Tracer) Stats {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := mustNew(t, DefaultConfig())
	for _, c := range p.Data {
		if err := m.WriteMainNums(c.Addr, c.Values); err != nil {
			t.Fatal(err)
		}
	}
	m.SetTracer(tr)
	m.LoadProgram(p.Instructions)
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// statsRecorder is a minimal tracer capturing the stream's aggregates.
type statsRecorder struct {
	begun   bool
	insts   int64
	gapSum  int64
	attrSum int64
	total   int64
}

func (r *statsRecorder) BeginRun(meta trace.RunMeta) { r.begun = true }
func (r *statsRecorder) Instruction(ev *trace.InstEvent) {
	r.insts++
	r.gapSum += ev.Gap
	for _, v := range ev.Attr {
		r.attrSum += v
	}
}
func (r *statsRecorder) BankConflict(spad string, bank int, extraCycles, atCycle int64) {}
func (r *statsRecorder) EndRun(totalCycles int64)                                       { r.total = totalCycles }

// TestTracedRunBitIdentical is the tracer contract: attaching any
// tracer must not change a single statistic of the run.
func TestTracedRunBitIdentical(t *testing.T) {
	for name, src := range traceTestPrograms {
		t.Run(name, func(t *testing.T) {
			plain := runTraced(t, src, nil)
			rec := &statsRecorder{}
			traced := runTraced(t, src, rec)
			if plain != traced {
				t.Errorf("traced run diverged:\nuntraced %+v\ntraced   %+v", plain, traced)
			}
			if !rec.begun || rec.total != plain.Cycles || rec.insts != plain.Instructions {
				t.Errorf("stream saw begun=%v total=%d insts=%d, stats %d/%d",
					rec.begun, rec.total, rec.insts, plain.Cycles, plain.Instructions)
			}
			if rec.gapSum != plain.Cycles || rec.attrSum != plain.Cycles {
				t.Errorf("commit windows sum to gap=%d attr=%d, want %d",
					rec.gapSum, rec.attrSum, plain.Cycles)
			}
		})
	}
}

// TestStallAttributionConsistency checks the CPI-stack invariant across
// programs and machine shapes: every cycle attributed to exactly one
// cause.
func TestStallAttributionConsistency(t *testing.T) {
	shrunk := DefaultConfig()
	shrunk.ROBDepth = 2
	shrunk.MemQueueDepth = 2
	shrunk.IssueQueueDepth = 2
	for name, src := range traceTestPrograms {
		for _, cfg := range []struct {
			label string
			cfg   Config
		}{{"default", DefaultConfig()}, {"tiny-queues", shrunk}} {
			t.Run(name+"/"+cfg.label, func(t *testing.T) {
				p, err := asm.Assemble(src)
				if err != nil {
					t.Fatal(err)
				}
				m := mustNew(t, cfg.cfg)
				for _, c := range p.Data {
					if err := m.WriteMainNums(c.Addr, c.Values); err != nil {
						t.Fatal(err)
					}
				}
				m.LoadProgram(p.Instructions)
				stats, err := m.Run()
				if err != nil {
					t.Fatal(err)
				}
				if err := stats.CheckConsistency(); err != nil {
					t.Error(err)
				}
				bd := stats.StallBreakdown()
				if got := bd.Sum(); got != stats.Cycles {
					t.Errorf("breakdown sums to %d, want %d", got, stats.Cycles)
				}
			})
		}
	}
}

func TestCheckConsistencyDetectsCorruption(t *testing.T) {
	stats := runTraced(t, traceTestPrograms["mlp-layer"], nil)
	if err := stats.CheckConsistency(); err != nil {
		t.Fatalf("healthy run: %v", err)
	}
	bad := stats
	bad.Stalls[trace.CauseCompute]++
	if err := bad.CheckConsistency(); err == nil {
		t.Error("inflated stall bucket not detected")
	}
	bad = stats
	bad.Stalls[trace.CauseMemDep] = -1
	if err := bad.CheckConsistency(); err == nil {
		t.Error("negative stall bucket not detected")
	}
	bad = stats
	bad.VectorBusyCycles = bad.Cycles + 1
	if err := bad.CheckConsistency(); err == nil {
		t.Error("impossible busy counter not detected")
	}
	bad = stats
	bad.MemDepStallCycles = -3
	if err := bad.CheckConsistency(); err == nil {
		t.Error("negative raw counter not detected")
	}
}

// TestNilTracerZeroAllocs pins the untraced hot path: after warm-up,
// re-running a program on the same machine must not allocate at all,
// tracing plumbing included.
func TestNilTracerZeroAllocs(t *testing.T) {
	p, err := asm.Assemble(traceTestPrograms["mlp-layer"])
	if err != nil {
		t.Fatal(err)
	}
	m := mustNew(t, DefaultConfig())
	for _, c := range p.Data {
		if err := m.WriteMainNums(c.Addr, c.Values); err != nil {
			t.Fatal(err)
		}
	}
	run := func() {
		m.Reset()
		m.LoadProgram(p.Instructions)
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the operand buffers
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Errorf("untraced run allocates %.1f objects per run, want 0", allocs)
	}
}

// BenchmarkRunUntraced measures the nil-tracer hot path (the benchmark
// the 0 allocs/op acceptance criterion reads).
func BenchmarkRunUntraced(b *testing.B) {
	benchmarkRun(b, nil)
}

// BenchmarkRunTraced measures the same run with a null tracer attached,
// isolating the event-plumbing overhead.
func BenchmarkRunTraced(b *testing.B) {
	benchmarkRun(b, nullTracer{})
}

type nullTracer struct{}

func (nullTracer) BeginRun(trace.RunMeta)                 {}
func (nullTracer) Instruction(*trace.InstEvent)           {}
func (nullTracer) BankConflict(string, int, int64, int64) {}
func (nullTracer) EndRun(int64)                           {}

func benchmarkRun(b *testing.B, tr trace.Tracer) {
	p, err := asm.Assemble(traceTestPrograms["mlp-layer"])
	if err != nil {
		b.Fatal(err)
	}
	m := mustNew(b, DefaultConfig())
	for _, c := range p.Data {
		if err := m.WriteMainNums(c.Addr, c.Values); err != nil {
			b.Fatal(err)
		}
	}
	m.SetTracer(tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		m.LoadProgram(p.Instructions)
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
