package sim

import (
	"context"
	"fmt"
	"io"

	"cambricon/internal/core"
	"cambricon/internal/trace"
)

// FuseKind classifies a fused instruction pair. The fusion pass marks the
// pair's head pc; execution then dispatches both constituents from one
// loop iteration, short-circuiting the intermediate vector where the
// second constituent re-reads exactly what the first just produced.
type FuseKind uint8

const (
	// FuseNone: the pc does not start a fused pair.
	FuseNone FuseKind = iota
	// FuseLoadMatVec: VLOAD followed by MMV/VMM consuming the loaded
	// vector (the Table III layer prologue). The pair shares one
	// dispatch; the loaded data crosses the scratchpad as bytes, so
	// there is no numeric intermediate to short-circuit.
	FuseLoadMatVec
	// FuseMatVecAct: MMV/VMM followed by an activation-shaped vector op
	// (VEXP/VLOG/VNOT/VAS) consuming the product vector. The product is
	// handed to the activation directly from the matrix unit's output
	// buffer; the scratchpad write still happens (architectural state
	// stays bit-identical) but the re-read is skipped.
	FuseMatVecAct
	// FuseVecChain: a vector producer followed by a vector op consuming
	// its output (elementwise chains, reductions, dot products), with
	// the same output-buffer hand-off as FuseMatVecAct.
	FuseVecChain
)

func (k FuseKind) String() string {
	switch k {
	case FuseNone:
		return "none"
	case FuseLoadMatVec:
		return "load->matvec"
	case FuseMatVecAct:
		return "matvec->act"
	case FuseVecChain:
		return "vec-chain"
	default:
		return fmt.Sprintf("FuseKind(%d)", uint8(k))
	}
}

// FusionStats counts the fused pairs a pre-decoded program contains, by
// kind. Counts are static (per program, not per dynamic execution).
type FusionStats struct {
	LoadMatVec int
	MatVecAct  int
	VecChain   int
}

// Total is the number of fused pairs of all kinds.
func (f FusionStats) Total() int { return f.LoadMatVec + f.MatVecAct + f.VecChain }

// DecodedProgram is a program in executable pre-decoded form: the
// per-instruction decode work hoisted out of the dynamic loop
// (core.PreDecode) plus the peephole fusion plan. A DecodedProgram is
// immutable after Predecode and may be shared by any number of machines
// concurrently — warm-pool acquisitions and fault-campaign workers all
// execute the same decoded image.
type DecodedProgram struct {
	insts  []core.Instruction
	dec    []core.DecodedInst
	fuse   []FuseKind
	fusion FusionStats
}

// Predecode validates and pre-decodes prog and plans its fusion pairs.
// The program must not be mutated afterwards (the same contract as
// Snapshot's program sharing).
func Predecode(prog []core.Instruction) (*DecodedProgram, error) {
	dec, err := core.PreDecode(prog)
	if err != nil {
		return nil, err
	}
	dp := &DecodedProgram{insts: prog, dec: dec}
	dp.fuse, dp.fusion = fusePlan(dec)
	return dp, nil
}

// Instructions returns the underlying program. Callers must not mutate it.
func (dp *DecodedProgram) Instructions() []core.Instruction { return dp.insts }

// Len is the static instruction count.
func (dp *DecodedProgram) Len() int { return len(dp.dec) }

// Fusion returns the program's static fusion-pair counts.
func (dp *DecodedProgram) Fusion() FusionStats { return dp.fusion }

// Dump writes the pre-decoded listing: one line per instruction with the
// encoded word, type category, operand register sets, disassembly, and
// the fusion decision covering it, followed by a summary line. The format
// is stable (covered by a golden test) for use as a debugging artifact.
func (dp *DecodedProgram) Dump(w io.Writer) error {
	for pc := range dp.dec {
		d := &dp.dec[pc]
		role := " "
		switch {
		case dp.fuse[pc] != FuseNone:
			role = "┌"
		case pc > 0 && dp.fuse[pc-1] != FuseNone:
			role = "└"
		}
		src := "-"
		if d.NSrc > 0 {
			buf := make([]byte, 0, 16)
			for i, r := range d.Src() {
				if i > 0 {
					buf = append(buf, ',')
				}
				buf = append(buf, '$')
				buf = appendUint(buf, int(r))
			}
			src = string(buf)
		}
		dst := "-"
		if d.HasDest {
			dst = fmt.Sprintf("$%d", d.DestReg)
		}
		fuseNote := ""
		if k := dp.fuse[pc]; k != FuseNone {
			fuseNote = fmt.Sprintf("  ; fuse %s", k)
		}
		if _, err := fmt.Fprintf(w, "%4d %s %016x  %-13s src=%-12s dst=%-3s %v%s\n",
			pc, role, d.Word, d.Type, src, dst, d.Inst, fuseNote); err != nil {
			return err
		}
	}
	f := dp.fusion
	_, err := fmt.Fprintf(w, "predecoded %d instructions; fused pairs: total=%d load->matvec=%d matvec->act=%d vec-chain=%d\n",
		len(dp.dec), f.Total(), f.LoadMatVec, f.MatVecAct, f.VecChain)
	return err
}

func appendUint(buf []byte, v int) []byte {
	if v >= 10 {
		buf = appendUint(buf, v/10)
	}
	return append(buf, byte('0'+v%10))
}

// vecProducer reports whether op writes an n-element vector to the vector
// scratchpad at the address in R[0] with the element count in R[1], writes
// no GPR, and leaves its result in the machine's output operand buffer —
// the producer half of a fusible pair.
func vecProducer(op core.Opcode) bool {
	switch op {
	case core.VAV, core.VSV, core.VMV, core.VDV, core.VGT, core.VE,
		core.VAND, core.VOR, core.VGTM, core.VAS,
		core.VEXP, core.VLOG, core.VNOT, core.RV,
		core.MMV, core.VMM:
		return true
	}
	return false
}

// consumesVec reports whether inst reads a vector-scratchpad operand whose
// address register is addrReg and whose element-count register is sizeReg —
// the consumer half of a fusible pair. The static register-index match
// guarantees the runtime region match (the producer writes no GPR, so the
// registers cannot change between the constituents).
func consumesVec(inst core.Instruction, addrReg, sizeReg uint8) bool {
	switch inst.Op {
	case core.VEXP, core.VLOG, core.VNOT, core.VMAX, core.VMIN:
		return inst.R[2] == addrReg && inst.R[1] == sizeReg
	case core.VAS:
		return inst.R[2] == addrReg && inst.R[1] == sizeReg
	case core.VAV, core.VSV, core.VMV, core.VDV, core.VGT, core.VE,
		core.VAND, core.VOR, core.VGTM, core.VDOT:
		return (inst.R[2] == addrReg || inst.R[3] == addrReg) && inst.R[1] == sizeReg
	case core.MMV, core.VMM:
		return inst.R[3] == addrReg && inst.R[4] == sizeReg
	}
	return false
}

// activation reports whether op is the activation-shaped tail of the
// paper's MMV→activation codegen idiom.
func activation(op core.Opcode) bool {
	switch op {
	case core.VEXP, core.VLOG, core.VNOT, core.VAS:
		return true
	}
	return false
}

// fusePlan runs the peephole pass over the pre-decoded program: a greedy
// left-to-right scan marking non-overlapping [pc, pc+1] pairs where the
// first instruction produces a vector the second consumes. Correctness
// does not depend on the plan — a marked pair executes exactly the two
// constituent semantics with all timing-model calls preserved — so the
// pass only has to be conservative enough that the intermediate hand-off
// condition (same address and count registers, producer writes no GPR)
// holds.
func fusePlan(dec []core.DecodedInst) ([]FuseKind, FusionStats) {
	fuse := make([]FuseKind, len(dec))
	var fs FusionStats
	for pc := 0; pc+1 < len(dec); pc++ {
		if pc > 0 && fuse[pc-1] != FuseNone {
			continue // second half of the previous pair
		}
		a, b := dec[pc].Inst, dec[pc+1].Inst
		switch {
		case a.Op == core.VLOAD && (b.Op == core.MMV || b.Op == core.VMM) &&
			b.R[3] == a.R[0] && b.R[4] == a.R[1]:
			fuse[pc] = FuseLoadMatVec
			fs.LoadMatVec++
		case vecProducer(a.Op) && consumesVec(b, a.R[0], a.R[1]):
			if (a.Op == core.MMV || a.Op == core.VMM) && activation(b.Op) {
				fuse[pc] = FuseMatVecAct
				fs.MatVecAct++
			} else {
				fuse[pc] = FuseVecChain
				fs.VecChain++
			}
		}
	}
	return fuse, fs
}

// LoadDecoded installs a pre-decoded program: Run then executes through
// the pre-decoded dispatch loop instead of the baseline interpreter, with
// bit-identical statistics, cycles, traces and fault behaviour.
// LoadProgram clears the decoded form again (the two entry points cannot
// get out of sync).
func (m *Machine) LoadDecoded(dp *DecodedProgram) {
	m.prog = dp.insts
	m.dec = dp
	m.pc = 0
}

// runDecoded executes the installed DecodedProgram. The program was
// validated by Predecode, so the baseline loop's per-run validation scan
// is skipped. Fault-free untraced runs take the tight fused loop (which
// also implements the MaxCycles watchdog with diagnostics identical to
// the baseline loop's); runs with an injector, tracer or instruction
// trace take the general pre-decoded loop, which performs the baseline
// loop's observability work step for step (bit-identical traces, fault
// reports and watchdog diagnostics) while still skipping per-fetch
// re-encoding and operand-role resolution.
func (m *Machine) runDecoded(ctx context.Context) (Stats, error) {
	if m.tracer == nil && m.trace == nil && m.inj == nil && m.rec == nil {
		return m.runDecodedTight(ctx)
	}
	return m.runDecodedSlow(ctx)
}

// runDecodedTight is the fused hot loop: no tracer, no instruction trace,
// no injector. Per dynamic instruction it performs only the functional
// execution, the statistics updates and the timing-model advance —
// operand roles come from the decode, and fused pairs execute with a
// single dispatch. A positive MaxCycles arms the same per-commit watchdog
// as the baseline loop (the reusable event buffer then records stage
// timestamps for the diagnostic; timing is unaffected).
func (m *Machine) runDecodedTight(ctx context.Context) (Stats, error) {
	dp := m.dec
	dec := dp.dec
	limit := m.cfg.MaxDynamicInstructions
	watchdog := m.cfg.MaxCycles > 0
	done := ctx.Done()
	stopAt := m.stopAt
	var evp *trace.InstEvent
	if watchdog {
		// The watchdog diagnostic reads only the stage timestamps advance
		// assigns unconditionally, so the buffer needs no per-step reset.
		evp = &m.ev
	}
	for m.pc >= 0 && m.pc < len(dec) {
		n := m.stats.Instructions
		if stopAt >= 0 && n >= stopAt {
			m.stopped = true
			m.stats.Cycles = m.pipe.lastCommit
			return m.stats, nil
		}
		if done != nil && n&1023 == 0 {
			select {
			case <-done:
				m.stats.Cycles = m.pipe.lastCommit
				m.metCancel.Inc()
				return m.stats, ctx.Err()
			default:
			}
		}
		if n >= limit {
			m.stats.Cycles = m.pipe.lastCommit
			return m.stats, &RuntimeError{PC: m.pc, Inst: dec[m.pc].Inst,
				Err: fmt.Errorf("dynamic instruction limit %d exceeded", limit)}
		}
		d := &dec[m.pc]
		// A fused pair executes both constituents from this iteration.
		// Fall back to single steps when the second constituent would
		// cross the instruction limit, a cancellation poll point or a
		// RunUntil stop boundary, so those checks fire at exactly the
		// baseline loop's boundaries.
		if k := dp.fuse[m.pc]; k != FuseNone && n+2 <= limit &&
			(done == nil || (n+1)&1023 != 0) &&
			(stopAt < 0 || n+2 <= stopAt) {
			if err := m.stepFused(d, &dec[m.pc+1], k, evp); err != nil {
				m.stats.Cycles = m.pipe.lastCommit
				return m.stats, err
			}
			m.pc += 2
			continue
		}
		m.eff.reset()
		if err := m.execInto(d.Inst, &m.eff); err != nil {
			m.stats.Cycles = m.pipe.lastCommit
			return m.stats, &RuntimeError{PC: m.pc, Inst: d.Inst, Err: err}
		}
		m.stats.Instructions++
		m.stats.ByType[d.Type]++
		m.stats.ByOpcode[d.Inst.Op]++
		commit := m.pipe.advanceWith(d.Src(), d.DestReg, d.HasDest, &m.eff, evp)
		if watchdog && commit > m.cfg.MaxCycles {
			m.stats.Cycles = m.pipe.lastCommit
			m.metWatchdog.Inc()
			return m.stats, &WatchdogError{
				PC:    m.pc,
				Inst:  d.Inst,
				Index: m.stats.Instructions - 1,
				Cycle: commit,
				Limit: m.cfg.MaxCycles,
				Stage: stageAt(&m.ev, m.cfg.MaxCycles),
			}
		}
		if m.eff.branchTaken {
			m.stats.BranchesTaken++
			m.pc += m.eff.branchOffset
		} else {
			m.pc++
		}
	}
	m.stats.Cycles = m.pipe.lastCommit
	if m.pc != len(dec) && len(dec) > 0 {
		return m.stats, fmt.Errorf("sim: control flow left the program (pc=%d, len=%d)", m.pc, len(dec))
	}
	return m.stats, nil
}

// stepFused executes a fused pair: two instructions, one dispatch. Each
// constituent still reports its own effect to the timing model and the
// statistics — fusion changes host work, never simulated behaviour. For
// the numeric hand-off kinds the producer's output operand buffer is
// armed as a read short-circuit while the consumer executes: the consumer
// reads the intermediate vector straight from the producer's buffer
// instead of re-reading the scratchpad region holding the identical data
// (the scratchpad write itself is never skipped). Fusion legality
// guarantees neither constituent branches or writes a register the
// hand-off depends on. A non-nil evp arms the watchdog: the cycle budget
// is checked after each constituent's commit, so a pair whose first half
// trips the budget errors out before the second half executes — exactly
// the baseline loop's instruction boundary.
func (m *Machine) stepFused(d1, d2 *core.DecodedInst, k FuseKind, evp *trace.InstEvent) error {
	m.eff.reset()
	if err := m.execInto(d1.Inst, &m.eff); err != nil {
		return &RuntimeError{PC: m.pc, Inst: d1.Inst, Err: err}
	}
	m.stats.Instructions++
	m.stats.ByType[d1.Type]++
	m.stats.ByOpcode[d1.Inst.Op]++
	commit := m.pipe.advanceWith(d1.Src(), d1.DestReg, d1.HasDest, &m.eff, evp)
	if evp != nil && commit > m.cfg.MaxCycles {
		m.metWatchdog.Inc()
		return &WatchdogError{
			PC:    m.pc,
			Inst:  d1.Inst,
			Index: m.stats.Instructions - 1,
			Cycle: commit,
			Limit: m.cfg.MaxCycles,
			Stage: stageAt(&m.ev, m.cfg.MaxCycles),
		}
	}

	var err error
	if n1 := int(int32(m.gpr[d1.Inst.R[1]])); k != FuseLoadMatVec && n1 > 0 {
		// The producer's result sits in bufOut (and, identically, in the
		// scratchpad region it just wrote). Hand it to the consumer and
		// swap the output buffers so the consumer's own result cannot
		// clobber the intermediate it is still reading.
		m.fusedSrc = m.bufOut[:n1]
		m.fusedAddr = m.regAddr(d1.Inst.R[0])
		m.bufOut, m.bufFuse = m.bufFuse, m.bufOut
		m.eff.reset()
		err = m.execInto(d2.Inst, &m.eff)
		m.bufOut, m.bufFuse = m.bufFuse, m.bufOut
		m.fusedSrc = nil
	} else {
		m.eff.reset()
		err = m.execInto(d2.Inst, &m.eff)
	}
	if err != nil {
		return &RuntimeError{PC: m.pc + 1, Inst: d2.Inst, Err: err}
	}
	m.stats.Instructions++
	m.stats.ByType[d2.Type]++
	m.stats.ByOpcode[d2.Inst.Op]++
	commit = m.pipe.advanceWith(d2.Src(), d2.DestReg, d2.HasDest, &m.eff, evp)
	if evp != nil && commit > m.cfg.MaxCycles {
		m.metWatchdog.Inc()
		return &WatchdogError{
			PC:    m.pc + 1,
			Inst:  d2.Inst,
			Index: m.stats.Instructions - 1,
			Cycle: commit,
			Limit: m.cfg.MaxCycles,
			Stage: stageAt(&m.ev, m.cfg.MaxCycles),
		}
	}
	return nil
}

// runDecodedSlow is the general pre-decoded loop: it mirrors the baseline
// RunContext body observability call for observability call — same trace
// lines, same tracer events, same injector hook order, same watchdog
// diagnostics — while using the decode's cached 64-bit words (the
// injector's fetch hook costs a table lookup instead of an Encode) and
// cached operand roles for the timing model.
func (m *Machine) runDecodedSlow(ctx context.Context) (Stats, error) {
	dp := m.dec
	dec := dp.dec
	tracing := m.tracer != nil
	if tracing {
		m.tracer.BeginRun(m.runMeta())
		defer func() { m.tracer.EndRun(m.pipe.lastCommit) }()
	}
	if m.inj != nil {
		m.inj.BeginRun()
	}
	watchdog := m.cfg.MaxCycles > 0
	needEv := tracing || watchdog
	done := ctx.Done()
	stopAt := m.stopAt
	for m.pc >= 0 && m.pc < len(dec) {
		if stopAt >= 0 && m.stats.Instructions >= stopAt {
			m.stopped = true
			m.stats.Cycles = m.pipe.lastCommit
			return m.stats, nil
		}
		if done != nil && m.stats.Instructions&1023 == 0 {
			select {
			case <-done:
				m.stats.Cycles = m.pipe.lastCommit
				m.metCancel.Inc()
				return m.stats, ctx.Err()
			default:
			}
		}
		if m.stats.Instructions >= m.cfg.MaxDynamicInstructions {
			m.stats.Cycles = m.pipe.lastCommit
			return m.stats, &RuntimeError{PC: m.pc, Inst: dec[m.pc].Inst,
				Err: fmt.Errorf("dynamic instruction limit %d exceeded", m.cfg.MaxDynamicInstructions)}
		}
		d := &dec[m.pc]
		inst := d.Inst
		src, dst, hasDst := d.Src(), d.DestReg, d.HasDest
		typ := d.Type
		if m.inj != nil {
			if cw := m.inj.CorruptFetch(m.stats.Instructions, d.Word); cw != d.Word {
				m.noteFault("fetch-bit")
				var err error
				if inst, err = core.Decode(cw); err != nil {
					m.stats.Cycles = m.pipe.lastCommit
					return m.stats, &RuntimeError{PC: m.pc, Inst: d.Inst, Err: err}
				}
				// The corrupted instruction is not the decoded one: derive
				// its operand roles generically, like the baseline fetch.
				var srcBuf [6]uint8
				src = inst.ReadRegs(srcBuf[:0])
				dst, hasDst = inst.DestReg()
				typ = inst.Op.Type()
			}
			m.inj.BeforeExec(m.stats.Instructions, m)
		}
		m.eff.reset()
		if err := m.execInto(inst, &m.eff); err != nil {
			m.stats.Cycles = m.pipe.lastCommit
			return m.stats, &RuntimeError{PC: m.pc, Inst: inst, Err: err}
		}
		m.stats.Instructions++
		m.stats.ByType[typ]++
		m.stats.ByOpcode[inst.Op]++
		if m.rec != nil {
			m.rec.record(m.stats.Instructions-1, src, dst, hasDst, &m.eff)
		}
		var evp *trace.InstEvent
		if needEv {
			if tracing {
				// The tracer consumes the event's stall attribution, which
				// advance accumulates: the buffer must start zeroed. The
				// watchdog reads only the stage timestamps advance assigns
				// unconditionally, so its diagnostic needs no reset.
				m.ev = trace.InstEvent{}
			}
			evp = &m.ev
		}
		commit := m.pipe.advanceWith(src, dst, hasDst, &m.eff, evp)
		if tracing {
			m.ev.Index = m.stats.Instructions - 1
			m.ev.PC = m.pc
			m.ev.Op = inst.Op
			m.ev.BranchTaken = m.eff.branchTaken
			m.ev.IsDMA = m.eff.isDMA
			m.ev.DMABytes = m.eff.dmaBytes
			m.tracer.Instruction(&m.ev)
		}
		if m.trace != nil {
			note := ""
			if m.eff.branchTaken {
				note = fmt.Sprintf("  ; taken -> %d", m.pc+m.eff.branchOffset)
			}
			fmt.Fprintf(m.trace, "%8d  cyc=%-8d pc=%-6d %s%s\n",
				m.stats.Instructions-1, commit, m.pc, inst, note)
		}
		if watchdog && commit > m.cfg.MaxCycles {
			m.stats.Cycles = m.pipe.lastCommit
			m.metWatchdog.Inc()
			return m.stats, &WatchdogError{
				PC:    m.pc,
				Inst:  inst,
				Index: m.stats.Instructions - 1,
				Cycle: commit,
				Limit: m.cfg.MaxCycles,
				Stage: stageAt(&m.ev, m.cfg.MaxCycles),
			}
		}
		if m.eff.branchTaken {
			m.stats.BranchesTaken++
			m.pc += m.eff.branchOffset
		} else {
			m.pc++
		}
	}
	m.stats.Cycles = m.pipe.lastCommit
	if m.pc != len(dec) && len(dec) > 0 {
		return m.stats, fmt.Errorf("sim: control flow left the program (pc=%d, len=%d)", m.pc, len(dec))
	}
	return m.stats, nil
}
