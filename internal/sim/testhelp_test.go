package sim

import (
	"testing"

	"cambricon/internal/asm"
)

// mustNew builds a machine from a known-good configuration, failing the
// test otherwise. (The production API has no panicking constructor.)
func mustNew(tb testing.TB, cfg Config) *Machine {
	tb.Helper()
	m, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// mustAssemble parses known-good test source, failing the test
// otherwise. (The production API has no panicking assembler.)
func mustAssemble(tb testing.TB, src string) *asm.Program {
	tb.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}
