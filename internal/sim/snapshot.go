package sim

import (
	"fmt"

	"cambricon/internal/core"
	"cambricon/internal/mem"
)

// Snapshot is a captured machine state: registers, PC, PRNG, the loaded
// program and memory images. Capturing one right after Program.Init
// turns every later run of the same prepared workload into a Restore —
// a handful of dirty-page copies — instead of a 16 MiB machine rebuild
// plus image replay. Main memory is held page-sparse (only nonzero 4 KiB
// pages are resident; benchmarks touch well under 1 MiB of the 16 MiB
// space), so a suite holding all ten prepared benchmarks keeps ~20x less
// memory than with dense images. A Snapshot is immutable once captured
// and may be shared by any number of machines (and goroutines)
// concurrently.
type Snapshot struct {
	cfg  Config
	gpr  [core.NumGPRs]uint32
	pc   int
	rng  uint64
	prog []core.Instruction
	dec  *DecodedProgram

	vspad, mspad []byte
	main         *mem.SparseImage

	// stats/pipe are set only for mid-run captures (Checkpoint): the
	// accumulated statistics and pipeline timing state at the capture
	// boundary. Restore reinstates them instead of resetting, so resuming
	// is bit-identical to never having stopped. Run-boundary snapshots
	// (Snapshot) leave them nil and restore to reset state as before.
	stats *Stats
	pipe  *pipeState
}

// Config returns the configuration the snapshot was captured under.
func (s *Snapshot) Config() Config { return s.cfg }

// MidRun reports whether the snapshot was captured mid-run (by
// Checkpoint) rather than at a run boundary (by Snapshot).
func (s *Snapshot) MidRun() bool { return s.stats != nil }

// Instructions returns the dynamic instruction index the snapshot was
// captured at (0 for run-boundary snapshots).
func (s *Snapshot) Instructions() int64 {
	if s.stats == nil {
		return 0
	}
	return s.stats.Instructions
}

// Stats returns a copy of the statistics captured with a mid-run
// snapshot (the zero Stats for run-boundary snapshots).
func (s *Snapshot) Stats() Stats {
	if s.stats == nil {
		return Stats{}
	}
	return *s.stats
}

// Bytes returns the resident size of the captured memory images: the
// dense scratchpad copies plus only the nonzero pages of main memory.
func (s *Snapshot) Bytes() int { return len(s.vspad) + len(s.mspad) + s.main.Bytes() }

// DenseBytes returns what the same capture would occupy with a dense
// main-memory image — the denominator of the sparse-snapshot saving.
func (s *Snapshot) DenseBytes() int { return len(s.vspad) + len(s.mspad) + s.main.Size() }

// archEqual reports whether two configurations describe the same
// architectural state shapes, ignoring the watchdog budget: MaxCycles
// bounds a run's length but not the machine's state, so a pooled machine
// may be restored across runs with different budgets.
func archEqual(a, b Config) bool {
	a.MaxCycles, b.MaxCycles = 0, 0
	return a == b
}

// Snapshot captures the machine's current architectural state and arms
// dirty tracking on its memories, so a later Restore to this snapshot
// copies only regions written in between. Timing state (stats, pipeline
// rings) is not captured: Restore resets it exactly like a fresh machine,
// and the attached tracer/injector are left untouched.
func (m *Machine) Snapshot() *Snapshot {
	return m.capture(false)
}

// Checkpoint captures the machine mid-run, at its current dynamic
// instruction boundary: everything Snapshot captures plus the
// accumulated statistics (including the CPI-stack stall counters) and
// the full pipeline timing state (stage clocks, in-flight memory-queue
// entries, functional-unit availability). Restoring the checkpoint —
// onto this machine or any machine with an archEqual configuration —
// and resuming (Resume, RunUntil) produces statistics, cycles, traces
// and fault behaviour bit-identical to the uninterrupted run. Like
// Snapshot, the call arms dirty tracking so a later Restore to this
// checkpoint copies only memory written in between.
func (m *Machine) Checkpoint() *Snapshot {
	return m.capture(true)
}

func (m *Machine) capture(midRun bool) *Snapshot {
	s := &Snapshot{
		cfg:   m.cfg,
		gpr:   m.gpr,
		pc:    m.pc,
		rng:   m.rng,
		prog:  m.prog,
		dec:   m.dec,
		vspad: m.vspad.Image(),
		mspad: m.mspad.Image(),
		main:  m.main.SparseImage(),
	}
	if midRun {
		st := m.stats
		s.stats = &st
		s.pipe = m.pipe.capture()
	}
	m.vspad.BeginDirtyTracking()
	m.mspad.BeginDirtyTracking()
	m.main.BeginDirtyTracking()
	m.lastSnap = s
	return s
}

// PristineSnapshot synthesizes the snapshot of a freshly constructed
// machine for cfg — zero registers, PC 0, seeded PRNG, no program, all
// memory zero — without building one. Restoring it onto any archEqual
// machine resets it to post-construction state; the bench pool uses this
// to recycle machines across configurations (and, with the sparse
// all-zero main image, the restore touches only pages that were dirtied).
func PristineSnapshot(cfg Config) (*Snapshot, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := cfg.Seed
	if rng == 0 {
		rng = 1
	}
	return &Snapshot{
		cfg:   cfg,
		rng:   rng,
		vspad: make([]byte, cfg.VectorSpadBytes),
		mspad: make([]byte, cfg.MatrixSpadBytes),
		main:  mem.ZeroSparseImage(cfg.MainMemBytes),
	}, nil
}

// Restore reinstates a snapshot by copying into the machine's existing
// buffers: registers, PC and PRNG come back exactly, statistics and
// pipeline state reset as in a fresh machine (run-boundary snapshots) or
// come back exactly as captured (mid-run checkpoints, see Checkpoint),
// and the snapshot's program is (re)loaded. When the machine's last
// Snapshot/Restore used the same snapshot, only memory dirtied since is
// copied back; when it used a different known snapshot with tracking
// still live, the switch costs only the pages resident in either image
// plus the dirtied ones; otherwise the full images are rebuilt and dirty
// tracking starts. Either way the machine afterwards produces
// bit-identical runs to a freshly constructed machine that replayed the
// same history.
//
// The machine's own watchdog budget (Config.MaxCycles) is preserved; any
// other configuration difference is an error.
func (m *Machine) Restore(s *Snapshot) error {
	if !archEqual(m.cfg, s.cfg) {
		return fmt.Errorf("sim: restore: machine config %+v does not match snapshot config %+v", m.cfg, s.cfg)
	}
	if m.lastSnap != s {
		if m.lastSnap != nil && m.main.Tracking() && m.vspad.Tracking() && m.mspad.Tracking() {
			// Delta switch: the machine's contents are provably "lastSnap +
			// dirty", so every page that can differ from s is either dirty
			// or resident in one of the two images. Marking those as dirty
			// lets the tracked restore below rebuild only them instead of
			// walking the whole 16 MiB space. (Scratchpads track a single
			// whole-pad flag, so their switch is a full — but small — copy.)
			m.main.MarkPagesDirty(m.lastSnap.main)
			m.main.MarkPagesDirty(s.main)
			m.vspad.MarkDirty()
			m.mspad.MarkDirty()
		} else {
			// The machine's dirty state is relative to no known image:
			// invalidate tracking so the restores below copy in full.
			m.vspad.DropDirtyTracking()
			m.mspad.DropDirtyTracking()
			m.main.DropDirtyTracking()
		}
		m.lastSnap = s
	}
	copied := 0
	n, err := m.vspad.RestoreFrom(s.vspad)
	if err != nil {
		return err
	}
	copied += n
	if n, err = m.mspad.RestoreFrom(s.mspad); err != nil {
		return err
	}
	copied += n
	if n, err = m.main.RestoreFromSparse(s.main); err != nil {
		return err
	}
	copied += n
	m.lastRestoreBytes = copied
	m.gpr = s.gpr
	m.pc = s.pc
	m.rng = s.rng
	m.prog = s.prog
	m.dec = s.dec
	if s.stats != nil {
		// Mid-run snapshot: resume where the capture stopped — statistics
		// and pipeline timing state come back exactly, so the remainder of
		// the run is bit-identical to never having stopped.
		m.stats = *s.stats
		m.pipe.restoreState(s.pipe, &m.cfg, &m.stats)
	} else {
		m.stats = Stats{}
		m.pipe.init(&m.cfg, &m.stats)
	}
	return nil
}

// LastRestoreBytes reports how many bytes the most recent Restore wrote
// into the machine's memories — the dirty-page copy volume the
// service-metrics layer aggregates.
func (m *Machine) LastRestoreBytes() int { return m.lastRestoreBytes }

// SetMaxCycles adjusts the watchdog budget between runs (negative values
// disable it, like Config.MaxCycles = 0). Pooled machines use this to
// carry per-run budgets across Restores without breaking the snapshot's
// configuration match.
func (m *Machine) SetMaxCycles(v int64) {
	if v < 0 {
		v = 0
	}
	m.cfg.MaxCycles = v
}
