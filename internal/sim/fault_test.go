package sim

import (
	"context"
	"errors"
	"strings"
	"testing"

	"cambricon/internal/asm"
	"cambricon/internal/fault"
	"cambricon/internal/fixed"
)

// faultVectorProgram streams four elements through the vector unit:
// load, add to itself, store. Instruction indices: 0-2 scalar moves,
// 3 VLOAD, 4 VAV, 5 VSTORE.
const faultVectorProgram = `
.data 100: 1, 2, 3, 4
	SMOVE  $0, #4
	SMOVE  $1, #0
	SMOVE  $2, #64
	VLOAD  $1, $0, #100
	VAV    $2, $0, $1, $1
	VSTORE $2, $0, #200
`

// runFault assembles src and runs it on a fresh default machine with
// the given injector and watchdog budget (0 disables the watchdog).
func runFault(t *testing.T, src string, inj fault.Injector, maxCycles int64) (*Machine, Stats, error) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxCycles = maxCycles
	m := mustNew(t, cfg)
	for _, c := range p.Data {
		if err := m.WriteMainNums(c.Addr, c.Values); err != nil {
			t.Fatal(err)
		}
	}
	m.SetInjector(inj)
	m.LoadProgram(p.Instructions)
	stats, err := m.Run()
	return m, stats, err
}

// TestNilInjectorBitIdentical is the injector contract: a nil injector
// -- with or without the watchdog armed -- must not change a single
// statistic of the run relative to the plain machine.
func TestNilInjectorBitIdentical(t *testing.T) {
	for name, src := range traceTestPrograms {
		t.Run(name, func(t *testing.T) {
			_, plain, err := runFault(t, src, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			_, armed, err := runFault(t, src, nil, plain.Cycles*8+1024)
			if err != nil {
				t.Fatal(err)
			}
			if plain != armed {
				t.Errorf("watchdog-armed run diverged:\nplain %+v\narmed %+v", plain, armed)
			}
		})
	}
}

// TestGoldenCyclePins pins the absolute cycle and instruction counts of
// the reference programs so any timing drift from the fault plumbing
// (or anything else) is caught, not just relative divergence.
func TestGoldenCyclePins(t *testing.T) {
	pins := []struct {
		name                 string
		cycles, instructions int64
	}{
		{"mlp-layer", 96, 18},
		{"scalar-loop", 111, 32},
	}
	for _, pin := range pins {
		t.Run(pin.name, func(t *testing.T) {
			_, stats, err := runFault(t, traceTestPrograms[pin.name], nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Cycles != pin.cycles || stats.Instructions != pin.instructions {
				t.Errorf("got %d cycles / %d instructions, want %d / %d",
					stats.Cycles, stats.Instructions, pin.cycles, pin.instructions)
			}
		})
	}
}

// TestNilInjectorZeroAllocs pins the hot path with the watchdog armed
// and the injector nil: re-running on a warm machine must not allocate.
func TestNilInjectorZeroAllocs(t *testing.T) {
	p, err := asm.Assemble(traceTestPrograms["mlp-layer"])
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxCycles = 1 << 20
	m := mustNew(t, cfg)
	for _, c := range p.Data {
		if err := m.WriteMainNums(c.Addr, c.Values); err != nil {
			t.Fatal(err)
		}
	}
	m.SetInjector(nil)
	run := func() {
		m.Reset()
		m.LoadProgram(p.Instructions)
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the operand buffers
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Errorf("nil-injector run allocates %.1f objects per run, want 0", allocs)
	}
}

func TestGPRBitFault(t *testing.T) {
	src := `
	SMOVE $1, #0
	SADD  $1, $1, #0
`
	// Flip bit 3 of $1 just before the SADD (instruction index 1).
	inj := fault.New(fault.Fault{Model: fault.ModelGPRBit, At: 1, Reg: 1, Bit: 3})
	m, stats, err := runFault(t, src, inj, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.GPR(1); got != 8 {
		t.Errorf("$1 = %d after bit-3 flip, want 8", got)
	}
	if stats.FaultsInjected != 1 {
		t.Errorf("FaultsInjected = %d, want 1", stats.FaultsInjected)
	}
}

func TestSpadBitFault(t *testing.T) {
	_, gm, _ := goldenVectorRun(t)
	// Flip bit 0 of vector-scratchpad word 0 just before the VAV reads
	// it (instruction index 4): both the sum and the stored output see
	// the corrupted element.
	inj := fault.New(fault.Fault{
		Model: fault.ModelSpadBit, At: 4,
		Space: fault.SpaceVector, Word: 0, Bit: 0,
	})
	m, stats, err := runFault(t, faultVectorProgram, inj, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.ReadMainNums(200, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Element 0 was 1.0 (raw 256); the flipped bit rides through the
	// add: (256^1)+( 256^1) = 514 instead of 512.
	if out[0] == gm[0] {
		t.Errorf("output[0] = %d unchanged by spad flip (golden %d)", out[0], gm[0])
	}
	if out[0] != gm[0]+2 {
		t.Errorf("output[0] = %d, want golden+2 = %d", out[0], gm[0]+2)
	}
	for i := 1; i < 4; i++ {
		if out[i] != gm[i] {
			t.Errorf("output[%d] = %d disturbed, want %d", i, out[i], gm[i])
		}
	}
	if stats.FaultsInjected != 1 {
		t.Errorf("FaultsInjected = %d, want 1", stats.FaultsInjected)
	}
}

// goldenVectorRun runs faultVectorProgram fault-free and returns the
// machine, the stored output and the stats.
func goldenVectorRun(t *testing.T) (*Machine, []fixed.Num, Stats) {
	t.Helper()
	m, stats, err := runFault(t, faultVectorProgram, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.ReadMainNums(200, 4)
	if err != nil {
		t.Fatal(err)
	}
	return m, out, stats
}

func TestFetchBitFaultDetected(t *testing.T) {
	// Flipping bit 63 pushes the opcode far outside the ISA: the
	// corrupted word must fail to decode and surface as a structured
	// runtime error, not a panic.
	inj := fault.New(fault.Fault{Model: fault.ModelFetchBit, At: 0, Bit: 63})
	_, stats, err := runFault(t, faultVectorProgram, inj, 0)
	if err == nil {
		t.Fatal("corrupted fetch not detected")
	}
	var re *RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("want RuntimeError, got %T: %v", err, err)
	}
	if stats.FaultsInjected != 1 {
		t.Errorf("FaultsInjected = %d, want 1", stats.FaultsInjected)
	}
}

func TestDMABitFault(t *testing.T) {
	_, gm, _ := goldenVectorRun(t)
	// Corrupt byte 2 (element 1, low byte) of the first DMA transfer:
	// the VLOAD payload arrives damaged, so the doubled output differs.
	inj := fault.New(fault.Fault{Model: fault.ModelDMABit, At: 0, Byte: 2, Bit: 0})
	m, stats, err := runFault(t, faultVectorProgram, inj, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.ReadMainNums(200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out[1] == gm[1] {
		t.Errorf("output[1] = %d unchanged by DMA corruption", out[1])
	}
	if out[0] != gm[0] || out[2] != gm[2] || out[3] != gm[3] {
		t.Errorf("untouched elements disturbed: got %v, golden %v", out, gm)
	}
	if stats.FaultsInjected == 0 {
		t.Error("FaultsInjected = 0, want > 0")
	}
}

func TestStuckLaneFault(t *testing.T) {
	_, gm, _ := goldenVectorRun(t)
	// Stick bit 0 of vector lane 0 at 1: every element produced by
	// lane 0 (stride VectorLanes, here just element 0) has the bit
	// forced in the VAV output.
	inj := fault.New(fault.Fault{
		Model: fault.ModelStuckLane,
		Unit:  fault.UnitVector, Lane: 0, Bit: 0, Val: 1,
	})
	m, stats, err := runFault(t, faultVectorProgram, inj, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.ReadMainNums(200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != gm[0]|1 {
		t.Errorf("output[0] = %d, want golden|1 = %d", out[0], gm[0]|1)
	}
	lanes := DefaultConfig().VectorLanes
	for i := 1; i < 4 && i < lanes; i++ {
		if out[i] != gm[i] {
			t.Errorf("output[%d] = %d on a healthy lane, want %d", i, out[i], gm[i])
		}
	}
	if stats.FaultsInjected == 0 {
		t.Error("FaultsInjected = 0, want > 0")
	}
}

// TestWatchdogFiresOnDeadlock pins the watchdog semantics: a program
// that never terminates must end with a WatchdogError naming the limit
// and the stalled instruction's pipeline stage -- not hang.
func TestWatchdogFiresOnDeadlock(t *testing.T) {
	src := `
	SMOVE $1, #1
spin:	JUMP  #spin
`
	_, stats, err := runFault(t, src, nil, 50)
	if err == nil {
		t.Fatal("deadlocked program completed")
	}
	var we *WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("want WatchdogError, got %T: %v", err, err)
	}
	if we.Limit != 50 {
		t.Errorf("Limit = %d, want 50", we.Limit)
	}
	if we.Stage == "" {
		t.Error("watchdog diagnostic names no pipeline stage")
	}
	if !strings.Contains(we.Error(), "watchdog") || !strings.Contains(we.Error(), we.Stage) {
		t.Errorf("diagnostic %q does not name the watchdog and stage", we.Error())
	}
	if stats.Cycles <= 50 {
		t.Errorf("stats.Cycles = %d, want > limit at the firing point", stats.Cycles)
	}
}

// TestWatchdogClearsOnCompletion: a generous budget must not disturb a
// healthy run (covered bit-wise by TestNilInjectorBitIdentical; this
// pins the non-error path explicitly).
func TestWatchdogClearsOnCompletion(t *testing.T) {
	_, stats, err := runFault(t, faultVectorProgram, nil, 1<<20)
	if err != nil {
		t.Fatalf("healthy run tripped the watchdog: %v", err)
	}
	if stats.Instructions != 6 {
		t.Errorf("Instructions = %d, want 6", stats.Instructions)
	}
}

func TestRunContextCancellation(t *testing.T) {
	p, err := asm.Assemble(faultVectorProgram)
	if err != nil {
		t.Fatal(err)
	}
	m := mustNew(t, DefaultConfig())
	for _, c := range p.Data {
		if err := m.WriteMainNums(c.Addr, c.Values); err != nil {
			t.Fatal(err)
		}
	}
	m.LoadProgram(p.Instructions)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := m.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on canceled context = %v, want context.Canceled", err)
	}
	if stats.Instructions != 0 {
		t.Errorf("canceled-before-start run committed %d instructions", stats.Instructions)
	}
}

// TestRunContextCancelMidRun cancels while a long loop is executing:
// the run must stop at a poll point with partial statistics.
func TestRunContextCancelMidRun(t *testing.T) {
	src := `
	SMOVE $1, #100000
spin:	SADD  $1, $1, #-1
	CB    #spin, $1
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := mustNew(t, DefaultConfig())
	m.LoadProgram(p.Instructions)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { cancel(); close(done) }()
	<-done
	stats, err := m.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	if stats.Instructions >= 200001 {
		t.Errorf("run completed all %d instructions despite cancellation", stats.Instructions)
	}
}

// BenchmarkRunNilInjector measures the hot path with the injector nil
// and the watchdog armed — the configuration campaigns use for golden
// runs, and the benchmark behind the 0 allocs/op acceptance criterion
// (compare against BenchmarkRunUntraced for the plumbing cost).
func BenchmarkRunNilInjector(b *testing.B) {
	p, err := asm.Assemble(traceTestPrograms["mlp-layer"])
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxCycles = 1 << 20
	m := mustNew(b, cfg)
	for _, c := range p.Data {
		if err := m.WriteMainNums(c.Addr, c.Values); err != nil {
			b.Fatal(err)
		}
	}
	m.SetInjector(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		m.LoadProgram(p.Instructions)
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSingleInjectorReuse checks BeginRun re-arms a one-shot fault, so
// one Single can drive a whole campaign of runs on a reused machine.
func TestSingleInjectorReuse(t *testing.T) {
	src := `
	SMOVE $1, #0
	SADD  $1, $1, #0
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := mustNew(t, DefaultConfig())
	inj := fault.New(fault.Fault{Model: fault.ModelGPRBit, At: 1, Reg: 1, Bit: 0})
	m.SetInjector(inj)
	for round := 0; round < 3; round++ {
		m.Reset()
		m.LoadProgram(p.Instructions)
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if got := m.GPR(1); got != 1 {
			t.Fatalf("round %d: $1 = %d, want 1 (fault did not re-arm)", round, got)
		}
	}
}
