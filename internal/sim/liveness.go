package sim

// Golden-run access tracing and convergence proofs — the machinery that
// turns fault-site fast-forwarding from "skip the fault-free prefix"
// into "stop simulating as soon as the faulted run provably rejoins the
// golden run" (docs/PERF.md, Level 5).
//
// A transient fault that ends up masked usually perturbs almost
// nothing: one scratchpad word or one register holds a corrupted value
// that the rest of the program never reads again, while every byte the
// program does read — and the whole pipeline timing state — re-converges
// with the fault-free run within a few hundred instructions. Replaying
// the faulted remainder to the end is then pure waste. AccessTrace
// records, once per prepared target, which locations the golden run
// reads at which dynamic instruction index; Liveness condenses that into
// a last-read index per register and per scratchpad word. At any later
// checkpoint boundary, Machine.ConvergedWith can compare a faulted
// machine against the golden checkpoint and prove: every location that
// still differs is one the golden run never reads again, and everything
// else — PC, PRNG, statistics, pipeline timing, main memory — is equal.
// From that boundary on, the faulted run and the golden run commit the
// same instructions with the same timing and produce the same outputs,
// so the fault-free run's observation can be returned without simulating
// the suffix.
//
// Soundness rests on the access sets the execution core already reports
// to the timing model: the memory-dependence and register-scoreboard
// logic require every operand read and write region, so the recorded
// trace covers every architectural read. The differential campaign tests
// (byte-identical reports with fast-forwarding on and off, across
// benchmarks, seeds and fault models) pin the proof against the
// implementation.

import (
	"fmt"

	"cambricon/internal/core"
	"cambricon/internal/mem"
)

// accessRec is one dynamic instruction of a recorded golden run: its
// source/destination scalar registers and its memory access regions,
// exactly as reported to the timing model.
type accessRec struct {
	nAcc   uint8
	nSrc   uint8
	dst    uint8
	hasDst bool
	src    [6]uint8
	acc    [4]access
}

// AccessTrace records the architectural reads and writes of one complete
// run, dynamic instruction by dynamic instruction. Attach it with
// Machine.SetAccessTrace before a full run (from index 0); recording
// routes execution through the general observing loop, so the recorded
// run's statistics stay bit-identical to an unobserved run. An
// AccessTrace is not safe for concurrent use while recording; once
// condensed into a Liveness it is no longer needed.
type AccessTrace struct {
	recs []accessRec
	// dma holds the dynamic indices of instructions that offer an
	// in-flight DMA payload to an attached injector (transfers with a
	// non-empty payload), ascending.
	dma []int64
	// bad marks a recording that did not start at instruction 0 or
	// skipped indices (e.g. attached mid-run); Liveness refuses it.
	bad bool
}

// NewAccessTrace returns an empty trace ready to record one run.
func NewAccessTrace() *AccessTrace { return &AccessTrace{} }

// SetAccessTrace attaches an access-trace recorder (nil detaches it).
// While attached, runs take the general observing loop and append one
// record per committed instruction; like tracers and injectors, the
// recorder never changes simulated statistics, cycles or behaviour.
func (m *Machine) SetAccessTrace(t *AccessTrace) { m.rec = t }

// record appends one committed instruction. idx is its dynamic index
// (stats.Instructions after the increment, minus one).
func (t *AccessTrace) record(idx int64, src []uint8, dst uint8, hasDst bool, e *effect) {
	if idx != int64(len(t.recs)) {
		t.bad = true
		return
	}
	var r accessRec
	r.nAcc = uint8(e.nAccess)
	copy(r.acc[:], e.accessBuf[:e.nAccess])
	r.nSrc = uint8(len(src))
	copy(r.src[:], src)
	r.dst, r.hasDst = dst, hasDst
	t.recs = append(t.recs, r)
	if e.isDMA && e.dmaBytes > 0 {
		t.dma = append(t.dma, idx)
	}
}

// mainWrite is one main-memory write of the golden run: the dynamic
// index it committed at and the page range it covered.
type mainWrite struct {
	idx    int64
	lo, hi int32 // inclusive page range
}

// Liveness is the condensed read schedule of a recorded golden run: for
// every scalar register and every 16-bit scratchpad word, the last
// dynamic instruction index that reads it (-1 = never read); plus the
// run's DMA-offer indices and its main-memory write schedule. A location
// whose last read is before boundary j is dead at j: a faulted run whose
// state differs from the golden run only in dead locations commits an
// identical remainder. A Liveness is immutable and safe to share across
// campaign workers.
type Liveness struct {
	n         int64 // recorded run length in dynamic instructions
	gprLast   [core.NumGPRs]int64
	vspadLast []int64 // per 16-bit word
	mspadLast []int64
	dma       []int64
	writes    []mainWrite
}

// Liveness condenses the recorded run against the machine geometry it
// was recorded on. It fails when the trace is unusable (recording did
// not cover a complete run from instruction 0).
func (t *AccessTrace) Liveness(cfg Config) (*Liveness, error) {
	if t.bad {
		return nil, fmt.Errorf("sim: access trace did not cover a complete run from instruction 0")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	lv := &Liveness{
		n:         int64(len(t.recs)),
		vspadLast: make([]int64, cfg.VectorSpadBytes/2),
		mspadLast: make([]int64, cfg.MatrixSpadBytes/2),
		dma:       t.dma,
	}
	for i := range lv.gprLast {
		lv.gprLast[i] = -1
	}
	for i := range lv.vspadLast {
		lv.vspadLast[i] = -1
	}
	for i := range lv.mspadLast {
		lv.mspadLast[i] = -1
	}
	for i := range t.recs {
		r := &t.recs[i]
		idx := int64(i)
		for _, s := range r.src[:r.nSrc] {
			lv.gprLast[int(s)%core.NumGPRs] = idx
		}
		for _, a := range r.acc[:r.nAcc] {
			if a.reg.N <= 0 {
				continue
			}
			if a.sp == spaceMain {
				if a.write {
					lv.writes = append(lv.writes, mainWrite{
						idx: idx,
						lo:  int32(a.reg.Addr / mem.PageBytes),
						hi:  int32((a.reg.Addr + a.reg.N - 1) / mem.PageBytes),
					})
				}
				continue
			}
			if a.write {
				continue
			}
			last := lv.vspadLast
			if a.sp == spaceMat {
				last = lv.mspadLast
			}
			lo, hi := a.reg.Addr/2, (a.reg.Addr+a.reg.N-1)/2
			if lo < 0 {
				lo = 0
			}
			if hi >= len(last) {
				hi = len(last) - 1
			}
			for w := lo; w <= hi; w++ {
				last[w] = idx
			}
		}
	}
	return lv, nil
}

// Instructions returns the recorded run's dynamic instruction count.
func (lv *Liveness) Instructions() int64 { return lv.n }

// DMAOfferAfter returns the dynamic index of the golden run's first DMA
// payload offer at or after at, and whether one exists. A dma-bit fault
// site whose At has no offer at or after it can never fire: the faulted
// run is the golden run.
func (lv *Liveness) DMAOfferAfter(at int64) (int64, bool) {
	lo, hi := 0, len(lv.dma)
	for lo < hi {
		mid := (lo + hi) / 2
		if lv.dma[mid] < at {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(lv.dma) {
		return 0, false
	}
	return lv.dma[lo], true
}

// appendMainPages appends (with duplicates) every main-memory page the
// golden run writes in dynamic index range [from, to).
func (lv *Liveness) appendMainPages(buf []int, from, to int64) []int {
	lo, hi := 0, len(lv.writes)
	for lo < hi {
		mid := (lo + hi) / 2
		if lv.writes[mid].idx < from {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for _, w := range lv.writes[lo:] {
		if w.idx >= to {
			break
		}
		for p := w.lo; p <= w.hi; p++ {
			buf = append(buf, int(p))
		}
	}
	return buf
}

// maxDiffWords bounds how many differing scratchpad words ConvergedWith
// will reason about: transient faults leave at most a handful of inert
// words behind, so a larger diff means the run genuinely diverged and
// the scan should give up rather than keep enumerating.
const maxDiffWords = 64

// ConvergedWith reports whether this machine — stopped at a RunUntil
// boundary — has provably converged with the golden run represented by
// the checkpoint s (captured at the same dynamic instruction boundary)
// and the liveness lv of the same run: the PC, PRNG, statistics (modulo
// the FaultsInjected counter), pipeline timing state and all main-memory
// pages that can differ are equal, and every register or scratchpad word
// that still differs is dead — never read by the golden run's remainder.
// When it holds, the remainder of this run commits the same instructions
// with the same timing and outputs as the golden run, so a caller can
// stop simulating and use the golden run's result.
//
// The second result is a retry hint: 0 means convergence is hopeless (a
// location that matters diverged — stop checking), a positive value is
// the earliest dynamic index at which every currently blocking location
// becomes dead, so checks before it cannot succeed.
//
// The machine must have been restored from a checkpoint of the same
// golden run (its memory dirty tracking bounds the main-memory pages
// that can differ); s must be a mid-run checkpoint at the machine's
// current instruction index.
func (m *Machine) ConvergedWith(s *Snapshot, lv *Liveness) (converged bool, retryAt int64) {
	if s == nil || s.stats == nil || s.pipe == nil || lv == nil || m.lastSnap == nil {
		return false, 0
	}
	j := m.stats.Instructions
	if j != s.stats.Instructions || m.pc != s.pc || m.rng != s.rng {
		return false, 0
	}
	// Statistics must match exactly, except that the faulted run counts
	// the fault it applied; FaultsInjected never feeds back into timing
	// or results.
	a, b := m.stats, *s.stats
	a.FaultsInjected, b.FaultsInjected = 0, 0
	if a != b {
		return false, 0
	}
	if !m.pipe.stateEqual(s.pipe) {
		return false, 0
	}
	retry := int64(-1)
	need := func(last int64) bool {
		if last < j {
			return true // dead: golden never reads it again
		}
		if last+1 > retry {
			retry = last + 1
		}
		return false
	}
	for r := 0; r < core.NumGPRs; r++ {
		if m.gpr[r] != s.gpr[r] {
			need(lv.gprLast[r])
		}
	}
	for _, p := range [2]struct {
		pad  *mem.Scratchpad
		img  []byte
		last []int64
	}{
		{m.vspad, s.vspad, lv.vspadLast},
		{m.mspad, s.mspad, lv.mspadLast},
	} {
		diffs, ok := p.pad.DiffWords(p.img, maxDiffWords)
		if !ok {
			return false, 0
		}
		for _, w := range diffs {
			if w >= len(p.last) {
				return false, 0
			}
			need(p.last[w])
		}
	}
	// Main memory must be exactly equal on every page that can differ:
	// the machine is lastSnap + its dirty pages, the checkpoint is
	// lastSnap + the golden writes since, so the union bounds the
	// difference. (Main outputs are what the observation serializes, so
	// no liveness slack is taken here.)
	pages, ok := m.main.AppendDirtyPages(nil)
	if !ok {
		return false, 0
	}
	pages = lv.appendMainPages(pages, m.lastSnap.Instructions(), j)
	seen := make(map[int]struct{}, len(pages))
	for _, p := range pages {
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		if !m.main.PageEquals(s.main, p) {
			return false, 0
		}
	}
	if retry >= 0 {
		return false, retry
	}
	return true, 0
}
