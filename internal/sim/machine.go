package sim

import (
	"context"
	"fmt"
	"io"

	"cambricon/internal/core"
	"cambricon/internal/fault"
	"cambricon/internal/fixed"
	"cambricon/internal/mem"
	"cambricon/internal/metrics"
	"cambricon/internal/trace"
)

// Machine is one Cambricon-ACC instance: architectural state (GPRs, PC,
// scratchpads, main memory) plus the pipeline timing model.
//
// A Machine is not safe for concurrent use; run independent machines in
// parallel instead (they share no state).
type Machine struct {
	cfg   Config
	gpr   [core.NumGPRs]uint32
	pc    int
	vspad *mem.Scratchpad
	mspad *mem.Scratchpad
	main  *mem.Main
	rng   uint64
	prog  []core.Instruction
	stats Stats
	pipe  pipeline
	trace io.Writer

	// dec is the installed pre-decoded program (nil = baseline
	// interpretation). LoadDecoded sets it, LoadProgram clears it, and
	// Restore propagates whatever the snapshot carried.
	dec *DecodedProgram
	// eff is the pre-decoded loop's reusable effect buffer (the baseline
	// loop stack-allocates its own).
	eff effect
	// fusedSrc/fusedAddr arm the fused-pair read short-circuit: while
	// non-empty, vector-scratchpad operand views of exactly
	// [fusedAddr, len(fusedSrc)) resolve to fusedSrc — the vector the
	// fused producer just wrote there — instead of re-reading the
	// scratchpad. bufFuse is the second output buffer that keeps a fused
	// consumer from clobbering the intermediate it is reading.
	fusedSrc  []fixed.Num
	fusedAddr int
	bufFuse   []fixed.Num

	// tracer receives the observability event stream (nil = untraced;
	// the hot path then makes no trace calls and allocates nothing). ev
	// is the single reusable event buffer handed to the tracer. fobs is
	// the tracer's optional fault-event extension, resolved once in
	// SetTracer.
	tracer trace.Tracer
	ev     trace.InstEvent
	fobs   trace.FaultObserver

	// inj receives the fault-injection hooks (nil = fault-free; the hot
	// path then makes no injector calls, allocates nothing, and produces
	// bit-identical cycle counts — the same contract as tracer).
	inj fault.Injector

	// rec, when non-nil, records each committed instruction's operand
	// registers and memory access regions (see AccessTrace). Like inj it
	// routes pre-decoded runs through the general observing loop and is
	// behaviour-neutral.
	rec *AccessTrace

	// lastSnap remembers which Snapshot this machine's memory dirty
	// tracking is relative to: Restore to the same snapshot copies only
	// dirty regions, any other snapshot forces a full copy.
	// lastRestoreBytes is the copy volume of the most recent Restore.
	lastSnap         *Snapshot
	lastRestoreBytes int

	// stopAt, when >= 0, makes the run loops return cleanly (no error) at
	// the first instruction boundary where stats.Instructions reaches it —
	// the RunUntil mechanism behind mid-run checkpoints and fault-site
	// fast-forwarding. -1 (set by every Run/Resume entry point) disables
	// the check. stopped records whether the last run segment ended at the
	// boundary rather than at program completion.
	stopAt  int64
	stopped bool

	// metWatchdog/metCancel receive service-level event counts (nil —
	// the default — is a no-op per the metrics package's nil contract,
	// so the unmetered hot path costs a nil check and nothing else).
	metWatchdog *metrics.Counter
	metCancel   *metrics.Counter

	// Reusable operand buffers for the execution hot path (one exec call
	// uses at most one of each). bufA/bufB/bufMat are spill targets for
	// zero-copy scratchpad views (mem.Scratchpad.NumsView) and are only
	// populated when the host layout forbids aliasing; bufOut and bufAcc
	// hold results before they are stored.
	bufA, bufB, bufOut, bufMat []fixed.Num
	bufAcc                     []fixed.Acc
	bufBytes                   []byte
}

// New builds a machine with the given configuration.
func New(cfg Config) (*Machine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg}
	var err error
	if m.vspad, err = mem.NewScratchpad("vector-spad", cfg.VectorSpadBytes, cfg.SpadBanks, cfg.BankBytes); err != nil {
		return nil, err
	}
	if m.mspad, err = mem.NewScratchpad("matrix-spad", cfg.MatrixSpadBytes, cfg.SpadBanks, cfg.BankBytes); err != nil {
		return nil, err
	}
	if m.main, err = mem.NewMain(cfg.MainMemBytes); err != nil {
		return nil, err
	}
	m.Reset()
	return m, nil
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Reset clears registers, PC, statistics and pipeline state. Memory
// contents are preserved so a program can be re-run over a loaded image;
// use New for a fully fresh machine.
func (m *Machine) Reset() {
	m.gpr = [core.NumGPRs]uint32{}
	m.pc = 0
	m.rng = m.cfg.Seed
	if m.rng == 0 {
		m.rng = 1
	}
	m.stats = Stats{}
	m.pipe.init(&m.cfg, &m.stats)
}

// Reconfigure rebinds the machine to a different configuration that
// shares its memory geometry (main-memory size, scratchpad capacities
// and banking), reusing the existing — dominant, 16 MiB — memory
// allocations instead of building a fresh machine. The machine comes
// back Reset with no program loaded and its snapshot lineage dropped;
// memory contents are stale, so callers must Restore a snapshot (or
// load a fresh image) before running, exactly like a pool-recycled
// machine. A geometry mismatch is an error and leaves the machine
// unchanged.
func (m *Machine) Reconfigure(cfg Config) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if cfg.MainMemBytes != m.cfg.MainMemBytes ||
		cfg.VectorSpadBytes != m.cfg.VectorSpadBytes ||
		cfg.MatrixSpadBytes != m.cfg.MatrixSpadBytes ||
		cfg.SpadBanks != m.cfg.SpadBanks ||
		cfg.BankBytes != m.cfg.BankBytes {
		return fmt.Errorf("sim: reconfigure: memory geometry mismatch (have %d/%d/%d banks=%d line=%d, want %d/%d/%d banks=%d line=%d)",
			m.cfg.MainMemBytes, m.cfg.VectorSpadBytes, m.cfg.MatrixSpadBytes, m.cfg.SpadBanks, m.cfg.BankBytes,
			cfg.MainMemBytes, cfg.VectorSpadBytes, cfg.MatrixSpadBytes, cfg.SpadBanks, cfg.BankBytes)
	}
	m.cfg = cfg
	m.prog = nil
	m.dec = nil
	m.lastSnap = nil
	m.vspad.DropDirtyTracking()
	m.mspad.DropDirtyTracking()
	m.main.DropDirtyTracking()
	m.Reset()
	return nil
}

// LoadProgram installs the program to run through the baseline
// interpreter, clearing any previously installed pre-decoded form (see
// LoadDecoded).
func (m *Machine) LoadProgram(prog []core.Instruction) {
	m.prog = prog
	m.dec = nil
	m.pc = 0
}

// SetGPR initializes a register (argument passing before Run).
func (m *Machine) SetGPR(r uint8, v uint32) {
	m.gpr[r] = v
}

// GPR reads a register (result retrieval after Run).
func (m *Machine) GPR(r uint8) uint32 { return m.gpr[r] }

// WriteMainNums places fixed-point data in main memory (workload images).
func (m *Machine) WriteMainNums(addr int, ns []fixed.Num) error {
	return m.main.WriteNums(addr, ns)
}

// ReadMainNums reads fixed-point data from main memory (results).
func (m *Machine) ReadMainNums(addr, count int) ([]fixed.Num, error) {
	return m.main.ReadNums(addr, count)
}

// ReadMainNumsInto reads len(dst) fixed-point elements from main memory
// into dst without allocating (result retrieval on hot loops).
func (m *Machine) ReadMainNumsInto(addr int, dst []fixed.Num) error {
	return m.main.ReadNumsInto(addr, dst)
}

// ReadMainBytesInto copies len(dst) raw bytes from main memory into dst
// without allocating. Fixed-point data is stored little-endian, so this
// is also the allocation-free way to serialize a result region.
func (m *Machine) ReadMainBytesInto(addr int, dst []byte) error {
	return m.main.ReadBytesInto(addr, dst)
}

// WriteMainWord stores a 32-bit scalar in main memory.
func (m *Machine) WriteMainWord(addr int, v uint32) error {
	return m.main.WriteWord(addr, v)
}

// ReadMainWord reads a 32-bit scalar from main memory.
func (m *Machine) ReadMainWord(addr int) (uint32, error) {
	return m.main.ReadWord(addr)
}

// ReadVectorSpad reads elements directly from the vector scratchpad
// (debugging and tests).
func (m *Machine) ReadVectorSpad(addr, count int) ([]fixed.Num, error) {
	return m.vspad.ReadNums(addr, count)
}

// ReadMatrixSpad reads elements directly from the matrix scratchpad.
func (m *Machine) ReadMatrixSpad(addr, count int) ([]fixed.Num, error) {
	return m.mspad.ReadNums(addr, count)
}

// Stats returns the statistics of the last Run.
func (m *Machine) Stats() Stats { return m.stats }

// SetTrace directs a per-instruction execution trace to w (nil disables
// tracing). Each committed instruction emits one line with its dynamic
// index, commit cycle, program counter and disassembly; taken branches are
// annotated. This is the software analogue of the paper's VCD-based
// inspection flow.
func (m *Machine) SetTrace(w io.Writer) { m.trace = w }

// SetTracer attaches an observability sink (see internal/trace): per
// committed instruction the tracer receives fetch-to-commit stage
// timestamps, functional-unit and DMA spans, and the stall attribution
// of the instruction's commit window; scratchpad crossbar serialization
// is reported as bank-conflict events. nil (the default) disables
// tracing; the untraced hot path makes no trace calls and stays
// allocation-free, and attaching a tracer never changes simulated cycle
// counts.
func (m *Machine) SetTracer(t trace.Tracer) {
	m.tracer = t
	if t == nil {
		m.fobs = nil
		m.vspad.SetConflictHook(nil)
		m.mspad.SetConflictHook(nil)
		return
	}
	m.fobs, _ = t.(trace.FaultObserver)
	m.vspad.SetConflictHook(func(bank, extra int) {
		t.BankConflict(m.vspad.Name(), bank, int64(extra), m.pipe.lastCommit)
	})
	m.mspad.SetConflictHook(func(bank, extra int) {
		t.BankConflict(m.mspad.Name(), bank, int64(extra), m.pipe.lastCommit)
	})
}

// runMeta summarizes the configuration for trace sinks.
func (m *Machine) runMeta() trace.RunMeta {
	return trace.RunMeta{
		ClockHz:      m.cfg.ClockHz,
		VectorLanes:  m.cfg.VectorLanes,
		MatrixBlocks: m.cfg.MatrixBlocks,
		MACsPerBlock: m.cfg.MACsPerBlock,
		SpadBanks:    m.cfg.SpadBanks,
	}
}

// Metrics bundles the service-level event counters a machine reports
// into (see internal/metrics): terminal events that aggregate across a
// fleet of runs rather than within one. Nil fields are no-ops.
type Metrics struct {
	// WatchdogTrips counts runs ended by the Config.MaxCycles watchdog.
	WatchdogTrips *metrics.Counter
	// Cancellations counts runs ended by context cancellation.
	Cancellations *metrics.Counter
}

// SetMetrics attaches service-level event counters (nil detaches them).
// Like SetTracer and SetInjector, the unmetered path makes no metric
// calls beyond nil checks, allocates nothing, and metering never
// changes simulated cycle counts.
func (m *Machine) SetMetrics(mt *Metrics) {
	if mt == nil {
		m.metWatchdog, m.metCancel = nil, nil
		return
	}
	m.metWatchdog, m.metCancel = mt.WatchdogTrips, mt.Cancellations
}

// SetInjector attaches a fault injector (see internal/fault): the
// machine hands it the fetch stream, the pre-execute state hook, DMA
// payloads and functional-unit lane queries. nil (the default) disables
// injection; the fault-free hot path makes no injector calls, stays
// allocation-free, and produces bit-identical cycle counts.
func (m *Machine) SetInjector(inj fault.Injector) { m.inj = inj }

// FlipGPRBit implements fault.State: it flips bit (mod 32) of scalar
// register reg (mod 64).
func (m *Machine) FlipGPRBit(reg, bit uint8) {
	m.gpr[int(reg)%core.NumGPRs] ^= 1 << (bit % 32)
	m.noteFault("gpr-bit")
}

// FlipSpadBit implements fault.State: it flips bit (mod 16) of the
// 16-bit word at element index word of the selected scratchpad,
// reporting whether the word was in range.
func (m *Machine) FlipSpadBit(space fault.Space, word int, bit uint8) bool {
	pad := m.vspad
	if space == fault.SpaceMatrix {
		pad = m.mspad
	}
	// One 16-bit element = 2 bytes; route the flip to the right byte.
	ok := pad.FlipBit(2*word+int(bit%16)/8, bit%8)
	if ok {
		m.noteFault("spad-bit")
	}
	return ok
}

// noteFault records one applied fault in the run's statistics and
// forwards it to the tracer's fault track, if the tracer observes
// faults.
func (m *Machine) noteFault(kind string) {
	m.stats.FaultsInjected++
	if m.fobs != nil {
		m.fobs.Fault(kind, m.pc, m.pipe.lastCommit)
	}
}

// injectFetch routes one fetched instruction through the injector's
// encoding-corruption hook: the instruction is re-encoded to its 64-bit
// word, offered for corruption, and decoded again. An undecodable
// corrupted word is a detected fault (the decode error). Programs reach
// this path pre-validated, so the re-encode itself cannot fail.
func (m *Machine) injectFetch(inst core.Instruction) (core.Instruction, error) {
	w, err := core.Encode(inst)
	if err != nil {
		return inst, err
	}
	cw := m.inj.CorruptFetch(m.stats.Instructions, w)
	if cw == w {
		return inst, nil
	}
	m.noteFault("fetch-bit")
	return core.Decode(cw)
}

// RuntimeError reports a fault during execution, tied to the program
// counter and instruction that caused it.
type RuntimeError struct {
	PC   int
	Inst core.Instruction
	Err  error
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("sim: pc=%d %v: %v", e.PC, e.Inst, e.Err)
}

func (e *RuntimeError) Unwrap() error { return e.Err }

// WatchdogError reports a run terminated by the Config.MaxCycles
// watchdog: the simulated clock passed the budget before the program
// committed its last instruction. The diagnostic names the oldest
// in-flight (committing) instruction and the pipeline stage it occupied
// when the budget ran out.
type WatchdogError struct {
	// PC and Inst identify the oldest uncommitted instruction.
	PC   int
	Inst core.Instruction
	// Index is its dynamic instruction index.
	Index int64
	// Cycle is the commit cycle that tripped the budget; Limit the
	// configured budget.
	Cycle int64
	Limit int64
	// Stage names the pipeline stage the instruction occupied at the
	// budget cycle (fetch-wait, fetch, decode/issue, dispatch, execute,
	// commit).
	Stage string
}

func (e *WatchdogError) Error() string {
	return fmt.Sprintf("sim: watchdog: cycle budget %d exceeded (commit at cycle %d): oldest stuck instruction #%d pc=%d %v in %s stage",
		e.Limit, e.Cycle, e.Index, e.PC, e.Inst, e.Stage)
}

// stageAt maps a cycle to the pipeline stage an instruction occupied at
// that cycle, given its stage timestamps.
func stageAt(ev *trace.InstEvent, cycle int64) string {
	switch {
	case cycle < ev.Fetch:
		return "fetch-wait"
	case cycle < ev.Decode:
		return "fetch"
	case cycle < ev.Issue:
		return "decode/issue"
	case cycle < ev.ExecStart:
		return "dispatch"
	case cycle <= ev.ExecDone:
		return "execute"
	}
	return "commit"
}

// Run executes the loaded program from PC 0 until it falls off the end of
// the instruction stream, returning run statistics. A program that exceeds
// MaxDynamicInstructions fails (runaway-loop guard). Run is
// RunContext without cancellation.
func (m *Machine) Run() (Stats, error) {
	return m.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the context is polled
// every 1024 dynamic instructions (cheap enough to be invisible, frequent
// enough that even all-scalar programs respond within microseconds), and
// a canceled run returns ctx.Err() with the statistics accumulated so
// far. When Config.MaxCycles is positive a watchdog also ends the run
// with a *WatchdogError as soon as an instruction commits past the
// budget — the structured escape hatch for programs that make dynamic
// progress without ever finishing (livelock under fault injection,
// runaway loops).
func (m *Machine) RunContext(ctx context.Context) (Stats, error) {
	m.pc = 0
	m.stopAt = -1
	return m.resume(ctx)
}

// Resume continues execution from the machine's current state — after a
// RunUntil stop or a Restore of a mid-run checkpoint — until the program
// ends, returning the accumulated run statistics. Resuming a completed
// run returns immediately. The resumed remainder is bit-identical (in
// statistics, cycles, traces and fault behaviour) to the uninterrupted
// run.
func (m *Machine) Resume() (Stats, error) {
	return m.ResumeContext(context.Background())
}

// ResumeContext is Resume with cooperative cancellation (see RunContext).
func (m *Machine) ResumeContext(ctx context.Context) (Stats, error) {
	m.stopAt = -1
	return m.resume(ctx)
}

// RunUntil continues execution from the machine's current state until
// the accumulated dynamic instruction count reaches n (returning at that
// exact instruction boundary with done=false) or the program ends first
// (done=true). Stopping never perturbs simulated state: any interleaving
// of RunUntil segments, Checkpoint captures and Resume produces the same
// statistics, cycles and traces as one uninterrupted run. Start from PC 0
// by calling it on a machine that was Reset or restored to a run-boundary
// snapshot.
func (m *Machine) RunUntil(n int64) (Stats, bool, error) {
	return m.RunUntilContext(context.Background(), n)
}

// RunUntilContext is RunUntil with cooperative cancellation (see
// RunContext).
func (m *Machine) RunUntilContext(ctx context.Context, n int64) (Stats, bool, error) {
	if n < 0 {
		n = 0
	}
	m.stopAt = n
	stats, err := m.resume(ctx)
	m.stopAt = -1
	return stats, err == nil && !m.stopped, err
}

// resume dispatches the current run segment to the interpreter the
// installed program form selects.
func (m *Machine) resume(ctx context.Context) (Stats, error) {
	m.stopped = false
	if m.dec != nil {
		// Pre-decoded dispatch: the program was validated by Predecode,
		// and the decoded loops produce bit-identical statistics, cycles,
		// traces and fault behaviour to the baseline loop below.
		return m.runDecoded(ctx)
	}
	// Pre-validate the program once: Run accepts handcrafted instruction
	// slices (not just assembler output), and execution indexes register
	// files and formats by field values, so malformed instructions must
	// be rejected as errors before the hot loop runs unchecked.
	for pc := range m.prog {
		if err := m.prog[pc].Validate(); err != nil {
			return m.stats, &RuntimeError{PC: pc, Inst: m.prog[pc], Err: err}
		}
	}
	tracing := m.tracer != nil
	if tracing {
		m.tracer.BeginRun(m.runMeta())
		defer func() { m.tracer.EndRun(m.pipe.lastCommit) }()
	}
	if m.inj != nil {
		m.inj.BeginRun()
	}
	watchdog := m.cfg.MaxCycles > 0
	// The watchdog reads the committing instruction's stage timestamps
	// for its diagnostic, so it arms the reusable event buffer even when
	// untraced; timing is unaffected (advance only records into it).
	needEv := tracing || watchdog
	done := ctx.Done()
	stopAt := m.stopAt
	for m.pc >= 0 && m.pc < len(m.prog) {
		if stopAt >= 0 && m.stats.Instructions >= stopAt {
			m.stopped = true
			m.stats.Cycles = m.pipe.lastCommit
			return m.stats, nil
		}
		if done != nil && m.stats.Instructions&1023 == 0 {
			select {
			case <-done:
				m.stats.Cycles = m.pipe.lastCommit
				m.metCancel.Inc()
				return m.stats, ctx.Err()
			default:
			}
		}
		if m.stats.Instructions >= m.cfg.MaxDynamicInstructions {
			m.stats.Cycles = m.pipe.lastCommit
			return m.stats, &RuntimeError{PC: m.pc, Inst: m.prog[m.pc],
				Err: fmt.Errorf("dynamic instruction limit %d exceeded", m.cfg.MaxDynamicInstructions)}
		}
		inst := m.prog[m.pc]
		if m.inj != nil {
			var err error
			if inst, err = m.injectFetch(inst); err != nil {
				m.stats.Cycles = m.pipe.lastCommit
				return m.stats, &RuntimeError{PC: m.pc, Inst: m.prog[m.pc], Err: err}
			}
			m.inj.BeforeExec(m.stats.Instructions, m)
		}
		eff, err := m.exec(inst)
		if err != nil {
			m.stats.Cycles = m.pipe.lastCommit
			return m.stats, &RuntimeError{PC: m.pc, Inst: inst, Err: err}
		}
		m.stats.Instructions++
		m.stats.ByType[inst.Op.Type()]++
		m.stats.ByOpcode[inst.Op]++
		if m.rec != nil {
			var srcBuf [6]uint8
			dst, hasDst := inst.DestReg()
			m.rec.record(m.stats.Instructions-1, inst.ReadRegs(srcBuf[:0]), dst, hasDst, &eff)
		}
		var evp *trace.InstEvent
		if needEv {
			m.ev = trace.InstEvent{}
			evp = &m.ev
		}
		commit := m.pipe.advance(inst, &eff, evp)
		if tracing {
			m.ev.Index = m.stats.Instructions - 1
			m.ev.PC = m.pc
			m.ev.Op = inst.Op
			m.ev.BranchTaken = eff.branchTaken
			m.ev.IsDMA = eff.isDMA
			m.ev.DMABytes = eff.dmaBytes
			m.tracer.Instruction(&m.ev)
		}
		if m.trace != nil {
			note := ""
			if eff.branchTaken {
				note = fmt.Sprintf("  ; taken -> %d", m.pc+eff.branchOffset)
			}
			fmt.Fprintf(m.trace, "%8d  cyc=%-8d pc=%-6d %s%s\n",
				m.stats.Instructions-1, commit, m.pc, inst, note)
		}
		if watchdog && commit > m.cfg.MaxCycles {
			m.stats.Cycles = m.pipe.lastCommit
			m.metWatchdog.Inc()
			return m.stats, &WatchdogError{
				PC:    m.pc,
				Inst:  inst,
				Index: m.stats.Instructions - 1,
				Cycle: commit,
				Limit: m.cfg.MaxCycles,
				Stage: stageAt(&m.ev, m.cfg.MaxCycles),
			}
		}
		if eff.branchTaken {
			m.stats.BranchesTaken++
			m.pc += eff.branchOffset
		} else {
			m.pc++
		}
	}
	m.stats.Cycles = m.pipe.lastCommit
	if m.pc != len(m.prog) && len(m.prog) > 0 {
		return m.stats, fmt.Errorf("sim: control flow left the program (pc=%d, len=%d)", m.pc, len(m.prog))
	}
	return m.stats, nil
}

// regInt reads a GPR as a signed 32-bit integer.
func (m *Machine) regInt(r uint8) int32 { return int32(m.gpr[r]) }

// regAddr reads a GPR as a byte address.
func (m *Machine) regAddr(r uint8) int { return int(int32(m.gpr[r])) }

// regSize reads a GPR as an element count, rejecting negatives.
func (m *Machine) regSize(r uint8) (int, error) {
	v := int(int32(m.gpr[r]))
	if v < 0 {
		return 0, fmt.Errorf("negative size %d in $%d", v, r)
	}
	return v, nil
}

// tailInt resolves a TailRegImm operand (register index idx when the tail
// is a register) as a signed scalar.
func (m *Machine) tailInt(inst core.Instruction, idx int) int32 {
	if inst.TailImm {
		return inst.Imm
	}
	return m.regInt(inst.R[idx])
}

// scratch returns buf resized to n elements, growing its backing array only
// when needed.
func scratch(buf *[]fixed.Num, n int) []fixed.Num {
	if cap(*buf) < n {
		*buf = make([]fixed.Num, n)
	}
	return (*buf)[:n]
}

// scratchBytes is scratch for byte buffers.
func scratchBytes(buf *[]byte, n int) []byte {
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	return (*buf)[:n]
}

// scratchAcc is scratch for accumulator buffers.
func scratchAcc(buf *[]fixed.Acc, n int) []fixed.Acc {
	if cap(*buf) < n {
		*buf = make([]fixed.Acc, n)
	}
	return (*buf)[:n]
}

// nextRand steps the xorshift64* PRNG and returns a fixed-point value
// uniform over [0, 1).
func (m *Machine) nextRand() fixed.Num {
	x := m.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	m.rng = x
	v := (x * 0x2545f4914f6cdd1d) >> 56 // 8 random bits
	return fixed.Num(v)                 // 0..255 = [0,1) in Q8.8
}
