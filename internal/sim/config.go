// Package sim implements a cycle-approximate simulator of the Cambricon-ACC
// prototype accelerator (Section IV of the paper).
//
// The simulator combines exact functional execution of all 43 Cambricon
// instructions (16-bit fixed-point datapath, scratchpad-resident vectors and
// matrices, 64 32-bit GPRs) with a timestamp-propagation timing model of the
// seven-stage pipeline in Fig. 8: fetching, decoding, issuing, register
// reading, execution, writing back and committing. The model reproduces the
// microarchitectural behaviours the paper's evaluation depends on:
//
//   - 2-wide in-order issue with a bounded issue queue and reorder buffer;
//   - an in-order memory queue that stalls instructions on overlapping
//     memory regions when at least one access writes (the paper's memory
//     dependence rule, footnote 2);
//   - separate scalar, vector (32-lane) and matrix (32 blocks x 32 MACs)
//     functional units, occupied for the duration of an operation — the
//     source of the pipeline bubbles that make Cambricon-ACC slightly
//     slower than DaDianNao on shared benchmarks (Section V-B3);
//   - banked scratchpads with the Fig. 9 crossbar conflict model and
//     DMA-based main-memory transfers.
package sim

import (
	"fmt"

	"cambricon/internal/core"
)

// Config carries the microarchitectural parameters of the accelerator.
// DefaultConfig returns the published Table II prototype.
type Config struct {
	// IssueWidth is the number of instructions issued (and committed) per
	// cycle.
	IssueWidth int
	// IssueQueueDepth bounds the in-order issue queue.
	IssueQueueDepth int
	// MemQueueDepth bounds the in-order memory queue.
	MemQueueDepth int
	// ROBDepth bounds the reorder buffer.
	ROBDepth int

	// VectorSpadBytes is the vector scratchpad capacity.
	VectorSpadBytes int
	// MatrixSpadBytes is the matrix scratchpad capacity.
	MatrixSpadBytes int
	// BankBytes is the scratchpad bank line width in bytes (Table II:
	// 512 bits).
	BankBytes int
	// SpadBanks is the number of banks per scratchpad port group (Fig. 9
	// decomposes on the low-order two address bits: four banks).
	SpadBanks int

	// VectorLanes is the number of 16-bit vector ALUs (Table II: 32
	// multipliers & dividers & adders & transcendental operators).
	VectorLanes int
	// MatrixBlocks and MACsPerBlock describe the matrix unit (Table II:
	// 1024 multipliers & adders as 32 blocks of 32).
	MatrixBlocks int
	MACsPerBlock int
	// HTreeOverhead is the fixed broadcast/collect latency of the h-tree
	// bus connecting the 32 matrix blocks, charged once per matrix
	// instruction.
	HTreeOverhead int

	// CordicBeatCycles is the per-beat cost multiplier of transcendental
	// vector/scalar operations (CORDIC iterations, Section III-B).
	CordicBeatCycles int
	// DivBeatCycles is the per-beat cost multiplier of vector division.
	DivBeatCycles int

	// MainMemBytes sizes the off-chip memory.
	MainMemBytes int
	// DMAStartupCycles and DMABytesPerCycle describe each DMA engine.
	DMAStartupCycles int
	DMABytesPerCycle int

	// BranchPenaltyCycles is the redirect cost of a taken branch in the
	// seven-stage pipeline.
	BranchPenaltyCycles int

	// ClockHz converts cycles to seconds (1 GHz prototype).
	ClockHz float64

	// Seed initializes the RV instruction's pseudo-random generator so
	// runs are reproducible.
	Seed uint64

	// MaxDynamicInstructions aborts runaway programs. Zero means the
	// default cap.
	MaxDynamicInstructions int64

	// MaxCycles is the watchdog budget: a run whose simulated clock
	// passes this cycle count before the program finishes ends with a
	// *WatchdogError naming the oldest stuck instruction and its
	// pipeline stage. Zero (the default) disables the watchdog — the
	// dynamic-instruction cap still bounds every run.
	MaxCycles int64
}

// DefaultConfig returns the Table II prototype parameters.
func DefaultConfig() Config {
	return Config{
		IssueWidth:      2,
		IssueQueueDepth: 24,
		MemQueueDepth:   32,
		ROBDepth:        64,

		VectorSpadBytes: core.VectorSpadBytes,
		MatrixSpadBytes: core.MatrixSpadBytes,
		BankBytes:       64, // 512 bits
		SpadBanks:       4,

		VectorLanes:   32,
		MatrixBlocks:  32,
		MACsPerBlock:  32,
		HTreeOverhead: 6,

		CordicBeatCycles: 4,
		DivBeatCycles:    4,

		MainMemBytes:     16 << 20,
		DMAStartupCycles: 24,
		DMABytesPerCycle: 32,

		BranchPenaltyCycles: 4,

		ClockHz: 1e9,

		Seed: 0x5eed,

		MaxDynamicInstructions: 64 << 20,
	}
}

// validate fills defaults and rejects nonsensical geometry. Every divisor
// the timing model uses on its hot paths (VectorLanes, MatrixBlocks,
// MACsPerBlock, BankBytes, DMABytesPerCycle, beat-cost multipliers) is
// guaranteed positive here, once, so the per-instruction cycle math never
// needs to re-check or clamp.
func (c *Config) validate() error {
	if c.IssueWidth <= 0 {
		c.IssueWidth = 1
	}
	if c.IssueQueueDepth <= 0 {
		c.IssueQueueDepth = 1
	}
	if c.MemQueueDepth <= 0 {
		c.MemQueueDepth = 1
	}
	if c.ROBDepth <= 0 {
		c.ROBDepth = 1
	}
	if c.MaxDynamicInstructions <= 0 {
		c.MaxDynamicInstructions = 64 << 20
	}
	if c.MaxCycles < 0 {
		c.MaxCycles = 0
	}
	if c.ClockHz <= 0 {
		c.ClockHz = 1e9
	}
	if c.VectorLanes <= 0 {
		c.VectorLanes = 1
	}
	if c.MatrixBlocks <= 0 {
		c.MatrixBlocks = 1
	}
	if c.MACsPerBlock <= 0 {
		c.MACsPerBlock = 1
	}
	if c.CordicBeatCycles <= 0 {
		c.CordicBeatCycles = 1
	}
	if c.DivBeatCycles <= 0 {
		c.DivBeatCycles = 1
	}
	if c.VectorSpadBytes <= 0 {
		c.VectorSpadBytes = core.VectorSpadBytes
	}
	if c.MatrixSpadBytes <= 0 {
		c.MatrixSpadBytes = core.MatrixSpadBytes
	}
	if c.BankBytes <= 0 {
		c.BankBytes = 64
	}
	if c.SpadBanks <= 0 {
		c.SpadBanks = 4
	}
	if c.SpadBanks&(c.SpadBanks-1) != 0 {
		return fmt.Errorf("sim: SpadBanks %d must be a power of two", c.SpadBanks)
	}
	if c.MainMemBytes <= 0 {
		c.MainMemBytes = 16 << 20
	}
	if c.DMABytesPerCycle <= 0 {
		c.DMABytesPerCycle = 1
	}
	if c.DMAStartupCycles < 0 {
		c.DMAStartupCycles = 0
	}
	if c.HTreeOverhead < 0 {
		c.HTreeOverhead = 0
	}
	if c.BranchPenaltyCycles < 0 {
		c.BranchPenaltyCycles = 0
	}
	return nil
}
