package sim

import (
	"context"
	"testing"
	"time"

	"cambricon/internal/asm"
	"cambricon/internal/core"
)

// fuzzSeedImage encodes src into a binary program image for the fuzz
// corpus.
func fuzzSeedImage(f *testing.F, src string) []byte {
	f.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		f.Fatal(err)
	}
	img, err := core.EncodeProgram(p.Instructions)
	if err != nil {
		f.Fatal(err)
	}
	return img
}

// FuzzRunDecodedProgram feeds arbitrary binary images through the
// decoder and -- when they decode -- executes them under the watchdog.
// Whatever the fuzzer invents, the simulator must terminate with either
// clean stats or a structured error: no panic, no hang. This is the
// execution-side mirror of the assembler's FuzzAssemble/FuzzDecode.
func FuzzRunDecodedProgram(f *testing.F) {
	f.Add(fuzzSeedImage(f, "\tSMOVE $1, #5\n"))
	f.Add(fuzzSeedImage(f, "\tSMOVE $1, #3\nspin:\tSADD $1, $1, #-1\n\tCB #spin, $1\n"))
	f.Add(fuzzSeedImage(f, "spin:\tJUMP #spin\n")) // needs the watchdog
	f.Add(fuzzSeedImage(f, "\tSMOVE $0, #4\n\tSMOVE $1, #0\n\tVLOAD $1, $0, #100\n\tVSTORE $1, $0, #200\n"))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	cfg := DefaultConfig()
	cfg.MaxCycles = 1 << 16
	f.Fuzz(func(t *testing.T, img []byte) {
		if len(img) > 512*core.WordBytes {
			return // bound each case's runtime, not its validity
		}
		prog, err := core.DecodeProgram(img)
		if err != nil {
			return // rejected image is fine; panics are not
		}
		m, err := New(cfg)
		if err != nil {
			t.Fatalf("default config rejected: %v", err)
		}
		m.LoadProgram(prog)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if _, err := m.RunContext(ctx); err == context.DeadlineExceeded {
			t.Fatalf("watchdog failed to bound a %d-instruction program", len(prog))
		}
		// Any other error (runtime fault, watchdog) is an acceptable
		// structured outcome for a fuzzed program.
	})
}
