package sim

import (
	"context"
	"reflect"
	"testing"
	"time"

	"cambricon/internal/asm"
	"cambricon/internal/core"
)

// fuzzSeedImage encodes src into a binary program image for the fuzz
// corpus.
func fuzzSeedImage(f *testing.F, src string) []byte {
	f.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		f.Fatal(err)
	}
	img, err := core.EncodeProgram(p.Instructions)
	if err != nil {
		f.Fatal(err)
	}
	return img
}

// FuzzRunDecodedProgram feeds arbitrary binary images through the
// decoder and -- when they decode -- executes them under the watchdog.
// Whatever the fuzzer invents, the simulator must terminate with either
// clean stats or a structured error: no panic, no hang. This is the
// execution-side mirror of the assembler's FuzzAssemble/FuzzDecode.
func FuzzRunDecodedProgram(f *testing.F) {
	f.Add(fuzzSeedImage(f, "\tSMOVE $1, #5\n"))
	f.Add(fuzzSeedImage(f, "\tSMOVE $1, #3\nspin:\tSADD $1, $1, #-1\n\tCB #spin, $1\n"))
	f.Add(fuzzSeedImage(f, "spin:\tJUMP #spin\n")) // needs the watchdog
	f.Add(fuzzSeedImage(f, "\tSMOVE $0, #4\n\tSMOVE $1, #0\n\tVLOAD $1, $0, #100\n\tVSTORE $1, $0, #200\n"))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	cfg := DefaultConfig()
	cfg.MaxCycles = 1 << 16
	f.Fuzz(func(t *testing.T, img []byte) {
		if len(img) > 512*core.WordBytes {
			return // bound each case's runtime, not its validity
		}
		prog, err := core.DecodeProgram(img)
		if err != nil {
			return // rejected image is fine; panics are not
		}
		m, err := New(cfg)
		if err != nil {
			t.Fatalf("default config rejected: %v", err)
		}
		m.LoadProgram(prog)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if _, err := m.RunContext(ctx); err == context.DeadlineExceeded {
			t.Fatalf("watchdog failed to bound a %d-instruction program", len(prog))
		}
		// Any other error (runtime fault, watchdog) is an acceptable
		// structured outcome for a fuzzed program.
	})
}

// FuzzPredecodedEquivalence feeds arbitrary binary images through both
// interpreters — the per-step decode loop and the pre-decoded fused
// dispatch loop — and requires identical outcomes: same statistics, same
// cycles, same registers, and the same error (or clean termination) for
// every program the decoder accepts. The watchdog is armed, so the fuzz
// covers the tight loop's in-loop watchdog (including mid-fused-pair
// trips) against the baseline's; TestPredecoded* in differential_test.go
// steers the observed slow loop as well.
func FuzzPredecodedEquivalence(f *testing.F) {
	f.Add(fuzzSeedImage(f, "\tSMOVE $1, #5\n"))
	f.Add(fuzzSeedImage(f, "\tSMOVE $1, #3\nspin:\tSADD $1, $1, #-1\n\tCB #spin, $1\n"))
	f.Add(fuzzSeedImage(f, "spin:\tJUMP #spin\n")) // watchdog on both paths
	f.Add(fuzzSeedImage(f, "\tSMOVE $0, #4\n\tSMOVE $1, #0\n\tVLOAD $1, $0, #100\n\tVAV $1, $0, $1, $1\n\tVSTORE $1, $0, #200\n"))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	cfg := DefaultConfig()
	cfg.MaxCycles = 1 << 16
	f.Fuzz(func(t *testing.T, img []byte) {
		if len(img) > 512*core.WordBytes {
			return
		}
		prog, err := core.DecodeProgram(img)
		if err != nil {
			return
		}
		base, err := New(cfg)
		if err != nil {
			t.Fatalf("default config rejected: %v", err)
		}
		base.LoadProgram(prog)
		wantStats, wantErr := base.Run()

		dp, perr := Predecode(prog)
		if perr != nil {
			// Predecode front-loads the per-run validation; anything it
			// rejects must also fail the baseline run.
			if wantErr == nil {
				t.Fatalf("predecode rejected (%v) but the baseline ran clean", perr)
			}
			return
		}
		dec, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dec.LoadDecoded(dp)
		gotStats, gotErr := dec.Run()
		if (wantErr == nil) != (gotErr == nil) ||
			(wantErr != nil && wantErr.Error() != gotErr.Error()) {
			t.Fatalf("errors diverge: baseline %v, predecoded %v", wantErr, gotErr)
		}
		if !reflect.DeepEqual(wantStats, gotStats) {
			t.Fatalf("stats diverge:\nbaseline   %+v\npredecoded %+v", wantStats, gotStats)
		}
		for r := 0; r < core.NumGPRs; r++ {
			if base.GPR(uint8(r)) != dec.GPR(uint8(r)) {
				t.Fatalf("$%d = %d, baseline %d", r,
					int32(dec.GPR(uint8(r))), int32(base.GPR(uint8(r))))
			}
		}
	})
}
