package sim

import (
	"fmt"
	"testing"

	"cambricon/internal/asm"
)

// Kernel microbenchmarks for the execution hot paths this repo's perf work
// tracks (see docs/PERF.md): MMV and VMM contractions over zero-copy
// scratchpad views, the element-wise vector pipeline, and a steady-state
// Reset+Run cycle. allocs/op is the headline number — the per-instruction
// loop must not allocate once buffers are warm.

// kernelMachine builds a machine and warms it with one run of prog.
func kernelMachine(b *testing.B, src string) (*Machine, []byte) {
	b.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	m.LoadProgram(p.Instructions)
	if _, err := m.Run(); err != nil {
		b.Fatal(err)
	}
	return m, nil
}

func benchKernel(b *testing.B, src string) {
	m, _ := kernelMachine(b, src)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMMVKernel: Vout = M x Vin, 256x256, the Fig. 12 inner loop.
func BenchmarkMMVKernel(b *testing.B) {
	benchKernel(b, fmt.Sprintf(`
	SMOVE $1, #%d
	SMOVE $4, #0
	SMOVE $5, #0
	SMOVE $6, #8192
	RV    $4, $1
	MMV   $6, $1, $5, $4, $1
`, 256))
}

// BenchmarkVMMKernel: Vout = Vin x M, the transpose-free backward-pass
// contraction restructured into a row-major accumulator sweep.
func BenchmarkVMMKernel(b *testing.B) {
	benchKernel(b, fmt.Sprintf(`
	SMOVE $1, #%d
	SMOVE $4, #0
	SMOVE $5, #0
	SMOVE $6, #8192
	RV    $4, $1
	VMM   $6, $1, $5, $4, $1
`, 256))
}

// BenchmarkVecChainKernel: a dependent element-wise vector chain, dominated
// by the vecCycles conflict model and the memory-queue dependence scan.
func BenchmarkVecChainKernel(b *testing.B) {
	benchKernel(b, `
	SMOVE $1, #512
	SMOVE $2, #0
	SMOVE $3, #4096
	SMOVE $4, #8192
	SMOVE $8, #32
c:	VAV   $4, $1, $2, $3
	VMV   $3, $1, $4, $2
	SADD  $8, $8, #-1
	CB    #c, $8
`)
}

// TestHotKernelsAllocationFree pins the allocation-free property directly:
// steady-state Reset+Run of matrix and vector kernels must not allocate at
// all (views instead of copies, fixed-size access sets, reused pipeline
// rings).
func TestHotKernelsAllocationFree(t *testing.T) {
	srcs := map[string]string{
		"MMV": "\tSMOVE $1, #64\n\tSMOVE $4, #0\n\tSMOVE $5, #0\n\tSMOVE $6, #8192\n\tRV $4, $1\n\tMMV $6, $1, $5, $4, $1\n",
		"VMM": "\tSMOVE $1, #64\n\tSMOVE $4, #0\n\tSMOVE $5, #0\n\tSMOVE $6, #8192\n\tRV $4, $1\n\tVMM $6, $1, $5, $4, $1\n",
		"VAV": "\tSMOVE $1, #128\n\tSMOVE $2, #0\n\tSMOVE $3, #4096\n\tRV $2, $1\n\tVAV $3, $1, $2, $2\n",
	}
	for name, src := range srcs {
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		m.LoadProgram(p.Instructions)
		if _, err := m.Run(); err != nil { // warm buffers
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			m.Reset()
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 0 {
			t.Errorf("%s kernel: %v allocs per steady-state run, want 0", name, allocs)
		}
	}
}
