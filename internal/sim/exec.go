package sim

import (
	"fmt"

	"cambricon/internal/core"
	"cambricon/internal/fault"
	"cambricon/internal/fixed"
	"cambricon/internal/mem"
)

// space identifies which memory an access touches; the memory queue only
// serializes overlapping accesses within the same space.
type space uint8

const (
	spaceMain space = iota
	spaceVec
	spaceMat
)

// access is one memory region touched by an instruction.
type access struct {
	sp    space
	reg   mem.Region
	write bool
}

// fuKind routes an instruction to its execution resource (Fig. 8).
type fuKind uint8

const (
	fuScalar    fuKind = iota // scalar functional unit
	fuScalarMem               // scalar load/store via AGU + L1 cache
	fuVector                  // vector functional unit (and its DMAs)
	fuMatrix                  // matrix functional unit (and its DMAs)
)

// effect is what one executed instruction reports to the timing model. The
// access set is backed by a fixed array indexed by nAccess (no instruction
// touches more than four regions), keeping the execution loop
// allocation-free and the struct copyable by value.
type effect struct {
	fu           fuKind
	execCycles   int64
	accessBuf    [4]access
	nAccess      int
	branchTaken  bool
	branchOffset int
	// isDMA marks scratchpad<->main-memory transfers (load/store DMAs);
	// dmaBytes is the transfer size. Consumed by the tracer to draw DMA
	// spans on their own timeline tracks.
	isDMA    bool
	dmaBytes int
}

func (e *effect) touch(sp space, addr, n int, write bool) {
	e.accessBuf[e.nAccess] = access{sp: sp, reg: mem.Region{Addr: addr, N: n}, write: write}
	e.nAccess++
}

// acc views the access set.
func (e *effect) acc() []access { return e.accessBuf[:e.nAccess] }

// reset clears the effect for reuse. accessBuf is deliberately left
// dirty: it is only ever read through acc(), which views [:nAccess], so
// zeroing its 96 bytes per dynamic instruction would be pure overhead —
// the reason the decoded loops call reset instead of assigning effect{}.
func (e *effect) reset() {
	e.fu = 0
	e.execCycles = 0
	e.nAccess = 0
	e.branchTaken = false
	e.branchOffset = 0
	e.isDMA = false
	e.dmaBytes = 0
}

// overlapsConflicting reports whether two instructions' access sets contain
// a pair in the same space, overlapping, with at least one write — the
// paper's memory-dependence rule (footnote 2).
// accessMasks summarizes an access set as two space bitmasks: bit sp set
// in wmask when the set writes space sp, in amask when it touches it at
// all. overlapsConflicting(a, b) can only hold when a's write mask meets
// b's access mask or vice versa, so the masks are a cheap pre-filter for
// the memory-queue dependence scan.
func accessMasks(a []access) (wmask, amask uint8) {
	for _, x := range a {
		bit := uint8(1) << x.sp
		amask |= bit
		if x.write {
			wmask |= bit
		}
	}
	return wmask, amask
}

func overlapsConflicting(a, b []access) bool {
	for _, x := range a {
		for _, y := range b {
			if x.sp == y.sp && (x.write || y.write) && x.reg.Overlaps(y.reg) {
				return true
			}
		}
	}
	return false
}

// ceilDiv rounds a/b up. b is always positive here by construction:
// Config.validate rejects or defaults every divisor the timing model uses
// (VectorLanes, MatrixBlocks, MACsPerBlock, BankBytes), so no silent
// clamping is needed on this hot path.
func ceilDiv(a, b int) int64 {
	return int64((a + b - 1) / b)
}

// vecCycles models a vector-unit operation of n elements with the given
// per-beat cost over the supplied scratchpad access regions, charging
// crossbar serialization beyond the longest ideal stream to the
// bank-conflict counter.
func (m *Machine) vecCycles(n int, beatCost int, regions []access) int64 {
	beats := ceilDiv(n, m.cfg.VectorLanes) * int64(beatCost)
	var regionBuf [4]mem.Region
	spadRegions := regionBuf[:0]
	ideal := 0
	for _, a := range regions {
		if a.sp != spaceVec || a.reg.N <= 0 {
			continue
		}
		spadRegions = append(spadRegions, a.reg)
		lines := (a.reg.N + m.cfg.BankBytes - 1) / m.cfg.BankBytes
		if lines > ideal {
			ideal = lines
		}
	}
	conflict := int64(m.vspad.AccessCycles(spadRegions))
	if extra := conflict - int64(ideal); extra > 0 {
		m.stats.BankConflictCycles += extra
	}
	if conflict > beats {
		return conflict
	}
	return beats
}

// matCycles models a matrix-vector-shaped operation streaming rows across
// the 32 blocks and columns across each block's 32 MACs, plus the h-tree
// overhead.
func (m *Machine) matCycles(rows, cols int) int64 {
	beats := ceilDiv(rows, m.cfg.MatrixBlocks) * ceilDiv(cols, m.cfg.MACsPerBlock)
	return int64(m.cfg.HTreeOverhead) + beats
}

// matElemCycles models an element-wise matrix operation: all MACs of all
// blocks work in parallel over the flat element stream.
func (m *Machine) matElemCycles(n int) int64 {
	beats := ceilDiv(n, m.cfg.MatrixBlocks*m.cfg.MACsPerBlock)
	return int64(m.cfg.HTreeOverhead) + beats
}

// applyStuck imposes the injector's persistent stuck-at lane fault (if
// any) on a functional unit's output: element i is produced by lane
// i mod lanes, so every element of the stuck lane has the stuck bit
// forced. Called just before results are stored; a nil injector makes
// this a single branch.
func (m *Machine) applyStuck(unit fault.Unit, out []fixed.Num) {
	if m.inj == nil {
		return
	}
	st, ok := m.inj.StuckLane(unit)
	if !ok || len(out) == 0 {
		return
	}
	lanes := m.cfg.VectorLanes
	if unit == fault.UnitMatrix {
		lanes = m.cfg.MatrixBlocks * m.cfg.MACsPerBlock
	}
	lane := st.Lane % lanes
	if lane < 0 {
		lane += lanes
	}
	if lane >= len(out) {
		return
	}
	mask := fixed.Num(1) << (st.Bit % 16)
	for i := lane; i < len(out); i += lanes {
		if st.Val == 0 {
			out[i] &^= mask
		} else {
			out[i] |= mask
		}
	}
	m.noteFault("stuck-lane")
}

// corruptDMA offers an in-flight DMA payload to the injector. A nil
// injector makes this a single branch.
func (m *Machine) corruptDMA(data []byte) {
	if m.inj != nil && m.inj.CorruptDMA(m.stats.Instructions, data) {
		m.noteFault("dma-bit")
	}
}

// vecView resolves a vector-scratchpad input operand. On the baseline
// path (and everywhere outside a fused pair) it is Scratchpad.NumsView
// plus one length check; during the consumer half of a fused pair a view
// of exactly the region the producer just wrote resolves to the
// producer's still-live output buffer, which holds bit-identical data
// (the scratchpad write is never skipped).
func (m *Machine) vecView(addr, n int, spill *[]fixed.Num) ([]fixed.Num, error) {
	if len(m.fusedSrc) > 0 && addr == m.fusedAddr && n == len(m.fusedSrc) {
		return m.fusedSrc, nil
	}
	return m.vspad.NumsView(addr, n, spill)
}

// exec functionally executes inst against the architectural state and
// returns its timing effect. It is the baseline interpreter's entry
// point; the pre-decoded path calls execInto directly to avoid the
// by-value effect copy.
func (m *Machine) exec(inst core.Instruction) (effect, error) {
	var e effect
	err := m.execInto(inst, &e)
	return e, err
}

// execInto is exec writing its timing effect into a caller-owned buffer
// (*e must be zero on entry).
func (m *Machine) execInto(inst core.Instruction, e *effect) error {
	switch inst.Op {
	case core.JUMP:
		e.fu = fuScalar
		e.execCycles = 1
		e.branchTaken = true
		e.branchOffset = int(m.tailInt(inst, 0))
	case core.CB:
		e.fu = fuScalar
		e.execCycles = 1
		m.stats.ScalarOps++
		if m.regInt(inst.R[0]) > 0 {
			e.branchTaken = true
			e.branchOffset = int(m.tailInt(inst, 1))
		}

	case core.VLOAD, core.MLOAD:
		return m.execLoadStore(inst, e, true)
	case core.VSTORE, core.MSTORE:
		return m.execLoadStore(inst, e, false)
	case core.VMOVE, core.MMOVE:
		return m.execMove(inst, e)
	case core.SLOAD:
		e.fu = fuScalarMem
		e.execCycles = 2 // L1 hit
		addr := m.regAddr(inst.R[1]) + int(inst.Imm)
		v, err := m.main.ReadWord(addr)
		if err != nil {
			return err
		}
		m.gpr[inst.R[0]] = v
		e.touch(spaceMain, addr, 4, false)
	case core.SSTORE:
		e.fu = fuScalarMem
		e.execCycles = 2
		addr := m.regAddr(inst.R[1]) + int(inst.Imm)
		if err := m.main.WriteWord(addr, m.gpr[inst.R[0]]); err != nil {
			return err
		}
		e.touch(spaceMain, addr, 4, true)
	case core.SMOVE:
		e.fu = fuScalar
		e.execCycles = 1
		m.stats.ScalarOps++
		m.gpr[inst.R[0]] = uint32(m.tailInt(inst, 1))

	case core.MMV, core.VMM:
		return m.execMatVec(inst, e)
	case core.MMS:
		return m.execMMS(inst, e)
	case core.OP:
		return m.execOuter(inst, e)
	case core.MAM, core.MSM:
		return m.execMatElem(inst, e)

	case core.VAV, core.VSV, core.VMV, core.VDV,
		core.VGT, core.VE, core.VAND, core.VOR, core.VGTM:
		return m.execVecBinary(inst, e)
	case core.VAS:
		return m.execVAS(inst, e)
	case core.VEXP, core.VLOG, core.VNOT:
		return m.execVecUnary(inst, e)
	case core.VDOT:
		return m.execVDOT(inst, e)
	case core.RV:
		return m.execRV(inst, e)
	case core.VMAX, core.VMIN:
		return m.execVReduce(inst, e)

	case core.SADD, core.SSUB, core.SMUL, core.SDIV,
		core.SGT, core.SE, core.SAND:
		e.fu = fuScalar
		e.execCycles = 1
		m.stats.ScalarOps++
		a := m.regInt(inst.R[1])
		b := m.tailInt(inst, 2)
		var r int32
		switch inst.Op {
		case core.SADD:
			r = a + b
		case core.SSUB:
			r = a - b
		case core.SMUL:
			r = a * b
		case core.SDIV:
			e.execCycles = int64(m.cfg.DivBeatCycles)
			if b == 0 {
				return fmt.Errorf("scalar division by zero")
			}
			r = a / b
		case core.SGT:
			if a > b {
				r = 1
			}
		case core.SE:
			if a == b {
				r = 1
			}
		case core.SAND:
			if a != 0 && b != 0 {
				r = 1
			}
		}
		m.gpr[inst.R[0]] = uint32(r)
	case core.SEXP, core.SLOG:
		e.fu = fuScalar
		e.execCycles = int64(m.cfg.CordicBeatCycles)
		m.stats.ScalarOps++
		m.stats.TranscendentalElems++
		v := fixed.Num(m.tailInt(inst, 1))
		var r fixed.Num
		if inst.Op == core.SEXP {
			r = fixed.Exp(v)
		} else {
			r = fixed.Log(v)
		}
		m.gpr[inst.R[0]] = uint32(int32(r))

	default:
		return fmt.Errorf("unimplemented opcode %v", inst.Op)
	}
	return nil
}

// execLoadStore handles VLOAD/VSTORE/MLOAD/MSTORE: a DMA transfer between
// main memory and a scratchpad.
func (m *Machine) execLoadStore(inst core.Instruction, e *effect, load bool) error {
	sp, pad := spaceVec, m.vspad
	e.fu = fuVector
	if inst.Op == core.MLOAD || inst.Op == core.MSTORE {
		sp, pad = spaceMat, m.mspad
		e.fu = fuMatrix
	}
	n, err := m.regSize(inst.R[1])
	if err != nil {
		return err
	}
	spadAddr := m.regAddr(inst.R[0])
	mainAddr := m.regAddr(inst.R[2]) + int(inst.Imm)
	bytes := fixed.Bytes(n)
	data := scratchBytes(&m.bufBytes, bytes)
	if load {
		if err := m.main.ReadBytesInto(mainAddr, data); err != nil {
			return err
		}
		m.corruptDMA(data)
		if err := pad.WriteBytes(spadAddr, data); err != nil {
			return err
		}
		e.touch(spaceMain, mainAddr, bytes, false)
		e.touch(sp, spadAddr, bytes, true)
	} else {
		if err := pad.ReadBytesInto(spadAddr, data); err != nil {
			return err
		}
		m.corruptDMA(data)
		if err := m.main.WriteBytes(mainAddr, data); err != nil {
			return err
		}
		e.touch(sp, spadAddr, bytes, false)
		e.touch(spaceMain, mainAddr, bytes, true)
	}
	dma := mem.DMA{StartupCycles: m.cfg.DMAStartupCycles, BytesPerCycle: m.cfg.DMABytesPerCycle}
	e.execCycles = int64(dma.TransferCycles(bytes))
	e.isDMA = true
	e.dmaBytes = bytes
	m.stats.DMABytes += int64(bytes)
	m.stats.SpadBytes += int64(bytes)
	return nil
}

// execMove handles VMOVE/MMOVE: an on-chip copy within one scratchpad.
func (m *Machine) execMove(inst core.Instruction, e *effect) error {
	sp, pad := spaceVec, m.vspad
	e.fu = fuVector
	if inst.Op == core.MMOVE {
		sp, pad = spaceMat, m.mspad
		e.fu = fuMatrix
	}
	n, err := m.regSize(inst.R[1])
	if err != nil {
		return err
	}
	dst, src := m.regAddr(inst.R[0]), m.regAddr(inst.R[2])
	bytes := fixed.Bytes(n)
	data := scratchBytes(&m.bufBytes, bytes)
	if err := pad.ReadBytesInto(src, data); err != nil {
		return err
	}
	if err := pad.WriteBytes(dst, data); err != nil {
		return err
	}
	e.touch(sp, src, bytes, false)
	e.touch(sp, dst, bytes, true)
	if sp == spaceVec {
		e.execCycles = m.vecCycles(n, 1, e.acc())
	} else {
		e.execCycles = m.matElemCycles(n)
	}
	m.stats.SpadBytes += 2 * int64(bytes)
	return nil
}

// execMatVec handles MMV (Vout = M x Vin) and VMM (Vout = Vin x M). Both
// read the matrix row-major from the matrix scratchpad; VMM contracts over
// rows instead of columns, which is what makes the transpose-free backward
// pass possible (Section III-A).
func (m *Machine) execMatVec(inst core.Instruction, e *effect) error {
	e.fu = fuMatrix
	outN, err := m.regSize(inst.R[1])
	if err != nil {
		return err
	}
	inN, err := m.regSize(inst.R[4])
	if err != nil {
		return err
	}
	matAddr := m.regAddr(inst.R[2])
	vinAddr := m.regAddr(inst.R[3])
	voutAddr := m.regAddr(inst.R[0])

	vin, err := m.vecView(vinAddr, inN, &m.bufA)
	if err != nil {
		return err
	}
	var rows, cols int
	if inst.Op == core.MMV {
		rows, cols = outN, inN
	} else {
		rows, cols = inN, outN
	}
	mat, err := m.mspad.NumsView(matAddr, rows*cols, &m.bufMat)
	if err != nil {
		return err
	}
	out := scratch(&m.bufOut, outN)
	if inst.Op == core.MMV {
		for i := 0; i < outN; i++ {
			out[i] = fixed.Dot(mat[i*cols:(i+1)*cols], vin)
		}
	} else {
		// Contract over rows with a row-major accumulator sweep: each matrix
		// element is visited in storage order exactly once, instead of the
		// column-major strided walk (mat[i*cols+j] inner over i) that missed
		// cache on every step. Accumulation order per output stays i=0..inN-1,
		// and integer addition is associative, so results are bit-identical.
		acc := scratchAcc(&m.bufAcc, outN)
		for j := range acc {
			acc[j] = 0
		}
		for i := 0; i < inN; i++ {
			v := vin[i]
			row := mat[i*cols : (i+1)*cols]
			for j, mv := range row {
				acc[j] += fixed.MulAcc(v, mv)
			}
		}
		for j, sum := range acc {
			out[j] = fixed.AccSat(sum)
		}
	}
	m.applyStuck(fault.UnitMatrix, out)
	if err := m.vspad.WriteNums(voutAddr, out); err != nil {
		return err
	}
	e.touch(spaceMat, matAddr, fixed.Bytes(rows*cols), false)
	e.touch(spaceVec, vinAddr, fixed.Bytes(inN), false)
	e.touch(spaceVec, voutAddr, fixed.Bytes(outN), true)
	e.execCycles = m.matCycles(rows, cols)
	m.stats.MACOps += int64(rows) * int64(cols)
	m.stats.SpadBytes += int64(fixed.Bytes(rows*cols + inN + outN))
	return nil
}

// execMMS handles matrix-mult-scalar.
func (m *Machine) execMMS(inst core.Instruction, e *effect) error {
	e.fu = fuMatrix
	n, err := m.regSize(inst.R[1])
	if err != nil {
		return err
	}
	dst, src := m.regAddr(inst.R[0]), m.regAddr(inst.R[2])
	s := fixed.Num(m.tailInt(inst, 3))
	in, err := m.mspad.NumsView(src, n, &m.bufA)
	if err != nil {
		return err
	}
	out := scratch(&m.bufOut, n)
	for i, v := range in {
		out[i] = fixed.Mul(v, s)
	}
	m.applyStuck(fault.UnitMatrix, out)
	if err := m.mspad.WriteNums(dst, out); err != nil {
		return err
	}
	e.touch(spaceMat, src, fixed.Bytes(n), false)
	e.touch(spaceMat, dst, fixed.Bytes(n), true)
	e.execCycles = m.matElemCycles(n)
	m.stats.MACOps += int64(n)
	m.stats.SpadBytes += int64(2 * fixed.Bytes(n))
	return nil
}

// execOuter handles OP: Mout[i][j] = Vin0[i] * Vin1[j].
func (m *Machine) execOuter(inst core.Instruction, e *effect) error {
	e.fu = fuMatrix
	rows, err := m.regSize(inst.R[2])
	if err != nil {
		return err
	}
	cols, err := m.regSize(inst.R[4])
	if err != nil {
		return err
	}
	dst := m.regAddr(inst.R[0])
	v0, err := m.vecView(m.regAddr(inst.R[1]), rows, &m.bufA)
	if err != nil {
		return err
	}
	v1, err := m.vecView(m.regAddr(inst.R[3]), cols, &m.bufB)
	if err != nil {
		return err
	}
	out := scratch(&m.bufMat, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			out[i*cols+j] = fixed.Mul(v0[i], v1[j])
		}
	}
	m.applyStuck(fault.UnitMatrix, out)
	if err := m.mspad.WriteNums(dst, out); err != nil {
		return err
	}
	e.touch(spaceVec, m.regAddr(inst.R[1]), fixed.Bytes(rows), false)
	e.touch(spaceVec, m.regAddr(inst.R[3]), fixed.Bytes(cols), false)
	e.touch(spaceMat, dst, fixed.Bytes(rows*cols), true)
	e.execCycles = m.matCycles(rows, cols)
	m.stats.MACOps += int64(rows) * int64(cols)
	m.stats.SpadBytes += int64(fixed.Bytes(rows*cols + rows + cols))
	return nil
}

// execMatElem handles MAM/MSM: element-wise matrix add/subtract.
func (m *Machine) execMatElem(inst core.Instruction, e *effect) error {
	e.fu = fuMatrix
	n, err := m.regSize(inst.R[1])
	if err != nil {
		return err
	}
	dst := m.regAddr(inst.R[0])
	a, err := m.mspad.NumsView(m.regAddr(inst.R[2]), n, &m.bufA)
	if err != nil {
		return err
	}
	b, err := m.mspad.NumsView(m.regAddr(inst.R[3]), n, &m.bufB)
	if err != nil {
		return err
	}
	out := scratch(&m.bufOut, n)
	for i := range out {
		if inst.Op == core.MAM {
			out[i] = fixed.Add(a[i], b[i])
		} else {
			out[i] = fixed.Sub(a[i], b[i])
		}
	}
	m.applyStuck(fault.UnitMatrix, out)
	if err := m.mspad.WriteNums(dst, out); err != nil {
		return err
	}
	e.touch(spaceMat, m.regAddr(inst.R[2]), fixed.Bytes(n), false)
	e.touch(spaceMat, m.regAddr(inst.R[3]), fixed.Bytes(n), false)
	e.touch(spaceMat, dst, fixed.Bytes(n), true)
	e.execCycles = m.matElemCycles(n)
	m.stats.MACOps += int64(n)
	m.stats.SpadBytes += int64(3 * fixed.Bytes(n))
	return nil
}

// execVecBinary handles all element-wise two-vector operations.
func (m *Machine) execVecBinary(inst core.Instruction, e *effect) error {
	e.fu = fuVector
	n, err := m.regSize(inst.R[1])
	if err != nil {
		return err
	}
	dst := m.regAddr(inst.R[0])
	a, err := m.vecView(m.regAddr(inst.R[2]), n, &m.bufA)
	if err != nil {
		return err
	}
	b, err := m.vecView(m.regAddr(inst.R[3]), n, &m.bufB)
	if err != nil {
		return err
	}
	out := scratch(&m.bufOut, n)
	beatCost := 1
	// One switch per instruction, not per element: the per-opcode loops
	// keep the lane arithmetic branch-free on the hot path.
	switch inst.Op {
	case core.VAV:
		for i := range out {
			out[i] = fixed.Add(a[i], b[i])
		}
	case core.VSV:
		for i := range out {
			out[i] = fixed.Sub(a[i], b[i])
		}
	case core.VMV:
		for i := range out {
			out[i] = fixed.Mul(a[i], b[i])
		}
	case core.VDV:
		for i := range out {
			out[i] = fixed.Div(a[i], b[i])
		}
		beatCost = m.cfg.DivBeatCycles
	case core.VGT:
		for i := range out {
			out[i] = boolNum(a[i] > b[i])
		}
	case core.VE:
		for i := range out {
			out[i] = boolNum(a[i] == b[i])
		}
	case core.VAND:
		for i := range out {
			out[i] = boolNum(a[i] != 0 && b[i] != 0)
		}
	case core.VOR:
		for i := range out {
			out[i] = boolNum(a[i] != 0 || b[i] != 0)
		}
	case core.VGTM:
		for i := range out {
			if a[i] > b[i] {
				out[i] = a[i]
			} else {
				out[i] = b[i]
			}
		}
	}
	m.applyStuck(fault.UnitVector, out)
	if err := m.vspad.WriteNums(dst, out); err != nil {
		return err
	}
	e.touch(spaceVec, m.regAddr(inst.R[2]), fixed.Bytes(n), false)
	e.touch(spaceVec, m.regAddr(inst.R[3]), fixed.Bytes(n), false)
	e.touch(spaceVec, dst, fixed.Bytes(n), true)
	e.execCycles = m.vecCycles(n, beatCost, e.acc())
	m.stats.VectorElems += int64(n)
	m.stats.SpadBytes += int64(3 * fixed.Bytes(n))
	return nil
}

// execVAS handles vector-add-scalar.
func (m *Machine) execVAS(inst core.Instruction, e *effect) error {
	e.fu = fuVector
	n, err := m.regSize(inst.R[1])
	if err != nil {
		return err
	}
	dst := m.regAddr(inst.R[0])
	a, err := m.vecView(m.regAddr(inst.R[2]), n, &m.bufA)
	if err != nil {
		return err
	}
	s := fixed.Num(m.tailInt(inst, 3))
	out := scratch(&m.bufOut, n)
	for i := range out {
		out[i] = fixed.Add(a[i], s)
	}
	m.applyStuck(fault.UnitVector, out)
	if err := m.vspad.WriteNums(dst, out); err != nil {
		return err
	}
	e.touch(spaceVec, m.regAddr(inst.R[2]), fixed.Bytes(n), false)
	e.touch(spaceVec, dst, fixed.Bytes(n), true)
	e.execCycles = m.vecCycles(n, 1, e.acc())
	m.stats.VectorElems += int64(n)
	m.stats.SpadBytes += int64(2 * fixed.Bytes(n))
	return nil
}

// execVecUnary handles VEXP/VLOG/VNOT.
func (m *Machine) execVecUnary(inst core.Instruction, e *effect) error {
	e.fu = fuVector
	n, err := m.regSize(inst.R[1])
	if err != nil {
		return err
	}
	dst := m.regAddr(inst.R[0])
	a, err := m.vecView(m.regAddr(inst.R[2]), n, &m.bufA)
	if err != nil {
		return err
	}
	out := scratch(&m.bufOut, n)
	beatCost := 1
	switch inst.Op {
	case core.VEXP:
		beatCost = m.cfg.CordicBeatCycles
		for i := range out {
			out[i] = fixed.Exp(a[i])
		}
		m.stats.TranscendentalElems += int64(n)
	case core.VLOG:
		beatCost = m.cfg.CordicBeatCycles
		for i := range out {
			out[i] = fixed.Log(a[i])
		}
		m.stats.TranscendentalElems += int64(n)
	case core.VNOT:
		for i := range out {
			out[i] = boolNum(a[i] == 0)
		}
	}
	m.applyStuck(fault.UnitVector, out)
	if err := m.vspad.WriteNums(dst, out); err != nil {
		return err
	}
	e.touch(spaceVec, m.regAddr(inst.R[2]), fixed.Bytes(n), false)
	e.touch(spaceVec, dst, fixed.Bytes(n), true)
	e.execCycles = m.vecCycles(n, beatCost, e.acc())
	m.stats.VectorElems += int64(n)
	m.stats.SpadBytes += int64(2 * fixed.Bytes(n))
	return nil
}

// execVDOT handles the dot product, writing its scalar result to a GPR.
func (m *Machine) execVDOT(inst core.Instruction, e *effect) error {
	e.fu = fuVector
	n, err := m.regSize(inst.R[1])
	if err != nil {
		return err
	}
	a, err := m.vecView(m.regAddr(inst.R[2]), n, &m.bufA)
	if err != nil {
		return err
	}
	b, err := m.vecView(m.regAddr(inst.R[3]), n, &m.bufB)
	if err != nil {
		return err
	}
	m.gpr[inst.R[0]] = uint32(int32(fixed.Dot(a, b)))
	e.touch(spaceVec, m.regAddr(inst.R[2]), fixed.Bytes(n), false)
	e.touch(spaceVec, m.regAddr(inst.R[3]), fixed.Bytes(n), false)
	e.execCycles = m.vecCycles(n, 1, e.acc()) + reduceCycles(m.cfg.VectorLanes)
	m.stats.VectorElems += int64(n)
	m.stats.SpadBytes += int64(2 * fixed.Bytes(n))
	return nil
}

// execRV handles the random-vector instruction: uniform fixed-point values
// over [0, 1) from the machine's deterministic PRNG.
func (m *Machine) execRV(inst core.Instruction, e *effect) error {
	e.fu = fuVector
	n, err := m.regSize(inst.R[1])
	if err != nil {
		return err
	}
	dst := m.regAddr(inst.R[0])
	out := scratch(&m.bufOut, n)
	for i := range out {
		out[i] = m.nextRand()
	}
	m.applyStuck(fault.UnitVector, out)
	if err := m.vspad.WriteNums(dst, out); err != nil {
		return err
	}
	e.touch(spaceVec, dst, fixed.Bytes(n), true)
	e.execCycles = m.vecCycles(n, 1, e.acc())
	m.stats.VectorElems += int64(n)
	m.stats.SpadBytes += int64(fixed.Bytes(n))
	return nil
}

// execVReduce handles VMAX/VMIN, writing the extreme element to a GPR.
func (m *Machine) execVReduce(inst core.Instruction, e *effect) error {
	e.fu = fuVector
	n, err := m.regSize(inst.R[1])
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("%v of an empty vector", inst.Op)
	}
	a, err := m.vecView(m.regAddr(inst.R[2]), n, &m.bufA)
	if err != nil {
		return err
	}
	best := a[0]
	for _, v := range a[1:] {
		if (inst.Op == core.VMAX && v > best) || (inst.Op == core.VMIN && v < best) {
			best = v
		}
	}
	m.gpr[inst.R[0]] = uint32(int32(best))
	e.touch(spaceVec, m.regAddr(inst.R[2]), fixed.Bytes(n), false)
	e.execCycles = m.vecCycles(n, 1, e.acc()) + reduceCycles(m.cfg.VectorLanes)
	m.stats.VectorElems += int64(n)
	m.stats.SpadBytes += int64(fixed.Bytes(n))
	return nil
}

// reduceCycles is the cost of the lane-reduction tree.
func reduceCycles(lanes int) int64 {
	c := int64(0)
	for lanes > 1 {
		lanes = (lanes + 1) / 2
		c++
	}
	return c
}

func boolNum(b bool) fixed.Num {
	if b {
		return fixed.One
	}
	return 0
}
