package sim

import (
	"strings"
	"testing"

	"cambricon/internal/core"
)

func TestTraceOutput(t *testing.T) {
	p := mustAssemble(t, `
	SMOVE $1, #2
top:	SADD  $1, $1, #-1
	CB    #top, $1
`)
	m := mustNew(t, DefaultConfig())
	var buf strings.Builder
	m.SetTrace(&buf)
	m.LoadProgram(p.Instructions)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "SMOVE $1, #2") {
		t.Errorf("trace missing first instruction:\n%s", out)
	}
	if !strings.Contains(out, "; taken -> 1") {
		t.Errorf("trace missing branch annotation:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 6 { // SMOVE + 2x(SADD+CB) ... SADD,CB,SADD,CB = 5 total
		t.Logf("trace:\n%s", out)
	}
	// Disabling tracing stops output.
	m.SetTrace(nil)
	m.Reset()
	m.LoadProgram(p.Instructions)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOpcodeHistogram(t *testing.T) {
	p := mustAssemble(t, `
	SMOVE $1, #5
top:	SADD  $1, $1, #-1
	CB    #top, $1
`)
	m := mustNew(t, DefaultConfig())
	m.LoadProgram(p.Instructions)
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ByOpcode[core.SADD] != 5 {
		t.Errorf("SADD count = %d, want 5", stats.ByOpcode[core.SADD])
	}
	if stats.ByOpcode[core.CB] != 5 {
		t.Errorf("CB count = %d, want 5", stats.ByOpcode[core.CB])
	}
	top := stats.TopOpcodes(2)
	if len(top) != 2 {
		t.Fatalf("TopOpcodes returned %d entries", len(top))
	}
	if top[0].Count < top[1].Count {
		t.Error("TopOpcodes not sorted")
	}
	all := stats.TopOpcodes(0)
	if len(all) != 3 {
		t.Errorf("expected 3 distinct opcodes, got %d", len(all))
	}
}
