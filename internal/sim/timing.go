package sim

import "cambricon/internal/core"

// pipeline is a timestamp-propagation model of the Fig. 8 seven-stage
// pipeline. Instructions pass through it in program order (the machine
// executes functionally in order); each advance call computes when the
// instruction would fetch, issue, execute and commit given the structural
// resources of Table II, and accumulates stall statistics.
type pipeline struct {
	cfg   *Config
	stats *Stats

	count int64 // dynamic instruction index

	// Fetch bandwidth and branch redirect.
	fetchCycle int64
	fetchSlot  int
	redirect   int64

	// Issue queue: time each of the last IssueQueueDepth instructions
	// left the queue (ring indexed by dynamic index).
	iqIssued []int64
	// In-order issue with IssueWidth bandwidth.
	issueCycle    int64
	issueSlot     int
	lastIssueTime int64

	// Reorder buffer: commit time ring.
	robCommit []int64
	// In-order commit with IssueWidth bandwidth.
	commitCycle int64
	commitSlot  int
	lastCommit  int64

	// Memory queue ring (memory-touching instructions only).
	memCount int64
	mq       []mqEntry
	mqRetire []int64

	// Functional-unit availability. The scalar unit and L1 port are
	// pipelined (one new op per cycle); the vector and matrix units are
	// occupied for an operation's whole duration, which is what creates
	// the inter-instruction bubbles discussed in Section V-B3.
	scalarNext int64
	l1Next     int64
	vectorFree int64
	matrixFree int64

	regReady [core.NumGPRs]int64
}

// mqEntry is one in-flight memory-queue entry. The access set is a fixed
// array (no instruction touches more than four regions, see effect), so
// recording an entry and scanning the queue for dependences never
// allocates.
type mqEntry struct {
	done   int64
	accBuf [4]access
	nAcc   int
}

// acc views the entry's access set.
func (q *mqEntry) acc() []access { return q.accBuf[:q.nAcc] }

// resizeInt64 returns buf cleared and resized to n, reusing its backing
// array when possible so Machine.Reset allocates nothing in steady state.
func resizeInt64(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

func (p *pipeline) init(cfg *Config, stats *Stats) {
	p.cfg = cfg
	p.stats = stats
	p.count = 0
	p.fetchCycle, p.fetchSlot, p.redirect = 0, 0, 0
	p.iqIssued = resizeInt64(p.iqIssued, cfg.IssueQueueDepth)
	p.issueCycle, p.issueSlot, p.lastIssueTime = 0, 0, 0
	p.robCommit = resizeInt64(p.robCommit, cfg.ROBDepth)
	p.commitCycle, p.commitSlot, p.lastCommit = 0, 0, 0
	p.memCount = 0
	if cap(p.mq) < cfg.MemQueueDepth {
		p.mq = make([]mqEntry, cfg.MemQueueDepth)
	} else {
		p.mq = p.mq[:cfg.MemQueueDepth]
		for i := range p.mq {
			p.mq[i] = mqEntry{}
		}
	}
	p.mqRetire = resizeInt64(p.mqRetire, cfg.MemQueueDepth)
	p.scalarNext, p.l1Next, p.vectorFree, p.matrixFree = 0, 0, 0, 0
	p.regReady = [core.NumGPRs]int64{}
}

// advance threads one executed instruction through the timing model and
// returns the instruction's commit cycle.
func (p *pipeline) advance(inst core.Instruction, e *effect) int64 {
	i := p.count
	p.count++
	width := p.cfg.IssueWidth

	// Fetch: bounded by the redirect of an earlier taken branch, fetch
	// bandwidth, and issue-queue space (the instruction IssueQueueDepth
	// back must have left the queue).
	f := p.redirect
	if f < p.fetchCycle {
		f = p.fetchCycle
	}
	if i >= int64(len(p.iqIssued)) {
		if t := p.iqIssued[i%int64(len(p.iqIssued))]; t > f {
			f = t
		}
	}
	// Fetch bandwidth: at most IssueWidth fetches per cycle.
	if f > p.fetchCycle {
		p.fetchCycle = f
		p.fetchSlot = 0
	} else {
		f = p.fetchCycle
	}
	p.fetchSlot++
	if p.fetchSlot >= width {
		p.fetchCycle++
		p.fetchSlot = 0
	}

	// Decode.
	s := f + 1

	// Issue: in order, after source registers are read from the scalar
	// register file, with ROB and memory-queue space available.
	if s < p.lastIssueTime {
		s = p.lastIssueTime
	}
	var srcBuf [6]uint8
	rr := s
	for _, r := range inst.ReadRegs(srcBuf[:0]) {
		if p.regReady[r] > rr {
			rr = p.regReady[r]
		}
	}
	p.stats.RegStallCycles += rr - s
	s = rr
	if i >= int64(len(p.robCommit)) {
		if t := p.robCommit[i%int64(len(p.robCommit))]; t > s {
			p.stats.ROBFullStallCycles += t - s
			s = t
		}
	}
	isMem := e.fu == fuVector || e.fu == fuMatrix || e.fu == fuScalarMem
	if isMem && p.memCount >= int64(len(p.mqRetire)) {
		if t := p.mqRetire[p.memCount%int64(len(p.mqRetire))]; t > s {
			p.stats.MemQueueFullStallCycles += t - s
			s = t
		}
	}
	// Issue bandwidth: at most IssueWidth issues per cycle.
	if s > p.issueCycle {
		p.issueCycle = s
		p.issueSlot = 0
	} else {
		s = p.issueCycle
	}
	p.issueSlot++
	if p.issueSlot >= width {
		p.issueCycle++
		p.issueSlot = 0
	}
	p.lastIssueTime = s
	p.iqIssued[i%int64(len(p.iqIssued))] = s

	// Execute.
	var done int64
	switch e.fu {
	case fuScalar:
		start := s + 1 // register-read stage
		if p.scalarNext > start {
			p.stats.FUBusyStallCycles += p.scalarNext - start
			start = p.scalarNext
		}
		done = start + e.execCycles
		p.scalarNext = start + 1
	default:
		// Memory-touching instructions pass the AGU and wait in the
		// memory queue for earlier overlapping accesses.
		entry := s + 2 // register read + AGU
		dep := entry
		lo := p.memCount - int64(len(p.mq))
		if lo < 0 {
			lo = 0
		}
		for k := lo; k < p.memCount; k++ {
			ent := &p.mq[k%int64(len(p.mq))]
			if ent.done > dep && overlapsConflicting(ent.acc(), e.acc()) {
				dep = ent.done
			}
		}
		p.stats.MemDepStallCycles += dep - entry
		start := dep
		switch e.fu {
		case fuVector:
			if p.vectorFree > start {
				p.stats.FUBusyStallCycles += p.vectorFree - start
				start = p.vectorFree
			}
			done = start + e.execCycles
			p.vectorFree = done
			p.stats.VectorBusyCycles += e.execCycles
		case fuMatrix:
			if p.matrixFree > start {
				p.stats.FUBusyStallCycles += p.matrixFree - start
				start = p.matrixFree
			}
			done = start + e.execCycles
			p.matrixFree = done
			p.stats.MatrixBusyCycles += e.execCycles
		case fuScalarMem:
			if p.l1Next > start {
				p.stats.FUBusyStallCycles += p.l1Next - start
				start = p.l1Next
			}
			done = start + e.execCycles
			p.l1Next = start + 1
		}
		// Record the memory-queue entry; retirement is in order.
		idx := p.memCount % int64(len(p.mq))
		ent := &p.mq[idx]
		ent.done = done
		ent.accBuf = e.accessBuf
		ent.nAcc = e.nAccess
		retire := done
		if p.memCount > 0 {
			if prev := p.mqRetire[(p.memCount-1)%int64(len(p.mqRetire))]; prev > retire {
				retire = prev
			}
		}
		p.mqRetire[idx] = retire
		p.memCount++
	}

	// Write back.
	if dst, ok := inst.DestReg(); ok {
		p.regReady[dst] = done + 1
	}

	// Commit: in order, IssueWidth per cycle.
	c := done + 1
	if c < p.lastCommit {
		c = p.lastCommit
	}
	// Commit bandwidth: at most IssueWidth commits per cycle.
	if c > p.commitCycle {
		p.commitCycle = c
		p.commitSlot = 0
	} else {
		c = p.commitCycle
	}
	p.commitSlot++
	if p.commitSlot >= width {
		p.commitCycle++
		p.commitSlot = 0
	}
	p.lastCommit = c
	p.robCommit[i%int64(len(p.robCommit))] = c

	// Branch redirect.
	if e.branchTaken {
		r := done + int64(p.cfg.BranchPenaltyCycles)
		if r > p.redirect {
			p.redirect = r
		}
	}
	return c
}
