package sim

import (
	"cambricon/internal/core"
	"cambricon/internal/trace"
)

// pipeline is a timestamp-propagation model of the Fig. 8 seven-stage
// pipeline. Instructions pass through it in program order (the machine
// executes functionally in order); each advance call computes when the
// instruction would fetch, issue, execute and commit given the structural
// resources of Table II, and accumulates stall statistics.
type pipeline struct {
	cfg   *Config
	stats *Stats

	count int64 // dynamic instruction index

	// Fetch bandwidth and branch redirect.
	fetchCycle int64
	fetchSlot  int
	redirect   int64

	// Issue queue: time each of the last IssueQueueDepth instructions
	// left the queue (ring indexed by dynamic index).
	iqIssued []int64
	// In-order issue with IssueWidth bandwidth.
	issueCycle    int64
	issueSlot     int
	lastIssueTime int64

	// Reorder buffer: commit time ring.
	robCommit []int64
	// In-order commit with IssueWidth bandwidth.
	commitCycle int64
	commitSlot  int
	lastCommit  int64

	// Memory queue ring (memory-touching instructions only).
	memCount int64
	mq       []mqEntry
	mqRetire []int64

	// Functional-unit availability. The scalar unit and L1 port are
	// pipelined (one new op per cycle); the vector and matrix units are
	// occupied for an operation's whole duration, which is what creates
	// the inter-instruction bubbles discussed in Section V-B3.
	scalarNext int64
	l1Next     int64
	vectorFree int64
	matrixFree int64

	regReady [core.NumGPRs]int64
}

// mqEntry is one in-flight memory-queue entry. The access set is a fixed
// array (no instruction touches more than four regions, see effect), so
// recording an entry and scanning the queue for dependences never
// allocates.
type mqEntry struct {
	done   int64
	accBuf [4]access
	nAcc   int
}

// acc views the entry's access set.
func (q *mqEntry) acc() []access { return q.accBuf[:q.nAcc] }

// resizeInt64 returns buf cleared and resized to n, reusing its backing
// array when possible so Machine.Reset allocates nothing in steady state.
func resizeInt64(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

func (p *pipeline) init(cfg *Config, stats *Stats) {
	p.cfg = cfg
	p.stats = stats
	p.count = 0
	p.fetchCycle, p.fetchSlot, p.redirect = 0, 0, 0
	p.iqIssued = resizeInt64(p.iqIssued, cfg.IssueQueueDepth)
	p.issueCycle, p.issueSlot, p.lastIssueTime = 0, 0, 0
	p.robCommit = resizeInt64(p.robCommit, cfg.ROBDepth)
	p.commitCycle, p.commitSlot, p.lastCommit = 0, 0, 0
	p.memCount = 0
	if cap(p.mq) < cfg.MemQueueDepth {
		p.mq = make([]mqEntry, cfg.MemQueueDepth)
	} else {
		p.mq = p.mq[:cfg.MemQueueDepth]
		for i := range p.mq {
			p.mq[i] = mqEntry{}
		}
	}
	p.mqRetire = resizeInt64(p.mqRetire, cfg.MemQueueDepth)
	p.scalarNext, p.l1Next, p.vectorFree, p.matrixFree = 0, 0, 0, 0
	p.regReady = [core.NumGPRs]int64{}
}

// attrSeg is one interval of an instruction's critical path, labeled
// with what the instruction was doing (or waiting on) during it.
type attrSeg struct {
	cause trace.Cause
	a, b  int64 // half-open [a, b)
}

// advance threads one executed instruction through the timing model and
// returns the instruction's commit cycle.
//
// Besides computing the timestamps, advance attributes every cycle of the
// instruction's commit window — the interval between the previous commit
// and this one — to exactly one stall cause (a CPI stack), accumulated in
// Stats.Stalls. The instruction's critical path covers [fetch, commit)
// contiguously, so clipping each path segment to the window and charging
// the pre-fetch remainder to whatever gated the fetch accounts for the
// whole window; commit windows telescope across the run, which is why the
// per-cause totals sum to exactly Stats.Cycles. When ev is non-nil the
// same timestamps and attribution are recorded for the tracer; passing
// nil adds no work beyond the always-on statistics.
func (p *pipeline) advance(inst core.Instruction, e *effect, ev *trace.InstEvent) int64 {
	i := p.count
	p.count++
	width := p.cfg.IssueWidth
	prevCommit := p.lastCommit

	// Fetch: bounded by the redirect of an earlier taken branch, fetch
	// bandwidth, and issue-queue space (the instruction IssueQueueDepth
	// back must have left the queue). fetchCause remembers which of the
	// three gated the fetch, for attributing the window's pre-fetch
	// cycles.
	f := p.redirect
	fetchCause := trace.CauseBranch
	if p.fetchCycle >= f {
		f = p.fetchCycle
		fetchCause = trace.CauseFrontend
	}
	if i >= int64(len(p.iqIssued)) {
		if t := p.iqIssued[i%int64(len(p.iqIssued))]; t > f {
			f = t
			fetchCause = trace.CauseIQFull
		}
	}
	// Fetch bandwidth: at most IssueWidth fetches per cycle.
	if f > p.fetchCycle {
		p.fetchCycle = f
		p.fetchSlot = 0
	} else {
		f = p.fetchCycle
	}
	p.fetchSlot++
	if p.fetchSlot >= width {
		p.fetchCycle++
		p.fetchSlot = 0
	}

	// Decode, then in-order issue behind the previous instruction.
	d := f + 1
	s0 := d
	if s0 < p.lastIssueTime {
		s0 = p.lastIssueTime
	}

	// Issue: in order, after source registers are read from the scalar
	// register file, with ROB and memory-queue space available.
	var srcBuf [6]uint8
	rr := s0
	for _, r := range inst.ReadRegs(srcBuf[:0]) {
		if p.regReady[r] > rr {
			rr = p.regReady[r]
		}
	}
	p.stats.RegStallCycles += rr - s0
	sROB := rr
	if i >= int64(len(p.robCommit)) {
		if t := p.robCommit[i%int64(len(p.robCommit))]; t > sROB {
			p.stats.ROBFullStallCycles += t - sROB
			sROB = t
		}
	}
	isMem := e.fu == fuVector || e.fu == fuMatrix || e.fu == fuScalarMem
	sMQ := sROB
	if isMem && p.memCount >= int64(len(p.mqRetire)) {
		if t := p.mqRetire[p.memCount%int64(len(p.mqRetire))]; t > sMQ {
			p.stats.MemQueueFullStallCycles += t - sMQ
			sMQ = t
		}
	}
	// Issue bandwidth: at most IssueWidth issues per cycle.
	s := sMQ
	if s > p.issueCycle {
		p.issueCycle = s
		p.issueSlot = 0
	} else {
		s = p.issueCycle
	}
	p.issueSlot++
	if p.issueSlot >= width {
		p.issueCycle++
		p.issueSlot = 0
	}
	p.lastIssueTime = s
	p.iqIssued[i%int64(len(p.iqIssued))] = s

	// Execute. regReadEnd closes the fixed post-issue pipeline stages
	// (register read, and the AGU for memory-touching instructions),
	// depEnd the memory-queue dependence wait, start the functional-unit
	// availability wait.
	var regReadEnd, depEnd, start, done int64
	switch e.fu {
	case fuScalar:
		regReadEnd = s + 1 // register-read stage
		depEnd = regReadEnd
		start = regReadEnd
		if p.scalarNext > start {
			p.stats.FUBusyStallCycles += p.scalarNext - start
			start = p.scalarNext
		}
		done = start + e.execCycles
		p.scalarNext = start + 1
	default:
		// Memory-touching instructions pass the AGU and wait in the
		// memory queue for earlier overlapping accesses.
		entry := s + 2 // register read + AGU
		regReadEnd = entry
		dep := entry
		lo := p.memCount - int64(len(p.mq))
		if lo < 0 {
			lo = 0
		}
		for k := lo; k < p.memCount; k++ {
			ent := &p.mq[k%int64(len(p.mq))]
			if ent.done > dep && overlapsConflicting(ent.acc(), e.acc()) {
				dep = ent.done
			}
		}
		p.stats.MemDepStallCycles += dep - entry
		depEnd = dep
		start = dep
		switch e.fu {
		case fuVector:
			if p.vectorFree > start {
				p.stats.FUBusyStallCycles += p.vectorFree - start
				start = p.vectorFree
			}
			done = start + e.execCycles
			p.vectorFree = done
			p.stats.VectorBusyCycles += e.execCycles
		case fuMatrix:
			if p.matrixFree > start {
				p.stats.FUBusyStallCycles += p.matrixFree - start
				start = p.matrixFree
			}
			done = start + e.execCycles
			p.matrixFree = done
			p.stats.MatrixBusyCycles += e.execCycles
		case fuScalarMem:
			if p.l1Next > start {
				p.stats.FUBusyStallCycles += p.l1Next - start
				start = p.l1Next
			}
			done = start + e.execCycles
			p.l1Next = start + 1
		}
		// Record the memory-queue entry; retirement is in order.
		idx := p.memCount % int64(len(p.mq))
		ent := &p.mq[idx]
		ent.done = done
		ent.accBuf = e.accessBuf
		ent.nAcc = e.nAccess
		retire := done
		if p.memCount > 0 {
			if prev := p.mqRetire[(p.memCount-1)%int64(len(p.mqRetire))]; prev > retire {
				retire = prev
			}
		}
		p.mqRetire[idx] = retire
		p.memCount++
	}

	// Write back.
	if dst, ok := inst.DestReg(); ok {
		p.regReady[dst] = done + 1
	}

	// Commit: in order, IssueWidth per cycle.
	c := done + 1
	if c < p.lastCommit {
		c = p.lastCommit
	}
	// Commit bandwidth: at most IssueWidth commits per cycle.
	if c > p.commitCycle {
		p.commitCycle = c
		p.commitSlot = 0
	} else {
		c = p.commitCycle
	}
	p.commitSlot++
	if p.commitSlot >= width {
		p.commitCycle++
		p.commitSlot = 0
	}
	p.lastCommit = c
	p.robCommit[i%int64(len(p.robCommit))] = c

	// Branch redirect.
	if e.branchTaken {
		r := done + int64(p.cfg.BranchPenaltyCycles)
		if r > p.redirect {
			p.redirect = r
		}
	}

	// Stall attribution: clip the critical-path segments to the commit
	// window [prevCommit, c). The segment boundaries are monotone
	// (f <= s0 <= rr <= sROB <= sMQ <= s <= regReadEnd <= depEnd <=
	// start <= done+1 <= c), so the clipped segments are disjoint and
	// any window cycles they leave uncovered precede the fetch — those
	// are charged to whatever gated the fetch.
	segs := [10]attrSeg{
		{trace.CauseFrontend, f, s0},            // fetch + decode + in-order issue
		{trace.CauseRegDep, s0, rr},             // source-register wait
		{trace.CauseROBFull, rr, sROB},          // reorder-buffer wait
		{trace.CauseMemQueueFull, sROB, sMQ},    // memory-queue-space wait
		{trace.CauseFrontend, sMQ, s},           // issue bandwidth
		{trace.CauseCompute, s, regReadEnd},     // register read + AGU
		{trace.CauseMemDep, regReadEnd, depEnd}, // memory-dependence wait
		{trace.CauseFUBusy, depEnd, start},      // functional-unit wait
		{trace.CauseCompute, start, done + 1},   // execution + write-back
		{trace.CauseCommit, done + 1, c},        // in-order / bandwidth commit wait
	}
	gap := c - prevCommit
	var covered int64
	for _, sg := range segs {
		lo, hi := sg.a, sg.b
		if lo < prevCommit {
			lo = prevCommit
		}
		if hi > c {
			hi = c
		}
		if hi > lo {
			p.stats.Stalls[sg.cause] += hi - lo
			covered += hi - lo
			if ev != nil {
				ev.Attr[sg.cause] += hi - lo
			}
		}
	}
	if rest := gap - covered; rest > 0 {
		p.stats.Stalls[fetchCause] += rest
		if ev != nil {
			ev.Attr[fetchCause] += rest
		}
	}

	if ev != nil {
		ev.Fetch, ev.Decode, ev.Issue = f, d, s
		ev.ExecStart, ev.ExecDone, ev.Commit = start, done, c
		ev.ExecCycles = e.execCycles
		ev.FU = trace.FU(e.fu)
		ev.Gap = gap
		ev.RegWait = rr - s0
		ev.ROBWait = sROB - rr
		ev.MemQueueWait = sMQ - sROB
		ev.MemDepWait = depEnd - regReadEnd
		ev.FUBusyWait = start - depEnd
	}
	return c
}
