package sim

import (
	"cambricon/internal/core"
	"cambricon/internal/trace"
)

// pipeline is a timestamp-propagation model of the Fig. 8 seven-stage
// pipeline. Instructions pass through it in program order (the machine
// executes functionally in order); each advance call computes when the
// instruction would fetch, issue, execute and commit given the structural
// resources of Table II, and accumulates stall statistics.
type pipeline struct {
	cfg   *Config
	stats *Stats

	count int64 // dynamic instruction index
	// iqPos/robPos are count modulo the respective ring sizes, maintained
	// incrementally so the per-instruction ring accesses avoid int64
	// division.
	iqPos, robPos int

	// Fetch bandwidth and branch redirect.
	fetchCycle int64
	fetchSlot  int
	redirect   int64

	// Issue queue: time each of the last IssueQueueDepth instructions
	// left the queue (ring indexed by dynamic index).
	iqIssued []int64
	// In-order issue with IssueWidth bandwidth.
	issueCycle    int64
	issueSlot     int
	lastIssueTime int64

	// Reorder buffer: commit time ring.
	robCommit []int64
	// In-order commit with IssueWidth bandwidth.
	commitCycle int64
	commitSlot  int
	lastCommit  int64

	// Memory queue ring (memory-touching instructions only). mqPos is
	// memCount modulo the ring size; mqMaxDone is an upper bound on the
	// done time of every entry ever inserted, letting the dependence scan
	// prove "no entry can move the dependence time" without touching the
	// ring.
	memCount  int64
	mqPos     int
	mqMaxDone int64
	mq        []mqEntry
	mqRetire  []int64

	// Functional-unit availability. The scalar unit and L1 port are
	// pipelined (one new op per cycle); the vector and matrix units are
	// occupied for an operation's whole duration, which is what creates
	// the inter-instruction bubbles discussed in Section V-B3.
	scalarNext int64
	l1Next     int64
	vectorFree int64
	matrixFree int64

	regReady [core.NumGPRs]int64
}

// mqEntry is one in-flight memory-queue entry. The access set is a fixed
// array (no instruction touches more than four regions, see effect), so
// recording an entry and scanning the queue for dependences never
// allocates. wmask/amask summarize the set (bit i set when space i has a
// written / any access): two entries can only conflict when one's write
// mask intersects the other's access mask, so the dependence scan skips
// the region-overlap test for the common disjoint-space case.
type mqEntry struct {
	done   int64
	accBuf [4]access
	nAcc   int
	wmask  uint8
	amask  uint8
}

// acc views the entry's access set.
func (q *mqEntry) acc() []access { return q.accBuf[:q.nAcc] }

// resizeInt64 returns buf cleared and resized to n, reusing its backing
// array when possible so Machine.Reset allocates nothing in steady state.
func resizeInt64(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

func (p *pipeline) init(cfg *Config, stats *Stats) {
	p.cfg = cfg
	p.stats = stats
	p.count = 0
	p.iqPos, p.robPos = 0, 0
	p.fetchCycle, p.fetchSlot, p.redirect = 0, 0, 0
	p.iqIssued = resizeInt64(p.iqIssued, cfg.IssueQueueDepth)
	p.issueCycle, p.issueSlot, p.lastIssueTime = 0, 0, 0
	p.robCommit = resizeInt64(p.robCommit, cfg.ROBDepth)
	p.commitCycle, p.commitSlot, p.lastCommit = 0, 0, 0
	p.memCount = 0
	p.mqPos, p.mqMaxDone = 0, 0
	if cap(p.mq) < cfg.MemQueueDepth {
		p.mq = make([]mqEntry, cfg.MemQueueDepth)
	} else {
		p.mq = p.mq[:cfg.MemQueueDepth]
		for i := range p.mq {
			p.mq[i] = mqEntry{}
		}
	}
	p.mqRetire = resizeInt64(p.mqRetire, cfg.MemQueueDepth)
	p.scalarNext, p.l1Next, p.vectorFree, p.matrixFree = 0, 0, 0, 0
	p.regReady = [core.NumGPRs]int64{}
}

// pipeState is a deep copy of the pipeline's timing state at a dynamic
// instruction boundary — every field advanceWith reads or writes, with
// the rings copied out of the live pipeline. Mid-run snapshots carry one
// so a restored machine resumes with exactly the stage clocks, in-flight
// memory-queue entries and functional-unit availability the capturing
// machine had, making the resumed remainder bit-identical to the
// uninterrupted run. A pipeState is immutable once captured.
type pipeState struct {
	count         int64
	iqPos, robPos int
	fetchCycle    int64
	fetchSlot     int
	redirect      int64
	iqIssued      []int64
	issueCycle    int64
	issueSlot     int
	lastIssueTime int64
	robCommit     []int64
	commitCycle   int64
	commitSlot    int
	lastCommit    int64
	memCount      int64
	mqPos         int
	mqMaxDone     int64
	mq            []mqEntry
	mqRetire      []int64
	scalarNext    int64
	l1Next        int64
	vectorFree    int64
	matrixFree    int64
	regReady      [core.NumGPRs]int64
}

// capture copies the pipeline's current timing state.
func (p *pipeline) capture() *pipeState {
	return &pipeState{
		count:         p.count,
		iqPos:         p.iqPos,
		robPos:        p.robPos,
		fetchCycle:    p.fetchCycle,
		fetchSlot:     p.fetchSlot,
		redirect:      p.redirect,
		iqIssued:      append([]int64(nil), p.iqIssued...),
		issueCycle:    p.issueCycle,
		issueSlot:     p.issueSlot,
		lastIssueTime: p.lastIssueTime,
		robCommit:     append([]int64(nil), p.robCommit...),
		commitCycle:   p.commitCycle,
		commitSlot:    p.commitSlot,
		lastCommit:    p.lastCommit,
		memCount:      p.memCount,
		mqPos:         p.mqPos,
		mqMaxDone:     p.mqMaxDone,
		mq:            append([]mqEntry(nil), p.mq...),
		mqRetire:      append([]int64(nil), p.mqRetire...),
		scalarNext:    p.scalarNext,
		l1Next:        p.l1Next,
		vectorFree:    p.vectorFree,
		matrixFree:    p.matrixFree,
		regReady:      p.regReady,
	}
}

// restoreState reinstates a captured timing state, re-pointing the
// pipeline at the owning machine's configuration and statistics (the
// captured ring sizes match any archEqual configuration by construction).
// Ring buffers are copied into the pipeline's existing backing arrays
// when capacity allows, so restoring allocates nothing in steady state.
func (p *pipeline) restoreState(s *pipeState, cfg *Config, stats *Stats) {
	p.cfg = cfg
	p.stats = stats
	p.count = s.count
	p.iqPos, p.robPos = s.iqPos, s.robPos
	p.fetchCycle, p.fetchSlot, p.redirect = s.fetchCycle, s.fetchSlot, s.redirect
	p.iqIssued = resizeInt64(p.iqIssued, len(s.iqIssued))
	copy(p.iqIssued, s.iqIssued)
	p.issueCycle, p.issueSlot, p.lastIssueTime = s.issueCycle, s.issueSlot, s.lastIssueTime
	p.robCommit = resizeInt64(p.robCommit, len(s.robCommit))
	copy(p.robCommit, s.robCommit)
	p.commitCycle, p.commitSlot, p.lastCommit = s.commitCycle, s.commitSlot, s.lastCommit
	p.memCount, p.mqPos, p.mqMaxDone = s.memCount, s.mqPos, s.mqMaxDone
	if cap(p.mq) < len(s.mq) {
		p.mq = make([]mqEntry, len(s.mq))
	} else {
		p.mq = p.mq[:len(s.mq)]
	}
	copy(p.mq, s.mq)
	p.mqRetire = resizeInt64(p.mqRetire, len(s.mqRetire))
	copy(p.mqRetire, s.mqRetire)
	p.scalarNext, p.l1Next = s.scalarNext, s.l1Next
	p.vectorFree, p.matrixFree = s.vectorFree, s.matrixFree
	p.regReady = s.regReady
}

// int64sEqual reports element-wise equality of two int64 slices.
func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// stateEqual reports whether the pipeline's live timing state matches a
// captured one: two pipelines in equal states produce identical timing
// for any identical instruction remainder. Memory-queue entries are
// compared semantically — done time, masks and the first nAcc access
// regions — because ring inserts copy only the live access prefix,
// leaving stale bytes in accBuf tails that the dependence scan (which
// reads acc() = accBuf[:nAcc]) never sees.
func (p *pipeline) stateEqual(s *pipeState) bool {
	if s == nil {
		return false
	}
	if p.count != s.count || p.iqPos != s.iqPos || p.robPos != s.robPos ||
		p.fetchCycle != s.fetchCycle || p.fetchSlot != s.fetchSlot || p.redirect != s.redirect ||
		p.issueCycle != s.issueCycle || p.issueSlot != s.issueSlot || p.lastIssueTime != s.lastIssueTime ||
		p.commitCycle != s.commitCycle || p.commitSlot != s.commitSlot || p.lastCommit != s.lastCommit ||
		p.memCount != s.memCount || p.mqPos != s.mqPos || p.mqMaxDone != s.mqMaxDone ||
		p.scalarNext != s.scalarNext || p.l1Next != s.l1Next ||
		p.vectorFree != s.vectorFree || p.matrixFree != s.matrixFree ||
		p.regReady != s.regReady {
		return false
	}
	if !int64sEqual(p.iqIssued, s.iqIssued) || !int64sEqual(p.robCommit, s.robCommit) ||
		!int64sEqual(p.mqRetire, s.mqRetire) {
		return false
	}
	if len(p.mq) != len(s.mq) {
		return false
	}
	for i := range p.mq {
		a, b := &p.mq[i], &s.mq[i]
		if a.done != b.done || a.nAcc != b.nAcc || a.wmask != b.wmask || a.amask != b.amask {
			return false
		}
		for k := 0; k < a.nAcc; k++ {
			if a.accBuf[k] != b.accBuf[k] {
				return false
			}
		}
	}
	return true
}

// advance threads one executed instruction through the timing model and
// returns the instruction's commit cycle.
//
// Besides computing the timestamps, advance attributes every cycle of the
// instruction's commit window — the interval between the previous commit
// and this one — to exactly one stall cause (a CPI stack), accumulated in
// Stats.Stalls. The instruction's critical path covers [fetch, commit)
// contiguously, so clipping each path segment to the window and charging
// the pre-fetch remainder to whatever gated the fetch accounts for the
// whole window; commit windows telescope across the run, which is why the
// per-cause totals sum to exactly Stats.Cycles. When ev is non-nil the
// same timestamps and attribution are recorded for the tracer; passing
// nil adds no work beyond the always-on statistics.
func (p *pipeline) advance(inst core.Instruction, e *effect, ev *trace.InstEvent) int64 {
	var srcBuf [6]uint8
	src := inst.ReadRegs(srcBuf[:0])
	dst, hasDst := inst.DestReg()
	return p.advanceWith(src, dst, hasDst, e, ev)
}

// advanceWith is advance with the instruction's source and destination
// register sets supplied by the caller. The baseline interpreter derives
// them from the instruction on every dynamic step (the advance wrapper
// above); the pre-decoded path passes the sets cached at decode time.
// Both paths share this one body, so their timing is identical by
// construction.
func (p *pipeline) advanceWith(src []uint8, dst uint8, hasDst bool, e *effect, ev *trace.InstEvent) int64 {
	i := p.count
	p.count++
	iqPos, robPos := p.iqPos, p.robPos
	if p.iqPos++; p.iqPos == len(p.iqIssued) {
		p.iqPos = 0
	}
	if p.robPos++; p.robPos == len(p.robCommit) {
		p.robPos = 0
	}
	width := p.cfg.IssueWidth
	prevCommit := p.lastCommit

	// Fetch: bounded by the redirect of an earlier taken branch, fetch
	// bandwidth, and issue-queue space (the instruction IssueQueueDepth
	// back must have left the queue). fetchCause remembers which of the
	// three gated the fetch, for attributing the window's pre-fetch
	// cycles.
	f := p.redirect
	fetchCause := trace.CauseBranch
	if p.fetchCycle >= f {
		f = p.fetchCycle
		fetchCause = trace.CauseFrontend
	}
	if i >= int64(len(p.iqIssued)) {
		if t := p.iqIssued[iqPos]; t > f {
			f = t
			fetchCause = trace.CauseIQFull
		}
	}
	// Fetch bandwidth: at most IssueWidth fetches per cycle.
	if f > p.fetchCycle {
		p.fetchCycle = f
		p.fetchSlot = 0
	} else {
		f = p.fetchCycle
	}
	p.fetchSlot++
	if p.fetchSlot >= width {
		p.fetchCycle++
		p.fetchSlot = 0
	}

	// Decode, then in-order issue behind the previous instruction.
	d := f + 1
	s0 := d
	if s0 < p.lastIssueTime {
		s0 = p.lastIssueTime
	}

	// Issue: in order, after source registers are read from the scalar
	// register file, with ROB and memory-queue space available.
	rr := s0
	for _, r := range src {
		if p.regReady[r] > rr {
			rr = p.regReady[r]
		}
	}
	p.stats.RegStallCycles += rr - s0
	sROB := rr
	if i >= int64(len(p.robCommit)) {
		if t := p.robCommit[robPos]; t > sROB {
			p.stats.ROBFullStallCycles += t - sROB
			sROB = t
		}
	}
	isMem := e.fu == fuVector || e.fu == fuMatrix || e.fu == fuScalarMem
	sMQ := sROB
	if isMem && p.memCount >= int64(len(p.mqRetire)) {
		if t := p.mqRetire[p.mqPos]; t > sMQ {
			p.stats.MemQueueFullStallCycles += t - sMQ
			sMQ = t
		}
	}
	// Issue bandwidth: at most IssueWidth issues per cycle.
	s := sMQ
	if s > p.issueCycle {
		p.issueCycle = s
		p.issueSlot = 0
	} else {
		s = p.issueCycle
	}
	p.issueSlot++
	if p.issueSlot >= width {
		p.issueCycle++
		p.issueSlot = 0
	}
	p.lastIssueTime = s
	p.iqIssued[iqPos] = s

	// Execute. regReadEnd closes the fixed post-issue pipeline stages
	// (register read, and the AGU for memory-touching instructions),
	// depEnd the memory-queue dependence wait, start the functional-unit
	// availability wait.
	var regReadEnd, depEnd, start, done int64
	switch e.fu {
	case fuScalar:
		regReadEnd = s + 1 // register-read stage
		depEnd = regReadEnd
		start = regReadEnd
		if p.scalarNext > start {
			p.stats.FUBusyStallCycles += p.scalarNext - start
			start = p.scalarNext
		}
		done = start + e.execCycles
		p.scalarNext = start + 1
	default:
		// Memory-touching instructions pass the AGU and wait in the
		// memory queue for earlier overlapping accesses.
		entry := s + 2 // register read + AGU
		regReadEnd = entry
		dep := entry
		// Scan the in-flight window for overlapping earlier accesses.
		// Entries whose done time does not exceed the entry time cannot
		// move the dependence point, so when the queue-wide done bound is
		// already behind there is nothing to scan.
		if p.mqMaxDone > dep {
			wmask, amask := accessMasks(e.acc())
			span := p.memCount
			if span > int64(len(p.mq)) {
				span = int64(len(p.mq))
			}
			pos := p.mqPos - int(span)
			if pos < 0 {
				pos += len(p.mq)
			}
			for k := int64(0); k < span; k++ {
				ent := &p.mq[pos]
				if pos++; pos == len(p.mq) {
					pos = 0
				}
				if ent.done > dep && ent.wmask&amask|ent.amask&wmask != 0 &&
					overlapsConflicting(ent.acc(), e.acc()) {
					dep = ent.done
				}
			}
		}
		p.stats.MemDepStallCycles += dep - entry
		depEnd = dep
		start = dep
		switch e.fu {
		case fuVector:
			if p.vectorFree > start {
				p.stats.FUBusyStallCycles += p.vectorFree - start
				start = p.vectorFree
			}
			done = start + e.execCycles
			p.vectorFree = done
			p.stats.VectorBusyCycles += e.execCycles
		case fuMatrix:
			if p.matrixFree > start {
				p.stats.FUBusyStallCycles += p.matrixFree - start
				start = p.matrixFree
			}
			done = start + e.execCycles
			p.matrixFree = done
			p.stats.MatrixBusyCycles += e.execCycles
		case fuScalarMem:
			if p.l1Next > start {
				p.stats.FUBusyStallCycles += p.l1Next - start
				start = p.l1Next
			}
			done = start + e.execCycles
			p.l1Next = start + 1
		}
		// Record the memory-queue entry; retirement is in order.
		idx := p.mqPos
		ent := &p.mq[idx]
		ent.done = done
		copy(ent.accBuf[:e.nAccess], e.accessBuf[:e.nAccess])
		ent.nAcc = e.nAccess
		ent.wmask, ent.amask = accessMasks(ent.acc())
		if done > p.mqMaxDone {
			p.mqMaxDone = done
		}
		retire := done
		if p.memCount > 0 {
			prevIdx := idx - 1
			if prevIdx < 0 {
				prevIdx = len(p.mqRetire) - 1
			}
			if prev := p.mqRetire[prevIdx]; prev > retire {
				retire = prev
			}
		}
		p.mqRetire[idx] = retire
		p.memCount++
		if p.mqPos++; p.mqPos == len(p.mq) {
			p.mqPos = 0
		}
	}

	// Write back.
	if hasDst {
		p.regReady[dst] = done + 1
	}

	// Commit: in order, IssueWidth per cycle.
	c := done + 1
	if c < p.lastCommit {
		c = p.lastCommit
	}
	// Commit bandwidth: at most IssueWidth commits per cycle.
	if c > p.commitCycle {
		p.commitCycle = c
		p.commitSlot = 0
	} else {
		c = p.commitCycle
	}
	p.commitSlot++
	if p.commitSlot >= width {
		p.commitCycle++
		p.commitSlot = 0
	}
	p.lastCommit = c
	p.robCommit[robPos] = c

	// Branch redirect.
	if e.branchTaken {
		r := done + int64(p.cfg.BranchPenaltyCycles)
		if r > p.redirect {
			p.redirect = r
		}
	}

	// Stall attribution: walk the critical path's commit window
	// [prevCommit, c). The path's segment boundaries are monotone and
	// contiguous (f <= s0 <= rr <= sROB <= sMQ <= s <= regReadEnd <=
	// depEnd <= start <= done+1 <= c), so advancing a cursor from
	// prevCommit boundary to boundary charges every window cycle to
	// exactly one cause; cycles before the fetch are charged to whatever
	// gated the fetch. Commit windows telescope across the run, which is
	// why the per-cause totals sum to exactly Stats.Cycles.
	w := prevCommit
	charge := func(cause trace.Cause, b int64) {
		if b > c {
			b = c
		}
		if b > w {
			p.stats.Stalls[cause] += b - w
			if ev != nil {
				ev.Attr[cause] += b - w
			}
			w = b
		}
	}
	charge(fetchCause, f)                  // pre-fetch wait
	charge(trace.CauseFrontend, s0)        // fetch + decode + in-order issue
	charge(trace.CauseRegDep, rr)          // source-register wait
	charge(trace.CauseROBFull, sROB)       // reorder-buffer wait
	charge(trace.CauseMemQueueFull, sMQ)   // memory-queue-space wait
	charge(trace.CauseFrontend, s)         // issue bandwidth
	charge(trace.CauseCompute, regReadEnd) // register read + AGU
	charge(trace.CauseMemDep, depEnd)      // memory-dependence wait
	charge(trace.CauseFUBusy, start)       // functional-unit wait
	charge(trace.CauseCompute, done+1)     // execution + write-back
	charge(trace.CauseCommit, c)           // in-order / bandwidth commit wait

	if ev != nil {
		ev.Fetch, ev.Decode, ev.Issue = f, d, s
		ev.ExecStart, ev.ExecDone, ev.Commit = start, done, c
		ev.ExecCycles = e.execCycles
		ev.FU = trace.FU(e.fu)
		ev.Gap = c - prevCommit
		ev.RegWait = rr - s0
		ev.ROBWait = sROB - rr
		ev.MemQueueWait = sMQ - sROB
		ev.MemDepWait = depEnd - regReadEnd
		ev.FUBusyWait = start - depEnd
	}
	return c
}
