package sim

import (
	"strings"
	"testing"

	"cambricon/internal/asm"
)

// mixedFUProgram alternates independent vector and matrix operations, the
// pattern that exposes memory-queue capacity: with a deep queue the two
// functional units overlap, with a single-entry queue each memory
// instruction must retire before the next can issue.
func mixedFUProgram() string {
	var b strings.Builder
	b.WriteString(`
	SMOVE $1, #256
	SMOVE $2, #1024
	SMOVE $10, #0
	SMOVE $11, #2048
	SMOVE $20, #0
	SMOVE $21, #8192
`)
	for i := 0; i < 16; i++ {
		b.WriteString("\tRV    $10, $1\n")
		b.WriteString("\tMMS   $21, $2, $20, #128\n")
	}
	return b.String()
}

func runWith(t *testing.T, cfg Config, src string) Stats {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := mustNew(t, cfg)
	m.LoadProgram(p.Instructions)
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestMemQueueCapacityLimitsOverlap(t *testing.T) {
	deep := DefaultConfig()
	shallow := DefaultConfig()
	shallow.MemQueueDepth = 1
	src := mixedFUProgram()
	sd := runWith(t, deep, src)
	ss := runWith(t, shallow, src)
	if ss.Cycles <= sd.Cycles {
		t.Errorf("single-entry memory queue (%d cycles) should be slower than 32-entry (%d)",
			ss.Cycles, sd.Cycles)
	}
	if ss.MemQueueFullStallCycles == 0 {
		t.Error("shallow queue should report memory-queue-full stalls")
	}
	if sd.MemQueueFullStallCycles != 0 {
		t.Errorf("deep queue should not fill on 32 in-flight ops, got %d stall cycles",
			sd.MemQueueFullStallCycles)
	}
}

func TestROBCapacityLimitsRunahead(t *testing.T) {
	// One long matrix op followed by many independent scalars: scalars
	// execute quickly but cannot commit past the matrix op; a tiny ROB
	// throttles issue.
	var b strings.Builder
	b.WriteString(`
	SMOVE $1, #256
	SMOVE $10, #0
	SMOVE $20, #0
	SMOVE $21, #8192
	RV    $10, $1
	MMV   $21, $1, $20, $10, $1
`)
	for i := 0; i < 64; i++ {
		b.WriteString("\tSADD $30, $30, #1\n")
	}
	src := b.String()
	wide := DefaultConfig()
	tiny := DefaultConfig()
	tiny.ROBDepth = 2
	sw := runWith(t, wide, src)
	st := runWith(t, tiny, src)
	if st.Cycles <= sw.Cycles {
		t.Errorf("2-entry ROB (%d cycles) should be slower than 64-entry (%d)",
			st.Cycles, sw.Cycles)
	}
	if st.ROBFullStallCycles == 0 {
		t.Error("tiny ROB should report full stalls")
	}
}

func TestIssueQueueDepthBoundsFetch(t *testing.T) {
	// The issue queue bounds fetch-ahead; with a single-entry queue the
	// front end cannot hide the decode stage behind issue stalls.
	src := mixedFUProgram()
	deep := DefaultConfig()
	shallow := DefaultConfig()
	shallow.IssueQueueDepth = 1
	sd := runWith(t, deep, src)
	ss := runWith(t, shallow, src)
	if ss.Cycles < sd.Cycles {
		t.Errorf("1-entry issue queue (%d) should not beat 24-entry (%d)", ss.Cycles, sd.Cycles)
	}
}

func TestBranchPenaltyConfigurable(t *testing.T) {
	loop := `
	SMOVE $1, #64
t:	SADD  $1, $1, #-1
	CB    #t, $1
`
	fast := DefaultConfig()
	fast.BranchPenaltyCycles = 0
	slow := DefaultConfig()
	slow.BranchPenaltyCycles = 16
	sf := runWith(t, fast, loop)
	ss := runWith(t, slow, loop)
	if ss.Cycles <= sf.Cycles {
		t.Errorf("16-cycle redirect (%d) should cost more than 0-cycle (%d)", ss.Cycles, sf.Cycles)
	}
}

func TestCordicCostConfigurable(t *testing.T) {
	src := `
	SMOVE $1, #4096
	SMOVE $10, #0
	SMOVE $11, #8192
	RV    $10, $1
	VEXP  $11, $1, $10
`
	cheap := DefaultConfig()
	cheap.CordicBeatCycles = 1
	costly := DefaultConfig()
	costly.CordicBeatCycles = 8
	sc := runWith(t, cheap, src)
	se := runWith(t, costly, src)
	if se.Cycles <= sc.Cycles {
		t.Errorf("8-cycle CORDIC beats (%d) should cost more than 1-cycle (%d)", se.Cycles, sc.Cycles)
	}
}

func TestConfigValidationFillsDefaults(t *testing.T) {
	var cfg Config
	cfg.VectorSpadBytes = 1024
	cfg.MatrixSpadBytes = 1024
	cfg.BankBytes = 64
	cfg.SpadBanks = 1
	cfg.MainMemBytes = 4096
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Config()
	if got.IssueWidth < 1 || got.ROBDepth < 1 || got.ClockHz <= 0 ||
		got.MaxDynamicInstructions <= 0 {
		t.Errorf("validate left zero fields: %+v", got)
	}
	// The degenerate machine still runs a trivial program.
	p := mustAssemble(t, "\tSMOVE $1, #1\n")
	m.LoadProgram(p.Instructions)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
}
