package sim

import (
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"cambricon/internal/core"
	"cambricon/internal/fixed"
)

// refInterp is an independently-written, deliberately naive interpreter for
// the computational and data-transfer subset of the ISA. Differential
// testing against the pipelined Machine is the software analogue of
// golden-model-vs-RTL verification: the two implementations share only the
// fixed-point datapath spec (internal/fixed) and must agree bit for bit on
// every architectural effect.
type refInterp struct {
	gpr   [core.NumGPRs]int32
	vspad []byte
	mspad []byte
	main  []byte
	rng   uint64
}

func newRefInterp(seed uint64) *refInterp {
	if seed == 0 {
		seed = 1
	}
	return &refInterp{
		vspad: make([]byte, core.VectorSpadBytes),
		mspad: make([]byte, core.MatrixSpadBytes),
		main:  make([]byte, 1<<20),
		rng:   seed,
	}
}

func (r *refInterp) rand() fixed.Num {
	x := r.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.rng = x
	return fixed.Num((x * 0x2545f4914f6cdd1d) >> 56)
}

func (r *refInterp) readVec(buf []byte, addr, n int) []fixed.Num {
	return fixed.FromBytes(buf[addr:], n)
}

func (r *refInterp) writeVec(buf []byte, addr int, v []fixed.Num) {
	fixed.ToBytes(v, buf[addr:])
}

// step interprets one instruction (no control flow in the tested subset).
func (r *refInterp) step(t *testing.T, inst core.Instruction) {
	t.Helper()
	tail := func(idx int) int32 {
		if inst.TailImm {
			return inst.Imm
		}
		return r.gpr[inst.R[idx]]
	}
	addr := func(i int) int { return int(r.gpr[inst.R[i]]) }
	size := func(i int) int { return int(r.gpr[inst.R[i]]) }
	switch inst.Op {
	case core.SMOVE:
		r.gpr[inst.R[0]] = tail(1)
	case core.SADD:
		r.gpr[inst.R[0]] = r.gpr[inst.R[1]] + tail(2)
	case core.SSUB:
		r.gpr[inst.R[0]] = r.gpr[inst.R[1]] - tail(2)
	case core.SMUL:
		r.gpr[inst.R[0]] = r.gpr[inst.R[1]] * tail(2)
	case core.SDIV:
		r.gpr[inst.R[0]] = r.gpr[inst.R[1]] / tail(2)
	case core.SEXP:
		r.gpr[inst.R[0]] = int32(fixed.Exp(fixed.Num(tail(1))))
	case core.SLOG:
		r.gpr[inst.R[0]] = int32(fixed.Log(fixed.Num(tail(1))))
	case core.SGT:
		r.gpr[inst.R[0]] = b2i(r.gpr[inst.R[1]] > tail(2))
	case core.SE:
		r.gpr[inst.R[0]] = b2i(r.gpr[inst.R[1]] == tail(2))
	case core.SAND:
		r.gpr[inst.R[0]] = b2i(r.gpr[inst.R[1]] != 0 && tail(2) != 0)

	case core.SLOAD:
		a := addr(1) + int(inst.Imm)
		b := r.main[a : a+4]
		r.gpr[inst.R[0]] = int32(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
	case core.SSTORE:
		a := addr(1) + int(inst.Imm)
		v := uint32(r.gpr[inst.R[0]])
		r.main[a], r.main[a+1], r.main[a+2], r.main[a+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)

	case core.VLOAD, core.MLOAD:
		dst := r.vspad
		if inst.Op == core.MLOAD {
			dst = r.mspad
		}
		copy(dst[addr(0):addr(0)+2*size(1)], r.main[addr(2)+int(inst.Imm):])
	case core.VSTORE, core.MSTORE:
		src := r.vspad
		if inst.Op == core.MSTORE {
			src = r.mspad
		}
		copy(r.main[addr(2)+int(inst.Imm):], src[addr(0):addr(0)+2*size(1)])
	case core.VMOVE, core.MMOVE:
		buf := r.vspad
		if inst.Op == core.MMOVE {
			buf = r.mspad
		}
		tmp := make([]byte, 2*size(1))
		copy(tmp, buf[addr(2):])
		copy(buf[addr(0):], tmp)

	case core.VAV, core.VSV, core.VMV, core.VDV, core.VGT, core.VE,
		core.VAND, core.VOR, core.VGTM:
		n := size(1)
		a := r.readVec(r.vspad, addr(2), n)
		b := r.readVec(r.vspad, addr(3), n)
		out := make([]fixed.Num, n)
		for i := range out {
			switch inst.Op {
			case core.VAV:
				out[i] = fixed.Add(a[i], b[i])
			case core.VSV:
				out[i] = fixed.Sub(a[i], b[i])
			case core.VMV:
				out[i] = fixed.Mul(a[i], b[i])
			case core.VDV:
				out[i] = fixed.Div(a[i], b[i])
			case core.VGT:
				out[i] = n2b(a[i] > b[i])
			case core.VE:
				out[i] = n2b(a[i] == b[i])
			case core.VAND:
				out[i] = n2b(a[i] != 0 && b[i] != 0)
			case core.VOR:
				out[i] = n2b(a[i] != 0 || b[i] != 0)
			case core.VGTM:
				out[i] = a[i]
				if b[i] > a[i] {
					out[i] = b[i]
				}
			}
		}
		r.writeVec(r.vspad, addr(0), out)
	case core.VAS:
		n := size(1)
		a := r.readVec(r.vspad, addr(2), n)
		s := fixed.Num(tail(3))
		out := make([]fixed.Num, n)
		for i := range out {
			out[i] = fixed.Add(a[i], s)
		}
		r.writeVec(r.vspad, addr(0), out)
	case core.VEXP, core.VLOG, core.VNOT:
		n := size(1)
		a := r.readVec(r.vspad, addr(2), n)
		out := make([]fixed.Num, n)
		for i := range out {
			switch inst.Op {
			case core.VEXP:
				out[i] = fixed.Exp(a[i])
			case core.VLOG:
				out[i] = fixed.Log(a[i])
			case core.VNOT:
				out[i] = n2b(a[i] == 0)
			}
		}
		r.writeVec(r.vspad, addr(0), out)
	case core.VDOT:
		n := size(1)
		r.gpr[inst.R[0]] = int32(fixed.Dot(
			r.readVec(r.vspad, addr(2), n), r.readVec(r.vspad, addr(3), n)))
	case core.RV:
		n := size(1)
		out := make([]fixed.Num, n)
		for i := range out {
			out[i] = r.rand()
		}
		r.writeVec(r.vspad, addr(0), out)
	case core.VMAX, core.VMIN:
		n := size(1)
		a := r.readVec(r.vspad, addr(2), n)
		best := a[0]
		for _, v := range a[1:] {
			if (inst.Op == core.VMAX && v > best) || (inst.Op == core.VMIN && v < best) {
				best = v
			}
		}
		r.gpr[inst.R[0]] = int32(best)

	case core.MMV, core.VMM:
		outN, inN := size(1), size(4)
		rows, cols := outN, inN
		if inst.Op == core.VMM {
			rows, cols = inN, outN
		}
		mat := r.readVec(r.mspad, addr(2), rows*cols)
		vin := r.readVec(r.vspad, addr(3), inN)
		out := make([]fixed.Num, outN)
		if inst.Op == core.MMV {
			for i := 0; i < outN; i++ {
				out[i] = fixed.Dot(mat[i*cols:(i+1)*cols], vin)
			}
		} else {
			for j := 0; j < outN; j++ {
				var acc fixed.Acc
				for i := 0; i < inN; i++ {
					acc += fixed.MulAcc(vin[i], mat[i*cols+j])
				}
				out[j] = fixed.AccSat(acc)
			}
		}
		r.writeVec(r.vspad, addr(0), out)
	case core.MMS:
		n := size(1)
		a := r.readVec(r.mspad, addr(2), n)
		s := fixed.Num(tail(3))
		out := make([]fixed.Num, n)
		for i := range out {
			out[i] = fixed.Mul(a[i], s)
		}
		r.writeVec(r.mspad, addr(0), out)
	case core.OP:
		n0, n1 := size(2), size(4)
		v0 := r.readVec(r.vspad, addr(1), n0)
		v1 := r.readVec(r.vspad, addr(3), n1)
		out := make([]fixed.Num, n0*n1)
		for i := 0; i < n0; i++ {
			for j := 0; j < n1; j++ {
				out[i*n1+j] = fixed.Mul(v0[i], v1[j])
			}
		}
		r.writeVec(r.mspad, addr(0), out)
	case core.MAM, core.MSM:
		n := size(1)
		a := r.readVec(r.mspad, addr(2), n)
		b := r.readVec(r.mspad, addr(3), n)
		out := make([]fixed.Num, n)
		for i := range out {
			if inst.Op == core.MAM {
				out[i] = fixed.Add(a[i], b[i])
			} else {
				out[i] = fixed.Sub(a[i], b[i])
			}
		}
		r.writeVec(r.mspad, addr(0), out)
	default:
		t.Fatalf("refInterp: unexpected opcode %v", inst.Op)
	}
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

func n2b(b bool) fixed.Num {
	if b {
		return fixed.One
	}
	return 0
}

// Register pools for random program generation.
const (
	dpSizeReg = 0  // 0..3: sizes (1..64)
	dpVReg    = 8  // 8..15: vector scratchpad addresses
	dpMReg    = 16 // 16..23: matrix scratchpad addresses
	dpBaseReg = 24 // 24..27: main-memory bases
	dpValReg  = 32 // 32..47: scalar values
	dpDstReg  = 48 // 48..60: scalar destinations
)

// randDiffInst draws one instruction from the memory-safe computational
// subset. Every address pool is bounded so that the largest possible
// operand (64x64 matrix) stays in range.
func randDiffInst(rng *rand.Rand) core.Instruction {
	pick := func(base, n int) uint8 { return uint8(base + rng.Intn(n)) }
	sizeR := func() uint8 { return pick(dpSizeReg, 4) }
	vR := func() uint8 { return pick(dpVReg, 8) }
	mR := func() uint8 { return pick(dpMReg, 8) }
	baseR := func() uint8 { return pick(dpBaseReg, 4) }
	valR := func() uint8 { return pick(dpValReg, 16) }
	dstR := func() uint8 { return pick(dpDstReg, 13) }
	imm16 := func() int32 { return int32(rng.Intn(1<<16) - 1<<15) }

	switch rng.Intn(20) {
	case 0:
		return core.NewRI(core.SMOVE, imm16(), valR())
	case 1:
		ops := []core.Opcode{core.SADD, core.SSUB, core.SMUL, core.SGT, core.SE, core.SAND}
		return core.NewR(ops[rng.Intn(len(ops))], dstR(), valR(), valR())
	case 2:
		// SDIV only with a non-zero immediate divisor.
		d := int32(rng.Intn(100) + 1)
		if rng.Intn(2) == 0 {
			d = -d
		}
		return core.NewRI(core.SDIV, d, dstR(), valR())
	case 3:
		op := core.SEXP
		if rng.Intn(2) == 0 {
			op = core.SLOG
		}
		return core.NewR(op, dstR(), valR())
	case 4:
		return core.NewRI(core.SLOAD, int32(rng.Intn(1024)*4), dstR(), baseR())
	case 5:
		return core.NewRI(core.SSTORE, int32(rng.Intn(1024)*4), valR(), baseR())
	case 6:
		op := core.VLOAD
		if rng.Intn(2) == 0 {
			op = core.VSTORE
		}
		return core.NewRI(op, int32(rng.Intn(2048)*2), vR(), sizeR(), baseR())
	case 7:
		op := core.MLOAD
		if rng.Intn(2) == 0 {
			op = core.MSTORE
		}
		return core.NewRI(op, int32(rng.Intn(2048)*2), mR(), sizeR(), baseR())
	case 8:
		return core.NewR(core.VMOVE, vR(), sizeR(), vR())
	case 9:
		return core.NewR(core.MMOVE, mR(), sizeR(), mR())
	case 10:
		ops := []core.Opcode{core.VAV, core.VSV, core.VMV, core.VDV,
			core.VGT, core.VE, core.VAND, core.VOR, core.VGTM}
		return core.NewR(ops[rng.Intn(len(ops))], vR(), sizeR(), vR(), vR())
	case 11:
		return core.NewRI(core.VAS, imm16(), vR(), sizeR(), vR())
	case 12:
		ops := []core.Opcode{core.VEXP, core.VLOG, core.VNOT}
		return core.NewR(ops[rng.Intn(len(ops))], vR(), sizeR(), vR())
	case 13:
		return core.NewR(core.VDOT, dstR(), sizeR(), vR(), vR())
	case 14:
		return core.NewR(core.RV, vR(), sizeR())
	case 15:
		op := core.VMAX
		if rng.Intn(2) == 0 {
			op = core.VMIN
		}
		return core.NewR(op, dstR(), sizeR(), vR())
	case 16:
		op := core.MMV
		if rng.Intn(2) == 0 {
			op = core.VMM
		}
		return core.NewR(op, vR(), sizeR(), mR(), vR(), sizeR())
	case 17:
		return core.NewRI(core.MMS, imm16(), mR(), sizeR(), mR())
	case 18:
		return core.NewR(core.OP, mR(), vR(), sizeR(), vR(), sizeR())
	default:
		op := core.MAM
		if rng.Intn(2) == 0 {
			op = core.MSM
		}
		return core.NewR(op, mR(), sizeR(), mR(), mR())
	}
}

// TestDifferentialAgainstReferenceInterpreter runs random straight-line
// programs on both implementations and compares every architectural bit.
func TestDifferentialAgainstReferenceInterpreter(t *testing.T) {
	const (
		trials  = 150
		instLen = 200
	)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1000))
		seed := rng.Uint64() | 1

		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.MainMemBytes = 1 << 20 // the generator stays far below 1 MB
		m := mustNew(t, cfg)
		ref := newRefInterp(seed)

		// Identical random register setup: sizes 1..64, even scratchpad
		// addresses in safe windows, even main bases, arbitrary scalars.
		setGPR := func(r uint8, v int32) {
			m.SetGPR(r, uint32(v))
			ref.gpr[r] = v
		}
		for i := 0; i < 4; i++ {
			setGPR(uint8(dpSizeReg+i), int32(rng.Intn(64)+1))
		}
		for i := 0; i < 8; i++ {
			setGPR(uint8(dpVReg+i), int32(rng.Intn(8192)*2))
		}
		for i := 0; i < 8; i++ {
			setGPR(uint8(dpMReg+i), int32(rng.Intn(16384)*2))
		}
		for i := 0; i < 4; i++ {
			setGPR(uint8(dpBaseReg+i), int32(rng.Intn(8192)*2))
		}
		for i := 0; i < 16; i++ {
			setGPR(uint8(dpValReg+i), int32(rng.Uint32()>>16)-1<<15)
		}

		prog := make([]core.Instruction, instLen)
		for i := range prog {
			prog[i] = randDiffInst(rng)
		}
		m.LoadProgram(prog)
		if _, err := m.Run(); err != nil {
			t.Fatalf("trial %d: machine error: %v\n(program: %v)", trial, err, prog)
		}
		for _, inst := range prog {
			ref.step(t, inst)
		}

		// Compare all architectural state.
		for r := 0; r < core.NumGPRs; r++ {
			if int32(m.GPR(uint8(r))) != ref.gpr[r] {
				t.Fatalf("trial %d: $%d = %d, reference %d", trial, r,
					int32(m.GPR(uint8(r))), ref.gpr[r])
			}
		}
		compareRegion(t, trial, "vspad", m, ref.vspad[:40<<10], func(a, n int) []fixed.Num {
			v, err := m.ReadVectorSpad(a, n)
			if err != nil {
				t.Fatal(err)
			}
			return v
		})
		compareRegion(t, trial, "mspad", m, ref.mspad[:96<<10], func(a, n int) []fixed.Num {
			v, err := m.ReadMatrixSpad(a, n)
			if err != nil {
				t.Fatal(err)
			}
			return v
		})
		compareRegion(t, trial, "main", m, ref.main[:64<<10], func(a, n int) []fixed.Num {
			v, err := m.ReadMainNums(a, n)
			if err != nil {
				t.Fatal(err)
			}
			return v
		})
	}
}

// compareRegion checks one memory space element by element.
func compareRegion(t *testing.T, trial int, name string, m *Machine,
	want []byte, read func(addr, n int) []fixed.Num) {
	t.Helper()
	const chunk = 4096
	for base := 0; base < len(want); base += 2 * chunk {
		got := read(base, chunk)
		ref := fixed.FromBytes(want[base:], chunk)
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("trial %d: %s[%d] = %v, reference %v",
					trial, name, base+2*i, got[i], ref[i])
			}
		}
	}
}

// comparePaths runs one program through the per-step decode loop and the
// pre-decoded fused dispatch loop under identical configurations and
// fails the test unless every architectural bit and every statistic
// agrees. A third machine runs the decoded program with an instruction
// trace attached (written to io.Discard) and a never-fired watchdog
// armed, which steers it down the observed slow loop — so one call
// covers both decoded dispatchers against the baseline.
func comparePaths(t *testing.T, label string, cfg Config, prog []core.Instruction,
	setup func(set func(r uint8, v int32))) {
	t.Helper()
	base := mustNew(t, cfg)
	tight := mustNew(t, cfg)
	slowCfg := cfg
	slowCfg.MaxCycles = 1 << 40 // arms the watchdog without ever tripping it
	slow := mustNew(t, slowCfg)
	slow.SetTrace(io.Discard) // steers the decoded dispatch down the slow loop
	if setup != nil {
		setup(func(r uint8, v int32) {
			base.SetGPR(r, uint32(v))
			tight.SetGPR(r, uint32(v))
			slow.SetGPR(r, uint32(v))
		})
	}
	dp, err := Predecode(prog)
	if err != nil {
		t.Fatalf("%s: predecode: %v", label, err)
	}
	base.LoadProgram(prog)
	tight.LoadDecoded(dp)
	slow.LoadDecoded(dp)

	wantStats, wantErr := base.Run()
	for _, alt := range []struct {
		name string
		m    *Machine
	}{{"tight", tight}, {"slow", slow}} {
		gotStats, gotErr := alt.m.Run()
		if (wantErr == nil) != (gotErr == nil) ||
			(wantErr != nil && wantErr.Error() != gotErr.Error()) {
			t.Fatalf("%s/%s: errors diverge: baseline %v, predecoded %v",
				label, alt.name, wantErr, gotErr)
		}
		if !reflect.DeepEqual(wantStats, gotStats) {
			t.Fatalf("%s/%s: stats diverge:\nbaseline   %+v\npredecoded %+v",
				label, alt.name, wantStats, gotStats)
		}
		for r := 0; r < core.NumGPRs; r++ {
			if base.GPR(uint8(r)) != alt.m.GPR(uint8(r)) {
				t.Fatalf("%s/%s: $%d = %d, baseline %d", label, alt.name, r,
					int32(alt.m.GPR(uint8(r))), int32(base.GPR(uint8(r))))
			}
		}
		compareMachineSpaces(t, label+"/"+alt.name, base, alt.m)
	}
}

// compareMachineSpaces checks every byte of both scratchpads and the
// first 64 KB of main memory between two machines.
func compareMachineSpaces(t *testing.T, label string, want, got *Machine) {
	t.Helper()
	spaces := []struct {
		name  string
		bytes int
		read  func(m *Machine, a, n int) ([]fixed.Num, error)
	}{
		{"vspad", core.VectorSpadBytes, (*Machine).ReadVectorSpad},
		{"mspad", core.MatrixSpadBytes, (*Machine).ReadMatrixSpad},
		{"main", 64 << 10, (*Machine).ReadMainNums},
	}
	const chunk = 4096
	for _, sp := range spaces {
		for base := 0; base < sp.bytes; base += 2 * chunk {
			w, err := sp.read(want, base, chunk)
			if err != nil {
				t.Fatal(err)
			}
			g, err := sp.read(got, base, chunk)
			if err != nil {
				t.Fatal(err)
			}
			for i := range w {
				if w[i] != g[i] {
					t.Fatalf("%s: %s[%d] = %v, baseline %v",
						label, sp.name, base+2*i, g[i], w[i])
				}
			}
		}
	}
}

// TestPredecodedISATour runs the 43-instruction ISA tour through the
// baseline and both pre-decoded dispatchers and demands bit-identical
// results. The tour's vector section contains back-to-back vector ops
// and an MMV, so the fusion plan is non-trivial — superinstruction
// execution, not just flat decoded dispatch, is under test.
func TestPredecodedISATour(t *testing.T) {
	p := mustAssemble(t, tourSrc)
	dp, err := Predecode(p.Instructions)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Fusion().Total() == 0 {
		t.Fatal("ISA tour fused no pairs; the superinstruction path is untested")
	}
	comparePaths(t, "isa-tour", DefaultConfig(), p.Instructions, nil)
}

// TestPredecodedDifferentialCorpus replays the random straight-line
// corpus of TestDifferentialAgainstReferenceInterpreter through the
// pre-decoded dispatchers. The baseline loop is already proven against
// the naive reference interpreter above, so agreement here extends the
// differential chain to the fused dispatch loops.
func TestPredecodedDifferentialCorpus(t *testing.T) {
	const (
		trials  = 60
		instLen = 200
	)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1000))
		seed := rng.Uint64() | 1

		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.MainMemBytes = 1 << 20

		// Draw the register setup before the program, in the same order
		// as the reference-interpreter test, so the rng stream — and
		// therefore the corpus — is identical between the two tests.
		type regInit struct {
			r uint8
			v int32
		}
		var inits []regInit
		for i := 0; i < 4; i++ {
			inits = append(inits, regInit{uint8(dpSizeReg + i), int32(rng.Intn(64) + 1)})
		}
		for i := 0; i < 8; i++ {
			inits = append(inits, regInit{uint8(dpVReg + i), int32(rng.Intn(8192) * 2)})
		}
		for i := 0; i < 8; i++ {
			inits = append(inits, regInit{uint8(dpMReg + i), int32(rng.Intn(16384) * 2)})
		}
		for i := 0; i < 4; i++ {
			inits = append(inits, regInit{uint8(dpBaseReg + i), int32(rng.Intn(8192) * 2)})
		}
		for i := 0; i < 16; i++ {
			inits = append(inits, regInit{uint8(dpValReg + i), int32(rng.Uint32()>>16) - 1<<15})
		}
		prog := make([]core.Instruction, instLen)
		for i := range prog {
			prog[i] = randDiffInst(rng)
		}
		comparePaths(t, fmt.Sprintf("corpus-%d", trial), cfg, prog,
			func(set func(r uint8, v int32)) {
				for _, in := range inits {
					set(in.r, in.v)
				}
			})
	}
}

// TestPredecodedControlFlow runs random counter-controlled loops through
// all three dispatchers. Backward branches land on arbitrary body
// instructions, so this is the test that catches a fusion plan pairing
// across a branch target (a jump into the middle of a superinstruction
// must still execute the consumer half exactly once).
func TestPredecodedControlFlow(t *testing.T) {
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 7700))
		cfg := DefaultConfig()
		cfg.Seed = rng.Uint64() | 1
		cfg.MainMemBytes = 1 << 20

		iters := rng.Intn(6) + 2
		bodyLen := rng.Intn(12) + 3
		prog := make([]core.Instruction, 0, bodyLen+2)
		for i := 0; i < bodyLen; i++ {
			prog = append(prog, randDiffInst(rng))
		}
		prog = append(prog,
			core.NewRI(core.SADD, -1, 62, 62),
			core.NewRI(core.CB, int32(-(bodyLen+1)), 62),
		)
		comparePaths(t, fmt.Sprintf("loop-%d", trial), cfg, prog,
			func(set func(r uint8, v int32)) {
				for i := 0; i < 4; i++ {
					set(uint8(dpSizeReg+i), int32(rng.Intn(32)+1))
				}
				for i := 0; i < 8; i++ {
					set(uint8(dpVReg+i), int32(rng.Intn(4096)*2))
				}
				for i := 0; i < 8; i++ {
					set(uint8(dpMReg+i), int32(rng.Intn(4096)*2))
				}
				for i := 0; i < 4; i++ {
					set(uint8(dpBaseReg+i), int32(rng.Intn(4096)*2))
				}
				for i := 0; i < 16; i++ {
					set(uint8(dpValReg+i), int32(rng.Intn(1<<16))-1<<15)
				}
				set(62, int32(iters))
			})
	}
}

// TestDifferentialWithControlFlow extends the differential check to bounded
// loops: a counter-controlled loop wraps a random straight-line body, and
// the reference interpreter executes the same dynamic stream (it unrolls
// the loop the same number of times).
func TestDifferentialWithControlFlow(t *testing.T) {
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 9000))
		seed := rng.Uint64() | 1

		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.MainMemBytes = 1 << 20
		m := mustNew(t, cfg)
		ref := newRefInterp(seed)

		setGPR := func(r uint8, v int32) {
			m.SetGPR(r, uint32(v))
			ref.gpr[r] = v
		}
		for i := 0; i < 4; i++ {
			setGPR(uint8(dpSizeReg+i), int32(rng.Intn(32)+1))
		}
		for i := 0; i < 8; i++ {
			setGPR(uint8(dpVReg+i), int32(rng.Intn(4096)*2))
		}
		for i := 0; i < 8; i++ {
			setGPR(uint8(dpMReg+i), int32(rng.Intn(4096)*2))
		}
		for i := 0; i < 4; i++ {
			setGPR(uint8(dpBaseReg+i), int32(rng.Intn(4096)*2))
		}
		for i := 0; i < 16; i++ {
			setGPR(uint8(dpValReg+i), int32(rng.Intn(1<<16))-1<<15)
		}

		// Loop structure: $62 = iterations; body; SADD $62 -1; CB top.
		iters := rng.Intn(6) + 2
		setGPR(62, int32(iters))
		bodyLen := rng.Intn(12) + 3
		body := make([]core.Instruction, bodyLen)
		for i := range body {
			body[i] = randDiffInst(rng)
		}
		prog := append([]core.Instruction{}, body...)
		prog = append(prog,
			core.NewRI(core.SADD, -1, 62, 62),
			core.NewRI(core.CB, int32(-(bodyLen+1)), 62),
		)

		m.LoadProgram(prog)
		if _, err := m.Run(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for it := 0; it < iters; it++ {
			for _, inst := range body {
				ref.step(t, inst)
			}
			ref.gpr[62]--
		}
		for r := 0; r < core.NumGPRs; r++ {
			if int32(m.GPR(uint8(r))) != ref.gpr[r] {
				t.Fatalf("trial %d: $%d = %d, reference %d", trial, r,
					int32(m.GPR(uint8(r))), ref.gpr[r])
			}
		}
		compareRegion(t, trial, "vspad", m, ref.vspad[:16<<10], func(a, n int) []fixed.Num {
			v, err := m.ReadVectorSpad(a, n)
			if err != nil {
				t.Fatal(err)
			}
			return v
		})
		compareRegion(t, trial, "main", m, ref.main[:32<<10], func(a, n int) []fixed.Num {
			v, err := m.ReadMainNums(a, n)
			if err != nil {
				t.Fatal(err)
			}
			return v
		})
	}
}
