package sim

import (
	"strings"
	"testing"
)

// TestValidateDefaultsHotPathDivisors: every divisor the timing model uses
// (ceilDiv arguments, BankBytes line math, DMA rate) must be defaulted to a
// positive value by validate, so ceilDiv needs no per-call clamp.
func TestValidateDefaultsHotPathDivisors(t *testing.T) {
	var c Config // all zero
	if err := c.validate(); err != nil {
		t.Fatal(err)
	}
	positive := map[string]int{
		"VectorLanes":      c.VectorLanes,
		"MatrixBlocks":     c.MatrixBlocks,
		"MACsPerBlock":     c.MACsPerBlock,
		"BankBytes":        c.BankBytes,
		"SpadBanks":        c.SpadBanks,
		"DMABytesPerCycle": c.DMABytesPerCycle,
		"CordicBeatCycles": c.CordicBeatCycles,
		"DivBeatCycles":    c.DivBeatCycles,
		"VectorSpadBytes":  c.VectorSpadBytes,
		"MatrixSpadBytes":  c.MatrixSpadBytes,
		"MainMemBytes":     c.MainMemBytes,
	}
	for name, v := range positive {
		if v <= 0 {
			t.Errorf("validate left %s = %d", name, v)
		}
	}
	// A fully-zero config must now build a working machine (previously the
	// scratchpad constructor panicked on zero geometry).
	if _, err := New(Config{}); err != nil {
		t.Errorf("New(zero config): %v", err)
	}
}

func TestValidateRejectsNonPowerOfTwoBanks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpadBanks = 3
	_, err := New(cfg)
	if err == nil {
		t.Fatal("SpadBanks=3 accepted")
	}
	if !strings.Contains(err.Error(), "power of two") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestValidateNegativeOverheadsClamped(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HTreeOverhead = -5
	cfg.DMAStartupCycles = -1
	cfg.BranchPenaltyCycles = -2
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Config()
	if got.HTreeOverhead != 0 || got.DMAStartupCycles != 0 || got.BranchPenaltyCycles != 0 {
		t.Errorf("negative overheads not clamped: %+v", got)
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct {
		a, b int
		want int64
	}{
		{0, 32, 0},
		{1, 32, 1},
		{32, 32, 1},
		{33, 32, 2},
		{64, 32, 2},
		{1023, 32, 32},
		{1024, 32, 32},
		{1025, 32, 33},
		{7, 1, 7},
	}
	for _, c := range cases {
		if got := ceilDiv(c.a, c.b); got != c.want {
			t.Errorf("ceilDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestDegenerateGeometryStillRuns drives a vector+matrix kernel through a
// machine built from a config with every hot-path divisor left zero: the
// validated defaults must keep ceilDiv's divisors positive end to end.
func TestDegenerateGeometryStillRuns(t *testing.T) {
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	prog := mustAssemble(t, `
	SMOVE $1, #32
	SMOVE $2, #0
	SMOVE $3, #4096
	SMOVE $4, #0
	RV    $2, $1
	VAV   $3, $1, $2, $2
	MMV   $3, $1, $4, $2, $1
`)
	m.LoadProgram(prog.Instructions)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
}
