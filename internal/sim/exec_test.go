package sim

import (
	"errors"
	"math"
	"strings"
	"testing"

	"cambricon/internal/asm"
	"cambricon/internal/fixed"
)

// run assembles src, applies setup, runs, and returns the machine.
func run(t *testing.T, src string, setup func(*Machine)) (*Machine, Stats) {
	t.Helper()
	m, stats, err := tryRun(src, setup)
	if err != nil {
		t.Fatal(err)
	}
	return m, stats
}

func tryRun(src string, setup func(*Machine)) (*Machine, Stats, error) {
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, Stats{}, err
	}
	m, err := New(DefaultConfig())
	if err != nil {
		return nil, Stats{}, err
	}
	if setup != nil {
		setup(m)
	}
	m.LoadProgram(p.Instructions)
	stats, err := m.Run()
	return m, stats, err
}

func TestScalarArithmetic(t *testing.T) {
	src := `
	SMOVE $1, #10
	SMOVE $2, #3
	SADD  $3, $1, $2
	SSUB  $4, $1, $2
	SMUL  $5, $1, $2
	SDIV  $6, $1, $2
	SADD  $7, $1, #-15
	SGT   $8, $1, $2
	SGT   $9, $2, $1
	SE    $10, $1, #10
	SE    $11, $1, #11
	SAND  $12, $8, $10
	SAND  $13, $8, $9
`
	m, _ := run(t, src, nil)
	want := map[uint8]int32{3: 13, 4: 7, 5: 30, 6: 3, 7: -5, 8: 1, 9: 0, 10: 1, 11: 0, 12: 1, 13: 0}
	for r, v := range want {
		if got := int32(m.GPR(r)); got != v {
			t.Errorf("$%d = %d, want %d", r, got, v)
		}
	}
}

func TestScalarDivisionByZero(t *testing.T) {
	_, _, err := tryRun("\tSMOVE $1, #5\n\tSDIV $2, $1, #0\n", nil)
	if err == nil {
		t.Fatal("expected division-by-zero error")
	}
	var re *RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("error type %T", err)
	}
	if re.PC != 1 {
		t.Errorf("fault PC = %d, want 1", re.PC)
	}
}

func TestScalarTranscendentals(t *testing.T) {
	// SEXP/SLOG interpret the GPR as Q8.8 fixed point.
	src := `
	SMOVE $1, #256      // 1.0
	SEXP  $2, $1
	SLOG  $3, $2
	SEXP  $4, #0
`
	m, _ := run(t, src, nil)
	if got := fixed.Num(int32(m.GPR(2))).Float(); math.Abs(got-math.E) > 1.0/256 {
		t.Errorf("SEXP(1.0) = %v", got)
	}
	if got := fixed.Num(int32(m.GPR(3))).Float(); math.Abs(got-1) > 3.0/256 {
		t.Errorf("SLOG(e) = %v", got)
	}
	if got := fixed.Num(int32(m.GPR(4))); got != fixed.One {
		t.Errorf("SEXP(0) = %v", got.Float())
	}
}

func TestScalarLoadStore(t *testing.T) {
	src := `
	SLOAD  $1, #0        // read word at 0
	SADD   $2, $1, #1
	SSTORE $2, #4        // write word at 4
	SMOVE  $3, #4
	SLOAD  $4, $3, #0    // read it back via base register
`
	m, _ := run(t, src, func(m *Machine) {
		if err := m.WriteMainWord(0, 41); err != nil {
			t.Fatal(err)
		}
	})
	if got, _ := m.ReadMainWord(4); got != 42 {
		t.Errorf("stored word = %d", got)
	}
	if got := int32(m.GPR(4)); got != 42 {
		t.Errorf("reloaded word = %d", got)
	}
}

func TestJumpAndConditionalBranch(t *testing.T) {
	// Sum 1..5 with a CB loop, then JUMP over a poison instruction.
	src := `
	SMOVE $1, #5       // i
	SMOVE $2, #0       // sum
loop:	SADD  $2, $2, $1
	SADD  $1, $1, #-1
	CB    #loop, $1
	JUMP  #done
	SMOVE $2, #999     // must be skipped
done:	SMOVE $3, #1
`
	m, stats := run(t, src, nil)
	if got := int32(m.GPR(2)); got != 15 {
		t.Errorf("sum = %d, want 15", got)
	}
	if got := int32(m.GPR(3)); got != 1 {
		t.Errorf("$3 = %d (JUMP target not reached?)", got)
	}
	if stats.BranchesTaken != 5 { // 4 taken CBs + 1 JUMP
		t.Errorf("taken branches = %d, want 5", stats.BranchesTaken)
	}
}

func TestCBComparesPredictorAgainstZero(t *testing.T) {
	// Fig. 1: the branch is taken by "a comparison between the predictor
	// and zero" — taken when predictor > 0 (Fig. 7: "if(x>0) goto L1").
	src := `
	SMOVE $1, #-1
	CB    #skip, $1   // not taken: predictor negative
	SMOVE $2, #7
skip:	SMOVE $3, #1
`
	m, _ := run(t, src, nil)
	if got := int32(m.GPR(2)); got != 7 {
		t.Errorf("negative predictor must not branch; $2 = %d", got)
	}
}

func TestVectorLoadStoreRoundTrip(t *testing.T) {
	in := fixed.FromFloats([]float64{1, -2, 3.5, 0, 127, -128, 0.25, -0.25})
	src := `
	SMOVE  $1, #8
	VLOAD  $2, $1, #1000   // spad[reg2=0...] wait: $2 holds spad addr 0
	VSTORE $2, $1, #2000
`
	m, _ := run(t, src, func(m *Machine) {
		if err := m.WriteMainNums(1000, in); err != nil {
			t.Fatal(err)
		}
	})
	out, err := m.ReadMainNums(2000, len(in))
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("element %d: got %v want %v", i, out[i], in[i])
		}
	}
}

// vecProgram loads two 8-element vectors from 1000/2000, applies op into a
// third region, and stores it to 3000.
func vecProgram(op string) string {
	return `
	SMOVE  $1, #8
	SMOVE  $2, #0       // a at vspad 0
	SMOVE  $3, #64      // b at vspad 64
	SMOVE  $4, #128     // out at vspad 128
	VLOAD  $2, $1, #1000
	VLOAD  $3, $1, #2000
	` + op + `
	VSTORE $4, $1, #3000
`
}

func setupTwoVectors(t *testing.T, a, b []float64) func(*Machine) {
	return func(m *Machine) {
		if err := m.WriteMainNums(1000, fixed.FromFloats(a)); err != nil {
			t.Fatal(err)
		}
		if err := m.WriteMainNums(2000, fixed.FromFloats(b)); err != nil {
			t.Fatal(err)
		}
	}
}

func readResult(t *testing.T, m *Machine, n int) []float64 {
	t.Helper()
	out, err := m.ReadMainNums(3000, n)
	if err != nil {
		t.Fatal(err)
	}
	return fixed.Floats(out)
}

func TestVectorElementwiseOps(t *testing.T) {
	a := []float64{1, 2, 3, 4, -1, -2, 0.5, 8}
	b := []float64{4, 3, 2, 1, -2, -1, 0.25, 2}
	cases := []struct {
		op   string
		want func(x, y float64) float64
	}{
		{"VAV $4, $1, $2, $3", func(x, y float64) float64 { return x + y }},
		{"VSV $4, $1, $2, $3", func(x, y float64) float64 { return x - y }},
		{"VMV $4, $1, $2, $3", func(x, y float64) float64 { return x * y }},
		{"VDV $4, $1, $2, $3", func(x, y float64) float64 { return x / y }},
		{"VGTM $4, $1, $2, $3", math.Max},
	}
	for _, c := range cases {
		t.Run(strings.Fields(c.op)[0], func(t *testing.T) {
			m, _ := run(t, vecProgram("\t"+c.op), setupTwoVectors(t, a, b))
			got := readResult(t, m, len(a))
			for i := range a {
				want := c.want(a[i], b[i])
				if math.Abs(got[i]-want) > 1.5/256 {
					t.Errorf("element %d: got %v want %v", i, got[i], want)
				}
			}
		})
	}
}

func TestVectorCompareAndLogic(t *testing.T) {
	a := []float64{1, 2, 0, 4, -1, 0, 1, 8}
	b := []float64{4, 2, 0, 1, -2, 1, 0, 8}
	one := fixed.One.Float()
	cases := []struct {
		op   string
		want func(x, y float64) float64
	}{
		{"VGT $4, $1, $2, $3", func(x, y float64) float64 {
			if x > y {
				return one
			}
			return 0
		}},
		{"VE $4, $1, $2, $3", func(x, y float64) float64 {
			if x == y {
				return one
			}
			return 0
		}},
		{"VAND $4, $1, $2, $3", func(x, y float64) float64 {
			if x != 0 && y != 0 {
				return one
			}
			return 0
		}},
		{"VOR $4, $1, $2, $3", func(x, y float64) float64 {
			if x != 0 || y != 0 {
				return one
			}
			return 0
		}},
	}
	for _, c := range cases {
		t.Run(strings.Fields(c.op)[0], func(t *testing.T) {
			m, _ := run(t, vecProgram("\t"+c.op), setupTwoVectors(t, a, b))
			got := readResult(t, m, len(a))
			for i := range a {
				if got[i] != c.want(a[i], b[i]) {
					t.Errorf("element %d: got %v", i, got[i])
				}
			}
		})
	}
}

func TestVNOT(t *testing.T) {
	a := []float64{0, 1, -1, 0, 2, 0, 0.5, 0}
	m, _ := run(t, vecProgram("\tVNOT $4, $1, $2"), setupTwoVectors(t, a, a))
	got := readResult(t, m, len(a))
	for i := range a {
		want := 0.0
		if a[i] == 0 {
			want = fixed.One.Float()
		}
		if got[i] != want {
			t.Errorf("element %d: got %v want %v", i, got[i], want)
		}
	}
}

func TestVASImmediateAndRegister(t *testing.T) {
	a := []float64{0, 1, -1, 0.5, 2, -2, 3, -3}
	m, _ := run(t, vecProgram("\tVAS $4, $1, $2, #256"), setupTwoVectors(t, a, a))
	got := readResult(t, m, len(a))
	for i := range a {
		if math.Abs(got[i]-(a[i]+1)) > 1e-9 {
			t.Errorf("imm: element %d: got %v", i, got[i])
		}
	}
	m2, _ := run(t, vecProgram("\tSMOVE $5, #-256\n\tVAS $4, $1, $2, $5"), setupTwoVectors(t, a, a))
	got2 := readResult(t, m2, len(a))
	for i := range a {
		if math.Abs(got2[i]-(a[i]-1)) > 1e-9 {
			t.Errorf("reg: element %d: got %v", i, got2[i])
		}
	}
}

func TestVEXPAndVLOG(t *testing.T) {
	a := []float64{0, 1, -1, 0.5, 2, -2, 3, 0.25}
	m, _ := run(t, vecProgram("\tVEXP $4, $1, $2"), setupTwoVectors(t, a, a))
	got := readResult(t, m, len(a))
	for i := range a {
		want := math.Exp(a[i])
		if math.Abs(got[i]-want) > 0.01*want+1.0/256 {
			t.Errorf("VEXP element %d: got %v want %v", i, got[i], want)
		}
	}
	pos := []float64{1, 2, 0.5, 4, 8, 16, 32, 64}
	m2, _ := run(t, vecProgram("\tVLOG $4, $1, $2"), setupTwoVectors(t, pos, pos))
	got2 := readResult(t, m2, len(pos))
	for i := range pos {
		want := math.Log(pos[i])
		if math.Abs(got2[i]-want) > 2.0/256 {
			t.Errorf("VLOG element %d: got %v want %v", i, got2[i], want)
		}
	}
}

func TestVDOTVMAXVMIN(t *testing.T) {
	a := []float64{1, 2, 3, 4, -5, 6, 7, 8}
	b := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	src := vecProgram("\tVDOT $10, $1, $2, $3\n\tVMAX $11, $1, $2\n\tVMIN $12, $1, $2\n\tVMOVE $4, $1, $2")
	m, _ := run(t, src, setupTwoVectors(t, a, b))
	if got := fixed.Num(int32(m.GPR(10))).Float(); got != 26 {
		t.Errorf("VDOT = %v, want 26", got)
	}
	if got := fixed.Num(int32(m.GPR(11))).Float(); got != 8 {
		t.Errorf("VMAX = %v, want 8", got)
	}
	if got := fixed.Num(int32(m.GPR(12))).Float(); got != -5 {
		t.Errorf("VMIN = %v, want -5", got)
	}
}

func TestVMOVECopiesWithinSpad(t *testing.T) {
	a := []float64{9, 8, 7, 6, 5, 4, 3, 2}
	m, _ := run(t, vecProgram("\tVMOVE $4, $1, $2"), setupTwoVectors(t, a, a))
	got := readResult(t, m, len(a))
	for i := range a {
		if got[i] != a[i] {
			t.Errorf("element %d: got %v", i, got[i])
		}
	}
}

func TestRVUniformAndDeterministic(t *testing.T) {
	src := `
	SMOVE  $1, #64
	SMOVE  $2, #0
	RV     $2, $1
	VSTORE $2, $1, #3000
`
	m1, _ := run(t, src, nil)
	out1 := readResult(t, m1, 64)
	distinct := map[float64]bool{}
	for i, v := range out1 {
		if v < 0 || v >= 1 {
			t.Errorf("element %d = %v outside [0,1)", i, v)
		}
		distinct[v] = true
	}
	if len(distinct) < 16 {
		t.Errorf("only %d distinct random values in 64 draws", len(distinct))
	}
	// Same seed, same stream.
	m2, _ := run(t, src, nil)
	out2 := readResult(t, m2, 64)
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatalf("RV must be deterministic per seed")
		}
	}
	// Different seed, different stream.
	cfg := DefaultConfig()
	cfg.Seed = 99
	p := mustAssemble(t, src)
	m3 := mustNew(t, cfg)
	m3.LoadProgram(p.Instructions)
	if _, err := m3.Run(); err != nil {
		t.Fatal(err)
	}
	out3raw, _ := m3.ReadMainNums(3000, 64)
	same := 0
	for i, v := range fixed.Floats(out3raw) {
		if v == out1[i] {
			same++
		}
	}
	if same == 64 {
		t.Error("different seeds produced identical streams")
	}
}

func TestMMVMatchesReference(t *testing.T) {
	// y = W x with W 3x4 (row major), x length 4.
	w := []float64{
		1, 2, 3, 4,
		0.5, -1, 0, 2,
		-2, 1, 1, -1,
	}
	x := []float64{1, 0.5, -1, 2}
	src := `
	SMOVE  $1, #4       // in size
	SMOVE  $2, #3       // out size
	SMOVE  $3, #12      // matrix elems
	SMOVE  $4, #0       // x at vspad 0
	SMOVE  $5, #0       // W at mspad 0
	SMOVE  $6, #100     // y at vspad 100
	VLOAD  $4, $1, #1000
	MLOAD  $5, $3, #2000
	MMV    $6, $2, $5, $4, $1
	VSTORE $6, $2, #3000
`
	m, _ := run(t, src, func(m *Machine) {
		if err := m.WriteMainNums(1000, fixed.FromFloats(x)); err != nil {
			t.Fatal(err)
		}
		if err := m.WriteMainNums(2000, fixed.FromFloats(w)); err != nil {
			t.Fatal(err)
		}
	})
	got := readResult(t, m, 3)
	want := []float64{1*1 + 2*0.5 + 3*-1 + 4*2, 0.5*1 + -1*0.5 + 0 + 2*2, -2 + 0.5 + -1 + -2}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.05 {
			t.Errorf("y[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestVMMMatchesTransposedContraction(t *testing.T) {
	// y = x W with W 3x4: y has length 4, contraction over rows.
	w := []float64{
		1, 2, 3, 4,
		0.5, -1, 0, 2,
		-2, 1, 1, -1,
	}
	x := []float64{1, -1, 2}
	src := `
	SMOVE  $1, #3       // in size (rows)
	SMOVE  $2, #4       // out size (cols)
	SMOVE  $3, #12
	SMOVE  $4, #0
	SMOVE  $5, #0
	SMOVE  $6, #100
	VLOAD  $4, $1, #1000
	MLOAD  $5, $3, #2000
	VMM    $6, $2, $5, $4, $1
	VSTORE $6, $2, #3000
`
	m, _ := run(t, src, func(m *Machine) {
		if err := m.WriteMainNums(1000, fixed.FromFloats(x)); err != nil {
			t.Fatal(err)
		}
		if err := m.WriteMainNums(2000, fixed.FromFloats(w)); err != nil {
			t.Fatal(err)
		}
	})
	got := readResult(t, m, 4)
	want := make([]float64, 4)
	for j := 0; j < 4; j++ {
		for i := 0; i < 3; i++ {
			want[j] += x[i] * w[i*4+j]
		}
	}
	for j := range want {
		if math.Abs(got[j]-want[j]) > 0.05 {
			t.Errorf("y[%d] = %v, want %v", j, got[j], want[j])
		}
	}
}

func TestOuterProductMAMMSMAndMMS(t *testing.T) {
	// dW = eta * (a (x) b); W' = W + dW; W'' = W' - dW  => W'' == W.
	a := []float64{1, 2}
	b := []float64{3, -1, 0.5}
	w := []float64{1, 1, 1, 2, 2, 2}
	src := `
	SMOVE  $1, #2       // |a|
	SMOVE  $2, #3       // |b|
	SMOVE  $3, #6       // matrix elems
	SMOVE  $4, #0       // a at vspad 0
	SMOVE  $5, #64      // b at vspad 64
	SMOVE  $6, #0       // W at mspad 0
	SMOVE  $7, #4096    // dW at mspad 4096
	SMOVE  $8, #8192    // W' at mspad 8192
	VLOAD  $4, $1, #1000
	VLOAD  $5, $2, #1100
	MLOAD  $6, $3, #2000
	OP     $7, $4, $1, $5, $2    // dW = a (x) b
	MMS    $7, $3, $7, #128      // dW *= 0.5
	MAM    $8, $3, $6, $7        // W' = W + dW
	MSM    $8, $3, $8, $7        // W'' = W' - dW
	MSTORE $8, $3, #3000
	MSTORE $7, $3, #4000
`
	m, _ := run(t, src, func(m *Machine) {
		for addr, vals := range map[int][]float64{1000: a, 1100: b, 2000: w} {
			if err := m.WriteMainNums(addr, fixed.FromFloats(vals)); err != nil {
				t.Fatal(err)
			}
		}
	})
	got := readResult(t, m, 6)
	for i := range w {
		if math.Abs(got[i]-w[i]) > 1.0/128 {
			t.Errorf("W''[%d] = %v, want %v", i, got[i], w[i])
		}
	}
	dw, _ := m.ReadMainNums(4000, 6)
	wantDW := []float64{1.5, -0.5, 0.25, 3, -1, 0.5}
	for i, v := range fixed.Floats(dw) {
		if math.Abs(v-wantDW[i]) > 1.0/128 {
			t.Errorf("dW[%d] = %v, want %v", i, v, wantDW[i])
		}
	}
}

func TestFig7MLPLayerEndToEnd(t *testing.T) {
	// The Fig. 7 MLP fragment (plus a bias load): y = sigmoid(Wx + b).
	in := []float64{0.5, -1, 2}
	w := []float64{
		0.5, 1, -0.5,
		-1, 0.25, 0.75,
		2, -1, 0.5,
	}
	bias := []float64{0.1, -0.2, 0.3}
	src := `
	SMOVE  $0, #3       // input size
	SMOVE  $1, #3       // output size
	SMOVE  $2, #9       // matrix size
	SMOVE  $3, #0       // input address (vspad)
	SMOVE  $4, #0       // weight address (mspad)
	SMOVE  $5, #64      // bias address (vspad)
	SMOVE  $6, #512     // output address (vspad)
	SMOVE  $7, #128     // temps
	SMOVE  $8, #192
	SMOVE  $9, #256
	SMOVE  $10, #320
	VLOAD  $3, $0, #100     // load input vector
	VLOAD  $5, $1, #400     // load bias vector
	MLOAD  $4, $2, #300     // load weight matrix
	MMV    $7, $1, $4, $3, $0   // Wx
	VAV    $8, $1, $7, $5       // tmp = Wx + b
	VEXP   $9, $1, $8           // exp(tmp)
	VAS    $10, $1, $9, #256    // 1 + exp(tmp)
	VDV    $6, $1, $9, $10      // y = exp/(1+exp)
	VSTORE $6, $1, #200         // store output
`
	m, stats := run(t, src, func(m *Machine) {
		for addr, vals := range map[int][]float64{100: in, 300: w, 400: bias} {
			if err := m.WriteMainNums(addr, fixed.FromFloats(vals)); err != nil {
				t.Fatal(err)
			}
		}
	})
	got, err := m.ReadMainNums(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		pre := bias[i]
		for j := 0; j < 3; j++ {
			pre += w[i*3+j] * in[j]
		}
		want := 1 / (1 + math.Exp(-pre))
		if g := got[i].Float(); math.Abs(g-want) > 0.02 {
			t.Errorf("y[%d] = %v, want %v", i, g, want)
		}
	}
	if stats.Instructions != 20 {
		t.Errorf("dynamic instructions = %d, want 20", stats.Instructions)
	}
	if stats.Cycles <= 0 {
		t.Error("cycles not counted")
	}
}

func TestFig7PoolingLoop(t *testing.T) {
	// 2x2 max pooling over a 2x2 window with 4 feature maps, layout
	// [y][x][channel] as in the paper's pooling discussion.
	input := [][]float64{
		{5, 0, 1, 2},  // (x=0,y=0) channels
		{3, 4, 2, 0},  // (x=1,y=0)
		{1, 6, 0, 3},  // (x=0,y=1)
		{2, 2, 4, -1}, // (x=1,y=1)
	}
	want := []float64{5, 6, 4, 3}
	flat := make([]float64, 0, 16)
	for _, px := range input {
		flat = append(flat, px...)
	}
	src := `
	SMOVE  $0, #4        // feature maps (channel vector size)
	SMOVE  $1, #16       // input data size
	SMOVE  $2, #4        // output data size
	SMOVE  $3, #2        // pooling window edge
	SMOVE  $6, #0        // input addr (vspad)
	SMOVE  $7, #512      // output addr (vspad): starts as -inf surrogate
	SMOVE  $8, #0        // y-axis extra stride (window spans full row here)
	VLOAD  $6, $1, #100
	SMOVE  $5, $3
L0:	SMOVE  $4, $3
L1:	VGTM   $7, $0, $6, $7
	SADD   $6, $6, #8    // advance one pixel (4 channels x 2 bytes)
	SADD   $4, $4, #-1
	CB     #L1, $4
	SADD   $6, $6, $8
	SADD   $5, $5, #-1
	CB     #L0, $5
	VSTORE $7, $2, #200
`
	// The freshly-reset vector scratchpad is zero, which serves as the
	// initial accumulator (all pooled maxima here are positive).
	m, _ := run(t, src, func(m *Machine) {
		if err := m.WriteMainNums(100, fixed.FromFloats(flat)); err != nil {
			t.Fatal(err)
		}
	})
	got, err := m.ReadMainNums(200, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if g := got[i].Float(); g != want[i] {
			t.Errorf("pooled[%d] = %v, want %v", i, g, want[i])
		}
	}
}

func TestRuntimeErrorsCarryPC(t *testing.T) {
	cases := []struct{ name, src string }{
		{"vspad overflow", "\tSMOVE $1, #100000\n\tSMOVE $2, #0\n\tRV $2, $1\n"},
		{"negative size", "\tSMOVE $1, #-4\n\tSMOVE $2, #0\n\tRV $2, $1\n"},
		{"main out of range", "\tSMOVE $1, #8\n\tVLOAD $2, $1, #-16\n"},
		{"empty reduce", "\tSMOVE $1, #0\n\tVMAX $2, $1, $3\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := tryRun(c.src, nil)
			var re *RuntimeError
			if err == nil || !errors.As(err, &re) {
				t.Fatalf("want RuntimeError, got %v", err)
			}
		})
	}
}

func TestRunawayLoopGuard(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxDynamicInstructions = 100
	p := mustAssemble(t, "loop:\tSMOVE $1, #1\n\tJUMP #loop\n")
	m := mustNew(t, cfg)
	m.LoadProgram(p.Instructions)
	if _, err := m.Run(); err == nil {
		t.Fatal("expected instruction-limit error")
	}
}

func TestControlFlowLeavingProgramFails(t *testing.T) {
	_, _, err := tryRun("\tJUMP #-3\n", nil)
	if err == nil {
		t.Fatal("expected control-flow error")
	}
	if !strings.Contains(err.Error(), "left the program") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestStatsInstructionMix(t *testing.T) {
	_, stats := run(t, vecProgram("\tVAV $4, $1, $2, $3"), setupTwoVectors(t,
		make([]float64, 8), make([]float64, 8)))
	// 4 SMOVE (data transfer) + 2 VLOAD + 1 VSTORE (data transfer) + 1 VAV.
	if got := stats.ByType[0]; got != 7 { // TypeDataTransfer
		t.Errorf("data transfer count = %d, want 7", got)
	}
	if stats.Instructions != 8 {
		t.Errorf("instructions = %d", stats.Instructions)
	}
	if stats.VectorElems != 8 {
		t.Errorf("vector elems = %d", stats.VectorElems)
	}
	if stats.DMABytes != 3*16 {
		t.Errorf("dma bytes = %d", stats.DMABytes)
	}
}
