package sim

// Tests for the golden-run access trace and the convergence proof
// (liveness.go): recording must be behaviour-neutral, the condensed
// liveness must know the golden DMA offers, and ConvergedWith must
// accept exactly the states whose remaining differences are dead.

import (
	"reflect"
	"testing"
)

// recordGolden runs ckptKernel once with an access trace attached and
// returns the run-start snapshot, the final stats and the liveness.
func recordGolden(t *testing.T, cfg Config, predecoded bool) (*Machine, *Snapshot, Stats, *Liveness) {
	t.Helper()
	m := ckptMachine(t, cfg, predecoded)
	start := m.Snapshot()
	rec := NewAccessTrace()
	m.SetAccessTrace(rec)
	st, err := m.Run()
	m.SetAccessTrace(nil)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := rec.Liveness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, start, st, lv
}

// TestAccessTraceBehaviourNeutral: a recorded run's statistics are
// bit-identical to an unobserved run's, on both dispatch paths, and the
// trace covers exactly the run's dynamic instructions.
func TestAccessTraceBehaviourNeutral(t *testing.T) {
	for _, path := range []struct {
		name       string
		predecoded bool
	}{{"baseline", false}, {"predecoded", true}} {
		t.Run(path.name, func(t *testing.T) {
			cfg := DefaultConfig()
			_, _, recorded, lv := recordGolden(t, cfg, path.predecoded)
			plain := ckptMachine(t, cfg, path.predecoded)
			want, err := plain.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, recorded) {
				t.Fatalf("recorded run diverged from unobserved run:\nunobserved %+v\nrecorded   %+v", want, recorded)
			}
			if lv.Instructions() != want.Instructions {
				t.Fatalf("liveness covers %d instructions, run executed %d", lv.Instructions(), want.Instructions)
			}
		})
	}
}

// TestLivenessDMAOffers: ckptKernel's VLOAD/VSTOREs are DMA transfers,
// so the recorded offer schedule must be non-empty, strictly ascending,
// in range, and searchable.
func TestLivenessDMAOffers(t *testing.T) {
	cfg := DefaultConfig()
	_, _, st, lv := recordGolden(t, cfg, true)
	if len(lv.dma) == 0 {
		t.Fatal("no DMA offers recorded for a kernel with VLOAD/VSTORE")
	}
	prev := int64(-1)
	for _, idx := range lv.dma {
		if idx <= prev || idx >= st.Instructions {
			t.Fatalf("bad offer index %d (prev %d, run length %d)", idx, prev, st.Instructions)
		}
		prev = idx
	}
	if got, ok := lv.DMAOfferAfter(0); !ok || got != lv.dma[0] {
		t.Fatalf("DMAOfferAfter(0) = %d, %v; want first offer %d", got, ok, lv.dma[0])
	}
	if got, ok := lv.DMAOfferAfter(lv.dma[len(lv.dma)-1]); !ok || got != lv.dma[len(lv.dma)-1] {
		t.Fatalf("DMAOfferAfter(last) = %d, %v; want the last offer itself", got, ok)
	}
	if _, ok := lv.DMAOfferAfter(st.Instructions); ok {
		t.Fatal("DMAOfferAfter past the end of the run reported an offer")
	}
}

// TestConvergedWith: a machine replaying the golden run between two of
// its checkpoints converges at the later one; a difference in a
// scratchpad word the golden run never reads again is accepted as dead;
// a difference in a word that is still read is rejected with a positive
// retry hint; and mismatched boundaries are rejected outright.
func TestConvergedWith(t *testing.T) {
	cfg := DefaultConfig()
	golden, start, st, lv := recordGolden(t, cfg, true)
	j1, j2 := st.Instructions/3, 2*st.Instructions/3
	if err := golden.Restore(start); err != nil {
		t.Fatal(err)
	}
	mustRunUntil := func(m *Machine, n int64) {
		t.Helper()
		if _, done, err := m.RunUntil(n); err != nil || done {
			t.Fatalf("RunUntil(%d): done=%v err=%v", n, done, err)
		}
	}
	mustRunUntil(golden, j1)
	ck1 := golden.Checkpoint()
	mustRunUntil(golden, j2)
	ck2 := golden.Checkpoint()

	m := ckptMachine(t, cfg, true)
	if err := m.Restore(ck1); err != nil {
		t.Fatal(err)
	}
	mustRunUntil(m, j2)
	if conv, retry := m.ConvergedWith(ck2, lv); !conv {
		t.Fatalf("golden replay did not converge with its own checkpoint (retry %d)", retry)
	}
	if conv, _ := m.ConvergedWith(ck1, lv); conv {
		t.Fatal("converged with a checkpoint at a different boundary")
	}

	// A flipped word the kernel never touches is dead everywhere.
	deadWord := 10000
	if lv.vspadLast[deadWord] != -1 {
		t.Fatalf("test word %d is read by the kernel (last read %d)", deadWord, lv.vspadLast[deadWord])
	}
	if !m.vspad.FlipBit(2*deadWord, 0) {
		t.Fatal("flip out of range")
	}
	if conv, _ := m.ConvergedWith(ck2, lv); !conv {
		t.Fatal("a dead scratchpad difference blocked convergence")
	}

	// Word 0 (vspad region A) is re-read by every remaining loop
	// iteration: a difference there is live at j2, and the retry hint
	// points past its last read.
	if lv.vspadLast[0] < j2 {
		t.Fatalf("kernel's region A is not read after j2 (last read %d); test premise broken", lv.vspadLast[0])
	}
	if !m.vspad.FlipBit(0, 0) {
		t.Fatal("flip out of range")
	}
	conv, retry := m.ConvergedWith(ck2, lv)
	if conv {
		t.Fatal("a live scratchpad difference was accepted")
	}
	if retry != lv.vspadLast[0]+1 {
		t.Fatalf("retry hint %d, want last read + 1 = %d", retry, lv.vspadLast[0]+1)
	}
}
