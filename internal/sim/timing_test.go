package sim

import (
	"fmt"
	"testing"

	"cambricon/internal/asm"
	"cambricon/internal/core"
	"cambricon/internal/fixed"
)

func cyclesOf(t *testing.T, cfg Config, src string, setup func(*Machine)) Stats {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := mustNew(t, cfg)
	if setup != nil {
		setup(m)
	}
	m.LoadProgram(p.Instructions)
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestCyclesGrowWithVectorSize(t *testing.T) {
	prev := int64(0)
	for _, n := range []int{32, 256, 2048, 16384} {
		src := fmt.Sprintf(`
	SMOVE $1, #%d
	SMOVE $2, #0
	RV    $2, $1
	VEXP  $2, $1, $2
`, n)
		stats := cyclesOf(t, DefaultConfig(), src, nil)
		if stats.Cycles <= prev {
			t.Errorf("n=%d: cycles %d not greater than previous %d", n, stats.Cycles, prev)
		}
		prev = stats.Cycles
	}
}

func TestMemoryDependenceSerializes(t *testing.T) {
	// Dependent: second VAV reads the first's output region.
	dep := `
	SMOVE $1, #1024
	SMOVE $2, #0
	SMOVE $3, #4096
	SMOVE $4, #8192
	VAV   $3, $1, $2, $2
	VAV   $4, $1, $3, $3
`
	// Independent: same shape, but the second VAV reads a region no one
	// writes (reads never conflict with reads).
	indep := `
	SMOVE $1, #1024
	SMOVE $2, #0
	SMOVE $3, #4096
	SMOVE $4, #8192
	VAV   $3, $1, $2, $2
	VAV   $4, $1, $2, $2
`
	sd := cyclesOf(t, DefaultConfig(), dep, nil)
	si := cyclesOf(t, DefaultConfig(), indep, nil)
	if sd.MemDepStallCycles == 0 {
		t.Error("dependent chain should report memory-dependence stalls")
	}
	if si.MemDepStallCycles != 0 {
		t.Errorf("independent ops should not stall on memory dependences, got %d",
			si.MemDepStallCycles)
	}
}

func TestTakenBranchesCostMoreThanStraightLine(t *testing.T) {
	// 64 scalar adds in a loop vs unrolled straight-line.
	loop := `
	SMOVE $1, #64
	SMOVE $2, #0
top:	SADD  $2, $2, #1
	SADD  $1, $1, #-1
	CB    #top, $1
`
	var b asm.Builder
	b.Op(core.SMOVE, asm.R(2), asm.Imm(0))
	for i := 0; i < 64; i++ {
		b.Op(core.SADD, asm.R(2), asm.R(2), asm.Imm(1))
	}
	sl := cyclesOf(t, DefaultConfig(), loop, nil)
	ss := cyclesOf(t, DefaultConfig(), b.Source(), nil)
	if sl.Cycles <= ss.Cycles {
		t.Errorf("loop (%d cycles) should exceed straight line (%d cycles)", sl.Cycles, ss.Cycles)
	}
	if sl.BranchesTaken != 63 {
		t.Errorf("taken branches = %d, want 63", sl.BranchesTaken)
	}
}

func TestNarrowIssueIsSlower(t *testing.T) {
	src := `
	SMOVE $1, #1024
	SMOVE $2, #0
	SMOVE $3, #4096
	RV    $2, $1
	VEXP  $3, $1, $2
	VAV   $3, $1, $2, $2
	VMV   $3, $1, $2, $2
`
	wide := DefaultConfig()
	narrow := DefaultConfig()
	narrow.IssueWidth = 1
	narrow.IssueQueueDepth = 2
	narrow.ROBDepth = 4
	sw := cyclesOf(t, wide, src, nil)
	sn := cyclesOf(t, narrow, src, nil)
	if sn.Cycles < sw.Cycles {
		t.Errorf("narrow machine (%d) should not beat Table II machine (%d)", sn.Cycles, sw.Cycles)
	}
}

// TestMMVBeatsDotProductDecomposition reproduces the Section III-A argument:
// computing Wx with one MMV is more efficient than decomposing it into
// per-row VDOT instructions.
func TestMMVBeatsDotProductDecomposition(t *testing.T) {
	const rows, cols = 64, 64
	mmv := fmt.Sprintf(`
	SMOVE $1, #%d
	SMOVE $2, #%d
	SMOVE $3, #%d
	SMOVE $4, #0
	SMOVE $5, #0
	SMOVE $6, #8192
	RV    $4, $1
	MMV   $6, $2, $5, $4, $1
`, cols, rows, rows*cols)
	var b asm.Builder
	b.Op(core.SMOVE, asm.R(1), asm.Imm(cols))
	b.Op(core.SMOVE, asm.R(4), asm.Imm(0))
	b.Op(core.RV, asm.R(4), asm.R(1))
	b.Op(core.SMOVE, asm.R(5), asm.Imm(8192)) // row vector base (reusing vspad)
	for r := 0; r < rows; r++ {
		b.Op(core.VDOT, asm.R(10), asm.R(1), asm.R(4), asm.R(5))
	}
	sm := cyclesOf(t, DefaultConfig(), mmv, nil)
	sd := cyclesOf(t, DefaultConfig(), b.Source(), nil)
	if sm.Cycles >= sd.Cycles {
		t.Errorf("MMV (%d cycles) should beat %d VDOTs (%d cycles)", sm.Cycles, rows, sd.Cycles)
	}
	if sm.MACOps != rows*cols {
		t.Errorf("MMV MACs = %d", sm.MACOps)
	}
}

func TestDMATimingDominatesLargeLoads(t *testing.T) {
	cfg := DefaultConfig()
	// 16K elements = 32KB at 32 B/cycle: at least 1024 cycles of DMA.
	src := `
	SMOVE $1, #16384
	SMOVE $2, #0
	VLOAD $2, $1, #0
`
	stats := cyclesOf(t, cfg, src, nil)
	if stats.Cycles < 1024 {
		t.Errorf("32KB load should cost >= 1024 cycles, got %d", stats.Cycles)
	}
	if stats.DMABytes != 32768 {
		t.Errorf("DMA bytes = %d", stats.DMABytes)
	}
}

func TestVectorAndMatrixUnitsOverlap(t *testing.T) {
	// A long matrix op followed by an independent vector op should
	// overlap: total < sum of serialized costs.
	overlap := `
	SMOVE $1, #128
	SMOVE $2, #16384
	SMOVE $3, #0
	SMOVE $4, #0
	SMOVE $5, #8192
	SMOVE $6, #16384
	SMOVE $7, #24576
	MMV   $5, $1, $4, $3, $1
	VEXP  $6, $1, $7
`
	stats := cyclesOf(t, DefaultConfig(), overlap, nil)
	if stats.MatrixBusyCycles == 0 || stats.VectorBusyCycles == 0 {
		t.Fatal("both units should be active")
	}
	// The final VEXP is independent of the MMV output region, so the
	// vector unit should not wait for the matrix unit: no FU-busy stall
	// between them beyond the RV/VEXP chain.
	if stats.MemDepStallCycles != 0 {
		t.Errorf("unexpected memory dependence stalls: %d", stats.MemDepStallCycles)
	}
}

func TestBankConflictAblation(t *testing.T) {
	// Fig. 9 ablation: operand regions that collide in the same bank
	// serialize; a single-bank scratchpad is never faster than the
	// four-bank crossbar design.
	conflict := `
	SMOVE $1, #32
	SMOVE $2, #0
	SMOVE $3, #256      // same bank as 0 with 4 banks x 64B lines
	SMOVE $4, #512      // same bank again
	RV    $2, $1
	RV    $3, $1
	VAV   $4, $1, $2, $3
`
	four := DefaultConfig()
	one := DefaultConfig()
	one.SpadBanks = 1
	sf := cyclesOf(t, four, conflict, nil)
	so := cyclesOf(t, one, conflict, nil)
	if sf.BankConflictCycles == 0 {
		t.Error("colliding regions should report bank conflicts")
	}
	if so.Cycles < sf.Cycles {
		t.Errorf("single bank (%d) should not beat 4 banks (%d)", so.Cycles, sf.Cycles)
	}
	disjoint := `
	SMOVE $1, #32
	SMOVE $2, #0
	SMOVE $3, #64
	SMOVE $4, #128
	RV    $2, $1
	RV    $3, $1
	VAV   $4, $1, $2, $3
`
	sd := cyclesOf(t, four, disjoint, nil)
	if sd.BankConflictCycles != 0 {
		t.Errorf("disjoint banks should not conflict, got %d", sd.BankConflictCycles)
	}
	if sd.Cycles > sf.Cycles {
		t.Errorf("disjoint layout (%d) should not be slower than conflicting (%d)", sd.Cycles, sf.Cycles)
	}
}

func TestStatsSecondsAndString(t *testing.T) {
	stats := Stats{Cycles: 2_000_000}
	if got := stats.Seconds(1e9); got != 0.002 {
		t.Errorf("Seconds = %v", got)
	}
	if stats.String() == "" {
		t.Error("empty String()")
	}
}

func TestResetPreservesMemoryClearsState(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	if err := m.WriteMainNums(0, fixed.FromFloats([]float64{7})); err != nil {
		t.Fatal(err)
	}
	m.SetGPR(5, 123)
	m.Reset()
	if m.GPR(5) != 0 {
		t.Error("Reset must clear GPRs")
	}
	v, err := m.ReadMainNums(0, 1)
	if err != nil || v[0].Float() != 7 {
		t.Error("Reset must preserve main memory")
	}
}
