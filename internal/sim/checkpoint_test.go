package sim

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"cambricon/internal/core"
)

// ckptKernel exercises everything a mid-run checkpoint must carry: the
// PRNG (RV), scalar state, vector-scratchpad and main-memory traffic
// (dirty pages), a loop, and — via the VAV→VEXP chain — fused pairs, so
// stop points that land inside a pair cover the split-vs-fused boundary.
const ckptKernel = `
	SMOVE  $1, #32          // element count
	SMOVE  $2, #0           // vspad region A
	SMOVE  $3, #4096        // vspad region B
	SMOVE  $8, #5           // loop counter
l:	RV     $2, $1           // fresh random vector each iteration
	VLOAD  $3, $1, #1000    // input from main
	VAV    $3, $1, $2, $3   // input + random
	VEXP   $3, $1, $3       // fused consumer of the VAV above
	VSTORE $3, $1, #2000    // result back to main
	SADD   $10, $10, #7
	SADD   $8, $8, #-1
	CB     #l, $8
`

// ckptMachine builds a machine running ckptKernel through the requested
// dispatch path.
func ckptMachine(t *testing.T, cfg Config, predecoded bool) *Machine {
	t.Helper()
	m := mustNew(t, cfg)
	prog := mustAssemble(t, ckptKernel).Instructions
	if predecoded {
		dp, err := Predecode(prog)
		if err != nil {
			t.Fatal(err)
		}
		m.LoadDecoded(dp)
	} else {
		m.LoadProgram(prog)
	}
	snapInit(t, m)
	return m
}

// compareResumed fails unless two machines agree on statistics, every
// GPR, and every byte of the memory spaces.
func compareResumed(t *testing.T, label string, want, got *Machine, wantStats, gotStats Stats) {
	t.Helper()
	if !reflect.DeepEqual(wantStats, gotStats) {
		t.Fatalf("%s: stats diverge:\nuninterrupted %+v\nresumed       %+v", label, wantStats, gotStats)
	}
	for r := 0; r < core.NumGPRs; r++ {
		if want.GPR(uint8(r)) != got.GPR(uint8(r)) {
			t.Fatalf("%s: $%d = %d, uninterrupted %d", label, r,
				int32(got.GPR(uint8(r))), int32(want.GPR(uint8(r))))
		}
	}
	compareMachineSpaces(t, label, want, got)
}

// TestCheckpointResumeBitIdentical stops a run at a spread of dynamic
// instruction boundaries — including ones that land inside fused pairs —
// captures a checkpoint, restores it onto a fresh machine, and requires
// the resumed remainder to be bit-identical to the uninterrupted run, on
// both the baseline and the pre-decoded dispatch paths.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	for _, path := range []struct {
		name       string
		predecoded bool
	}{{"baseline", false}, {"predecoded", true}} {
		t.Run(path.name, func(t *testing.T) {
			cfg := DefaultConfig()
			ref := ckptMachine(t, cfg, path.predecoded)
			wantStats, err := ref.Run()
			if err != nil {
				t.Fatal(err)
			}
			total := wantStats.Instructions
			for _, k := range []int64{0, 1, 2, 7, 8, 9, total / 2, total - 1, total, total + 100} {
				m := ckptMachine(t, cfg, path.predecoded)
				partial, done, err := m.RunUntil(k)
				if err != nil {
					t.Fatalf("RunUntil(%d): %v", k, err)
				}
				if wantDone := k >= total; done != wantDone {
					t.Fatalf("RunUntil(%d): done=%v, want %v", k, done, wantDone)
				}
				if !done && partial.Instructions != k {
					t.Fatalf("RunUntil(%d) stopped at instruction %d", k, partial.Instructions)
				}
				ckpt := m.Checkpoint()
				if ckpt.MidRun() != true || ckpt.Instructions() != partial.Instructions {
					t.Fatalf("checkpoint at %d reports midrun=%v instructions=%d",
						k, ckpt.MidRun(), ckpt.Instructions())
				}

				// Resume on the same machine.
				sameStats, err := m.Resume()
				if err != nil {
					t.Fatal(err)
				}
				compareResumed(t, path.name+"/same-machine", ref, m, wantStats, sameStats)

				// Restore the checkpoint onto a fresh machine and resume.
				fresh := mustNew(t, cfg)
				if err := fresh.Restore(ckpt); err != nil {
					t.Fatal(err)
				}
				freshStats, err := fresh.Resume()
				if err != nil {
					t.Fatal(err)
				}
				compareResumed(t, path.name+"/fresh-machine", ref, fresh, wantStats, freshStats)
			}
		})
	}
}

// TestCheckpointSegmentedTraceIdentical runs the kernel as a chain of
// RunUntil segments with an instruction trace attached and requires the
// concatenated segment traces to equal the uninterrupted run's byte for
// byte — indices, cycle numbers and PCs all carry across the stops.
func TestCheckpointSegmentedTraceIdentical(t *testing.T) {
	cfg := DefaultConfig()
	ref := ckptMachine(t, cfg, true)
	var want bytes.Buffer
	ref.SetTrace(&want)
	if _, err := ref.Run(); err != nil {
		t.Fatal(err)
	}

	m := ckptMachine(t, cfg, true)
	var got bytes.Buffer
	m.SetTrace(&got)
	for k := int64(3); ; k += 7 {
		_, done, err := m.RunUntil(k)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		// Hop through a checkpoint restore mid-trace to prove restores
		// do not perturb the observed run either.
		ckpt := m.Checkpoint()
		if err := m.Restore(ckpt); err != nil {
			t.Fatal(err)
		}
	}
	if want.String() != got.String() {
		t.Fatalf("segmented trace diverges from uninterrupted trace:\nwant %d bytes\ngot  %d bytes",
			want.Len(), got.Len())
	}
}

// TestCheckpointWatchdogIdentical arms a tripping watchdog and requires
// the error surfaced after a mid-run checkpoint/restore/resume to be
// byte-identical to the uninterrupted run's — diagnostics include the
// dynamic index and cycle, so they prove the restored timing state.
func TestCheckpointWatchdogIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 200
	ref := ckptMachine(t, cfg, true)
	wantStats, wantErr := ref.Run()
	if wantErr == nil {
		t.Fatal("watchdog budget of 200 cycles did not trip")
	}
	if _, ok := wantErr.(*WatchdogError); !ok {
		t.Fatalf("want *WatchdogError, got %T: %v", wantErr, wantErr)
	}

	m := ckptMachine(t, cfg, true)
	if _, done, err := m.RunUntil(5); done || err != nil {
		t.Fatalf("RunUntil(5): done=%v err=%v", done, err)
	}
	fresh := mustNew(t, cfg)
	if err := fresh.Restore(m.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	gotStats, gotErr := fresh.Resume()
	if gotErr == nil || gotErr.Error() != wantErr.Error() {
		t.Fatalf("errors diverge:\nuninterrupted %v\nresumed       %v", wantErr, gotErr)
	}
	if !reflect.DeepEqual(wantStats, gotStats) {
		t.Fatalf("stats diverge:\nuninterrupted %+v\nresumed       %+v", wantStats, gotStats)
	}
}

// TestCheckpointSerializationRoundTrip writes a mid-run checkpoint
// through the CAMCKPT1 encoder, reads it back, resumes on a fresh
// machine, and requires bit-identical results; a second encode of the
// decoded snapshot must reproduce the file exactly (deterministic
// encoding). Every corrupted or truncated variant of the file must be
// rejected with an error, never a wrong machine state.
func TestCheckpointSerializationRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	ref := ckptMachine(t, cfg, true)
	wantStats, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}

	m := ckptMachine(t, cfg, true)
	if _, _, err := m.RunUntil(17); err != nil {
		t.Fatal(err)
	}
	var file bytes.Buffer
	if err := WriteCheckpoint(&file, m.Checkpoint()); err != nil {
		t.Fatal(err)
	}

	ckpt, err := ReadCheckpoint(bytes.NewReader(file.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ckpt.Config() != cfg {
		t.Fatalf("config round trip: got %+v want %+v", ckpt.Config(), cfg)
	}
	if !ckpt.MidRun() || ckpt.Instructions() != 17 {
		t.Fatalf("read checkpoint reports midrun=%v instructions=%d", ckpt.MidRun(), ckpt.Instructions())
	}
	var again bytes.Buffer
	if err := WriteCheckpoint(&again, ckpt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(file.Bytes(), again.Bytes()) {
		t.Fatal("re-encoding a decoded checkpoint changed the bytes")
	}

	fresh := mustNew(t, cfg)
	if err := fresh.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	gotStats, err := fresh.Resume()
	if err != nil {
		t.Fatal(err)
	}
	compareResumed(t, "roundtrip", ref, fresh, wantStats, gotStats)

	t.Run("corruption", func(t *testing.T) {
		raw := file.Bytes()
		for _, off := range []int{0, 8, 12, 20, len(raw) / 2, len(raw) - 2} {
			bad := append([]byte(nil), raw...)
			bad[off] ^= 0x40
			if _, err := ReadCheckpoint(bytes.NewReader(bad)); err == nil {
				t.Errorf("flipped byte at offset %d accepted", off)
			}
		}
		for _, cut := range []int{0, 4, len(raw) / 3, len(raw) - 1} {
			if _, err := ReadCheckpoint(bytes.NewReader(raw[:cut])); err == nil {
				t.Errorf("truncation to %d bytes accepted", cut)
			}
		}
		if _, err := ReadCheckpoint(bytes.NewReader(append(append([]byte(nil), raw...), 0))); err == nil {
			t.Error("trailing garbage accepted")
		}
	})
}

// TestCheckpointRunBoundarySnapshotUnchanged pins that run-boundary
// snapshots still restore to reset timing state (stats zero), i.e. the
// mid-run machinery did not change the long-standing Snapshot contract.
func TestCheckpointRunBoundarySnapshotUnchanged(t *testing.T) {
	cfg := DefaultConfig()
	m := ckptMachine(t, cfg, true)
	snap := m.Snapshot()
	if snap.MidRun() || snap.Instructions() != 0 {
		t.Fatalf("run-boundary snapshot reports midrun=%v instructions=%d", snap.MidRun(), snap.Instructions())
	}
	want, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("restored rerun diverges:\nfirst  %+v\nsecond %+v", want, got)
	}
}

// TestReconfigureGeometry pins the Reconfigure contract: identical
// memory geometry is accepted (and the machine then runs under the new
// configuration), differing geometry is rejected.
func TestReconfigureGeometry(t *testing.T) {
	cfg := DefaultConfig()
	m := mustNew(t, cfg)

	alt := cfg
	alt.IssueWidth = 1
	alt.Seed = 0x1234
	if err := m.Reconfigure(alt); err != nil {
		t.Fatalf("same-geometry reconfigure rejected: %v", err)
	}
	pristine, err := PristineSnapshot(alt)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Restore(pristine); err != nil {
		t.Fatal(err)
	}
	m.LoadProgram(mustAssemble(t, ckptKernel).Instructions)
	snapInit(t, m)
	got, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}

	ref := mustNew(t, alt)
	ref.LoadProgram(mustAssemble(t, ckptKernel).Instructions)
	snapInit(t, ref)
	want, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("reconfigured machine diverges from fresh machine:\nfresh        %+v\nreconfigured %+v", want, got)
	}

	bad := cfg
	bad.MainMemBytes *= 2
	if err := m.Reconfigure(bad); err == nil || !strings.Contains(err.Error(), "geometry") {
		t.Fatalf("differing-geometry reconfigure: err=%v, want geometry error", err)
	}
}

// FuzzMidRunSnapshot feeds arbitrary binary program images and an
// arbitrary stop index through the mid-run snapshot machinery: run the
// program uninterrupted, then again stopped at the index with the state
// round-tripped through the CAMCKPT1 encoder and restored onto a fresh
// machine, and require the resumed remainder to reproduce the
// uninterrupted run's statistics, error and registers exactly. The
// watchdog is armed so fuzzed livelocks terminate — and so watchdog
// trips themselves are covered on both sides of the stop.
func FuzzMidRunSnapshot(f *testing.F) {
	f.Add(fuzzSeedImage(f, "\tSMOVE $1, #5\n"), uint16(0))
	f.Add(fuzzSeedImage(f, "\tSMOVE $1, #3\nspin:\tSADD $1, $1, #-1\n\tCB #spin, $1\n"), uint16(4))
	f.Add(fuzzSeedImage(f, "spin:\tJUMP #spin\n"), uint16(9)) // watchdog trips after the stop
	f.Add(fuzzSeedImage(f, "\tSMOVE $0, #4\n\tSMOVE $1, #0\n\tVLOAD $1, $0, #100\n\tVAV $1, $0, $1, $1\n\tVSTORE $1, $0, #200\n"), uint16(3))
	cfg := DefaultConfig()
	cfg.MaxCycles = 1 << 16
	f.Fuzz(func(t *testing.T, img []byte, stop uint16) {
		if len(img) > 512*core.WordBytes {
			return
		}
		prog, err := core.DecodeProgram(img)
		if err != nil {
			return
		}
		dp, err := Predecode(prog)
		if err != nil {
			return // rejected programs are the other fuzzers' business
		}
		ref, err := New(cfg)
		if err != nil {
			t.Fatalf("default config rejected: %v", err)
		}
		ref.LoadDecoded(dp)
		wantStats, wantErr := ref.Run()

		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.LoadDecoded(dp)
		k := int64(stop)
		if wantStats.Instructions > 0 {
			k %= wantStats.Instructions + 1
		}
		partial, done, err := m.RunUntil(k)
		if err != nil {
			// The prefix died before reaching k: the uninterrupted run
			// must have died identically.
			if wantErr == nil || wantErr.Error() != err.Error() {
				t.Fatalf("prefix error %v, uninterrupted %v", err, wantErr)
			}
			return
		}
		if !done && partial.Instructions != k {
			t.Fatalf("RunUntil(%d) stopped at %d", k, partial.Instructions)
		}

		var file bytes.Buffer
		if err := WriteCheckpoint(&file, m.Checkpoint()); err != nil {
			t.Fatal(err)
		}
		ckpt, err := ReadCheckpoint(bytes.NewReader(file.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Restore(ckpt); err != nil {
			t.Fatal(err)
		}
		gotStats, gotErr := fresh.Resume()
		if (wantErr == nil) != (gotErr == nil) ||
			(wantErr != nil && wantErr.Error() != gotErr.Error()) {
			t.Fatalf("errors diverge at stop %d: uninterrupted %v, resumed %v", k, wantErr, gotErr)
		}
		if !reflect.DeepEqual(wantStats, gotStats) {
			t.Fatalf("stats diverge at stop %d:\nuninterrupted %+v\nresumed       %+v", k, wantStats, gotStats)
		}
		for r := 0; r < core.NumGPRs; r++ {
			if ref.GPR(uint8(r)) != fresh.GPR(uint8(r)) {
				t.Fatalf("$%d = %d, uninterrupted %d", r,
					int32(fresh.GPR(uint8(r))), int32(ref.GPR(uint8(r))))
			}
		}
	})
}
