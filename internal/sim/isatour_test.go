package sim

import (
	"testing"

	"cambricon/internal/core"
	"cambricon/internal/fixed"
)

// tourSrc exercises every one of the 43 Cambricon instructions at least
// once in a single program.
const tourSrc = `
	// sizes and scratchpad regions
	SMOVE  $1, #8         // vector length
	SMOVE  $2, #64        // matrix elements (8x8)
	SMOVE  $10, #0        // vspad a
	SMOVE  $11, #64       // vspad b
	SMOVE  $12, #128      // vspad c
	SMOVE  $20, #0        // mspad A
	SMOVE  $21, #1024     // mspad B
	SMOVE  $22, #2048     // mspad C

	// vector sources
	RV     $10, $1
	RV     $11, $1
	VSTORE $10, $1, #1000
	VLOAD  $12, $1, #1000
	VMOVE  $12, $1, $10

	// vector computational
	VAV    $12, $1, $10, $11
	VSV    $12, $1, $10, $11
	VMV    $12, $1, $10, $11
	VDV    $12, $1, $10, $11
	VAS    $12, $1, $10, #256
	VEXP   $12, $1, $10
	VLOG   $12, $1, $12   // log(exp(a)) with a >= 0: argument >= 1
	VDOT   $3, $1, $10, $11
	VMAX   $4, $1, $10
	VMIN   $5, $1, $10

	// vector logical
	VGT    $12, $1, $10, $11
	VE     $12, $1, $10, $10
	VAND   $12, $1, $12, $12
	VOR    $12, $1, $12, $12
	VNOT   $12, $1, $12
	VGTM   $12, $1, $10, $11

	// matrix
	OP     $20, $10, $1, $11, $1
	MMS    $21, $2, $20, #128
	MAM    $22, $2, $20, $21
	MSM    $22, $2, $22, $21
	MMV    $12, $1, $20, $10, $1
	VMM    $12, $1, $20, $10, $1
	MSTORE $20, $2, #2000
	MLOAD  $21, $2, #2000
	MMOVE  $22, $2, $20

	// scalar computational and logical
	SADD   $6, $1, #1
	SSUB   $6, $6, $1
	SMUL   $6, $6, #3
	SDIV   $6, $6, #3
	SEXP   $7, #256
	SLOG   $7, $7
	SGT    $8, $6, $1
	SE     $8, $6, $6
	SAND   $8, $8, $8
	SSTORE $8, #3000
	SLOAD  $9, #3000

	// control
	SMOVE  $30, #2
loop:	SADD   $30, $30, #-1
	CB     #loop, $30
	JUMP   #end
	SMOVE  $31, #999      // must be skipped
end:	SMOVE  $32, #1
`

func TestISATourCoversAll43Instructions(t *testing.T) {
	p := mustAssemble(t, tourSrc)
	m := mustNew(t, DefaultConfig())
	m.LoadProgram(p.Instructions)
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range core.Opcodes() {
		if stats.ByOpcode[op] == 0 {
			t.Errorf("opcode %v never executed by the tour", op)
		}
	}
	if got := len(stats.TopOpcodes(0)); got != core.NumInstructions {
		t.Errorf("histogram covers %d opcodes, want %d", got, core.NumInstructions)
	}
	// Spot-check architectural effects across the tour.
	if m.GPR(31) != 0 {
		t.Error("JUMP failed to skip the poison instruction")
	}
	if m.GPR(32) != 1 {
		t.Error("fall-through to end label failed")
	}
	if got := int32(m.GPR(9)); got != 1 {
		t.Errorf("SSTORE/SLOAD round trip = %d, want 1", got)
	}
	// SEXP(1.0) then SLOG back: ~1.0 within two quantization steps.
	if got := fixed.Num(int32(m.GPR(7))).Float(); got < 1-3.0/256 || got > 1+3.0/256 {
		t.Errorf("SLOG(SEXP(1)) = %v", got)
	}
	// VMAX >= VMIN over the same vector.
	if int16(m.GPR(4)) < int16(m.GPR(5)) {
		t.Error("VMAX below VMIN")
	}
	if stats.BranchesTaken != 2 { // one CB repeat + one JUMP
		t.Errorf("taken branches = %d, want 2", stats.BranchesTaken)
	}
}

func TestISATourDynamicMixConsistent(t *testing.T) {
	p := mustAssemble(t, tourSrc)
	m := mustNew(t, DefaultConfig())
	m.LoadProgram(p.Instructions)
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	var byTypeFromOps [core.NumTypes]int64
	for _, op := range core.Opcodes() {
		byTypeFromOps[op.Type()] += stats.ByOpcode[op]
	}
	for i, typ := range core.Types() {
		if byTypeFromOps[typ] != stats.ByType[typ] {
			t.Errorf("type %d: opcode histogram sums to %d, ByType says %d",
				i, byTypeFromOps[typ], stats.ByType[typ])
		}
	}
	var total int64
	for _, n := range stats.ByType {
		total += n
	}
	if total != stats.Instructions {
		t.Errorf("type counts sum to %d, instructions %d", total, stats.Instructions)
	}
}

func TestEdgeSemantics(t *testing.T) {
	// Division by a zero element clamps instead of faulting (vector ops
	// must not kill a whole pipeline for one lane, unlike scalar SDIV).
	src := `
	SMOVE  $1, #4
	SMOVE  $10, #0
	SMOVE  $11, #64
	SMOVE  $12, #128
	VSV    $11, $1, $11, $11    // b = 0
	VAS    $10, $1, $11, #512   // a = 2.0
	VDV    $12, $1, $10, $11    // 2/0 -> clamp to Max
	VSTORE $12, $1, #1000
	VLOG   $12, $1, $11         // log(0) -> clamp to Min
	VSTORE $12, $1, #1100
	VAS    $10, $1, $11, #2560  // a = 10
	VEXP   $12, $1, $10         // exp(10) saturates
	VSTORE $12, $1, #1200
`
	m := mustNew(t, DefaultConfig())
	p := mustAssemble(t, src)
	m.LoadProgram(p.Instructions)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	div, _ := m.ReadMainNums(1000, 4)
	logv, _ := m.ReadMainNums(1100, 4)
	expv, _ := m.ReadMainNums(1200, 4)
	for i := 0; i < 4; i++ {
		if div[i] != fixed.Max {
			t.Errorf("2/0 lane %d = %v, want Max", i, div[i])
		}
		if logv[i] != fixed.Min {
			t.Errorf("log(0) lane %d = %v, want Min", i, logv[i])
		}
		if expv[i] != fixed.Max {
			t.Errorf("exp(10) lane %d = %v, want Max", i, expv[i])
		}
	}
}

func TestJumpRegisterVariant(t *testing.T) {
	// JUMP through a register offset.
	src := `
	SMOVE $1, #2
	JUMP  $1
	SMOVE $2, #999
	SMOVE $3, #1
`
	m := mustNew(t, DefaultConfig())
	p := mustAssemble(t, src)
	m.LoadProgram(p.Instructions)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.GPR(2) != 0 || m.GPR(3) != 1 {
		t.Errorf("register-offset JUMP: $2=%d $3=%d", m.GPR(2), m.GPR(3))
	}
}

func TestCBRegisterOffsetVariant(t *testing.T) {
	// CB with the offset in a register rather than an immediate label.
	src := `
	SMOVE $1, #1
	SMOVE $2, #2
	CB    $1, $2
	SMOVE $3, #999
	SMOVE $4, #1
`
	// Operand order here is predictor-first since both are registers.
	m := mustNew(t, DefaultConfig())
	p := mustAssemble(t, src)
	m.LoadProgram(p.Instructions)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.GPR(3) != 0 || m.GPR(4) != 1 {
		t.Errorf("register-offset CB: $3=%d $4=%d", m.GPR(3), m.GPR(4))
	}
}
