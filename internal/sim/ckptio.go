package sim

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"cambricon/internal/core"
	"cambricon/internal/mem"
)

// Checkpoint file format ("CAMCKPT1"): a versioned, integrity-checked
// serialization of a Snapshot — run-boundary or mid-run — so a machine
// state can cross process boundaries (camsim -checkpoint / -resume).
// Layout, all integers little-endian:
//
//	magic   [8]byte  "CAMCKPT1"
//	version uint32   (currently 1)
//	flags   uint32   bit 0: mid-run, bit 1: program was pre-decoded
//	config  uint32 length + JSON        (Config, all exported fields)
//	gpr     core.NumGPRs × uint32
//	pc      int64
//	rng     uint64
//	program uint32 length + core.EncodeProgram bytes (0 = none)
//	vspad   uint32 length + bytes
//	mspad   uint32 length + bytes
//	main    uint64 size, uint32 pages, then per page ascending:
//	        uint32 index + uint32 length + bytes
//	mid-run only: Stats (fixed-size, binary.Write) + pipeState fields
//	crc     uint32   IEEE CRC-32 of everything above
//
// The CRC and the per-field validation on read mean a truncated or
// bit-flipped file is an error, never a silently wrong machine state.
const (
	ckptMagic   = "CAMCKPT1"
	ckptVersion = 1

	ckptFlagMidRun    = 1 << 0
	ckptFlagPredecode = 1 << 1
)

// WriteCheckpoint serializes s to w. The encoding is deterministic:
// identical snapshots produce identical bytes.
func WriteCheckpoint(w io.Writer, s *Snapshot) error {
	var buf bytes.Buffer
	buf.WriteString(ckptMagic)
	w32 := func(v uint32) { binary.Write(&buf, binary.LittleEndian, v) }
	w64 := func(v uint64) { binary.Write(&buf, binary.LittleEndian, v) }
	w32(ckptVersion)
	var flags uint32
	if s.stats != nil {
		flags |= ckptFlagMidRun
	}
	if s.dec != nil {
		flags |= ckptFlagPredecode
	}
	w32(flags)

	cfgJSON, err := json.Marshal(s.cfg)
	if err != nil {
		return fmt.Errorf("sim: checkpoint: marshal config: %w", err)
	}
	w32(uint32(len(cfgJSON)))
	buf.Write(cfgJSON)

	binary.Write(&buf, binary.LittleEndian, s.gpr)
	w64(uint64(int64(s.pc)))
	w64(s.rng)

	var progImg []byte
	if len(s.prog) > 0 {
		if progImg, err = core.EncodeProgram(s.prog); err != nil {
			return fmt.Errorf("sim: checkpoint: encode program: %w", err)
		}
	}
	w32(uint32(len(progImg)))
	buf.Write(progImg)

	w32(uint32(len(s.vspad)))
	buf.Write(s.vspad)
	w32(uint32(len(s.mspad)))
	buf.Write(s.mspad)

	w64(uint64(s.main.Size()))
	pages := s.main.StoredPages()
	w32(uint32(len(pages)))
	for _, p := range pages {
		pg := s.main.Page(p)
		w32(uint32(p))
		w32(uint32(len(pg)))
		buf.Write(pg)
	}

	if s.stats != nil {
		binary.Write(&buf, binary.LittleEndian, s.stats)
		writePipeState(&buf, s.pipe)
	}

	w32(crc32.ChecksumIEEE(buf.Bytes()))
	_, err = w.Write(buf.Bytes())
	return err
}

func writePipeState(buf *bytes.Buffer, p *pipeState) {
	le := binary.LittleEndian
	w64 := func(v int64) { binary.Write(buf, le, v) }
	w32 := func(v int) { binary.Write(buf, le, uint32(v)) }
	ws := func(vs []int64) {
		w32(len(vs))
		binary.Write(buf, le, vs)
	}
	w64(p.count)
	w32(p.iqPos)
	w32(p.robPos)
	w64(p.fetchCycle)
	w32(p.fetchSlot)
	w64(p.redirect)
	ws(p.iqIssued)
	w64(p.issueCycle)
	w32(p.issueSlot)
	w64(p.lastIssueTime)
	ws(p.robCommit)
	w64(p.commitCycle)
	w32(p.commitSlot)
	w64(p.lastCommit)
	w64(p.memCount)
	w32(p.mqPos)
	w64(p.mqMaxDone)
	w32(len(p.mq))
	for i := range p.mq {
		q := &p.mq[i]
		w64(q.done)
		w32(q.nAcc)
		buf.WriteByte(q.wmask)
		buf.WriteByte(q.amask)
		for _, a := range q.accBuf {
			buf.WriteByte(byte(a.sp))
			if a.write {
				buf.WriteByte(1)
			} else {
				buf.WriteByte(0)
			}
			w64(int64(a.reg.Addr))
			w64(int64(a.reg.N))
		}
	}
	ws(p.mqRetire)
	w64(p.scalarNext)
	w64(p.l1Next)
	w64(p.vectorFree)
	w64(p.matrixFree)
	binary.Write(buf, le, p.regReady[:])
}

// ckptReader parses the checkpoint byte stream with bounds checking; the
// first short read latches an error so parsing code stays linear.
type ckptReader struct {
	b   []byte
	off int
	err error
}

func (r *ckptReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.err = fmt.Errorf("sim: checkpoint: truncated at offset %d (need %d bytes)", r.off, n)
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

func (r *ckptReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *ckptReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *ckptReader) i64() int64 { return int64(r.u64()) }

func (r *ckptReader) cint() int {
	v := r.u32()
	if v > math.MaxInt32 {
		r.err = fmt.Errorf("sim: checkpoint: count %d out of range", v)
		return 0
	}
	return int(v)
}

func (r *ckptReader) byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *ckptReader) i64s(maxLen int) []int64 {
	n := r.cint()
	if r.err != nil {
		return nil
	}
	if n > maxLen {
		r.err = fmt.Errorf("sim: checkpoint: slice length %d exceeds limit %d", n, maxLen)
		return nil
	}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = r.i64()
	}
	return vs
}

// ReadCheckpoint deserializes a checkpoint written by WriteCheckpoint.
// The CRC, magic, version and every structural invariant are verified;
// pre-decoded programs are re-predecoded so the restored machine runs
// through the same dispatch path it was checkpointed from.
func ReadCheckpoint(src io.Reader) (*Snapshot, error) {
	raw, err := io.ReadAll(src)
	if err != nil {
		return nil, fmt.Errorf("sim: checkpoint: read: %w", err)
	}
	if len(raw) < len(ckptMagic)+12 {
		return nil, fmt.Errorf("sim: checkpoint: file too short (%d bytes)", len(raw))
	}
	if string(raw[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("sim: checkpoint: bad magic %q", raw[:len(ckptMagic)])
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("sim: checkpoint: CRC mismatch (file %08x, computed %08x)", want, got)
	}
	r := &ckptReader{b: body, off: len(ckptMagic)}

	if v := r.u32(); r.err == nil && v != ckptVersion {
		return nil, fmt.Errorf("sim: checkpoint: unsupported version %d (want %d)", v, ckptVersion)
	}
	flags := r.u32()

	var cfg Config
	cfgJSON := r.take(r.cint())
	if r.err == nil {
		if err := json.Unmarshal(cfgJSON, &cfg); err != nil {
			return nil, fmt.Errorf("sim: checkpoint: parse config: %w", err)
		}
		if err := cfg.validate(); err != nil {
			return nil, fmt.Errorf("sim: checkpoint: invalid config: %w", err)
		}
	}

	s := &Snapshot{cfg: cfg}
	for i := range s.gpr {
		s.gpr[i] = r.u32()
	}
	s.pc = int(r.i64())
	s.rng = r.u64()

	if progImg := r.take(r.cint()); r.err == nil && len(progImg) > 0 {
		prog, err := core.DecodeProgram(progImg)
		if err != nil {
			return nil, fmt.Errorf("sim: checkpoint: decode program: %w", err)
		}
		s.prog = prog
		if flags&ckptFlagPredecode != 0 {
			dp, err := Predecode(prog)
			if err != nil {
				return nil, fmt.Errorf("sim: checkpoint: predecode program: %w", err)
			}
			s.dec = dp
			s.prog = dp.insts
		}
	}

	s.vspad = append([]byte(nil), r.take(r.cint())...)
	s.mspad = append([]byte(nil), r.take(r.cint())...)
	if r.err == nil && (len(s.vspad) != cfg.VectorSpadBytes || len(s.mspad) != cfg.MatrixSpadBytes) {
		return nil, fmt.Errorf("sim: checkpoint: scratchpad images %d/%d bytes, config says %d/%d",
			len(s.vspad), len(s.mspad), cfg.VectorSpadBytes, cfg.MatrixSpadBytes)
	}

	mainSize := int(r.i64())
	nPages := r.cint()
	if r.err == nil && mainSize != cfg.MainMemBytes {
		return nil, fmt.Errorf("sim: checkpoint: main image %d bytes, config says %d", mainSize, cfg.MainMemBytes)
	}
	pages := make([]int, 0, nPages)
	contents := make([][]byte, 0, nPages)
	for i := 0; i < nPages && r.err == nil; i++ {
		pages = append(pages, r.cint())
		contents = append(contents, r.take(r.cint()))
	}
	if r.err == nil {
		if s.main, err = mem.BuildSparseImage(mainSize, pages, contents); err != nil {
			return nil, fmt.Errorf("sim: checkpoint: %w", err)
		}
	}

	if flags&ckptFlagMidRun != 0 && r.err == nil {
		var st Stats
		if err := binary.Read(bytes.NewReader(r.take(int(statsWireSize))), binary.LittleEndian, &st); err != nil && r.err == nil {
			return nil, fmt.Errorf("sim: checkpoint: read stats: %w", err)
		}
		s.stats = &st
		if s.pipe, err = readPipeState(r, &cfg); err != nil {
			return nil, err
		}
	}

	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("sim: checkpoint: %d trailing bytes", len(body)-r.off)
	}
	return s, nil
}

// statsWireSize is the serialized size of Stats — fixed because every
// field is an int64 or an int64 array (binary.Write lays it out with no
// padding).
var statsWireSize = int64(binary.Size(Stats{}))

func readPipeState(r *ckptReader, cfg *Config) (*pipeState, error) {
	// Ring sizes are bounded by the validated configuration, so a
	// corrupted length cannot force a huge allocation.
	maxRing := cfg.IssueQueueDepth + cfg.ROBDepth + cfg.MemQueueDepth
	p := &pipeState{}
	p.count = r.i64()
	p.iqPos = r.cint()
	p.robPos = r.cint()
	p.fetchCycle = r.i64()
	p.fetchSlot = r.cint()
	p.redirect = r.i64()
	p.iqIssued = r.i64s(maxRing)
	p.issueCycle = r.i64()
	p.issueSlot = r.cint()
	p.lastIssueTime = r.i64()
	p.robCommit = r.i64s(maxRing)
	p.commitCycle = r.i64()
	p.commitSlot = r.cint()
	p.lastCommit = r.i64()
	p.memCount = r.i64()
	p.mqPos = r.cint()
	p.mqMaxDone = r.i64()
	nMQ := r.cint()
	if r.err == nil && nMQ > maxRing {
		return nil, fmt.Errorf("sim: checkpoint: memory queue length %d exceeds limit %d", nMQ, maxRing)
	}
	p.mq = make([]mqEntry, nMQ)
	for i := 0; i < nMQ && r.err == nil; i++ {
		q := &p.mq[i]
		q.done = r.i64()
		q.nAcc = r.cint()
		if r.err == nil && (q.nAcc < 0 || q.nAcc > len(q.accBuf)) {
			return nil, fmt.Errorf("sim: checkpoint: memory queue entry has %d accesses", q.nAcc)
		}
		q.wmask = r.byte()
		q.amask = r.byte()
		for j := range q.accBuf {
			q.accBuf[j].sp = space(r.byte())
			q.accBuf[j].write = r.byte() != 0
			q.accBuf[j].reg.Addr = int(r.i64())
			q.accBuf[j].reg.N = int(r.i64())
		}
	}
	p.mqRetire = r.i64s(maxRing)
	p.scalarNext = r.i64()
	p.l1Next = r.i64()
	p.vectorFree = r.i64()
	p.matrixFree = r.i64()
	for i := range p.regReady {
		p.regReady[i] = r.i64()
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(p.iqIssued) != cfg.IssueQueueDepth || len(p.robCommit) != cfg.ROBDepth ||
		len(p.mq) != cfg.MemQueueDepth || len(p.mqRetire) != cfg.MemQueueDepth {
		return nil, fmt.Errorf("sim: checkpoint: pipeline ring sizes %d/%d/%d/%d do not match config %d/%d/%d",
			len(p.iqIssued), len(p.robCommit), len(p.mq), len(p.mqRetire),
			cfg.IssueQueueDepth, cfg.ROBDepth, cfg.MemQueueDepth)
	}
	return p, nil
}
