package sim

import (
	"reflect"
	"strings"
	"testing"

	"cambricon/internal/fixed"
	"cambricon/internal/mem"
)

// snapKernel exercises every state a snapshot must capture: the RV stream
// (PRNG), scalar registers, both a vector-scratchpad round trip and a
// main-memory store (dirty pages), and a loop (PC/branching).
const snapKernel = `
	SMOVE  $1, #32          // element count
	SMOVE  $2, #0           // vspad region A
	SMOVE  $3, #4096        // vspad region B
	SMOVE  $8, #4           // loop counter
l:	RV     $2, $1           // fresh random vector each iteration
	VLOAD  $3, $1, #1000    // input from main
	VAV    $3, $1, $2, $3   // input + random
	VSTORE $3, $1, #2000    // result back to main
	SADD   $10, $10, #7
	SADD   $8, $8, #-1
	CB     #l, $8
`

// snapInit writes the kernel's input region.
func snapInit(t *testing.T, m *Machine) {
	t.Helper()
	in := make([]float64, 32)
	for i := range in {
		in[i] = float64(i%7) * 0.25
	}
	if err := m.WriteMainNums(1000, fixed.FromFloats(in)); err != nil {
		t.Fatal(err)
	}
}

// snapRun runs the loaded kernel and returns its stats plus the result
// region and a scalar register.
func snapRun(t *testing.T, m *Machine) (Stats, []fixed.Num, uint32) {
	t.Helper()
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.ReadMainNums(2000, 32)
	if err != nil {
		t.Fatal(err)
	}
	return st, out, m.GPR(10)
}

func snapConfig() Config {
	cfg := DefaultConfig()
	cfg.Seed = 0x1234
	return cfg
}

// TestRestoreMatchesFresh pins the warm-start contract: a machine
// restored from a post-init snapshot produces bit-identical statistics,
// outputs and registers to a freshly constructed machine that replayed
// the same initialization — across repeated restores.
func TestRestoreMatchesFresh(t *testing.T) {
	prog := mustAssemble(t, snapKernel)

	fresh := mustNew(t, snapConfig())
	snapInit(t, fresh)
	fresh.LoadProgram(prog.Instructions)
	wantSt, wantOut, wantGPR := snapRun(t, fresh)

	m := mustNew(t, snapConfig())
	snapInit(t, m)
	m.LoadProgram(prog.Instructions)
	snap := m.Snapshot()
	for i := 0; i < 3; i++ {
		st, out, gpr := snapRun(t, m)
		if !reflect.DeepEqual(st, wantSt) {
			t.Fatalf("restore %d: stats = %+v, want %+v", i, st, wantSt)
		}
		if !reflect.DeepEqual(out, wantOut) {
			t.Fatalf("restore %d: outputs differ from fresh run", i)
		}
		if gpr != wantGPR {
			t.Fatalf("restore %d: $10 = %d, want %d", i, gpr, wantGPR)
		}
		if err := m.Restore(snap); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRestoreOntoForeignMachine pins the pool-recycling path: a machine
// that never held the snapshot's image (its dirty state is relative to
// nothing) restores via a full copy and still matches a fresh machine.
func TestRestoreOntoForeignMachine(t *testing.T) {
	prog := mustAssemble(t, snapKernel)

	donor := mustNew(t, snapConfig())
	snapInit(t, donor)
	donor.LoadProgram(prog.Instructions)
	snap := donor.Snapshot()
	wantSt, wantOut, wantGPR := snapRun(t, donor)

	// The foreign machine has run arbitrary other work first.
	foreign := mustNew(t, snapConfig())
	if err := foreign.WriteMainNums(1000, fixed.FromFloats(make([]float64, 32))); err != nil {
		t.Fatal(err)
	}
	foreign.LoadProgram(mustAssemble(t, "\tSMOVE $1, #8\n\tSMOVE $2, #0\n\tRV $2, $1\n").Instructions)
	if _, err := foreign.Run(); err != nil {
		t.Fatal(err)
	}

	if err := foreign.Restore(snap); err != nil {
		t.Fatal(err)
	}
	st, out, gpr := snapRun(t, foreign)
	if !reflect.DeepEqual(st, wantSt) {
		t.Fatalf("foreign restore: stats = %+v, want %+v", st, wantSt)
	}
	if !reflect.DeepEqual(out, wantOut) || gpr != wantGPR {
		t.Fatal("foreign restore: outputs differ from fresh run")
	}
}

// TestRestoreConfigMismatch pins the safety check: restoring across
// architecturally different configurations fails, while a differing
// watchdog budget (MaxCycles) is explicitly allowed.
func TestRestoreConfigMismatch(t *testing.T) {
	m := mustNew(t, snapConfig())
	snap := m.Snapshot()

	other := snapConfig()
	other.IssueWidth = 1
	mm := mustNew(t, other)
	if err := mm.Restore(snap); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("cross-config restore: err = %v", err)
	}

	budget := snapConfig()
	budget.MaxCycles = 12345
	mb := mustNew(t, budget)
	if err := mb.Restore(snap); err != nil {
		t.Fatalf("MaxCycles-only difference should restore: %v", err)
	}
	if got := mb.Config().MaxCycles; got != 12345 {
		t.Fatalf("restore clobbered MaxCycles: %d", got)
	}
}

// TestSetMaxCycles pins the budget setter used by pooled machines.
func TestSetMaxCycles(t *testing.T) {
	m := mustNew(t, snapConfig())
	m.SetMaxCycles(99)
	if got := m.Config().MaxCycles; got != 99 {
		t.Fatalf("MaxCycles = %d, want 99", got)
	}
	m.SetMaxCycles(-1)
	if got := m.Config().MaxCycles; got != 0 {
		t.Fatalf("negative budget should disable the watchdog, got %d", got)
	}
}

// TestSnapshotBytes sanity-checks the captured image accounting: main
// memory is held page-sparse, so a pristine machine's snapshot keeps
// only the dense scratchpad copies resident, while DenseBytes reports
// what the historical full-image capture would have occupied.
func TestSnapshotBytes(t *testing.T) {
	cfg := snapConfig()
	m := mustNew(t, cfg)
	snap := m.Snapshot()
	if want := cfg.VectorSpadBytes + cfg.MatrixSpadBytes; snap.Bytes() != want {
		t.Fatalf("pristine Snapshot.Bytes() = %d, want %d (sparse main should be empty)", snap.Bytes(), want)
	}
	if want := cfg.VectorSpadBytes + cfg.MatrixSpadBytes + cfg.MainMemBytes; snap.DenseBytes() != want {
		t.Fatalf("Snapshot.DenseBytes() = %d, want %d", snap.DenseBytes(), want)
	}
	if !archEqual(snap.Config(), cfg) {
		t.Fatal("snapshot config does not match capture config")
	}

	// A prepared image keeps only its touched pages resident.
	mm := mustNew(t, cfg)
	snapInit(t, mm)
	prepared := mm.Snapshot()
	if prepared.Bytes() >= prepared.DenseBytes() {
		t.Fatalf("prepared snapshot is not sparse: resident %d >= dense %d",
			prepared.Bytes(), prepared.DenseBytes())
	}
	extra := prepared.Bytes() - (cfg.VectorSpadBytes + cfg.MatrixSpadBytes)
	if extra <= 0 || extra > 4*mem.PageBytes {
		t.Fatalf("prepared snapshot resident main = %d bytes, want a handful of pages", extra)
	}
}

// TestRestoreZeroesStaleDirtyPages pins the sparse-restore edge case: a
// run that writes a page the snapshot does not store (an all-zero page
// at capture time) must see it zeroed again after Restore.
func TestRestoreZeroesStaleDirtyPages(t *testing.T) {
	prog := mustAssemble(t, snapKernel)
	m := mustNew(t, snapConfig())
	snapInit(t, m)
	m.LoadProgram(prog.Instructions)
	snap := m.Snapshot()
	// Dirty a far page that is all-zero in the snapshot.
	const farAddr = 8 << 20
	if err := m.WriteMainWord(farAddr, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if m.LastRestoreBytes() == 0 {
		t.Fatal("restore after a dirtying write reported zero copy volume")
	}
	v, err := m.ReadMainWord(farAddr)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("stale dirty page survived restore: got %#x, want 0", v)
	}
	// And the restored machine still runs bit-identically.
	st, _, _ := snapRun(t, m)
	fresh := mustNew(t, snapConfig())
	snapInit(t, fresh)
	fresh.LoadProgram(prog.Instructions)
	wantSt, _, _ := snapRun(t, fresh)
	if !reflect.DeepEqual(st, wantSt) {
		t.Fatalf("post-restore stats = %+v, want %+v", st, wantSt)
	}
}
