package sim

import (
	"fmt"
	"sort"
	"strings"

	"cambricon/internal/core"
	"cambricon/internal/trace"
)

// Stats aggregates a run's dynamic behaviour. Cycle counts come from the
// timing model; activity counts feed the energy model in internal/energy.
type Stats struct {
	// Cycles is the total execution time in cycles (commit of the last
	// instruction).
	Cycles int64
	// Instructions is the dynamic instruction count.
	Instructions int64
	// ByType counts dynamic instructions per Fig. 11 category.
	ByType [core.NumTypes]int64
	// ByOpcode counts dynamic instructions per opcode (index by
	// core.Opcode; index 0 is unused).
	ByOpcode [core.NumInstructions + 1]int64

	// BranchesTaken counts taken control-flow redirects.
	BranchesTaken int64

	// ScalarOps counts scalar ALU operations.
	ScalarOps int64
	// VectorBusyCycles is the vector functional unit's occupied time.
	VectorBusyCycles int64
	// VectorElems counts 16-bit element operations in the vector unit.
	VectorElems int64
	// MatrixBusyCycles is the matrix functional unit's occupied time.
	MatrixBusyCycles int64
	// MACOps counts multiply-accumulate element operations in the matrix
	// unit.
	MACOps int64
	// TranscendentalElems counts CORDIC element operations.
	TranscendentalElems int64

	// DMABytes counts main-memory traffic (both directions).
	DMABytes int64
	// SpadBytes counts scratchpad traffic (reads + writes).
	SpadBytes int64
	// BankConflictCycles counts extra cycles serialized by the Fig. 9
	// crossbar.
	BankConflictCycles int64

	// FaultsInjected counts faults the attached fault.Injector actually
	// applied during the run (zero, and omitted from JSON, on fault-free
	// runs).
	FaultsInjected int64 `json:",omitempty"`

	// MemDepStallCycles counts cycles instructions waited in the memory
	// queue on overlapping earlier accesses.
	MemDepStallCycles int64
	// FUBusyStallCycles counts cycles ready instructions waited for a
	// busy functional unit.
	FUBusyStallCycles int64
	// RegStallCycles counts issue-stage waits for source registers.
	RegStallCycles int64
	// ROBFullStallCycles counts issue-stage waits for reorder-buffer
	// space.
	ROBFullStallCycles int64
	// MemQueueFullStallCycles counts issue-stage waits for memory-queue
	// space.
	MemQueueFullStallCycles int64

	// Stalls is the attributed CPI stack: every cycle of the run charged
	// to exactly one cause (see pipeline.advance). Unlike the raw
	// per-instruction stall counters above — which sum each
	// instruction's own waits and therefore double-count wall-clock
	// cycles when several instructions wait out the same interval — the
	// attributed buckets are disjoint by construction and sum to exactly
	// Cycles on a completed run (CheckConsistency enforces this).
	Stalls trace.Breakdown `json:"StallBreakdown"`
}

// StallBreakdown returns the attributed CPI stack: cycles per stall
// cause, disjoint, summing to Cycles for a completed run.
func (s *Stats) StallBreakdown() trace.Breakdown { return s.Stalls }

// CheckConsistency verifies the run's cycle accounting invariants:
// the attributed stall breakdown must cover every cycle exactly once,
// and no single-resource busy counter can exceed the run length. It
// reports the first violated invariant. Valid after a completed Run;
// a run that faulted mid-program still satisfies these checks because
// Cycles tracks the last committed instruction.
func (s *Stats) CheckConsistency() error {
	for i, v := range s.Stalls {
		if v < 0 {
			return fmt.Errorf("sim: stall bucket %v is negative (%d)", trace.Cause(i), v)
		}
	}
	if sum := s.Stalls.Sum(); sum != s.Cycles {
		return fmt.Errorf("sim: attributed stall cycles sum to %d, want exactly Cycles=%d", sum, s.Cycles)
	}
	if s.VectorBusyCycles > s.Cycles {
		return fmt.Errorf("sim: VectorBusyCycles %d exceeds Cycles %d", s.VectorBusyCycles, s.Cycles)
	}
	if s.MatrixBusyCycles > s.Cycles {
		return fmt.Errorf("sim: MatrixBusyCycles %d exceeds Cycles %d", s.MatrixBusyCycles, s.Cycles)
	}
	for _, raw := range []struct {
		name string
		v    int64
	}{
		{"MemDepStallCycles", s.MemDepStallCycles},
		{"FUBusyStallCycles", s.FUBusyStallCycles},
		{"RegStallCycles", s.RegStallCycles},
		{"ROBFullStallCycles", s.ROBFullStallCycles},
		{"MemQueueFullStallCycles", s.MemQueueFullStallCycles},
		{"BankConflictCycles", s.BankConflictCycles},
	} {
		if raw.v < 0 {
			return fmt.Errorf("sim: %s is negative (%d)", raw.name, raw.v)
		}
	}
	return nil
}

// OpcodeCount is one entry of a dynamic opcode histogram.
type OpcodeCount struct {
	Op    core.Opcode
	Count int64
}

// TopOpcodes returns the n most-executed opcodes, descending.
func (s *Stats) TopOpcodes(n int) []OpcodeCount {
	var all []OpcodeCount
	for op := 1; op < len(s.ByOpcode); op++ {
		if s.ByOpcode[op] > 0 {
			all = append(all, OpcodeCount{Op: core.Opcode(op), Count: s.ByOpcode[op]})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Op < all[j].Op
	})
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

// Seconds converts the cycle count to wall-clock time at the given clock.
func (s *Stats) Seconds(clockHz float64) float64 {
	return float64(s.Cycles) / clockHz
}

// Utilization returns the busy fraction of the vector and matrix units.
func (s *Stats) Utilization() (vector, matrix float64) {
	if s.Cycles == 0 {
		return 0, 0
	}
	return float64(s.VectorBusyCycles) / float64(s.Cycles),
		float64(s.MatrixBusyCycles) / float64(s.Cycles)
}

// String renders a human-readable summary.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d instructions=%d (", s.Cycles, s.Instructions)
	for i, typ := range core.Types() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%d", typ, s.ByType[typ])
	}
	vu, mu := s.Utilization()
	fmt.Fprintf(&b, ") vectorUtil=%.1f%% matrixUtil=%.1f%% macs=%d dmaBytes=%d",
		100*vu, 100*mu, s.MACOps, s.DMABytes)
	return b.String()
}
