package reqtrace

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

const validHeader = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

func TestParseTraceparentValid(t *testing.T) {
	tp, ok := ParseTraceparent(validHeader)
	if !ok {
		t.Fatal("valid header rejected")
	}
	if got := tp.Trace.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id %q", got)
	}
	if got := tp.Parent.String(); got != "00f067aa0ba902b7" {
		t.Fatalf("parent id %q", got)
	}
	if tp.Flags != 0x01 {
		t.Fatalf("flags %#x", tp.Flags)
	}
	// Round trip through the formatter.
	if got := tp.String(); got != validHeader {
		t.Fatalf("String() = %q, want %q", got, validHeader)
	}
	// A future version with trailing fields parses by the 00 layout.
	future := "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"
	if ftp, ok := ParseTraceparent(future); !ok || ftp.Trace != tp.Trace {
		t.Fatalf("future-version header rejected: ok=%v tp=%+v", ok, ftp)
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",     // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-1",   // short flags
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",  // uppercase hex
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // reserved version
		"0x-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // non-hex version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero parent id
		"00-4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7-01",  // wrong delimiter
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x", // version 00 with trailing junk
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",  // non-hex trace id
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want rejected", h)
		}
	}
}

func TestNewTraceparentMintsDistinctSampledRoots(t *testing.T) {
	a, b := NewTraceparent(), NewTraceparent()
	if a.Trace.IsZero() || a.Parent.IsZero() {
		t.Fatalf("zero ids in %+v", a)
	}
	if a.Trace == b.Trace {
		t.Fatal("two minted traceparents share a trace id")
	}
	if a.Flags&0x01 == 0 {
		t.Fatalf("minted root not sampled: flags %#x", a.Flags)
	}
}

func TestRecorderSpanTree(t *testing.T) {
	tp, _ := ParseTraceparent(validHeader)
	r := NewRecorder("request", tp)
	var fake time.Duration
	r.clock = func() time.Duration { fake += time.Millisecond; return fake }

	wait := r.Start(Root, "sem.acquire")
	r.Annotate(wait, "rejected", false)
	r.End(wait)
	run := r.Start(Root, "sim.run")
	child := r.Start(run, "pool.acquire")
	r.Annotate(child, "reused", true)
	r.End(child)
	r.Annotate(run, "cycles", int64(12345))
	r.End(run)
	leak := r.Start(Root, "left.open") // closed by Finish at root end

	b := r.Finish()
	if b.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("bundle trace id %q", b.TraceID)
	}
	if len(b.SpanID) != 16 || b.SpanID == "00f067aa0ba902b7" {
		t.Fatalf("bundle span id %q should be fresh", b.SpanID)
	}
	if len(b.Spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(b.Spans))
	}
	root := b.Spans[0]
	if root.Name != "request" || root.Parent != -1 || root.End == 0 {
		t.Fatalf("root span %+v", root)
	}
	if b.Spans[int(child)].Parent != int(run) {
		t.Fatalf("child parent = %d, want %d", b.Spans[int(child)].Parent, int(run))
	}
	if b.Spans[int(leak)].End != root.End {
		t.Fatalf("open span not closed at root end: %+v vs root end %v", b.Spans[int(leak)], root.End)
	}
	if got, ok := b.IntAttr("sim.run", "cycles"); !ok || got != 12345 {
		t.Fatalf("IntAttr(sim.run, cycles) = %d, %v", got, ok)
	}
	if _, ok := b.IntAttr("sim.run", "absent"); ok {
		t.Fatal("IntAttr found an absent key")
	}
	if d := b.Duration(); d != root.End {
		t.Fatalf("Duration() = %v, want %v", d, root.End)
	}
	// The outgoing traceparent keeps the trace id but swaps in our span id.
	out := r.Traceparent()
	if !strings.HasPrefix(out, "00-4bf92f3577b34da6a3ce929d0e0e4736-") || strings.Contains(out, "00f067aa0ba902b7") {
		t.Fatalf("outgoing traceparent %q", out)
	}
	if _, ok := ParseTraceparent(out); !ok {
		t.Fatalf("outgoing traceparent %q does not parse", out)
	}
}

// TestNilRecorderIsFree pins the nil contract: every method of a nil
// recorder is a no-op that allocates nothing, and From on a bare
// context returns nil.
func TestNilRecorderIsFree(t *testing.T) {
	ctx := context.Background()
	big := int64(1) << 40 // large enough that boxing it would allocate
	allocs := testing.AllocsPerRun(100, func() {
		r := From(ctx)
		sp := r.Start(Root, "phase")
		r.AnnotateInt(sp, "k", big)
		r.AnnotateStr(sp, "s", "v")
		r.AnnotateBool(sp, "b", true)
		r.End(sp)
		if r.TraceID() != "" || r.Traceparent() != "" {
			t.Fatal("nil recorder leaked identity")
		}
		if r.Finish() != nil {
			t.Fatal("nil recorder finished to a bundle")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil-recorder path allocates %v per run, want 0", allocs)
	}
	if With(ctx, nil) != ctx {
		t.Fatal("With(ctx, nil) should return ctx unchanged")
	}
}

func TestContextRoundTrip(t *testing.T) {
	r := NewRecorder("request", Traceparent{})
	ctx := With(context.Background(), r)
	if From(ctx) != r {
		t.Fatal("From did not return the attached recorder")
	}
	if r.TraceID() == "" {
		t.Fatal("zero traceparent should mint a trace id")
	}
}

func TestStoreEviction(t *testing.T) {
	s := NewStore[int](3)
	for i, id := range []string{"1", "2", "3", "4"} {
		s.Put(id, i+1)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if _, ok := s.Get("1"); ok {
		t.Fatal("oldest entry not evicted")
	}
	for id, want := range map[string]int{"2": 2, "3": 3, "4": 4} {
		if v, ok := s.Get(id); !ok || v != want {
			t.Fatalf("Get(%q) = %d, %v; want %d", id, v, ok, want)
		}
	}
	// Replacing an entry neither grows nor evicts.
	s.Put("3", 33)
	if v, _ := s.Get("3"); v != 33 {
		t.Fatalf("replaced value = %d, want 33", v)
	}
	if s.Len() != 3 {
		t.Fatalf("Len after replace = %d, want 3", s.Len())
	}
	if _, ok := s.Get("2"); !ok {
		t.Fatal("replace evicted an unrelated entry")
	}
}

func TestBundleJSONRoundTrip(t *testing.T) {
	r := NewRecorder("request", Traceparent{})
	sp := r.Start(Root, "phase")
	r.Annotate(sp, "note", "hello")
	r.End(sp)
	b := r.Finish()
	blob, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var back Bundle
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.TraceID != b.TraceID || len(back.Spans) != len(b.Spans) {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
