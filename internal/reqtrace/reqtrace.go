// Package reqtrace is the request-scoped tracing layer of the serving
// stack: where internal/trace answers "where did the simulated cycles of
// one run go" and internal/metrics answers "how is the fleet behaving",
// this package answers "where did the wall time of one request go" — a
// span tree covering HTTP ingress, semaphore wait, pool acquire,
// snapshot restore, decode-cache lookup and the simulation itself,
// joined to the outside world through W3C `traceparent` propagation.
//
// The contract mirrors trace.Tracer's and metrics.Registry's: tracing
// must be free when unused. Every Recorder method is nil-safe — a nil
// *Recorder is a no-op receiver, and From returns nil on a context with
// no recorder attached — so instrumented request paths stay
// allocation-free and produce bit-identical simulated statistics when
// nobody is recording.
package reqtrace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// TraceID is the 16-byte W3C trace id shared by every span of one
// distributed trace.
type TraceID [16]byte

// SpanID is the 8-byte W3C span (parent) id.
type SpanID [8]byte

// IsZero reports whether the id is all zeroes (invalid per the spec).
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is all zeroes (invalid per the spec).
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as lowercase hex.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the id as lowercase hex.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// Traceparent is the parsed form of the W3C `traceparent` header
// (version 00): the trace id, the caller's span id, and the trace flags
// (bit 0 = sampled).
type Traceparent struct {
	Trace  TraceID
	Parent SpanID
	Flags  byte
}

// String renders the version-00 header form:
// 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01.
func (tp Traceparent) String() string {
	buf := make([]byte, 0, 55)
	buf = append(buf, '0', '0', '-')
	buf = hex.AppendEncode(buf, tp.Trace[:])
	buf = append(buf, '-')
	buf = hex.AppendEncode(buf, tp.Parent[:])
	buf = append(buf, '-')
	buf = hex.AppendEncode(buf, []byte{tp.Flags})
	return string(buf)
}

// hexField decodes exactly len(dst)*2 lowercase hex characters. The W3C
// spec forbids uppercase, so this is stricter than encoding/hex.
func hexField(dst []byte, s string) bool {
	if len(s) != 2*len(dst) {
		return false
	}
	for i := range dst {
		hi, okh := hexNibble(s[2*i])
		lo, okl := hexNibble(s[2*i+1])
		if !okh || !okl {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// ParseTraceparent parses a W3C traceparent header. It accepts version
// 00 exactly, and future versions whose first four fields keep the
// version-00 layout (per the spec's forward-compatibility rule). It
// returns ok=false — the caller should mint a new root — for anything
// malformed: wrong field lengths, uppercase hex, the reserved version
// ff, or all-zero trace/parent ids.
func ParseTraceparent(h string) (Traceparent, bool) {
	var tp Traceparent
	if len(h) < 55 {
		return tp, false
	}
	if len(h) > 55 {
		// A longer header is only valid for versions > 00, which must
		// append new fields after a dash.
		if h[:2] == "00" || h[55] != '-' {
			return tp, false
		}
	}
	var version [1]byte
	if !hexField(version[:], h[0:2]) || version[0] == 0xff {
		return tp, false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tp, false
	}
	if !hexField(tp.Trace[:], h[3:35]) || !hexField(tp.Parent[:], h[36:52]) {
		return tp, false
	}
	var flags [1]byte
	if !hexField(flags[:], h[53:55]) {
		return tp, false
	}
	tp.Flags = flags[0]
	if tp.Trace.IsZero() || tp.Parent.IsZero() {
		return tp, false
	}
	return tp, true
}

// NewTraceparent mints a new sampled root: random trace and parent ids,
// flags 01.
func NewTraceparent() Traceparent {
	var tp Traceparent
	randomID(tp.Trace[:])
	randomID(tp.Parent[:])
	tp.Flags = 0x01
	return tp
}

// randomID fills b with non-zero random bytes (all-zero ids are invalid
// per the W3C spec; crypto/rand never fails on supported platforms).
func randomID(b []byte) {
	for {
		rand.Read(b)
		for _, v := range b {
			if v != 0 {
				return
			}
		}
	}
}

// Attr is one key/value annotation on a span. Values are what the
// recorder was handed — int64, string or bool — and marshal directly.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Span is one timed operation inside a request. Times are monotonic
// offsets from the recorder's start, so spans order and nest correctly
// regardless of wall-clock adjustments.
type Span struct {
	Name string `json:"name"`
	// Parent is the index of the parent span in the bundle's Spans
	// slice; -1 marks the root.
	Parent int `json:"parent"`
	// Start and End are nanosecond offsets from the request start. An
	// End of zero on a non-root span means the span was still open when
	// the recorder finished; Finish closes such spans at the root's end.
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
	Attrs []Attr        `json:"attrs,omitempty"`
}

// Duration is the span's recorded extent.
func (s *Span) Duration() time.Duration { return s.End - s.Start }

// SpanRef names one span inside a Recorder. The zero ref is the root
// span, which is also what every method of a nil Recorder returns — so
// instrumented code can pass refs around unconditionally.
type SpanRef int32

// Root is the request-level span every recorder starts with.
const Root SpanRef = 0

// Recorder collects the span tree of one request. A Recorder is created
// per request (NewRecorder), carried through the work by context.Context
// (With/From), and turned into an immutable Bundle at the end (Finish).
// All methods are safe on a nil receiver and for concurrent use.
type Recorder struct {
	tp    Traceparent // incoming (or minted) trace identity
	self  SpanID      // the span id this service propagates outward
	wall  time.Time   // wall-clock start, for the bundle header
	start time.Time   // monotonic anchor
	// clock overrides time.Since(start) in tests that need
	// deterministic span times; nil means the real clock.
	clock func() time.Duration

	mu    sync.Mutex
	spans []Span
}

// NewRecorder opens a recorder whose root span is named name. A zero
// tp (no or malformed traceparent header) mints a fresh root trace;
// otherwise the recorder joins the caller's trace as a child of
// tp.Parent.
func NewRecorder(name string, tp Traceparent) *Recorder {
	if tp.Trace.IsZero() {
		tp = NewTraceparent()
	}
	r := &Recorder{tp: tp, wall: time.Now()}
	r.start = r.wall
	randomID(r.self[:])
	r.spans = make([]Span, 1, 16)
	r.spans[0] = Span{Name: name, Parent: -1}
	return r
}

// now returns the monotonic offset since the recorder started.
func (r *Recorder) now() time.Duration {
	if r.clock != nil {
		return r.clock()
	}
	return time.Since(r.start)
}

// TraceID returns the hex trace id, or "" on a nil recorder.
func (r *Recorder) TraceID() string {
	if r == nil {
		return ""
	}
	return r.tp.Trace.String()
}

// Traceparent returns the outgoing header value: the recorder's trace
// id with this service's own span id as the parent field. Empty on a
// nil recorder.
func (r *Recorder) Traceparent() string {
	if r == nil {
		return ""
	}
	return Traceparent{Trace: r.tp.Trace, Parent: r.self, Flags: r.tp.Flags | 0x01}.String()
}

// Start opens a child span under parent (Root for request-level
// phases) and returns its ref. On a nil recorder it returns Root and
// records nothing.
func (r *Recorder) Start(parent SpanRef, name string) SpanRef {
	if r == nil {
		return Root
	}
	at := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	p := int(parent)
	if p < 0 || p >= len(r.spans) {
		p = 0
	}
	r.spans = append(r.spans, Span{Name: name, Parent: p, Start: at})
	return SpanRef(len(r.spans) - 1)
}

// End closes the span. Ending Root is a no-op — the root closes in
// Finish — as is ending an already-closed span.
func (r *Recorder) End(ref SpanRef) {
	if r == nil || ref <= Root {
		return
	}
	at := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if i := int(ref); i < len(r.spans) && r.spans[i].End == 0 {
		r.spans[i].End = at
	}
}

// Annotate attaches a key/value attribute to the span (Root for
// request-level attributes). value should be an int64, string or bool
// so bundles marshal predictably. Hot paths that must stay
// allocation-free when no recorder is attached should use the typed
// variants below: passing a value through this any parameter boxes it
// at the call site, before the nil check can short-circuit.
func (r *Recorder) Annotate(ref SpanRef, key string, value any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i := int(ref); i >= 0 && i < len(r.spans) {
		r.spans[i].Attrs = append(r.spans[i].Attrs, Attr{Key: key, Value: value})
	}
}

// AnnotateInt is Annotate for int64 values without call-site boxing:
// on a nil recorder the value never reaches an interface, so the
// caller allocates nothing.
func (r *Recorder) AnnotateInt(ref SpanRef, key string, value int64) {
	if r == nil {
		return
	}
	r.Annotate(ref, key, value)
}

// AnnotateStr is Annotate for strings without call-site boxing.
func (r *Recorder) AnnotateStr(ref SpanRef, key, value string) {
	if r == nil {
		return
	}
	r.Annotate(ref, key, value)
}

// AnnotateBool is Annotate for bools without call-site boxing.
func (r *Recorder) AnnotateBool(ref SpanRef, key string, value bool) {
	if r == nil {
		return
	}
	r.Annotate(ref, key, value)
}

// Finish closes the root (and any spans left open, at the root's end)
// and returns the immutable bundle. The recorder must not be used
// afterwards. A nil recorder returns nil.
func (r *Recorder) Finish() *Bundle {
	if r == nil {
		return nil
	}
	end := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	spans := make([]Span, len(r.spans))
	copy(spans, r.spans)
	spans[0].End = end
	for i := 1; i < len(spans); i++ {
		if spans[i].End == 0 {
			spans[i].End = end
		}
	}
	return &Bundle{
		TraceID: r.tp.Trace.String(),
		SpanID:  r.self.String(),
		Flags:   r.tp.Flags | 0x01,
		Start:   r.wall.UTC(),
		Spans:   spans,
	}
}

// Bundle is the finished, immutable record of one request: the span
// timeline the flight recorder stores and the Chrome exporter renders.
type Bundle struct {
	TraceID string    `json:"trace_id"`
	SpanID  string    `json:"span_id"`
	Flags   byte      `json:"flags"`
	Start   time.Time `json:"start"`
	Spans   []Span    `json:"spans"`
}

// Duration is the root span's extent.
func (b *Bundle) Duration() time.Duration {
	if b == nil || len(b.Spans) == 0 {
		return 0
	}
	return b.Spans[0].Duration()
}

// IntAttr returns the first int64 attribute key on a span named span.
func (b *Bundle) IntAttr(span, key string) (int64, bool) {
	v, ok := b.attr(span, key)
	if !ok {
		return 0, false
	}
	i, ok := v.(int64)
	return i, ok
}

// StrAttr returns the first string attribute key on a span named span.
func (b *Bundle) StrAttr(span, key string) (string, bool) {
	v, ok := b.attr(span, key)
	if !ok {
		return "", false
	}
	s, ok := v.(string)
	return s, ok
}

func (b *Bundle) attr(span, key string) (any, bool) {
	if b == nil {
		return nil, false
	}
	for i := range b.Spans {
		if b.Spans[i].Name != span {
			continue
		}
		for _, a := range b.Spans[i].Attrs {
			if a.Key == key {
				return a.Value, true
			}
		}
	}
	return nil, false
}

// ctxKey is the private context key for the request recorder.
type ctxKey struct{}

// With returns a context carrying the recorder. Attaching nil returns
// ctx unchanged, preserving the nil-is-free fast path downstream.
func With(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// From returns the context's recorder, or nil — and every method on a
// nil recorder is a no-op, so callers never branch.
func From(ctx context.Context) *Recorder {
	r, _ := ctx.Value(ctxKey{}).(*Recorder)
	return r
}
