package reqtrace

import (
	"bufio"
	"fmt"
	"io"
)

// WriteChrome renders the bundle's span tree as a Chrome Trace Event
// JSON document — the same format internal/trace's Chrome sink emits
// for simulated pipelines, so ui.perfetto.dev and chrome://tracing open
// both. Wall time maps 1:1 onto trace time (1 trace microsecond = 1
// microsecond of request wall time; sub-microsecond span edges keep
// three decimals). All spans share one "request" track and nest by
// containment; each event's args carry the span's parent index and
// attributes.
func (b *Bundle) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 16<<10)
	var err error
	printf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(bw, format, args...)
		}
	}
	printf(`{"displayTimeUnit":"ms","otherData":{"tool":"cambricon camserve","trace_id":%q,"span_id":%q},"traceEvents":[`,
		b.TraceID, b.SpanID)
	printf("\n" + `{"ph":"M","pid":0,"tid":0,"name":"process_name","args":{"name":"camserve"}},` + "\n")
	printf(`{"ph":"M","pid":0,"tid":1,"name":"thread_name","args":{"name":"request"}}`)
	for i := range b.Spans {
		sp := &b.Spans[i]
		printf(",\n")
		printf(`{"ph":"X","pid":0,"tid":1,"ts":%s,"dur":%s,"name":%q,"args":{"parent":%d`,
			us(int64(sp.Start)), us(int64(sp.Duration())), sp.Name, sp.Parent)
		for _, a := range sp.Attrs {
			switch v := a.Value.(type) {
			case string:
				printf(`,%q:%q`, a.Key, v)
			case bool:
				printf(`,%q:%t`, a.Key, v)
			case int64:
				printf(`,%q:%d`, a.Key, v)
			case int:
				printf(`,%q:%d`, a.Key, v)
			case float64:
				printf(`,%q:%g`, a.Key, v)
			default:
				printf(`,%q:%q`, a.Key, fmt.Sprint(v))
			}
		}
		printf("}}")
	}
	printf("\n]}\n")
	if err != nil {
		return err
	}
	return bw.Flush()
}

// us renders a nanosecond count as decimal microseconds with exactly
// the precision the value needs (trailing-zero-free, so golden files
// stay stable and minimal).
func us(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	whole, frac := ns/1000, ns%1000
	if frac == 0 {
		return fmt.Sprintf("%s%d", neg, whole)
	}
	s := fmt.Sprintf("%s%d.%03d", neg, whole, frac)
	for s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	return s
}
