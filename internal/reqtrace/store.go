package reqtrace

import "sync"

// Store is the bounded in-memory flight recorder backing GET /runs/{id}:
// a fixed-capacity ring of values keyed by string id, evicting the
// oldest entry when full. V is whatever the service keeps per request —
// camserve stores its ledger-row-plus-Bundle debug records. Safe for
// concurrent use; the zero value is not usable, call NewStore.
type Store[V any] struct {
	mu   sync.Mutex
	m    map[string]V
	keys []string // insertion ring; keys[head] is the next eviction victim
	head int
	n    int
}

// NewStore builds a store retaining the latest capacity entries
// (minimum 1).
func NewStore[V any](capacity int) *Store[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Store[V]{m: make(map[string]V, capacity), keys: make([]string, capacity)}
}

// Put inserts (or replaces) id's value, evicting the oldest distinct id
// when the store is full.
func (s *Store[V]) Put(id string, v V) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.m[id]; exists {
		s.m[id] = v
		return
	}
	if s.n == len(s.keys) {
		delete(s.m, s.keys[s.head])
	} else {
		s.n++
	}
	s.keys[s.head] = id
	s.head = (s.head + 1) % len(s.keys)
	s.m[id] = v
}

// Get returns id's value, reporting whether it is (still) retained.
func (s *Store[V]) Get(id string) (V, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[id]
	return v, ok
}

// Len returns the number of retained entries.
func (s *Store[V]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}
