package reqtrace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenBundle builds a deterministic request bundle: fixed trace
// identity and a scripted clock, shaped like a real camserve /run
// request (semaphore wait, pool acquire + restore, the simulation,
// JSON encode).
func goldenBundle() *Bundle {
	tp, _ := ParseTraceparent(validHeader)
	r := NewRecorder("request", tp)
	r.self = SpanID{0xde, 0xad, 0xbe, 0xef, 0x08, 0x15, 0x47, 0x11}
	ticks := []time.Duration{
		5 * time.Microsecond,    // sem.acquire start
		7 * time.Microsecond,    // sem.acquire end
		10 * time.Microsecond,   // pool.acquire start
		52500 * time.Nanosecond, // pool.acquire end
		60 * time.Microsecond,   // snapshot.restore start
		180 * time.Microsecond,  // snapshot.restore end
		200 * time.Microsecond,  // sim.run start
		1450 * time.Microsecond, // sim.run end
		1460 * time.Microsecond, // encode.json start
		1475 * time.Microsecond, // encode.json end
		1480 * time.Microsecond, // root end (Finish)
	}
	i := 0
	r.clock = func() time.Duration { d := ticks[i]; i++; return d }

	sem := r.Start(Root, "sem.acquire")
	r.End(sem)
	pool := r.Start(Root, "pool.acquire")
	r.Annotate(pool, "reused", true)
	r.End(pool)
	rest := r.Start(Root, "snapshot.restore")
	r.Annotate(rest, "bytes", int64(73728))
	r.End(rest)
	run := r.Start(Root, "sim.run")
	r.Annotate(run, "cycles", int64(188640))
	r.Annotate(run, "instructions", int64(4673))
	r.End(run)
	enc := r.Start(Root, "encode.json")
	r.End(enc)
	r.Annotate(Root, "benchmark", "MLP")
	r.Annotate(Root, "status", "ok")
	return r.Finish()
}

// TestWriteChromeGolden pins the exporter's byte output (the format
// Perfetto and chrome://tracing load) and checks it is valid JSON with
// the expected event structure.
func TestWriteChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenBundle().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome export drifted from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// Structural validity: the document must parse as Chrome Trace JSON
	// with one X event per span plus the two metadata events.
	var doc struct {
		OtherData struct {
			TraceID string `json:"trace_id"`
		} `json:"otherData"`
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Name string  `json:"name"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.OtherData.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id %q", doc.OtherData.TraceID)
	}
	var xs int
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			xs++
			if ev.Dur < 0 {
				t.Fatalf("negative duration event %+v", ev)
			}
		}
	}
	if xs != 6 { // root + 5 phases
		t.Fatalf("got %d X events, want 6", xs)
	}
	// Sub-microsecond edges keep their precision: pool.acquire ends at
	// 52.5us, so its duration is 42.5us.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "pool.acquire" {
			found = true
			if ev.TS != 10 || ev.Dur != 42.5 {
				t.Fatalf("pool.acquire ts=%v dur=%v, want 10/42.5", ev.TS, ev.Dur)
			}
		}
	}
	if !found {
		t.Fatal("pool.acquire event missing")
	}
}

// TestWriteChromeEmptyBundle: a bundle with only a root span still
// produces a loadable document.
func TestWriteChromeEmptyBundle(t *testing.T) {
	r := NewRecorder("request", Traceparent{})
	var buf bytes.Buffer
	if err := r.Finish().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON:\n%s", buf.Bytes())
	}
}
