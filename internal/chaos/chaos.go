// Package chaos is the seeded fault layer of the *service* path
// (docs/ROBUSTNESS.md, "Serving-layer robustness"). Where internal/fault
// injects bit-flips into the simulated hardware, this package injects
// operational failures into the serving stack around it: snapshot
// restores that fail or stall, pool acquires that crawl, simulations
// that panic mid-run, and WAL appends that tear mid-record — the
// failure shapes a long-lived daemon must survive, produced on demand
// so tests and the `camserve -chaos` flag can prove it does.
//
// The contract mirrors trace.Tracer's and metrics.Registry's: chaos
// must be free when absent. Every hook is safe on a nil *Chaos and does
// nothing, so the instrumented paths stay allocation-free and produce
// bit-identical simulated statistics when no chaos is configured.
//
// A Chaos is built from a spec string — comma-separated key=value
// pairs, e.g. "seed=7,restore-fail=0.2,panic=0.05,run-delay=50ms:0.5":
//
//	seed=N              splitmix64 seed for the probability rolls (default 1)
//	restore-fail=P      fraction of snapshot restores that fail with ErrInjected
//	restore-delay=D[:P] fraction P (default 1) of restores delayed by duration D
//	acquire-delay=D[:P] fraction P of pool acquires delayed by D
//	run-delay=D[:P]     fraction P of simulations delayed by D before running
//	panic=P             fraction of simulations that panic mid-run
//	wal-tear=N          the Nth WAL append (1-based) writes a torn record, once
//
// All probability rolls draw from one seeded splitmix64 stream, so a
// given (spec, request order) reproduces the same injections.
package chaos

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cambricon/internal/metrics"
)

// ErrInjected is the sentinel wrapped by every chaos-injected error, so
// callers (and tests) can tell an injected failure from a real one.
var ErrInjected = errors.New("chaos: injected failure")

// MetricInjections counts performed injections by kind when a registry
// is attached via SetMetrics.
const MetricInjections = "cambricon_chaos_injections_total"

// delaySpec is one "duration with probability" knob.
type delaySpec struct {
	d time.Duration
	p float64
}

// Chaos holds the parsed injection plan and the seeded roll stream.
// The zero value injects nothing; a nil *Chaos is the documented
// "chaos off" state every hook tolerates.
type Chaos struct {
	seed uint64

	restoreFail  float64
	restoreDelay delaySpec
	acquireDelay delaySpec
	runDelay     delaySpec
	panicP       float64
	walTearAt    int64

	walAppends atomic.Int64

	mu  sync.Mutex
	s   uint64 // splitmix64 state
	reg *metrics.Registry
}

// Parse builds a Chaos from a spec string. An empty spec returns (nil,
// nil): chaos off, every hook a no-op.
func Parse(spec string) (*Chaos, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	c := &Chaos{seed: 1}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("chaos: malformed entry %q (want key=value)", kv)
		}
		var err error
		switch key {
		case "seed":
			c.seed, err = strconv.ParseUint(val, 10, 64)
		case "restore-fail":
			c.restoreFail, err = parseProb(val)
		case "restore-delay":
			c.restoreDelay, err = parseDelay(val)
		case "acquire-delay":
			c.acquireDelay, err = parseDelay(val)
		case "run-delay":
			c.runDelay, err = parseDelay(val)
		case "panic":
			c.panicP, err = parseProb(val)
		case "wal-tear":
			c.walTearAt, err = strconv.ParseInt(val, 10, 64)
			if err == nil && c.walTearAt < 1 {
				err = fmt.Errorf("want a 1-based append index")
			}
		default:
			return nil, fmt.Errorf("chaos: unknown key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("chaos: bad %s value %q: %v", key, val, err)
		}
	}
	c.s = c.seed
	return c, nil
}

func parseProb(val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability out of [0,1]")
	}
	return p, nil
}

// parseDelay parses "DUR" or "DUR:P".
func parseDelay(val string) (delaySpec, error) {
	durPart, probPart, hasProb := strings.Cut(val, ":")
	d, err := time.ParseDuration(durPart)
	if err != nil {
		return delaySpec{}, err
	}
	if d < 0 {
		return delaySpec{}, fmt.Errorf("negative duration")
	}
	spec := delaySpec{d: d, p: 1}
	if hasProb {
		if spec.p, err = parseProb(probPart); err != nil {
			return delaySpec{}, err
		}
	}
	return spec, nil
}

// SetMetrics attaches a registry so injections are counted by kind
// (MetricInjections). Safe on a nil receiver.
func (c *Chaos) SetMetrics(reg *metrics.Registry) {
	if c != nil {
		c.mu.Lock()
		c.reg = reg
		c.mu.Unlock()
	}
}

// Seed returns the roll-stream seed (for logging). Zero on nil.
func (c *Chaos) Seed() uint64 {
	if c == nil {
		return 0
	}
	return c.seed
}

// roll draws one splitmix64 value and reports whether it lands under p.
func (c *Chaos) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	c.mu.Lock()
	c.s += 0x9e3779b97f4a7c15
	z := c.s
	c.mu.Unlock()
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11)/(1<<53) < p
}

func (c *Chaos) count(kind string) {
	c.mu.Lock()
	reg := c.reg
	c.mu.Unlock()
	reg.Counter(MetricInjections, "chaos injections performed, by kind",
		metrics.L("kind", kind)).Inc()
}

// PoolAcquire may stall a machine-pool acquire. Nil-safe.
func (c *Chaos) PoolAcquire() {
	if c == nil {
		return
	}
	if c.acquireDelay.d > 0 && c.roll(c.acquireDelay.p) {
		c.count("acquire-delay")
		time.Sleep(c.acquireDelay.d)
	}
}

// SnapshotRestore may stall and/or fail a snapshot restore. A non-nil
// return wraps ErrInjected. Nil-safe.
func (c *Chaos) SnapshotRestore() error {
	if c == nil {
		return nil
	}
	if c.restoreDelay.d > 0 && c.roll(c.restoreDelay.p) {
		c.count("restore-delay")
		time.Sleep(c.restoreDelay.d)
	}
	if c.roll(c.restoreFail) {
		c.count("restore-fail")
		return fmt.Errorf("snapshot restore: %w", ErrInjected)
	}
	return nil
}

// BeforeRun may stall a simulation and/or panic in its place — the
// misbehaving-request shape panic isolation must contain. Callers run
// it inside their existing recover scope. Nil-safe.
func (c *Chaos) BeforeRun() {
	if c == nil {
		return
	}
	if c.runDelay.d > 0 && c.roll(c.runDelay.p) {
		c.count("run-delay")
		time.Sleep(c.runDelay.d)
	}
	if c.roll(c.panicP) {
		c.count("run-panic")
		panic("chaos: injected run panic")
	}
}

// WALTear reports whether this WAL append (counted per Chaos, 1-based)
// should be written torn — a partial record simulating a crash
// mid-write. Fires at most once, on the configured append. Nil-safe.
func (c *Chaos) WALTear() bool {
	if c == nil || c.walTearAt <= 0 {
		return false
	}
	if c.walAppends.Add(1) == c.walTearAt {
		c.count("wal-tear")
		return true
	}
	return false
}
