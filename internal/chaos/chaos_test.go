package chaos

import (
	"errors"
	"testing"
	"time"

	"cambricon/internal/metrics"
)

func TestParseEmptySpecIsNil(t *testing.T) {
	for _, spec := range []string{"", "  ", "\t"} {
		c, err := Parse(spec)
		if c != nil || err != nil {
			t.Fatalf("Parse(%q) = %v, %v, want nil, nil", spec, c, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"restore-fail",        // no value
		"bogus=1",             // unknown key
		"restore-fail=1.5",    // probability out of range
		"restore-fail=-0.1",   // negative probability
		"panic=x",             // not a number
		"run-delay=fast",      // not a duration
		"run-delay=-5ms",      // negative duration
		"run-delay=5ms:2",     // delay probability out of range
		"wal-tear=0",          // not 1-based
		"seed=notanumber",     // bad seed
		"restore-delay=1s:zz", // bad delay probability
	} {
		if _, err := Parse(spec); err == nil {
			t.Fatalf("Parse(%q) accepted", spec)
		}
	}
}

func TestNilChaosIsInert(t *testing.T) {
	var c *Chaos
	c.PoolAcquire()
	c.BeforeRun()
	c.SetMetrics(nil)
	if err := c.SnapshotRestore(); err != nil {
		t.Fatalf("nil SnapshotRestore = %v", err)
	}
	if c.WALTear() {
		t.Fatal("nil WALTear = true")
	}
	if c.Seed() != 0 {
		t.Fatalf("nil Seed = %d", c.Seed())
	}
}

func TestRestoreFailAlwaysWrapsSentinel(t *testing.T) {
	c, err := Parse("restore-fail=1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		err := c.SnapshotRestore()
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("restore #%d = %v, want ErrInjected", i, err)
		}
	}
}

func TestInjectedPanicFiresInsideCallerRecover(t *testing.T) {
	c, err := Parse("panic=1")
	if err != nil {
		t.Fatal(err)
	}
	recovered := func() (r any) {
		defer func() { r = recover() }()
		c.BeforeRun()
		return nil
	}()
	if recovered == nil {
		t.Fatal("panic=1 did not panic")
	}
}

func TestRollsAreSeededAndDeterministic(t *testing.T) {
	draw := func(spec string) []bool {
		c, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			out[i] = c.SnapshotRestore() != nil
		}
		return out
	}
	a, b := draw("seed=7,restore-fail=0.5"), draw("seed=7,restore-fail=0.5")
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if !same {
		t.Fatal("same seed produced different injection sequences")
	}
	other := draw("seed=8,restore-fail=0.5")
	diff := false
	for i := range a {
		if a[i] != other[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical 64-roll sequences")
	}
	// And a 0.5 stream actually mixes outcomes.
	hits := 0
	for _, v := range a {
		if v {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("restore-fail=0.5 hit %d/%d rolls; the stream is not probabilistic", hits, len(a))
	}
}

func TestWALTearFiresExactlyOnce(t *testing.T) {
	c, err := Parse("wal-tear=2")
	if err != nil {
		t.Fatal(err)
	}
	got := []bool{c.WALTear(), c.WALTear(), c.WALTear(), c.WALTear()}
	want := []bool{false, true, false, false}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("WALTear sequence %v, want %v", got, want)
		}
	}
}

func TestDelaysStallAndCount(t *testing.T) {
	c, err := Parse("acquire-delay=30ms,run-delay=30ms")
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	c.SetMetrics(reg)
	start := time.Now()
	c.PoolAcquire()
	c.BeforeRun() // no panic key: delay only
	if el := time.Since(start); el < 50*time.Millisecond {
		t.Fatalf("two 30ms delays elapsed in %v", el)
	}
	for _, kind := range []string{"acquire-delay", "run-delay"} {
		if v := reg.Counter(MetricInjections, "", metrics.L("kind", kind)).Value(); v != 1 {
			t.Fatalf("%s injections = %d, want 1", kind, v)
		}
	}
}
