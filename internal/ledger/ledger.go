// Package ledger is the durable run ledger of the serving stack
// (docs/ROBUSTNESS.md, "Serving-layer robustness"): an append-only,
// CRC-checked write-ahead log that records every request's lifecycle —
// accepted → running → ok/failed/rejected/timeout — so a restarted
// daemon recovers its history instead of forgetting it. Replay on boot
// is bounded and tolerant: it stops cleanly at the first torn or
// corrupt record (the shape a crash mid-write leaves behind), truncates
// the torn tail, and surfaces runs that were still in flight at the
// crash as `interrupted` rows. Segments rotate at a size threshold and
// a compaction pass folds sealed segments into one snapshot of the
// latest row states, bounding disk alongside the bounded in-memory
// view.
//
// With Options.Dir empty the ledger is memory-only — the same API and
// bounded view, no durability — which keeps single-binary test setups
// and the historical camserve behaviour on one code path.
package ledger

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"cambricon/internal/chaos"
	"cambricon/internal/metrics"
	"cambricon/internal/reqtrace"
)

// Run lifecycle statuses. Accepted and Running are transient; everything
// else is terminal. A run whose latest durable status is transient when
// the daemon boots is rewritten as Interrupted.
const (
	StatusAccepted    = "accepted"
	StatusRunning     = "running"
	StatusOK          = "ok"
	StatusFailed      = "failed"
	StatusRejected    = "rejected"
	StatusTimeout     = "timeout"
	StatusCanceled    = "canceled"
	StatusInterrupted = "interrupted"
	StatusAborted     = "aborted"
)

// Terminal reports whether status is a final run state.
func Terminal(status string) bool {
	return status != StatusAccepted && status != StatusRunning
}

// Row is one run's ledger entry (and the POST /run success body in
// camserve). Every WAL event carries a full Row snapshot, so replay
// needs no cross-event joins.
type Row struct {
	ID           int64   `json:"id"`
	Benchmark    string  `json:"benchmark"`
	ConfigKey    string  `json:"config_key,omitempty"`
	TraceID      string  `json:"trace_id,omitempty"`
	Start        string  `json:"start"`
	Status       string  `json:"status"`
	HTTPStatus   int     `json:"http_status,omitempty"`
	Cycles       int64   `json:"cycles,omitempty"`
	Instructions int64   `json:"instructions,omitempty"`
	WallSeconds  float64 `json:"wall_seconds,omitempty"`
	Error        string  `json:"error,omitempty"`
	StatsDigest  string  `json:"stats_digest,omitempty"`
	// Recovered marks rows reconstructed by WAL replay rather than
	// recorded live by this process.
	Recovered bool `json:"recovered,omitempty"`
}

// Options configures Open.
type Options struct {
	// Dir is the WAL directory; "" runs the ledger memory-only.
	Dir string
	// SegmentBytes rotates the active segment past this size
	// (default 1 MiB).
	SegmentBytes int64
	// Retain bounds the in-memory view and the compaction output
	// (default 256 rows). Transient rows are never evicted.
	Retain int
	// CompactAfter triggers compaction when more sealed segments than
	// this accumulate (default 4).
	CompactAfter int
	// Sync fsyncs after every append; off, durability is the OS page
	// cache (survives SIGKILL, not power loss).
	Sync bool
	// Metrics, when non-nil, receives the cambricon_ledger_* families.
	Metrics *metrics.Registry
	// Logger receives append/compaction failures; nil discards.
	Logger *slog.Logger
	// Chaos, when non-nil, can tear WAL appends mid-record
	// (docs/ROBUSTNESS.md, "Chaos for the service path").
	Chaos *chaos.Chaos
}

// Recovery summarizes what Open replayed.
type Recovery struct {
	// Segments is the number of WAL segments found on disk.
	Segments int
	// Events is the number of good records replayed.
	Events int
	// Rows is the number of distinct runs recovered.
	Rows int
	// Interrupted is the number of runs surfaced as interrupted because
	// their latest durable status was still transient.
	Interrupted int
	// TornTail is true when the last segment ended in a torn or corrupt
	// record (truncated away on open).
	TornTail bool
	// TruncatedBytes is the torn-tail length removed from the last
	// segment.
	TruncatedBytes int64
	// BadSegments counts non-final segments that stopped replaying at a
	// corrupt record (their good prefix was still applied).
	BadSegments int
}

// Metric names exported by an instrumented ledger.
const (
	MetricAppends      = "cambricon_ledger_appends_total"
	MetricAppendErrors = "cambricon_ledger_append_errors_total"
	MetricBytes        = "cambricon_ledger_bytes_total"
	MetricSegments     = "cambricon_ledger_segments"
	MetricRows         = "cambricon_ledger_rows"
	MetricReplayed     = "cambricon_ledger_replayed_events_total"
	MetricInterrupted  = "cambricon_ledger_recovered_interrupted_total"
	MetricTornTails    = "cambricon_ledger_torn_tails_total"
	MetricCompactions  = "cambricon_ledger_compactions_total"
)

// rowState pairs a row with the sequence number of the event that
// produced it, for newest-seq-wins replay and compaction.
type rowState struct {
	row Row
	seq uint64
}

// Ledger is the durable run ledger. Safe for concurrent use.
type Ledger struct {
	opts   Options
	logger *slog.Logger

	appends      *metrics.Counter
	appendErrors *metrics.Counter
	bytesTotal   *metrics.Counter
	segGauge     *metrics.Gauge
	rowGauge     *metrics.Gauge
	compactions  *metrics.Counter

	mu      sync.Mutex
	f       *os.File
	segSeq  int64
	segSize int64
	sealed  []segmentRef
	seq     uint64 // last event sequence number issued
	lastID  int64  // highest run ID ever seen (for NewID)
	rows    map[int64]*rowState
	closed  bool
}

// Open replays dir (when set), truncates any torn tail, marks runs that
// were in flight at the crash as interrupted, opens a fresh active
// segment, and returns the recovered ledger.
func Open(opts Options) (*Ledger, Recovery, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 1 << 20
	}
	if opts.Retain <= 0 {
		opts.Retain = 256
	}
	if opts.CompactAfter <= 0 {
		opts.CompactAfter = 4
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	l := &Ledger{
		opts:         opts,
		logger:       logger,
		rows:         map[int64]*rowState{},
		appends:      opts.Metrics.Counter(MetricAppends, "run-ledger WAL appends"),
		appendErrors: opts.Metrics.Counter(MetricAppendErrors, "run-ledger WAL appends that failed to persist"),
		bytesTotal:   opts.Metrics.Counter(MetricBytes, "bytes appended to the run-ledger WAL"),
		segGauge:     opts.Metrics.Gauge(MetricSegments, "run-ledger WAL segments on disk (incl. active)"),
		rowGauge:     opts.Metrics.Gauge(MetricRows, "run rows held in the ledger's bounded view"),
		compactions:  opts.Metrics.Counter(MetricCompactions, "run-ledger compaction passes"),
	}
	var rec Recovery
	if opts.Dir == "" {
		return l, rec, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, rec, fmt.Errorf("ledger: %w", err)
	}
	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, rec, fmt.Errorf("ledger: %w", err)
	}
	rec.Segments = len(segs)
	for i, seg := range segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, rec, fmt.Errorf("ledger: %w", err)
		}
		events, goodLen, serr := replaySegment(data)
		for _, ev := range events {
			l.applyLocked(ev)
		}
		rec.Events += len(events)
		if serr != nil {
			if i == len(segs)-1 {
				// The expected crash shape: a torn tail on the active
				// segment. Drop it so the file replays cleanly forever.
				rec.TornTail = true
				rec.TruncatedBytes = int64(len(data) - goodLen)
				if err := os.Truncate(seg.path, int64(goodLen)); err != nil {
					return nil, rec, fmt.Errorf("ledger: truncating torn tail: %w", err)
				}
				opts.Metrics.Counter(MetricTornTails, "torn WAL tails truncated on replay").Inc()
			} else {
				// Corruption mid-history: keep the good prefix, log, and
				// keep replaying later segments — newest-seq-wins replay
				// makes the order safe.
				rec.BadSegments++
				logger.Warn("ledger: corrupt segment; replayed good prefix only",
					"segment", seg.path, "err", serr)
			}
		}
		l.sealed = append(l.sealed, seg)
	}
	if len(segs) > 0 {
		l.segSeq = segs[len(segs)-1].seq
	}
	// Replayed rows are history, not live state.
	for _, st := range l.rows {
		st.row.Recovered = true
	}
	if err := l.openSegmentLocked(l.segSeq + 1); err != nil {
		return nil, rec, err
	}
	// Surface in-flight-at-crash runs as interrupted, durably, so the
	// next boot sees terminal state without re-deriving it.
	interrupted := opts.Metrics.Counter(MetricInterrupted, "in-flight-at-crash runs recovered as interrupted")
	for _, st := range l.rows {
		if Terminal(st.row.Status) {
			continue
		}
		row := st.row
		row.Status = StatusInterrupted
		row.Error = "daemon restarted while the run was in flight"
		l.seq++
		ev := event{Seq: l.seq, Time: time.Now().UTC().Format(time.RFC3339Nano), Row: row}
		l.applyLocked(ev)
		if err := l.writeLocked(ev); err != nil {
			logger.Warn("ledger: recording interrupted run", "id", row.ID, "err", err)
		}
		rec.Interrupted++
		interrupted.Inc()
	}
	rec.Rows = len(l.rows)
	opts.Metrics.Counter(MetricReplayed, "WAL events replayed on boot").Add(int64(rec.Events))
	l.rowGauge.Set(int64(len(l.rows)))
	l.segGauge.Set(int64(len(l.sealed) + 1))
	return l, rec, nil
}

// NewID issues the next run ID — monotonic across restarts, because
// replay recovers the high-water mark.
func (l *Ledger) NewID() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lastID++
	return l.lastID
}

// Append durably records one row snapshot and updates the in-memory
// view. The view is updated even when the durable write fails (the
// daemon keeps serving with degraded durability); the error reports the
// persistence failure so the caller can log it. A request recorder on
// ctx gets a "wal.append" span.
func (l *Ledger) Append(ctx context.Context, row Row) error {
	rec := reqtrace.From(ctx)
	sp := rec.Start(reqtrace.Root, "wal.append")
	defer rec.End(sp)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("ledger: closed")
	}
	l.seq++
	ev := event{Seq: l.seq, Time: time.Now().UTC().Format(time.RFC3339Nano), Row: row}
	l.applyLocked(ev)
	l.rowGauge.Set(int64(len(l.rows)))
	l.appends.Inc()
	rec.AnnotateStr(sp, "status", row.Status)
	err := l.writeLocked(ev)
	if err != nil {
		l.appendErrors.Inc()
		l.logger.Warn("ledger: append not persisted", "id", row.ID, "status", row.Status, "err", err)
	}
	return err
}

// applyLocked folds one event into the view, newest-seq-wins, and
// evicts the oldest terminal rows past the retain bound.
func (l *Ledger) applyLocked(ev event) {
	if ev.Row.ID > l.lastID {
		l.lastID = ev.Row.ID
	}
	// Track the sequence high-water mark so events issued after replay
	// (the interrupted rewrites, then live appends) outrank recovered
	// history.
	if ev.Seq > l.seq {
		l.seq = ev.Seq
	}
	st := l.rows[ev.Row.ID]
	if st == nil {
		l.rows[ev.Row.ID] = &rowState{row: ev.Row, seq: ev.Seq}
	} else if ev.Seq >= st.seq {
		st.row = ev.Row
		st.seq = ev.Seq
	}
	for len(l.rows) > l.opts.Retain {
		victim := int64(-1)
		for id, st := range l.rows {
			if !Terminal(st.row.Status) {
				continue
			}
			if victim < 0 || id < victim {
				victim = id
			}
		}
		if victim < 0 {
			return // nothing terminal to evict; transient rows stay
		}
		delete(l.rows, victim)
	}
}

// writeLocked frames ev and appends it to the active segment, rotating
// (and possibly compacting) past the size threshold. Memory-only
// ledgers return nil without touching disk.
func (l *Ledger) writeLocked(ev event) error {
	if l.f == nil {
		return nil
	}
	payload, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("ledger: encoding event: %w", err)
	}
	frame := encodeRecord(make([]byte, 0, len(payload)+recHeaderBytes), payload)
	if l.opts.Chaos.WALTear() {
		// Chaos: crash mid-write. Persist only a prefix of the frame —
		// exactly what a real torn write leaves — then seal the segment
		// so later appends land in a clean one, as a restart would.
		n, _ := l.f.Write(frame[:len(frame)/2])
		l.segSize += int64(n)
		if err := l.rotateLocked(); err != nil {
			l.logger.Warn("ledger: rotate after chaos tear", "err", err)
		}
		return fmt.Errorf("ledger: chaos tore WAL append (seq %d)", ev.Seq)
	}
	n, err := l.f.Write(frame)
	l.segSize += int64(n)
	l.bytesTotal.Add(int64(n))
	if err != nil {
		return fmt.Errorf("ledger: appending: %w", err)
	}
	if l.opts.Sync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("ledger: fsync: %w", err)
		}
	}
	if l.segSize >= l.opts.SegmentBytes {
		return l.rotateLocked()
	}
	return nil
}

// openSegmentLocked creates and switches to segment seq.
func (l *Ledger) openSegmentLocked(seq int64) error {
	path := filepath.Join(l.opts.Dir, segmentName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: opening segment: %w", err)
	}
	if _, err := f.Write([]byte(fileMagic)); err != nil {
		f.Close()
		return fmt.Errorf("ledger: writing segment header: %w", err)
	}
	syncDir(l.opts.Dir)
	l.f = f
	l.segSeq = seq
	l.segSize = int64(len(fileMagic))
	l.segGauge.Set(int64(len(l.sealed) + 1))
	return nil
}

// rotateLocked seals the active segment and opens the next, compacting
// when enough sealed segments have piled up.
func (l *Ledger) rotateLocked() error {
	if l.f == nil {
		return nil
	}
	l.f.Sync()
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("ledger: sealing segment: %w", err)
	}
	l.sealed = append(l.sealed, segmentRef{seq: l.segSeq, path: filepath.Join(l.opts.Dir, segmentName(l.segSeq))})
	l.f = nil
	if err := l.openSegmentLocked(l.segSeq + 1); err != nil {
		return err
	}
	if len(l.sealed) > l.opts.CompactAfter {
		if err := l.compactLocked(); err != nil {
			l.logger.Warn("ledger: compaction failed; segments kept", "err", err)
		}
	}
	return nil
}

// compactLocked folds every sealed segment into one snapshot segment
// holding the current row states (each with its original sequence
// number, so newest-seq-wins replay stays correct against the active
// segment and against any sealed segment a crash mid-compaction leaves
// behind). Crash-safe: the snapshot is written to a temp file, fsynced,
// renamed over the oldest sealed segment, and only then are the others
// deleted.
func (l *Ledger) compactLocked() error {
	if len(l.sealed) == 0 {
		return nil
	}
	ids := make([]int64, 0, len(l.rows))
	for id := range l.rows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf := []byte(fileMagic)
	for _, id := range ids {
		st := l.rows[id]
		payload, err := json.Marshal(event{Seq: st.seq, Time: time.Now().UTC().Format(time.RFC3339Nano), Row: st.row})
		if err != nil {
			return fmt.Errorf("ledger: encoding compacted row: %w", err)
		}
		buf = encodeRecord(buf, payload)
	}
	tmp := filepath.Join(l.opts.Dir, "compact.tmp")
	if err := writeFileSync(tmp, buf); err != nil {
		return err
	}
	keep := l.sealed[0]
	if err := os.Rename(tmp, keep.path); err != nil {
		return fmt.Errorf("ledger: installing compacted segment: %w", err)
	}
	syncDir(l.opts.Dir)
	for _, seg := range l.sealed[1:] {
		if err := os.Remove(seg.path); err != nil {
			l.logger.Warn("ledger: removing compacted segment", "segment", seg.path, "err", err)
		}
	}
	l.sealed = l.sealed[:1]
	l.compactions.Inc()
	l.segGauge.Set(int64(len(l.sealed) + 1))
	return nil
}

// writeFileSync writes data to path and fsyncs it before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("ledger: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("ledger: %w", err)
	}
	return f.Close()
}

// List returns the retained rows, newest (highest ID) first.
func (l *Ledger) List() []Row {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Row, 0, len(l.rows))
	for _, st := range l.rows {
		out = append(out, st.row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	return out
}

// Get returns one row by run ID.
func (l *Ledger) Get(id int64) (Row, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.rows[id]
	if !ok {
		return Row{}, false
	}
	return st.row, true
}

// Segments reports the on-disk segment count (incl. active); 0 for a
// memory-only ledger.
func (l *Ledger) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0
	}
	return len(l.sealed) + 1
}

// Close syncs and seals the active segment. Further appends fail.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	l.f.Sync()
	err := l.f.Close()
	l.f = nil
	return err
}

// StatsDigest returns a short, stable digest of a run's simulated
// outcome (cycles, instructions, and the CPI-stack stall counts in
// cause order) — the cheap cross-restart check that recovered history
// and fresh runs agree bit for bit.
func StatsDigest(cycles, instructions int64, stalls []int64) string {
	h := fnv.New64a()
	var b [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:])
	}
	put(cycles)
	put(instructions)
	for _, s := range stalls {
		put(s)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
