package ledger

// This file is the on-disk record format of the run ledger: framed,
// CRC-checked records inside numbered segment files. The decoder is the
// crash-safety boundary — whatever bytes a torn write, a bit flip or a
// fuzzer leaves behind, replay must stop cleanly at the first bad
// record and never panic (FuzzLedgerReplay pins this).

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

const (
	// fileMagic opens every segment file; a file without it is not a
	// ledger segment and replays as empty.
	fileMagic = "CAMWAL1\n"
	// recMagic opens every record frame. It doubles as a resync guard:
	// a torn tail followed by later garbage cannot masquerade as a
	// record without also forging the magic, the length and the CRC.
	recMagic uint32 = 0x52c4b71c
	// recHeaderBytes is the fixed frame header: magic, payload length,
	// payload CRC-32 (IEEE), each little-endian uint32.
	recHeaderBytes = 12
	// maxRecordBytes bounds a single record so replay never trusts a
	// corrupted length field into allocating or scanning gigabytes.
	maxRecordBytes = 1 << 20
)

// Decoder stop conditions. errTorn marks an incomplete record at the
// end of the data (the expected shape after a crash mid-write); the
// others mark corruption.
var (
	errTorn     = errors.New("ledger: torn record (truncated mid-write)")
	errBadMagic = errors.New("ledger: bad record magic")
	errBadLen   = errors.New("ledger: implausible record length")
	errBadCRC   = errors.New("ledger: record CRC mismatch")
)

// event is one WAL entry: a full snapshot of a run row at a lifecycle
// transition. Seq is globally monotonic; replay applies events
// newest-seq-wins, which keeps recovery correct even when compaction
// leaves overlapping segments behind.
type event struct {
	Seq  uint64 `json:"seq"`
	Time string `json:"time"`
	Row  Row    `json:"row"`
}

// encodeRecord appends one framed record holding payload to buf.
func encodeRecord(buf, payload []byte) []byte {
	var hdr [recHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], recMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(payload))
	return append(append(buf, hdr[:]...), payload...)
}

// decodeRecord reads the record starting at data[off]. It returns the
// payload and the offset of the next record, or an error classifying
// why decoding stopped: io-style end (off == len(data)) is reported as
// ok=false with err == nil; anything else is torn or corrupt.
func decodeRecord(data []byte, off int) (payload []byte, next int, err error) {
	if off >= len(data) {
		return nil, off, nil // clean end
	}
	if len(data)-off < recHeaderBytes {
		return nil, off, errTorn
	}
	if binary.LittleEndian.Uint32(data[off:off+4]) != recMagic {
		return nil, off, errBadMagic
	}
	n := int(binary.LittleEndian.Uint32(data[off+4 : off+8]))
	if n > maxRecordBytes {
		return nil, off, errBadLen
	}
	if len(data)-off-recHeaderBytes < n {
		return nil, off, errTorn
	}
	payload = data[off+recHeaderBytes : off+recHeaderBytes+n]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[off+8:off+12]) {
		return nil, off, errBadCRC
	}
	return payload, off + recHeaderBytes + n, nil
}

// replaySegment decodes one segment image. It returns every event up to
// the first bad record, the byte length of the good prefix (a valid
// truncation point: file header plus whole records), and the error that
// stopped the scan (nil on a clean end-of-data). A missing or wrong
// file header yields no events and goodLen 0.
func replaySegment(data []byte) (events []event, goodLen int, err error) {
	if len(data) < len(fileMagic) {
		return nil, 0, errTorn
	}
	if string(data[:len(fileMagic)]) != fileMagic {
		return nil, 0, errBadMagic
	}
	off := len(fileMagic)
	for {
		payload, next, derr := decodeRecord(data, off)
		if derr != nil {
			return events, off, derr
		}
		if next == off {
			return events, off, nil // clean end
		}
		var ev event
		if uerr := json.Unmarshal(payload, &ev); uerr != nil {
			// A record that frames correctly but does not decode is
			// corruption, not a format evolution we can skip safely.
			return events, off, fmt.Errorf("ledger: undecodable record: %w", uerr)
		}
		events = append(events, ev)
		off = next
	}
}

// segmentName renders the canonical file name of segment seq.
func segmentName(seq int64) string {
	return fmt.Sprintf("wal-%08d.wal", seq)
}

// segmentRef is one discovered segment file.
type segmentRef struct {
	seq  int64
	path string
}

// listSegments finds the ledger segments under dir, ascending by
// sequence number. Files that do not match the naming scheme are
// ignored (they are not ours to interpret or delete).
func listSegments(dir string) ([]segmentRef, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentRef
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var seq int64
		if _, err := fmt.Sscanf(e.Name(), "wal-%d.wal", &seq); err != nil {
			continue
		}
		if e.Name() != segmentName(seq) {
			continue
		}
		segs = append(segs, segmentRef{seq: seq, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// syncDir fsyncs a directory so renames and creates inside it are
// durable. Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
