package ledger

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"cambricon/internal/chaos"
)

func mustOpen(t *testing.T, opts Options) (*Ledger, Recovery) {
	t.Helper()
	l, rec, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return l, rec
}

func appendRow(t *testing.T, l *Ledger, id int64, status string) {
	t.Helper()
	if err := l.Append(context.Background(), Row{ID: id, Benchmark: "MLP", Start: "t", Status: status}); err != nil {
		t.Fatalf("append id=%d status=%s: %v", id, status, err)
	}
}

func TestMemoryOnlyLedger(t *testing.T) {
	l, rec := mustOpen(t, Options{})
	if rec.Rows != 0 || rec.Segments != 0 {
		t.Fatalf("memory-only recovery %+v, want empty", rec)
	}
	if l.Segments() != 0 {
		t.Fatalf("memory-only Segments() = %d, want 0", l.Segments())
	}
	for i := 1; i <= 3; i++ {
		if id := l.NewID(); id != int64(i) {
			t.Fatalf("NewID #%d = %d", i, id)
		}
		appendRow(t, l, int64(i), StatusOK)
	}
	rows := l.List()
	if len(rows) != 3 || rows[0].ID != 3 || rows[2].ID != 1 {
		t.Fatalf("List = %+v, want ids newest-first 3,2,1", rows)
	}
	if r, ok := l.Get(2); !ok || r.Status != StatusOK {
		t.Fatalf("Get(2) = %+v, %v", r, ok)
	}
	if _, ok := l.Get(99); ok {
		t.Fatal("Get(99) found a row")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(context.Background(), Row{ID: 4, Status: StatusOK}); err == nil {
		t.Fatal("append after Close succeeded")
	}
}

func TestRetainEvictsOldestTerminalOnly(t *testing.T) {
	l, _ := mustOpen(t, Options{Retain: 3})
	for i := 1; i <= 5; i++ {
		appendRow(t, l, int64(i), StatusOK)
	}
	rows := l.List()
	if len(rows) != 3 || rows[0].ID != 5 || rows[2].ID != 3 {
		t.Fatalf("retained %+v, want 5,4,3", rows)
	}
	// Transient rows are never evicted, even past the bound.
	l2, _ := mustOpen(t, Options{Retain: 2})
	for i := 1; i <= 4; i++ {
		appendRow(t, l2, int64(i), StatusRunning)
	}
	if got := len(l2.List()); got != 4 {
		t.Fatalf("%d transient rows retained, want all 4", got)
	}
}

func TestReopenRecoversHistoryAndInterruptsInFlight(t *testing.T) {
	dir := t.TempDir()
	l1, _ := mustOpen(t, Options{Dir: dir})
	id1, id2 := l1.NewID(), l1.NewID()
	appendRow(t, l1, id1, StatusAccepted)
	appendRow(t, l1, id1, StatusRunning)
	appendRow(t, l1, id1, StatusOK)
	appendRow(t, l1, id2, StatusAccepted)
	appendRow(t, l1, id2, StatusRunning)
	// No Close: the crash shape. The OS page cache has the bytes.

	l2, rec := mustOpen(t, Options{Dir: dir})
	if rec.Rows != 2 || rec.Events != 5 || rec.Interrupted != 1 || rec.TornTail {
		t.Fatalf("recovery %+v, want 2 rows / 5 events / 1 interrupted / no torn tail", rec)
	}
	r1, _ := l2.Get(id1)
	if r1.Status != StatusOK || !r1.Recovered {
		t.Fatalf("row 1 = %+v, want recovered ok", r1)
	}
	r2, _ := l2.Get(id2)
	if r2.Status != StatusInterrupted || !r2.Recovered || r2.Error == "" {
		t.Fatalf("row 2 = %+v, want recovered interrupted with an error", r2)
	}
	if next := l2.NewID(); next != id2+1 {
		t.Fatalf("NewID after recovery = %d, want %d (monotonic across restarts)", next, id2+1)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	// Third boot: the interrupted rewrite was durable, so nothing is
	// interrupted again.
	l3, rec3 := mustOpen(t, Options{Dir: dir})
	if rec3.Interrupted != 0 {
		t.Fatalf("second recovery interrupted %d rows again: %+v", rec3.Interrupted, rec3)
	}
	if r2, _ := l3.Get(id2); r2.Status != StatusInterrupted {
		t.Fatalf("row 2 after third boot = %+v", r2)
	}
	l3.Close()
}

func TestTornTailTruncatedOnReplay(t *testing.T) {
	dir := t.TempDir()
	l1, _ := mustOpen(t, Options{Dir: dir})
	appendRow(t, l1, 1, StatusOK)
	appendRow(t, l1, 2, StatusOK)
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: append half a record's worth of garbage to the
	// newest segment, the shape a crash mid-write leaves.
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	last := segs[len(segs)-1].path
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x1c, 0xb7, 0xc4, 0x52, 0xff})
	f.Close()
	before, _ := os.Stat(last)

	l2, rec := mustOpen(t, Options{Dir: dir})
	if !rec.TornTail || rec.TruncatedBytes != 5 {
		t.Fatalf("recovery %+v, want torn tail of 5 bytes", rec)
	}
	if rec.Rows != 2 || rec.Events != 2 {
		t.Fatalf("recovery %+v lost good records before the tear", rec)
	}
	after, _ := os.Stat(last)
	if after.Size() != before.Size()-5 {
		t.Fatalf("segment size %d after truncate, want %d", after.Size(), before.Size()-5)
	}
	l2.Close()

	// The truncation is durable: the next boot replays cleanly.
	l3, rec3 := mustOpen(t, Options{Dir: dir})
	if rec3.TornTail {
		t.Fatalf("torn tail reported again after truncation: %+v", rec3)
	}
	l3.Close()
}

func TestRotationAndCompactionBoundSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 256, CompactAfter: 2, Retain: 8})
	for i := 1; i <= 40; i++ {
		appendRow(t, l, int64(i), StatusOK)
	}
	if got := l.Segments(); got > 4 {
		t.Fatalf("%d segments after 40 appends; compaction is not bounding disk", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec := mustOpen(t, Options{Dir: dir, Retain: 8})
	if rec.Rows != 8 {
		t.Fatalf("recovered %d rows from compacted history, want the 8 retained", rec.Rows)
	}
	rows := l2.List()
	if rows[0].ID != 40 || rows[len(rows)-1].ID != 33 {
		t.Fatalf("recovered rows %+v, want ids 40..33", rows)
	}
	l2.Close()
}

func TestChaosTearIsSurvivable(t *testing.T) {
	dir := t.TempDir()
	ch, err := chaos.Parse("wal-tear=2")
	if err != nil {
		t.Fatal(err)
	}
	l, _ := mustOpen(t, Options{Dir: dir, Chaos: ch})
	appendRow(t, l, 1, StatusOK)
	// The second append is torn mid-frame and must report the failure...
	if err := l.Append(context.Background(), Row{ID: 2, Start: "t", Status: StatusOK}); err == nil {
		t.Fatal("torn append reported success")
	}
	// ...while the in-memory view still serves the row (degraded
	// durability, not a lost response).
	if r, ok := l.Get(2); !ok || r.Status != StatusOK {
		t.Fatalf("row 2 after torn append = %+v, %v", r, ok)
	}
	appendRow(t, l, 3, StatusOK)
	// SIGKILL shape: no Close.

	l2, rec := mustOpen(t, Options{Dir: dir})
	if rec.BadSegments != 1 {
		t.Fatalf("recovery %+v, want exactly the torn segment flagged bad", rec)
	}
	if r, ok := l2.Get(1); !ok || r.Status != StatusOK {
		t.Fatalf("row 1 = %+v, %v; the good prefix before the tear was lost", r, ok)
	}
	if r, ok := l2.Get(3); !ok || r.Status != StatusOK {
		t.Fatalf("row 3 = %+v, %v; appends after the tear were lost", r, ok)
	}
	// Row 2's only event was the torn one: gone, by design.
	if _, ok := l2.Get(2); ok {
		t.Fatal("torn row 2 replayed; the half-written record should be unreadable")
	}
	l2.Close()
}

func TestCorruptMidHistoryKeepsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 1}) // rotate every append
	appendRow(t, l, 1, StatusOK)
	appendRow(t, l, 2, StatusOK)
	appendRow(t, l, 3, StatusOK)
	l.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("only %d segments; the per-append rotation setup is wrong", len(segs))
	}
	// Flip a payload byte in the FIRST segment: mid-history corruption.
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xff
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec := mustOpen(t, Options{Dir: dir})
	if rec.BadSegments != 1 || rec.TornTail {
		t.Fatalf("recovery %+v, want 1 bad segment and no torn tail", rec)
	}
	for _, id := range []int64{2, 3} {
		if r, ok := l2.Get(id); !ok || r.Status != StatusOK {
			t.Fatalf("row %d = %+v, %v; corruption in segment 1 must not eat later segments", id, r, ok)
		}
	}
	l2.Close()
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hello"), 0o644)
	os.WriteFile(filepath.Join(dir, "wal-junk.wal"), []byte("nope"), 0o644)
	l, rec := mustOpen(t, Options{Dir: dir})
	if rec.Segments != 0 {
		t.Fatalf("recovery %+v counted foreign files as segments", rec)
	}
	appendRow(t, l, 1, StatusOK)
	l.Close()
	if _, err := os.Stat(filepath.Join(dir, "notes.txt")); err != nil {
		t.Fatalf("foreign file touched: %v", err)
	}
}

func TestStatsDigestStableAndSensitive(t *testing.T) {
	a := StatsDigest(100, 50, []int64{1, 2, 3})
	if b := StatsDigest(100, 50, []int64{1, 2, 3}); b != a {
		t.Fatalf("digest not deterministic: %s vs %s", a, b)
	}
	if c := StatsDigest(100, 50, []int64{1, 2, 4}); c == a {
		t.Fatal("digest insensitive to stall counts")
	}
	if d := StatsDigest(101, 50, []int64{1, 2, 3}); d == a {
		t.Fatal("digest insensitive to cycles")
	}
	if len(a) != 16 {
		t.Fatalf("digest %q, want 16 hex chars", a)
	}
}

func TestTerminal(t *testing.T) {
	for _, st := range []string{StatusOK, StatusFailed, StatusRejected, StatusTimeout, StatusCanceled, StatusInterrupted, StatusAborted} {
		if !Terminal(st) {
			t.Fatalf("Terminal(%s) = false", st)
		}
	}
	for _, st := range []string{StatusAccepted, StatusRunning} {
		if Terminal(st) {
			t.Fatalf("Terminal(%s) = true", st)
		}
	}
}

func TestOpenDirFailure(t *testing.T) {
	// A file where the directory should be is a boot error, not a panic.
	dir := t.TempDir()
	path := filepath.Join(dir, "occupied")
	os.WriteFile(path, []byte("x"), 0o644)
	_, _, err := Open(Options{Dir: path})
	if err == nil {
		t.Fatal("Open over a file succeeded")
	}
	var pe *os.PathError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a path error", err)
	}
}
