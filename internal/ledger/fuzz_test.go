package ledger

import (
	"bytes"
	"encoding/json"
	"testing"
)

// fuzzSeedSegment builds a well-formed segment image with n records.
func fuzzSeedSegment(n int) []byte {
	buf := []byte(fileMagic)
	for i := 1; i <= n; i++ {
		payload, _ := json.Marshal(event{Seq: uint64(i), Time: "t", Row: Row{ID: int64(i), Benchmark: "MLP", Start: "t", Status: StatusOK}})
		buf = encodeRecord(buf, payload)
	}
	return buf
}

// FuzzLedgerReplay pins the crash-safety contract of the WAL decoder:
// whatever bytes a torn write, a bit flip or an adversary leaves in a
// segment file, replaySegment must never panic, must stop at the first
// bad record, and must report a good prefix that itself replays cleanly
// to the same events.
func FuzzLedgerReplay(f *testing.F) {
	valid := fuzzSeedSegment(3)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(fileMagic))
	f.Add(valid[:len(valid)-1])          // torn tail mid-record
	f.Add(valid[:len(fileMagic)+4])      // torn tail mid-header
	f.Add(append(valid[:0:0], valid...)) // pristine copy for mutation
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-2] ^= 0xff // CRC mismatch on the last record
	f.Add(corrupt)
	badLen := append([]byte(nil), valid...)
	badLen[len(fileMagic)+4] = 0xff // implausible length field
	badLen[len(fileMagic)+5] = 0xff
	badLen[len(fileMagic)+6] = 0xff
	f.Add(badLen)
	f.Add([]byte("WRONGMAG"))

	f.Fuzz(func(t *testing.T, data []byte) {
		events, goodLen, err := replaySegment(data)
		if goodLen < 0 || goodLen > len(data) {
			t.Fatalf("goodLen %d out of [0,%d]", goodLen, len(data))
		}
		if err == nil && goodLen != len(data) {
			// A clean scan consumed everything (missing-header inputs
			// return an error, so goodLen 0 only pairs with err != nil).
			t.Fatalf("clean replay stopped at %d of %d bytes", goodLen, len(data))
		}
		if goodLen >= len(fileMagic) {
			// The reported good prefix is a valid truncation point: it
			// must replay cleanly and to the identical events — this is
			// exactly what Open relies on when it truncates a torn tail.
			again, againLen, aerr := replaySegment(data[:goodLen])
			if aerr != nil {
				t.Fatalf("good prefix does not replay cleanly: %v", aerr)
			}
			if againLen != goodLen || len(again) != len(events) {
				t.Fatalf("prefix replay: %d events to %d bytes, want %d events to %d",
					len(again), againLen, len(events), goodLen)
			}
			for i := range again {
				if again[i].Seq != events[i].Seq || again[i].Row != events[i].Row {
					t.Fatalf("prefix replay event %d = %+v, want %+v", i, again[i], events[i])
				}
			}
		}
	})
}

// FuzzRecordRoundTrip: any payload that encodeRecord frames must decode
// back bit-identically, and a frame with any single byte flipped must
// never decode to a different payload silently.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add([]byte("hello"), 2)
	f.Add([]byte{}, 0)
	f.Add(bytes.Repeat([]byte{0xa5}, 300), 17)
	f.Fuzz(func(t *testing.T, payload []byte, flip int) {
		if len(payload) > maxRecordBytes {
			t.Skip()
		}
		frame := encodeRecord(nil, payload)
		got, next, err := decodeRecord(frame, 0)
		if err != nil || next != len(frame) || !bytes.Equal(got, payload) {
			t.Fatalf("round trip: payload %d bytes, err %v, next %d/%d", len(payload), err, next, len(frame))
		}
		if len(frame) == 0 {
			return
		}
		idx := flip % len(frame)
		if idx < 0 {
			idx += len(frame)
		}
		mut := append([]byte(nil), frame...)
		mut[idx] ^= 0x01
		if got, _, err := decodeRecord(mut, 0); err == nil && !bytes.Equal(got, payload) {
			t.Fatalf("flipped byte %d decoded silently to a different payload", idx)
		}
	})
}
