// Package mem models the memory system of the Cambricon-ACC prototype
// (Section IV): the vector and matrix on-chip scratchpad memories with
// low-order-bit banking and the Fig. 9 crossbar, main memory, and the DMA
// engines that move data between them.
package mem

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"cambricon/internal/fixed"
)

// Scratchpad is an on-chip software-managed memory. Following Fig. 9, each
// scratchpad is decomposed into Banks banks interleaved on the low-order
// bits of the *bank-line* address, connected to its ports through a crossbar
// that serializes simultaneous accesses to the same bank.
//
// A Scratchpad is purely functional storage plus a conflict model: timing
// integration lives in internal/sim.
type Scratchpad struct {
	name      string
	data      []byte
	banks     int
	lineBytes int
	perBank   []int // reusable conflict counters (Scratchpad is not concurrency-safe)

	// tracking/dirty implement whole-pad dirty tracking for
	// snapshot/restore warm-starts: scratchpads are small (64 KiB / 768
	// KiB) and almost every run streams through most of one, so a single
	// flag — skip the copy when the pad was never written — captures the
	// useful cases without per-page bookkeeping on the operand hot path.
	tracking bool
	dirty    bool

	// onConflict, when set, observes crossbar serialization: it receives
	// the busiest bank of an access set and the cycles that bank was
	// busy beyond the ideal parallel streaming cost. nil (the default)
	// adds no work to AccessCycles.
	onConflict func(bank, extraCycles int)
}

// NewScratchpad builds a scratchpad of size bytes with the given bank count
// and bank line width in bytes (Table II: bank width 512 bits = 64 bytes).
// Geometry comes from user-supplied configuration, so bad values are
// returned as errors rather than panicking.
func NewScratchpad(name string, size, banks, lineBytes int) (*Scratchpad, error) {
	if size <= 0 || banks <= 0 || lineBytes <= 0 {
		return nil, fmt.Errorf("mem: invalid scratchpad geometry %d/%d/%d", size, banks, lineBytes)
	}
	if banks&(banks-1) != 0 {
		return nil, fmt.Errorf("mem: bank count %d must be a power of two", banks)
	}
	return &Scratchpad{name: name, data: make([]byte, size), banks: banks,
		lineBytes: lineBytes, perBank: make([]int, banks)}, nil
}

// Name returns the scratchpad's diagnostic name.
func (s *Scratchpad) Name() string { return s.name }

// Size returns the capacity in bytes.
func (s *Scratchpad) Size() int { return len(s.data) }

// Banks returns the number of banks.
func (s *Scratchpad) Banks() int { return s.banks }

// Image returns a copy of the full scratchpad contents (snapshot capture).
func (s *Scratchpad) Image() []byte {
	img := make([]byte, len(s.data))
	copy(img, s.data)
	return img
}

// DiffWords compares the live scratchpad contents against img (a prior
// Image of this scratchpad) and appends the indices of the differing
// 16-bit words to a fresh slice, giving up (ok false) once more than max
// words differ or when img has the wrong length. An equal pad returns
// (nil, true) after a single bytes.Equal pass; convergence checks use
// the word list to ask whether each surviving difference is ever read
// again.
func (s *Scratchpad) DiffWords(img []byte, max int) (words []int, ok bool) {
	if len(img) != len(s.data) {
		return nil, false
	}
	if bytes.Equal(s.data, img) {
		return nil, true
	}
	i := 0
	for ; i+8 <= len(s.data); i += 8 {
		a := binary.LittleEndian.Uint64(s.data[i:])
		b := binary.LittleEndian.Uint64(img[i:])
		if x := a ^ b; x != 0 {
			for k := 0; k < 8; k += 2 {
				if x>>(8*uint(k))&0xffff != 0 {
					words = append(words, (i+k)/2)
					if len(words) > max {
						return nil, false
					}
				}
			}
		}
	}
	for ; i < len(s.data); i++ {
		if s.data[i] != img[i] {
			w := i / 2
			if len(words) == 0 || words[len(words)-1] != w {
				words = append(words, w)
				if len(words) > max {
					return nil, false
				}
			}
		}
	}
	return words, true
}

// BeginDirtyTracking clears and (re)enables write tracking: after the
// call, RestoreFrom skips the copy entirely when nothing was written
// since.
func (s *Scratchpad) BeginDirtyTracking() {
	s.tracking = true
	s.dirty = false
}

// DropDirtyTracking disables write tracking; the next RestoreFrom falls
// back to a full copy.
func (s *Scratchpad) DropDirtyTracking() { s.tracking = false }

// Tracking reports whether write tracking is active.
func (s *Scratchpad) Tracking() bool { return s.tracking }

// MarkDirty forces the next RestoreFrom to copy even if nothing was
// written (no-op without tracking). Used when a tracked scratchpad
// switches to a different snapshot image: the whole-pad granularity means
// the switch is a full pad copy, but tracking survives so later restores
// to the same image stay skippable.
func (s *Scratchpad) MarkDirty() {
	if s.tracking {
		s.dirty = true
	}
}

// RestoreFrom reinstates img (a prior Image of this scratchpad), copying
// only when the pad was written since BeginDirtyTracking (or when
// tracking is off), and returns the number of bytes copied.
func (s *Scratchpad) RestoreFrom(img []byte) (int, error) {
	if len(img) != len(s.data) {
		return 0, fmt.Errorf("mem: %s: restore image is %d bytes, capacity %d", s.name, len(img), len(s.data))
	}
	if s.tracking && !s.dirty {
		return 0, nil
	}
	s.tracking = true
	s.dirty = false
	return copy(s.data, img), nil
}

// SetConflictHook registers fn to observe bank conflicts: whenever an
// AccessCycles access set serializes through the crossbar beyond its
// ideal streaming cost, fn receives the busiest bank and the extra
// cycles it was responsible for. nil disables observation (the
// default). The hook is how the simulator's tracing layer builds its
// bank-conflict heatmap without the scratchpad knowing about tracing.
func (s *Scratchpad) SetConflictHook(fn func(bank, extraCycles int)) { s.onConflict = fn }

// FlipBit flips one bit of the scratchpad's storage: bit (mod 8) of the
// byte at addr. It reports whether addr was inside the scratchpad. This
// is the fault-injection hook — a transient upset in an SRAM cell — and
// deliberately bypasses the access-size checks real transfers go
// through.
func (s *Scratchpad) FlipBit(addr int, bit uint8) bool {
	if addr < 0 || addr >= len(s.data) {
		return false
	}
	s.dirty = true
	s.data[addr] ^= 1 << (bit % 8)
	return true
}

// check validates an access region. Scratchpad addressing errors are program
// bugs surfaced as errors so the simulator can report the faulting
// instruction.
func (s *Scratchpad) check(addr, n int) error {
	if n < 0 {
		return fmt.Errorf("mem: %s: negative access size %d", s.name, n)
	}
	if addr < 0 || addr+n > len(s.data) {
		return fmt.Errorf("mem: %s: access [%d, %d) outside capacity %d", s.name, addr, addr+n, len(s.data))
	}
	return nil
}

// ReadBytes copies n bytes starting at addr.
func (s *Scratchpad) ReadBytes(addr, n int) ([]byte, error) {
	if err := s.check(addr, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, s.data[addr:addr+n])
	return out, nil
}

// ReadBytesInto copies len(dst) bytes starting at addr into dst without
// allocating.
func (s *Scratchpad) ReadBytesInto(addr int, dst []byte) error {
	if err := s.check(addr, len(dst)); err != nil {
		return err
	}
	copy(dst, s.data[addr:addr+len(dst)])
	return nil
}

// WriteBytes stores b at addr.
func (s *Scratchpad) WriteBytes(addr int, b []byte) error {
	if err := s.check(addr, len(b)); err != nil {
		return err
	}
	s.dirty = true
	copy(s.data[addr:], b)
	return nil
}

// ReadNums reads count 16-bit fixed-point elements starting at byte address
// addr.
func (s *Scratchpad) ReadNums(addr, count int) ([]fixed.Num, error) {
	n := fixed.Bytes(count)
	if err := s.check(addr, n); err != nil {
		return nil, err
	}
	return fixed.FromBytes(s.data[addr:addr+n], count), nil
}

// ReadNumsInto reads len(dst) elements into dst without allocating.
func (s *Scratchpad) ReadNumsInto(addr int, dst []fixed.Num) error {
	n := fixed.Bytes(len(dst))
	if err := s.check(addr, n); err != nil {
		return err
	}
	fixed.FromBytesInto(s.data[addr:addr+n], dst)
	return nil
}

// NumsView returns count elements starting at byte address addr as a
// zero-copy view of the scratchpad storage whenever the host memory layout
// matches the storage format (little-endian, element-aligned base); it
// falls back to decoding into *spill (grown as needed, never shrunk)
// otherwise, so the call is allocation-free once spill has warmed up.
//
// The returned slice must be treated as read-only and aliases the
// scratchpad: a subsequent WriteBytes/WriteNums over the same region is
// visible through the view, so callers must finish all reads through a
// view before writing to the scratchpad (the simulator's execute functions
// read every operand before storing their result, which is what makes the
// view safe even when an instruction's output overlaps its inputs). A
// Scratchpad is not safe for concurrent use, so there are no concurrent
// writers to guard against by construction.
func (s *Scratchpad) NumsView(addr, count int, spill *[]fixed.Num) ([]fixed.Num, error) {
	n := fixed.Bytes(count)
	if err := s.check(addr, n); err != nil {
		return nil, err
	}
	if ns, ok := fixed.ViewBytes(s.data[addr:addr+n], count); ok {
		return ns, nil
	}
	if cap(*spill) < count {
		*spill = make([]fixed.Num, count)
	}
	dst := (*spill)[:count]
	fixed.FromBytesInto(s.data[addr:addr+n], dst)
	return dst, nil
}

// WriteNums stores fixed-point elements at byte address addr.
func (s *Scratchpad) WriteNums(addr int, ns []fixed.Num) error {
	n := fixed.Bytes(len(ns))
	if err := s.check(addr, n); err != nil {
		return err
	}
	s.dirty = true
	fixed.ToBytes(ns, s.data[addr:addr+n])
	return nil
}

// AccessCycles returns the number of scratchpad cycles needed to service the
// given concurrent port accesses, each described by its byte region. With no
// bank conflicts every port proceeds in parallel and the cost is the maximum
// line count of any single access; conflicting line accesses to the same
// bank serialize through the crossbar.
func (s *Scratchpad) AccessCycles(regions []Region) int {
	perBank := s.perBank
	for i := range perBank {
		perBank[i] = 0
	}
	longest := 0
	for _, r := range regions {
		if r.N <= 0 {
			continue
		}
		first := r.Addr / s.lineBytes
		last := (r.Addr + r.N - 1) / s.lineBytes
		lines := last - first + 1
		if lines > longest {
			longest = lines
		}
		for line := first; line <= last; line++ {
			perBank[line&(s.banks-1)]++
		}
	}
	// Each bank has a single port: total cycles is the busiest bank, but
	// never less than the longest single streaming access (lines within one
	// access to the same bank already serialize and are counted above).
	busiest, busiestBank := 0, 0
	for b, n := range perBank {
		if n > busiest {
			busiest, busiestBank = n, b
		}
	}
	if s.onConflict != nil && busiest > longest {
		s.onConflict(busiestBank, busiest-longest)
	}
	if busiest < longest {
		busiest = longest
	}
	return busiest
}

// Region is a byte-addressed memory extent.
type Region struct {
	Addr int
	N    int
}

// Overlaps reports whether two regions intersect. Zero-length regions never
// overlap anything.
func (r Region) Overlaps(o Region) bool {
	if r.N <= 0 || o.N <= 0 {
		return false
	}
	return r.Addr < o.Addr+o.N && o.Addr < r.Addr+r.N
}
