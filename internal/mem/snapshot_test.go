package mem

import (
	"bytes"
	"strings"
	"testing"

	"cambricon/internal/fixed"
)

// dirtyPages decodes the main-memory bitmap into page indices.
func dirtyPages(m *Main) []int {
	var pages []int
	for w, word := range m.dirty {
		for b := 0; b < 64; b++ {
			if word&(1<<uint(b)) != 0 {
				pages = append(pages, w*64+b)
			}
		}
	}
	return pages
}

func TestMainDirtyTrackingMarksPages(t *testing.T) {
	m := newMainMem(t, 4*PageBytes)
	img := m.Image()
	m.BeginDirtyTracking()

	// A small write inside page 1.
	if err := m.WriteWord(PageBytes+16, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	// A write spanning the page 2/3 boundary.
	if err := m.WriteBytes(3*PageBytes-2, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	got := dirtyPages(m)
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("dirty pages = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dirty pages = %v, want %v", got, want)
		}
	}

	copied, err := m.RestoreFrom(img)
	if err != nil {
		t.Fatal(err)
	}
	if copied != 3*PageBytes {
		t.Fatalf("restore copied %d bytes, want %d (3 pages)", copied, 3*PageBytes)
	}
	if !bytes.Equal(m.data, img) {
		t.Fatal("restored contents differ from image")
	}
	if pages := dirtyPages(m); len(pages) != 0 {
		t.Fatalf("bitmap not cleared after restore: %v", pages)
	}
	// Untouched restore copies nothing.
	copied, err = m.RestoreFrom(img)
	if err != nil {
		t.Fatal(err)
	}
	if copied != 0 {
		t.Fatalf("clean restore copied %d bytes, want 0", copied)
	}
}

func TestMainDirtyTrackingWriteNums(t *testing.T) {
	m := newMainMem(t, 2*PageBytes)
	m.BeginDirtyTracking()
	if err := m.WriteNums(0, fixed.FromFloats([]float64{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	got := dirtyPages(m)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("dirty pages = %v, want [0]", got)
	}
}

func TestMainRestoreWithoutTrackingCopiesAll(t *testing.T) {
	m := newMainMem(t, 2*PageBytes+100) // partial last page
	if err := m.WriteBytes(2*PageBytes+50, []byte{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	img := make([]byte, m.Size())
	copied, err := m.RestoreFrom(img)
	if err != nil {
		t.Fatal(err)
	}
	if copied != m.Size() {
		t.Fatalf("untracked restore copied %d bytes, want full %d", copied, m.Size())
	}
	if m.dirty == nil {
		t.Fatal("untracked restore should begin tracking")
	}
	// The partial last page restores without overrunning the buffer.
	if err := m.WriteBytes(2*PageBytes+10, []byte{7}); err != nil {
		t.Fatal(err)
	}
	copied, err = m.RestoreFrom(img)
	if err != nil {
		t.Fatal(err)
	}
	if copied != 100 {
		t.Fatalf("partial-page restore copied %d bytes, want 100", copied)
	}
	if !bytes.Equal(m.data, img) {
		t.Fatal("restored contents differ from image")
	}
}

func TestMainRestoreSizeMismatch(t *testing.T) {
	m := newMainMem(t, PageBytes)
	if _, err := m.RestoreFrom(make([]byte, PageBytes-1)); err == nil ||
		!strings.Contains(err.Error(), "restore image") {
		t.Fatalf("size-mismatch restore: err = %v", err)
	}
}

func TestSparseImageRoundTrip(t *testing.T) {
	m := newMainMem(t, 4*PageBytes+100) // partial last page
	if err := m.WriteWord(PageBytes+8, 0x01020304); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteBytes(4*PageBytes+96, []byte{5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	dense := m.Image()
	img := m.SparseImage()
	if img.Size() != m.Size() {
		t.Fatalf("SparseImage.Size() = %d, want %d", img.Size(), m.Size())
	}
	if img.Pages() != 2 {
		t.Fatalf("SparseImage.Pages() = %d, want 2 (pages 1 and 4)", img.Pages())
	}
	if want := PageBytes + 100; img.Bytes() != want {
		t.Fatalf("SparseImage.Bytes() = %d, want %d (one full + the short last page)", img.Bytes(), want)
	}

	// Untracked restore onto scribbled memory rebuilds everything,
	// including zero pages the image does not store.
	for i := 0; i < m.Size(); i += 37 {
		m.data[i] = 0xAA
	}
	m.DropDirtyTracking()
	written, err := m.RestoreFromSparse(img)
	if err != nil {
		t.Fatal(err)
	}
	if written != m.Size() {
		t.Fatalf("untracked sparse restore wrote %d bytes, want full %d", written, m.Size())
	}
	if !bytes.Equal(m.data, dense) {
		t.Fatal("sparse restore does not reproduce the dense image")
	}
	if m.dirty == nil {
		t.Fatal("untracked sparse restore should begin tracking")
	}

	// Tracked restore touches only dirty pages: one stored, one absent.
	if err := m.WriteWord(PageBytes+8, 0xffffffff); err != nil { // stored page
		t.Fatal(err)
	}
	if err := m.WriteWord(2*PageBytes, 0xffffffff); err != nil { // zero page
		t.Fatal(err)
	}
	written, err = m.RestoreFromSparse(img)
	if err != nil {
		t.Fatal(err)
	}
	if written != 2*PageBytes {
		t.Fatalf("tracked sparse restore wrote %d bytes, want %d (2 pages)", written, 2*PageBytes)
	}
	if !bytes.Equal(m.data, dense) {
		t.Fatal("tracked sparse restore does not reproduce the dense image")
	}
	// Clean restore is free.
	written, err = m.RestoreFromSparse(img)
	if err != nil {
		t.Fatal(err)
	}
	if written != 0 {
		t.Fatalf("clean sparse restore wrote %d bytes, want 0", written)
	}
}

func TestSparseRestoreSizeMismatch(t *testing.T) {
	m := newMainMem(t, PageBytes)
	other := newMainMem(t, 2*PageBytes)
	if _, err := m.RestoreFromSparse(other.SparseImage()); err == nil ||
		!strings.Contains(err.Error(), "restore image") {
		t.Fatalf("size-mismatch sparse restore: err = %v", err)
	}
}

func TestScratchpadDirtyTracking(t *testing.T) {
	s := newPad(t, "vspad", 1024, 4, 64)
	if err := s.WriteBytes(0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	img := s.Image()
	s.BeginDirtyTracking()

	// Clean pad: restore is free.
	copied, err := s.RestoreFrom(img)
	if err != nil {
		t.Fatal(err)
	}
	if copied != 0 {
		t.Fatalf("clean restore copied %d bytes, want 0", copied)
	}

	// Each write kind dirties the pad.
	dirtiers := []struct {
		name string
		fn   func()
	}{
		{"WriteBytes", func() { s.WriteBytes(0, []byte{9}) }},
		{"WriteNums", func() { s.WriteNums(0, fixed.FromFloats([]float64{4})) }},
		{"FlipBit", func() { s.FlipBit(5, 1) }},
	}
	for _, d := range dirtiers {
		d.fn()
		if !s.dirty {
			t.Fatalf("%s did not dirty the pad", d.name)
		}
		copied, err := s.RestoreFrom(img)
		if err != nil {
			t.Fatal(err)
		}
		if copied != s.Size() {
			t.Fatalf("%s: dirty restore copied %d bytes, want %d", d.name, copied, s.Size())
		}
		if !bytes.Equal(s.data, img) {
			t.Fatalf("%s: restored contents differ from image", d.name)
		}
	}

	// Tracking dropped: restore always copies.
	s.DropDirtyTracking()
	copied, err = s.RestoreFrom(img)
	if err != nil {
		t.Fatal(err)
	}
	if copied != s.Size() {
		t.Fatalf("untracked restore copied %d bytes, want %d", copied, s.Size())
	}

	if _, err := s.RestoreFrom(make([]byte, 7)); err == nil ||
		!strings.Contains(err.Error(), "restore image") {
		t.Fatalf("size-mismatch restore: err = %v", err)
	}
}
