package mem

import (
	"fmt"
	"math/bits"

	"cambricon/internal/fixed"
)

// PageBytes is the dirty-tracking granule of Main: restore-from-snapshot
// copies whole pages, so the value trades bitmap size (16 MiB / 4 KiB =
// 4096 pages = 64 words) against copy amplification for small writes.
const PageBytes = 4096

// Main is the off-chip main memory. The prototype accesses it only through
// load/store instructions (Cambricon is a load-store architecture,
// Section II-B). Addresses are byte addresses; scalar accesses are 32-bit,
// vector/matrix accesses move 16-bit fixed-point element blocks via DMA.
type Main struct {
	data []byte

	// dirty is the page bitmap behind snapshot/restore warm-starts: when
	// non-nil every write marks its pages, and RestoreFrom copies back
	// only marked pages instead of the whole memory. nil (the default)
	// disables tracking and adds a single predicted branch per write.
	dirty []uint64
}

// NewMain allocates a main memory of size bytes. The size comes from
// user-supplied configuration, so a bad value is returned as an error
// rather than panicking.
func NewMain(size int) (*Main, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mem: invalid main memory size %d", size)
	}
	return &Main{data: make([]byte, size)}, nil
}

// Size returns the capacity in bytes.
func (m *Main) Size() int { return len(m.data) }

// Image returns a copy of the full memory contents (snapshot capture).
func (m *Main) Image() []byte {
	img := make([]byte, len(m.data))
	copy(img, m.data)
	return img
}

// BeginDirtyTracking clears and (re)enables write tracking: after the
// call, RestoreFrom copies back only pages written since. The bitmap is
// allocated once and reused.
func (m *Main) BeginDirtyTracking() {
	pages := (len(m.data) + PageBytes - 1) / PageBytes
	if m.dirty == nil {
		m.dirty = make([]uint64, (pages+63)/64)
		return
	}
	for i := range m.dirty {
		m.dirty[i] = 0
	}
}

// DropDirtyTracking disables write tracking; the next RestoreFrom falls
// back to a full copy. Used when a machine switches to a different
// snapshot, whose image it has never held.
func (m *Main) DropDirtyTracking() { m.dirty = nil }

// markDirty records the pages of a write region. Callers validate the
// region first, so the page range is always inside the bitmap.
func (m *Main) markDirty(addr, n int) {
	if m.dirty == nil || n <= 0 {
		return
	}
	for p := addr / PageBytes; p <= (addr+n-1)/PageBytes; p++ {
		m.dirty[p>>6] |= 1 << (uint(p) & 63)
	}
}

// RestoreFrom reinstates img (a prior Image of this memory): with
// tracking active only dirty pages are copied and the bitmap is cleared;
// without tracking the whole memory is copied and tracking begins. It
// returns the number of bytes copied — the measure of how much the page
// bitmap saved.
func (m *Main) RestoreFrom(img []byte) (int, error) {
	if len(img) != len(m.data) {
		return 0, fmt.Errorf("mem: main: restore image is %d bytes, capacity %d", len(img), len(m.data))
	}
	if m.dirty == nil {
		copy(m.data, img)
		m.BeginDirtyTracking()
		return len(m.data), nil
	}
	copied := 0
	for w, word := range m.dirty {
		if word == 0 {
			continue
		}
		m.dirty[w] = 0
		for ; word != 0; word &= word - 1 {
			p := w<<6 + bits.TrailingZeros64(word)
			lo := p * PageBytes
			hi := lo + PageBytes
			if hi > len(m.data) {
				hi = len(m.data)
			}
			copied += copy(m.data[lo:hi], img[lo:hi])
		}
	}
	return copied, nil
}

func (m *Main) check(addr, n int) error {
	if n < 0 {
		return fmt.Errorf("mem: main: negative access size %d", n)
	}
	if addr < 0 || addr+n > len(m.data) {
		return fmt.Errorf("mem: main: access [%d, %d) outside capacity %d", addr, addr+n, len(m.data))
	}
	return nil
}

// ReadBytes copies n bytes at addr.
func (m *Main) ReadBytes(addr, n int) ([]byte, error) {
	if err := m.check(addr, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, m.data[addr:addr+n])
	return out, nil
}

// ReadBytesInto copies len(dst) bytes at addr into dst without allocating.
func (m *Main) ReadBytesInto(addr int, dst []byte) error {
	if err := m.check(addr, len(dst)); err != nil {
		return err
	}
	copy(dst, m.data[addr:addr+len(dst)])
	return nil
}

// WriteBytes stores b at addr.
func (m *Main) WriteBytes(addr int, b []byte) error {
	if err := m.check(addr, len(b)); err != nil {
		return err
	}
	m.markDirty(addr, len(b))
	copy(m.data[addr:], b)
	return nil
}

// ReadWord reads a 32-bit little-endian word (scalar load).
func (m *Main) ReadWord(addr int) (uint32, error) {
	if err := m.check(addr, 4); err != nil {
		return 0, err
	}
	b := m.data[addr:]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// WriteWord stores a 32-bit little-endian word (scalar store).
func (m *Main) WriteWord(addr int, v uint32) error {
	if err := m.check(addr, 4); err != nil {
		return err
	}
	m.markDirty(addr, 4)
	m.data[addr] = byte(v)
	m.data[addr+1] = byte(v >> 8)
	m.data[addr+2] = byte(v >> 16)
	m.data[addr+3] = byte(v >> 24)
	return nil
}

// ReadNums reads count fixed-point elements at byte address addr.
func (m *Main) ReadNums(addr, count int) ([]fixed.Num, error) {
	n := fixed.Bytes(count)
	if err := m.check(addr, n); err != nil {
		return nil, err
	}
	return fixed.FromBytes(m.data[addr:addr+n], count), nil
}

// ReadNumsInto reads len(dst) elements at byte address addr into dst
// without allocating.
func (m *Main) ReadNumsInto(addr int, dst []fixed.Num) error {
	n := fixed.Bytes(len(dst))
	if err := m.check(addr, n); err != nil {
		return err
	}
	fixed.FromBytesInto(m.data[addr:addr+n], dst)
	return nil
}

// WriteNums stores fixed-point elements at byte address addr.
func (m *Main) WriteNums(addr int, ns []fixed.Num) error {
	n := fixed.Bytes(len(ns))
	if err := m.check(addr, n); err != nil {
		return err
	}
	m.markDirty(addr, n)
	fixed.ToBytes(ns, m.data[addr:addr+n])
	return nil
}

// DMA models one scratchpad DMA engine: a fixed startup latency plus a
// bandwidth-limited streaming phase. The prototype's vector/matrix units
// each integrate three operand DMAs and the scratchpads an IO DMA
// (Section IV); all share this timing shape.
type DMA struct {
	// StartupCycles is the fixed request latency before data streams.
	StartupCycles int
	// BytesPerCycle is the streaming bandwidth.
	BytesPerCycle int
}

// TransferCycles returns the cycle cost of moving n bytes.
func (d DMA) TransferCycles(n int) int {
	if n <= 0 {
		return 0
	}
	bpc := d.BytesPerCycle
	if bpc <= 0 {
		bpc = 1
	}
	return d.StartupCycles + (n+bpc-1)/bpc
}
