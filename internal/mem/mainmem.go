package mem

import (
	"bytes"
	"fmt"
	"math/bits"
	"sort"

	"cambricon/internal/fixed"
)

// PageBytes is the dirty-tracking granule of Main: restore-from-snapshot
// copies whole pages, so the value trades bitmap size (16 MiB / 4 KiB =
// 4096 pages = 64 words) against copy amplification for small writes.
const PageBytes = 4096

// Main is the off-chip main memory. The prototype accesses it only through
// load/store instructions (Cambricon is a load-store architecture,
// Section II-B). Addresses are byte addresses; scalar accesses are 32-bit,
// vector/matrix accesses move 16-bit fixed-point element blocks via DMA.
type Main struct {
	data []byte

	// dirty is the page bitmap behind snapshot/restore warm-starts: when
	// non-nil every write marks its pages, and RestoreFrom copies back
	// only marked pages instead of the whole memory. nil (the default)
	// disables tracking and adds a single predicted branch per write.
	dirty []uint64
}

// NewMain allocates a main memory of size bytes. The size comes from
// user-supplied configuration, so a bad value is returned as an error
// rather than panicking.
func NewMain(size int) (*Main, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mem: invalid main memory size %d", size)
	}
	return &Main{data: make([]byte, size)}, nil
}

// Size returns the capacity in bytes.
func (m *Main) Size() int { return len(m.data) }

// Image returns a copy of the full memory contents (snapshot capture).
func (m *Main) Image() []byte {
	img := make([]byte, len(m.data))
	copy(img, m.data)
	return img
}

// SparseImage is a page-sparse copy of a Main's contents: only the
// 4 KiB pages holding at least one nonzero byte are stored. Benchmarks
// touch well under 1 MiB of the 16 MiB address space, so a sparse image
// is ~20x smaller resident than the dense Image it replaces in
// sim.Snapshot. A SparseImage is immutable once captured and safe to
// share across goroutines.
type SparseImage struct {
	size int
	// pos maps a page index to its offset (in pages) within data; pages
	// absent from the map are all-zero. data packs the stored pages
	// contiguously (the last stored page may be short when size is not
	// page-aligned).
	pos  map[int]int
	data []byte
}

// Size returns the capacity of the memory the image was captured from.
func (s *SparseImage) Size() int { return s.size }

// Pages returns the number of stored (nonzero) pages.
func (s *SparseImage) Pages() int { return len(s.pos) }

// Bytes returns the resident size of the image — the bytes actually
// stored, what a dense Image of len Size() collapses to.
func (s *SparseImage) Bytes() int { return len(s.data) }

// page returns the stored contents of page p, or nil when the page is
// all-zero.
func (s *SparseImage) page(p int) []byte {
	i, ok := s.pos[p]
	if !ok {
		return nil
	}
	lo := i * PageBytes
	hi := lo + PageBytes
	if hi > len(s.data) {
		hi = len(s.data)
	}
	return s.data[lo:hi]
}

// SparseImage captures the current memory contents as a page-sparse
// image (snapshot capture; the sparse counterpart of Image).
func (m *Main) SparseImage() *SparseImage {
	var nonzero []int
	for p, off := 0, 0; off < len(m.data); p, off = p+1, off+PageBytes {
		hi := off + PageBytes
		if hi > len(m.data) {
			hi = len(m.data)
		}
		page := m.data[off:hi]
		for _, b := range page {
			if b != 0 {
				nonzero = append(nonzero, p)
				break
			}
		}
	}
	s := &SparseImage{size: len(m.data), pos: make(map[int]int, len(nonzero))}
	// The final stored page is the only one allowed to be short, so a
	// short (unaligned) last memory page is packed last regardless of
	// capture order — here order is ascending, which already guarantees it.
	for i, p := range nonzero {
		s.pos[p] = i
		lo := p * PageBytes
		hi := lo + PageBytes
		if hi > len(m.data) {
			hi = len(m.data)
		}
		s.data = append(s.data, m.data[lo:hi]...)
	}
	return s
}

// StoredPages returns the indices of the stored (nonzero) pages in
// ascending order — the iteration order checkpoint serialization uses so
// identical images always serialize to identical bytes.
func (s *SparseImage) StoredPages() []int {
	pages := make([]int, 0, len(s.pos))
	for p := range s.pos {
		pages = append(pages, p)
	}
	sort.Ints(pages)
	return pages
}

// Page returns the stored contents of page p, or nil when the page is
// all-zero. The returned slice aliases the image and must not be mutated.
func (s *SparseImage) Page(p int) []byte { return s.page(p) }

// BuildSparseImage reconstructs an image from its serialized parts: the
// memory capacity and the stored pages in ascending index order. Every
// page must be full PageBytes except possibly the last (the packing
// invariant SparseImage capture establishes); violations are errors so a
// corrupted checkpoint cannot build a malformed image.
func BuildSparseImage(size int, pages []int, contents [][]byte) (*SparseImage, error) {
	if len(pages) != len(contents) {
		return nil, fmt.Errorf("mem: sparse image: %d page indices, %d page contents", len(pages), len(contents))
	}
	s := &SparseImage{size: size, pos: make(map[int]int, len(pages))}
	lastPage := (size + PageBytes - 1) / PageBytes
	prev := -1
	for i, p := range pages {
		if p <= prev || p < 0 || p >= lastPage {
			return nil, fmt.Errorf("mem: sparse image: bad page index %d (prev %d, pages %d)", p, prev, lastPage)
		}
		prev = p
		want := PageBytes
		if hi := (p + 1) * PageBytes; hi > size {
			want = size - p*PageBytes
		}
		if len(contents[i]) != want {
			return nil, fmt.Errorf("mem: sparse image: page %d is %d bytes, want %d", p, len(contents[i]), want)
		}
		s.pos[p] = i
		s.data = append(s.data, contents[i]...)
	}
	return s, nil
}

// ZeroSparseImage builds the sparse image of an all-zero memory of the
// given size — no pages resident. Restoring it zeroes the target, which
// is how the bench pool synthesizes a pristine (post-construction)
// snapshot without ever capturing one from a machine.
func ZeroSparseImage(size int) *SparseImage {
	return &SparseImage{size: size, pos: map[int]int{}}
}

// Tracking reports whether dirty-page tracking is active — i.e. whether
// the memory's contents are provably "last restored image + dirty pages",
// the invariant delta snapshot switches rely on.
func (m *Main) Tracking() bool { return m.dirty != nil }

// MarkPagesDirty marks every page the image stores as dirty (no-op
// without tracking). Marking the resident pages of both the previously
// restored image and the next one — on top of whatever the machine
// dirtied since — bounds every page that can differ between the current
// contents and the next image, which lets RestoreFromSparse switch a
// tracked memory between snapshots with a dirty-walk instead of a full
// 16 MiB rebuild.
func (m *Main) MarkPagesDirty(img *SparseImage) {
	if m.dirty == nil || img == nil {
		return
	}
	for p := range img.pos {
		m.dirty[p>>6] |= 1 << (uint(p) & 63)
	}
}

// RestoreFromSparse reinstates a SparseImage of this memory: with dirty
// tracking active only pages written since the last snapshot/restore are
// touched (copied back from the image, or zeroed when the image does not
// store them); without tracking the whole memory is rebuilt and tracking
// begins. Returns the number of bytes written, the dirty-page saving
// measure, exactly like RestoreFrom.
func (m *Main) RestoreFromSparse(img *SparseImage) (int, error) {
	if img.size != len(m.data) {
		return 0, fmt.Errorf("mem: main: restore image is %d bytes, capacity %d", img.size, len(m.data))
	}
	if m.dirty == nil {
		for p, off := 0, 0; off < len(m.data); p, off = p+1, off+PageBytes {
			hi := off + PageBytes
			if hi > len(m.data) {
				hi = len(m.data)
			}
			if src := img.page(p); src != nil {
				copy(m.data[off:hi], src)
			} else {
				zero(m.data[off:hi])
			}
		}
		m.BeginDirtyTracking()
		return len(m.data), nil
	}
	written := 0
	for w, word := range m.dirty {
		if word == 0 {
			continue
		}
		m.dirty[w] = 0
		for ; word != 0; word &= word - 1 {
			p := w<<6 + bits.TrailingZeros64(word)
			lo := p * PageBytes
			hi := lo + PageBytes
			if hi > len(m.data) {
				hi = len(m.data)
			}
			if src := img.page(p); src != nil {
				written += copy(m.data[lo:hi], src)
			} else {
				zero(m.data[lo:hi])
				written += hi - lo
			}
		}
	}
	return written, nil
}

// zero clears a byte slice (compiles to memclr).
func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// BeginDirtyTracking clears and (re)enables write tracking: after the
// call, RestoreFrom copies back only pages written since. The bitmap is
// allocated once and reused.
func (m *Main) BeginDirtyTracking() {
	pages := (len(m.data) + PageBytes - 1) / PageBytes
	if m.dirty == nil {
		m.dirty = make([]uint64, (pages+63)/64)
		return
	}
	for i := range m.dirty {
		m.dirty[i] = 0
	}
}

// DropDirtyTracking disables write tracking; the next RestoreFrom falls
// back to a full copy. Used when a machine switches to a different
// snapshot, whose image it has never held.
func (m *Main) DropDirtyTracking() { m.dirty = nil }

// markDirty records the pages of a write region. Callers validate the
// region first, so the page range is always inside the bitmap.
func (m *Main) markDirty(addr, n int) {
	if m.dirty == nil || n <= 0 {
		return
	}
	for p := addr / PageBytes; p <= (addr+n-1)/PageBytes; p++ {
		m.dirty[p>>6] |= 1 << (uint(p) & 63)
	}
}

// AppendDirtyPages appends the indices of every page written since the
// last snapshot/restore to buf and reports whether tracking is active
// (without tracking there is no dirty set to enumerate and ok is
// false). The bitmap is left untouched — this is a read-only view for
// convergence checks, not a restore.
func (m *Main) AppendDirtyPages(buf []int) ([]int, bool) {
	if m.dirty == nil {
		return buf, false
	}
	for w, word := range m.dirty {
		for ; word != 0; word &= word - 1 {
			buf = append(buf, w<<6+bits.TrailingZeros64(word))
		}
	}
	return buf, true
}

// PageEquals reports whether the live contents of page p equal the
// image's page p (absent pages are all-zero). Out-of-range pages or a
// capacity mismatch compare unequal, so callers degrade conservatively.
func (m *Main) PageEquals(img *SparseImage, p int) bool {
	if img == nil || img.size != len(m.data) {
		return false
	}
	lo := p * PageBytes
	hi := lo + PageBytes
	if hi > len(m.data) {
		hi = len(m.data)
	}
	if lo < 0 || lo >= hi {
		return false
	}
	live := m.data[lo:hi]
	if src := img.page(p); src != nil {
		return bytes.Equal(live, src)
	}
	for _, b := range live {
		if b != 0 {
			return false
		}
	}
	return true
}

// RestoreFrom reinstates img (a prior Image of this memory): with
// tracking active only dirty pages are copied and the bitmap is cleared;
// without tracking the whole memory is copied and tracking begins. It
// returns the number of bytes copied — the measure of how much the page
// bitmap saved.
func (m *Main) RestoreFrom(img []byte) (int, error) {
	if len(img) != len(m.data) {
		return 0, fmt.Errorf("mem: main: restore image is %d bytes, capacity %d", len(img), len(m.data))
	}
	if m.dirty == nil {
		copy(m.data, img)
		m.BeginDirtyTracking()
		return len(m.data), nil
	}
	copied := 0
	for w, word := range m.dirty {
		if word == 0 {
			continue
		}
		m.dirty[w] = 0
		for ; word != 0; word &= word - 1 {
			p := w<<6 + bits.TrailingZeros64(word)
			lo := p * PageBytes
			hi := lo + PageBytes
			if hi > len(m.data) {
				hi = len(m.data)
			}
			copied += copy(m.data[lo:hi], img[lo:hi])
		}
	}
	return copied, nil
}

func (m *Main) check(addr, n int) error {
	if n < 0 {
		return fmt.Errorf("mem: main: negative access size %d", n)
	}
	if addr < 0 || addr+n > len(m.data) {
		return fmt.Errorf("mem: main: access [%d, %d) outside capacity %d", addr, addr+n, len(m.data))
	}
	return nil
}

// ReadBytes copies n bytes at addr.
func (m *Main) ReadBytes(addr, n int) ([]byte, error) {
	if err := m.check(addr, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, m.data[addr:addr+n])
	return out, nil
}

// ReadBytesInto copies len(dst) bytes at addr into dst without allocating.
func (m *Main) ReadBytesInto(addr int, dst []byte) error {
	if err := m.check(addr, len(dst)); err != nil {
		return err
	}
	copy(dst, m.data[addr:addr+len(dst)])
	return nil
}

// WriteBytes stores b at addr.
func (m *Main) WriteBytes(addr int, b []byte) error {
	if err := m.check(addr, len(b)); err != nil {
		return err
	}
	m.markDirty(addr, len(b))
	copy(m.data[addr:], b)
	return nil
}

// ReadWord reads a 32-bit little-endian word (scalar load).
func (m *Main) ReadWord(addr int) (uint32, error) {
	if err := m.check(addr, 4); err != nil {
		return 0, err
	}
	b := m.data[addr:]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// WriteWord stores a 32-bit little-endian word (scalar store).
func (m *Main) WriteWord(addr int, v uint32) error {
	if err := m.check(addr, 4); err != nil {
		return err
	}
	m.markDirty(addr, 4)
	m.data[addr] = byte(v)
	m.data[addr+1] = byte(v >> 8)
	m.data[addr+2] = byte(v >> 16)
	m.data[addr+3] = byte(v >> 24)
	return nil
}

// ReadNums reads count fixed-point elements at byte address addr.
func (m *Main) ReadNums(addr, count int) ([]fixed.Num, error) {
	n := fixed.Bytes(count)
	if err := m.check(addr, n); err != nil {
		return nil, err
	}
	return fixed.FromBytes(m.data[addr:addr+n], count), nil
}

// ReadNumsInto reads len(dst) elements at byte address addr into dst
// without allocating.
func (m *Main) ReadNumsInto(addr int, dst []fixed.Num) error {
	n := fixed.Bytes(len(dst))
	if err := m.check(addr, n); err != nil {
		return err
	}
	fixed.FromBytesInto(m.data[addr:addr+n], dst)
	return nil
}

// WriteNums stores fixed-point elements at byte address addr.
func (m *Main) WriteNums(addr int, ns []fixed.Num) error {
	n := fixed.Bytes(len(ns))
	if err := m.check(addr, n); err != nil {
		return err
	}
	m.markDirty(addr, n)
	fixed.ToBytes(ns, m.data[addr:addr+n])
	return nil
}

// DMA models one scratchpad DMA engine: a fixed startup latency plus a
// bandwidth-limited streaming phase. The prototype's vector/matrix units
// each integrate three operand DMAs and the scratchpads an IO DMA
// (Section IV); all share this timing shape.
type DMA struct {
	// StartupCycles is the fixed request latency before data streams.
	StartupCycles int
	// BytesPerCycle is the streaming bandwidth.
	BytesPerCycle int
}

// TransferCycles returns the cycle cost of moving n bytes.
func (d DMA) TransferCycles(n int) int {
	if n <= 0 {
		return 0
	}
	bpc := d.BytesPerCycle
	if bpc <= 0 {
		bpc = 1
	}
	return d.StartupCycles + (n+bpc-1)/bpc
}
