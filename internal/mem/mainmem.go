package mem

import (
	"fmt"

	"cambricon/internal/fixed"
)

// Main is the off-chip main memory. The prototype accesses it only through
// load/store instructions (Cambricon is a load-store architecture,
// Section II-B). Addresses are byte addresses; scalar accesses are 32-bit,
// vector/matrix accesses move 16-bit fixed-point element blocks via DMA.
type Main struct {
	data []byte
}

// NewMain allocates a main memory of size bytes. The size comes from
// user-supplied configuration, so a bad value is returned as an error
// rather than panicking.
func NewMain(size int) (*Main, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mem: invalid main memory size %d", size)
	}
	return &Main{data: make([]byte, size)}, nil
}

// Size returns the capacity in bytes.
func (m *Main) Size() int { return len(m.data) }

func (m *Main) check(addr, n int) error {
	if n < 0 {
		return fmt.Errorf("mem: main: negative access size %d", n)
	}
	if addr < 0 || addr+n > len(m.data) {
		return fmt.Errorf("mem: main: access [%d, %d) outside capacity %d", addr, addr+n, len(m.data))
	}
	return nil
}

// ReadBytes copies n bytes at addr.
func (m *Main) ReadBytes(addr, n int) ([]byte, error) {
	if err := m.check(addr, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, m.data[addr:addr+n])
	return out, nil
}

// ReadBytesInto copies len(dst) bytes at addr into dst without allocating.
func (m *Main) ReadBytesInto(addr int, dst []byte) error {
	if err := m.check(addr, len(dst)); err != nil {
		return err
	}
	copy(dst, m.data[addr:addr+len(dst)])
	return nil
}

// WriteBytes stores b at addr.
func (m *Main) WriteBytes(addr int, b []byte) error {
	if err := m.check(addr, len(b)); err != nil {
		return err
	}
	copy(m.data[addr:], b)
	return nil
}

// ReadWord reads a 32-bit little-endian word (scalar load).
func (m *Main) ReadWord(addr int) (uint32, error) {
	if err := m.check(addr, 4); err != nil {
		return 0, err
	}
	b := m.data[addr:]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// WriteWord stores a 32-bit little-endian word (scalar store).
func (m *Main) WriteWord(addr int, v uint32) error {
	if err := m.check(addr, 4); err != nil {
		return err
	}
	m.data[addr] = byte(v)
	m.data[addr+1] = byte(v >> 8)
	m.data[addr+2] = byte(v >> 16)
	m.data[addr+3] = byte(v >> 24)
	return nil
}

// ReadNums reads count fixed-point elements at byte address addr.
func (m *Main) ReadNums(addr, count int) ([]fixed.Num, error) {
	n := fixed.Bytes(count)
	if err := m.check(addr, n); err != nil {
		return nil, err
	}
	return fixed.FromBytes(m.data[addr:addr+n], count), nil
}

// WriteNums stores fixed-point elements at byte address addr.
func (m *Main) WriteNums(addr int, ns []fixed.Num) error {
	n := fixed.Bytes(len(ns))
	if err := m.check(addr, n); err != nil {
		return err
	}
	fixed.ToBytes(ns, m.data[addr:addr+n])
	return nil
}

// DMA models one scratchpad DMA engine: a fixed startup latency plus a
// bandwidth-limited streaming phase. The prototype's vector/matrix units
// each integrate three operand DMAs and the scratchpads an IO DMA
// (Section IV); all share this timing shape.
type DMA struct {
	// StartupCycles is the fixed request latency before data streams.
	StartupCycles int
	// BytesPerCycle is the streaming bandwidth.
	BytesPerCycle int
}

// TransferCycles returns the cycle cost of moving n bytes.
func (d DMA) TransferCycles(n int) int {
	if n <= 0 {
		return 0
	}
	bpc := d.BytesPerCycle
	if bpc <= 0 {
		bpc = 1
	}
	return d.StartupCycles + (n+bpc-1)/bpc
}
