package mem

import (
	"testing"
	"testing/quick"

	"cambricon/internal/fixed"
)

func TestScratchpadReadWriteRoundTrip(t *testing.T) {
	s := newPad(t, "vector", 1024, 4, 64)
	ns := fixed.FromFloats([]float64{1, -2, 3.5, 0})
	if err := s.WriteNums(100, ns); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadNums(100, len(ns))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ns {
		if got[i] != ns[i] {
			t.Errorf("element %d: got %v want %v", i, got[i], ns[i])
		}
	}
}

func TestScratchpadBoundsChecks(t *testing.T) {
	s := newPad(t, "vector", 128, 4, 64)
	if _, err := s.ReadBytes(120, 16); err == nil {
		t.Error("read past end must fail")
	}
	if _, err := s.ReadBytes(-1, 4); err == nil {
		t.Error("negative address must fail")
	}
	if _, err := s.ReadBytes(0, -4); err == nil {
		t.Error("negative size must fail")
	}
	if err := s.WriteBytes(126, []byte{1, 2, 3}); err == nil {
		t.Error("write past end must fail")
	}
	if err := s.WriteNums(127, []fixed.Num{1}); err == nil {
		t.Error("element write past end must fail")
	}
}

func TestScratchpadGeometryValidation(t *testing.T) {
	cases := []struct {
		name              string
		size, banks, line int
	}{
		{"zero size", 0, 4, 64},
		{"non-power-of-two banks", 128, 3, 64},
		{"zero line", 128, 4, 0},
		{"negative size", -1, 4, 64},
	}
	for _, c := range cases {
		if _, err := NewScratchpad("x", c.size, c.banks, c.line); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestScratchpadFlipBit(t *testing.T) {
	s := newPad(t, "vector", 128, 4, 64)
	if err := s.WriteBytes(10, []byte{0x00}); err != nil {
		t.Fatal(err)
	}
	if !s.FlipBit(10, 3) {
		t.Fatal("in-range flip reported out of range")
	}
	b, err := s.ReadBytes(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 1<<3 {
		t.Fatalf("byte after flip: %#x", b[0])
	}
	// Flipping again restores the original value.
	s.FlipBit(10, 3)
	b, _ = s.ReadBytes(10, 1)
	if b[0] != 0 {
		t.Fatalf("double flip not identity: %#x", b[0])
	}
	// Bit indices reduce mod 8; out-of-range addresses are rejected.
	if !s.FlipBit(10, 11) {
		t.Fatal("bit 11 should reduce to bit 3")
	}
	b, _ = s.ReadBytes(10, 1)
	if b[0] != 1<<3 {
		t.Fatalf("bit reduced flip: %#x", b[0])
	}
	if s.FlipBit(-1, 0) || s.FlipBit(128, 0) {
		t.Fatal("out-of-range flip must report false")
	}
}

func TestAccessCyclesNoConflict(t *testing.T) {
	// 4 banks, 64-byte lines: lines 0,1,2,3 map to distinct banks.
	s := newPad(t, "vector", 4096, 4, 64)
	regions := []Region{
		{Addr: 0, N: 64},   // bank 0
		{Addr: 64, N: 64},  // bank 1
		{Addr: 128, N: 64}, // bank 2
		{Addr: 192, N: 64}, // bank 3
	}
	if got := s.AccessCycles(regions); got != 1 {
		t.Errorf("disjoint banks should take 1 cycle, got %d", got)
	}
}

func TestAccessCyclesConflict(t *testing.T) {
	s := newPad(t, "vector", 4096, 4, 64)
	// All four accesses hit bank 0 (line stride of 4 lines = 256 bytes).
	regions := []Region{
		{Addr: 0, N: 64},
		{Addr: 256, N: 64},
		{Addr: 512, N: 64},
		{Addr: 768, N: 64},
	}
	if got := s.AccessCycles(regions); got != 4 {
		t.Errorf("same-bank accesses should serialize to 4 cycles, got %d", got)
	}
}

func TestAccessCyclesStreaming(t *testing.T) {
	s := newPad(t, "vector", 4096, 4, 64)
	// One access covering 8 lines: 2 lines per bank, so the busiest bank
	// count (2) is below the streaming length (8 lines).
	if got := s.AccessCycles([]Region{{Addr: 0, N: 512}}); got != 8 {
		t.Errorf("streaming 8 lines should take 8 cycles, got %d", got)
	}
	// Zero-length regions are free.
	if got := s.AccessCycles([]Region{{Addr: 0, N: 0}}); got != 0 {
		t.Errorf("empty access should take 0 cycles, got %d", got)
	}
}

func TestAccessCyclesPartialLineCountsOnce(t *testing.T) {
	s := newPad(t, "vector", 4096, 4, 64)
	// Two sub-line accesses to the same line conflict on one bank.
	regions := []Region{{Addr: 0, N: 8}, {Addr: 16, N: 8}}
	if got := s.AccessCycles(regions); got != 2 {
		t.Errorf("same-line accesses serialize: got %d, want 2", got)
	}
}

func TestRegionOverlaps(t *testing.T) {
	cases := []struct {
		a, b Region
		want bool
	}{
		{Region{0, 10}, Region{5, 10}, true},
		{Region{0, 10}, Region{10, 10}, false},
		{Region{10, 10}, Region{0, 10}, false},
		{Region{0, 10}, Region{0, 0}, false},
		{Region{5, 1}, Region{5, 1}, true},
		{Region{0, 100}, Region{50, 1}, true},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("overlap must be symmetric: %v vs %v", c.a, c.b)
		}
	}
}

func TestMainMemoryWords(t *testing.T) {
	m := newMainMem(t, 64)
	if err := m.WriteWord(12, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadWord(12)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xdeadbeef {
		t.Errorf("word round trip: got %#x", got)
	}
	if _, err := m.ReadWord(62); err == nil {
		t.Error("word read past end must fail")
	}
	if err := m.WriteWord(-1, 0); err == nil {
		t.Error("negative word write must fail")
	}
}

func TestMainMemoryNums(t *testing.T) {
	m := newMainMem(t, 1024)
	ns := fixed.FromFloats([]float64{0.5, -0.5, 100})
	if err := m.WriteNums(10, ns); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadNums(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ns {
		if got[i] != ns[i] {
			t.Errorf("element %d mismatch", i)
		}
	}
}

func TestDMATransferCycles(t *testing.T) {
	d := DMA{StartupCycles: 10, BytesPerCycle: 32}
	if got := d.TransferCycles(0); got != 0 {
		t.Errorf("zero transfer should be free, got %d", got)
	}
	if got := d.TransferCycles(1); got != 11 {
		t.Errorf("1 byte = startup + 1, got %d", got)
	}
	if got := d.TransferCycles(64); got != 12 {
		t.Errorf("64 bytes = startup + 2, got %d", got)
	}
	if got := d.TransferCycles(65); got != 13 {
		t.Errorf("65 bytes rounds up, got %d", got)
	}
	// Degenerate bandwidth defaults to 1 byte/cycle rather than dividing
	// by zero.
	bad := DMA{StartupCycles: 0, BytesPerCycle: 0}
	if got := bad.TransferCycles(8); got != 8 {
		t.Errorf("zero bandwidth fallback: got %d", got)
	}
}

// Property: writes then reads at arbitrary in-range offsets round-trip.
func TestQuickScratchpadRoundTrip(t *testing.T) {
	s := newPad(t, "vector", 4096, 4, 64)
	f := func(addr uint16, vals []int16) bool {
		a := int(addr) % 2048
		ns := make([]fixed.Num, len(vals))
		for i, v := range vals {
			ns[i] = fixed.Num(v)
		}
		if fixed.Bytes(len(ns)) > s.Size()-a {
			return true // out of range by construction; skip
		}
		if err := s.WriteNums(a, ns); err != nil {
			return false
		}
		got, err := s.ReadNums(a, len(ns))
		if err != nil {
			return false
		}
		for i := range ns {
			if got[i] != ns[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccessors(t *testing.T) {
	s := newPad(t, "vector", 1024, 4, 64)
	if s.Name() != "vector" || s.Size() != 1024 || s.Banks() != 4 {
		t.Error("accessors wrong")
	}
	m := newMainMem(t, 256)
	if m.Size() != 256 {
		t.Error("main size wrong")
	}
	b, err := m.ReadBytes(0, 8)
	if err != nil || len(b) != 8 {
		t.Error("main ReadBytes")
	}
	if err := m.WriteBytes(4, []byte{1, 2}); err != nil {
		t.Error(err)
	}
	if _, err := m.ReadBytes(250, 16); err == nil {
		t.Error("out-of-range read must fail")
	}
	if err := m.WriteBytes(-1, []byte{1}); err == nil {
		t.Error("negative write must fail")
	}
}

func TestNewMainRejectsBadSize(t *testing.T) {
	if _, err := NewMain(0); err == nil {
		t.Error("zero size: want error")
	}
	if _, err := NewMain(-4); err == nil {
		t.Error("negative size: want error")
	}
}
