package mem

import "testing"

func TestConflictHookFires(t *testing.T) {
	// 2 banks of 64-byte lines: addresses 0 and 128 both map to bank 0.
	s := newPad(t, "spad", 1024, 2, 64)
	var gotBank, gotExtra, calls int
	s.SetConflictHook(func(bank, extra int) {
		gotBank, gotExtra = bank, extra
		calls++
	})
	cycles := s.AccessCycles([]Region{{Addr: 0, N: 64}, {Addr: 128, N: 64}})
	if cycles != 2 {
		t.Errorf("conflicting accesses took %d cycles, want 2", cycles)
	}
	if calls != 1 || gotBank != 0 || gotExtra != 1 {
		t.Errorf("hook saw calls=%d bank=%d extra=%d, want 1/0/1", calls, gotBank, gotExtra)
	}
}

func TestConflictHookSilentWithoutConflict(t *testing.T) {
	s := newPad(t, "spad", 1024, 2, 64)
	calls := 0
	s.SetConflictHook(func(bank, extra int) { calls++ })
	// Different banks: parallel, one cycle, no conflict.
	if cycles := s.AccessCycles([]Region{{Addr: 0, N: 64}, {Addr: 64, N: 64}}); cycles != 1 {
		t.Errorf("parallel accesses took %d cycles, want 1", cycles)
	}
	// One long streaming access self-serializes but is not a crossbar
	// conflict: the longest-access floor already accounts for it.
	if cycles := s.AccessCycles([]Region{{Addr: 0, N: 256}}); cycles != 4 {
		t.Errorf("streaming access took %d cycles, want 4", cycles)
	}
	if calls != 0 {
		t.Errorf("hook fired %d times on conflict-free accesses", calls)
	}
}

func TestConflictHookNilSafe(t *testing.T) {
	s := newPad(t, "spad", 1024, 2, 64)
	s.SetConflictHook(func(bank, extra int) {})
	s.SetConflictHook(nil)
	if cycles := s.AccessCycles([]Region{{Addr: 0, N: 64}, {Addr: 128, N: 64}}); cycles != 2 {
		t.Errorf("cycles = %d after clearing hook, want 2", cycles)
	}
}

// TestConflictHookTimingNeutral pins that attaching a hook never
// changes the modelled cycle counts.
func TestConflictHookTimingNeutral(t *testing.T) {
	mk := func() *Scratchpad { return newPad(t, "spad", 4096, 4, 64) }
	cases := [][]Region{
		{{Addr: 0, N: 64}, {Addr: 256, N: 64}},
		{{Addr: 0, N: 512}, {Addr: 512, N: 512}},
		{{Addr: 0, N: 64}, {Addr: 64, N: 64}, {Addr: 128, N: 64}},
		{{Addr: 0, N: 0}, {Addr: 5, N: 3}},
	}
	plain, hooked := mk(), mk()
	hooked.SetConflictHook(func(bank, extra int) {})
	for i, regions := range cases {
		if a, b := plain.AccessCycles(regions), hooked.AccessCycles(regions); a != b {
			t.Errorf("case %d: hooked scratchpad modelled %d cycles, unhooked %d", i, b, a)
		}
	}
}
