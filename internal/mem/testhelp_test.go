package mem

import "testing"

// newPad builds a scratchpad with known-good geometry, failing the test
// otherwise.
func newPad(tb testing.TB, name string, size, banks, lineBytes int) *Scratchpad {
	tb.Helper()
	s, err := NewScratchpad(name, size, banks, lineBytes)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// newMainMem builds a main memory with a known-good size, failing the
// test otherwise.
func newMainMem(tb testing.TB, size int) *Main {
	tb.Helper()
	m, err := NewMain(size)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}
