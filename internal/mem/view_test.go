package mem

import (
	"testing"

	"cambricon/internal/fixed"
)

func viewPad(t testing.TB) *Scratchpad {
	t.Helper()
	return newPad(t, "test", 1024, 4, 64)
}

func TestNumsViewReadsStoredValues(t *testing.T) {
	s := viewPad(t)
	want := []fixed.Num{1, -2, 300, fixed.Max, fixed.Min, 0, 7, -7}
	if err := s.WriteNums(16, want); err != nil {
		t.Fatal(err)
	}
	var spill []fixed.Num
	got, err := s.NumsView(16, len(want), &spill)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("view[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestNumsViewBounds(t *testing.T) {
	s := viewPad(t)
	var spill []fixed.Num
	cases := []struct{ addr, count int }{
		{-2, 4},      // negative address
		{1020, 4},    // tail past capacity
		{1024, 1},    // start at capacity
		{0, -1},      // negative count
		{0, 1 << 20}, // count overflows capacity
		{1 << 30, 1}, // address far outside
	}
	for _, c := range cases {
		if _, err := s.NumsView(c.addr, c.count, &spill); err == nil {
			t.Errorf("NumsView(%d, %d) accepted", c.addr, c.count)
		}
	}
	// Zero-length views of any in-range address are fine.
	if _, err := s.NumsView(0, 0, &spill); err != nil {
		t.Errorf("empty view rejected: %v", err)
	}
}

// TestNumsViewAliasesSubsequentWrites pins the documented aliasing
// contract: a view is a window onto live storage, so a write performed
// after taking the view must be visible through it (on hosts where the
// view is zero-copy). Holding a view across one's own writes is therefore
// rejected by convention — the simulator always finishes reads first —
// and this test is what makes that contract observable.
func TestNumsViewAliasesSubsequentWrites(t *testing.T) {
	raw := []byte{0, 0}
	if _, zeroCopy := fixed.ViewBytes(raw, 1); !zeroCopy {
		t.Skip("host layout does not alias views; spill copies are snapshots")
	}
	s := viewPad(t)
	if err := s.WriteNums(0, []fixed.Num{11, 22}); err != nil {
		t.Fatal(err)
	}
	var spill []fixed.Num
	view, err := s.NumsView(0, 2, &spill)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteNums(0, []fixed.Num{33, 44}); err != nil {
		t.Fatal(err)
	}
	if view[0] != 33 || view[1] != 44 {
		t.Errorf("view = %v after overwrite, want [33 44] (stale copy returned instead of a view)", view)
	}
}

// TestNumsViewMisalignedFallsBackToSpill forces the decode fallback with an
// odd base address; values must still read back correctly and the spill
// buffer must be reused, not reallocated.
func TestNumsViewMisalignedFallsBackToSpill(t *testing.T) {
	s := viewPad(t)
	payload := []fixed.Num{5, -6, 7}
	var enc [6]byte
	fixed.ToBytes(payload, enc[:])
	if err := s.WriteBytes(17, enc[:]); err != nil { // odd address
		t.Fatal(err)
	}
	var spill []fixed.Num
	got, err := s.NumsView(17, 3, &spill)
	if err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Errorf("misaligned view[%d] = %d, want %d", i, got[i], payload[i])
		}
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if _, err := s.NumsView(17, 3, &spill); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("warm spill fallback allocates %v per call, want 0", allocs)
	}
}

func TestViewBytesContract(t *testing.T) {
	if _, ok := fixed.ViewBytes(nil, 0); !ok {
		t.Error("empty view should always succeed")
	}
	if _, ok := fixed.ViewBytes([]byte{1}, 1); ok {
		t.Error("short source accepted")
	}
	if _, ok := fixed.ViewBytes([]byte{1, 2}, -1); ok {
		t.Error("negative count accepted")
	}
}

// TestAccessCyclesManyRegions exercises conflict accounting past the
// four-region fast path the instruction set produces, covering wide
// fan-in shapes (>4 concurrent port accesses).
func TestAccessCyclesManyRegions(t *testing.T) {
	s := viewPad(t) // 4 banks, 64-byte lines
	line := 64
	cases := []struct {
		name    string
		regions []Region
		want    int
	}{
		{"six ports, six distinct banks impossible: 4 banks, worst pair shares", []Region{
			{Addr: 0 * line, N: 8}, {Addr: 1 * line, N: 8}, {Addr: 2 * line, N: 8},
			{Addr: 3 * line, N: 8}, {Addr: 4 * line, N: 8}, {Addr: 5 * line, N: 8},
		}, 2}, // banks 0..3 then 0,1 again: busiest bank serves 2 lines
		{"eight ports all on one bank", []Region{
			{Addr: 0, N: 4}, {Addr: 4 * line, N: 4}, {Addr: 8 * line, N: 4},
			{Addr: 12 * line, N: 4}, {Addr: 0, N: 4}, {Addr: 4 * line, N: 4},
			{Addr: 8 * line, N: 4}, {Addr: 12 * line, N: 4},
		}, 8}, // every region maps to bank 0
		{"five ports, one long stream dominates", []Region{
			{Addr: 0, N: 8 * 64}, // 8 lines across 4 banks: 2 per bank
			{Addr: 1 * line, N: 4}, {Addr: 2 * line, N: 4}, {Addr: 3 * line, N: 4},
			{Addr: 0, N: 0}, // empty regions are ignored
		}, 8}, // the 8-line stream serializes within its own access and exceeds any bank's fan-in (3)
	}
	for _, c := range cases {
		if got := s.AccessCycles(c.regions); got != c.want {
			t.Errorf("%s: AccessCycles = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestAccessCyclesAllocationFree(t *testing.T) {
	s := viewPad(t)
	regions := []Region{
		{Addr: 0, N: 128}, {Addr: 256, N: 128}, {Addr: 512, N: 64},
		{Addr: 64, N: 32}, {Addr: 320, N: 32}, {Addr: 700, N: 16},
	}
	if allocs := testing.AllocsPerRun(50, func() {
		s.AccessCycles(regions)
	}); allocs > 0 {
		t.Errorf("AccessCycles allocates %v per call, want 0", allocs)
	}
}

func BenchmarkAccessCycles(b *testing.B) {
	s := viewPad(b)
	regions := []Region{
		{Addr: 0, N: 512}, {Addr: 128, N: 512}, {Addr: 512, N: 512},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AccessCycles(regions)
	}
}

func BenchmarkNumsView(b *testing.B) {
	s := newPad(b, "bench", 1<<20, 4, 64)
	const count = 256 * 256
	var spill []fixed.Num
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.NumsView(0, count, &spill); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadNumsInto is the copying baseline NumsView replaces on the
// simulator's matrix path.
func BenchmarkReadNumsInto(b *testing.B) {
	s := newPad(b, "bench", 1<<20, 4, 64)
	const count = 256 * 256
	dst := make([]fixed.Num, count)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.ReadNumsInto(0, dst); err != nil {
			b.Fatal(err)
		}
	}
}
