package mem

// Tests for the convergence-check accessors: Scratchpad.DiffWords and
// Main's AppendDirtyPages/PageEquals.

import (
	"reflect"
	"testing"
)

func TestScratchpadDiffWords(t *testing.T) {
	// Size 30 is deliberately not a multiple of the 8-byte scan chunk, so
	// the tail path is exercised too.
	s, err := NewScratchpad("t", 30, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	img := s.Image()
	if words, ok := s.DiffWords(img, 4); !ok || words != nil {
		t.Fatalf("equal pad: got %v, %v; want nil, true", words, ok)
	}
	if _, ok := s.DiffWords(img[:10], 4); ok {
		t.Fatal("length mismatch accepted")
	}
	// The 8-byte chunk scan covers bytes [0, 24), the byte tail covers
	// [24, 30). Flip both bytes of some words to check de-duplication.
	s.FlipBit(2, 3)  // word 1
	s.FlipBit(3, 0)  // word 1 again — must not duplicate
	s.FlipBit(21, 5) // word 10 (chunk path)
	s.FlipBit(28, 1) // word 14 (tail path)
	s.FlipBit(29, 6) // word 14 again — must not duplicate
	words, ok := s.DiffWords(img, 4)
	if !ok {
		t.Fatal("diff within max reported failure")
	}
	if want := []int{1, 10, 14}; !reflect.DeepEqual(words, want) {
		t.Fatalf("DiffWords = %v, want %v", words, want)
	}
	if _, ok := s.DiffWords(img, 2); ok {
		t.Fatal("diff beyond max not refused")
	}
}

func TestMainDirtyPagesAndPageEquals(t *testing.T) {
	m, err := NewMain(4 * PageBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.AppendDirtyPages(nil); ok {
		t.Fatal("untracked memory reported a dirty set")
	}
	if err := m.WriteBytes(PageBytes+5, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	img := m.SparseImage()
	m.BeginDirtyTracking()
	if pages, ok := m.AppendDirtyPages(nil); !ok || len(pages) != 0 {
		t.Fatalf("fresh tracking: got %v, %v; want empty, true", pages, ok)
	}
	for p := 0; p < 4; p++ {
		if !m.PageEquals(img, p) {
			t.Fatalf("page %d unequal to its own image", p)
		}
	}
	// Dirty two pages, one of them with a content change.
	if err := m.WriteBytes(0, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteBytes(3*PageBytes, []byte{0}); err != nil { // same value: dirty but equal
		t.Fatal(err)
	}
	pages, ok := m.AppendDirtyPages(nil)
	if !ok || !reflect.DeepEqual(pages, []int{0, 3}) {
		t.Fatalf("dirty pages = %v, %v; want [0 3], true", pages, ok)
	}
	if m.PageEquals(img, 0) {
		t.Fatal("changed page compared equal")
	}
	if !m.PageEquals(img, 1) || !m.PageEquals(img, 3) {
		t.Fatal("unchanged pages compared unequal")
	}
	if m.PageEquals(img, -1) || m.PageEquals(img, 4) {
		t.Fatal("out-of-range page compared equal")
	}
	if m.PageEquals(nil, 0) {
		t.Fatal("nil image compared equal")
	}
}
