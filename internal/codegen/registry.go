package codegen

import "fmt"

// Generator builds one benchmark program from a seed.
type Generator func(seed uint64) (*Program, error)

// Generators maps Table III benchmark names to their generators, in the
// paper's order (matching internal/workload.Names).
func Generators() []struct {
	Name string
	Gen  Generator
} {
	return []struct {
		Name string
		Gen  Generator
	}{
		{"MLP", GenMLP},
		{"CNN", GenCNN},
		{"RNN", GenRNN},
		{"LSTM", GenLSTM},
		{"Autoencoder", func(s uint64) (*Program, error) { return GenAutoencoder(false, s) }},
		{"Sparse Autoencoder", func(s uint64) (*Program, error) { return GenAutoencoder(true, s) }},
		{"BM", GenBM},
		{"RBM", GenRBM},
		{"SOM", GenSOM},
		{"HNN", GenHNN},
	}
}

// All generates the ten Table III benchmarks with the given seed.
func All(seed uint64) ([]*Program, error) {
	gens := Generators()
	out := make([]*Program, 0, len(gens))
	for _, g := range gens {
		p, err := g.Gen(seed)
		if err != nil {
			return nil, fmt.Errorf("codegen: %s: %w", g.Name, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// ByName generates one named benchmark.
func ByName(name string, seed uint64) (*Program, error) {
	for _, g := range Generators() {
		if g.Name == name {
			return g.Gen(seed)
		}
	}
	if name == "Logistic" {
		return GenLogistic(seed)
	}
	if name == "Logistic-Training" {
		return GenLogisticTraining(seed)
	}
	if name == "RBM-CD" {
		return GenRBMCD(seed)
	}
	return nil, fmt.Errorf("codegen: unknown benchmark %q", name)
}
