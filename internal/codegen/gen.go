// Package codegen lowers the ten Table III benchmark networks (plus the
// Section VI logistic-regression extension) to runnable Cambricon assembly.
//
// The paper translated each benchmark "manually into assemblers"; this
// package automates the same lowering so the programs are reproducible,
// inspectable (generators emit commented assembly text through
// internal/asm's Builder) and testable: every generated program carries its
// main-memory image and the reference outputs (from internal/nn) it must
// reproduce on the internal/sim accelerator within fixed-point tolerance.
//
// The static lengths of these programs are the Cambricon side of the
// Fig. 10 code-density comparison, and their instruction-type mixes are the
// Fig. 11 measurement.
package codegen

import (
	"context"
	"fmt"
	"math"

	"cambricon/internal/asm"
	"cambricon/internal/core"
	"cambricon/internal/fixed"
	"cambricon/internal/sim"
)

// Chunk is data placed in main memory before a run.
type Chunk struct {
	Addr int
	Data []fixed.Num
}

// Result is one expected output region in main memory after a run.
type Result struct {
	// Name labels the comparison in error messages.
	Name string
	// Addr and N locate the output in main memory (N elements).
	Addr, N int
	// Want is the reference expectation (from internal/nn, computed over
	// fixed-point-quantized parameters).
	Want []float64
	// Tol is the maximum absolute element error. Zero means exact.
	Tol float64
}

// Program is one generated benchmark.
type Program struct {
	// Name is the Table III benchmark name.
	Name string
	// Source is the generated assembly listing.
	Source string
	// Asm is the assembled program.
	Asm *asm.Program
	// Chunks is the main-memory image.
	Chunks []Chunk
	// Results are the post-run expectations.
	Results []Result
	// Checks are additional custom validations run after Results.
	Checks []func(m *sim.Machine) error
}

// Len returns the static code length (the Fig. 10 metric).
func (p *Program) Len() int { return p.Asm.Len() }

// TypeMix returns static instruction counts per Fig. 11 category.
func (p *Program) TypeMix() map[core.Type]int { return p.Asm.TypeMix() }

// Init writes the program's data image into the machine's main memory.
func (p *Program) Init(m *sim.Machine) error {
	for _, c := range p.Chunks {
		if err := m.WriteMainNums(c.Addr, c.Data); err != nil {
			return fmt.Errorf("codegen: %s: image chunk at %d: %w", p.Name, c.Addr, err)
		}
	}
	return nil
}

// Verify compares machine state against the program's expectations.
func (p *Program) Verify(m *sim.Machine) error {
	for _, r := range p.Results {
		got, err := m.ReadMainNums(r.Addr, r.N)
		if err != nil {
			return fmt.Errorf("codegen: %s: result %q: %w", p.Name, r.Name, err)
		}
		if len(r.Want) != r.N {
			return fmt.Errorf("codegen: %s: result %q: want length %d != N %d",
				p.Name, r.Name, len(r.Want), r.N)
		}
		for i, g := range fixed.Floats(got) {
			if d := math.Abs(g - r.Want[i]); d > r.Tol {
				return fmt.Errorf("codegen: %s: result %q[%d] = %v, want %v (|err| %.4f > tol %.4f)",
					p.Name, r.Name, i, g, r.Want[i], d, r.Tol)
			}
		}
	}
	for i, check := range p.Checks {
		if err := check(m); err != nil {
			return fmt.Errorf("codegen: %s: check %d: %w", p.Name, i, err)
		}
	}
	return nil
}

// Execute initializes a machine, runs the program and verifies the outputs,
// returning the run statistics.
func (p *Program) Execute(m *sim.Machine) (sim.Stats, error) {
	return p.ExecuteContext(context.Background(), m)
}

// ExecuteContext is Execute with cancellation: the simulation stops at
// its next poll point once ctx is done, returning ctx.Err() wrapped
// with the benchmark name and the partial statistics.
func (p *Program) ExecuteContext(ctx context.Context, m *sim.Machine) (sim.Stats, error) {
	if err := p.Init(m); err != nil {
		return sim.Stats{}, err
	}
	m.LoadProgram(p.Asm.Instructions)
	stats, err := m.RunContext(ctx)
	if err != nil {
		return stats, fmt.Errorf("codegen: %s: %w", p.Name, err)
	}
	if err := p.Verify(m); err != nil {
		return stats, err
	}
	return stats, nil
}

// ExecutePreparedContext runs and verifies the program on a machine that
// already holds its memory image and instruction stream — typically one
// just restored from a sim.Snapshot captured after Init+LoadProgram. It
// is ExecuteContext minus the image replay, and produces identical
// statistics and errors.
func (p *Program) ExecutePreparedContext(ctx context.Context, m *sim.Machine) (sim.Stats, error) {
	stats, err := m.RunContext(ctx)
	if err != nil {
		return stats, fmt.Errorf("codegen: %s: %w", p.Name, err)
	}
	if err := p.Verify(m); err != nil {
		return stats, err
	}
	return stats, nil
}

// finish assembles the builder output into a Program.
func finish(name string, b *asm.Builder, g *gen) (*Program, error) {
	src := b.Source()
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("codegen: %s: %w\n%s", name, err, src)
	}
	return &Program{
		Name:    name,
		Source:  src,
		Asm:     prog,
		Chunks:  g.chunks,
		Results: g.results,
		Checks:  g.checks,
	}, nil
}

// alloc is a bump allocator over one address space.
type alloc struct {
	name      string
	next, cap int
}

// take reserves n bytes 64-byte aligned (one scratchpad bank line), keeping
// operand streams on distinct lines.
func (a *alloc) take(n int) int {
	const align = 64
	a.next = (a.next + align - 1) &^ (align - 1)
	addr := a.next
	a.next += n
	if a.cap > 0 && a.next > a.cap {
		panic(fmt.Sprintf("codegen: %s allocator overflow: %d > %d", a.name, a.next, a.cap))
	}
	return addr
}

// takeElems reserves n fixed-point elements.
func (a *alloc) takeElems(n int) int { return a.take(fixed.Bytes(n)) }

// gen carries shared generator state: allocators, the data image and the
// expectations being accumulated.
type gen struct {
	mainA   alloc
	vspadA  alloc
	mspadA  alloc
	chunks  []Chunk
	results []Result
	checks  []func(m *sim.Machine) error
}

func newGen() *gen {
	return &gen{
		mainA:  alloc{name: "main", next: 4096, cap: 16 << 20},
		vspadA: alloc{name: "vspad", cap: core.VectorSpadBytes},
		mspadA: alloc{name: "mspad", cap: core.MatrixSpadBytes},
	}
}

// data places values in main memory and returns their address.
func (g *gen) data(vals []float64) int {
	ns := fixed.FromFloats(vals)
	addr := g.mainA.takeElems(len(ns))
	g.chunks = append(g.chunks, Chunk{Addr: addr, Data: ns})
	return addr
}

// out reserves a main-memory output region and registers its expectation.
func (g *gen) out(name string, n int, want []float64, tol float64) int {
	addr := g.mainA.takeElems(n)
	g.results = append(g.results, Result{Name: name, Addr: addr, N: n, Want: want, Tol: tol})
	return addr
}

// outAddr reserves an unchecked main-memory region (inspected by custom
// checks instead).
func (g *gen) outAddr(n int) int { return g.mainA.takeElems(n) }

// fix converts a float constant to its fixed-point immediate encoding.
func fix(v float64) int32 { return int32(fixed.FromFloat(v)) }

// loadImm emits SMOVE reg, #v.
func loadImm(b *asm.Builder, r uint8, v int32) {
	b.Op(core.SMOVE, asm.R(r), asm.Imm(v))
}

// sigmoidRegs is the register set the sigmoid helper needs.
type sigmoidRegs struct {
	size uint8 // element count
	tmp  uint8 // scratch vspad address (size elements)
}

// emitSigmoid lowers y = sigmoid(x) = e^x / (1 + e^x) into the published
// three-instruction sequence (Section III-B): VEXP, VAS #1.0, VDV. dst and
// src are GPRs holding vspad addresses; dst may equal src.
func emitSigmoid(b *asm.Builder, dst, src uint8, r sigmoidRegs) {
	b.Opc(core.VEXP, "exp(x)", asm.R(r.tmp), asm.R(r.size), asm.R(src))
	b.Opc(core.VAS, "1 + exp(x)", asm.R(dst), asm.R(r.size), asm.R(r.tmp), asm.Imm(fix(1)))
	b.Opc(core.VDV, "exp(x)/(1+exp(x))", asm.R(dst), asm.R(r.size), asm.R(r.tmp), asm.R(dst))
}

// emitConstVec fills the region named by GPR dst with the constant held in
// GPR scalar (Q8.8), by zeroing the region against itself and adding the
// scalar: VSV dst = junk - junk is not safe, so the caller must pass a
// region that it is fine to overwrite; the zeroing uses dst - dst which is
// exact regardless of contents.
func emitConstVec(b *asm.Builder, dst, size, scalar uint8) {
	b.Opc(core.VSV, "zero the region", asm.R(dst), asm.R(size), asm.R(dst), asm.R(dst))
	b.Opc(core.VAS, "fill with scalar", asm.R(dst), asm.R(size), asm.R(dst), asm.R(scalar))
}

// emitConstVecImm is emitConstVec with an immediate constant.
func emitConstVecImm(b *asm.Builder, dst, size uint8, v float64) {
	b.Opc(core.VSV, "zero the region", asm.R(dst), asm.R(size), asm.R(dst), asm.R(dst))
	b.Opc(core.VAS, fmt.Sprintf("fill with %.4g", v), asm.R(dst), asm.R(size), asm.R(dst), asm.Imm(fix(v)))
}
