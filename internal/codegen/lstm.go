package codegen

import (
	"fmt"

	"cambricon/internal/asm"
	"cambricon/internal/core"
	"cambricon/internal/fixed"
	"cambricon/internal/nn"
	"cambricon/internal/workload"
)

// LSTMTolerance bounds the fixed-point drift of the gated cell state over
// workload.SeqLen timesteps (tanh doubles the sigmoid-chain error).
const LSTMTolerance = 0.15

// emitTanh lowers tanh(a) = 2*sigmoid(2a) - 1 using the sigmoid chain:
// the accelerator has no tanh instruction, but the identity needs only VAV
// and VAS around the published VEXP/VAS/VDV sequence. dst may equal src.
func emitTanh(b *asm.Builder, dst, src, size, tmp uint8) {
	b.Opc(core.VAV, "2a", asm.R(dst), asm.R(size), asm.R(src), asm.R(src))
	emitSigmoid(b, dst, dst, sigmoidRegs{size: size, tmp: tmp})
	b.Opc(core.VAV, "2*sigmoid(2a)", asm.R(dst), asm.R(size), asm.R(dst), asm.R(dst))
	b.Opc(core.VAS, "- 1", asm.R(dst), asm.R(size), asm.R(dst), asm.Imm(fix(-1)))
}

// GenLSTM lowers the Table III LSTM benchmark (26-93-61 over SeqLen steps):
// four gate matrix pairs per step, element-wise gate combination (VMV), a
// tanh lowered through the sigmoid identity, and the output projection.
func GenLSTM(seed uint64) (*Program, error) {
	in, hid, out := 26, 93, 61
	net := nn.NewLSTM(in, hid, out, seed).QuantizeParams()
	rng := nn.NewRNG(seed + 1)
	xs := make([]nn.Vec, workload.SeqLen)
	flat := make(nn.Vec, 0, workload.SeqLen*in)
	for t := range xs {
		xs[t] = nn.Quantize(rng.FillVec(in, 0, 1))
		flat = append(flat, xs[t]...)
	}
	ys := net.Forward(xs)
	wantAll := make([]float64, 0, workload.SeqLen*out)
	for _, y := range ys {
		wantAll = append(wantAll, y...)
	}

	g := newGen()
	var b asm.Builder

	xMain := g.data(flat)
	var wxMain, whMain, bMain [4]int
	for gi := 0; gi < 4; gi++ {
		wxMain[gi] = g.data(net.Wx[gi].Data)
		whMain[gi] = g.data(net.Wh[gi].Data)
		bMain[gi] = g.data(net.B[gi])
	}
	whyMain := g.data(net.Why.Data)
	byMain := g.data(net.By)
	yMain := g.out("per-step outputs", workload.SeqLen*out, wantAll, LSTMTolerance)

	var wxM, whM [4]int
	for gi := 0; gi < 4; gi++ {
		wxM[gi] = g.mspadA.takeElems(hid * in)
		whM[gi] = g.mspadA.takeElems(hid * hid)
	}
	whyM := g.mspadA.takeElems(out * hid)

	xV := g.vspadA.takeElems(in)
	hV := g.vspadA.takeElems(hid)
	cV := g.vspadA.takeElems(hid)
	gateV := [4]int{
		g.vspadA.takeElems(hid), g.vspadA.takeElems(hid),
		g.vspadA.takeElems(hid), g.vspadA.takeElems(hid),
	}
	bV := [4]int{
		g.vspadA.takeElems(hid), g.vspadA.takeElems(hid),
		g.vspadA.takeElems(hid), g.vspadA.takeElems(hid),
	}
	t1V := g.vspadA.takeElems(hid)
	t2V := g.vspadA.takeElems(hid)
	tmpV := g.vspadA.takeElems(hid)
	thV := g.vspadA.takeElems(hid)
	byV := g.vspadA.takeElems(out)
	yV := g.vspadA.takeElems(out)

	// Registers: sizes, region pointers and loop state.
	next := uint8(0)
	reg := func() uint8 { r := next; next++; return r }
	rIn, rHid, rOut, rSz := reg(), reg(), reg(), reg()
	rX, rH, rC := reg(), reg(), reg()
	var rGate, rB, rWx, rWh [4]uint8
	for gi := 0; gi < 4; gi++ {
		rGate[gi], rB[gi], rWx[gi], rWh[gi] = reg(), reg(), reg(), reg()
	}
	rWhy, rBy, rY := reg(), reg(), reg()
	rT1, rT2, rTmp, rTh := reg(), reg(), reg(), reg()
	rXCur, rYCur, rSteps := reg(), reg(), reg()

	gateNames := [4]string{"input", "forget", "output", "candidate"}

	b.Comment("LSTM %d-%d-%d over %d timesteps (Table III)", in, hid, out, workload.SeqLen)
	loadImm(&b, rIn, int32(in))
	loadImm(&b, rHid, int32(hid))
	loadImm(&b, rOut, int32(out))
	for gi := 0; gi < 4; gi++ {
		loadImm(&b, rWx[gi], int32(wxM[gi]))
		loadImm(&b, rSz, int32(hid*in))
		b.Opc(core.MLOAD, fmt.Sprintf("load Wx[%s]", gateNames[gi]),
			asm.R(rWx[gi]), asm.R(rSz), asm.Imm(int32(wxMain[gi])))
		loadImm(&b, rWh[gi], int32(whM[gi]))
		loadImm(&b, rSz, int32(hid*hid))
		b.Opc(core.MLOAD, fmt.Sprintf("load Wh[%s]", gateNames[gi]),
			asm.R(rWh[gi]), asm.R(rSz), asm.Imm(int32(whMain[gi])))
		loadImm(&b, rB[gi], int32(bV[gi]))
		b.Opc(core.VLOAD, fmt.Sprintf("load b[%s]", gateNames[gi]),
			asm.R(rB[gi]), asm.R(rHid), asm.Imm(int32(bMain[gi])))
		loadImm(&b, rGate[gi], int32(gateV[gi]))
	}
	loadImm(&b, rWhy, int32(whyM))
	loadImm(&b, rSz, int32(out*hid))
	b.Opc(core.MLOAD, "load Why", asm.R(rWhy), asm.R(rSz), asm.Imm(int32(whyMain)))
	loadImm(&b, rBy, int32(byV))
	b.Opc(core.VLOAD, "load by", asm.R(rBy), asm.R(rOut), asm.Imm(int32(byMain)))

	loadImm(&b, rX, int32(xV))
	loadImm(&b, rH, int32(hV))
	loadImm(&b, rC, int32(cV))
	loadImm(&b, rT1, int32(t1V))
	loadImm(&b, rT2, int32(t2V))
	loadImm(&b, rTmp, int32(tmpV))
	loadImm(&b, rTh, int32(thV))
	loadImm(&b, rY, int32(yV))
	b.Comment("h_0 = c_0 = 0")
	b.Op(core.VSV, asm.R(rH), asm.R(rHid), asm.R(rH), asm.R(rH))
	b.Op(core.VSV, asm.R(rC), asm.R(rHid), asm.R(rC), asm.R(rC))

	loadImm(&b, rXCur, int32(xMain))
	loadImm(&b, rYCur, int32(yMain))
	loadImm(&b, rSteps, workload.SeqLen)

	top := b.NewLabel("step")
	b.Label(top)
	b.Opc(core.VLOAD, "load x_t", asm.R(rX), asm.R(rIn), asm.R(rXCur), asm.Imm(0))
	b.Op(core.SADD, asm.R(rXCur), asm.R(rXCur), asm.Imm(int32(fixed.Bytes(in))))
	for gi := 0; gi < 4; gi++ {
		b.Comment("%s gate", gateNames[gi])
		b.Op(core.MMV, asm.R(rT1), asm.R(rHid), asm.R(rWx[gi]), asm.R(rX), asm.R(rIn))
		b.Op(core.MMV, asm.R(rT2), asm.R(rHid), asm.R(rWh[gi]), asm.R(rH), asm.R(rHid))
		b.Op(core.VAV, asm.R(rT1), asm.R(rHid), asm.R(rT1), asm.R(rT2))
		b.Op(core.VAV, asm.R(rT1), asm.R(rHid), asm.R(rT1), asm.R(rB[gi]))
		if gi == 3 {
			emitTanh(&b, rGate[gi], rT1, rHid, rTmp)
		} else {
			emitSigmoid(&b, rGate[gi], rT1, sigmoidRegs{size: rHid, tmp: rTmp})
		}
	}
	b.Comment("cell update c = f .* c + i .* g")
	b.Op(core.VMV, asm.R(rT1), asm.R(rHid), asm.R(rGate[1]), asm.R(rC))
	b.Op(core.VMV, asm.R(rT2), asm.R(rHid), asm.R(rGate[0]), asm.R(rGate[3]))
	b.Op(core.VAV, asm.R(rC), asm.R(rHid), asm.R(rT1), asm.R(rT2))
	b.Comment("hidden h = o .* tanh(c)")
	emitTanh(&b, rTh, rC, rHid, rTmp)
	b.Op(core.VMV, asm.R(rH), asm.R(rHid), asm.R(rGate[2]), asm.R(rTh))
	b.Comment("output y = sigmoid(Why h + by)")
	b.Op(core.MMV, asm.R(rY), asm.R(rOut), asm.R(rWhy), asm.R(rH), asm.R(rHid))
	b.Op(core.VAV, asm.R(rY), asm.R(rOut), asm.R(rY), asm.R(rBy))
	emitSigmoid(&b, rY, rY, sigmoidRegs{size: rOut, tmp: rTmp})
	b.Opc(core.VSTORE, "store y_t", asm.R(rY), asm.R(rOut), asm.R(rYCur), asm.Imm(0))
	b.Op(core.SADD, asm.R(rYCur), asm.R(rYCur), asm.Imm(int32(fixed.Bytes(out))))
	b.Op(core.SADD, asm.R(rSteps), asm.R(rSteps), asm.Imm(-1))
	b.Op(core.CB, asm.Lbl(top), asm.R(rSteps))

	return finish("LSTM", &b, g)
}
