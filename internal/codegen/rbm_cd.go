package codegen

import (
	"fmt"
	"math"

	"cambricon/internal/asm"
	"cambricon/internal/core"
	"cambricon/internal/fixed"
	"cambricon/internal/nn"
	"cambricon/internal/sim"
)

// GenRBMCD is an extension beyond the Table III benchmark set: one full
// contrastive-divergence training step on the RBM — hidden
// probabilities and sampling, tied-weight reconstruction via VMM, the
// negative phase, and the CD-1 weight update from OP/MMS/MAM/MSM, tiled
// into half-matrices because W plus a full outer product would exceed the
// matrix scratchpad.
func GenRBMCD(seed uint64) (*Program, error) {
	nv, nh := nn.BMBenchmark()
	net := nn.NewRBM(nv, nh, seed).QuantizeParams()
	rng := nn.NewRNG(seed + 1)
	v0 := binaryVec(rng, nv)

	g := newGen()
	var b asm.Builder

	vMain := g.data(v0)
	wMain := g.data(net.W.Data)
	bhMain := g.data(net.BH)
	bvMain := g.data(net.BV)
	p0Main := g.outAddr(nh)
	r0Main := g.outAddr(nh)
	v1Main := g.outAddr(nv)
	h1Main := g.outAddr(nh)
	wOutMain := g.outAddr(nh * nv)

	half := nh / 2
	wM := g.mspadA.takeElems(nh * nv)
	tileM := g.mspadA.takeElems(half * nv)
	v0V := g.vspadA.takeElems(nv)
	v1V := g.vspadA.takeElems(nv)
	h0V := g.vspadA.takeElems(nh) // sampled
	p0V := g.vspadA.takeElems(nh)
	h1V := g.vspadA.takeElems(nh) // probabilities (negative phase)
	bhV := g.vspadA.takeElems(nh)
	bvV := g.vspadA.takeElems(nv)
	rV := g.vspadA.takeElems(nh)
	tmpV := g.vspadA.takeElems(nv)

	const (
		rNV   = 0
		rNH   = 1
		rHalf = 2
		rSz   = 3
		rV0   = 4
		rV1   = 5
		rH0   = 6
		rP0   = 7
		rH1   = 8
		rBH   = 9
		rBV   = 10
		rR    = 11
		rTmp  = 12
		rW    = 13
		rWHi  = 14 // W upper-half base (rows nh/2..nh)
		rTile = 15
		rSeg  = 16 // vector segment cursor
	)

	b.Comment("RBM V(%d)-H(%d), one CD-1 step (Table III)", nv, nh)
	loadImm(&b, rNV, int32(nv))
	loadImm(&b, rNH, int32(nh))
	loadImm(&b, rHalf, int32(half))
	loadImm(&b, rV0, int32(v0V))
	b.Opc(core.VLOAD, "load v0", asm.R(rV0), asm.R(rNV), asm.Imm(int32(vMain)))
	loadImm(&b, rBH, int32(bhV))
	b.Opc(core.VLOAD, "load hidden bias", asm.R(rBH), asm.R(rNH), asm.Imm(int32(bhMain)))
	loadImm(&b, rBV, int32(bvV))
	b.Opc(core.VLOAD, "load visible bias", asm.R(rBV), asm.R(rNV), asm.Imm(int32(bvMain)))
	loadImm(&b, rW, int32(wM))
	loadImm(&b, rSz, int32(nh*nv))
	b.Opc(core.MLOAD, "load W (resident)", asm.R(rW), asm.R(rSz), asm.Imm(int32(wMain)))
	loadImm(&b, rWHi, int32(wM+fixed.Bytes(half*nv)))

	loadImm(&b, rP0, int32(p0V))
	loadImm(&b, rH0, int32(h0V))
	loadImm(&b, rH1, int32(h1V))
	loadImm(&b, rV1, int32(v1V))
	loadImm(&b, rR, int32(rV))
	loadImm(&b, rTmp, int32(tmpV))
	loadImm(&b, rTile, int32(tileM))

	b.Comment("positive phase: p(h|v0)")
	b.Opc(core.MMV, "W v0", asm.R(rP0), asm.R(rNH), asm.R(rW), asm.R(rV0), asm.R(rNV))
	b.Op(core.VAV, asm.R(rP0), asm.R(rNH), asm.R(rP0), asm.R(rBH))
	emitSigmoid(&b, rP0, rP0, sigmoidRegs{size: rNH, tmp: rTmp})
	b.Opc(core.VSTORE, "record p0", asm.R(rP0), asm.R(rNH), asm.Imm(int32(p0Main)))
	b.Opc(core.RV, "draws", asm.R(rR), asm.R(rNH))
	b.Opc(core.VSTORE, "record r0", asm.R(rR), asm.R(rNH), asm.Imm(int32(r0Main)))
	b.Opc(core.VGT, "h0 = (r > p0)", asm.R(rH0), asm.R(rNH), asm.R(rR), asm.R(rP0))

	b.Comment("reconstruction: v1 = sigmoid(W^T h0 + bv)")
	b.Opc(core.VMM, "W^T h0", asm.R(rV1), asm.R(rNV), asm.R(rW), asm.R(rH0), asm.R(rNH))
	b.Op(core.VAV, asm.R(rV1), asm.R(rNV), asm.R(rV1), asm.R(rBV))
	emitSigmoid(&b, rV1, rV1, sigmoidRegs{size: rNV, tmp: rTmp})
	b.Opc(core.VSTORE, "record v1", asm.R(rV1), asm.R(rNV), asm.Imm(int32(v1Main)))

	b.Comment("negative phase: p(h|v1)")
	b.Opc(core.MMV, "W v1", asm.R(rH1), asm.R(rNH), asm.R(rW), asm.R(rV1), asm.R(rNV))
	b.Op(core.VAV, asm.R(rH1), asm.R(rNH), asm.R(rH1), asm.R(rBH))
	emitSigmoid(&b, rH1, rH1, sigmoidRegs{size: rNH, tmp: rTmp})
	b.Opc(core.VSTORE, "record h1", asm.R(rH1), asm.R(rNH), asm.Imm(int32(h1Main)))

	b.Comment("CD-1 update, tiled per half: W += eta (h0 (x) v0 - h1 (x) v1)")
	loadImm(&b, rSz, int32(half*nv))
	for halfIdx := 0; halfIdx < 2; halfIdx++ {
		wBase := uint8(rW)
		if halfIdx == 1 {
			wBase = rWHi
		}
		segOff := int32(fixed.Bytes(halfIdx * half))
		b.Comment("rows %d..%d", halfIdx*half, (halfIdx+1)*half)
		b.Opc(core.SADD, "h0 segment", asm.R(rSeg), asm.R(rH0), asm.Imm(segOff))
		b.Op(core.OP, asm.R(rTile), asm.R(rSeg), asm.R(rHalf), asm.R(rV0), asm.R(rNV))
		b.Op(core.MMS, asm.R(rTile), asm.R(rSz), asm.R(rTile), asm.Imm(fix(rbmEta)))
		b.Opc(core.MAM, "positive phase in", asm.R(wBase), asm.R(rSz), asm.R(wBase), asm.R(rTile))
		b.Opc(core.SADD, "h1 segment", asm.R(rSeg), asm.R(rH1), asm.Imm(segOff))
		b.Op(core.OP, asm.R(rTile), asm.R(rSeg), asm.R(rHalf), asm.R(rV1), asm.R(rNV))
		b.Op(core.MMS, asm.R(rTile), asm.R(rSz), asm.R(rTile), asm.Imm(fix(rbmEta)))
		b.Opc(core.MSM, "negative phase out", asm.R(wBase), asm.R(rSz), asm.R(wBase), asm.R(rTile))
	}
	loadImm(&b, rSz, int32(nh*nv))
	b.Opc(core.MSTORE, "store updated W", asm.R(rW), asm.R(rSz), asm.Imm(int32(wOutMain)))

	prog, err := finish("RBM-CD", &b, g)
	if err != nil {
		return nil, err
	}
	prog.Checks = append(prog.Checks, rbmCheck(net, v0, p0Main, r0Main, v1Main, h1Main, wOutMain))
	return prog, nil
}

// rbmCheck validates the CD-1 chain stage by stage, thresholding on the
// accelerator's own values so sampling never cascades into false failures.
func rbmCheck(net *nn.RBM, v0 nn.Vec, p0Main, r0Main, v1Main, h1Main, wOutMain int) func(*sim.Machine) error {
	return func(m *sim.Machine) error {
		nv, nh := net.V, net.H
		p0Sim, err := m.ReadMainNums(p0Main, nh)
		if err != nil {
			return err
		}
		r0Sim, err := m.ReadMainNums(r0Main, nh)
		if err != nil {
			return err
		}
		p0Ref := net.HiddenProb(v0)
		for i := range p0Ref {
			want := nn.SigmoidSat(logit(p0Ref[i]))
			if d := math.Abs(p0Sim[i].Float() - want); d > bmProbTol {
				return fmt.Errorf("p0[%d] = %v, want %v", i, p0Sim[i].Float(), want)
			}
		}
		h0 := make(nn.Vec, nh)
		for i := range h0 {
			if r0Sim[i] > p0Sim[i] {
				h0[i] = 1
			}
		}
		v1Sim, err := m.ReadMainNums(v1Main, nv)
		if err != nil {
			return err
		}
		v1Ref := net.VisibleProb(h0)
		for i := range v1Ref {
			want := nn.SigmoidSat(logit(v1Ref[i]))
			if d := math.Abs(v1Sim[i].Float() - want); d > bmProbTol {
				return fmt.Errorf("v1[%d] = %v, want %v", i, v1Sim[i].Float(), want)
			}
		}
		v1 := fixed.Floats(v1Sim)
		h1Sim, err := m.ReadMainNums(h1Main, nh)
		if err != nil {
			return err
		}
		h1Ref := net.HiddenProb(v1)
		for i := range h1Ref {
			want := nn.SigmoidSat(logit(h1Ref[i]))
			if d := math.Abs(h1Sim[i].Float() - want); d > bmProbTol {
				return fmt.Errorf("h1[%d] = %v, want %v", i, h1Sim[i].Float(), want)
			}
		}
		h1 := fixed.Floats(h1Sim)
		wSim, err := m.ReadMainNums(wOutMain, nh*nv)
		if err != nil {
			return err
		}
		for i := 0; i < nh; i++ {
			for j := 0; j < nv; j++ {
				want := net.W.At(i, j) + rbmEta*(h0[i]*v0[j]-h1[i]*v1[j])
				got := wSim[i*nv+j].Float()
				if d := math.Abs(got - want); d > rbmWTol {
					return fmt.Errorf("W'[%d,%d] = %v, want %v (err %.4f)", i, j, got, want, d)
				}
			}
		}
		return nil
	}
}
