package codegen

import (
	"cambricon/internal/asm"
	"cambricon/internal/core"
	"cambricon/internal/fixed"
	"cambricon/internal/nn"
	"cambricon/internal/workload"
)

// RNNTolerance bounds the fixed-point drift of the recurrent state over
// workload.SeqLen timesteps.
const RNNTolerance = 0.12

// GenRNN lowers the Table III recurrent benchmark (26-93-61 Elman network
// over a SeqLen-step sequence). The recurrent term h_{t-1} feeding back
// into the same layer is what DaDianNao's feedforward layer instructions
// cannot express (Section V-B1); on Cambricon it is simply a second MMV per
// step.
func GenRNN(seed uint64) (*Program, error) {
	in, hid, out := nn.RNNBenchmark()
	net := nn.NewRNN(in, hid, out, seed).QuantizeParams()
	rng := nn.NewRNG(seed + 1)
	xs := make([]nn.Vec, workload.SeqLen)
	flat := make(nn.Vec, 0, workload.SeqLen*in)
	for t := range xs {
		xs[t] = nn.Quantize(rng.FillVec(in, 0, 1))
		flat = append(flat, xs[t]...)
	}
	ys := net.Forward(xs)
	wantAll := make([]float64, 0, workload.SeqLen*out)
	for _, y := range ys {
		wantAll = append(wantAll, y...)
	}

	g := newGen()
	var b asm.Builder

	xMain := g.data(flat)
	wxhMain := g.data(net.Wxh.Data)
	whhMain := g.data(net.Whh.Data)
	whyMain := g.data(net.Why.Data)
	bhMain := g.data(net.Bh)
	byMain := g.data(net.By)
	yMain := g.out("per-step outputs", workload.SeqLen*out, wantAll, RNNTolerance)

	wxhM := g.mspadA.takeElems(hid * in)
	whhM := g.mspadA.takeElems(hid * hid)
	whyM := g.mspadA.takeElems(out * hid)
	xV := g.vspadA.takeElems(in)
	hV := g.vspadA.takeElems(hid)
	t1V := g.vspadA.takeElems(hid)
	t2V := g.vspadA.takeElems(hid)
	bhV := g.vspadA.takeElems(hid)
	byV := g.vspadA.takeElems(out)
	yV := g.vspadA.takeElems(out)
	tmpV := g.vspadA.takeElems(hid)

	const (
		rIn    = 0
		rHid   = 1
		rOut   = 2
		rSz    = 3 // reusable size scratch
		rX     = 4
		rH     = 5
		rT1    = 6
		rT2    = 7
		rBh    = 8
		rBy    = 9
		rY     = 10
		rTmp   = 11
		rWxh   = 12
		rWhh   = 13
		rWhy   = 14
		rXCur  = 15 // main-memory input cursor
		rYCur  = 16 // main-memory output cursor
		rSteps = 17
	)

	b.Comment("RNN %d-%d-%d over %d timesteps (Table III)", in, hid, out, workload.SeqLen)
	loadImm(&b, rIn, int32(in))
	loadImm(&b, rHid, int32(hid))
	loadImm(&b, rOut, int32(out))

	loadImm(&b, rWxh, int32(wxhM))
	loadImm(&b, rSz, int32(hid*in))
	b.Opc(core.MLOAD, "load Wxh", asm.R(rWxh), asm.R(rSz), asm.Imm(int32(wxhMain)))
	loadImm(&b, rWhh, int32(whhM))
	loadImm(&b, rSz, int32(hid*hid))
	b.Opc(core.MLOAD, "load Whh", asm.R(rWhh), asm.R(rSz), asm.Imm(int32(whhMain)))
	loadImm(&b, rWhy, int32(whyM))
	loadImm(&b, rSz, int32(out*hid))
	b.Opc(core.MLOAD, "load Why", asm.R(rWhy), asm.R(rSz), asm.Imm(int32(whyMain)))

	loadImm(&b, rBh, int32(bhV))
	b.Opc(core.VLOAD, "load hidden bias", asm.R(rBh), asm.R(rHid), asm.Imm(int32(bhMain)))
	loadImm(&b, rBy, int32(byV))
	b.Opc(core.VLOAD, "load output bias", asm.R(rBy), asm.R(rOut), asm.Imm(int32(byMain)))

	loadImm(&b, rX, int32(xV))
	loadImm(&b, rH, int32(hV))
	loadImm(&b, rT1, int32(t1V))
	loadImm(&b, rT2, int32(t2V))
	loadImm(&b, rY, int32(yV))
	loadImm(&b, rTmp, int32(tmpV))
	b.Comment("h_0 = 0")
	b.Op(core.VSV, asm.R(rH), asm.R(rHid), asm.R(rH), asm.R(rH))

	loadImm(&b, rXCur, int32(xMain))
	loadImm(&b, rYCur, int32(yMain))
	loadImm(&b, rSteps, workload.SeqLen)

	top := b.NewLabel("step")
	b.Label(top)
	b.Opc(core.VLOAD, "load x_t", asm.R(rX), asm.R(rIn), asm.R(rXCur), asm.Imm(0))
	b.Op(core.SADD, asm.R(rXCur), asm.R(rXCur), asm.Imm(int32(fixed.Bytes(in))))
	b.Opc(core.MMV, "Wxh x_t", asm.R(rT1), asm.R(rHid), asm.R(rWxh), asm.R(rX), asm.R(rIn))
	b.Opc(core.MMV, "Whh h_{t-1}", asm.R(rT2), asm.R(rHid), asm.R(rWhh), asm.R(rH), asm.R(rHid))
	b.Opc(core.VAV, "sum recurrent terms", asm.R(rT1), asm.R(rHid), asm.R(rT1), asm.R(rT2))
	b.Opc(core.VAV, "add bias", asm.R(rT1), asm.R(rHid), asm.R(rT1), asm.R(rBh))
	emitSigmoid(&b, rH, rT1, sigmoidRegs{size: rHid, tmp: rTmp})
	b.Opc(core.MMV, "Why h_t", asm.R(rY), asm.R(rOut), asm.R(rWhy), asm.R(rH), asm.R(rHid))
	b.Opc(core.VAV, "add output bias", asm.R(rY), asm.R(rOut), asm.R(rY), asm.R(rBy))
	emitSigmoid(&b, rY, rY, sigmoidRegs{size: rOut, tmp: rTmp})
	b.Opc(core.VSTORE, "store y_t", asm.R(rY), asm.R(rOut), asm.R(rYCur), asm.Imm(0))
	b.Op(core.SADD, asm.R(rYCur), asm.R(rYCur), asm.Imm(int32(fixed.Bytes(out))))
	b.Op(core.SADD, asm.R(rSteps), asm.R(rSteps), asm.Imm(-1))
	b.Op(core.CB, asm.Lbl(top), asm.R(rSteps))

	return finish("RNN", &b, g)
}
