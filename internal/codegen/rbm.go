package codegen

import (
	"fmt"
	"math"

	"cambricon/internal/asm"
	"cambricon/internal/core"
	"cambricon/internal/fixed"
	"cambricon/internal/nn"
	"cambricon/internal/sim"
	"cambricon/internal/workload"
)

// GenRBM lowers the Table III restricted Boltzmann machine benchmark
// (V(500)-H(500)): workload.GibbsSteps alternating Gibbs steps — the hidden
// update p(h|v) = sigmoid(W v + bh) via MMV and the tied-weight visible
// update p(v|h) = sigmoid(W^T h + bv) via VMM (no transpose in memory,
// Section III-A), each followed by RV/VGT sampling. Without the lateral
// matrix, W stays resident and no tiling is needed — the structural
// contrast with GenBM.
func GenRBM(seed uint64) (*Program, error) {
	nv, nh := nn.BMBenchmark()
	net := nn.NewRBM(nv, nh, seed).QuantizeParams()
	rng := nn.NewRNG(seed + 1)
	v0 := binaryVec(rng, nv)
	steps := workload.GibbsSteps

	g := newGen()
	var b asm.Builder

	vMain := g.data(v0)
	wMain := g.data(net.W.Data)
	bhMain := g.data(net.BH)
	bvMain := g.data(net.BV)
	phMain := g.outAddr(steps * nh)
	rhMain := g.outAddr(steps * nh)
	pvMain := g.outAddr(steps * nv)
	rvMain := g.outAddr(steps * nv)
	hOutMain := g.outAddr(nh)
	vOutMain := g.outAddr(nv)

	wM := g.mspadA.takeElems(nh * nv)
	vV := g.vspadA.takeElems(nv)
	hV := g.vspadA.takeElems(nh)
	bhV := g.vspadA.takeElems(nh)
	bvV := g.vspadA.takeElems(nv)
	pV := g.vspadA.takeElems(nv) // shared probability buffer (nv >= nh)
	rV := g.vspadA.takeElems(nv)
	tmpV := g.vspadA.takeElems(nv)

	const (
		rNV    = 0
		rNH    = 1
		rSz    = 2
		rv     = 3
		rh     = 4
		rBH    = 5
		rBV    = 6
		rP     = 7
		rR     = 8
		rTmp   = 9
		rW     = 10
		rPhCur = 11
		rRhCur = 12
		rPvCur = 13
		rRvCur = 14
		rSteps = 15
	)

	b.Comment("RBM V(%d)-H(%d), %d alternating Gibbs steps (Table III)", nv, nh, steps)
	loadImm(&b, rNV, int32(nv))
	loadImm(&b, rNH, int32(nh))
	loadImm(&b, rv, int32(vV))
	b.Opc(core.VLOAD, "load visible vector", asm.R(rv), asm.R(rNV), asm.Imm(int32(vMain)))
	loadImm(&b, rBH, int32(bhV))
	b.Opc(core.VLOAD, "load hidden bias", asm.R(rBH), asm.R(rNH), asm.Imm(int32(bhMain)))
	loadImm(&b, rBV, int32(bvV))
	b.Opc(core.VLOAD, "load visible bias", asm.R(rBV), asm.R(rNV), asm.Imm(int32(bvMain)))
	loadImm(&b, rW, int32(wM))
	loadImm(&b, rSz, int32(nh*nv))
	b.Opc(core.MLOAD, "load W (resident, no lateral matrix)", asm.R(rW), asm.R(rSz), asm.Imm(int32(wMain)))

	loadImm(&b, rh, int32(hV))
	loadImm(&b, rP, int32(pV))
	loadImm(&b, rR, int32(rV))
	loadImm(&b, rTmp, int32(tmpV))
	loadImm(&b, rPhCur, int32(phMain))
	loadImm(&b, rRhCur, int32(rhMain))
	loadImm(&b, rPvCur, int32(pvMain))
	loadImm(&b, rRvCur, int32(rvMain))
	loadImm(&b, rSteps, int32(steps))

	top := b.NewLabel("gibbs")
	b.Label(top)
	b.Comment("hidden update: p(h|v) = sigmoid(W v + bh)")
	b.Opc(core.MMV, "W v", asm.R(rP), asm.R(rNH), asm.R(rW), asm.R(rv), asm.R(rNV))
	b.Op(core.VAV, asm.R(rP), asm.R(rNH), asm.R(rP), asm.R(rBH))
	emitSigmoid(&b, rP, rP, sigmoidRegs{size: rNH, tmp: rTmp})
	b.Opc(core.VSTORE, "record p(h)", asm.R(rP), asm.R(rNH), asm.R(rPhCur), asm.Imm(0))
	b.Op(core.SADD, asm.R(rPhCur), asm.R(rPhCur), asm.Imm(int32(fixed.Bytes(nh))))
	b.Op(core.RV, asm.R(rR), asm.R(rNH))
	b.Opc(core.VSTORE, "record draws", asm.R(rR), asm.R(rNH), asm.R(rRhCur), asm.Imm(0))
	b.Op(core.SADD, asm.R(rRhCur), asm.R(rRhCur), asm.Imm(int32(fixed.Bytes(nh))))
	b.Opc(core.VGT, "h = (r > p)", asm.R(rh), asm.R(rNH), asm.R(rR), asm.R(rP))

	b.Comment("visible update: p(v|h) = sigmoid(W^T h + bv), tied weights via VMM")
	b.Opc(core.VMM, "W^T h", asm.R(rP), asm.R(rNV), asm.R(rW), asm.R(rh), asm.R(rNH))
	b.Op(core.VAV, asm.R(rP), asm.R(rNV), asm.R(rP), asm.R(rBV))
	emitSigmoid(&b, rP, rP, sigmoidRegs{size: rNV, tmp: rTmp})
	b.Opc(core.VSTORE, "record p(v)", asm.R(rP), asm.R(rNV), asm.R(rPvCur), asm.Imm(0))
	b.Op(core.SADD, asm.R(rPvCur), asm.R(rPvCur), asm.Imm(int32(fixed.Bytes(nv))))
	b.Op(core.RV, asm.R(rR), asm.R(rNV))
	b.Opc(core.VSTORE, "record draws", asm.R(rR), asm.R(rNV), asm.R(rRvCur), asm.Imm(0))
	b.Op(core.SADD, asm.R(rRvCur), asm.R(rRvCur), asm.Imm(int32(fixed.Bytes(nv))))
	b.Opc(core.VGT, "v = (r > p)", asm.R(rv), asm.R(rNV), asm.R(rR), asm.R(rP))

	b.Op(core.SADD, asm.R(rSteps), asm.R(rSteps), asm.Imm(-1))
	b.Op(core.CB, asm.Lbl(top), asm.R(rSteps))

	b.Opc(core.VSTORE, "store final hidden state", asm.R(rh), asm.R(rNH), asm.Imm(int32(hOutMain)))
	b.Opc(core.VSTORE, "store final visible state", asm.R(rv), asm.R(rNV), asm.Imm(int32(vOutMain)))

	prog, err := finish("RBM", &b, g)
	if err != nil {
		return nil, err
	}
	prog.Checks = append(prog.Checks,
		rbmGibbsCheck(net, v0, steps, phMain, rhMain, pvMain, rvMain, hOutMain, vOutMain))
	return prog, nil
}

// rbmGibbsCheck replays the alternating chain: probabilities against the
// float reference, thresholds bit-exactly on the accelerator's own values.
func rbmGibbsCheck(net *nn.RBM, v0 nn.Vec, steps, phMain, rhMain, pvMain, rvMain, hOutMain, vOutMain int) func(*sim.Machine) error {
	return func(m *sim.Machine) error {
		nv, nh := net.V, net.H
		v := append(nn.Vec(nil), v0...)
		h := make(nn.Vec, nh)
		for t := 0; t < steps; t++ {
			pSim, err := m.ReadMainNums(phMain+t*fixed.Bytes(nh), nh)
			if err != nil {
				return err
			}
			rSim, err := m.ReadMainNums(rhMain+t*fixed.Bytes(nh), nh)
			if err != nil {
				return err
			}
			pRef := net.HiddenProb(v)
			for i := range pRef {
				want := nn.SigmoidSat(logit(pRef[i]))
				if d := math.Abs(pSim[i].Float() - want); d > bmProbTol {
					return fmt.Errorf("step %d: p(h)[%d] = %v, want %v (err %.4f)",
						t, i, pSim[i].Float(), want, d)
				}
			}
			for i := range h {
				if rSim[i] > pSim[i] {
					h[i] = 1
				} else {
					h[i] = 0
				}
			}
			pvSim, err := m.ReadMainNums(pvMain+t*fixed.Bytes(nv), nv)
			if err != nil {
				return err
			}
			rvSim, err := m.ReadMainNums(rvMain+t*fixed.Bytes(nv), nv)
			if err != nil {
				return err
			}
			vRef := net.VisibleProb(h)
			for i := range vRef {
				want := nn.SigmoidSat(logit(vRef[i]))
				if d := math.Abs(pvSim[i].Float() - want); d > bmProbTol {
					return fmt.Errorf("step %d: p(v)[%d] = %v, want %v (err %.4f)",
						t, i, pvSim[i].Float(), want, d)
				}
			}
			for i := range v {
				if rvSim[i] > pvSim[i] {
					v[i] = 1
				} else {
					v[i] = 0
				}
			}
		}
		gotH, err := m.ReadMainNums(hOutMain, nh)
		if err != nil {
			return err
		}
		for i, gv := range fixed.Floats(gotH) {
			if gv != h[i] {
				return fmt.Errorf("final h[%d] = %v, want %v", i, gv, h[i])
			}
		}
		gotV, err := m.ReadMainNums(vOutMain, nv)
		if err != nil {
			return err
		}
		for i, gv := range fixed.Floats(gotV) {
			if gv != v[i] {
				return fmt.Errorf("final v[%d] = %v, want %v", i, gv, v[i])
			}
		}
		return nil
	}
}
