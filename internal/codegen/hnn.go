package codegen

import (
	"cambricon/internal/asm"
	"cambricon/internal/core"
	"cambricon/internal/nn"
	"cambricon/internal/workload"
)

// GenHNN lowers the Table III Hopfield benchmark (5 patterns of 100 bipolar
// components): HopfieldIters synchronous relaxation iterations, each one
// MMV plus a comparison network that realizes
//
//	s' = sign(W s), with sign(0) holding the previous state
//
// from VGT/VSV/VMV/VAV primitives. Fixed point is exact here (weights are
// Q8.8 grid points, states are +/-1, and the wide MMV accumulator never
// saturates), so the final state must match the reference bit for bit.
func GenHNN(seed uint64) (*Program, error) {
	patterns, n := nn.HNNBenchmark()
	net := nn.NewHNN(patterns, n, seed).QuantizeParams()
	start := net.Corrupt(0, 10)
	want := append(nn.Vec(nil), start...)
	for i := 0; i < workload.HopfieldIters; i++ {
		want = net.Step(want)
	}

	g := newGen()
	var b asm.Builder

	wMain := g.data(net.W.Data)
	sMain := g.data(start)
	outMain := g.out("final state", n, want, 0)

	wM := g.mspadA.takeElems(n * n)
	sV := g.vspadA.takeElems(n)
	preV := g.vspadA.takeElems(n)
	zeroV := g.vspadA.takeElems(n)
	oneV := g.vspadA.takeElems(n)
	gtV := g.vspadA.takeElems(n)
	ltV := g.vspadA.takeElems(n)
	maskV := g.vspadA.takeElems(n)
	signV := g.vspadA.takeElems(n)

	const (
		rN    = 0 // component count
		rMat  = 1 // matrix size
		rS    = 2 // state address
		rW    = 3 // weight address
		rPre  = 4
		rZero = 5
		rOne  = 6
		rGt   = 7
		rLt   = 8
		rMask = 9
		rSign = 10
		rIter = 11
	)

	b.Comment("Hopfield network: %d patterns, %d components (Table III)", patterns, n)
	loadImm(&b, rN, int32(n))
	loadImm(&b, rMat, int32(n*n))
	loadImm(&b, rW, int32(wM))
	b.Opc(core.MLOAD, "load Hebbian weight matrix", asm.R(rW), asm.R(rMat), asm.Imm(int32(wMain)))
	loadImm(&b, rS, int32(sV))
	b.Opc(core.VLOAD, "load corrupted probe state", asm.R(rS), asm.R(rN), asm.Imm(int32(sMain)))
	loadImm(&b, rZero, int32(zeroV))
	emitConstVecImm(&b, rZero, rN, 0)
	loadImm(&b, rOne, int32(oneV))
	emitConstVecImm(&b, rOne, rN, 1)
	loadImm(&b, rPre, int32(preV))
	loadImm(&b, rGt, int32(gtV))
	loadImm(&b, rLt, int32(ltV))
	loadImm(&b, rMask, int32(maskV))
	loadImm(&b, rSign, int32(signV))

	loadImm(&b, rIter, workload.HopfieldIters)
	top := b.NewLabel("relax")
	b.Label(top)
	b.Opc(core.MMV, "pre = W s", asm.R(rPre), asm.R(rN), asm.R(rW), asm.R(rS), asm.R(rN))
	b.Opc(core.VGT, "gt = pre > 0", asm.R(rGt), asm.R(rN), asm.R(rPre), asm.R(rZero))
	b.Opc(core.VGT, "lt = pre < 0", asm.R(rLt), asm.R(rN), asm.R(rZero), asm.R(rPre))
	b.Opc(core.VSV, "mask = 1 - gt", asm.R(rMask), asm.R(rN), asm.R(rOne), asm.R(rGt))
	b.Opc(core.VSV, "mask -= lt (1 only where pre == 0)", asm.R(rMask), asm.R(rN), asm.R(rMask), asm.R(rLt))
	b.Opc(core.VMV, "hold = mask .* s", asm.R(rMask), asm.R(rN), asm.R(rMask), asm.R(rS))
	b.Opc(core.VSV, "sign = gt - lt", asm.R(rSign), asm.R(rN), asm.R(rGt), asm.R(rLt))
	b.Opc(core.VAV, "s = sign + hold", asm.R(rS), asm.R(rN), asm.R(rSign), asm.R(rMask))
	b.Opc(core.SADD, "iteration counter", asm.R(rIter), asm.R(rIter), asm.Imm(-1))
	b.Op(core.CB, asm.Lbl(top), asm.R(rIter))

	b.Opc(core.VSTORE, "store relaxed state", asm.R(rS), asm.R(rN), asm.Imm(int32(outMain)))
	return finish("HNN", &b, g)
}
