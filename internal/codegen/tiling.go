package codegen

import (
	"fmt"

	"cambricon/internal/asm"
	"cambricon/internal/core"
	"cambricon/internal/fixed"
	"cambricon/internal/nn"
)

// Section II-B: "the only notable restriction is that the vector/matrix
// operands in the same instruction cannot exceed the capacity of scratchpad
// memory. In case they do exceed, the compiler will decompose long
// vectors/matrices into short pieces/blocks and generate multiple
// instructions to process them."
//
// GenTiledElementwise is that compiler transformation for two-input
// element-wise vector operations: operands of any length live in main
// memory and stream through the 64 KB vector scratchpad in tiles —
// a VLOAD/VLOAD/op/VSTORE loop plus a remainder tile. The BM generator
// applies the matrix version of the same idea by hand (lateral-matrix
// halves); this is the reusable vector form.
func GenTiledElementwise(op core.Opcode, n, tile int, seed uint64) (*Program, error) {
	switch op {
	case core.VAV, core.VSV, core.VMV, core.VGTM:
	default:
		return nil, fmt.Errorf("codegen: GenTiledElementwise does not support %v", op)
	}
	if n <= 0 || tile <= 0 {
		return nil, fmt.Errorf("codegen: invalid tiling %d/%d", n, tile)
	}
	if fixed.Bytes(3*tile) > core.VectorSpadBytes {
		return nil, fmt.Errorf("codegen: tile of %d elements does not fit the vector scratchpad", tile)
	}

	rng := nn.NewRNG(seed)
	a := nn.Quantize(rng.FillVec(n, -1, 1))
	bv := nn.Quantize(rng.FillVec(n, -1, 1))
	want := make([]float64, n)
	tol := 0.0
	for i := range want {
		switch op {
		case core.VAV:
			want[i] = a[i] + bv[i]
		case core.VSV:
			want[i] = a[i] - bv[i]
		case core.VMV:
			want[i] = a[i] * bv[i]
			tol = 1.0 / 512
		case core.VGTM:
			if a[i] > bv[i] {
				want[i] = a[i]
			} else {
				want[i] = bv[i]
			}
		}
	}

	g := newGen()
	var b asm.Builder

	aMain := g.data(a)
	bMain := g.data(bv)
	outMain := g.out("tiled result", n, want, tol)

	aV := g.vspadA.takeElems(tile)
	bV := g.vspadA.takeElems(tile)
	cV := g.vspadA.takeElems(tile)

	full := n / tile
	rem := n % tile
	tileBytes := int32(fixed.Bytes(tile))

	const (
		rTile = 0 // current tile size
		rA    = 1
		rB    = 2
		rC    = 3
		rMa   = 4 // main-memory cursors
		rMb   = 5
		rMo   = 6
		rCnt  = 7
	)

	b.Comment("tiled %v over %d elements (%d-element tiles: operands exceed the 64KB scratchpad)",
		op, n, tile)
	loadImm(&b, rA, int32(aV))
	loadImm(&b, rB, int32(bV))
	loadImm(&b, rC, int32(cV))
	loadImm(&b, rMa, int32(aMain))
	loadImm(&b, rMb, int32(bMain))
	loadImm(&b, rMo, int32(outMain))

	emitTile := func() {
		b.Opc(core.VLOAD, "stream tile of a", asm.R(rA), asm.R(rTile), asm.R(rMa), asm.Imm(0))
		b.Opc(core.VLOAD, "stream tile of b", asm.R(rB), asm.R(rTile), asm.R(rMb), asm.Imm(0))
		b.Op(op, asm.R(rC), asm.R(rTile), asm.R(rA), asm.R(rB))
		b.Opc(core.VSTORE, "stream tile out", asm.R(rC), asm.R(rTile), asm.R(rMo), asm.Imm(0))
		b.Op(core.SADD, asm.R(rMa), asm.R(rMa), asm.Imm(tileBytes))
		b.Op(core.SADD, asm.R(rMb), asm.R(rMb), asm.Imm(tileBytes))
		b.Op(core.SADD, asm.R(rMo), asm.R(rMo), asm.Imm(tileBytes))
	}

	if full > 0 {
		loadImm(&b, rTile, int32(tile))
		loadImm(&b, rCnt, int32(full))
		top := b.NewLabel("tile")
		b.Label(top)
		emitTile()
		b.Op(core.SADD, asm.R(rCnt), asm.R(rCnt), asm.Imm(-1))
		b.Op(core.CB, asm.Lbl(top), asm.R(rCnt))
	}
	if rem > 0 {
		b.Comment("remainder tile of %d elements", rem)
		loadImm(&b, rTile, int32(rem))
		emitTile()
	}

	return finish(fmt.Sprintf("Tiled-%v", op), &b, g)
}
