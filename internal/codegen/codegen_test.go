package codegen

import (
	"fmt"
	"strings"
	"testing"

	"cambricon/internal/core"
	"cambricon/internal/sim"
)

// newSim builds a machine from a known-good configuration, failing the
// test otherwise.
func newSim(t *testing.T, cfg sim.Config) *sim.Machine {
	t.Helper()
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// execute runs a generated program on a fresh Table II machine.
func execute(t *testing.T, p *Program, err error) sim.Stats {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	m := newSim(t, sim.DefaultConfig())
	stats, err := p.Execute(m)
	if err != nil {
		t.Fatalf("%v\nprogram:\n%s", err, p.Source)
	}
	return stats
}

func TestGenMLPRunsAndMatchesReference(t *testing.T) {
	p, err := GenMLP(7)
	stats := execute(t, p, err)
	if stats.MACOps < 64*150+150*150+150*14 {
		t.Errorf("MACs = %d, below workload minimum", stats.MACOps)
	}
	if p.Len() == 0 || p.Len() > 200 {
		t.Errorf("suspicious MLP code length %d", p.Len())
	}
}

func TestGenMLPDeterministicPerSeed(t *testing.T) {
	a, err := GenMLP(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenMLP(3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Source != b.Source {
		t.Error("same seed must generate identical source")
	}
	c, err := GenMLP(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Chunks) != len(c.Chunks) {
		t.Fatal("chunk structure should match across seeds")
	}
	same := true
	for i := range a.Chunks {
		for j := range a.Chunks[i].Data {
			if a.Chunks[i].Data[j] != c.Chunks[i].Data[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds should produce different weights")
	}
}

func TestGenLogisticRunsAndMatchesReference(t *testing.T) {
	p, err := GenLogistic(5)
	execute(t, p, err)
}

func TestGenHNNExactRecall(t *testing.T) {
	p, err := GenHNN(11)
	stats := execute(t, p, err)
	if stats.BranchesTaken == 0 {
		t.Error("HNN should loop")
	}
}

func TestGenSOMTrainsPrototypes(t *testing.T) {
	p, err := GenSOM(21)
	stats := execute(t, p, err)
	if stats.ByType[2] != 0 { // TypeMatrix
		t.Errorf("SOM should use no matrix instructions, got %d", stats.ByType[2])
	}
	if stats.TranscendentalElems == 0 {
		t.Error("SOM should use SEXP")
	}
}

func TestGenRNNMatchesReference(t *testing.T) {
	p, err := GenRNN(13)
	stats := execute(t, p, err)
	if stats.BranchesTaken == 0 {
		t.Error("RNN should loop over timesteps")
	}
}

func TestGenLSTMMatchesReference(t *testing.T) {
	p, err := GenLSTM(19)
	stats := execute(t, p, err)
	wantMACs := int64(8 * (4*(93*26+93*93) + 61*93))
	if stats.MACOps < wantMACs {
		t.Errorf("LSTM MACs = %d, want >= %d", stats.MACOps, wantMACs)
	}
}

func TestGenAutoencoderMatchesReference(t *testing.T) {
	p, err := GenAutoencoder(false, 29)
	execute(t, p, err)
	if p.Name != "Autoencoder" {
		t.Errorf("name %q", p.Name)
	}
}

func TestGenSparseAutoencoderMatchesReference(t *testing.T) {
	p, err := GenAutoencoder(true, 29)
	execute(t, p, err)
	plain, err := GenAutoencoder(false, 29)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() <= plain.Len() {
		t.Error("sparse variant should emit extra penalty instructions")
	}
}

func TestGenBMGibbsChain(t *testing.T) {
	p, err := GenBM(37)
	stats := execute(t, p, err)
	// W (500x500) resident + one full L (as two half tiles) streamed per
	// step: at least (1 + GibbsSteps) full-matrix transfers.
	if stats.DMABytes < int64(500*500*2*(1+4)) {
		t.Errorf("BM DMA bytes = %d, expected tiled L streaming", stats.DMABytes)
	}
}

func TestGenRBMAlternatingGibbs(t *testing.T) {
	p, err := GenRBM(41)
	stats := execute(t, p, err)
	// Two 500x500 contractions per Gibbs step.
	if stats.MACOps != int64(2*4*500*500) {
		t.Errorf("RBM MACs = %d", stats.MACOps)
	}
	// W resident: exactly one matrix load.
	if stats.DMABytes > int64(500*500*2+100000) {
		t.Errorf("RBM DMA bytes = %d, W should load once", stats.DMABytes)
	}
}

func TestGenRBMCDContrastiveDivergence(t *testing.T) {
	p, err := GenRBMCD(41)
	stats := execute(t, p, err)
	if stats.MACOps < 3*500*500 {
		t.Errorf("RBM-CD MACs = %d", stats.MACOps)
	}
	if p.Name != "RBM-CD" {
		t.Errorf("name %q", p.Name)
	}
}

func TestGenCNNLeNet5MatchesReference(t *testing.T) {
	p, err := GenCNN(47)
	stats := execute(t, p, err)
	// LeNet-5 is the scalar/control-heavy benchmark (Section V-B2): its
	// dynamic stream must be dominated by loop bookkeeping.
	mix := stats.ByType
	if mix[4] < mix[3] { // scalar >= vector dynamically
		t.Logf("dynamic mix: %v (informational)", mix)
	}
	// C1 117600 + C2 240000 + FCs 58920 = 416520 exactly.
	if stats.MACOps != 416520 {
		t.Errorf("CNN MACs = %d, want 416520", stats.MACOps)
	}
	if stats.BranchesTaken < 600 {
		t.Errorf("CNN taken branches = %d", stats.BranchesTaken)
	}
}

func TestAllTenBenchmarksGenerateAndVerify(t *testing.T) {
	progs, err := All(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 10 {
		t.Fatalf("%d benchmarks, want 10", len(progs))
	}
	for _, p := range progs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			m := newSim(t, sim.DefaultConfig())
			if _, err := p.Execute(m); err != nil {
				t.Fatal(err)
			}
			if p.Len() == 0 {
				t.Error("empty program")
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("MLP", 1); err != nil {
		t.Error(err)
	}
	if _, err := ByName("Logistic", 1); err != nil {
		t.Error(err)
	}
	if _, err := ByName("Logistic-Training", 1); err != nil {
		t.Error(err)
	}
	if _, err := ByName("RBM-CD", 1); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestStaticInstructionMixesSane(t *testing.T) {
	progs, err := All(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range progs {
		mix := p.TypeMix()
		total := 0
		for _, n := range mix {
			total += n
		}
		if total != p.Len() {
			t.Errorf("%s: mix total %d != length %d", p.Name, total, p.Len())
		}
	}
	// Table III structural expectations: the CNN's nested loops make it
	// the longest program; the MLP is among the most compact.
	byName := map[string]*Program{}
	for _, p := range progs {
		byName[p.Name] = p
	}
	if byName["CNN"].Len() <= byName["MLP"].Len() {
		t.Error("CNN should emit more static code than MLP")
	}
}

func TestAllBenchmarksAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for _, seed := range []uint64{2, 31, 97} {
		seed := seed
		progs, err := All(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, p := range progs {
			p := p
			t.Run(fmt.Sprintf("%s/seed%d", p.Name, seed), func(t *testing.T) {
				t.Parallel()
				m := newSim(t, sim.DefaultConfig())
				if _, err := p.Execute(m); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestLogisticAcrossSeeds(t *testing.T) {
	for _, seed := range []uint64{1, 5, 123} {
		p, err := GenLogistic(seed)
		if err != nil {
			t.Fatal(err)
		}
		m := newSim(t, sim.DefaultConfig())
		if _, err := p.Execute(m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestAllocatorAlignmentAndOverflow(t *testing.T) {
	a := alloc{name: "test", cap: 256}
	first := a.take(10)
	if first != 0 {
		t.Errorf("first allocation at %d", first)
	}
	second := a.take(10)
	if second != 64 {
		t.Errorf("allocations must be 64-byte aligned, got %d", second)
	}
	if e := a.takeElems(8); e != 128 {
		t.Errorf("element allocation at %d", e)
	}
	defer func() {
		if recover() == nil {
			t.Error("allocator overflow should panic")
		}
	}()
	a.take(256)
}

func TestGeneratedSourcesAreCommented(t *testing.T) {
	progs, err := All(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range progs {
		if !strings.Contains(p.Source, "//") {
			t.Errorf("%s: generated source has no comments", p.Name)
		}
		if !strings.Contains(p.Source, "Table III") {
			t.Errorf("%s: generated source missing provenance comment", p.Name)
		}
	}
}

func TestGenLogisticTrainingMatchesReference(t *testing.T) {
	p, err := GenLogisticTraining(9)
	execute(t, p, err)
	if p.Name != "Logistic-Training" {
		t.Errorf("name %q", p.Name)
	}
}

func TestTiledElementwiseBeyondScratchpadCapacity(t *testing.T) {
	// 100,000 elements = 200 KB per operand, far past the 64 KB vector
	// scratchpad: the generated program must stream tiles and still match
	// the reference, including the 1,696-element remainder tile.
	ops := []core.Opcode{core.VAV, core.VSV, core.VMV, core.VGTM}
	for _, op := range ops {
		op := op
		t.Run(op.String(), func(t *testing.T) {
			p, err := GenTiledElementwise(op, 100_000, 8192, 13)
			if err != nil {
				t.Fatal(err)
			}
			m := newSim(t, sim.DefaultConfig())
			stats, err := p.Execute(m)
			if err != nil {
				t.Fatal(err)
			}
			// 3 streams x 200 KB of DMA traffic.
			if stats.DMABytes < 3*200_000 {
				t.Errorf("DMA bytes = %d", stats.DMABytes)
			}
		})
	}
}

func TestTiledElementwiseRejectsBadShapes(t *testing.T) {
	if _, err := GenTiledElementwise(core.VEXP, 100, 10, 1); err == nil {
		t.Error("unary op should be rejected")
	}
	if _, err := GenTiledElementwise(core.VAV, 0, 10, 1); err == nil {
		t.Error("zero length should be rejected")
	}
	if _, err := GenTiledElementwise(core.VAV, 100, 20000, 1); err == nil {
		t.Error("tile exceeding scratchpad should be rejected")
	}
}

func TestTiledExactTileMultiple(t *testing.T) {
	// No remainder path.
	p, err := GenTiledElementwise(core.VAV, 4096, 1024, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := newSim(t, sim.DefaultConfig())
	if _, err := p.Execute(m); err != nil {
		t.Fatal(err)
	}
}

// TestFunctionalResultsIndependentOfMicroarchitecture pins the separation
// between the timing model and functional execution: shrinking queues,
// narrowing issue, or collapsing the scratchpad banks changes cycle counts
// but must never change a single output bit.
func TestFunctionalResultsIndependentOfMicroarchitecture(t *testing.T) {
	configs := []func(*sim.Config){
		func(c *sim.Config) {},
		func(c *sim.Config) { c.IssueWidth = 1; c.IssueQueueDepth = 1; c.ROBDepth = 2 },
		func(c *sim.Config) { c.SpadBanks = 1; c.MemQueueDepth = 1 },
		func(c *sim.Config) { c.DMABytesPerCycle = 4; c.BranchPenaltyCycles = 13 },
	}
	for _, name := range []string{"MLP", "HNN", "SOM"} {
		p, err := ByName(name, 17)
		if err != nil {
			t.Fatal(err)
		}
		var golden []int64
		for ci, mod := range configs {
			cfg := sim.DefaultConfig()
			mod(&cfg)
			m := newSim(t, cfg)
			stats, err := p.Execute(m) // Execute verifies outputs already
			if err != nil {
				t.Fatalf("%s config %d: %v", name, ci, err)
			}
			// Also compare the raw output regions bit for bit.
			var sig []int64
			for _, r := range p.Results {
				got, err := m.ReadMainNums(r.Addr, r.N)
				if err != nil {
					t.Fatal(err)
				}
				for _, v := range got {
					sig = append(sig, int64(v))
				}
			}
			_ = stats
			if ci == 0 {
				golden = sig
				continue
			}
			if len(sig) != len(golden) {
				t.Fatalf("%s config %d: signature length changed", name, ci)
			}
			for i := range sig {
				if sig[i] != golden[i] {
					t.Fatalf("%s config %d: output bit changed at %d", name, ci, i)
				}
			}
		}
	}
}
