package codegen

import (
	"fmt"
	"math"

	"cambricon/internal/asm"
	"cambricon/internal/core"
	"cambricon/internal/fixed"
	"cambricon/internal/nn"
	"cambricon/internal/sim"
	"cambricon/internal/workload"
)

// Boltzmann-family constants.
const (
	bmProbTol = 0.06
	rbmEta    = 0.5
	rbmWTol   = 0.03
)

// GenBM lowers the Table III Boltzmann machine benchmark (V(500)-H(500)):
// workload.GibbsSteps hidden-layer Gibbs updates following the Fig. 7 BM
// fragment — MMV for both the visible (W v) and lateral (L h) terms, the
// sigmoid chain, RV for the uniform draws and VGT for the threshold.
//
// W (500 KB) stays resident in the matrix scratchpad, but W plus the
// lateral matrix L would exceed the 768 KB capacity, so L streams through a
// half-matrix tile each step — the operand decomposition the paper assigns
// to the compiler when operands exceed scratchpad capacity (Section II-B).
//
// Sampling makes outputs probabilistic, so verification stores each step's
// probabilities p_t and draws r_t: the check recomputes p_t in float64 from
// the previous (bit-exact) hidden state, bounds |p_sim - p_ref|, and
// replays the threshold on the accelerator's own fixed-point values so the
// final hidden state must match exactly.
func GenBM(seed uint64) (*Program, error) {
	nv, nh := nn.BMBenchmark()
	net := nn.NewBM(nv, nh, seed).QuantizeParams()
	rng := nn.NewRNG(seed + 1)
	v := binaryVec(rng, nv)
	h0 := binaryVec(rng, nh)
	steps := workload.GibbsSteps

	g := newGen()
	var b asm.Builder

	vMain := g.data(v)
	hMain := g.data(h0)
	wMain := g.data(net.W.Data)
	lMain := g.data(net.L.Data)
	bMain := g.data(net.B)
	pMain := g.outAddr(steps * nh)
	rMain := g.outAddr(steps * nh)
	hOutMain := g.outAddr(nh)

	half := nh / 2
	wM := g.mspadA.takeElems(nh * nv)
	lTileM := g.mspadA.takeElems(half * nh)
	vV := g.vspadA.takeElems(nv)
	hV := g.vspadA.takeElems(nh)
	wvV := g.vspadA.takeElems(nh)
	lhV := g.vspadA.takeElems(nh)
	bV := g.vspadA.takeElems(nh)
	pV := g.vspadA.takeElems(nh)
	rV := g.vspadA.takeElems(nh)
	tmpV := g.vspadA.takeElems(nh)

	const (
		rNV    = 0
		rNH    = 1
		rHalf  = 2
		rSz    = 3
		rv     = 4
		rh     = 5
		rWv    = 6
		rLh    = 7
		rLh2   = 8 // second half of the lateral product
		rB     = 9
		rP     = 10
		rR     = 11
		rTmp   = 12
		rW     = 13
		rLTile = 14
		rPCur  = 15
		rRCur  = 16
		rSteps = 17
	)

	b.Comment("Boltzmann machine V(%d)-H(%d), %d Gibbs steps (Table III, Fig. 7)", nv, nh, steps)
	loadImm(&b, rNV, int32(nv))
	loadImm(&b, rNH, int32(nh))
	loadImm(&b, rHalf, int32(half))
	loadImm(&b, rv, int32(vV))
	b.Opc(core.VLOAD, "load visible vector", asm.R(rv), asm.R(rNV), asm.Imm(int32(vMain)))
	loadImm(&b, rh, int32(hV))
	b.Opc(core.VLOAD, "load hidden vector", asm.R(rh), asm.R(rNH), asm.Imm(int32(hMain)))
	loadImm(&b, rB, int32(bV))
	b.Opc(core.VLOAD, "load hidden bias", asm.R(rB), asm.R(rNH), asm.Imm(int32(bMain)))
	loadImm(&b, rW, int32(wM))
	loadImm(&b, rSz, int32(nh*nv))
	b.Opc(core.MLOAD, "load W (resident)", asm.R(rW), asm.R(rSz), asm.Imm(int32(wMain)))

	loadImm(&b, rWv, int32(wvV))
	loadImm(&b, rLh, int32(lhV))
	loadImm(&b, rLh2, int32(lhV+fixed.Bytes(half)))
	loadImm(&b, rP, int32(pV))
	loadImm(&b, rR, int32(rV))
	loadImm(&b, rTmp, int32(tmpV))
	loadImm(&b, rLTile, int32(lTileM))
	loadImm(&b, rPCur, int32(pMain))
	loadImm(&b, rRCur, int32(rMain))
	loadImm(&b, rSteps, int32(steps))

	top := b.NewLabel("gibbs")
	b.Label(top)
	b.Opc(core.MMV, "Wv", asm.R(rWv), asm.R(rNH), asm.R(rW), asm.R(rv), asm.R(rNV))
	b.Comment("L exceeds remaining scratchpad: stream it in half-matrix tiles")
	loadImm(&b, rSz, int32(half*nh))
	b.Opc(core.MLOAD, "L rows 0..%d", asm.R(rLTile), asm.R(rSz), asm.Imm(int32(lMain)))
	b.Opc(core.MMV, "Lh (low half)", asm.R(rLh), asm.R(rHalf), asm.R(rLTile), asm.R(rh), asm.R(rNH))
	b.Opc(core.MLOAD, "L rows %d..%d", asm.R(rLTile), asm.R(rSz), asm.Imm(int32(lMain+fixed.Bytes(half*nh))))
	b.Opc(core.MMV, "Lh (high half)", asm.R(rLh2), asm.R(rHalf), asm.R(rLTile), asm.R(rh), asm.R(rNH))
	b.Opc(core.VAV, "Wv + Lh", asm.R(rP), asm.R(rNH), asm.R(rWv), asm.R(rLh))
	b.Opc(core.VAV, "+ bias", asm.R(rP), asm.R(rNH), asm.R(rP), asm.R(rB))
	emitSigmoid(&b, rP, rP, sigmoidRegs{size: rNH, tmp: rTmp})
	b.Opc(core.VSTORE, "record p_t", asm.R(rP), asm.R(rNH), asm.R(rPCur), asm.Imm(0))
	b.Op(core.SADD, asm.R(rPCur), asm.R(rPCur), asm.Imm(int32(fixed.Bytes(nh))))
	b.Opc(core.RV, "r ~ U[0,1)", asm.R(rR), asm.R(rNH))
	b.Opc(core.VSTORE, "record r_t", asm.R(rR), asm.R(rNH), asm.R(rRCur), asm.Imm(0))
	b.Op(core.SADD, asm.R(rRCur), asm.R(rRCur), asm.Imm(int32(fixed.Bytes(nh))))
	b.Opc(core.VGT, "h = (r > p) ? 1 : 0", asm.R(rh), asm.R(rNH), asm.R(rR), asm.R(rP))
	b.Op(core.SADD, asm.R(rSteps), asm.R(rSteps), asm.Imm(-1))
	b.Op(core.CB, asm.Lbl(top), asm.R(rSteps))

	b.Opc(core.VSTORE, "store final hidden state", asm.R(rh), asm.R(rNH), asm.Imm(int32(hOutMain)))

	prog, err := finish("BM", &b, g)
	if err != nil {
		return nil, err
	}
	prog.Checks = append(prog.Checks, bmCheck(net, v, h0, steps, pMain, rMain, hOutMain))
	return prog, nil
}

// bmCheck validates the Gibbs chain: probabilities against the float
// reference, thresholds bit-exactly on the accelerator's own values.
func bmCheck(net *nn.BM, v, h0 nn.Vec, steps, pMain, rMain, hOutMain int) func(*sim.Machine) error {
	return func(m *sim.Machine) error {
		h := append(nn.Vec(nil), h0...)
		nh := net.H
		for t := 0; t < steps; t++ {
			pSim, err := m.ReadMainNums(pMain+t*fixed.Bytes(nh), nh)
			if err != nil {
				return err
			}
			rSim, err := m.ReadMainNums(rMain+t*fixed.Bytes(nh), nh)
			if err != nil {
				return err
			}
			pRef := net.HiddenProb(v, h)
			for i := range pRef {
				// Compare against the saturating sigmoid the datapath
				// actually computes.
				want := nn.SigmoidSat(logit(pRef[i]))
				if d := math.Abs(pSim[i].Float() - want); d > bmProbTol {
					return fmt.Errorf("step %d: p[%d] = %v, want %v (err %.4f)",
						t, i, pSim[i].Float(), want, d)
				}
			}
			for i := range h {
				if rSim[i] > pSim[i] {
					h[i] = 1
				} else {
					h[i] = 0
				}
			}
		}
		got, err := m.ReadMainNums(hOutMain, nh)
		if err != nil {
			return err
		}
		for i, gv := range fixed.Floats(got) {
			if gv != h[i] {
				return fmt.Errorf("final h[%d] = %v, want %v", i, gv, h[i])
			}
		}
		return nil
	}
}

// logit inverts the sigmoid for the saturation-aware comparison.
func logit(p float64) float64 {
	const eps = 1e-12
	p = math.Min(math.Max(p, eps), 1-eps)
	return math.Log(p / (1 - p))
}

// binaryVec draws a uniform 0/1 vector.
func binaryVec(rng *nn.RNG, n int) nn.Vec {
	v := make(nn.Vec, n)
	for i := range v {
		if rng.Float64() < 0.5 {
			v[i] = 1
		}
	}
	return v
}
