package codegen

import (
	"cambricon/internal/asm"
	"cambricon/internal/core"
	"cambricon/internal/nn"
)

// Autoencoder generation constants.
const (
	aeEta = 0.5
	// Tolerances: the forward pass crosses four sigmoid layers; the
	// pretraining quantities are small gradients where absolute
	// fixed-point error dominates.
	aeForwardTol = 0.08
	aeReconTol   = 0.05
	aeParamTol   = 0.04
)

// GenAutoencoder lowers the Table III autoencoder benchmarks
// (320-200-100-50-10 stacks pretrained on MNIST-like data): the stacked
// feedforward pass plus one greedy pretraining step of the first layer —
// tied-weight decode via VMM, reconstruction deltas from element-wise
// vector code, and the OP/MMS/MSM outer-product weight updates of
// Section III-A. sparse adds the bounded sparsity surrogate beta*(h-rho).
// The on-device training work is what DaDianNao's four layer-types cannot
// express (Section V-B1).
func GenAutoencoder(sparse bool, seed uint64) (*Program, error) {
	sizes := nn.AutoencoderSizes()
	net := nn.NewAutoencoder(sizes, sparse, seed).QuantizeParams()
	rng := nn.NewRNG(seed + 1)
	x := nn.Quantize(rng.FillVec(sizes[0], 0, 1))
	wantForward := net.Forward(x)
	// The pretraining expectations come from a cloned reference (the
	// update mutates parameters).
	ref := nn.NewAutoencoder(sizes, sparse, seed).QuantizeParams()
	wantRecon := ref.PretrainStep(0, x, aeEta)
	wantW := append(nn.Vec(nil), ref.MLP.W[0].Data...)
	wantB := append(nn.Vec(nil), ref.MLP.B[0]...)

	name := "Autoencoder"
	if sparse {
		name = "Sparse Autoencoder"
	}

	g := newGen()
	var b asm.Builder

	inMain := g.data(x)
	wMain := make([]int, net.MLP.Layers())
	bMain := make([]int, net.MLP.Layers())
	for l := range wMain {
		wMain[l] = g.data(net.MLP.W[l].Data)
		bMain[l] = g.data(net.MLP.B[l])
	}
	outMain := g.out("forward output", len(wantForward), wantForward, aeForwardTol)
	reconMain := g.out("reconstruction", len(wantRecon), wantRecon, aeReconTol)
	wOutMain := g.out("updated W1", len(wantW), wantW, aeParamTol)
	bOutMain := g.out("updated b1", len(wantB), wantB, aeParamTol)

	in0, h0 := sizes[0], sizes[1]
	// Scratchpad layout: per-layer activations (layer-1 activations are
	// reused by the pretraining step), plus the element-wise work areas.
	actV := make([]int, len(sizes))
	for i, s := range sizes {
		actV[i] = g.vspadA.takeElems(s)
	}
	maxW := 0
	for _, s := range sizes {
		if s > maxW {
			maxW = s
		}
	}
	biasV := g.vspadA.takeElems(h0)  // widest bias; reused per layer
	tmpV := g.vspadA.takeElems(maxW) // sigmoid scratch for the widest vector
	xrV := g.vspadA.takeElems(in0)
	eV := g.vspadA.takeElems(in0)
	onesXV := g.vspadA.takeElems(in0)
	dXrV := g.vspadA.takeElems(in0)
	dHV := g.vspadA.takeElems(h0)
	backV := g.vspadA.takeElems(h0)
	constV := g.vspadA.takeElems(h0)
	wSpad := make([]int, net.MLP.Layers())
	for l := range wSpad {
		wSpad[l] = g.mspadA.takeElems(sizes[l] * sizes[l+1])
	}
	dwM := g.mspadA.takeElems(in0 * h0)

	const (
		rInSize  = 0
		rOutSize = 1
		rMatSize = 2
		rX       = 3
		rW       = 4
		rB       = 5
		rY       = 6
		rTmp     = 7
		rXr      = 8
		rE       = 9
		rOnesX   = 10
		rDXr     = 11
		rDH      = 12
		rBack    = 13
		rConst   = 14
		rDW      = 15
		rH       = 16
		rX0      = 17
		rW0      = 18
		rB0      = 19
	)

	b.Comment("%s %v: stacked feedforward pass (Table III)", name, sizes)
	loadImm(&b, rInSize, int32(sizes[0]))
	loadImm(&b, rX, int32(actV[0]))
	b.Opc(core.VLOAD, "load input", asm.R(rX), asm.R(rInSize), asm.Imm(int32(inMain)))
	for l := 0; l < net.MLP.Layers(); l++ {
		inS, outS := sizes[l], sizes[l+1]
		b.Comment("layer %d: %d -> %d", l+1, inS, outS)
		loadImm(&b, rInSize, int32(inS))
		loadImm(&b, rOutSize, int32(outS))
		loadImm(&b, rMatSize, int32(inS*outS))
		loadImm(&b, rW, int32(wSpad[l]))
		b.Opc(core.MLOAD, "load weights", asm.R(rW), asm.R(rMatSize), asm.Imm(int32(wMain[l])))
		loadImm(&b, rB, int32(biasV))
		b.Opc(core.VLOAD, "load bias", asm.R(rB), asm.R(rOutSize), asm.Imm(int32(bMain[l])))
		loadImm(&b, rX, int32(actV[l]))
		loadImm(&b, rY, int32(actV[l+1]))
		loadImm(&b, rTmp, int32(tmpV))
		b.Opc(core.MMV, "Wx", asm.R(rY), asm.R(rOutSize), asm.R(rW), asm.R(rX), asm.R(rInSize))
		b.Op(core.VAV, asm.R(rY), asm.R(rOutSize), asm.R(rY), asm.R(rB))
		emitSigmoid(&b, rY, rY, sigmoidRegs{size: rOutSize, tmp: rTmp})
	}
	b.Opc(core.VSTORE, "store forward output", asm.R(rY), asm.R(rOutSize), asm.Imm(int32(outMain)))

	b.Comment("greedy pretraining step of layer 1 (tied weights)")
	loadImm(&b, rInSize, int32(in0))
	loadImm(&b, rOutSize, int32(h0))
	loadImm(&b, rMatSize, int32(in0*h0))
	loadImm(&b, rX0, int32(actV[0]))
	loadImm(&b, rH, int32(actV[1]))
	loadImm(&b, rW0, int32(wSpad[0]))
	loadImm(&b, rXr, int32(xrV))
	loadImm(&b, rTmp, int32(tmpV))
	b.Opc(core.VMM, "decode: W^T h", asm.R(rXr), asm.R(rInSize), asm.R(rW0), asm.R(rH), asm.R(rOutSize))
	emitSigmoid(&b, rXr, rXr, sigmoidRegs{size: rInSize, tmp: rTmp})
	b.Opc(core.VSTORE, "store reconstruction", asm.R(rXr), asm.R(rInSize), asm.Imm(int32(reconMain)))

	loadImm(&b, rE, int32(eV))
	b.Opc(core.VSV, "e = xr - x", asm.R(rE), asm.R(rInSize), asm.R(rXr), asm.R(rX0))
	loadImm(&b, rOnesX, int32(onesXV))
	emitConstVecImm(&b, rOnesX, rInSize, 1)
	loadImm(&b, rDXr, int32(dXrV))
	b.Opc(core.VSV, "1 - xr", asm.R(rDXr), asm.R(rInSize), asm.R(rOnesX), asm.R(rXr))
	b.Opc(core.VMV, "xr (1 - xr)", asm.R(rDXr), asm.R(rInSize), asm.R(rDXr), asm.R(rXr))
	b.Opc(core.VMV, "dXr = e xr (1 - xr)", asm.R(rDXr), asm.R(rInSize), asm.R(rDXr), asm.R(rE))

	loadImm(&b, rBack, int32(backV))
	b.Opc(core.MMV, "back = W dXr", asm.R(rBack), asm.R(rOutSize), asm.R(rW0), asm.R(rDXr), asm.R(rInSize))
	loadImm(&b, rDH, int32(dHV))
	loadImm(&b, rConst, int32(constV))
	emitConstVecImm(&b, rConst, rOutSize, 1)
	b.Opc(core.VSV, "1 - h", asm.R(rDH), asm.R(rOutSize), asm.R(rConst), asm.R(rH))
	b.Opc(core.VMV, "h (1 - h)", asm.R(rDH), asm.R(rOutSize), asm.R(rDH), asm.R(rH))
	b.Opc(core.VMV, "dH = back h (1 - h)", asm.R(rDH), asm.R(rOutSize), asm.R(rDH), asm.R(rBack))
	if sparse {
		b.Comment("sparsity surrogate: dH += beta (h - rho)")
		b.Opc(core.VAS, "h - rho", asm.R(rConst), asm.R(rOutSize), asm.R(rH), asm.Imm(fix(-net.Rho)))
		loadImm(&b, rTmp, int32(tmpV))
		emitConstVecImm(&b, rTmp, rOutSize, net.Beta)
		b.Opc(core.VMV, "beta (h - rho)", asm.R(rConst), asm.R(rOutSize), asm.R(rConst), asm.R(rTmp))
		b.Op(core.VAV, asm.R(rDH), asm.R(rOutSize), asm.R(rDH), asm.R(rConst))
	}

	b.Comment("tied-weight outer-product updates")
	loadImm(&b, rDW, int32(dwM))
	b.Opc(core.OP, "dW = dH (x) x", asm.R(rDW), asm.R(rDH), asm.R(rOutSize), asm.R(rX0), asm.R(rInSize))
	b.Opc(core.MMS, "dW *= eta", asm.R(rDW), asm.R(rMatSize), asm.R(rDW), asm.Imm(fix(aeEta)))
	b.Opc(core.MSM, "W -= dW", asm.R(rW0), asm.R(rMatSize), asm.R(rW0), asm.R(rDW))
	b.Opc(core.OP, "dW2 = h (x) dXr", asm.R(rDW), asm.R(rH), asm.R(rOutSize), asm.R(rDXr), asm.R(rInSize))
	b.Opc(core.MMS, "dW2 *= eta", asm.R(rDW), asm.R(rMatSize), asm.R(rDW), asm.Imm(fix(aeEta)))
	b.Opc(core.MSM, "W -= dW2", asm.R(rW0), asm.R(rMatSize), asm.R(rW0), asm.R(rDW))

	b.Comment("bias update b -= eta dH")
	loadImm(&b, rB0, int32(biasV))
	b.Opc(core.VLOAD, "reload layer-1 bias", asm.R(rB0), asm.R(rOutSize), asm.Imm(int32(bMain[0])))
	emitConstVecImm(&b, rConst, rOutSize, aeEta)
	b.Opc(core.VMV, "eta dH", asm.R(rConst), asm.R(rOutSize), asm.R(rConst), asm.R(rDH))
	b.Op(core.VSV, asm.R(rB0), asm.R(rOutSize), asm.R(rB0), asm.R(rConst))

	b.Opc(core.MSTORE, "store updated W1", asm.R(rW0), asm.R(rMatSize), asm.Imm(int32(wOutMain)))
	b.Opc(core.VSTORE, "store updated b1", asm.R(rB0), asm.R(rOutSize), asm.Imm(int32(bOutMain)))

	return finish(name, &b, g)
}
