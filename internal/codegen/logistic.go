package codegen

import (
	"cambricon/internal/asm"
	"cambricon/internal/core"
	"cambricon/internal/nn"
)

// logEta is the §VI training-phase learning rate.
const logEta = 0.25

// LogisticBatch and LogisticDim size the Section VI extension example.
const (
	LogisticBatch = 32
	LogisticDim   = 16
)

// GenLogistic lowers the Section VI logistic-regression extension: a single
// prediction via the dot-product instruction plus scalar transcendentals,
// and a batched prediction that computes n inputs in parallel with one MMV
// (the batch matrix times the parameter vector) followed by the vector
// sigmoid chain — exactly the decomposition the paper sketches.
func GenLogistic(seed uint64) (*Program, error) {
	rng := nn.NewRNG(seed)
	theta := nn.Quantize(rng.FillVec(LogisticDim, -0.5, 0.5))
	batch := make([]nn.Vec, LogisticBatch)
	flat := make(nn.Vec, 0, LogisticBatch*LogisticDim)
	for i := range batch {
		batch[i] = nn.Quantize(rng.FillVec(LogisticDim, -1, 1))
		flat = append(flat, batch[i]...)
	}
	wantBatch := make([]float64, LogisticBatch)
	for i, x := range batch {
		wantBatch[i] = nn.Sigmoid(nn.Dot(theta, x))
	}
	wantOne := []float64{wantBatch[0]}

	g := newGen()
	var b asm.Builder

	thetaMain := g.data(theta)
	xMain := g.data(flat)
	oneOut := g.out("single prediction", 1, wantOne, 0.02)
	batchOut := g.out("batch predictions", LogisticBatch, wantBatch, 0.02)

	thetaV := g.vspadA.takeElems(LogisticDim)
	x0V := g.vspadA.takeElems(LogisticDim)
	yV := g.vspadA.takeElems(LogisticBatch)
	tmpV := g.vspadA.takeElems(LogisticBatch)
	xM := g.mspadA.takeElems(LogisticBatch * LogisticDim)

	const (
		rDim   = 0
		rBatch = 1
		rMat   = 2
		rTheta = 3
		rX0    = 4
		rXM    = 5
		rY     = 6
		rTmp   = 7
		rAcc   = 8 // scalar accumulator
		rExp   = 9
		rDen   = 10
	)

	b.Comment("logistic regression (Section VI extension)")
	loadImm(&b, rDim, LogisticDim)
	loadImm(&b, rBatch, LogisticBatch)
	loadImm(&b, rMat, LogisticBatch*LogisticDim)
	loadImm(&b, rTheta, int32(thetaV))
	b.Opc(core.VLOAD, "load parameters theta", asm.R(rTheta), asm.R(rDim), asm.Imm(int32(thetaMain)))

	b.Comment("prediction phase, single input: dot product + scalar sigmoid")
	loadImm(&b, rX0, int32(x0V))
	b.Opc(core.VLOAD, "load input x0", asm.R(rX0), asm.R(rDim), asm.Imm(int32(xMain)))
	b.Opc(core.VDOT, "a = theta . x0", asm.R(rAcc), asm.R(rDim), asm.R(rTheta), asm.R(rX0))
	b.Opc(core.SEXP, "e = exp(a)", asm.R(rExp), asm.R(rAcc))
	b.Opc(core.SADD, "d = 1 + e", asm.R(rDen), asm.R(rExp), asm.Imm(fix(1)))
	// Scalar division on the GPR file is integer division; produce the
	// Q8.8 quotient by pre-scaling the numerator by 2^8.
	b.Opc(core.SMUL, "numerator << 8", asm.R(rExp), asm.R(rExp), asm.Imm(256))
	b.Opc(core.SDIV, "y0 = e/(1+e) in Q8.8", asm.R(rAcc), asm.R(rExp), asm.R(rDen))
	b.Opc(core.SSTORE, "store single prediction", asm.R(rAcc), asm.Imm(int32(oneOut)))

	b.Comment("prediction phase, batch of %d inputs: one MMV", LogisticBatch)
	loadImm(&b, rXM, int32(xM))
	b.Opc(core.MLOAD, "load input batch as matrix", asm.R(rXM), asm.R(rMat), asm.Imm(int32(xMain)))
	loadImm(&b, rY, int32(yV))
	loadImm(&b, rTmp, int32(tmpV))
	b.Opc(core.MMV, "a = X theta", asm.R(rY), asm.R(rBatch), asm.R(rXM), asm.R(rTheta), asm.R(rDim))
	emitSigmoid(&b, rY, rY, sigmoidRegs{size: rBatch, tmp: rTmp})
	b.Opc(core.VSTORE, "store batch predictions", asm.R(rY), asm.R(rBatch), asm.Imm(int32(batchOut)))

	return finish("Logistic", &b, g)
}

// GenLogisticTraining lowers the Section VI training phase: "a gradient
// descent algorithm similar to the training phase of MLP". One batch
// gradient step over LogisticBatch samples:
//
//	p     = sigmoid(X theta)          one MMV + the sigmoid chain
//	e     = p - y                     VSV
//	grad  = X^T e                     one VMM (no transpose in memory)
//	theta = theta - eta/n * grad      constant vector + VMV + VSV
//
// The updated parameters are verified against the float64 reference.
func GenLogisticTraining(seed uint64) (*Program, error) {
	rng := nn.NewRNG(seed)
	theta := nn.Quantize(rng.FillVec(LogisticDim, -0.5, 0.5))
	batch := make([]nn.Vec, LogisticBatch)
	flat := make(nn.Vec, 0, LogisticBatch*LogisticDim)
	labels := make(nn.Vec, LogisticBatch)
	for i := range batch {
		batch[i] = nn.Quantize(rng.FillVec(LogisticDim, -1, 1))
		flat = append(flat, batch[i]...)
		if rng.Float64() < 0.5 {
			labels[i] = 1
		}
	}

	// Float reference for one gradient step on quantized parameters.
	wantTheta := append(nn.Vec(nil), theta...)
	probs := make(nn.Vec, LogisticBatch)
	for i, x := range batch {
		probs[i] = nn.Sigmoid(nn.Dot(wantTheta, x))
	}
	scale := logEta / LogisticBatch
	for j := 0; j < LogisticDim; j++ {
		var grad float64
		for i, x := range batch {
			grad += (probs[i] - labels[i]) * x[j]
		}
		wantTheta[j] -= scale * grad
	}

	g := newGen()
	var b asm.Builder

	thetaMain := g.data(theta)
	xMain := g.data(flat)
	yMain := g.data(labels)
	thetaOut := g.out("updated theta", LogisticDim, wantTheta, 0.03)

	thetaV := g.vspadA.takeElems(LogisticDim)
	yV := g.vspadA.takeElems(LogisticBatch)
	pV := g.vspadA.takeElems(LogisticBatch)
	eV := g.vspadA.takeElems(LogisticBatch)
	gradV := g.vspadA.takeElems(LogisticDim)
	constV := g.vspadA.takeElems(LogisticDim)
	tmpV := g.vspadA.takeElems(LogisticBatch)
	xM := g.mspadA.takeElems(LogisticBatch * LogisticDim)

	const (
		rDim   = 0
		rBatch = 1
		rMat   = 2
		rTheta = 3
		rY     = 4
		rP     = 5
		rE     = 6
		rGrad  = 7
		rConst = 8
		rTmp   = 9
		rXM    = 10
	)

	b.Comment("logistic regression training phase (Section VI): one batch gradient step")
	loadImm(&b, rDim, LogisticDim)
	loadImm(&b, rBatch, LogisticBatch)
	loadImm(&b, rMat, LogisticBatch*LogisticDim)
	loadImm(&b, rTheta, int32(thetaV))
	b.Opc(core.VLOAD, "load theta", asm.R(rTheta), asm.R(rDim), asm.Imm(int32(thetaMain)))
	loadImm(&b, rY, int32(yV))
	b.Opc(core.VLOAD, "load labels", asm.R(rY), asm.R(rBatch), asm.Imm(int32(yMain)))
	loadImm(&b, rXM, int32(xM))
	b.Opc(core.MLOAD, "load sample batch X", asm.R(rXM), asm.R(rMat), asm.Imm(int32(xMain)))

	loadImm(&b, rP, int32(pV))
	loadImm(&b, rTmp, int32(tmpV))
	b.Opc(core.MMV, "p = X theta", asm.R(rP), asm.R(rBatch), asm.R(rXM), asm.R(rTheta), asm.R(rDim))
	emitSigmoid(&b, rP, rP, sigmoidRegs{size: rBatch, tmp: rTmp})
	loadImm(&b, rE, int32(eV))
	b.Opc(core.VSV, "e = p - y", asm.R(rE), asm.R(rBatch), asm.R(rP), asm.R(rY))
	loadImm(&b, rGrad, int32(gradV))
	b.Opc(core.VMM, "grad = X^T e", asm.R(rGrad), asm.R(rDim), asm.R(rXM), asm.R(rE), asm.R(rBatch))
	loadImm(&b, rConst, int32(constV))
	emitConstVecImm(&b, rConst, rDim, logEta/LogisticBatch)
	b.Opc(core.VMV, "scale gradient", asm.R(rGrad), asm.R(rDim), asm.R(rGrad), asm.R(rConst))
	b.Opc(core.VSV, "theta -= eta/n grad", asm.R(rTheta), asm.R(rDim), asm.R(rTheta), asm.R(rGrad))
	b.Opc(core.VSTORE, "store updated theta", asm.R(rTheta), asm.R(rDim), asm.Imm(int32(thetaOut)))

	return finish("Logistic-Training", &b, g)
}
