package codegen

import (
	"fmt"
	"math"

	"cambricon/internal/asm"
	"cambricon/internal/core"
	"cambricon/internal/fixed"
	"cambricon/internal/nn"
	"cambricon/internal/sim"
	"cambricon/internal/workload"
)

// SOM training constants (fixed-point friendly: eta=0.5, sigma=1).
const (
	somEta   = 0.5
	somSigma = 1.0
)

// GenSOM lowers the Table III self-organizing-map benchmark (64-dimensional
// inputs, 6x6 neuron grid): for each of SOMSteps inputs a best-matching-unit
// search (per-neuron VSV/VDOT distance plus a scalar argmin loop with
// SGT/SE/CB) and a neighborhood-weighted prototype update whose Gaussian
// factor comes from the scalar SEXP instruction. SOM is the one benchmark
// with no matrix instructions at all — exactly the kind of network that
// breaks layer-granularity ISAs (Section V-B1).
//
// Validation reads back the BMU index the accelerator chose at each step
// and replays the float update along that trajectory, so near-tie BMU picks
// cannot cascade into false failures; each pick is separately checked to be
// within fixed-point tolerance of optimal.
func GenSOM(seed uint64) (*Program, error) {
	in, gw, gh := nn.SOMBenchmark()
	neurons := gw * gh
	net := nn.NewSOM(in, gw, gh, seed).QuantizeParams()
	initW := append(nn.Vec(nil), net.W.Data...)
	rng := nn.NewRNG(seed + 1)
	inputs := make([]nn.Vec, workload.SOMSteps)
	flat := make(nn.Vec, 0, workload.SOMSteps*in)
	for i := range inputs {
		inputs[i] = nn.Quantize(rng.FillVec(in, 0, 1))
		flat = append(flat, inputs[i]...)
	}

	g := newGen()
	var b asm.Builder

	xMain := g.data(flat)
	bmuMain := g.outAddr(2 * workload.SOMSteps) // 32-bit words, one per step
	wOutMain := g.outAddr(neurons * in)

	wV := g.vspadA.takeElems(neurons * in) // prototypes, row-contiguous
	xV := g.vspadA.takeElems(in)
	diffV := g.vspadA.takeElems(in)
	constV := g.vspadA.takeElems(in)

	rowBytes := int32(fixed.Bytes(in))

	const (
		rIn      = 0  // input dimension
		rW       = 1  // prototype base address (vspad)
		rX       = 2  // current input address (vspad)
		rDiff    = 3  // difference buffer
		rConst   = 4  // constant vector buffer
		rRow     = 5  // current prototype row address
		rI       = 6  // neuron loop counter (counts down)
		rIdx     = 7  // current neuron index (counts up)
		rD       = 8  // current distance
		rBest    = 9  // best distance
		rBMU     = 10 // best neuron index
		rFlag    = 11 // comparison scratch
		rXMain   = 12 // main-memory input cursor
		rStep    = 13 // step loop counter
		rBMUMain = 14 // main-memory BMU cursor
		rBX      = 15 // BMU grid x
		rBY      = 16 // BMU grid y
		rIX      = 17 // neuron grid x
		rIY      = 18 // neuron grid y
		rT0      = 19 // scalar temp
		rT1      = 20 // scalar temp
		rTheta   = 21 // neighborhood factor (Q8.8)
		rMatSz   = 22 // full prototype block size
	)

	b.Comment("SOM %dx%d over %d-dim inputs (Table III), %d training steps",
		gw, gh, in, workload.SOMSteps)
	loadImm(&b, rIn, int32(in))
	loadImm(&b, rMatSz, int32(neurons*in))
	loadImm(&b, rW, int32(wV))
	b.Opc(core.VLOAD, "load all prototype rows", asm.R(rW), asm.R(rMatSz), asm.Imm(int32(g.data(initW))))
	loadImm(&b, rX, int32(xV))
	loadImm(&b, rDiff, int32(diffV))
	loadImm(&b, rConst, int32(constV))
	loadImm(&b, rXMain, int32(xMain))
	loadImm(&b, rBMUMain, int32(bmuMain))
	loadImm(&b, rStep, int32(workload.SOMSteps))

	stepTop := b.NewLabel("step")
	b.Label(stepTop)
	b.Opc(core.VLOAD, "load this step's input", asm.R(rX), asm.R(rIn), asm.R(rXMain), asm.Imm(0))
	b.Opc(core.SADD, "advance input cursor", asm.R(rXMain), asm.R(rXMain), asm.Imm(rowBytes))

	b.Comment("best-matching-unit search")
	loadImm(&b, rBest, int32(fixed.Max))
	loadImm(&b, rBMU, 0)
	loadImm(&b, rIdx, 0)
	loadImm(&b, rI, int32(neurons))
	b.Op(core.SMOVE, asm.R(rRow), asm.R(rW))
	bmuTop := b.NewLabel("bmu")
	bmuSkip := b.NewLabel("bmu_skip")
	b.Label(bmuTop)
	b.Opc(core.VSV, "diff = W[i] - x", asm.R(rDiff), asm.R(rIn), asm.R(rRow), asm.R(rX))
	b.Opc(core.VDOT, "d = |diff|^2", asm.R(rD), asm.R(rIn), asm.R(rDiff), asm.R(rDiff))
	b.Opc(core.SGT, "best > d ?", asm.R(rFlag), asm.R(rBest), asm.R(rD))
	b.Opc(core.SE, "invert for skip", asm.R(rFlag), asm.R(rFlag), asm.Imm(0))
	b.Op(core.CB, asm.Lbl(bmuSkip), asm.R(rFlag))
	b.Op(core.SMOVE, asm.R(rBest), asm.R(rD))
	b.Op(core.SMOVE, asm.R(rBMU), asm.R(rIdx))
	b.Label(bmuSkip)
	b.Opc(core.SADD, "next row", asm.R(rRow), asm.R(rRow), asm.Imm(rowBytes))
	b.Op(core.SADD, asm.R(rIdx), asm.R(rIdx), asm.Imm(1))
	b.Op(core.SADD, asm.R(rI), asm.R(rI), asm.Imm(-1))
	b.Op(core.CB, asm.Lbl(bmuTop), asm.R(rI))
	b.Opc(core.SSTORE, "record BMU choice", asm.R(rBMU), asm.R(rBMUMain), asm.Imm(0))
	b.Op(core.SADD, asm.R(rBMUMain), asm.R(rBMUMain), asm.Imm(4))

	b.Comment("neighborhood update: W[i] += eta * exp(-d2/(2 sigma^2)) * (x - W[i])")
	b.Opc(core.SDIV, "by = bmu / %d", asm.R(rBY), asm.R(rBMU), asm.Imm(int32(gw)))
	b.Op(core.SMUL, asm.R(rT0), asm.R(rBY), asm.Imm(int32(gw)))
	b.Opc(core.SSUB, "bx = bmu %% %d", asm.R(rBX), asm.R(rBMU), asm.R(rT0))
	loadImm(&b, rIdx, 0)
	loadImm(&b, rI, int32(neurons))
	b.Op(core.SMOVE, asm.R(rRow), asm.R(rW))
	updTop := b.NewLabel("upd")
	b.Label(updTop)
	b.Op(core.SDIV, asm.R(rIY), asm.R(rIdx), asm.Imm(int32(gw)))
	b.Op(core.SMUL, asm.R(rT0), asm.R(rIY), asm.Imm(int32(gw)))
	b.Op(core.SSUB, asm.R(rIX), asm.R(rIdx), asm.R(rT0))
	b.Opc(core.SSUB, "dx", asm.R(rT0), asm.R(rIX), asm.R(rBX))
	b.Op(core.SMUL, asm.R(rT0), asm.R(rT0), asm.R(rT0))
	b.Opc(core.SSUB, "dy", asm.R(rT1), asm.R(rIY), asm.R(rBY))
	b.Op(core.SMUL, asm.R(rT1), asm.R(rT1), asm.R(rT1))
	b.Opc(core.SADD, "lattice d2", asm.R(rT0), asm.R(rT0), asm.R(rT1))
	// a = -d2/(2 sigma^2) in Q8.8: multiply the integer d2 by
	// -256/(2*sigma^2).
	scale := int32(math.Round(-256 / (2 * somSigma * somSigma)))
	b.Opc(core.SMUL, "a = -d2/(2s^2) in Q8.8", asm.R(rT0), asm.R(rT0), asm.Imm(scale))
	b.Opc(core.SEXP, "theta = exp(a)", asm.R(rTheta), asm.R(rT0))
	b.Opc(core.SMUL, "theta * eta (Q16.16)", asm.R(rTheta), asm.R(rTheta), asm.Imm(fix(somEta)))
	b.Opc(core.SDIV, "back to Q8.8", asm.R(rTheta), asm.R(rTheta), asm.Imm(256))
	emitConstVec(&b, rConst, rIn, rTheta)
	b.Opc(core.VSV, "diff = x - W[i]", asm.R(rDiff), asm.R(rIn), asm.R(rX), asm.R(rRow))
	b.Opc(core.VMV, "scaled = theta_eta .* diff", asm.R(rDiff), asm.R(rIn), asm.R(rDiff), asm.R(rConst))
	b.Opc(core.VAV, "W[i] += scaled", asm.R(rRow), asm.R(rIn), asm.R(rRow), asm.R(rDiff))
	b.Op(core.SADD, asm.R(rRow), asm.R(rRow), asm.Imm(rowBytes))
	b.Op(core.SADD, asm.R(rIdx), asm.R(rIdx), asm.Imm(1))
	b.Op(core.SADD, asm.R(rI), asm.R(rI), asm.Imm(-1))
	b.Op(core.CB, asm.Lbl(updTop), asm.R(rI))

	b.Op(core.SADD, asm.R(rStep), asm.R(rStep), asm.Imm(-1))
	b.Op(core.CB, asm.Lbl(stepTop), asm.R(rStep))

	b.Opc(core.VSTORE, "store trained prototypes", asm.R(rW), asm.R(rMatSz), asm.Imm(int32(wOutMain)))

	prog, err := finish("SOM", &b, g)
	if err != nil {
		return nil, err
	}
	prog.Checks = append(prog.Checks, somCheck(initW, inputs, bmuMain, wOutMain, in, gw, gh))
	return prog, nil
}

// somCheck replays the training trajectory in float64 along the
// accelerator's own BMU choices and verifies (a) each BMU pick was within
// fixed-point tolerance of optimal and (b) the final prototypes match.
func somCheck(initW nn.Vec, inputs []nn.Vec, bmuMain, wOutMain, in, gw, gh int) func(*sim.Machine) error {
	return func(m *sim.Machine) error {
		neurons := gw * gh
		w := nn.Mat{Rows: neurons, Cols: in, Data: append(nn.Vec(nil), initW...)}
		ref := &nn.SOM{In: in, GridW: gw, GridH: gh, W: w}
		for step, x := range inputs {
			word, err := m.ReadMainWord(bmuMain + 4*step)
			if err != nil {
				return err
			}
			bmu := int(int32(word))
			if bmu < 0 || bmu >= neurons {
				return fmt.Errorf("step %d: BMU index %d out of range", step, bmu)
			}
			d := ref.Distances(x)
			best := d[0]
			for _, v := range d {
				if v < best {
					best = v
				}
			}
			if d[bmu] > best+0.15 {
				return fmt.Errorf("step %d: accelerator BMU %d has distance %.4f, optimum %.4f",
					step, bmu, d[bmu], best)
			}
			// Replay the accelerator's scalar theta pipeline exactly:
			// integer lattice distance, Q8.8 exp, Q16.16 product
			// truncated back to Q8.8.
			bx, by := bmu%gw, bmu/gw
			for i := 0; i < neurons; i++ {
				ix, iy := i%gw, i/gw
				d2 := (ix-bx)*(ix-bx) + (iy-by)*(iy-by)
				aRaw := int32(d2) * int32(math.Round(-256/(2*somSigma*somSigma)))
				theta := fixed.Exp(fixed.Num(aRaw))
				thetaEta := (int32(theta) * fix(somEta)) / 256
				te := fixed.Num(thetaEta).Float()
				row := ref.W.Row(i)
				for j := range row {
					row[j] += te * (x[j] - row[j])
				}
			}
		}
		got, err := m.ReadMainNums(wOutMain, neurons*in)
		if err != nil {
			return err
		}
		for i, gf := range fixed.Floats(got) {
			if diff := math.Abs(gf - ref.W.Data[i]); diff > 0.05 {
				return fmt.Errorf("prototype element %d: got %.4f, want %.4f (err %.4f)",
					i, gf, ref.W.Data[i], diff)
			}
		}
		return nil
	}
}
