package codegen

import (
	"cambricon/internal/asm"
	"cambricon/internal/core"
	"cambricon/internal/nn"
)

// MLPTolerance bounds the fixed-point error of a three-layer sigmoid
// network against the float64 reference.
const MLPTolerance = 0.06

// GenMLP lowers the Table III MLP benchmark (64-150-150-14 anchorperson
// detector) to Cambricon assembly: per layer one MLOAD/VLOAD pair, the MMV,
// the bias VAV and the published three-instruction sigmoid — the Fig. 7 MLP
// fragment repeated per layer.
func GenMLP(seed uint64) (*Program, error) {
	net := nn.NewMLP(nn.MLPBenchmarkSizes(), seed).QuantizeParams()
	rng := nn.NewRNG(seed + 1)
	x := nn.Quantize(rng.FillVec(net.Sizes[0], 0, 1))
	want := net.Forward(x)

	g := newGen()
	var b asm.Builder

	// Main-memory image.
	inMain := g.data(x)
	wMain := make([]int, net.Layers())
	bMain := make([]int, net.Layers())
	for l := 0; l < net.Layers(); l++ {
		wMain[l] = g.data(net.W[l].Data)
		bMain[l] = g.data(net.B[l])
	}
	outMain := g.out("output", len(want), want, MLPTolerance)

	// Scratchpad layout: double-buffered activations plus bias and two
	// temporaries sized for the widest layer.
	maxW := 0
	for _, s := range net.Sizes {
		if s > maxW {
			maxW = s
		}
	}
	actA := g.vspadA.takeElems(maxW)
	actB := g.vspadA.takeElems(maxW)
	biasV := g.vspadA.takeElems(maxW)
	tmpV := g.vspadA.takeElems(maxW)
	wSpad := make([]int, net.Layers())
	for l := 0; l < net.Layers(); l++ {
		wSpad[l] = g.mspadA.takeElems(net.Sizes[l] * net.Sizes[l+1])
	}

	// Register conventions (Fig. 7 style).
	const (
		rInSize  = 0 // input size
		rOutSize = 1 // output size
		rMatSize = 2 // matrix size
		rX       = 3 // input activations (vspad)
		rW       = 4 // weights (mspad)
		rB       = 5 // bias (vspad)
		rY       = 6 // output activations (vspad)
		rTmp     = 7 // pre-activation temp (vspad)
	)

	b.Comment("MLP %v feedforward (Table III)", net.Sizes)
	loadImm(&b, rInSize, int32(net.Sizes[0]))
	loadImm(&b, rX, int32(actA))
	b.Opc(core.VLOAD, "load input neurons", asm.R(rX), asm.R(rInSize), asm.Imm(int32(inMain)))

	cur, next := actA, actB
	for l := 0; l < net.Layers(); l++ {
		in, out := net.Sizes[l], net.Sizes[l+1]
		b.Comment("layer %d: %d -> %d", l+1, in, out)
		loadImm(&b, rInSize, int32(in))
		loadImm(&b, rOutSize, int32(out))
		loadImm(&b, rMatSize, int32(in*out))
		loadImm(&b, rW, int32(wSpad[l]))
		b.Opc(core.MLOAD, "load weight matrix", asm.R(rW), asm.R(rMatSize), asm.Imm(int32(wMain[l])))
		loadImm(&b, rB, int32(biasV))
		b.Opc(core.VLOAD, "load bias vector", asm.R(rB), asm.R(rOutSize), asm.Imm(int32(bMain[l])))
		loadImm(&b, rX, int32(cur))
		loadImm(&b, rY, int32(next))
		loadImm(&b, rTmp, int32(tmpV))
		b.Opc(core.MMV, "Wx", asm.R(rY), asm.R(rOutSize), asm.R(rW), asm.R(rX), asm.R(rInSize))
		b.Opc(core.VAV, "Wx + b", asm.R(rY), asm.R(rOutSize), asm.R(rY), asm.R(rB))
		emitSigmoid(&b, rY, rY, sigmoidRegs{size: rOutSize, tmp: rTmp})
		cur, next = next, cur
	}
	b.Opc(core.VSTORE, "store output neurons",
		asm.R(rY), asm.R(rOutSize), asm.Imm(int32(outMain)))

	return finish("MLP", &b, g)
}
