package codegen

import (
	"cambricon/internal/asm"
	"cambricon/internal/core"
	"cambricon/internal/nn"
)

// CNNTolerance bounds the fixed-point error of the full LeNet-5 pipeline
// (two conv+pool stages and three FC layers).
const CNNTolerance = 0.12

// cnnRegs is the register window shared by the convolution, pooling and FC
// stage emitters (stages run sequentially, so one window suffices — exactly
// how hand-written Cambricon assembly would budget its 64 GPRs).
type cnnRegs struct {
	rPatchN uint8       // patch size K*K*inC
	rOutC   uint8       // output channels / FC output size
	rSeg    uint8       // VMOVE segment length K*inC
	rW      uint8       // weight matrix address (mspad)
	rBias   uint8       // bias vector address (vspad)
	rRow    uint8       // current input window address
	rSrc    uint8       // segment read cursor
	rOut    uint8       // output write cursor
	rX      uint8       // x loop counter
	rY      uint8       // y loop counter
	rTmp    uint8       // sigmoid scratch region
	rP      uint8       // pooling window cursor
	rPk     [2][5]uint8 // static patch-row cursors, double buffered
	rRowN   uint8       // output-row element count
	rOutRow uint8       // output-row base address
	rBT     uint8       // tiled (row-wide) bias base address
	rS      [5]uint8    // per-segment source addresses (independent adds)
}

func newCNNRegs() cnnRegs {
	r := cnnRegs{
		rPatchN: 0, rOutC: 1, rSeg: 2, rW: 3, rBias: 4,
		rRow: 7, rSrc: 8, rOut: 9, rX: 10, rY: 11,
		rTmp: 12, rP: 13, rRowN: 25, rOutRow: 26, rBT: 27,
	}
	next := uint8(15)
	for b := 0; b < 2; b++ {
		for k := 0; k < 5; k++ {
			r.rPk[b][k] = next
			next++
		}
	}
	for k := range r.rS {
		r.rS[k] = 28 + uint8(k)
	}
	return r
}

// emitConv lowers one valid convolution with sigmoid activation over the
// [y][x][c] layout. Two hand-optimizations a Cambricon programmer would
// apply (and that the paper's performance results presuppose) are built in:
// patch gathers double-buffer so the VMOVEs of the next position overlap
// the MMV of the current one, and bias-add plus the sigmoid chain are
// batched once per output row instead of once per position, keeping the
// vector unit's CORDIC beats amortized over outW*outC elements.
func emitConv(b *asm.Builder, r cnnRegs, l nn.ConvLayer, inBase, outBase, wSpad, biasV, tiledBiasV int, patchV [2]int, tmpV int) {
	outH, outW := l.OutH(), l.OutW()
	if outW%2 != 0 {
		panic("codegen: emitConv requires an even output width")
	}
	if l.K > 5 {
		panic("codegen: emitConv supports kernels up to 5x5")
	}
	elem := 2 // bytes per element
	rowN := outW * l.OutC
	b.Comment("conv %dx%dx%d -> %dx%dx%d (K=%d)", l.InH, l.InW, l.InC, outH, outW, l.OutC, l.K)
	loadImm(b, r.rPatchN, int32(l.K*l.K*l.InC))
	loadImm(b, r.rOutC, int32(l.OutC))
	loadImm(b, r.rSeg, int32(l.K*l.InC))
	loadImm(b, r.rW, int32(wSpad))
	loadImm(b, r.rTmp, int32(tmpV))
	loadImm(b, r.rRowN, int32(rowN))
	for buf := 0; buf < 2; buf++ {
		for ky := 0; ky < l.K; ky++ {
			loadImm(b, r.rPk[buf][ky], int32(patchV[buf]+ky*l.K*l.InC*elem))
		}
	}
	b.Comment("tile the per-channel bias across one output row")
	loadImm(b, r.rBias, int32(biasV))
	loadImm(b, r.rBT, int32(tiledBiasV))
	loadImm(b, r.rP, int32(tiledBiasV))
	loadImm(b, r.rX, int32(outW))
	tileTop := b.NewLabel("bias_tile")
	b.Label(tileTop)
	b.Op(core.VMOVE, asm.R(r.rP), asm.R(r.rOutC), asm.R(r.rBias))
	b.Op(core.SADD, asm.R(r.rP), asm.R(r.rP), asm.Imm(int32(l.OutC*elem)))
	b.Op(core.SADD, asm.R(r.rX), asm.R(r.rX), asm.Imm(-1))
	b.Op(core.CB, asm.Lbl(tileTop), asm.R(r.rX))

	loadImm(b, r.rRow, int32(inBase))
	loadImm(b, r.rOut, int32(outBase))
	loadImm(b, r.rY, int32(outH))
	yTop := b.NewLabel("conv_y")
	xTop := b.NewLabel("conv_x")
	b.Label(yTop)
	b.Op(core.SMOVE, asm.R(r.rOutRow), asm.R(r.rOut))
	loadImm(b, r.rX, int32(outW/2))
	b.Label(xTop)
	for buf := 0; buf < 2; buf++ {
		// Independent segment addresses (no serial cursor chain): every
		// add reads only rRow, so the gathers issue back to back.
		for ky := 1; ky < l.K; ky++ {
			b.Op(core.SADD, asm.R(r.rS[ky]), asm.R(r.rRow), asm.Imm(int32(ky*l.InW*l.InC*elem)))
		}
		b.Opc(core.VMOVE, "gather patch row", asm.R(r.rPk[buf][0]), asm.R(r.rSeg), asm.R(r.rRow))
		for ky := 1; ky < l.K; ky++ {
			b.Opc(core.VMOVE, "gather patch row", asm.R(r.rPk[buf][ky]), asm.R(r.rSeg), asm.R(r.rS[ky]))
		}
		b.Opc(core.MMV, "all output channels at this position",
			asm.R(r.rOut), asm.R(r.rOutC), asm.R(r.rW), asm.R(r.rPk[buf][0]), asm.R(r.rPatchN))
		b.Op(core.SADD, asm.R(r.rOut), asm.R(r.rOut), asm.Imm(int32(l.OutC*elem)))
		b.Op(core.SADD, asm.R(r.rRow), asm.R(r.rRow), asm.Imm(int32(l.InC*elem)))
	}
	b.Op(core.SADD, asm.R(r.rX), asm.R(r.rX), asm.Imm(-1))
	b.Op(core.CB, asm.Lbl(xTop), asm.R(r.rX))
	b.Opc(core.VAV, "row-wide bias add", asm.R(r.rOutRow), asm.R(r.rRowN), asm.R(r.rOutRow), asm.R(r.rBT))
	emitSigmoid(b, r.rOutRow, r.rOutRow, sigmoidRegs{size: r.rRowN, tmp: r.rTmp})
	b.Opc(core.SADD, "skip the window tail of the row",
		asm.R(r.rRow), asm.R(r.rRow), asm.Imm(int32((l.InW-outW)*l.InC*elem)))
	b.Op(core.SADD, asm.R(r.rY), asm.R(r.rY), asm.Imm(-1))
	b.Op(core.CB, asm.Lbl(yTop), asm.R(r.rY))
}

// emitPool lowers non-overlapping 2x2 max pooling with VGTM over
// channel-interleaved feature maps, following the paper's Fig. 7 pooling
// fragment: the channel vector at each window position merges into the
// output accumulator.
func emitPool(b *asm.Builder, r cnnRegs, l nn.PoolLayer, inBase, outBase int) {
	outH, outW := l.OutH(), l.OutW()
	elem := 2
	rowBytes := l.InW * l.C * elem
	b.Comment("max pool %dx%dx%d -> %dx%dx%d (K=%d)", l.InH, l.InW, l.C, outH, outW, l.C, l.K)
	loadImm(b, r.rOutC, int32(l.C))
	loadImm(b, r.rRow, int32(inBase))
	loadImm(b, r.rOut, int32(outBase))
	loadImm(b, r.rY, int32(outH))
	yTop := b.NewLabel("pool_y")
	xTop := b.NewLabel("pool_x")
	b.Label(yTop)
	loadImm(b, r.rX, int32(outW))
	b.Label(xTop)
	b.Op(core.SMOVE, asm.R(r.rP), asm.R(r.rRow))
	b.Opc(core.VMOVE, "init accumulator with window corner",
		asm.R(r.rOut), asm.R(r.rOutC), asm.R(r.rP))
	b.Op(core.SADD, asm.R(r.rP), asm.R(r.rP), asm.Imm(int32(l.C*elem)))
	b.Opc(core.VGTM, "merge (x+1, y)", asm.R(r.rOut), asm.R(r.rOutC), asm.R(r.rP), asm.R(r.rOut))
	b.Op(core.SMOVE, asm.R(r.rP), asm.R(r.rRow))
	b.Op(core.SADD, asm.R(r.rP), asm.R(r.rP), asm.Imm(int32(rowBytes)))
	b.Opc(core.VGTM, "merge (x, y+1)", asm.R(r.rOut), asm.R(r.rOutC), asm.R(r.rP), asm.R(r.rOut))
	b.Op(core.SADD, asm.R(r.rP), asm.R(r.rP), asm.Imm(int32(l.C*elem)))
	b.Opc(core.VGTM, "merge (x+1, y+1)", asm.R(r.rOut), asm.R(r.rOutC), asm.R(r.rP), asm.R(r.rOut))
	b.Op(core.SADD, asm.R(r.rOut), asm.R(r.rOut), asm.Imm(int32(l.C*elem)))
	b.Op(core.SADD, asm.R(r.rRow), asm.R(r.rRow), asm.Imm(int32(l.K*l.C*elem)))
	b.Op(core.SADD, asm.R(r.rX), asm.R(r.rX), asm.Imm(-1))
	b.Op(core.CB, asm.Lbl(xTop), asm.R(r.rX))
	b.Opc(core.SADD, "skip the second input row of the window band",
		asm.R(r.rRow), asm.R(r.rRow), asm.Imm(int32(rowBytes)))
	b.Op(core.SADD, asm.R(r.rY), asm.R(r.rY), asm.Imm(-1))
	b.Op(core.CB, asm.Lbl(yTop), asm.R(r.rY))
}

// emitFC lowers one fully-connected sigmoid layer, reusing the conv
// register window.
func emitFC(b *asm.Builder, r cnnRegs, in, out, wSpad, biasV, inBase, outBase, tmpV int) {
	b.Comment("fully connected %d -> %d", in, out)
	loadImm(b, r.rPatchN, int32(in))
	loadImm(b, r.rOutC, int32(out))
	loadImm(b, r.rW, int32(wSpad))
	loadImm(b, r.rBias, int32(biasV))
	loadImm(b, r.rRow, int32(inBase))
	loadImm(b, r.rOut, int32(outBase))
	loadImm(b, r.rTmp, int32(tmpV))
	b.Op(core.MMV, asm.R(r.rOut), asm.R(r.rOutC), asm.R(r.rW), asm.R(r.rRow), asm.R(r.rPatchN))
	b.Op(core.VAV, asm.R(r.rOut), asm.R(r.rOutC), asm.R(r.rOut), asm.R(r.rBias))
	emitSigmoid(b, r.rOut, r.rOut, sigmoidRegs{size: r.rOutC, tmp: r.rTmp})
}

// GenCNN lowers the Table III LeNet-5 benchmark. Weights for every stage
// are preloaded into the matrix scratchpad (123 KB of 768 KB); all feature
// maps fit the vector scratchpad simultaneously (under 20 KB of 64 KB).
func GenCNN(seed uint64) (*Program, error) {
	net := nn.NewLeNet5(seed).QuantizeParams()
	rng := nn.NewRNG(seed + 1)
	input := nn.Quantize(rng.FillVec(32*32, 0, 1))
	want := net.Forward(input)

	g := newGen()
	var b asm.Builder
	r := newCNNRegs()

	inMain := g.data(input)
	c1wMain := g.data(net.Convs[0].W.Data)
	c1bMain := g.data(net.Convs[0].B)
	c2wMain := g.data(net.Convs[1].W.Data)
	c2bMain := g.data(net.Convs[1].B)
	fwMain := make([]int, 3)
	fbMain := make([]int, 3)
	for i, fc := range net.FCs {
		fwMain[i] = g.data(fc.W.Data)
		fbMain[i] = g.data(fc.B)
	}
	outMain := g.out("classifier output", len(want), want, CNNTolerance)

	// Vector scratchpad: all stage activations live simultaneously.
	in0V := g.vspadA.takeElems(32 * 32)
	c1V := g.vspadA.takeElems(28 * 28 * 6)
	p1V := g.vspadA.takeElems(14 * 14 * 6)
	c2V := g.vspadA.takeElems(10 * 10 * 16)
	p2V := g.vspadA.takeElems(5 * 5 * 16)
	f1V := g.vspadA.takeElems(120)
	f2V := g.vspadA.takeElems(84)
	f3V := g.vspadA.takeElems(10)
	patchV := [2]int{g.vspadA.takeElems(5 * 5 * 6), g.vspadA.takeElems(5 * 5 * 6)}
	tmpV := g.vspadA.takeElems(28 * 6) // widest sigmoid batch: one C1 row
	biasV := g.vspadA.takeElems(120)
	tiledBiasV := g.vspadA.takeElems(28 * 6)

	// Matrix scratchpad: all weights resident.
	c1wM := g.mspadA.takeElems(6 * 25)
	c2wM := g.mspadA.takeElems(16 * 150)
	fwM := []int{
		g.mspadA.takeElems(120 * 400),
		g.mspadA.takeElems(84 * 120),
		g.mspadA.takeElems(10 * 84),
	}

	const rSz = 14 // reusable size register for loads (outside cnnRegs)

	b.Comment("LeNet-5 (Table III CNN benchmark)")
	b.Comment("preload input and all weights")
	loadImm(&b, rSz, 32*32)
	loadImm(&b, r.rRow, int32(in0V))
	b.Opc(core.VLOAD, "input image", asm.R(r.rRow), asm.R(rSz), asm.Imm(int32(inMain)))
	loadImm(&b, rSz, 6*25)
	loadImm(&b, r.rW, int32(c1wM))
	b.Op(core.MLOAD, asm.R(r.rW), asm.R(rSz), asm.Imm(int32(c1wMain)))
	loadImm(&b, rSz, 16*150)
	loadImm(&b, r.rW, int32(c2wM))
	b.Op(core.MLOAD, asm.R(r.rW), asm.R(rSz), asm.Imm(int32(c2wMain)))
	fcDims := [3][2]int{{400, 120}, {120, 84}, {84, 10}}
	for i := range fwM {
		loadImm(&b, rSz, int32(fcDims[i][0]*fcDims[i][1]))
		loadImm(&b, r.rW, int32(fwM[i]))
		b.Op(core.MLOAD, asm.R(r.rW), asm.R(rSz), asm.Imm(int32(fwMain[i])))
	}

	loadImm(&b, rSz, 6)
	loadImm(&b, r.rBias, int32(biasV))
	b.Opc(core.VLOAD, "C1 bias", asm.R(r.rBias), asm.R(rSz), asm.Imm(int32(c1bMain)))
	emitConv(&b, r, net.Convs[0], in0V, c1V, c1wM, biasV, tiledBiasV, patchV, tmpV)
	emitPool(&b, r, net.Pools[0], c1V, p1V)

	loadImm(&b, rSz, 16)
	loadImm(&b, r.rBias, int32(biasV))
	b.Opc(core.VLOAD, "C2 bias", asm.R(r.rBias), asm.R(rSz), asm.Imm(int32(c2bMain)))
	emitConv(&b, r, net.Convs[1], p1V, c2V, c2wM, biasV, tiledBiasV, patchV, tmpV)
	emitPool(&b, r, net.Pools[1], c2V, p2V)

	fcIn := []int{p2V, f1V, f2V}
	fcOut := []int{f1V, f2V, f3V}
	for i := range net.FCs {
		loadImm(&b, rSz, int32(fcDims[i][1]))
		loadImm(&b, r.rBias, int32(biasV))
		b.Opc(core.VLOAD, "FC bias", asm.R(r.rBias), asm.R(rSz), asm.Imm(int32(fbMain[i])))
		emitFC(&b, r, fcDims[i][0], fcDims[i][1], fwM[i], biasV, fcIn[i], fcOut[i], tmpV)
	}

	loadImm(&b, rSz, 10)
	b.Opc(core.VSTORE, "store classifier output", asm.R(r.rOut), asm.R(rSz), asm.Imm(int32(outMain)))

	return finish("CNN", &b, g)
}
