package core

import (
	"strings"
	"testing"
)

func TestInstructionCountIs43(t *testing.T) {
	// Section V-B1: "Cambricon defines a total of 43 64-bit
	// scalar/control/vector/matrix instructions".
	if NumInstructions != 43 {
		t.Fatalf("NumInstructions = %d, want 43", NumInstructions)
	}
	if got := len(Opcodes()); got != 43 {
		t.Fatalf("len(Opcodes()) = %d, want 43", got)
	}
}

func TestOpcodeNamesUniqueAndResolvable(t *testing.T) {
	seen := map[string]Opcode{}
	for _, op := range Opcodes() {
		name := op.String()
		if name == "" || strings.HasPrefix(name, "Opcode(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("mnemonic %q used by both %d and %d", name, prev, op)
		}
		seen[name] = op
		got, ok := ByName(name)
		if !ok || got != op {
			t.Errorf("ByName(%q) = %v, %v; want %v", name, got, ok, op)
		}
	}
	if _, ok := ByName("NOPE"); ok {
		t.Error("ByName should reject unknown mnemonics")
	}
}

func TestEveryOpcodeHasFormatAndRoles(t *testing.T) {
	for _, op := range Opcodes() {
		f := op.Format()
		if f.Regs < 0 || f.Regs > 5 {
			t.Errorf("%v: bad reg count %d", op, f.Regs)
		}
		if f.Operands() > 6 {
			t.Errorf("%v: too many operands", op)
		}
		roles := op.Roles()
		if len(roles) != f.Operands() {
			t.Errorf("%v: %d roles but %d operands", op, len(roles), f.Operands())
		}
		// Encoding constraint: formats carrying an immediate must leave
		// bits [31:0] free, i.e. at most 4 register fields (bit 31 is the
		// last bit of reg field r3).
		if f.Tail != TailNone && f.Regs > 3 {
			t.Errorf("%v: immediate formats support at most 3 fixed registers", op)
		}
	}
}

func TestTypeClassification(t *testing.T) {
	want := map[Opcode]Type{
		JUMP: TypeControl, CB: TypeControl,
		VLOAD: TypeDataTransfer, SMOVE: TypeDataTransfer, MSTORE: TypeDataTransfer,
		MMV: TypeMatrix, OP: TypeMatrix, MSM: TypeMatrix,
		VAV: TypeVector, VEXP: TypeVector, RV: TypeVector, VGTM: TypeVector, VGT: TypeVector,
		SADD: TypeScalar, SEXP: TypeScalar, SGT: TypeScalar, SAND: TypeScalar,
	}
	for op, typ := range want {
		if got := op.Type(); got != typ {
			t.Errorf("%v.Type() = %v, want %v", op, got, typ)
		}
	}
}

func TestTypeCounts(t *testing.T) {
	// DESIGN.md enumeration: 2 control, 9 data transfer, 6 matrix,
	// 17 vector (11 computational + 6 logical), 9 scalar (6 + 3).
	counts := map[Type]int{}
	for _, op := range Opcodes() {
		counts[op.Type()]++
	}
	want := map[Type]int{
		TypeControl:      2,
		TypeDataTransfer: 9,
		TypeMatrix:       6,
		TypeVector:       17,
		TypeScalar:       9,
	}
	for typ, n := range want {
		if counts[typ] != n {
			t.Errorf("%v: %d opcodes, want %d", typ, counts[typ], n)
		}
	}
}

func TestIsBranch(t *testing.T) {
	for _, op := range Opcodes() {
		want := op == JUMP || op == CB
		if got := op.IsBranch(); got != want {
			t.Errorf("%v.IsBranch() = %v", op, got)
		}
	}
}

func TestAccessesMemory(t *testing.T) {
	cases := map[Opcode]bool{
		VLOAD: true, MMV: true, VAV: true, VGTM: true, RV: true,
		SADD: false, JUMP: false, CB: false, SGT: false,
		SLOAD: true, // scalar load goes through the L1 cache via the AGU
	}
	for op, want := range cases {
		if got := op.AccessesMemory(); got != want {
			t.Errorf("%v.AccessesMemory() = %v, want %v", op, got, want)
		}
	}
}

func TestTypesOrderMatchesFig11(t *testing.T) {
	ts := Types()
	want := []Type{TypeDataTransfer, TypeControl, TypeMatrix, TypeVector, TypeScalar}
	if len(ts) != len(want) {
		t.Fatalf("Types() length %d", len(ts))
	}
	for i := range want {
		if ts[i] != want[i] {
			t.Errorf("Types()[%d] = %v, want %v", i, ts[i], want[i])
		}
	}
}

func TestTypeStrings(t *testing.T) {
	for _, typ := range Types() {
		if s := typ.String(); strings.HasPrefix(s, "Type(") {
			t.Errorf("missing name for %d", typ)
		}
	}
}

func TestInvalidOpcodePanicsAndReports(t *testing.T) {
	var op Opcode
	if op.Valid() {
		t.Error("zero opcode must be invalid")
	}
	if Opcode(200).Valid() {
		t.Error("out-of-range opcode must be invalid")
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic on invalid opcode", name)
			}
		}()
		f()
	}
	mustPanic("Type", func() { _ = op.Type() })
	mustPanic("Format", func() { _ = op.Format() })
	mustPanic("Roles", func() { _ = op.Roles() })
}
