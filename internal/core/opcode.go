package core

import "fmt"

// Opcode identifies one of the 43 Cambricon instructions. The zero value is
// invalid so that an all-zero instruction word never decodes silently.
type Opcode uint8

// The full Cambricon instruction set. The paper states the ISA contains "a
// total of 43 64-bit scalar/control/vector/matrix instructions" but only
// names a subset explicitly; the remainder are reconstructed from Table I's
// categories (see DESIGN.md §3 for the enumeration argument).
const (
	opInvalid Opcode = iota

	// Control instructions (Fig. 1).
	JUMP // unconditional jump: PC += offset (GPR or immediate)
	CB   // conditional branch: if predictor GPR != 0, PC += offset

	// Data transfer instructions (Fig. 2 and Table I).
	VLOAD  // load vector: scratchpad[dest] <- main[base GPR + offset]
	VSTORE // store vector: main[base GPR + offset] <- scratchpad[src]
	VMOVE  // move vector within the vector scratchpad
	MLOAD  // load matrix into the matrix scratchpad
	MSTORE // store matrix from the matrix scratchpad
	MMOVE  // move matrix within the matrix scratchpad
	SLOAD  // load scalar: GPR <- main[base GPR + offset]
	SSTORE // store scalar: main[base GPR + offset] <- GPR
	SMOVE  // move scalar: GPR <- GPR or immediate

	// Matrix computational instructions (Section III-A).
	MMV // matrix-mult-vector: Vout = M * Vin (Fig. 4)
	VMM // vector-mult-matrix: Vout = Vin * M (backward pass, no transpose)
	MMS // matrix-mult-scalar: Mout = Min * s
	OP  // outer product: Mout = Vin0 (x) Vin1
	MAM // matrix-add-matrix: Mout = Min0 + Min1
	MSM // matrix-subtract-matrix: Mout = Min0 - Min1

	// Vector computational instructions (Section III-B).
	VAV  // vector-add-vector
	VSV  // vector-sub-vector
	VMV  // vector-mult-vector (element-wise)
	VDV  // vector-div-vector (element-wise)
	VAS  // vector-add-scalar (scalar from GPR or immediate)
	VEXP // vector element-wise exponential
	VLOG // vector element-wise natural logarithm
	VDOT // dot product, scalar result into a GPR
	RV   // random vector, uniform over [0, 1)
	VMAX // maximum element of a vector, into a GPR
	VMIN // minimum element of a vector, into a GPR

	// Scalar computational instructions (Section III-D).
	SADD // scalar add (operand 2 GPR or immediate)
	SSUB // scalar subtract
	SMUL // scalar multiply
	SDIV // scalar divide
	SEXP // scalar exponential
	SLOG // scalar logarithm

	// Vector logical instructions (Section III-C, Fig. 6).
	VGT  // element-wise greater-than, 0/1 result vector
	VE   // element-wise equality, 0/1 result vector
	VAND // element-wise logical AND
	VOR  // element-wise logical OR
	VNOT // element-wise logical NOT (inverter)
	VGTM // vector-greater-than-merge: Vout[i] = max(Vin0[i], Vin1[i])

	// Scalar logical instructions (Section III-C).
	SGT  // scalar greater-than, 0/1 result
	SE   // scalar equality, 0/1 result
	SAND // scalar logical AND

	numOpcodes
)

// NumInstructions is the size of the Cambricon instruction set. The paper
// reports 43 (Section V-B1).
const NumInstructions = int(numOpcodes) - 1

// Type is the five-way instruction classification used throughout the
// paper's evaluation (Fig. 11): data transfer, control, matrix, vector and
// scalar. Computational and logical vector instructions both count as
// "vector"; likewise for scalar.
type Type uint8

// Instruction types in Fig. 11's ordering.
const (
	TypeDataTransfer Type = iota
	TypeControl
	TypeMatrix
	TypeVector
	TypeScalar
	numTypes
)

// NumTypes is the number of instruction-type categories.
const NumTypes = int(numTypes)

func (t Type) String() string {
	switch t {
	case TypeDataTransfer:
		return "data transfer"
	case TypeControl:
		return "control"
	case TypeMatrix:
		return "matrix"
	case TypeVector:
		return "vector"
	case TypeScalar:
		return "scalar"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Types lists the five categories in Fig. 11's order.
func Types() []Type {
	return []Type{TypeDataTransfer, TypeControl, TypeMatrix, TypeVector, TypeScalar}
}

// opInfo is the static description of one opcode.
type opInfo struct {
	name string
	typ  Type
	fmt  Format
}

var opTable = [numOpcodes]opInfo{
	JUMP: {"JUMP", TypeControl, Format{Regs: 0, Tail: TailRegImm}},
	CB:   {"CB", TypeControl, Format{Regs: 1, Tail: TailRegImm}},

	VLOAD:  {"VLOAD", TypeDataTransfer, Format{Regs: 3, Tail: TailImm}},
	VSTORE: {"VSTORE", TypeDataTransfer, Format{Regs: 3, Tail: TailImm}},
	VMOVE:  {"VMOVE", TypeDataTransfer, Format{Regs: 3}},
	MLOAD:  {"MLOAD", TypeDataTransfer, Format{Regs: 3, Tail: TailImm}},
	MSTORE: {"MSTORE", TypeDataTransfer, Format{Regs: 3, Tail: TailImm}},
	MMOVE:  {"MMOVE", TypeDataTransfer, Format{Regs: 3}},
	SLOAD:  {"SLOAD", TypeDataTransfer, Format{Regs: 2, Tail: TailImm}},
	SSTORE: {"SSTORE", TypeDataTransfer, Format{Regs: 2, Tail: TailImm}},
	SMOVE:  {"SMOVE", TypeDataTransfer, Format{Regs: 1, Tail: TailRegImm}},

	MMV: {"MMV", TypeMatrix, Format{Regs: 5}},
	VMM: {"VMM", TypeMatrix, Format{Regs: 5}},
	MMS: {"MMS", TypeMatrix, Format{Regs: 3, Tail: TailRegImm}},
	OP:  {"OP", TypeMatrix, Format{Regs: 5}},
	MAM: {"MAM", TypeMatrix, Format{Regs: 4}},
	MSM: {"MSM", TypeMatrix, Format{Regs: 4}},

	VAV:  {"VAV", TypeVector, Format{Regs: 4}},
	VSV:  {"VSV", TypeVector, Format{Regs: 4}},
	VMV:  {"VMV", TypeVector, Format{Regs: 4}},
	VDV:  {"VDV", TypeVector, Format{Regs: 4}},
	VAS:  {"VAS", TypeVector, Format{Regs: 3, Tail: TailRegImm}},
	VEXP: {"VEXP", TypeVector, Format{Regs: 3}},
	VLOG: {"VLOG", TypeVector, Format{Regs: 3}},
	VDOT: {"VDOT", TypeVector, Format{Regs: 4}},
	RV:   {"RV", TypeVector, Format{Regs: 2}},
	VMAX: {"VMAX", TypeVector, Format{Regs: 3}},
	VMIN: {"VMIN", TypeVector, Format{Regs: 3}},

	SADD: {"SADD", TypeScalar, Format{Regs: 2, Tail: TailRegImm}},
	SSUB: {"SSUB", TypeScalar, Format{Regs: 2, Tail: TailRegImm}},
	SMUL: {"SMUL", TypeScalar, Format{Regs: 2, Tail: TailRegImm}},
	SDIV: {"SDIV", TypeScalar, Format{Regs: 2, Tail: TailRegImm}},
	SEXP: {"SEXP", TypeScalar, Format{Regs: 1, Tail: TailRegImm}},
	SLOG: {"SLOG", TypeScalar, Format{Regs: 1, Tail: TailRegImm}},

	VGT:  {"VGT", TypeVector, Format{Regs: 4}},
	VE:   {"VE", TypeVector, Format{Regs: 4}},
	VAND: {"VAND", TypeVector, Format{Regs: 4}},
	VOR:  {"VOR", TypeVector, Format{Regs: 4}},
	VNOT: {"VNOT", TypeVector, Format{Regs: 3}},
	VGTM: {"VGTM", TypeVector, Format{Regs: 4}},

	SGT:  {"SGT", TypeScalar, Format{Regs: 2, Tail: TailRegImm}},
	SE:   {"SE", TypeScalar, Format{Regs: 2, Tail: TailRegImm}},
	SAND: {"SAND", TypeScalar, Format{Regs: 2, Tail: TailRegImm}},
}

// Valid reports whether op names a real Cambricon instruction.
func (op Opcode) Valid() bool { return op > opInvalid && op < numOpcodes }

// String returns the assembler mnemonic.
func (op Opcode) String() string {
	if !op.Valid() {
		return fmt.Sprintf("Opcode(%d)", uint8(op))
	}
	return opTable[op].name
}

// Type returns the five-way classification of op used in Fig. 11.
func (op Opcode) Type() Type {
	if !op.Valid() {
		panic(fmt.Sprintf("core: Type of invalid opcode %d", uint8(op)))
	}
	return opTable[op].typ
}

// Format returns the operand format of op.
func (op Opcode) Format() Format {
	if !op.Valid() {
		panic(fmt.Sprintf("core: Format of invalid opcode %d", uint8(op)))
	}
	return opTable[op].fmt
}

// Opcodes lists every valid opcode in ascending order.
func Opcodes() []Opcode {
	out := make([]Opcode, 0, NumInstructions)
	for op := opInvalid + 1; op < numOpcodes; op++ {
		out = append(out, op)
	}
	return out
}

// ByName resolves an assembler mnemonic (upper case) to its opcode.
func ByName(name string) (Opcode, bool) {
	op, ok := nameToOp[name]
	return op, ok
}

var nameToOp = func() map[string]Opcode {
	m := make(map[string]Opcode, NumInstructions)
	for op := opInvalid + 1; op < numOpcodes; op++ {
		m[opTable[op].name] = op
	}
	return m
}()

// IsBranch reports whether op can redirect control flow.
func (op Opcode) IsBranch() bool { return op == JUMP || op == CB }

// AccessesMemory reports whether op touches main memory or a scratchpad and
// therefore flows through the AGU and memory queue of the prototype pipeline
// (Section IV): data transfer instructions plus every vector/matrix
// computational or logical instruction.
func (op Opcode) AccessesMemory() bool {
	switch op.Type() {
	case TypeDataTransfer, TypeVector, TypeMatrix:
		return true
	default:
		return false
	}
}
