package core

import (
	"testing"
)

func TestInstructionString(t *testing.T) {
	cases := []struct {
		inst Instruction
		want string
	}{
		{NewRI(VLOAD, 100, 3, 0, 63), "VLOAD $3, $0, $63, #100"},
		{NewR(MMV, 7, 1, 4, 3, 0), "MMV $7, $1, $4, $3, $0"},
		{NewRI(SADD, -1, 4, 4), "SADD $4, $4, #-1"},
		{NewR(SADD, 6, 6, 0), "SADD $6, $6, $0"},
		{NewRI(JUMP, -5), "JUMP #-5"},
		{NewR(JUMP, 9), "JUMP $9"},
		{NewRI(CB, 3, 4), "CB $4, #3"},
		{NewR(RV, 17, 1), "RV $17, $1"},
	}
	for _, c := range cases {
		if got := c.inst.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestValidateAcceptsCanonicalForms(t *testing.T) {
	good := []Instruction{
		NewRI(JUMP, 10),
		NewR(JUMP, 5),
		NewRI(CB, -2, 7),
		NewR(CB, 7, 8),
		NewRI(VLOAD, 0, 1, 2, 3),
		NewR(VMOVE, 1, 2, 3),
		NewRI(SMOVE, 42, 1),
		NewR(SMOVE, 1, 2),
		NewR(VGTM, 7, 0, 6, 7),
		NewRI(VAS, 256, 10, 1, 9),
		NewR(VAS, 10, 1, 9, 2),
		NewR(VDOT, 3, 1, 8, 9),
		NewR(VMAX, 3, 1, 8),
	}
	for _, inst := range good {
		if err := inst.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v", inst, err)
		}
	}
}

func TestDestReg(t *testing.T) {
	cases := []struct {
		inst Instruction
		reg  uint8
		ok   bool
	}{
		{NewR(SADD, 5, 6, 7), 5, true},
		{NewR(VDOT, 3, 1, 8, 9), 3, true},
		{NewR(VMAX, 12, 1, 8), 12, true},
		{NewRI(SLOAD, 0, 9, 1), 9, true},
		{NewR(SMOVE, 4, 2), 4, true},
		{NewR(VAV, 1, 2, 3, 4), 0, false}, // writes scratchpad, not a GPR
		{NewRI(VSTORE, 0, 1, 2, 3), 0, false},
		{NewRI(JUMP, 5), 0, false},
	}
	for _, c := range cases {
		reg, ok := c.inst.DestReg()
		if reg != c.reg || ok != c.ok {
			t.Errorf("DestReg(%v) = %d,%v; want %d,%v", c.inst, reg, ok, c.reg, c.ok)
		}
	}
}

func TestReadRegs(t *testing.T) {
	cases := []struct {
		inst Instruction
		want []uint8
	}{
		{NewR(SADD, 5, 6, 7), []uint8{6, 7}},
		{NewRI(SADD, -1, 5, 6), []uint8{6}},
		{NewR(MMV, 7, 1, 4, 3, 0), []uint8{7, 1, 4, 3, 0}},
		{NewRI(VLOAD, 100, 3, 0, 63), []uint8{3, 0, 63}},
		{NewRI(JUMP, 4), nil},
		{NewR(JUMP, 4), []uint8{4}},
		{NewR(VDOT, 3, 1, 8, 9), []uint8{1, 8, 9}},
	}
	for _, c := range cases {
		got := c.inst.ReadRegs(nil)
		if len(got) != len(c.want) {
			t.Errorf("ReadRegs(%v) = %v, want %v", c.inst, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ReadRegs(%v) = %v, want %v", c.inst, got, c.want)
				break
			}
		}
	}
}

func TestRoleStrings(t *testing.T) {
	roles := []Role{RoleGPRDst, RoleGPRSrc, RoleVDst, RoleVSrc, RoleMDst, RoleMSrc, RoleSize, RoleMemBase}
	for _, r := range roles {
		if s := r.String(); s == "" || s[0] == 'R' {
			t.Errorf("role %d missing name: %q", r, s)
		}
	}
}

func TestArchitecturalConstants(t *testing.T) {
	if NumGPRs != 64 {
		t.Errorf("NumGPRs = %d, want 64", NumGPRs)
	}
	if VectorSpadBytes != 64<<10 {
		t.Errorf("VectorSpadBytes = %d", VectorSpadBytes)
	}
	if MatrixSpadBytes != 768<<10 {
		t.Errorf("MatrixSpadBytes = %d", MatrixSpadBytes)
	}
	if WordBytes != 8 {
		t.Errorf("WordBytes = %d, want 8 (64-bit instructions)", WordBytes)
	}
}
