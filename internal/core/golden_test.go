package core

import "testing"

// TestGoldenEncodings pins the binary format: any change to field layout or
// opcode numbering breaks these vectors, which an installed base of encoded
// programs would notice.
func TestGoldenEncodings(t *testing.T) {
	golden := []struct {
		inst Instruction
		want uint64
	}{
		// JUMP #5: opcode 1, imm flag, imm32=5.
		{NewRI(JUMP, 5), 0x0180000000000005},
		// JUMP $9: opcode 1, r0=9 at bits [54:49].
		{NewR(JUMP, 9), 0x0112000000000000},
		// CB $4, #-3: opcode 2, imm flag, r0=4, imm32=0xfffffffd.
		{NewRI(CB, -3, 4), 0x02880000fffffffd},
		// VLOAD $3, $0, $63, #100: opcode 3, imm flag, r0=3, r1=0, r2=63.
		{NewRI(VLOAD, 100, 3, 0, 63), 0x038607e000000064},
		// SMOVE $1, #0: opcode 11, imm flag, r0=1.
		{NewRI(SMOVE, 0, 1), 0x0b82000000000000},
		// MMV $7, $1, $4, $3, $0: opcode 12, five register fields.
		{NewR(MMV, 7, 1, 4, 3, 0), 0x0c0e088180000000},
		// VGTM $7, $0, $6, $7: opcode 40.
		{NewR(VGTM, 7, 0, 6, 7), 0x280e00c380000000},
		// SADD $6, $6, $0 (register tail).
		{NewR(SADD, 6, 6, 0), 0x1d0c300000000000},
		// RV $17, $1.
		{NewR(RV, 17, 1), 0x1a22080000000000},
	}
	for _, g := range golden {
		got, err := Encode(g.inst)
		if err != nil {
			t.Fatalf("Encode(%v): %v", g.inst, err)
		}
		if got != g.want {
			t.Errorf("Encode(%v) = %#016x, want %#016x", g.inst, got, g.want)
		}
		back, err := Decode(g.want)
		if err != nil {
			t.Fatalf("Decode(%#016x): %v", g.want, err)
		}
		if back != g.inst {
			t.Errorf("Decode(%#016x) = %+v, want %+v", g.want, back, g.inst)
		}
	}
}

// TestOpcodeNumbersAreStable pins the opcode assignment itself.
func TestOpcodeNumbersAreStable(t *testing.T) {
	want := map[Opcode]uint8{
		JUMP: 1, CB: 2,
		VLOAD: 3, VSTORE: 4, VMOVE: 5, MLOAD: 6, MSTORE: 7, MMOVE: 8,
		SLOAD: 9, SSTORE: 10, SMOVE: 11,
		MMV: 12, VMM: 13, MMS: 14, OP: 15, MAM: 16, MSM: 17,
		VAV: 18, VSV: 19, VMV: 20, VDV: 21, VAS: 22, VEXP: 23, VLOG: 24,
		VDOT: 25, RV: 26, VMAX: 27, VMIN: 28,
		SADD: 29, SSUB: 30, SMUL: 31, SDIV: 32, SEXP: 33, SLOG: 34,
		VGT: 35, VE: 36, VAND: 37, VOR: 38, VNOT: 39, VGTM: 40,
		SGT: 41, SE: 42, SAND: 43,
	}
	if len(want) != NumInstructions {
		t.Fatalf("golden table has %d opcodes, ISA has %d", len(want), NumInstructions)
	}
	for op, num := range want {
		if uint8(op) != num {
			t.Errorf("%v = %d, want %d", op, uint8(op), num)
		}
	}
}
