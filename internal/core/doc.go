// Package core defines the Cambricon instruction set architecture, the
// primary contribution of "Cambricon: An Instruction Set Architecture for
// Neural Networks" (ISCA 2016).
//
// Cambricon is a load-store architecture with:
//
//   - 43 instructions, all 64 bits wide (Section V-B1 of the paper);
//   - 64 32-bit general-purpose scalar registers used for control and
//     addressing;
//   - no vector register file: vector and matrix operands live in on-chip
//     scratchpad memories (64 KB for vectors, 768 KB for matrices) addressed
//     through GPRs, so operand sizes are variable per instruction;
//   - four instruction types (Table I): control, data transfer,
//     computational (matrix/vector/scalar) and logical (vector/scalar).
//
// This package is purely architectural: it defines opcodes, operand roles,
// binary encodings (Figs. 1, 2, 4, 6) and validation. The assembler lives in
// internal/asm and the prototype-accelerator simulator in internal/sim.
package core
