package core

import (
	"fmt"
	"strings"
)

// NumGPRs is the size of the scalar register file: "Cambricon contains 64
// 32-bit General-Purpose Registers (GPRs) for scalars" (Section II-B).
const NumGPRs = 64

// Architectural scratchpad capacities (Section II-B): "Cambricon fixes the
// memory capacity to be 64KB for vector instructions, 768KB for matrix
// instructions."
const (
	VectorSpadBytes = 64 << 10
	MatrixSpadBytes = 768 << 10
)

// Instruction is one decoded Cambricon instruction. R holds the register
// operands in format order; when the format's tail operand is an immediate
// (TailImm is true for TailRegImm formats, always for TailImm formats) the
// value is in Imm instead of the final register field.
type Instruction struct {
	Op      Opcode
	R       [5]uint8
	Imm     int32
	TailImm bool
}

// regCount returns how many register fields the instruction uses, including
// a tail operand held in a register.
func (inst Instruction) regCount() int {
	f := inst.Op.Format()
	n := f.Regs
	if f.Tail == TailRegImm && !inst.TailImm {
		n++
	}
	return n
}

// hasImm reports whether the instruction carries an immediate.
func (inst Instruction) hasImm() bool {
	f := inst.Op.Format()
	return f.Tail == TailImm || (f.Tail == TailRegImm && inst.TailImm)
}

// Validate checks the instruction against its opcode's format: valid opcode,
// register indices below NumGPRs (registers are also used to name scratchpad
// addresses, so the same 6-bit bound applies), and tail/flag consistency.
func (inst Instruction) Validate() error {
	if !inst.Op.Valid() {
		return fmt.Errorf("core: invalid opcode %d", uint8(inst.Op))
	}
	f := inst.Op.Format()
	if f.Tail == TailImm && !inst.TailImm {
		return fmt.Errorf("core: %v requires an immediate tail operand", inst.Op)
	}
	if f.Tail == TailNone && inst.TailImm {
		return fmt.Errorf("core: %v takes no immediate", inst.Op)
	}
	n := inst.regCount()
	for i := 0; i < n; i++ {
		if inst.R[i] >= NumGPRs {
			return fmt.Errorf("core: %v operand %d: register $%d out of range (0..%d)",
				inst.Op, i, inst.R[i], NumGPRs-1)
		}
	}
	for i := n; i < len(inst.R); i++ {
		if inst.R[i] != 0 {
			return fmt.Errorf("core: %v has %d register operands but R[%d]=%d is set",
				inst.Op, n, i, inst.R[i])
		}
	}
	if !inst.hasImm() && inst.Imm != 0 {
		return fmt.Errorf("core: %v has no immediate operand but Imm=%d is set", inst.Op, inst.Imm)
	}
	return nil
}

// String renders the instruction in assembler syntax, e.g.
// "VLOAD $3, $0, #100". Control-flow offsets print as raw immediates; the
// disassembler in internal/asm rebuilds labels.
func (inst Instruction) String() string {
	var b strings.Builder
	b.WriteString(inst.Op.String())
	n := inst.regCount()
	sep := " "
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%s$%d", sep, inst.R[i])
		sep = ", "
	}
	if inst.hasImm() {
		fmt.Fprintf(&b, "%s#%d", sep, inst.Imm)
	}
	return b.String()
}

// NewR builds a register-only instruction.
func NewR(op Opcode, regs ...uint8) Instruction {
	var inst Instruction
	inst.Op = op
	copy(inst.R[:], regs)
	return inst
}

// NewRI builds an instruction whose tail operand is the immediate imm.
func NewRI(op Opcode, imm int32, regs ...uint8) Instruction {
	inst := NewR(op, regs...)
	inst.Imm = imm
	inst.TailImm = true
	return inst
}
