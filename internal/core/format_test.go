package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randInstruction builds a random valid instruction for property tests.
func randInstruction(r *rand.Rand) Instruction {
	ops := Opcodes()
	op := ops[r.Intn(len(ops))]
	f := op.Format()
	inst := Instruction{Op: op}
	switch f.Tail {
	case TailImm:
		inst.TailImm = true
	case TailRegImm:
		inst.TailImm = r.Intn(2) == 0
	}
	if inst.hasImm() {
		inst.Imm = int32(r.Uint32())
	}
	for i := 0; i < inst.regCount(); i++ {
		inst.R[i] = uint8(r.Intn(NumGPRs))
	}
	return inst
}

func TestEncodeDecodeRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst := randInstruction(r)
		w, err := Encode(inst)
		if err != nil {
			t.Logf("encode %v: %v", inst, err)
			return false
		}
		got, err := Decode(w)
		if err != nil {
			t.Logf("decode %#x: %v", w, err)
			return false
		}
		return got == inst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEncodePublishedLayouts(t *testing.T) {
	// Fig. 2: VLOAD Dest_addr($3), V_size($0), Src_base(-), Src_offset(#100).
	inst := NewRI(VLOAD, 100, 3, 0, 7)
	w, err := Encode(inst)
	if err != nil {
		t.Fatal(err)
	}
	if got := Opcode(w >> opcodeShift); got != VLOAD {
		t.Errorf("opcode field = %v", got)
	}
	if w>>immFlagShift&1 != 1 {
		t.Error("immediate flag should be set for VLOAD")
	}
	if got := uint8(w >> regShift(0) & regFieldMask); got != 3 {
		t.Errorf("r0 = %d, want 3", got)
	}
	if got := uint8(w >> regShift(1) & regFieldMask); got != 0 {
		t.Errorf("r1 = %d, want 0", got)
	}
	if got := uint8(w >> regShift(2) & regFieldMask); got != 7 {
		t.Errorf("r2 = %d, want 7", got)
	}
	if got := int32(uint32(w & immMask)); got != 100 {
		t.Errorf("imm = %d, want 100", got)
	}
}

func TestEncodeNegativeImmediate(t *testing.T) {
	inst := NewRI(SADD, -1, 4, 4)
	w, err := Encode(inst)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	if got.Imm != -1 {
		t.Errorf("negative immediate round trip: got %d", got.Imm)
	}
}

func TestFiveRegisterFormatFits(t *testing.T) {
	// Fig. 4: MMV has five 6-bit register fields after the 8-bit opcode.
	inst := NewR(MMV, 63, 62, 61, 60, 59)
	w, err := Encode(inst)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	if got != inst {
		t.Errorf("MMV round trip: got %+v want %+v", got, inst)
	}
}

func TestDecodeRejectsInvalidOpcode(t *testing.T) {
	if _, err := Decode(0); err == nil {
		t.Error("all-zero word must not decode")
	}
	if _, err := Decode(uint64(200) << opcodeShift); err == nil {
		t.Error("unknown opcode must not decode")
	}
}

func TestDecodeRejectsBadImmFlag(t *testing.T) {
	// VLOAD without the immediate flag is malformed.
	w := uint64(VLOAD) << opcodeShift
	if _, err := Decode(w); err == nil {
		t.Error("VLOAD without imm flag must not decode")
	}
	// MMV with the immediate flag is malformed.
	w = uint64(MMV)<<opcodeShift | 1<<immFlagShift
	if _, err := Decode(w); err == nil {
		t.Error("MMV with imm flag must not decode")
	}
}

func TestEncodeRejectsInvalidInstruction(t *testing.T) {
	bad := []Instruction{
		{},                                // invalid opcode
		NewR(VAV, 64, 0, 0, 0),            // register out of range
		NewR(VLOAD, 1, 2, 3),              // missing required immediate
		NewRI(MMV, 5, 1, 2, 3, 4),         // immediate on a reg-only format
		{Op: SMOVE, R: [5]uint8{1, 2, 3}}, // extra register set
		{Op: JUMP, Imm: 9, TailImm: false, R: [5]uint8{1}}, // imm set without flag
	}
	for _, inst := range bad {
		if _, err := Encode(inst); err == nil {
			t.Errorf("Encode(%+v) should fail", inst)
		}
	}
}

func TestProgramImageRoundTrip(t *testing.T) {
	prog := []Instruction{
		NewRI(VLOAD, 100, 3, 0, 63),
		NewRI(MLOAD, 300, 4, 2, 63),
		NewR(MMV, 7, 1, 4, 3, 0),
		NewR(VAV, 8, 1, 7, 5),
		NewR(VEXP, 9, 1, 8),
		NewRI(VAS, 1<<8, 10, 1, 9),
		NewR(VDV, 6, 1, 9, 10),
		NewRI(VSTORE, 200, 6, 1, 63),
	}
	img, err := EncodeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != len(prog)*WordBytes {
		t.Fatalf("image length %d", len(img))
	}
	got, err := DecodeProgram(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(prog) {
		t.Fatalf("decoded %d instructions", len(got))
	}
	for i := range prog {
		if got[i] != prog[i] {
			t.Errorf("instruction %d: got %v want %v", i, got[i], prog[i])
		}
	}
}

func TestDecodeProgramRejectsTruncatedImage(t *testing.T) {
	if _, err := DecodeProgram(make([]byte, 12)); err == nil {
		t.Error("truncated image must not decode")
	}
}

func TestEncodeProgramReportsOffendingInstruction(t *testing.T) {
	prog := []Instruction{NewR(VAV, 1, 2, 3, 4), {}}
	if _, err := EncodeProgram(prog); err == nil {
		t.Error("invalid instruction in program must fail")
	}
}

func TestTailKindStrings(t *testing.T) {
	for _, k := range []TailKind{TailNone, TailRegImm, TailImm} {
		if s := k.String(); s == "" || s[0] == 'T' {
			t.Errorf("TailKind %d missing name: %q", k, s)
		}
	}
	if s := TailKind(99).String(); s == "" {
		t.Error("unknown kind should still render")
	}
}
