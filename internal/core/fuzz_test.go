package core

import (
	"bytes"
	"testing"
)

// FuzzProgramImage checks the binary program codec end to end: any
// byte slice either fails to decode with an error or round-trips
// through DecodeProgram -> EncodeProgram -> DecodeProgram to the same
// instruction sequence, never panicking. (The per-word Decode/Encode
// round trip is fuzzed from the assembler side in internal/asm.)
func FuzzProgramImage(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x05, 0, 0, 0, 0, 0, 0x80, 0x01}) // one valid word, little-endian
	f.Add(bytes.Repeat([]byte{0xff}, 8))
	f.Add(bytes.Repeat([]byte{0x00}, 24))
	f.Add([]byte{0x01, 0x02, 0x03}) // not a multiple of the word size
	f.Fuzz(func(t *testing.T, img []byte) {
		prog, err := DecodeProgram(img)
		if err != nil {
			return // rejected image is fine; panics are not
		}
		if len(prog) != len(img)/WordBytes {
			t.Fatalf("decoded %d instructions from %d bytes", len(prog), len(img))
		}
		for i, inst := range prog {
			if verr := inst.Validate(); verr != nil {
				t.Fatalf("decoded invalid instruction %d: %v", i, verr)
			}
		}
		img2, err := EncodeProgram(prog)
		if err != nil {
			t.Fatalf("decoded program does not re-encode: %v", err)
		}
		prog2, err := DecodeProgram(img2)
		if err != nil {
			t.Fatalf("re-encoded image does not decode: %v", err)
		}
		for i := range prog {
			if prog2[i] != prog[i] {
				t.Fatalf("round trip changed instruction %d: %v -> %v", i, prog[i], prog2[i])
			}
		}
	})
}
