package core

import "fmt"

// DecodedInst is one instruction in pre-decoded form: the instruction
// itself plus everything the interpreter otherwise re-derives on every
// dynamic execution — the encoded 64-bit word (fed to fault injectors
// without a per-fetch Encode), the Fig. 11 type category, and the
// source/destination GPR sets the timing model needs at issue and
// write-back. A DecodedInst is immutable after PreDecode.
type DecodedInst struct {
	// Inst is the original instruction (diagnostics, disassembly, and
	// the functional-execution switch still key off it).
	Inst Instruction
	// Word is Encode(Inst), computed once.
	Word uint64
	// Type caches Inst.Op.Type().
	Type Type
	// SrcRegs/NSrc cache Inst.ReadRegs: the GPR indices read at issue.
	SrcRegs [6]uint8
	NSrc    uint8
	// DestReg/HasDest cache Inst.DestReg: the GPR written at write-back.
	DestReg uint8
	HasDest bool
}

// Src views the cached source-register set.
func (d *DecodedInst) Src() []uint8 { return d.SrcRegs[:d.NSrc] }

// PreDecode validates prog and returns its pre-decoded form. The work the
// interpreter performs per dynamic instruction — validation, re-encoding
// for the fault-injection fetch hook, operand-role resolution for the
// pipeline model — is hoisted here and paid once per static instruction.
// The returned slice aliases nothing in prog and must be recomputed if
// prog is mutated (programs are immutable after assembly, so in practice
// a program is pre-decoded exactly once).
func PreDecode(prog []Instruction) ([]DecodedInst, error) {
	dec := make([]DecodedInst, len(prog))
	for pc, inst := range prog {
		if err := inst.Validate(); err != nil {
			return nil, fmt.Errorf("core: predecode pc=%d %v: %w", pc, inst, err)
		}
		d := &dec[pc]
		d.Inst = inst
		// Validate passed, so Encode cannot fail.
		w, err := Encode(inst)
		if err != nil {
			return nil, fmt.Errorf("core: predecode pc=%d %v: %w", pc, inst, err)
		}
		d.Word = w
		d.Type = inst.Op.Type()
		src := inst.ReadRegs(d.SrcRegs[:0])
		d.NSrc = uint8(len(src))
		d.DestReg, d.HasDest = inst.DestReg()
	}
	return dec, nil
}
