package core

import "fmt"

// Role describes how one operand of an instruction is interpreted. Every
// operand is a GPR (or tail immediate); roles distinguish plain scalar
// values from GPRs used for register-indirect addressing of the scratchpads
// and main memory (Section II-B).
type Role uint8

const (
	// RoleGPRDst: the operand names a GPR written by the instruction.
	RoleGPRDst Role = iota
	// RoleGPRSrc: the operand is a scalar value read from a GPR (or the
	// tail immediate).
	RoleGPRSrc
	// RoleVDst: the GPR holds the vector-scratchpad byte address of an
	// output vector.
	RoleVDst
	// RoleVSrc: the GPR holds the vector-scratchpad byte address of an
	// input vector.
	RoleVSrc
	// RoleMDst: the GPR holds the matrix-scratchpad byte address of an
	// output matrix.
	RoleMDst
	// RoleMSrc: the GPR holds the matrix-scratchpad byte address of an
	// input matrix.
	RoleMSrc
	// RoleSize: the GPR holds an element count (vector length / matrix
	// dimension).
	RoleSize
	// RoleMemBase: the GPR holds a main-memory base address to which the
	// tail immediate offset is added.
	RoleMemBase
)

func (r Role) String() string {
	switch r {
	case RoleGPRDst:
		return "gpr-dst"
	case RoleGPRSrc:
		return "gpr-src"
	case RoleVDst:
		return "vspad-dst"
	case RoleVSrc:
		return "vspad-src"
	case RoleMDst:
		return "mspad-dst"
	case RoleMSrc:
		return "mspad-src"
	case RoleSize:
		return "size"
	case RoleMemBase:
		return "mem-base"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// roleTable lists the operand roles of every opcode in operand order,
// including the tail operand (whose role applies when it is a register; a
// tail immediate is always a scalar value or offset).
var roleTable = [numOpcodes][]Role{
	JUMP: {RoleGPRSrc},
	CB:   {RoleGPRSrc, RoleGPRSrc},

	VLOAD:  {RoleVDst, RoleSize, RoleMemBase, RoleGPRSrc},
	VSTORE: {RoleVSrc, RoleSize, RoleMemBase, RoleGPRSrc},
	VMOVE:  {RoleVDst, RoleSize, RoleVSrc},
	MLOAD:  {RoleMDst, RoleSize, RoleMemBase, RoleGPRSrc},
	MSTORE: {RoleMSrc, RoleSize, RoleMemBase, RoleGPRSrc},
	MMOVE:  {RoleMDst, RoleSize, RoleMSrc},
	SLOAD:  {RoleGPRDst, RoleMemBase, RoleGPRSrc},
	SSTORE: {RoleGPRSrc, RoleMemBase, RoleGPRSrc},
	SMOVE:  {RoleGPRDst, RoleGPRSrc},

	MMV: {RoleVDst, RoleSize, RoleMSrc, RoleVSrc, RoleSize},
	VMM: {RoleVDst, RoleSize, RoleMSrc, RoleVSrc, RoleSize},
	MMS: {RoleMDst, RoleSize, RoleMSrc, RoleGPRSrc},
	OP:  {RoleMDst, RoleVSrc, RoleSize, RoleVSrc, RoleSize},
	MAM: {RoleMDst, RoleSize, RoleMSrc, RoleMSrc},
	MSM: {RoleMDst, RoleSize, RoleMSrc, RoleMSrc},

	VAV:  {RoleVDst, RoleSize, RoleVSrc, RoleVSrc},
	VSV:  {RoleVDst, RoleSize, RoleVSrc, RoleVSrc},
	VMV:  {RoleVDst, RoleSize, RoleVSrc, RoleVSrc},
	VDV:  {RoleVDst, RoleSize, RoleVSrc, RoleVSrc},
	VAS:  {RoleVDst, RoleSize, RoleVSrc, RoleGPRSrc},
	VEXP: {RoleVDst, RoleSize, RoleVSrc},
	VLOG: {RoleVDst, RoleSize, RoleVSrc},
	VDOT: {RoleGPRDst, RoleSize, RoleVSrc, RoleVSrc},
	RV:   {RoleVDst, RoleSize},
	VMAX: {RoleGPRDst, RoleSize, RoleVSrc},
	VMIN: {RoleGPRDst, RoleSize, RoleVSrc},

	SADD: {RoleGPRDst, RoleGPRSrc, RoleGPRSrc},
	SSUB: {RoleGPRDst, RoleGPRSrc, RoleGPRSrc},
	SMUL: {RoleGPRDst, RoleGPRSrc, RoleGPRSrc},
	SDIV: {RoleGPRDst, RoleGPRSrc, RoleGPRSrc},
	SEXP: {RoleGPRDst, RoleGPRSrc},
	SLOG: {RoleGPRDst, RoleGPRSrc},

	VGT:  {RoleVDst, RoleSize, RoleVSrc, RoleVSrc},
	VE:   {RoleVDst, RoleSize, RoleVSrc, RoleVSrc},
	VAND: {RoleVDst, RoleSize, RoleVSrc, RoleVSrc},
	VOR:  {RoleVDst, RoleSize, RoleVSrc, RoleVSrc},
	VNOT: {RoleVDst, RoleSize, RoleVSrc},
	VGTM: {RoleVDst, RoleSize, RoleVSrc, RoleVSrc},

	SGT:  {RoleGPRDst, RoleGPRSrc, RoleGPRSrc},
	SE:   {RoleGPRDst, RoleGPRSrc, RoleGPRSrc},
	SAND: {RoleGPRDst, RoleGPRSrc, RoleGPRSrc},
}

// Roles returns the operand roles of op in operand order (fixed registers
// first, tail operand last).
func (op Opcode) Roles() []Role {
	if !op.Valid() {
		panic(fmt.Sprintf("core: Roles of invalid opcode %d", uint8(op)))
	}
	return roleTable[op]
}

// ReadRegs appends to dst the GPR indices read by inst: every register
// operand except pure destinations (address and size operands are reads —
// the GPR value supplies the address/size even when the scratchpad region it
// names is written).
func (inst Instruction) ReadRegs(dst []uint8) []uint8 {
	roles := inst.Op.Roles()
	n := inst.regCount()
	for i := 0; i < n; i++ {
		if roles[i] != RoleGPRDst {
			dst = append(dst, inst.R[i])
		}
	}
	return dst
}

// DestReg returns the GPR written by inst and true, or 0 and false when the
// instruction writes no register.
func (inst Instruction) DestReg() (uint8, bool) {
	roles := inst.Op.Roles()
	n := inst.regCount()
	for i := 0; i < n; i++ {
		if roles[i] == RoleGPRDst {
			return inst.R[i], true
		}
	}
	return 0, false
}
