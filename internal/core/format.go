package core

import "fmt"

// TailKind describes the final operand of an instruction format.
type TailKind uint8

const (
	// TailNone: the instruction has only register operands.
	TailNone TailKind = iota
	// TailRegImm: the final operand may be either a GPR or a 32-bit
	// immediate, selected by the instruction word's immediate flag
	// (e.g. JUMP's "Reg0/Immed" field in Fig. 1).
	TailRegImm
	// TailImm: the final operand is always a 32-bit immediate
	// (e.g. VLOAD's Src_offset in Fig. 2).
	TailImm
)

func (k TailKind) String() string {
	switch k {
	case TailNone:
		return "none"
	case TailRegImm:
		return "reg/imm"
	case TailImm:
		return "imm"
	default:
		return fmt.Sprintf("TailKind(%d)", uint8(k))
	}
}

// Format describes the operand layout of an opcode: a fixed number of
// register operands followed by an optional tail operand.
type Format struct {
	Regs int      // number of fixed register operands (0..5)
	Tail TailKind // kind of the final operand, if any
}

// Operands returns the total operand count of the format.
func (f Format) Operands() int {
	if f.Tail == TailNone {
		return f.Regs
	}
	return f.Regs + 1
}

// Binary layout of the 64-bit instruction word. All instructions share the
// same length "for the memory alignment and for the design simplicity of the
// load/store/decoding logic" (Section II-B).
//
//	bits [63:56] opcode (8 bits)
//	bit  [55]    immediate flag (tail operand is an immediate)
//	bits [54:49],[48:43],[42:37],[36:31],[30:25]  register fields r0..r4 (6 bits each)
//	bits [31:0]  32-bit immediate (formats with <=3 register fields only)
//
// Register fields and the immediate never coexist past r2: every format with
// an immediate has at most three fixed register operands plus one optional
// tail register, exactly as in the published encodings (Figs. 1, 2, 4, 6).
const (
	opcodeShift  = 56
	immFlagShift = 55
	regFieldBits = 6
	regFieldMask = (1 << regFieldBits) - 1
	reg0Shift    = immFlagShift - regFieldBits // 49
	immMask      = (1 << 32) - 1
)

// WordBytes is the size of one encoded instruction: all Cambricon
// instructions are 64-bit.
const WordBytes = 8

// regShift returns the bit position of register field i.
func regShift(i int) int { return reg0Shift - i*regFieldBits }

// Encode packs inst into its 64-bit binary form. It returns an error if the
// instruction fails Validate.
func Encode(inst Instruction) (uint64, error) {
	if err := inst.Validate(); err != nil {
		return 0, err
	}
	w := uint64(inst.Op) << opcodeShift
	nregs := inst.regCount()
	for i := 0; i < nregs; i++ {
		w |= uint64(inst.R[i]&regFieldMask) << regShift(i)
	}
	if inst.hasImm() {
		w |= 1 << immFlagShift
		w |= uint64(uint32(inst.Imm))
	}
	return w, nil
}

// Decode unpacks a 64-bit instruction word. It returns an error for invalid
// opcodes or malformed flag combinations.
func Decode(w uint64) (Instruction, error) {
	op := Opcode(w >> opcodeShift)
	if !op.Valid() {
		return Instruction{}, fmt.Errorf("core: invalid opcode %d in word %#016x", uint8(op), w)
	}
	f := op.Format()
	immFlag := w>>immFlagShift&1 == 1
	inst := Instruction{Op: op}
	switch f.Tail {
	case TailImm:
		if !immFlag {
			return Instruction{}, fmt.Errorf("core: %v requires immediate flag, word %#016x", op, w)
		}
		inst.TailImm = true
	case TailRegImm:
		inst.TailImm = immFlag
	case TailNone:
		if immFlag {
			return Instruction{}, fmt.Errorf("core: %v has no immediate but flag set, word %#016x", op, w)
		}
	}
	nregs := inst.regCount()
	for i := 0; i < nregs; i++ {
		inst.R[i] = uint8(w >> regShift(i) & regFieldMask)
	}
	if inst.hasImm() {
		inst.Imm = int32(uint32(w & immMask))
	}
	return inst, nil
}

// EncodeProgram serializes a program to its binary image, 8 bytes per
// instruction, little-endian words.
func EncodeProgram(prog []Instruction) ([]byte, error) {
	out := make([]byte, 0, len(prog)*WordBytes)
	for i, inst := range prog {
		w, err := Encode(inst)
		if err != nil {
			return nil, fmt.Errorf("core: instruction %d: %w", i, err)
		}
		for b := 0; b < WordBytes; b++ {
			out = append(out, byte(w>>(8*b)))
		}
	}
	return out, nil
}

// DecodeProgram parses a binary image produced by EncodeProgram.
func DecodeProgram(img []byte) ([]Instruction, error) {
	if len(img)%WordBytes != 0 {
		return nil, fmt.Errorf("core: program image length %d is not a multiple of %d", len(img), WordBytes)
	}
	prog := make([]Instruction, 0, len(img)/WordBytes)
	for i := 0; i < len(img); i += WordBytes {
		var w uint64
		for b := 0; b < WordBytes; b++ {
			w |= uint64(img[i+b]) << (8 * b)
		}
		inst, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("core: instruction %d: %w", i/WordBytes, err)
		}
		prog = append(prog, inst)
	}
	return prog, nil
}
