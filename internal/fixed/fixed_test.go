package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromFloatRoundTrip(t *testing.T) {
	cases := []float64{0, 1, -1, 0.5, -0.5, 3.25, -3.25, 127.5, -127.5, 1.0 / 256}
	for _, f := range cases {
		n := FromFloat(f)
		if got := n.Float(); got != f {
			t.Errorf("FromFloat(%v).Float() = %v", f, got)
		}
	}
}

func TestFromFloatSaturates(t *testing.T) {
	if FromFloat(1e9) != Max {
		t.Errorf("large positive should saturate to Max")
	}
	if FromFloat(-1e9) != Min {
		t.Errorf("large negative should saturate to Min")
	}
	if FromFloat(200) != Max {
		t.Errorf("200 exceeds Q8.8 range, should saturate")
	}
}

func TestFromFloatRoundsToNearest(t *testing.T) {
	step := 1.0 / 256
	// A value 0.4 steps above a representable point rounds down; 0.6 rounds up.
	base := 3.0
	if got := FromFloat(base + 0.4*step); got != FromFloat(base) {
		t.Errorf("0.4 LSB should round down: got %v", got.Float())
	}
	if got := FromFloat(base + 0.6*step); got != FromFloat(base)+1 {
		t.Errorf("0.6 LSB should round up: got %v", got.Float())
	}
}

func TestAddSubSaturation(t *testing.T) {
	if Add(Max, 1) != Max {
		t.Errorf("Add should saturate at Max")
	}
	if Sub(Min, 1) != Min {
		t.Errorf("Sub should saturate at Min")
	}
	if Add(FromFloat(2), FromFloat(3)) != FromFloat(5) {
		t.Errorf("2+3 != 5")
	}
	if Sub(FromFloat(2), FromFloat(3)) != FromFloat(-1) {
		t.Errorf("2-3 != -1")
	}
}

func TestMul(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{2, 3, 6},
		{-2, 3, -6},
		{0.5, 0.5, 0.25},
		{-0.5, -0.5, 0.25},
		{0, 5, 0},
	}
	for _, c := range cases {
		if got := Mul(FromFloat(c.a), FromFloat(c.b)); got != FromFloat(c.want) {
			t.Errorf("Mul(%v,%v) = %v, want %v", c.a, c.b, got.Float(), c.want)
		}
	}
	if Mul(Max, Max) != Max {
		t.Errorf("Max*Max should saturate")
	}
	if Mul(Min, Min) != Max {
		t.Errorf("Min*Min should saturate positive")
	}
}

func TestDiv(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{6, 3, 2},
		{-6, 3, -2},
		{1, 2, 0.5},
		{1, 4, 0.25},
	}
	for _, c := range cases {
		if got := Div(FromFloat(c.a), FromFloat(c.b)); got != FromFloat(c.want) {
			t.Errorf("Div(%v,%v) = %v, want %v", c.a, c.b, got.Float(), c.want)
		}
	}
	if Div(FromFloat(1), 0) != Max {
		t.Errorf("positive/0 should clamp to Max")
	}
	if Div(FromFloat(-1), 0) != Min {
		t.Errorf("negative/0 should clamp to Min")
	}
	if Div(0, 0) != Max {
		t.Errorf("0/0 clamps to Max by convention")
	}
}

func TestDivAccuracy(t *testing.T) {
	// Division should be within one LSB of the real quotient over a sweep.
	for a := -100; a <= 100; a += 7 {
		for b := -100; b <= 100; b += 13 {
			if b == 0 {
				continue
			}
			fa, fb := float64(a)/8, float64(b)/8
			got := Div(FromFloat(fa), FromFloat(fb)).Float()
			want := fa / fb
			if want > 127.99 || want < -128 {
				continue
			}
			if math.Abs(got-want) > 1.5/256 {
				t.Fatalf("Div(%v,%v)=%v want %v", fa, fb, got, want)
			}
		}
	}
}

func TestDot(t *testing.T) {
	a := FromFloats([]float64{1, 2, 3})
	b := FromFloats([]float64{4, 5, 6})
	if got := Dot(a, b); got != FromFloat(32) {
		t.Errorf("Dot = %v, want 32", got.Float())
	}
}

func TestDotAccumulatesWide(t *testing.T) {
	// 1000 products of 10*10 = 100000 overflows int16 wildly but the wide
	// accumulator must only saturate at the final fold.
	n := 1000
	a := make([]Num, n)
	for i := range a {
		a[i] = FromFloat(10)
	}
	if got := Dot(a, a); got != Max {
		t.Errorf("huge dot should saturate to Max, got %v", got.Float())
	}
	// Alternating +10*10 and -10*10 cancels exactly: the wide accumulator
	// must not saturate mid-sum.
	b := make([]Num, n)
	for i := range b {
		if i%2 == 0 {
			b[i] = FromFloat(10)
		} else {
			b[i] = FromFloat(-10)
		}
	}
	if got := Dot(a, b); got != 0 {
		t.Errorf("cancelling dot = %v, want 0", got.Float())
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on length mismatch")
		}
	}()
	Dot(make([]Num, 2), make([]Num, 3))
}

func TestExpLog(t *testing.T) {
	if got, want := Exp(0).Float(), 1.0; got != want {
		t.Errorf("Exp(0) = %v", got)
	}
	if got := Exp(FromFloat(1)).Float(); math.Abs(got-math.E) > 1.0/256 {
		t.Errorf("Exp(1) = %v", got)
	}
	if got := Log(FromFloat(math.E)).Float(); math.Abs(got-1) > 2.0/256 {
		t.Errorf("Log(e) = %v", got)
	}
	if Log(0) != Min {
		t.Errorf("Log(0) should clamp to Min")
	}
	if Log(FromFloat(-1)) != Min {
		t.Errorf("Log(-1) should clamp to Min")
	}
	// Exp of a large value saturates.
	if Exp(FromFloat(20)) != Max {
		t.Errorf("Exp(20) should saturate")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	ns := FromFloats([]float64{1.5, -2.25, 0, 127, -128})
	buf := make([]byte, Bytes(len(ns)))
	ToBytes(ns, buf)
	got := FromBytes(buf, len(ns))
	for i := range ns {
		if got[i] != ns[i] {
			t.Errorf("byte round trip [%d]: got %v want %v", i, got[i], ns[i])
		}
	}
}

func TestToBytesPanicsOnShortDst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	ToBytes(make([]Num, 4), make([]byte, 7))
}

func TestFromBytesPanicsOnShortSrc(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	FromBytes(make([]byte, 7), 4)
}

// Property: Add is commutative and matches saturated float addition.
func TestQuickAddProperties(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := Num(a), Num(b)
		if Add(x, y) != Add(y, x) {
			return false
		}
		want := FromFloat(x.Float() + y.Float())
		return Add(x, y) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Mul is commutative and within one LSB of float multiplication.
func TestQuickMulProperties(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := Num(a), Num(b)
		if Mul(x, y) != Mul(y, x) {
			return false
		}
		wantF := x.Float() * y.Float()
		got := Mul(x, y).Float()
		if wantF >= Max.Float() {
			return got == Max.Float()
		}
		if wantF <= Min.Float() {
			return got == Min.Float()
		}
		return math.Abs(got-wantF) <= 1.0/256
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: byte serialization round-trips any value.
func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(vals []int16) bool {
		ns := make([]Num, len(vals))
		for i, v := range vals {
			ns[i] = Num(v)
		}
		buf := make([]byte, Bytes(len(ns)))
		ToBytes(ns, buf)
		got := FromBytes(buf, len(ns))
		for i := range ns {
			if got[i] != ns[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Sat clamps exactly to [Min, Max].
func TestQuickAccSat(t *testing.T) {
	f := func(v int64) bool {
		a := Acc(v)
		s := a.Sat()
		switch {
		case v > int64(Max):
			return s == Max
		case v < int64(Min):
			return s == Min
		default:
			return s == Num(v)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccFloat(t *testing.T) {
	if got := Acc(512).Float(); got != 2 {
		t.Errorf("Acc.Float = %v", got)
	}
	if got := MulAcc(FromFloat(2), FromFloat(3)); AccSat(got) != FromFloat(6) {
		t.Errorf("MulAcc/AccSat = %v", AccSat(got).Float())
	}
}
