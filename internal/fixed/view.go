package fixed

import "unsafe"

// hostLittleEndian reports whether the host stores multi-byte integers
// little-endian, i.e. whether the in-memory layout of a Num matches the
// little-endian scratchpad/main-memory storage format.
var hostLittleEndian = func() bool {
	v := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&v)) == 0x02
}()

// ViewBytes reinterprets src as count Nums without copying or decoding.
// The returned slice aliases src: it is valid only while src is, and it
// observes (and, if written, performs) any mutation of the underlying
// bytes. ok is false when the host layout does not permit aliasing — a
// big-endian host or a misaligned base pointer — in which case the caller
// must fall back to FromBytesInto.
func ViewBytes(src []byte, count int) (ns []Num, ok bool) {
	if count == 0 {
		return nil, true
	}
	if count < 0 || len(src) < 2*count || !hostLittleEndian {
		return nil, false
	}
	p := unsafe.Pointer(&src[0])
	if uintptr(p)%unsafe.Alignof(Num(0)) != 0 {
		return nil, false
	}
	return unsafe.Slice((*Num)(p), count), true
}
