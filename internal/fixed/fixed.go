// Package fixed implements the 16-bit fixed-point arithmetic used by the
// Cambricon-ACC datapath (Table II: "512 bits (32 x 16-bit fixed point)").
//
// Values are stored as Num, a signed 16-bit integer interpreted with
// FracBits fractional bits (Q8.8 by default: range [-128, 128), resolution
// 1/256). All arithmetic saturates on overflow, matching typical accelerator
// fixed-point datapaths. Dot products and matrix rows accumulate in a 32-bit
// Acc before a single rounding/saturation step, modelling the wide
// accumulators of the matrix function unit.
package fixed

import "math"

// FracBits is the number of fractional bits in a Num (Q8.8).
const FracBits = 8

// One is the fixed-point representation of 1.0.
const One Num = 1 << FracBits

// Max and Min are the saturation bounds of the 16-bit datapath.
const (
	Max Num = math.MaxInt16
	Min Num = math.MinInt16
)

// Num is a 16-bit fixed-point number with FracBits fractional bits.
type Num int16

// Acc is a 32-bit accumulator with FracBits fractional bits. It is wide
// enough to sum 2^16 products of arbitrary Nums without overflow checks on
// every step; Sat folds it back to a Num.
type Acc int64

// FromFloat converts f to fixed point, rounding to nearest and saturating.
func FromFloat(f float64) Num {
	scaled := math.Round(f * (1 << FracBits))
	if scaled > float64(Max) {
		return Max
	}
	if scaled < float64(Min) {
		return Min
	}
	return Num(scaled)
}

// Float converts n back to a float64.
func (n Num) Float() float64 { return float64(n) / (1 << FracBits) }

// Float converts the accumulator to a float64.
func (a Acc) Float() float64 { return float64(a) / (1 << FracBits) }

// Sat rounds the accumulator into the 16-bit range.
func (a Acc) Sat() Num {
	if a > Acc(Max) {
		return Max
	}
	if a < Acc(Min) {
		return Min
	}
	return Num(a)
}

func sat32(v int32) Num {
	if v > int32(Max) {
		return Max
	}
	if v < int32(Min) {
		return Min
	}
	return Num(v)
}

// Add returns a+b with saturation.
func Add(a, b Num) Num { return sat32(int32(a) + int32(b)) }

// Sub returns a-b with saturation.
func Sub(a, b Num) Num { return sat32(int32(a) - int32(b)) }

// Mul returns a*b with rounding to nearest and saturation.
func Mul(a, b Num) Num {
	p := int32(a) * int32(b)
	// Round to nearest: add half an LSB before the arithmetic shift.
	p += 1 << (FracBits - 1)
	return sat32(p >> FracBits)
}

// Div returns a/b with rounding toward nearest and saturation. Division by
// zero saturates toward the sign of a (and returns Max for 0/0), matching a
// hardware divider that flags and clamps.
func Div(a, b Num) Num {
	if b == 0 {
		if a < 0 {
			return Min
		}
		return Max
	}
	n := int64(a) << (FracBits + 1) // one extra bit for rounding
	q := n / int64(b)
	if q >= 0 {
		q = (q + 1) >> 1
	} else {
		q = -(((-q) + 1) >> 1)
	}
	if q > int64(Max) {
		return Max
	}
	if q < int64(Min) {
		return Min
	}
	return Num(q)
}

// MulAcc returns the full-precision product of a and b as an accumulator
// value (still scaled by 2^(2*FracBits); callers accumulating several
// products should use Acc arithmetic and fold once via AccSat).
func MulAcc(a, b Num) Acc { return Acc(int64(a) * int64(b)) }

// AccSat folds a sum of raw products (scale 2^(2*FracBits)) back to a Num,
// rounding to nearest.
func AccSat(sum Acc) Num {
	s := int64(sum)
	if s >= 0 {
		s += 1 << (FracBits - 1)
	} else {
		s -= 1 << (FracBits - 1)
	}
	s >>= FracBits
	if s > int64(Max) {
		return Max
	}
	if s < int64(Min) {
		return Min
	}
	return Num(s)
}

// Dot computes the dot product of a and b with 64-bit accumulation and a
// single final rounding, mirroring the matrix unit's wide accumulators.
// It panics if the lengths differ (an ISA-level size mismatch is a program
// bug caught earlier by the simulator).
func Dot(a, b []Num) Num {
	if len(a) != len(b) {
		panic("fixed: dot product length mismatch")
	}
	var sum Acc
	for i := range a {
		sum += MulAcc(a[i], b[i])
	}
	return AccSat(sum)
}

// Exp returns e^n. The hardware computes transcendentals with a CORDIC
// functional block; we model its result as the correctly-rounded fixed-point
// value (CORDIC error is below the Q8.8 quantization step).
func Exp(n Num) Num { return FromFloat(math.Exp(n.Float())) }

// Log returns the natural logarithm of n. Non-positive inputs saturate to
// Min, modelling a clamped hardware flag.
func Log(n Num) Num {
	if n <= 0 {
		return Min
	}
	return FromFloat(math.Log(n.Float()))
}

// FromFloats converts a float slice to fixed point.
func FromFloats(fs []float64) []Num {
	out := make([]Num, len(fs))
	for i, f := range fs {
		out[i] = FromFloat(f)
	}
	return out
}

// Floats converts a fixed-point slice to floats.
func Floats(ns []Num) []float64 {
	out := make([]float64, len(ns))
	for i, n := range ns {
		out[i] = n.Float()
	}
	return out
}

// ToBytes serializes ns little-endian into dst, which must hold 2*len(ns)
// bytes. This is the scratchpad/main-memory storage format.
func ToBytes(ns []Num, dst []byte) {
	if len(dst) < 2*len(ns) {
		panic("fixed: ToBytes destination too small")
	}
	// Reslicing to the exact extent lets the compiler drop the
	// per-element bounds checks and widen the stores.
	dst = dst[:2*len(ns)]
	for i, n := range ns {
		u := uint16(n)
		dst[2*i] = byte(u)
		dst[2*i+1] = byte(u >> 8)
	}
}

// FromBytes deserializes count little-endian Nums from src.
func FromBytes(src []byte, count int) []Num {
	out := make([]Num, count)
	FromBytesInto(src, out)
	return out
}

// FromBytesInto deserializes len(dst) little-endian Nums from src into dst
// (allocation-free deserialization for hot paths).
func FromBytesInto(src []byte, dst []Num) {
	if len(src) < 2*len(dst) {
		panic("fixed: FromBytesInto source too small")
	}
	src = src[:2*len(dst)]
	for i := range dst {
		dst[i] = Num(uint16(src[2*i]) | uint16(src[2*i+1])<<8)
	}
}

// Bytes is the storage size in bytes of n fixed-point elements.
func Bytes(n int) int { return 2 * n }
