package tsdb

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cambricon/internal/metrics"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenStore builds the fixed scenario both golden files render: a
// counter, a labelled gauge pair and a histogram sampled through four
// passes of an injected clock.
func goldenStore(t *testing.T) (*Store, []Alert) {
	t.Helper()
	reg := metrics.New()
	c := reg.Counter("cambricon_serve_requests_total", "requests", metrics.L("code", "200"))
	g := reg.Gauge("cambricon_serve_queue_waiting", "waiting")
	h := reg.Histogram("cambricon_serve_queue_wait_seconds", "queue wait", []float64{0.001, 0.01, 0.1})
	s, clk := newTestStore(t, reg, 16)

	clk.sample(s, time.Second) // baseline
	for pass := 1; pass <= 4; pass++ {
		c.Add(int64(pass * 2))
		g.Set(int64(pass % 3))
		for i := 0; i < pass; i++ {
			h.Observe(0.005 * float64(pass))
		}
		clk.sample(s, time.Second)
	}

	rules := []Rule{{
		Name: "wait", Kind: KindLatency,
		Metric:    "cambricon_serve_queue_wait_seconds",
		Threshold: 0.01, Budget: 0.01,
		Fast: 2 * time.Second, Slow: time.Minute,
	}}
	return s, Eval(s, rules)
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/tsdb -run TestGolden -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s differs from golden (re-run with -update if intended)\ngot:\n%s", name, got)
	}
}

// TestGoldenVars pins /vars byte-for-byte under the injected clock.
func TestGoldenVars(t *testing.T) {
	s, _ := goldenStore(t)
	var buf bytes.Buffer
	if err := s.WriteVars(&buf, time.Minute); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "vars.golden.json", buf.Bytes())

	// Render twice: identical bytes (no map-order nondeterminism).
	var buf2 bytes.Buffer
	if err := s.WriteVars(&buf2, time.Minute); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("two /vars renders of the same state differ")
	}
}

// TestGoldenDash pins /dash byte-for-byte under the injected clock.
func TestGoldenDash(t *testing.T) {
	s, alerts := goldenStore(t)
	var buf bytes.Buffer
	if err := s.WriteDash(&buf, time.Minute, alerts); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	for _, want := range []string{
		"<svg class=\"spark\"", // sparklines rendered
		"cambricon_serve_queue_wait_seconds",
		"code=&#34;200&#34;", // labels HTML-escaped
		"<h2>slo</h2>",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("/dash page lacks %q:\n%s", want, page)
		}
	}
	checkGolden(t, "dash.golden.html", buf.Bytes())

	var buf2 bytes.Buffer
	if err := s.WriteDash(&buf2, time.Minute, alerts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("two /dash renders of the same state differ")
	}
}

// TestDashNilStore pins the sampler-disabled page.
func TestDashNilStore(t *testing.T) {
	var s *Store
	var buf bytes.Buffer
	if err := s.WriteDash(&buf, time.Minute, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sampler disabled") {
		t.Fatalf("nil-store dash = %q", buf.String())
	}
}
