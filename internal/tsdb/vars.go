package tsdb

// GET /vars: the sampled history as JSON. The encoding is slice-based
// (no maps) and walks the sorted series keys, so the output for a given
// store state and injected clock is byte-deterministic — the golden test
// and any diff-based tooling rely on that.

import (
	"encoding/json"
	"io"
	"time"
)

// VarsSeries is one series in the /vars payload.
type VarsSeries struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Kind   string  `json:"kind"`
	Points []Point `json:"points"`
}

// Vars is the /vars payload shape.
type Vars struct {
	Now        int64        `json:"now_ms"`
	IntervalMS int64        `json:"interval_ms"`
	Capacity   int          `json:"capacity"`
	Passes     uint64       `json:"passes"`
	WindowMS   int64        `json:"window_ms"`
	Series     []VarsSeries `json:"series"`
}

// Snapshot collects the windowed history into a Vars value.
func (s *Store) Snapshot(window time.Duration) Vars {
	v := Vars{Series: []VarsSeries{}}
	if s == nil {
		return v
	}
	v.Now = s.now().UnixMilli()
	v.IntervalMS = s.interval.Milliseconds()
	v.Capacity = s.cap
	v.Passes = s.Passes()
	v.WindowMS = window.Milliseconds()
	s.EachSeries(window, func(meta SeriesMeta, pts []Point) {
		v.Series = append(v.Series, VarsSeries{
			Name:   meta.Name,
			Labels: meta.Labels,
			Kind:   meta.Kind,
			Points: append([]Point{}, pts...),
		})
	})
	return v
}

// WriteVars writes the windowed history as indented JSON, trailing
// newline included.
func (s *Store) WriteVars(w io.Writer, window time.Duration) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s.Snapshot(window))
}
