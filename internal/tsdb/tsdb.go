// Package tsdb is the in-process metrics history (docs/OBSERVABILITY.md,
// "Metrics history, SLOs, and autoscaling"): a dependency-free,
// fixed-memory ring-buffer time-series store sampled from a
// metrics.Registry. Where internal/metrics answers "what are the totals
// right now", this package answers "what happened over the last N
// minutes" — windowed rates, quantile estimates over histogram-bucket
// deltas, SLO burn rates — which is what the camserve autoscaler and the
// /alerts, /vars and /dash endpoints act on.
//
// Each Sample pass visits every registry series (Registry.Each, the same
// sorted walk the Prometheus encoder serializes) and appends one point
// per series into a fixed-capacity ring: counters record the delta since
// the previous pass, gauges record the last value, histograms record the
// per-bucket, count and sum deltas. Memory is bounded at construction —
// capacity points per series, rings preallocated on first sight of a
// series — and the oldest points are overwritten in place, so a store
// never grows with uptime.
//
// The clock is injectable (Options.Now), which makes every downstream
// artifact — /vars JSON, the /dash HTML with its inline SVG sparklines,
// alert evaluations — byte-deterministic in tests.
package tsdb

import (
	"sync"
	"time"

	"cambricon/internal/metrics"
)

// Self-observation families a sampling Store exports when a registry is
// handed to Options.Metrics (usually the same registry it samples, so
// the sampler's own health shows up one pass later).
const (
	MetricSamplePasses = "cambricon_tsdb_sample_passes_total"
	MetricPoints       = "cambricon_tsdb_points_total"
	MetricSeries       = "cambricon_tsdb_series"
	MetricCapacity     = "cambricon_tsdb_capacity_points"
)

// DefaultCapacity is the per-series point retention when Options.Capacity
// is unset: at a 1s sampling interval this is 10 minutes of history.
const DefaultCapacity = 600

// Options configures a Store.
type Options struct {
	// Interval is the nominal sampling cadence. The store itself never
	// ticks — the owner calls Sample — but the interval is reported by
	// Interval() so rate windows and dashboards can state the resolution.
	Interval time.Duration
	// Capacity is the number of points retained per series
	// (DefaultCapacity when <= 0). Memory per series is fixed at
	// construction: capacity points, plus capacity×buckets for histograms.
	Capacity int
	// Now is the clock (time.Now when nil); inject a fake for
	// deterministic tests and golden files.
	Now func() time.Time
	// Metrics, when non-nil, receives the cambricon_tsdb_* families.
	Metrics *metrics.Registry
}

// Store samples a metrics.Registry into bounded per-series rings.
// Sample, and every query, is safe for concurrent use.
type Store struct {
	reg      *metrics.Registry
	interval time.Duration
	cap      int
	now      func() time.Time

	mu     sync.RWMutex
	series map[string]*series
	keys   []string // sorted series keys, maintained on insert
	passes uint64

	passesC *metrics.Counter
	pointsC *metrics.Counter
	seriesG *metrics.Gauge
}

// series is one metric series' history: a delta baseline plus
// fixed-capacity rings. All fields are guarded by Store.mu.
type series struct {
	name, labels string
	kind         metrics.Kind
	bounds       []float64 // histogram bucket upper bounds (copied)

	// Baseline for delta encoding: the raw cumulative state at the
	// previous pass. The first pass only establishes it (no point), so a
	// store attached to a long-lived registry never records a
	// since-process-start spike as one interval's delta.
	seen        bool
	prevValue   float64
	prevCount   uint64
	prevSum     float64
	prevBuckets []uint64

	// Rings: head is the next write slot, n the live point count.
	// vals holds counter deltas, gauge values, or histogram count
	// deltas; sums and buckets (flat, cap×(len(bounds)+1)) exist for
	// histograms only.
	head, n int
	times   []int64 // unix milliseconds
	vals    []float64
	sums    []float64
	buckets []float64
}

// New builds a store over reg. Sampling does not start by itself: call
// Sample on whatever cadence (or test schedule) you own.
func New(reg *metrics.Registry, opts Options) *Store {
	capacity := opts.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	s := &Store{
		reg:      reg,
		interval: opts.Interval,
		cap:      capacity,
		now:      now,
		series:   map[string]*series{},
		passesC:  opts.Metrics.Counter(MetricSamplePasses, "tsdb sampling passes completed"),
		pointsC:  opts.Metrics.Counter(MetricPoints, "points recorded into the tsdb rings"),
		seriesG:  opts.Metrics.Gauge(MetricSeries, "series tracked by the tsdb"),
	}
	opts.Metrics.Gauge(MetricCapacity, "points retained per tsdb series").Set(int64(capacity))
	return s
}

// Interval reports the nominal sampling cadence the store was built for.
func (s *Store) Interval() time.Duration { return s.interval }

// Capacity reports the per-series point retention.
func (s *Store) Capacity() int { return s.cap }

// Passes reports how many Sample passes have completed.
func (s *Store) Passes() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.passes
}

// keySep joins a family name and its rendered label body into a series
// key; 0x1f (unit separator) cannot appear in a metric name and is
// escaped out of label values.
const keySep = "\x1f"

// Sample takes one pass over the registry at the store's current clock
// reading: every series gets a baseline update and (after its first
// sight) one new point. A nil store is a no-op.
func (s *Store) Sample() {
	if s == nil {
		return
	}
	ts := s.now().UnixMilli()
	var points int64
	s.mu.Lock()
	s.reg.Each(func(sm *metrics.Sample) {
		if s.record(sm, ts) {
			points++
		}
	})
	s.passes++
	nSeries := len(s.series)
	s.mu.Unlock()
	s.passesC.Inc()
	s.pointsC.Add(points)
	s.seriesG.Set(int64(nSeries))
}

// record folds one registry sample into its series; reports whether a
// point was written (false on the baseline-establishing first sight).
// Caller holds s.mu.
func (s *Store) record(sm *metrics.Sample, ts int64) bool {
	key := sm.Name + keySep + sm.Labels
	se := s.series[key]
	if se == nil {
		se = s.newSeries(sm)
		s.series[key] = se
		s.insertKey(key)
	}
	switch se.kind {
	case metrics.KindGauge:
		se.push(ts, sm.Value)
		return true
	case metrics.KindCounter:
		if !se.seen {
			se.seen = true
			se.prevValue = sm.Value
			return false
		}
		d := sm.Value - se.prevValue
		if d < 0 {
			// A counter went backwards (reset); treat the new value as
			// the whole delta, the usual rate() semantics.
			d = sm.Value
		}
		se.prevValue = sm.Value
		se.push(ts, d)
		return true
	case metrics.KindHistogram:
		if !se.seen {
			se.seen = true
			se.prevCount = sm.Count
			se.prevSum = sm.Sum
			copy(se.prevBuckets, sm.BucketCounts)
			return false
		}
		slot := se.advance(ts)
		se.vals[slot] = float64(sm.Count - se.prevCount)
		se.sums[slot] = sm.Sum - se.prevSum
		nb := len(se.bounds) + 1
		base := slot * nb
		for i := 0; i < nb && i < len(sm.BucketCounts); i++ {
			se.buckets[base+i] = float64(sm.BucketCounts[i] - se.prevBuckets[i])
			se.prevBuckets[i] = sm.BucketCounts[i]
		}
		se.prevCount = sm.Count
		se.prevSum = sm.Sum
		return true
	}
	return false
}

// newSeries allocates the fixed rings for one just-discovered series.
func (s *Store) newSeries(sm *metrics.Sample) *series {
	se := &series{
		name:   sm.Name,
		labels: sm.Labels,
		kind:   sm.Kind,
		times:  make([]int64, s.cap),
		vals:   make([]float64, s.cap),
	}
	if sm.Kind == metrics.KindHistogram {
		se.bounds = append([]float64(nil), sm.Bounds...)
		se.prevBuckets = make([]uint64, len(sm.Bounds)+1)
		se.sums = make([]float64, s.cap)
		se.buckets = make([]float64, s.cap*(len(sm.Bounds)+1))
	}
	return se
}

// insertKey keeps s.keys sorted (insertion sort: series arrive rarely
// and the registry walk is already sorted).
func (s *Store) insertKey(key string) {
	i := 0
	for i < len(s.keys) && s.keys[i] < key {
		i++
	}
	s.keys = append(s.keys, "")
	copy(s.keys[i+1:], s.keys[i:])
	s.keys[i] = key
}

// advance claims the next ring slot for a point at ts.
func (se *series) advance(ts int64) int {
	slot := se.head
	se.times[slot] = ts
	se.head = (se.head + 1) % len(se.times)
	if se.n < len(se.times) {
		se.n++
	}
	return slot
}

// push writes a scalar point (counter delta or gauge value).
func (se *series) push(ts int64, v float64) {
	se.vals[se.advance(ts)] = v
}

// eachPoint visits the live points oldest-first, passing the ring slot
// so histogram visitors can address the bucket row.
func (se *series) eachPoint(visit func(slot int, ts int64, v float64)) {
	c := len(se.times)
	start := se.head - se.n
	if start < 0 {
		start += c
	}
	for i := 0; i < se.n; i++ {
		slot := (start + i) % c
		visit(slot, se.times[slot], se.vals[slot])
	}
}
