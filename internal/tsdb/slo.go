package tsdb

// Declarative SLO engine: multi-window burn-rate rules (the Google SRE
// workbook shape) evaluated against the sampled history. A rule states a
// bad-event fraction budget; the burn rate is how many times faster than
// budget the service is consuming error budget over a window. Firing
// fast-burn requires BOTH the fast and slow windows to burn hot, which
// keeps a short blip from paging while still catching a hard outage in
// the fast window's span.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// RuleKind selects how a rule turns samples into a bad fraction.
type RuleKind string

const (
	// KindLatency reads one histogram family: bad = observations above
	// Threshold (snapped to a bucket bound), total = all observations.
	KindLatency RuleKind = "latency"
	// KindRatio reads two counter families: bad = delta of Metric,
	// total = delta of Total.
	KindRatio RuleKind = "ratio"
)

// Default burn-rate thresholds: 14.4× burns a 30-day budget in ~2 days,
// 6× in 5 days — the canonical page/ticket split.
const (
	DefaultFastBurn = 14.4
	DefaultSlowBurn = 6.0
)

// Default evaluation windows.
const (
	DefaultFastWindow = 5 * time.Minute
	DefaultSlowWindow = 1 * time.Hour
)

// Rule is one SLO burn-rate rule.
type Rule struct {
	Name      string
	Kind      RuleKind
	Metric    string  // latency: histogram family; ratio: bad-counter family
	Total     string  // ratio only: total-counter family
	Threshold float64 // latency only: seconds, snapped to a bucket bound
	Budget    float64 // allowed bad fraction, e.g. 0.01 for a 99% SLO

	Fast, Slow         time.Duration // evaluation windows
	FastBurn, SlowBurn float64       // burn-rate thresholds
}

// Alert is one rule's evaluation result.
type Alert struct {
	Name      string  `json:"name"`
	State     string  `json:"state"` // ok | slow-burn | fast-burn | no-data
	FastBurn  float64 `json:"fast_burn"`
	SlowBurn  float64 `json:"slow_burn"`
	Budget    float64 `json:"budget"`
	FastBad   float64 `json:"fast_bad"`
	FastTotal float64 `json:"fast_total"`
	SlowBad   float64 `json:"slow_bad"`
	SlowTotal float64 `json:"slow_total"`
}

// Alert states.
const (
	StateOK       = "ok"
	StateSlowBurn = "slow-burn"
	StateFastBurn = "fast-burn"
	StateNoData   = "no-data"
)

// normalize fills a rule's zero-valued knobs with the defaults.
func (r Rule) normalize() Rule {
	if r.Fast <= 0 {
		r.Fast = DefaultFastWindow
	}
	if r.Slow <= 0 {
		r.Slow = DefaultSlowWindow
	}
	if r.FastBurn <= 0 {
		r.FastBurn = DefaultFastBurn
	}
	if r.SlowBurn <= 0 {
		r.SlowBurn = DefaultSlowBurn
	}
	return r
}

// badFraction evaluates the rule's bad/total counts over one window.
func (r Rule) badFraction(s *Store, window time.Duration) (bad, total float64, ok bool) {
	switch r.Kind {
	case KindLatency:
		return s.BadFraction(r.Metric, r.Threshold, window)
	case KindRatio:
		t, tok := s.SumDelta(r.Total, window)
		if !tok || t <= 0 {
			return 0, 0, false
		}
		b, _ := s.SumDelta(r.Metric, window)
		if b < 0 {
			b = 0
		}
		return b, t, true
	}
	return 0, 0, false
}

// Eval evaluates every rule against the store's current history and
// returns one Alert per rule in rule order.
func Eval(s *Store, rules []Rule) []Alert {
	alerts := make([]Alert, 0, len(rules))
	for _, raw := range rules {
		r := raw.normalize()
		a := Alert{Name: r.Name, Budget: r.Budget, State: StateNoData}
		fb, ft, fok := r.badFraction(s, r.Fast)
		sb, st, sok := r.badFraction(s, r.Slow)
		if fok && ft > 0 {
			a.FastBad, a.FastTotal = fb, ft
			a.FastBurn = (fb / ft) / r.Budget
		}
		if sok && st > 0 {
			a.SlowBad, a.SlowTotal = sb, st
			a.SlowBurn = (sb / st) / r.Budget
		}
		switch {
		case !fok && !sok:
			// no data at all: leave StateNoData
		case fok && sok && a.FastBurn >= r.FastBurn && a.SlowBurn >= r.FastBurn:
			a.State = StateFastBurn
		case sok && a.SlowBurn >= r.SlowBurn:
			a.State = StateSlowBurn
		default:
			a.State = StateOK
		}
		alerts = append(alerts, a)
	}
	return alerts
}

// FastBurning returns the sorted names of rules currently in fast-burn,
// the set /readyz degrades on.
func FastBurning(alerts []Alert) []string {
	var names []string
	for _, a := range alerts {
		if a.State == StateFastBurn {
			names = append(names, a.Name)
		}
	}
	sort.Strings(names)
	return names
}

// DefaultRules are the rules camserve installs when sampling is enabled
// and no -slo spec overrides them: a p-latency SLO on queue wait (99% of
// admissions wait under ~26ms — the 100µs×4^k bucket bound closest to
// 25ms) and an availability SLO on sheds vs. requests (99.9%).
func DefaultRules() []Rule {
	return []Rule{
		{
			Name:      "queue-wait-fast",
			Kind:      KindLatency,
			Metric:    "cambricon_serve_queue_wait_seconds",
			Threshold: 0.0256,
			Budget:    0.01,
		},
		{
			Name:   "shed-ratio",
			Kind:   KindRatio,
			Metric: "cambricon_serve_sheds_total",
			Total:  "cambricon_serve_requests_total",
			Budget: 0.001,
		},
	}
}

// ParseRules parses a comma-separated -slo spec. Each rule is
//
//	name=latency:METRIC:THRESHOLD:BUDGET[@FAST,SLOW][!FASTBURN[,SLOWBURN]]
//	name=ratio:BAD/TOTAL:BUDGET[@FAST,SLOW][!FASTBURN[,SLOWBURN]]
//
// e.g. `wait=latency:cambricon_serve_queue_wait_seconds:0.0256:0.01@30s,5m!10`.
// Durations use Go syntax. Omitted windows and burn thresholds take the
// defaults. The literal spec "none" yields no rules.
func ParseRules(spec string) ([]Rule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	var rules []Rule
	for _, part := range strings.Split(spec, ",") {
		// Windows contain commas (`@30s,5m`), so re-join split fragments
		// that don't start a new `name=` rule.
		if i := len(rules) - 1; i >= 0 && !strings.Contains(part, "=") {
			r, err := amendRule(rules[i], part)
			if err != nil {
				return nil, err
			}
			rules[i] = r
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// parseRule parses one `name=kind:...` fragment (possibly missing its
// trailing window/burn pieces, which arrive via amendRule).
func parseRule(part string) (Rule, error) {
	name, rest, found := strings.Cut(strings.TrimSpace(part), "=")
	if !found || name == "" {
		return Rule{}, fmt.Errorf("tsdb: slo rule %q: want name=kind:...", part)
	}
	r := Rule{Name: name}

	// Peel optional suffixes right to left: !burns, then @windows.
	if body, burns, ok := cutLast(rest, "!"); ok {
		if err := parseBurns(&r, burns); err != nil {
			return Rule{}, fmt.Errorf("tsdb: slo rule %q: %w", name, err)
		}
		rest = body
	}
	if body, windows, ok := cutLast(rest, "@"); ok {
		if err := parseWindows(&r, windows); err != nil {
			return Rule{}, fmt.Errorf("tsdb: slo rule %q: %w", name, err)
		}
		rest = body
	}

	fields := strings.Split(rest, ":")
	switch fields[0] {
	case string(KindLatency):
		if len(fields) != 4 {
			return Rule{}, fmt.Errorf("tsdb: slo rule %q: want latency:METRIC:THRESHOLD:BUDGET", name)
		}
		r.Kind = KindLatency
		r.Metric = fields[1]
		var err error
		if r.Threshold, err = strconv.ParseFloat(fields[2], 64); err != nil || r.Threshold <= 0 {
			return Rule{}, fmt.Errorf("tsdb: slo rule %q: bad threshold %q", name, fields[2])
		}
		if r.Budget, err = strconv.ParseFloat(fields[3], 64); err != nil || r.Budget <= 0 || r.Budget >= 1 {
			return Rule{}, fmt.Errorf("tsdb: slo rule %q: bad budget %q", name, fields[3])
		}
	case string(KindRatio):
		if len(fields) != 3 {
			return Rule{}, fmt.Errorf("tsdb: slo rule %q: want ratio:BAD/TOTAL:BUDGET", name)
		}
		bad, total, ok := strings.Cut(fields[1], "/")
		if !ok || bad == "" || total == "" {
			return Rule{}, fmt.Errorf("tsdb: slo rule %q: want BAD/TOTAL metrics", name)
		}
		r.Kind = KindRatio
		r.Metric, r.Total = bad, total
		var err error
		if r.Budget, err = strconv.ParseFloat(fields[2], 64); err != nil || r.Budget <= 0 || r.Budget >= 1 {
			return Rule{}, fmt.Errorf("tsdb: slo rule %q: bad budget %q", name, fields[2])
		}
	default:
		return Rule{}, fmt.Errorf("tsdb: slo rule %q: unknown kind %q", name, fields[0])
	}
	return r, nil
}

// amendRule folds a comma-continuation fragment (the second half of a
// window or burn pair) into the preceding rule.
func amendRule(r Rule, part string) (Rule, error) {
	part = strings.TrimSpace(part)
	// `@30s,5m`: the fragment after the comma is the slow window.
	if r.Fast > 0 && r.Slow == 0 && !strings.Contains(part, "!") {
		d, err := time.ParseDuration(part)
		if err != nil {
			return r, fmt.Errorf("tsdb: slo rule %q: bad slow window %q", r.Name, part)
		}
		r.Slow = d
		return r, nil
	}
	// `@30s,5m!10` continuation carrying both the slow window and burns.
	if r.Fast > 0 && r.Slow == 0 {
		win, burns, _ := strings.Cut(part, "!")
		d, err := time.ParseDuration(win)
		if err != nil {
			return r, fmt.Errorf("tsdb: slo rule %q: bad slow window %q", r.Name, win)
		}
		r.Slow = d
		if err := parseBurns(&r, burns); err != nil {
			return r, fmt.Errorf("tsdb: slo rule %q: %w", r.Name, err)
		}
		return r, nil
	}
	// `!14.4,6`: the fragment after the comma is the slow burn.
	if r.FastBurn > 0 && r.SlowBurn == 0 {
		b, err := strconv.ParseFloat(part, 64)
		if err != nil || b <= 0 {
			return r, fmt.Errorf("tsdb: slo rule %q: bad slow burn %q", r.Name, part)
		}
		r.SlowBurn = b
		return r, nil
	}
	return r, fmt.Errorf("tsdb: slo rule %q: unexpected fragment %q", r.Name, part)
}

func parseWindows(r *Rule, s string) error {
	fast, slow, hasSlow := strings.Cut(s, ",")
	d, err := time.ParseDuration(fast)
	if err != nil {
		return fmt.Errorf("bad fast window %q", fast)
	}
	r.Fast = d
	if hasSlow {
		if d, err = time.ParseDuration(slow); err != nil {
			return fmt.Errorf("bad slow window %q", slow)
		}
		r.Slow = d
	}
	return nil
}

func parseBurns(r *Rule, s string) error {
	fast, slow, hasSlow := strings.Cut(s, ",")
	b, err := strconv.ParseFloat(fast, 64)
	if err != nil || b <= 0 {
		return fmt.Errorf("bad fast burn %q", fast)
	}
	r.FastBurn = b
	if hasSlow {
		if b, err = strconv.ParseFloat(slow, 64); err != nil || b <= 0 {
			return fmt.Errorf("bad slow burn %q", slow)
		}
		r.SlowBurn = b
	}
	return nil
}

// cutLast splits s at the last occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	i := strings.LastIndex(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}
