package tsdb

import (
	"testing"
	"time"

	"cambricon/internal/metrics"
)

// fakeClock is a manually-stepped clock for deterministic sampling.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.UnixMilli(1_700_000_000_000).UTC()}
}
func (c *fakeClock) now() time.Time       { return c.t }
func (c *fakeClock) step(d time.Duration) { c.t = c.t.Add(d) }
func (c *fakeClock) sample(s *Store, d time.Duration) {
	c.step(d)
	s.Sample()
}

func newTestStore(t *testing.T, reg *metrics.Registry, capacity int) (*Store, *fakeClock) {
	t.Helper()
	clk := newFakeClock()
	s := New(reg, Options{Interval: time.Second, Capacity: capacity, Now: clk.now})
	return s, clk
}

// TestCounterDeltas pins the delta encoding: the first pass establishes
// a baseline (no point), later passes record per-interval deltas, and a
// counter reset records the post-reset value as the delta.
func TestCounterDeltas(t *testing.T) {
	reg := metrics.New()
	c := reg.Counter("req_total", "requests")
	c.Add(100) // pre-store history must not appear as a spike
	s, clk := newTestStore(t, reg, 8)

	clk.sample(s, time.Second) // baseline pass
	if sum, ok := s.SumDelta("req_total", time.Hour); ok || sum != 0 {
		t.Fatalf("baseline pass recorded a point: sum=%v ok=%v", sum, ok)
	}

	c.Add(5)
	clk.sample(s, time.Second)
	c.Add(3)
	clk.sample(s, time.Second)

	if sum, ok := s.SumDelta("req_total", time.Hour); !ok || sum != 8 {
		t.Fatalf("SumDelta = %v ok=%v, want 8", sum, ok)
	}
	// Rate over a 2s window that covers both points.
	if rate, ok := s.Rate("req_total", 2*time.Second); !ok || rate != 4 {
		t.Fatalf("Rate = %v ok=%v, want 4/s", rate, ok)
	}
	// Window narrower than history only sees the last point.
	if sum, _ := s.SumDelta("req_total", time.Second); sum != 3 {
		t.Fatalf("1s-window SumDelta = %v, want 3", sum)
	}
}

// TestGaugeLast pins gauge semantics: last value wins, labelled series
// sum family-wide.
func TestGaugeLast(t *testing.T) {
	reg := metrics.New()
	g1 := reg.Gauge("depth", "queue depth", metrics.L("q", "a"))
	g2 := reg.Gauge("depth", "queue depth", metrics.L("q", "b"))
	s, clk := newTestStore(t, reg, 8)

	g1.Set(3)
	g2.Set(4)
	clk.sample(s, time.Second)
	g1.Set(10)
	clk.sample(s, time.Second)

	if v, ok := s.GaugeLast("depth"); !ok || v != 14 {
		t.Fatalf("GaugeLast = %v ok=%v, want 14", v, ok)
	}
	if _, ok := s.GaugeLast("missing"); ok {
		t.Fatal("GaugeLast on an unknown family reported ok")
	}
}

// TestRingWraparound pins the fixed-memory property: a capacity-4 ring
// holds exactly the last 4 points, oldest overwritten in place.
func TestRingWraparound(t *testing.T) {
	reg := metrics.New()
	c := reg.Counter("wrap_total", "")
	s, clk := newTestStore(t, reg, 4)

	clk.sample(s, time.Second) // baseline
	for i := 1; i <= 10; i++ {
		c.Add(int64(i))
		clk.sample(s, time.Second)
	}
	var got []float64
	s.EachSeries(time.Hour, func(_ SeriesMeta, pts []Point) {
		for _, p := range pts {
			got = append(got, p.V)
		}
	})
	want := []float64{7, 8, 9, 10}
	if len(got) != len(want) {
		t.Fatalf("ring holds %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ring holds %v, want %v (oldest-first)", got, want)
		}
	}
	// Timestamps must be ascending across the wrap seam.
	var prev int64
	s.EachSeries(time.Hour, func(_ SeriesMeta, pts []Point) {
		for _, p := range pts {
			if p.T <= prev {
				t.Fatalf("timestamps not ascending: %d after %d", p.T, prev)
			}
			prev = p.T
		}
	})
}

// TestCounterReset pins reset handling: a counter that goes backwards
// records the new value as the whole delta.
func TestCounterReset(t *testing.T) {
	reg := metrics.New()
	reg.Counter("r_total", "").Add(50)
	s, clk := newTestStore(t, reg, 8)
	clk.sample(s, time.Second) // baseline at 50

	// Simulate a reset by registering a fresh registry view: easier to
	// drive via a gauge-like swap is impossible for counters, so drive
	// record() directly through a second store pass with a smaller value
	// using a fresh registry sharing the series identity.
	reg2 := metrics.New()
	c2 := reg2.Counter("r_total", "")
	c2.Add(7)
	s.reg = reg2
	clk.sample(s, time.Second)

	if sum, ok := s.SumDelta("r_total", time.Hour); !ok || sum != 7 {
		t.Fatalf("post-reset SumDelta = %v ok=%v, want 7", sum, ok)
	}
}

// TestHistogramQuantiles pins bucket-delta merging and interpolation.
func TestHistogramQuantiles(t *testing.T) {
	reg := metrics.New()
	h := reg.Histogram("lat_seconds", "", []float64{0.1, 0.2, 0.4, 0.8})
	s, clk := newTestStore(t, reg, 8)
	clk.sample(s, time.Second) // baseline

	// 8 observations in (0.1, 0.2], 2 in (0.4, 0.8].
	for i := 0; i < 8; i++ {
		h.Observe(0.15)
	}
	h.Observe(0.5)
	h.Observe(0.6)
	clk.sample(s, time.Second)

	// p50 rank = 5 of 10 → inside the (0.1,0.2] bucket holding ranks
	// 1..8: 0.1 + (5/8)*0.1 = 0.1625.
	if q, ok := s.Quantile("lat_seconds", 0.5, time.Hour); !ok || q < 0.16 || q > 0.165 {
		t.Fatalf("p50 = %v ok=%v, want ~0.1625", q, ok)
	}
	// p95 rank = 9.5 → (0.4,0.8] bucket holding ranks 9..10:
	// 0.4 + ((9.5-8)/2)*0.4 = 0.7.
	if q, ok := s.Quantile("lat_seconds", 0.95, time.Hour); !ok || q < 0.69 || q > 0.71 {
		t.Fatalf("p95 = %v ok=%v, want ~0.7", q, ok)
	}
	// CountRate over the 1s window holding the 10 observations.
	if r, ok := s.CountRate("lat_seconds", time.Second); !ok || r != 10 {
		t.Fatalf("CountRate = %v ok=%v, want 10/s", r, ok)
	}
	// BadFraction at the 0.2 bound: 2 of 10 above.
	bad, total, ok := s.BadFraction("lat_seconds", 0.2, time.Hour)
	if !ok || bad != 2 || total != 10 {
		t.Fatalf("BadFraction = %v/%v ok=%v, want 2/10", bad, total, ok)
	}
	// Threshold snapping: 0.3 snaps down to the 0.2 bound.
	if bad2, _, _ := s.BadFraction("lat_seconds", 0.3, time.Hour); bad2 != 2 {
		t.Fatalf("snapped BadFraction = %v, want 2", bad2)
	}
}

// TestQuantileInfBucket pins the +Inf fallback: all mass above the last
// finite bound returns that bound.
func TestQuantileInfBucket(t *testing.T) {
	reg := metrics.New()
	h := reg.Histogram("big_seconds", "", []float64{0.1, 1})
	s, clk := newTestStore(t, reg, 8)
	clk.sample(s, time.Second)
	h.Observe(50)
	h.Observe(60)
	clk.sample(s, time.Second)
	if q, ok := s.Quantile("big_seconds", 0.9, time.Hour); !ok || q != 1 {
		t.Fatalf("+Inf-bucket quantile = %v ok=%v, want last finite bound 1", q, ok)
	}
}

// TestNilStore pins the nil contract: every entry point is a no-op.
func TestNilStore(t *testing.T) {
	var s *Store
	s.Sample()
	if _, ok := s.Rate("x", time.Minute); ok {
		t.Fatal("nil store reported a rate")
	}
	if _, ok := s.GaugeLast("x"); ok {
		t.Fatal("nil store reported a gauge")
	}
	if _, ok := s.Quantile("x", 0.5, time.Minute); ok {
		t.Fatal("nil store reported a quantile")
	}
	s.EachSeries(time.Minute, func(SeriesMeta, []Point) { t.Fatal("nil store visited") })
}

// TestSelfMetrics pins the cambricon_tsdb_* families exported into the
// sampled registry.
func TestSelfMetrics(t *testing.T) {
	reg := metrics.New()
	reg.Counter("x_total", "").Inc()
	clk := newFakeClock()
	s := New(reg, Options{Interval: time.Second, Capacity: 4, Now: clk.now, Metrics: reg})
	clk.sample(s, time.Second)
	clk.sample(s, time.Second)
	if s.Passes() != 2 {
		t.Fatalf("Passes = %d, want 2", s.Passes())
	}
	var passes, capacity float64
	reg.Each(func(sm *metrics.Sample) {
		switch sm.Name {
		case MetricSamplePasses:
			passes = sm.Value
		case MetricCapacity:
			capacity = sm.Value
		}
	})
	if passes != 2 || capacity != 4 {
		t.Fatalf("self metrics passes=%v capacity=%v, want 2 and 4", passes, capacity)
	}
}

// TestConcurrentSampleAndQuery exercises Sample racing queries; run
// under -race in CI (smoke-autoscale target).
func TestConcurrentSampleAndQuery(t *testing.T) {
	reg := metrics.New()
	c := reg.Counter("cc_total", "")
	h := reg.Histogram("ch_seconds", "", metrics.ExpBuckets(0.001, 4, 6))
	s := New(reg, Options{Interval: time.Millisecond, Capacity: 32})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			c.Inc()
			h.Observe(0.01)
			s.Sample()
		}
	}()
	for i := 0; i < 500; i++ {
		s.Rate("cc_total", time.Minute)
		s.Quantile("ch_seconds", 0.9, time.Minute)
		s.EachSeries(time.Minute, func(SeriesMeta, []Point) {})
	}
	<-done
}
