package tsdb

import (
	"testing"
	"time"

	"cambricon/internal/metrics"
)

// sloStore builds a store with a latency histogram and the shed/request
// counter pair, pre-sampled through one baseline pass.
func sloStore(t *testing.T) (*Store, *fakeClock, *metrics.Histogram, *metrics.Counter, *metrics.Counter) {
	t.Helper()
	reg := metrics.New()
	h := reg.Histogram("wait_seconds", "", []float64{0.01, 0.1, 1})
	bad := reg.Counter("sheds_total", "")
	total := reg.Counter("requests_total", "")
	s, clk := newTestStore(t, reg, 600)
	clk.sample(s, time.Second) // baseline
	return s, clk, h, bad, total
}

func latencyRule() Rule {
	return Rule{
		Name: "wait", Kind: KindLatency, Metric: "wait_seconds",
		Threshold: 0.1, Budget: 0.01,
		Fast: 30 * time.Second, Slow: 5 * time.Minute,
	}
}

func ratioRule() Rule {
	return Rule{
		Name: "sheds", Kind: KindRatio, Metric: "sheds_total", Total: "requests_total",
		Budget: 0.01, Fast: 30 * time.Second, Slow: 5 * time.Minute,
	}
}

// TestSLOStates walks one latency rule through no-data → ok → fast-burn.
func TestSLOStates(t *testing.T) {
	s, clk, h, _, _ := sloStore(t)

	alerts := Eval(s, []Rule{latencyRule()})
	if len(alerts) != 1 || alerts[0].State != StateNoData {
		t.Fatalf("pre-data alerts = %+v, want one no-data", alerts)
	}

	// 100 fast observations: bad fraction 0, ok.
	for i := 0; i < 100; i++ {
		h.Observe(0.005)
	}
	clk.sample(s, time.Second)
	if a := Eval(s, []Rule{latencyRule()})[0]; a.State != StateOK {
		t.Fatalf("healthy state = %q (%+v), want ok", a.State, a)
	}

	// 50 of 150 now slow: bad fraction 1/3, burn 33× budget in both
	// windows → fast-burn.
	for i := 0; i < 50; i++ {
		h.Observe(0.5)
	}
	clk.sample(s, time.Second)
	a := Eval(s, []Rule{latencyRule()})[0]
	if a.State != StateFastBurn {
		t.Fatalf("burning state = %q (%+v), want fast-burn", a.State, a)
	}
	if got := FastBurning([]Alert{a}); len(got) != 1 || got[0] != "wait" {
		t.Fatalf("FastBurning = %v, want [wait]", got)
	}
}

// TestSLOFastBurnNeedsBothWindows pins the multi-window AND: a burst of
// bad events inside the fast window does not fire fast-burn when the
// slow window has absorbed enough good traffic.
func TestSLOFastBurnNeedsBothWindows(t *testing.T) {
	s, clk, h, _, _ := sloStore(t)

	// 4 minutes of good traffic fills the slow window.
	for m := 0; m < 240; m++ {
		for i := 0; i < 100; i++ {
			h.Observe(0.005)
		}
		clk.sample(s, time.Second)
	}
	// A burst of pure badness landing in a tight fast window.
	for i := 0; i < 40; i++ {
		h.Observe(0.5)
	}
	clk.sample(s, time.Second)

	rule := latencyRule()
	rule.Fast = 2 * time.Second
	a := Eval(s, []Rule{rule})[0]
	if a.FastBurn < 14.4 {
		t.Fatalf("fast window should be burning: %+v", a)
	}
	if a.State == StateFastBurn {
		t.Fatalf("fast-burn fired with a healthy slow window: %+v", a)
	}
}

// TestSLORatioRule pins ratio-rule evaluation over counter deltas.
func TestSLORatioRule(t *testing.T) {
	s, clk, _, bad, total := sloStore(t)

	total.Add(1000)
	clk.sample(s, time.Second)
	if a := Eval(s, []Rule{ratioRule()})[0]; a.State != StateOK {
		t.Fatalf("shed-free state = %q, want ok", a.State)
	}

	bad.Add(500)
	total.Add(500)
	clk.sample(s, time.Second)
	a := Eval(s, []Rule{ratioRule()})[0]
	if a.State != StateFastBurn {
		t.Fatalf("mass-shed state = %q (%+v), want fast-burn", a.State, a)
	}
}

// TestParseRules pins the -slo grammar.
func TestParseRules(t *testing.T) {
	rules, err := ParseRules("wait=latency:wait_seconds:0.1:0.01@30s,5m!10,2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 {
		t.Fatalf("parsed %d rules, want 1", len(rules))
	}
	r := rules[0]
	if r.Name != "wait" || r.Kind != KindLatency || r.Metric != "wait_seconds" ||
		r.Threshold != 0.1 || r.Budget != 0.01 ||
		r.Fast != 30*time.Second || r.Slow != 5*time.Minute ||
		r.FastBurn != 10 || r.SlowBurn != 2 {
		t.Fatalf("parsed rule = %+v", r)
	}

	rules, err = ParseRules("a=ratio:bad_total/all_total:0.001,b=latency:lat_seconds:0.5:0.05")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].Kind != KindRatio || rules[0].Total != "all_total" ||
		rules[1].Kind != KindLatency || rules[1].Threshold != 0.5 {
		t.Fatalf("parsed rules = %+v", rules)
	}

	if rules, err := ParseRules("none"); err != nil || rules != nil {
		t.Fatalf(`ParseRules("none") = %v, %v; want nil, nil`, rules, err)
	}
	if rules, err := ParseRules(""); err != nil || rules != nil {
		t.Fatalf(`ParseRules("") = %v, %v; want nil, nil`, rules, err)
	}

	for _, bad := range []string{
		"nokind=latency",
		"x=latency:m:0:0.01",   // zero threshold
		"x=latency:m:0.1:1.5",  // budget >= 1
		"x=ratio:lonely:0.01",  // missing /TOTAL
		"x=mystery:m:0.1:0.01", // unknown kind
		"=latency:m:0.1:0.01",  // empty name
	} {
		if _, err := ParseRules(bad); err == nil {
			t.Fatalf("ParseRules(%q) accepted a bad spec", bad)
		}
	}
}

// TestDefaultRules sanity-checks the shipped rules reference real
// camserve families and normalize cleanly.
func TestDefaultRules(t *testing.T) {
	rules := DefaultRules()
	if len(rules) == 0 {
		t.Fatal("no default rules")
	}
	for _, r := range rules {
		n := r.normalize()
		if n.Fast <= 0 || n.Slow <= n.Fast || n.FastBurn <= n.SlowBurn {
			t.Fatalf("rule %q normalizes badly: %+v", r.Name, n)
		}
		if r.Kind == KindRatio && r.Total == "" {
			t.Fatalf("ratio rule %q lacks a total metric", r.Name)
		}
	}
}
