package tsdb

// GET /dash: a server-rendered, zero-JavaScript HTML dashboard. One row
// per series with an inline SVG sparkline over the window, plus the SLO
// alert table when rules are installed. Rendering is pure string
// building over the sorted series walk with fixed-precision formatting,
// so for a given store state and injected clock the page is
// byte-deterministic (golden-tested).

import (
	"html"
	"io"
	"strconv"
	"strings"
	"time"
)

// Sparkline geometry (SVG user units).
const (
	sparkW   = 240
	sparkH   = 32
	sparkPad = 2
)

// WriteDash renders the dashboard for the window. alerts may be nil
// (the alert table is omitted).
func (s *Store) WriteDash(w io.Writer, window time.Duration, alerts []Alert) error {
	var b strings.Builder
	b.WriteString("<!doctype html>\n<html><head><meta charset=\"utf-8\">\n")
	b.WriteString("<title>cambricon dash</title>\n<style>\n")
	b.WriteString(dashCSS)
	b.WriteString("</style></head><body>\n<h1>cambricon metrics</h1>\n")

	if s == nil {
		b.WriteString("<p class=\"empty\">sampler disabled</p>\n</body></html>\n")
		_, err := io.WriteString(w, b.String())
		return err
	}

	b.WriteString("<p class=\"meta\">window ")
	b.WriteString(window.String())
	b.WriteString(" · interval ")
	b.WriteString(s.Interval().String())
	b.WriteString(" · passes ")
	b.WriteString(strconv.FormatUint(s.Passes(), 10))
	b.WriteString(" · rendered ")
	b.WriteString(s.now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString("</p>\n")

	if alerts != nil {
		b.WriteString("<h2>slo</h2>\n<table>\n<tr><th>rule</th><th>state</th><th>fast burn</th><th>slow burn</th><th>budget</th></tr>\n")
		for _, a := range alerts {
			b.WriteString("<tr class=\"slo-")
			b.WriteString(a.State)
			b.WriteString("\"><td>")
			b.WriteString(html.EscapeString(a.Name))
			b.WriteString("</td><td>")
			b.WriteString(a.State)
			b.WriteString("</td><td>")
			b.WriteString(formatVal(a.FastBurn))
			b.WriteString("</td><td>")
			b.WriteString(formatVal(a.SlowBurn))
			b.WriteString("</td><td>")
			b.WriteString(formatVal(a.Budget))
			b.WriteString("</td></tr>\n")
		}
		b.WriteString("</table>\n")
	}

	b.WriteString("<h2>series</h2>\n<table>\n<tr><th>series</th><th>kind</th><th>last</th><th>history</th></tr>\n")
	rows := 0
	s.EachSeries(window, func(meta SeriesMeta, pts []Point) {
		rows++
		b.WriteString("<tr><td class=\"name\">")
		b.WriteString(html.EscapeString(meta.Name))
		if meta.Labels != "" {
			b.WriteString("<span class=\"labels\">{")
			b.WriteString(html.EscapeString(meta.Labels))
			b.WriteString("}</span>")
		}
		b.WriteString("</td><td>")
		b.WriteString(meta.Kind)
		b.WriteString("</td><td class=\"num\">")
		if len(pts) > 0 {
			b.WriteString(formatVal(pts[len(pts)-1].V))
		} else {
			b.WriteString("·")
		}
		b.WriteString("</td><td>")
		appendSparkline(&b, pts)
		b.WriteString("</td></tr>\n")
	})
	b.WriteString("</table>\n<p class=\"meta\">")
	b.WriteString(strconv.Itoa(rows))
	b.WriteString(" series</p>\n</body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// appendSparkline renders one series' points as an inline SVG polyline,
// x spread evenly across the width, y scaled to the point range.
func appendSparkline(b *strings.Builder, pts []Point) {
	if len(pts) == 0 {
		b.WriteString("<span class=\"empty\">no points</span>")
		return
	}
	min, max := pts[0].V, pts[0].V
	for _, p := range pts[1:] {
		if p.V < min {
			min = p.V
		}
		if p.V > max {
			max = p.V
		}
	}
	span := max - min
	b.WriteString(`<svg class="spark" width="`)
	b.WriteString(strconv.Itoa(sparkW))
	b.WriteString(`" height="`)
	b.WriteString(strconv.Itoa(sparkH))
	b.WriteString(`" viewBox="0 0 `)
	b.WriteString(strconv.Itoa(sparkW))
	b.WriteString(" ")
	b.WriteString(strconv.Itoa(sparkH))
	b.WriteString(`"><polyline fill="none" stroke="currentColor" stroke-width="1" points="`)
	for i, p := range pts {
		if i > 0 {
			b.WriteString(" ")
		}
		x := float64(sparkPad)
		if len(pts) > 1 {
			x += float64(i) / float64(len(pts)-1) * float64(sparkW-2*sparkPad)
		}
		y := float64(sparkH / 2)
		if span > 0 {
			y = float64(sparkH-sparkPad) - (p.V-min)/span*float64(sparkH-2*sparkPad)
		}
		b.WriteString(formatCoord(x))
		b.WriteString(",")
		b.WriteString(formatCoord(y))
	}
	b.WriteString(`"/></svg>`)
}

// formatCoord renders an SVG coordinate with fixed single-decimal
// precision — fixed precision keeps the page byte-stable across
// platforms regardless of shortest-float rendering quirks.
func formatCoord(v float64) string {
	return strconv.FormatFloat(v, 'f', 1, 64)
}

// formatVal renders a sample value: integers exactly, fractions with up
// to six significant digits.
func formatVal(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

const dashCSS = `body{font:14px/1.4 system-ui,sans-serif;margin:1.5rem;color:#1a1a2e}
h1{font-size:1.2rem}h2{font-size:1rem;margin-top:1.2rem}
table{border-collapse:collapse}td,th{padding:.2rem .6rem;border-bottom:1px solid #ddd;text-align:left}
td.num{text-align:right;font-variant-numeric:tabular-nums}
td.name{font-family:ui-monospace,monospace;font-size:12px}
.labels{color:#777}
.meta,.empty{color:#777;font-size:12px}
svg.spark{color:#2b6cb0;display:block}
tr.slo-fast-burn td{background:#ffe5e5}
tr.slo-slow-burn td{background:#fff4e0}
`
