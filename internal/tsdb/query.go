package tsdb

// Windowed queries over the sampled history. All family-level queries
// (Rate, CountRate, Quantile, BadFraction, SumDelta) aggregate across
// every series of the named family — a labelled counter like
// cambricon_serve_sheds_total{benchmark,reason} contributes all its
// series — because the consumers (SLO rules, the autoscaler, Retry-After
// hints) want service-level signals, not per-label ones.

import (
	"strings"
	"time"
)

// Point is one sampled value: T is unix milliseconds, V the counter
// delta, gauge value or histogram count delta recorded at that pass.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// SeriesMeta identifies one series the store tracks.
type SeriesMeta struct {
	Name   string
	Labels string
	Kind   string
}

// cutoff returns the window's lower time bound in unix millis; windows
// are half-open (now-window, now], so a 1s window at a 1s cadence holds
// exactly one point.
func (s *Store) cutoff(window time.Duration) int64 {
	return s.now().Add(-window).UnixMilli()
}

// eachFamily visits every series whose family name matches, under RLock.
func (s *Store) eachFamily(name string, visit func(*series)) {
	prefix := name + keySep
	for _, key := range s.keys {
		if strings.HasPrefix(key, prefix) {
			visit(s.series[key])
		}
	}
}

// SumDelta sums the deltas of every point in the window across all
// series of a counter family (or the count deltas of a histogram
// family). ok is false when the window holds no points at all.
func (s *Store) SumDelta(name string, window time.Duration) (sum float64, ok bool) {
	if s == nil {
		return 0, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	from := s.cutoff(window)
	s.eachFamily(name, func(se *series) {
		se.eachPoint(func(_ int, ts int64, v float64) {
			if ts > from {
				sum += v
				ok = true
			}
		})
	})
	return sum, ok
}

// Rate is SumDelta divided by the window length in seconds — the
// family-wide per-second rate over the window.
func (s *Store) Rate(name string, window time.Duration) (perSecond float64, ok bool) {
	sum, ok := s.SumDelta(name, window)
	if !ok || window <= 0 {
		return 0, ok && window > 0
	}
	return sum / window.Seconds(), true
}

// GaugeLast returns the sum of the most recent sampled value of every
// gauge series in the family (a per-label gauge family sums to the
// service-wide value). ok is false when no gauge point exists yet.
func (s *Store) GaugeLast(name string) (v float64, ok bool) {
	if s == nil {
		return 0, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.eachFamily(name, func(se *series) {
		if se.kind.String() != "gauge" || se.n == 0 {
			return
		}
		last := se.head - 1
		if last < 0 {
			last += len(se.times)
		}
		v += se.vals[last]
		ok = true
	})
	return v, ok
}

// histWindow merges the bucket deltas of every histogram series of a
// family over the window into scratch (len = buckets incl. +Inf) and
// returns the merged totals. Caller holds RLock.
func (s *Store) histWindow(name string, from int64) (bounds []float64, merged []float64, total, sum float64, ok bool) {
	s.eachFamily(name, func(se *series) {
		if se.buckets == nil {
			return
		}
		if merged == nil {
			bounds = se.bounds
			merged = make([]float64, len(se.bounds)+1)
		}
		nb := len(se.bounds) + 1
		se.eachPoint(func(slot int, ts int64, v float64) {
			if ts <= from {
				return
			}
			ok = true
			total += v
			sum += se.sums[slot]
			base := slot * nb
			for i := 0; i < nb && i < len(merged); i++ {
				merged[i] += se.buckets[base+i]
			}
		})
	})
	return bounds, merged, total, sum, ok
}

// CountRate is the family-wide per-second observation rate of a
// histogram over the window.
func (s *Store) CountRate(name string, window time.Duration) (perSecond float64, ok bool) {
	if s == nil || window <= 0 {
		return 0, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, _, total, _, ok := s.histWindow(name, s.cutoff(window))
	if !ok {
		return 0, false
	}
	return total / window.Seconds(), true
}

// Quantile estimates the q-quantile (0..1) of a histogram family's
// observations within the window, Prometheus histogram_quantile style:
// merge the bucket deltas, find the bucket holding the target rank, and
// interpolate linearly inside it. An estimate landing in the +Inf
// overflow bucket returns the largest finite bound. ok is false when
// the window holds no observations.
func (s *Store) Quantile(name string, q float64, window time.Duration) (v float64, ok bool) {
	if s == nil || q < 0 || q > 1 {
		return 0, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	bounds, merged, total, _, ok := s.histWindow(name, s.cutoff(window))
	if !ok || total <= 0 || len(bounds) == 0 {
		return 0, false
	}
	target := q * total
	var cum float64
	for i, b := range bounds {
		inBucket := merged[i]
		if cum+inBucket >= target {
			lower := 0.0
			if i > 0 {
				lower = bounds[i-1]
			}
			if inBucket <= 0 {
				return b, true
			}
			frac := (target - cum) / inBucket
			return lower + (b-lower)*frac, true
		}
		cum += inBucket
	}
	// Target rank sits in the +Inf bucket: the largest finite bound is
	// the best lower-bound estimate.
	return bounds[len(bounds)-1], true
}

// BadFraction splits a latency histogram family's windowed observations
// at threshold: bad is the count strictly above the largest bucket bound
// <= threshold (the threshold is snapped down to a bucket boundary, so
// choose SLO thresholds on bucket bounds for exact accounting). ok is
// false when the window holds no observations.
func (s *Store) BadFraction(name string, threshold float64, window time.Duration) (bad, total float64, ok bool) {
	if s == nil {
		return 0, 0, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	bounds, merged, total, _, ok := s.histWindow(name, s.cutoff(window))
	if !ok || total <= 0 {
		return 0, 0, ok
	}
	var below float64
	for i, b := range bounds {
		if b > threshold {
			break
		}
		below += merged[i]
	}
	return total - below, total, true
}

// EachSeries visits every tracked series in deterministic (name, label)
// order with its points inside the window, oldest first. The points
// slice is reused across visits — copy it to retain. A nil store visits
// nothing.
func (s *Store) EachSeries(window time.Duration, visit func(meta SeriesMeta, pts []Point)) {
	if s == nil {
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	from := s.cutoff(window)
	var pts []Point
	for _, key := range s.keys {
		se := s.series[key]
		pts = pts[:0]
		se.eachPoint(func(_ int, ts int64, v float64) {
			if ts > from {
				pts = append(pts, Point{T: ts, V: v})
			}
		})
		visit(SeriesMeta{Name: se.name, Labels: se.labels, Kind: se.kind.String()}, pts)
	}
}
