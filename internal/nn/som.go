package nn

import "math"

// SOM is the Table III self-organizing map benchmark (input data(64) -
// neurons(36), seasonal-flu data mining [48]): a 6x6 grid of 64-dimensional
// prototype vectors trained by best-matching-unit search plus a
// neighborhood-weighted update.
type SOM struct {
	In           int
	GridW, GridH int
	// W is (GridW*GridH x In): one prototype per grid neuron, row-major
	// over the grid.
	W Mat
}

// SOMBenchmark is the Table III topology.
func SOMBenchmark() (in, gridW, gridH int) { return 64, 6, 6 }

// NewSOM builds a SOM with deterministic prototypes in [0, 1).
func NewSOM(in, gridW, gridH int, seed uint64) *SOM {
	r := NewRNG(seed)
	return &SOM{In: in, GridW: gridW, GridH: gridH, W: r.FillMat(gridW*gridH, in, 0, 1)}
}

// QuantizeParams rounds all prototypes to fixed-point precision.
func (s *SOM) QuantizeParams() *SOM {
	s.W = QuantizeMat(s.W)
	return s
}

// Neurons returns the neuron count.
func (s *SOM) Neurons() int { return s.GridW * s.GridH }

// Distances returns the squared Euclidean distance of x to every prototype.
// On the accelerator this is the VSV/VMV/VDOT sequence per neuron (or one
// MMV against the stacked difference matrix).
func (s *SOM) Distances(x Vec) Vec {
	out := make(Vec, s.Neurons())
	for i := range out {
		out[i] = Dist2(s.W.Row(i), x)
	}
	return out
}

// BMU returns the index of the best-matching unit (smallest distance,
// lowest index on ties — the accelerator's VMIN + scan does the same).
func (s *SOM) BMU(x Vec) int {
	d := s.Distances(x)
	best := 0
	for i, v := range d {
		if v < d[best] {
			best = i
		}
	}
	return best
}

// Neighborhood returns the Gaussian lattice weight between neurons a and b:
// exp(-dist2/(2 sigma^2)).
func (s *SOM) Neighborhood(a, b int, sigma float64) float64 {
	ax, ay := a%s.GridW, a/s.GridW
	bx, by := b%s.GridW, b/s.GridW
	d2 := float64((ax-bx)*(ax-bx) + (ay-by)*(ay-by))
	return math.Exp(-d2 / (2 * sigma * sigma))
}

// TrainStep updates every prototype toward x with neighborhood-scaled
// learning rate: W[i] += eta * theta(bmu, i) * (x - W[i]). Returns the BMU.
func (s *SOM) TrainStep(x Vec, eta, sigma float64) int {
	bmu := s.BMU(x)
	for i := 0; i < s.Neurons(); i++ {
		theta := s.Neighborhood(bmu, i, sigma)
		row := s.W.Row(i)
		for j := range row {
			row[j] += eta * theta * (x[j] - row[j])
		}
	}
	return bmu
}
