package nn

// CNN is the Table III convolutional benchmark: LeNet-5 for hand-written
// character recognition [28]: input(1@32x32) - C1(6@28x28, K 5x5) -
// S1(6@14x14, 2x2) - C2(16@10x10, K 5x5) - S2(16@5x5, 2x2) - F(120) - F(84)
// - output(10).
//
// Feature maps use channel-interleaved [y][x][c] layout, the layout the
// paper's pooling example assumes ("aggregates neurons at the same position
// of all input feature maps in the same input vector", Section III-C), so
// the reference and the generated Cambricon code index identically.
type CNN struct {
	Convs []ConvLayer
	Pools []PoolLayer
	FCs   []FCLayer
}

// ConvLayer is a valid (no padding) convolution with stride 1 and sigmoid
// activation.
type ConvLayer struct {
	InC, InH, InW int
	OutC, K       int
	// W is (OutC x K*K*InC): each row is a filter over a [ky][kx][c]
	// patch. B has one bias per output channel.
	W Mat
	B Vec
}

// OutH and OutW give the output feature-map size.
func (c *ConvLayer) OutH() int { return c.InH - c.K + 1 }
func (c *ConvLayer) OutW() int { return c.InW - c.K + 1 }

// PoolLayer is non-overlapping KxK max pooling (the paper's Fig. 5 / VGTM
// example; LeNet-5's subsampling layers are modelled as max pooling, see
// DESIGN.md).
type PoolLayer struct {
	C, InH, InW, K int
}

func (p *PoolLayer) OutH() int { return p.InH / p.K }
func (p *PoolLayer) OutW() int { return p.InW / p.K }

// FCLayer is a fully-connected sigmoid layer.
type FCLayer struct {
	In, Out int
	W       Mat
	B       Vec
}

// NewLeNet5 builds the Table III LeNet-5 with deterministic weights.
func NewLeNet5(seed uint64) *CNN {
	r := NewRNG(seed)
	conv := func(inC, inH, inW, outC, k int) ConvLayer {
		s := WeightScale(k * k * inC)
		return ConvLayer{
			InC: inC, InH: inH, InW: inW, OutC: outC, K: k,
			W: r.FillMat(outC, k*k*inC, -s, s),
			B: r.FillVec(outC, -s, s),
		}
	}
	fc := func(in, out int) FCLayer {
		s := WeightScale(in)
		return FCLayer{In: in, Out: out, W: r.FillMat(out, in, -s, s), B: r.FillVec(out, -s, s)}
	}
	return &CNN{
		Convs: []ConvLayer{
			conv(1, 32, 32, 6, 5),
			conv(6, 14, 14, 16, 5),
		},
		Pools: []PoolLayer{
			{C: 6, InH: 28, InW: 28, K: 2},
			{C: 16, InH: 10, InW: 10, K: 2},
		},
		FCs: []FCLayer{
			fc(16*5*5, 120),
			fc(120, 84),
			fc(84, 10),
		},
	}
}

// QuantizeParams rounds all parameters to fixed-point precision.
func (c *CNN) QuantizeParams() *CNN {
	for i := range c.Convs {
		c.Convs[i].W = QuantizeMat(c.Convs[i].W)
		c.Convs[i].B = Quantize(c.Convs[i].B)
	}
	for i := range c.FCs {
		c.FCs[i].W = QuantizeMat(c.FCs[i].W)
		c.FCs[i].B = Quantize(c.FCs[i].B)
	}
	return c
}

// idx3 flattens a [y][x][c] coordinate.
func idx3(y, x, c, w, ch int) int { return (y*w+x)*ch + c }

// Forward applies the convolution to a [y][x][c]-flattened input and
// returns the [y][x][c]-flattened sigmoid activations.
func (c *ConvLayer) Forward(in Vec) Vec {
	oh, ow := c.OutH(), c.OutW()
	out := make(Vec, oh*ow*c.OutC)
	patch := make(Vec, c.K*c.K*c.InC)
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			// Gather the [ky][kx][c] patch, matching the generated
			// Cambricon code's per-row VMOVE gathers.
			p := 0
			for ky := 0; ky < c.K; ky++ {
				rowStart := idx3(y+ky, x, 0, c.InW, c.InC)
				copy(patch[p:p+c.K*c.InC], in[rowStart:rowStart+c.K*c.InC])
				p += c.K * c.InC
			}
			for oc := 0; oc < c.OutC; oc++ {
				out[idx3(y, x, oc, ow, c.OutC)] = Sigmoid(Dot(c.W.Row(oc), patch) + c.B[oc])
			}
		}
	}
	return out
}

// Forward applies max pooling to a [y][x][c]-flattened input.
func (p *PoolLayer) Forward(in Vec) Vec {
	oh, ow := p.OutH(), p.OutW()
	out := make(Vec, oh*ow*p.C)
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			for c := 0; c < p.C; c++ {
				best := in[idx3(y*p.K, x*p.K, c, p.InW, p.C)]
				for ky := 0; ky < p.K; ky++ {
					for kx := 0; kx < p.K; kx++ {
						v := in[idx3(y*p.K+ky, x*p.K+kx, c, p.InW, p.C)]
						if v > best {
							best = v
						}
					}
				}
				out[idx3(y, x, c, ow, p.C)] = best
			}
		}
	}
	return out
}

// Forward applies the fully-connected sigmoid layer.
func (f *FCLayer) Forward(in Vec) Vec {
	return SigmoidVec(Add(f.W.MulVec(in), f.B))
}

// Forward runs the full LeNet-5 pipeline.
func (c *CNN) Forward(in Vec) Vec {
	x := c.Convs[0].Forward(in)
	x = c.Pools[0].Forward(x)
	x = c.Convs[1].Forward(x)
	x = c.Pools[1].Forward(x)
	for i := range c.FCs {
		x = c.FCs[i].Forward(x)
	}
	return x
}
