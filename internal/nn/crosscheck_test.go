package nn

import (
	"math"
	"testing"
)

// bruteConv is an independent 6-deep-loop convolution used to cross-check
// ConvLayer.Forward's patch-gather formulation.
func bruteConv(l *ConvLayer, in Vec) Vec {
	oh, ow := l.OutH(), l.OutW()
	out := make(Vec, oh*ow*l.OutC)
	for oc := 0; oc < l.OutC; oc++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				s := l.B[oc]
				for ky := 0; ky < l.K; ky++ {
					for kx := 0; kx < l.K; kx++ {
						for c := 0; c < l.InC; c++ {
							w := l.W.At(oc, (ky*l.K+kx)*l.InC+c)
							v := in[((y+ky)*l.InW+(x+kx))*l.InC+c]
							s += w * v
						}
					}
				}
				out[(y*ow+x)*l.OutC+oc] = Sigmoid(s)
			}
		}
	}
	return out
}

func TestConvForwardMatchesBruteForce(t *testing.T) {
	r := NewRNG(77)
	l := ConvLayer{InC: 3, InH: 9, InW: 7, OutC: 4, K: 3,
		W: r.FillMat(4, 3*3*3, -0.3, 0.3),
		B: r.FillVec(4, -0.1, 0.1)}
	in := r.FillVec(9*7*3, 0, 1)
	got := l.Forward(in)
	want := bruteConv(&l, in)
	if len(got) != len(want) {
		t.Fatalf("length %d vs %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("element %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestLeNetForwardMatchesBruteForceStages(t *testing.T) {
	c := NewLeNet5(5)
	in := NewRNG(6).FillVec(32*32, 0, 1)
	for i := range c.Convs {
		var x Vec
		switch i {
		case 0:
			x = in
		case 1:
			x = c.Pools[0].Forward(c.Convs[0].Forward(in))
		}
		got := c.Convs[i].Forward(x)
		want := bruteConv(&c.Convs[i], x)
		for j := range got {
			if math.Abs(got[j]-want[j]) > 1e-12 {
				t.Fatalf("conv %d element %d: %v vs %v", i, j, got[j], want[j])
			}
		}
	}
}

func TestLSTMManualTinyCase(t *testing.T) {
	// 1-in, 1-hidden LSTM with hand-set weights; verify one step by hand.
	l := &LSTM{In: 1, Hidden: 1, Out: 1}
	for g := 0; g < 4; g++ {
		l.Wx[g] = Mat{Rows: 1, Cols: 1, Data: []float64{0.5}}
		l.Wh[g] = Mat{Rows: 1, Cols: 1, Data: []float64{0.25}}
		l.B[g] = Vec{0.1}
	}
	l.Why = Mat{Rows: 1, Cols: 1, Data: []float64{1}}
	l.By = Vec{0}
	x := Vec{0.8}
	h, c, y := l.Step(x, Vec{0.2}, Vec{0.3})
	pre := 0.5*0.8 + 0.25*0.2 + 0.1 // same for all gates
	ig := Sigmoid(pre)
	fg := Sigmoid(pre)
	og := Sigmoid(pre)
	cand := 2*Sigmoid(2*pre) - 1
	wantC := fg*0.3 + ig*cand
	wantH := og * (2*Sigmoid(2*wantC) - 1)
	wantY := Sigmoid(wantH)
	if math.Abs(c[0]-wantC) > 1e-12 || math.Abs(h[0]-wantH) > 1e-12 || math.Abs(y[0]-wantY) > 1e-12 {
		t.Errorf("got h=%v c=%v y=%v, want %v %v %v", h[0], c[0], y[0], wantH, wantC, wantY)
	}
}

func TestRNNManualTinyCase(t *testing.T) {
	n := &RNN{In: 1, Hidden: 1, Out: 1,
		Wxh: Mat{Rows: 1, Cols: 1, Data: []float64{2}},
		Whh: Mat{Rows: 1, Cols: 1, Data: []float64{0.5}},
		Why: Mat{Rows: 1, Cols: 1, Data: []float64{1}},
		Bh:  Vec{-1}, By: Vec{0.25}}
	h, y := n.Step(Vec{0.75}, Vec{0.4})
	wantH := Sigmoid(2*0.75 + 0.5*0.4 - 1)
	wantY := Sigmoid(wantH + 0.25)
	if math.Abs(h[0]-wantH) > 1e-12 || math.Abs(y[0]-wantY) > 1e-12 {
		t.Errorf("got h=%v y=%v, want %v %v", h[0], y[0], wantH, wantY)
	}
}

func TestBMHiddenProbManualTinyCase(t *testing.T) {
	b := &BM{V: 2, H: 2,
		W: Mat{Rows: 2, Cols: 2, Data: []float64{1, -1, 0.5, 0.5}},
		L: Mat{Rows: 2, Cols: 2, Data: []float64{0, 0.25, 0.25, 0}},
		B: Vec{0.1, -0.1}}
	p := b.HiddenProb(Vec{1, 0}, Vec{0, 1})
	want0 := Sigmoid(1*1 + -1*0 + 0*0 + 0.25*1 + 0.1)
	want1 := Sigmoid(0.5*1 + 0.5*0 + 0.25*0 + 0*1 - 0.1)
	if math.Abs(p[0]-want0) > 1e-12 || math.Abs(p[1]-want1) > 1e-12 {
		t.Errorf("p = %v, want [%v %v]", p, want0, want1)
	}
}

func TestSOMNeighborhoodSymmetry(t *testing.T) {
	s := NewSOM(8, 4, 4, 3)
	for a := 0; a < s.Neurons(); a++ {
		for b := 0; b < s.Neurons(); b++ {
			if math.Abs(s.Neighborhood(a, b, 1.3)-s.Neighborhood(b, a, 1.3)) > 1e-15 {
				t.Fatalf("neighborhood not symmetric at (%d,%d)", a, b)
			}
		}
	}
}

func TestHopfieldStoredPatternsAreFixedPoints(t *testing.T) {
	h := NewHNN(3, 80, 21)
	for p, pat := range h.Patterns {
		next := h.Step(pat)
		errs := 0
		for i := range pat {
			if next[i] != pat[i] {
				errs++
			}
		}
		// With 3 patterns over 80 units, stored patterns are (near)
		// fixed points of the dynamics.
		if errs > 2 {
			t.Errorf("pattern %d moved by %d components", p, errs)
		}
	}
}
