package nn

// MLP is the Table III multi-layer perceptron benchmark: a stack of
// fully-connected sigmoid layers (input(64) - H1(150) - H2(150) -
// output(14), anchorperson detection [2]).
type MLP struct {
	// Sizes lists the layer widths, input first.
	Sizes []int
	// W[l] is the (Sizes[l+1] x Sizes[l]) weight matrix of layer l.
	W []Mat
	// B[l] is the bias vector of layer l.
	B []Vec
}

// MLPBenchmarkSizes is the Table III topology.
func MLPBenchmarkSizes() []int { return []int{64, 150, 150, 14} }

// NewMLP builds an MLP with deterministic uniform weights.
func NewMLP(sizes []int, seed uint64) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least two layer sizes")
	}
	r := NewRNG(seed)
	m := &MLP{Sizes: append([]int(nil), sizes...)}
	for l := 0; l+1 < len(sizes); l++ {
		s := WeightScale(sizes[l])
		m.W = append(m.W, r.FillMat(sizes[l+1], sizes[l], -s, s))
		m.B = append(m.B, r.FillVec(sizes[l+1], -s, s))
	}
	return m
}

// QuantizeParams rounds all parameters to fixed-point precision.
func (m *MLP) QuantizeParams() *MLP {
	for l := range m.W {
		m.W[l] = QuantizeMat(m.W[l])
		m.B[l] = Quantize(m.B[l])
	}
	return m
}

// Layers returns the number of weight layers.
func (m *MLP) Layers() int { return len(m.W) }

// ForwardLayer computes one layer: sigmoid(W x + b).
func (m *MLP) ForwardLayer(l int, x Vec) Vec {
	return SigmoidVec(Add(m.W[l].MulVec(x), m.B[l]))
}

// Forward runs the full feedforward pass.
func (m *MLP) Forward(x Vec) Vec {
	for l := range m.W {
		x = m.ForwardLayer(l, x)
	}
	return x
}

// BackwardDelta computes the hidden-layer error term delta_l = (W_{l}^T
// delta_{l+1}) .* y_l .* (1 - y_l) given the next layer's delta and this
// layer's activations — the vector-times-matrix contraction that motivates
// the VMM instruction (Section III-A).
func (m *MLP) BackwardDelta(l int, deltaNext, y Vec) Vec {
	back := m.W[l].VecMul(deltaNext)
	out := make(Vec, len(back))
	for i := range out {
		out[i] = back[i] * y[i] * (1 - y[i])
	}
	return out
}

// UpdateLayer applies the outer-product weight update W += eta * delta x^T,
// b += eta * delta — the OP/MMS/MAM sequence of Section III-A.
func (m *MLP) UpdateLayer(l int, delta, x Vec, eta float64) {
	w := m.W[l]
	for i := 0; i < w.Rows; i++ {
		for j := 0; j < w.Cols; j++ {
			w.Data[i*w.Cols+j] += eta * delta[i] * x[j]
		}
	}
	for i := range m.B[l] {
		m.B[l][i] += eta * delta[i]
	}
}
