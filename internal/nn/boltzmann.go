package nn

// BM is the Table III Boltzmann machine benchmark (V(500) - H(500), MNIST
// [39]). Unlike an RBM, hidden units are also laterally connected to each
// other through L, which is exactly why DaDianNao's four layer types cannot
// express it (Section I). One Gibbs update of the hidden layer is
//
//	p = sigmoid(W v + L h + b)
//	h'[i] = (r[i] > p[i]) ? 1 : 0, r ~ U[0,1)
//
// following the paper's Fig. 7 BM fragment literally (its VGT computes
// r > p; in distribution this samples with probability 1-p, and keeping the
// published convention lets the reference compare bit-exactly with the
// generated Cambricon code).
type BM struct {
	V, H int
	// W is (H x V) visible-to-hidden; L is (H x H) hidden-to-hidden with
	// a zero diagonal; B is the hidden bias.
	W, L Mat
	B    Vec
}

// BMBenchmark is the Table III topology.
func BMBenchmark() (v, h int) { return 500, 500 }

// NewBM builds a Boltzmann machine with deterministic weights.
func NewBM(v, h int, seed uint64) *BM {
	r := NewRNG(seed)
	sv, sh := WeightScale(v), WeightScale(h)
	b := &BM{
		V: v, H: h,
		W: r.FillMat(h, v, -sv, sv),
		L: r.FillMat(h, h, -sh, sh),
		B: r.FillVec(h, -sh, sh),
	}
	for i := 0; i < h; i++ {
		b.L.Set(i, i, 0) // no self-connections
	}
	return b
}

// QuantizeParams rounds all parameters to fixed-point precision.
func (b *BM) QuantizeParams() *BM {
	b.W, b.L = QuantizeMat(b.W), QuantizeMat(b.L)
	b.B = Quantize(b.B)
	return b
}

// HiddenProb computes p = sigmoid(W v + L h + b).
func (b *BM) HiddenProb(v, h Vec) Vec {
	return SigmoidVec(Add(Add(b.W.MulVec(v), b.L.MulVec(h)), b.B))
}

// GibbsStep samples a new hidden state given probabilities p and uniform
// draws r (pass the same r the accelerator's RV produced to compare
// bit-exactly): h'[i] = (r[i] > p[i]) ? 1 : 0, the Fig. 7 convention.
func GibbsStep(p, r Vec) Vec {
	if len(p) != len(r) {
		panic("nn: GibbsStep length mismatch")
	}
	out := make(Vec, len(p))
	for i := range p {
		if r[i] > p[i] {
			out[i] = 1
		}
	}
	return out
}

// RBM is the restricted Boltzmann machine benchmark (V(500) - H(500),
// MNIST [39]): no lateral connections, so a hidden update is
// p = sigmoid(W v + b) — expressible by DaDianNao as a classifier layer
// plus sampling, which is why RBM is one of its three supported networks.
type RBM struct {
	V, H   int
	W      Mat // (H x V)
	BH, BV Vec
}

// NewRBM builds an RBM with deterministic weights.
func NewRBM(v, h int, seed uint64) *RBM {
	r := NewRNG(seed)
	sv, sh := WeightScale(v), WeightScale(h)
	return &RBM{
		V: v, H: h,
		W:  r.FillMat(h, v, -sv, sv),
		BH: r.FillVec(h, -sh, sh),
		BV: r.FillVec(v, -sv, sv),
	}
}

// QuantizeParams rounds all parameters to fixed-point precision.
func (r *RBM) QuantizeParams() *RBM {
	r.W = QuantizeMat(r.W)
	r.BH, r.BV = Quantize(r.BH), Quantize(r.BV)
	return r
}

// HiddenProb computes p(h|v) = sigmoid(W v + bh).
func (r *RBM) HiddenProb(v Vec) Vec {
	return SigmoidVec(Add(r.W.MulVec(v), r.BH))
}

// VisibleProb computes p(v|h) = sigmoid(W^T h + bv) — a VMM contraction on
// the accelerator.
func (r *RBM) VisibleProb(h Vec) Vec {
	return SigmoidVec(Add(r.W.VecMul(h), r.BV))
}

// CDUpdate applies one contrastive-divergence weight update
// W += eta * (h0 v0^T - h1 v1^T), the MSM/OP/MMS/MAM sequence of
// Section III-A ("Cambricon also provides a Matrix-Subtract-Matrix
// instruction to support the weight updating in RBM").
func (r *RBM) CDUpdate(v0, h0, v1, h1 Vec, eta float64) {
	for i := 0; i < r.H; i++ {
		for j := 0; j < r.V; j++ {
			r.W.Data[i*r.V+j] += eta * (h0[i]*v0[j] - h1[i]*v1[j])
		}
	}
}
