// Package nn provides float64 reference implementations of the ten neural
// network benchmarks of Table III (MLP, CNN/LeNet-5, RNN, LSTM, Autoencoder,
// Sparse Autoencoder, BM, RBM, SOM and HNN).
//
// These models are the golden oracles for the Cambricon code generators in
// internal/codegen: each generated program runs on the internal/sim
// accelerator and its 16-bit fixed-point outputs are compared against these
// references. Weights are deterministic functions of a seed, and every model
// can quantize its parameters to fixed-point precision first (Quantize) so
// comparisons isolate computation error from parameter-rounding error.
package nn

import (
	"math"

	"cambricon/internal/fixed"
)

// Vec is a dense vector.
type Vec []float64

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMat allocates a zero matrix.
func NewMat(rows, cols int) Mat {
	return Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice view.
func (m Mat) Row(i int) Vec { return Vec(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// MulVec computes m * x.
func (m Mat) MulVec(x Vec) Vec {
	if len(x) != m.Cols {
		panic("nn: MulVec dimension mismatch")
	}
	out := make(Vec, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		row := m.Row(i)
		for j, v := range x {
			s += row[j] * v
		}
		out[i] = s
	}
	return out
}

// VecMul computes x * m (contraction over rows).
func (m Mat) VecMul(x Vec) Vec {
	if len(x) != m.Rows {
		panic("nn: VecMul dimension mismatch")
	}
	out := make(Vec, m.Cols)
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		row := m.Row(i)
		for j := range out {
			out[j] += xi * row[j]
		}
	}
	return out
}

// Add returns a+b element-wise.
func Add(a, b Vec) Vec {
	if len(a) != len(b) {
		panic("nn: Add length mismatch")
	}
	out := make(Vec, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a-b element-wise.
func Sub(a, b Vec) Vec {
	if len(a) != len(b) {
		panic("nn: Sub length mismatch")
	}
	out := make(Vec, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Hadamard returns a*b element-wise.
func Hadamard(a, b Vec) Vec {
	if len(a) != len(b) {
		panic("nn: Hadamard length mismatch")
	}
	out := make(Vec, len(a))
	for i := range a {
		out[i] = a[i] * b[i]
	}
	return out
}

// Dot returns the inner product.
func Dot(a, b Vec) float64 {
	if len(a) != len(b) {
		panic("nn: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Dist2 returns the squared Euclidean distance.
func Dist2(a, b Vec) float64 {
	if len(a) != len(b) {
		panic("nn: Dist2 length mismatch")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Quantize rounds every element to 16-bit fixed-point precision, so that a
// reference model runs on exactly the parameters the accelerator sees.
func Quantize(v Vec) Vec {
	out := make(Vec, len(v))
	for i, x := range v {
		out[i] = fixed.FromFloat(x).Float()
	}
	return out
}

// QuantizeMat quantizes a matrix in place and returns it.
func QuantizeMat(m Mat) Mat {
	copy(m.Data, Quantize(m.Data))
	return m
}

// RNG is a small deterministic generator (xorshift64*) used to initialize
// weights and synthesize inputs reproducibly across the reference models and
// code generators.
type RNG struct{ state uint64 }

// NewRNG seeds a generator; a zero seed is replaced to keep the stream
// non-degenerate.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 1
	}
	return &RNG{state: seed}
}

// Uint64 returns the next raw value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// FillVec fills a fresh vector with uniform values in [lo, hi).
func (r *RNG) FillVec(n int, lo, hi float64) Vec {
	out := make(Vec, n)
	for i := range out {
		out[i] = r.Uniform(lo, hi)
	}
	return out
}

// FillMat fills a fresh matrix with uniform values in [lo, hi).
func (r *RNG) FillMat(rows, cols int, lo, hi float64) Mat {
	m := NewMat(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Uniform(lo, hi)
	}
	return m
}

// WeightScale is the conventional init range for benchmark weights: small
// enough that Q8.8 pre-activations stay far from saturation on every
// Table III topology.
func WeightScale(fanIn int) float64 {
	if fanIn < 1 {
		fanIn = 1
	}
	return 1.0 / math.Sqrt(float64(fanIn))
}
