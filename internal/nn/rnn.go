package nn

// RNN is the Table III recurrent benchmark (input(26) - H(93) - output(61),
// framewise phoneme classification [15]): a simple Elman network
//
//	h_t = sigmoid(Wxh x_t + Whh h_{t-1} + bh)
//	y_t = sigmoid(Why h_t + by)
type RNN struct {
	In, Hidden, Out int
	Wxh, Whh, Why   Mat
	Bh, By          Vec
}

// RNNBenchmark is the Table III topology.
func RNNBenchmark() (in, hidden, out int) { return 26, 93, 61 }

// NewRNN builds an RNN with deterministic weights.
func NewRNN(in, hidden, out int, seed uint64) *RNN {
	r := NewRNG(seed)
	si, sh := WeightScale(in), WeightScale(hidden)
	return &RNN{
		In: in, Hidden: hidden, Out: out,
		Wxh: r.FillMat(hidden, in, -si, si),
		Whh: r.FillMat(hidden, hidden, -sh, sh),
		Why: r.FillMat(out, hidden, -sh, sh),
		Bh:  r.FillVec(hidden, -sh, sh),
		By:  r.FillVec(out, -sh, sh),
	}
}

// QuantizeParams rounds all parameters to fixed-point precision.
func (n *RNN) QuantizeParams() *RNN {
	n.Wxh, n.Whh, n.Why = QuantizeMat(n.Wxh), QuantizeMat(n.Whh), QuantizeMat(n.Why)
	n.Bh, n.By = Quantize(n.Bh), Quantize(n.By)
	return n
}

// Step advances one timestep, returning the new hidden state and output.
func (n *RNN) Step(x, hPrev Vec) (h, y Vec) {
	pre := Add(Add(n.Wxh.MulVec(x), n.Whh.MulVec(hPrev)), n.Bh)
	h = SigmoidVec(pre)
	y = SigmoidVec(Add(n.Why.MulVec(h), n.By))
	return h, y
}

// Forward runs a sequence and returns the per-step outputs.
func (n *RNN) Forward(xs []Vec) []Vec {
	h := make(Vec, n.Hidden)
	outs := make([]Vec, len(xs))
	for t, x := range xs {
		h, outs[t] = n.Step(x, h)
	}
	return outs
}
