package nn

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatVecOps(t *testing.T) {
	m := Mat{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	x := Vec{1, 0, -1}
	got := m.MulVec(x)
	if got[0] != -2 || got[1] != -2 {
		t.Errorf("MulVec = %v", got)
	}
	y := Vec{1, -1}
	got2 := m.VecMul(y)
	want := Vec{-3, -3, -3}
	for i := range want {
		if got2[i] != want[i] {
			t.Errorf("VecMul = %v", got2)
			break
		}
	}
	if Dot(x, x) != 2 {
		t.Errorf("Dot = %v", Dot(x, x))
	}
	if Dist2(Vec{1, 2}, Vec{4, 6}) != 25 {
		t.Errorf("Dist2 wrong")
	}
}

func TestVecOpsPanicOnMismatch(t *testing.T) {
	funcs := map[string]func(){
		"Add":      func() { Add(Vec{1}, Vec{1, 2}) },
		"Sub":      func() { Sub(Vec{1}, Vec{1, 2}) },
		"Hadamard": func() { Hadamard(Vec{1}, Vec{1, 2}) },
		"Dot":      func() { Dot(Vec{1}, Vec{1, 2}) },
		"MulVec":   func() { NewMat(2, 2).MulVec(Vec{1}) },
		"VecMul":   func() { NewMat(2, 2).VecMul(Vec{1}) },
	}
	for name, f := range funcs {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic on mismatch", name)
				}
			}()
			f()
		}()
	}
}

func TestSigmoidProperties(t *testing.T) {
	if Sigmoid(0) != 0.5 {
		t.Errorf("Sigmoid(0) = %v", Sigmoid(0))
	}
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		s := Sigmoid(a)
		return s >= 0 && s <= 1 && math.Abs(s+Sigmoid(-a)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// SigmoidSat matches Sigmoid away from saturation and plateaus near 1.
	if math.Abs(SigmoidSat(1)-Sigmoid(1)) > 1e-9 {
		t.Error("SigmoidSat should match Sigmoid for small inputs")
	}
	if s := SigmoidSat(50); s >= 1 || s < 0.99 {
		t.Errorf("SigmoidSat(50) = %v", s)
	}
}

func TestReLUAndTanh(t *testing.T) {
	if ReLU(-3) != 0 || ReLU(3) != 3 {
		t.Error("ReLU wrong")
	}
	if math.Abs(tanhFromSigmoid(0.7)-math.Tanh(0.7)) > 1e-12 {
		t.Error("tanh lowering identity broken")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(8)
	diff := false
	for i := 0; i < 10; i++ {
		if NewRNG(7).Uint64() != c.Uint64() {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds should differ")
	}
	// Zero seed must not degenerate.
	z := NewRNG(0)
	if z.Uint64() == 0 && z.Uint64() == 0 {
		t.Error("zero seed degenerated")
	}
}

func TestQuantizeIsIdempotent(t *testing.T) {
	v := Vec{0.12345, -3.14159, 100.5, 0}
	q := Quantize(v)
	qq := Quantize(q)
	for i := range q {
		if q[i] != qq[i] {
			t.Errorf("quantize not idempotent at %d", i)
		}
		if math.Abs(q[i]-v[i]) > 1.0/512+1e-12 {
			t.Errorf("quantize error too large at %d: %v vs %v", i, q[i], v[i])
		}
	}
}

func TestMLPForward(t *testing.T) {
	m := NewMLP(MLPBenchmarkSizes(), 42)
	x := NewRNG(1).FillVec(64, 0, 1)
	y := m.Forward(x)
	if len(y) != 14 {
		t.Fatalf("output size %d", len(y))
	}
	for i, v := range y {
		if v <= 0 || v >= 1 {
			t.Errorf("y[%d] = %v outside (0,1)", i, v)
		}
	}
	// Deterministic per seed.
	y2 := NewMLP(MLPBenchmarkSizes(), 42).Forward(x)
	for i := range y {
		if y[i] != y2[i] {
			t.Fatal("MLP must be deterministic per seed")
		}
	}
	// Different seeds give different nets.
	y3 := NewMLP(MLPBenchmarkSizes(), 43).Forward(x)
	same := true
	for i := range y {
		if y[i] != y3[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical networks")
	}
}

func TestMLPTrainingStepReducesError(t *testing.T) {
	m := NewMLP([]int{8, 6, 4}, 3)
	r := NewRNG(9)
	x := r.FillVec(8, 0, 1)
	target := r.FillVec(4, 0.2, 0.8)
	loss := func() float64 {
		y := m.Forward(x)
		var s float64
		for i := range y {
			d := y[i] - target[i]
			s += d * d
		}
		return s
	}
	before := loss()
	// One output-layer gradient step.
	h := m.ForwardLayer(0, x)
	y := m.ForwardLayer(1, h)
	delta := make(Vec, len(y))
	for i := range y {
		delta[i] = (target[i] - y[i]) * y[i] * (1 - y[i])
	}
	m.UpdateLayer(1, delta, h, 0.5)
	if after := loss(); after >= before {
		t.Errorf("gradient step did not reduce loss: %v -> %v", before, after)
	}
}

func TestMLPBackwardDeltaMatchesFiniteDifference(t *testing.T) {
	m := NewMLP([]int{3, 2, 2}, 5)
	x := Vec{0.3, -0.2, 0.5}
	h := m.ForwardLayer(0, x)
	y := m.ForwardLayer(1, h)
	target := Vec{1, 0}
	deltaOut := make(Vec, len(y))
	for i := range y {
		deltaOut[i] = (y[i] - target[i]) * y[i] * (1 - y[i])
	}
	got := m.BackwardDelta(1, deltaOut, h)
	// Finite differences on the loss wrt the hidden pre-activation.
	lossAt := func(hmod Vec) float64 {
		yy := m.ForwardLayer(1, hmod)
		var s float64
		for i := range yy {
			d := yy[i] - target[i]
			s += d * d / 2
		}
		return s
	}
	const eps = 1e-6
	for i := range h {
		hp := append(Vec(nil), h...)
		hm := append(Vec(nil), h...)
		hp[i] += eps
		hm[i] -= eps
		dLdh := (lossAt(hp) - lossAt(hm)) / (2 * eps)
		want := dLdh * h[i] * (1 - h[i])
		if math.Abs(got[i]-want) > 1e-6 {
			t.Errorf("delta[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestLeNet5Shapes(t *testing.T) {
	c := NewLeNet5(11)
	in := NewRNG(2).FillVec(32*32, 0, 1)
	x := c.Convs[0].Forward(in)
	if len(x) != 28*28*6 {
		t.Fatalf("C1 output %d", len(x))
	}
	x = c.Pools[0].Forward(x)
	if len(x) != 14*14*6 {
		t.Fatalf("S1 output %d", len(x))
	}
	x = c.Convs[1].Forward(x)
	if len(x) != 10*10*16 {
		t.Fatalf("C2 output %d", len(x))
	}
	x = c.Pools[1].Forward(x)
	if len(x) != 5*5*16 {
		t.Fatalf("S2 output %d", len(x))
	}
	y := c.Forward(in)
	if len(y) != 10 {
		t.Fatalf("output %d", len(y))
	}
	for _, v := range y {
		if v <= 0 || v >= 1 {
			t.Errorf("output %v outside (0,1)", v)
		}
	}
}

func TestConvKnownCase(t *testing.T) {
	// 1x3x3 input, one 2x2 identity-corner filter, no bias: output is the
	// top-left element of each window, through sigmoid.
	layer := ConvLayer{InC: 1, InH: 3, InW: 3, OutC: 1, K: 2,
		W: Mat{Rows: 1, Cols: 4, Data: []float64{1, 0, 0, 0}},
		B: Vec{0}}
	in := Vec{1, 2, 3, 4, 5, 6, 7, 8, 9}
	out := layer.Forward(in)
	want := []float64{Sigmoid(1), Sigmoid(2), Sigmoid(4), Sigmoid(5)}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestMaxPoolKnownCase(t *testing.T) {
	// 2 channels, 2x2 input, one 2x2 window.
	p := PoolLayer{C: 2, InH: 2, InW: 2, K: 2}
	in := Vec{1, 10, 2, 20, 3, 30, 4, 5} // [y][x][c]
	out := p.Forward(in)
	if out[0] != 4 || out[1] != 30 {
		t.Errorf("pooled = %v", out)
	}
}

func TestRNNStateCarriesInformation(t *testing.T) {
	in, hid, out := RNNBenchmark()
	n := NewRNN(in, hid, out, 17)
	r := NewRNG(4)
	xs := []Vec{r.FillVec(in, 0, 1), r.FillVec(in, 0, 1), r.FillVec(in, 0, 1)}
	ys := n.Forward(xs)
	if len(ys) != 3 || len(ys[0]) != out {
		t.Fatalf("bad output shape")
	}
	// Same final input with different history must differ.
	xs2 := []Vec{r.FillVec(in, 0, 1), xs[1], xs[2]}
	ys2 := n.Forward(xs2)
	same := true
	for i := range ys[2] {
		if ys[2][i] != ys2[2][i] {
			same = false
		}
	}
	if same {
		t.Error("RNN output ignores history")
	}
}

func TestLSTMGatesAndState(t *testing.T) {
	l := NewLSTM(26, 93, 61, 23)
	r := NewRNG(5)
	xs := []Vec{r.FillVec(26, 0, 1), r.FillVec(26, 0, 1)}
	ys := l.Forward(xs)
	if len(ys) != 2 || len(ys[0]) != 61 {
		t.Fatalf("bad shape")
	}
	h, c, _ := l.Step(xs[0], make(Vec, 93), make(Vec, 93))
	if len(h) != 93 || len(c) != 93 {
		t.Fatalf("bad state shape")
	}
	for i := range h {
		if h[i] < -1 || h[i] > 1 {
			t.Errorf("h[%d] = %v outside [-1,1]", i, h[i])
		}
	}
	// Zero forget + zero input gates would zero the cell; here just check
	// the cell actually depends on input.
	h2, _, _ := l.Step(xs[1], make(Vec, 93), make(Vec, 93))
	same := true
	for i := range h {
		if h[i] != h2[i] {
			same = false
		}
	}
	if same {
		t.Error("LSTM ignores input")
	}
}

func TestAutoencoderPretrainReducesReconstructionError(t *testing.T) {
	a := NewAutoencoder([]int{16, 8}, false, 31)
	x := NewRNG(6).FillVec(16, 0.1, 0.9)
	reconErr := func() float64 {
		h := a.Encode(0, x)
		xr := a.Decode(0, h)
		var s float64
		for i := range x {
			d := xr[i] - x[i]
			s += d * d
		}
		return s
	}
	before := reconErr()
	for i := 0; i < 20; i++ {
		a.PretrainStep(0, x, 0.5)
	}
	if after := reconErr(); after >= before {
		t.Errorf("pretraining did not reduce reconstruction error: %v -> %v", before, after)
	}
}

func TestSparseAutoencoderDiffersFromPlain(t *testing.T) {
	plain := NewAutoencoder([]int{16, 8}, false, 31)
	sparse := NewAutoencoder([]int{16, 8}, true, 31)
	x := NewRNG(6).FillVec(16, 0.1, 0.9)
	plain.PretrainStep(0, x, 0.5)
	sparse.PretrainStep(0, x, 0.5)
	diff := false
	for i := range plain.MLP.W[0].Data {
		if plain.MLP.W[0].Data[i] != sparse.MLP.W[0].Data[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("sparsity penalty had no effect")
	}
}

func TestBMHiddenProbAndLateralTerm(t *testing.T) {
	b := NewBM(20, 10, 77)
	for i := 0; i < 10; i++ {
		if b.L.At(i, i) != 0 {
			t.Errorf("L diagonal must be zero")
		}
	}
	r := NewRNG(8)
	v := r.FillVec(20, 0, 1)
	h0 := r.FillVec(10, 0, 1)
	p1 := b.HiddenProb(v, h0)
	p2 := b.HiddenProb(v, make(Vec, 10))
	diff := false
	for i := range p1 {
		if p1[i] <= 0 || p1[i] >= 1 {
			t.Errorf("p[%d]=%v out of range", i, p1[i])
		}
		if p1[i] != p2[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("lateral connections have no effect (not a BM)")
	}
}

func TestGibbsStepConvention(t *testing.T) {
	p := Vec{0.2, 0.8}
	r := Vec{0.5, 0.5}
	h := GibbsStep(p, r)
	// Fig. 7 convention: h = (r > p).
	if h[0] != 1 || h[1] != 0 {
		t.Errorf("GibbsStep = %v", h)
	}
}

func TestRBMCDUpdateMovesTowardData(t *testing.T) {
	rbm := NewRBM(12, 6, 55)
	r := NewRNG(10)
	v0 := r.FillVec(12, 0, 1)
	h0 := rbm.HiddenProb(v0)
	v1 := rbm.VisibleProb(h0)
	h1 := rbm.HiddenProb(v1)
	before := rbm.W.At(0, 0)
	rbm.CDUpdate(v0, h0, v1, h1, 0.1)
	expected := before + 0.1*(h0[0]*v0[0]-h1[0]*v1[0])
	if math.Abs(rbm.W.At(0, 0)-expected) > 1e-12 {
		t.Errorf("CD update wrong: %v vs %v", rbm.W.At(0, 0), expected)
	}
}

func TestSOMBMUAndTraining(t *testing.T) {
	in, gw, gh := SOMBenchmark()
	s := NewSOM(in, gw, gh, 99)
	if s.Neurons() != 36 {
		t.Fatalf("neurons = %d", s.Neurons())
	}
	// BMU of a prototype is itself.
	x := append(Vec(nil), s.W.Row(17)...)
	if got := s.BMU(x); got != 17 {
		t.Errorf("BMU of prototype 17 = %d", got)
	}
	// Training moves the BMU prototype toward the input.
	y := NewRNG(3).FillVec(in, 0, 1)
	bmu := s.BMU(y)
	before := Dist2(s.W.Row(bmu), y)
	s.TrainStep(y, 0.5, 1.0)
	if after := Dist2(s.W.Row(bmu), y); after >= before {
		t.Errorf("training did not move BMU closer: %v -> %v", before, after)
	}
	// Neighborhood is 1 at the BMU and decays with distance.
	if s.Neighborhood(7, 7, 1) != 1 {
		t.Error("self neighborhood must be 1")
	}
	if s.Neighborhood(0, 1, 1) <= s.Neighborhood(0, 5, 1) {
		t.Error("neighborhood must decay with lattice distance")
	}
}

func TestHopfieldRecallsStoredPatterns(t *testing.T) {
	np, n := HNNBenchmark()
	h := NewHNN(np, n, 123)
	for p := 0; p < np; p++ {
		corrupted := h.Corrupt(p, 10)
		recalled, iters := h.Recall(corrupted, 50)
		if iters >= 50 {
			t.Errorf("pattern %d did not converge", p)
		}
		errs := 0
		for i := range recalled {
			if recalled[i] != h.Patterns[p][i] {
				errs++
			}
		}
		if errs > 2 {
			t.Errorf("pattern %d recalled with %d errors", p, errs)
		}
	}
}

func TestHopfieldEnergyNonIncreasing(t *testing.T) {
	h := NewHNN(3, 60, 9)
	s := h.Corrupt(0, 15)
	e := h.Energy(s)
	for i := 0; i < 10; i++ {
		s = h.Step(s)
		ne := h.Energy(s)
		if ne > e+1e-9 {
			t.Fatalf("energy increased: %v -> %v", e, ne)
		}
		e = ne
	}
}

func TestQuantizeParamsAll(t *testing.T) {
	// Quantization must leave every parameter on the Q8.8 grid.
	onGrid := func(v float64) bool {
		return v == math.Trunc(v*256)/256
	}
	m := NewMLP([]int{4, 3}, 1).QuantizeParams()
	for _, v := range m.W[0].Data {
		if !onGrid(v) {
			t.Fatalf("MLP weight off grid: %v", v)
		}
	}
	c := NewLeNet5(1).QuantizeParams()
	if !onGrid(c.Convs[0].W.Data[0]) {
		t.Error("CNN weight off grid")
	}
	r := NewRNN(4, 3, 2, 1).QuantizeParams()
	if !onGrid(r.Whh.Data[0]) {
		t.Error("RNN weight off grid")
	}
	l := NewLSTM(4, 3, 2, 1).QuantizeParams()
	if !onGrid(l.Wx[0].Data[0]) {
		t.Error("LSTM weight off grid")
	}
	b := NewBM(4, 3, 1).QuantizeParams()
	if !onGrid(b.L.Data[1]) {
		t.Error("BM weight off grid")
	}
	rb := NewRBM(4, 3, 1).QuantizeParams()
	if !onGrid(rb.W.Data[0]) {
		t.Error("RBM weight off grid")
	}
	s := NewSOM(4, 2, 2, 1).QuantizeParams()
	if !onGrid(s.W.Data[0]) {
		t.Error("SOM weight off grid")
	}
	hn := NewHNN(2, 10, 1).QuantizeParams()
	if !onGrid(hn.W.Data[1]) {
		t.Error("HNN weight off grid")
	}
	a := NewAutoencoder([]int{4, 2}, true, 1).QuantizeParams()
	if !onGrid(a.MLP.W[0].Data[0]) {
		t.Error("AE weight off grid")
	}
}

func TestVectorActivations(t *testing.T) {
	v := Vec{-1, 0, 2}
	tv := TanhVec(v)
	rv := ReLUVec(v)
	for i := range v {
		if tv[i] != math.Tanh(v[i]) {
			t.Errorf("TanhVec[%d]", i)
		}
		if rv[i] != ReLU(v[i]) {
			t.Errorf("ReLUVec[%d]", i)
		}
	}
	if Tanh(0.3) != math.Tanh(0.3) {
		t.Error("Tanh")
	}
}

func TestBenchmarkTopologyHelpers(t *testing.T) {
	if got := AutoencoderSizes(); len(got) != 5 || got[0] != 320 || got[4] != 10 {
		t.Errorf("AutoencoderSizes = %v", got)
	}
	if v, h := BMBenchmark(); v != 500 || h != 500 {
		t.Errorf("BMBenchmark = %d,%d", v, h)
	}
	if in, hid, out := RNNBenchmark(); in != 26 || hid != 93 || out != 61 {
		t.Errorf("RNNBenchmark = %d,%d,%d", in, hid, out)
	}
	if p, n := HNNBenchmark(); p != 5 || n != 100 {
		t.Errorf("HNNBenchmark = %d,%d", p, n)
	}
	m := NewMLP([]int{4, 3, 2}, 1)
	if m.Layers() != 2 {
		t.Errorf("Layers = %d", m.Layers())
	}
	a := NewAutoencoder([]int{8, 4}, false, 1)
	if got := a.Forward(make(Vec, 8)); len(got) != 4 {
		t.Errorf("AE forward length %d", len(got))
	}
}
