package nn

// LSTM is the Table III long short-term memory benchmark (input(26) - H(93)
// - output(61), TIMIT [15]): the standard gated cell
//
//	i_t = sigmoid(Wi x + Ui h + bi)    input gate
//	f_t = sigmoid(Wf x + Uf h + bf)    forget gate
//	o_t = sigmoid(Wo x + Uo h + bo)    output gate
//	g_t = tanh(Wg x + Ug h + bg)       candidate
//	c_t = f_t .* c + i_t .* g_t
//	h_t = o_t .* tanh(c_t)
//	y_t = sigmoid(Why h_t + by)
//
// tanh is computed from sigmoid as tanh(a) = 2*sigmoid(2a) - 1, the same
// decomposition the generated Cambricon code uses (VEXP/VAS/VDV plus scalar
// constants); see internal/codegen.
type LSTM struct {
	In, Hidden, Out int
	// Gate parameters in order: input, forget, output, candidate.
	Wx, Wh [4]Mat
	B      [4]Vec
	Why    Mat
	By     Vec
}

// NewLSTM builds an LSTM with deterministic weights.
func NewLSTM(in, hidden, out int, seed uint64) *LSTM {
	r := NewRNG(seed)
	si, sh := WeightScale(in), WeightScale(hidden)
	l := &LSTM{In: in, Hidden: hidden, Out: out}
	for g := 0; g < 4; g++ {
		l.Wx[g] = r.FillMat(hidden, in, -si, si)
		l.Wh[g] = r.FillMat(hidden, hidden, -sh, sh)
		l.B[g] = r.FillVec(hidden, -sh, sh)
	}
	l.Why = r.FillMat(out, hidden, -sh, sh)
	l.By = r.FillVec(out, -sh, sh)
	return l
}

// QuantizeParams rounds all parameters to fixed-point precision.
func (l *LSTM) QuantizeParams() *LSTM {
	for g := 0; g < 4; g++ {
		l.Wx[g], l.Wh[g] = QuantizeMat(l.Wx[g]), QuantizeMat(l.Wh[g])
		l.B[g] = Quantize(l.B[g])
	}
	l.Why = QuantizeMat(l.Why)
	l.By = Quantize(l.By)
	return l
}

// tanhFromSigmoid mirrors the accelerator's tanh lowering.
func tanhFromSigmoid(a float64) float64 { return 2*Sigmoid(2*a) - 1 }

// Step advances one timestep.
func (l *LSTM) Step(x, hPrev, cPrev Vec) (h, c, y Vec) {
	var gates [4]Vec
	for g := 0; g < 4; g++ {
		pre := Add(Add(l.Wx[g].MulVec(x), l.Wh[g].MulVec(hPrev)), l.B[g])
		if g == 3 {
			gates[g] = make(Vec, len(pre))
			for i, v := range pre {
				gates[g][i] = tanhFromSigmoid(v)
			}
		} else {
			gates[g] = SigmoidVec(pre)
		}
	}
	in, forget, out, cand := gates[0], gates[1], gates[2], gates[3]
	c = Add(Hadamard(forget, cPrev), Hadamard(in, cand))
	h = make(Vec, l.Hidden)
	for i := range h {
		h[i] = out[i] * tanhFromSigmoid(c[i])
	}
	y = SigmoidVec(Add(l.Why.MulVec(h), l.By))
	return h, c, y
}

// Forward runs a sequence and returns per-step outputs.
func (l *LSTM) Forward(xs []Vec) []Vec {
	h := make(Vec, l.Hidden)
	c := make(Vec, l.Hidden)
	outs := make([]Vec, len(xs))
	for t, x := range xs {
		h, c, outs[t] = l.Step(x, h, c)
	}
	return outs
}
