package nn

// HNN is the Table III Hopfield benchmark (vector(5), vector component(100)
// [36]): an attractor network storing 5 bipolar patterns of 100 components
// with the Hebbian rule and recalling by synchronous sign updates.
type HNN struct {
	N int
	// Patterns are the stored bipolar (+1/-1) vectors.
	Patterns []Vec
	// W is the (N x N) Hebbian weight matrix with zero diagonal, scaled
	// by 1/N.
	W Mat
}

// HNNBenchmark is the Table III topology.
func HNNBenchmark() (patterns, components int) { return 5, 100 }

// NewHNN builds a Hopfield network over random bipolar patterns.
func NewHNN(patterns, n int, seed uint64) *HNN {
	r := NewRNG(seed)
	h := &HNN{N: n}
	for p := 0; p < patterns; p++ {
		v := make(Vec, n)
		for i := range v {
			if r.Float64() < 0.5 {
				v[i] = 1
			} else {
				v[i] = -1
			}
		}
		h.Patterns = append(h.Patterns, v)
	}
	h.W = NewMat(n, n)
	for _, v := range h.Patterns {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					h.W.Data[i*n+j] += v[i] * v[j] / float64(n)
				}
			}
		}
	}
	return h
}

// QuantizeParams rounds the weight matrix to fixed-point precision.
func (h *HNN) QuantizeParams() *HNN {
	h.W = QuantizeMat(h.W)
	return h
}

// Step performs one synchronous update: s' = sign(W s), with sign(0)
// holding the previous state. On the accelerator this is MMV followed by
// the VGT/VMV comparison sequence.
func (h *HNN) Step(s Vec) Vec {
	pre := h.W.MulVec(s)
	out := make(Vec, h.N)
	for i, v := range pre {
		switch {
		case v > 0:
			out[i] = 1
		case v < 0:
			out[i] = -1
		default:
			out[i] = s[i]
		}
	}
	return out
}

// Recall iterates Step until a fixed point or maxIters, returning the final
// state and the iteration count.
func (h *HNN) Recall(s Vec, maxIters int) (Vec, int) {
	cur := append(Vec(nil), s...)
	for it := 0; it < maxIters; it++ {
		next := h.Step(cur)
		same := true
		for i := range next {
			if next[i] != cur[i] {
				same = false
				break
			}
		}
		cur = next
		if same {
			return cur, it + 1
		}
	}
	return cur, maxIters
}

// Energy returns the Hopfield energy -1/2 s^T W s.
func (h *HNN) Energy(s Vec) float64 {
	return -0.5 * Dot(s, h.W.MulVec(s))
}

// Corrupt flips the first k components of pattern p (for recall tests).
func (h *HNN) Corrupt(p, k int) Vec {
	v := append(Vec(nil), h.Patterns[p]...)
	for i := 0; i < k && i < len(v); i++ {
		v[i] = -v[i]
	}
	return v
}
