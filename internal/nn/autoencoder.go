package nn

// Autoencoder is the Table III benchmark "a neural network pretrained by
// auto-encoder" (input(320) - H1(200) - H2(100) - H3(50) - output(10),
// MNIST [49]). The benchmark exercises both the stacked feedforward pass
// and one greedy layer-wise pretraining step (encode, decode with tied
// weights, and a reconstruction-gradient weight update) — the training
// component is what puts autoencoders beyond DaDianNao's four layer types
// (Section V-B1).
type Autoencoder struct {
	MLP *MLP
	// Sparse enables the sparsity penalty of the Sparse Autoencoder
	// variant: the pretraining step adds a KL-divergence term pushing
	// mean activations toward Rho.
	Sparse bool
	// Rho is the sparsity target; Beta its weight.
	Rho, Beta float64
}

// AutoencoderSizes is the Table III topology.
func AutoencoderSizes() []int { return []int{320, 200, 100, 50, 10} }

// NewAutoencoder builds the benchmark network.
func NewAutoencoder(sizes []int, sparse bool, seed uint64) *Autoencoder {
	return &Autoencoder{
		MLP:    NewMLP(sizes, seed),
		Sparse: sparse,
		Rho:    0.05,
		Beta:   0.1,
	}
}

// QuantizeParams rounds all parameters to fixed-point precision.
func (a *Autoencoder) QuantizeParams() *Autoencoder {
	a.MLP.QuantizeParams()
	return a
}

// Forward runs the stacked feedforward pass.
func (a *Autoencoder) Forward(x Vec) Vec { return a.MLP.Forward(x) }

// Encode applies layer l's encoder: h = sigmoid(W x + b).
func (a *Autoencoder) Encode(l int, x Vec) Vec { return a.MLP.ForwardLayer(l, x) }

// Decode reconstructs layer l's input with tied weights: xr = sigmoid(W^T h
// + c), with a zero reconstruction bias. The W^T contraction is a VMM on
// the accelerator.
func (a *Autoencoder) Decode(l int, h Vec) Vec {
	return SigmoidVec(a.MLP.W[l].VecMul(h))
}

// PretrainStep runs one greedy pretraining update on layer l for input x
// and returns the reconstruction it was computed from. The update is the
// gradient of the squared reconstruction error through the tied decoder,
// with an optional sparsity term:
//
//	h   = sigmoid(W x + b)
//	xr  = sigmoid(W^T h)
//	e   = xr - x
//	dXr = e .* xr .* (1 - xr)
//	dH  = (W dXr) .* h .* (1 - h) [+ beta * (h - rho)]
//	W  -= eta * (dH x^T + h dXr^T) ; b -= eta * dH
//
// The sparsity term uses the simplified surrogate beta*(h - rho) rather
// than the exact KL derivative: 1/h blows past the Q8.8 range for small h,
// so both the reference and the generated fixed-point code use the common
// bounded surrogate (see DESIGN.md).
func (a *Autoencoder) PretrainStep(l int, x Vec, eta float64) (recon Vec) {
	h := a.Encode(l, x)
	xr := a.Decode(l, h)
	dXr := make(Vec, len(xr))
	for i := range xr {
		dXr[i] = (xr[i] - x[i]) * xr[i] * (1 - xr[i])
	}
	back := a.MLP.W[l].MulVec(dXr)
	dH := make(Vec, len(h))
	for i := range h {
		dH[i] = back[i] * h[i] * (1 - h[i])
		if a.Sparse {
			dH[i] += a.Beta * (h[i] - a.Rho)
		}
	}
	w := a.MLP.W[l]
	for i := 0; i < w.Rows; i++ {
		for j := 0; j < w.Cols; j++ {
			w.Data[i*w.Cols+j] -= eta * (dH[i]*x[j] + h[i]*dXr[j])
		}
	}
	for i := range a.MLP.B[l] {
		a.MLP.B[l][i] -= eta * dH[i]
	}
	return xr
}
