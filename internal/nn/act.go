package nn

import "math"

// Sigmoid is the logistic activation used throughout the paper's examples:
// f(a) = e^a / (1 + e^a) (Section III-B).
func Sigmoid(a float64) float64 {
	// The numerically-stable form matches the accelerator's computation
	// e^a/(1+e^a) over the fixed-point range.
	if a >= 0 {
		return 1 / (1 + math.Exp(-a))
	}
	e := math.Exp(a)
	return e / (1 + e)
}

// SigmoidSat mimics the accelerator's saturating pipeline: the fixed-point
// datapath clamps e^a at the Q8.8 maximum before the division, so large
// pre-activations plateau slightly below 1.
func SigmoidSat(a float64) float64 {
	const maxQ = 127.99609375 // fixed.Max in Q8.8
	e := math.Exp(a)
	if e > maxQ {
		e = maxQ
	}
	return e / (1 + e)
}

// SigmoidVec applies Sigmoid element-wise.
func SigmoidVec(v Vec) Vec {
	out := make(Vec, len(v))
	for i, x := range v {
		out[i] = Sigmoid(x)
	}
	return out
}

// Tanh applies the hyperbolic tangent.
func Tanh(a float64) float64 { return math.Tanh(a) }

// TanhVec applies Tanh element-wise.
func TanhVec(v Vec) Vec {
	out := make(Vec, len(v))
	for i, x := range v {
		out[i] = math.Tanh(x)
	}
	return out
}

// ReLU is max(0, a), one of the comparison-based activations of
// Section III-C.
func ReLU(a float64) float64 {
	if a > 0 {
		return a
	}
	return 0
}

// ReLUVec applies ReLU element-wise.
func ReLUVec(v Vec) Vec {
	out := make(Vec, len(v))
	for i, x := range v {
		out[i] = ReLU(x)
	}
	return out
}
