// Package dadiannao models the paper's baseline accelerator: the
// re-implemented DaDianNao of Section V-A — a machine with the same
// arithmetic-operator counts and on-chip SRAM capacity as Cambricon-ACC
// (one central tile: 64 KB SRAM + 32 adders/multipliers; 32 leaf tiles:
// 24 KB SRAM + 32 adders/multipliers each), driven by an ISA of exactly
// four 512-bit VLIW layer instructions (Section V-B1): fully-connected
// classifier, convolutional, pooling and local response normalization.
//
// The package provides the two things the evaluation needs:
//
//   - Compile: the expressibility check behind the flexibility result —
//     a benchmark compiles only if every capability it requires is one of
//     the four layer types (plus their built-in sigmoid lookup table and
//     Bernoulli sampler). MLP, CNN and RBM compile; the other seven
//     benchmarks of Table III do not (Section V-B1).
//
//   - Cycles/Energy: a timing and activity model with the same functional
//     units and DMA engines as the Cambricon-ACC simulator, but
//     layer-granularity control: one fixed decode/setup overhead per layer
//     instruction and no per-operation instruction-pipeline costs. This is
//     the baseline for Figs. 12 and 13.
package dadiannao

import (
	"fmt"

	"cambricon/internal/workload"
)

// LayerKind is one of the four DaDianNao VLIW instruction types.
type LayerKind uint8

const (
	// LayerClassifier is the fully-connected classifier layer.
	LayerClassifier LayerKind = iota
	// LayerConv is the convolutional layer.
	LayerConv
	// LayerPool is the pooling layer.
	LayerPool
	// LayerLRN is the local response normalization layer.
	LayerLRN
)

func (k LayerKind) String() string {
	switch k {
	case LayerClassifier:
		return "classifier"
	case LayerConv:
		return "conv"
	case LayerPool:
		return "pool"
	case LayerLRN:
		return "lrn"
	default:
		return fmt.Sprintf("LayerKind(%d)", uint8(k))
	}
}

// Instruction is one 512-bit VLIW layer instruction: a layer kind plus the
// dimensions and flags its decoder needs.
type Instruction struct {
	Kind LayerKind
	// MACs, VecElems and TransElems are the layer's work.
	MACs, VecElems, TransElems int64
	// ParamBytes is the layer's weight footprint.
	ParamBytes int64
	// Sample marks the built-in Bernoulli sampling path (RBM).
	Sample bool
	// Repeat is the layer's trip count.
	Repeat int
}

// Program is a compiled DaDianNao benchmark.
type Program struct {
	Name         string
	Instructions []Instruction
}

// Len returns the static instruction count.
func (p *Program) Len() int { return len(p.Instructions) }

// Supported is the feature set the four layer instructions cover: dense and
// convolutional layers, pooling, sigmoid activation (hardwired lookup
// table) and Bernoulli sampling of activations.
const Supported = workload.FeatFC | workload.FeatConv | workload.FeatPool |
	workload.FeatSigmoid | workload.FeatSample

// UnsupportedError reports why a benchmark cannot be expressed.
type UnsupportedError struct {
	Benchmark string
	Missing   workload.Feature
}

func (e *UnsupportedError) Error() string {
	return fmt.Sprintf("dadiannao: %s requires capabilities outside the four layer types: %v",
		e.Benchmark, e.Missing)
}

// CanExpress reports whether the benchmark is an aggregation of the four
// layer types.
func CanExpress(b *workload.Benchmark) bool {
	return b.Features&^Supported == 0
}

// Compile lowers a benchmark to layer instructions, or fails with an
// UnsupportedError — the Section V-B1 flexibility result.
func Compile(b *workload.Benchmark) (*Program, error) {
	if missing := b.Features &^ Supported; missing != 0 {
		return nil, &UnsupportedError{Benchmark: b.Name, Missing: missing}
	}
	p := &Program{Name: b.Name}
	for _, op := range b.Ops {
		inst := Instruction{
			MACs:       op.MACs(),
			VecElems:   op.VectorElems(),
			TransElems: op.TranscendentalElems(),
			ParamBytes: op.ParamBytes(),
			Repeat:     op.Times(),
		}
		switch op.Kind {
		case workload.OpFC:
			inst.Kind = LayerClassifier
		case workload.OpConv:
			inst.Kind = LayerConv
		case workload.OpPool:
			inst.Kind = LayerPool
		case workload.OpElemwise:
			inst.Kind = LayerLRN
		case workload.OpSample:
			inst.Kind = LayerClassifier
			inst.Sample = true
		default:
			return nil, &UnsupportedError{Benchmark: b.Name}
		}
		p.Instructions = append(p.Instructions, inst)
	}
	return p, nil
}

// Config sizes the machine. Defaults match the re-implemented baseline.
type Config struct {
	// MACs is the total multiplier/adder count (1056 = 33 tiles x 32).
	MACs int
	// VectorLanes is the central tile's element-wise width.
	VectorLanes int
	// DMAStartupCycles and DMABytesPerCycle match the Cambricon-ACC DMA.
	DMAStartupCycles int
	DMABytesPerCycle int
	// LayerOverheadCycles is the VLIW decode + tile configuration cost
	// per layer instruction.
	LayerOverheadCycles int
	// ClockHz converts cycles to seconds.
	ClockHz float64
}

// DefaultConfig returns the resource-matched baseline of Section V-A.
func DefaultConfig() Config {
	return Config{
		MACs:                1056,
		VectorLanes:         32,
		DMAStartupCycles:    24,
		DMABytesPerCycle:    32,
		LayerOverheadCycles: 64,
		ClockHz:             1e9,
	}
}

// Activity summarizes a run for the energy model.
type Activity struct {
	Cycles       int64
	MACOps       int64
	VectorElems  int64
	LookupElems  int64 // activations through the lookup table
	DMABytes     int64
	Instructions int64
}

// Cycles estimates the execution time of a compiled program: every layer
// pays one decode/configure overhead and runs at full MAC-array
// utilization; weights stream once per layer (SRAM has no persistent eDRAM
// image in the re-implemented baseline) through a DMA that double-buffers
// against compute, so total time is the larger of the DMA stream and the
// compute stream. There is no instruction pipeline to bubble — the
// Section V-B3 contrast with Cambricon's finer-grained stream.
func (c Config) Cycles(p *Program) (int64, Activity) {
	var act Activity
	var dmaCycles, computeCycles int64
	dmaPerByte := func(n int64) int64 {
		if n <= 0 {
			return 0
		}
		return int64(c.DMAStartupCycles) + (n+int64(c.DMABytesPerCycle)-1)/int64(c.DMABytesPerCycle)
	}
	for _, inst := range p.Instructions {
		// Weights load once per instruction (repeats reuse them).
		dmaCycles += dmaPerByte(inst.ParamBytes)
		act.DMABytes += inst.ParamBytes
		for rep := 0; rep < inst.Repeat; rep++ {
			compute := ceilDiv64(inst.MACs, int64(c.MACs)) +
				ceilDiv64(inst.VecElems, int64(c.VectorLanes))
			computeCycles += int64(c.LayerOverheadCycles) + compute
			act.MACOps += inst.MACs
			act.VectorElems += inst.VecElems
			act.LookupElems += inst.TransElems
			act.Instructions++
		}
	}
	cycles := dmaCycles
	if computeCycles > cycles {
		cycles = computeCycles
	}
	act.Cycles = cycles
	return cycles, act
}

// Seconds converts a cycle count to time.
func (c Config) Seconds(cycles int64) float64 { return float64(cycles) / c.ClockHz }

func ceilDiv64(a, b int64) int64 {
	if b <= 0 {
		b = 1
	}
	return (a + b - 1) / b
}
