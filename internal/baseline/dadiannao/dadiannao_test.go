package dadiannao

import (
	"errors"
	"strings"
	"testing"

	"cambricon/internal/workload"
)

func TestFlexibilityThreeOfTen(t *testing.T) {
	// Section V-B1: "the DaDianNao ISA is only capable of expressing MLP,
	// CNN, and RBM, but fails to implement the rest 7 benchmarks".
	want := map[string]bool{
		"MLP": true, "CNN": true, "RBM": true,
		"RNN": false, "LSTM": false, "Autoencoder": false,
		"Sparse Autoencoder": false, "BM": false, "SOM": false, "HNN": false,
	}
	supported := 0
	for _, b := range workload.Benchmarks() {
		b := b
		can := CanExpress(&b)
		if can != want[b.Name] {
			t.Errorf("CanExpress(%s) = %v, want %v", b.Name, can, want[b.Name])
		}
		if can {
			supported++
		}
	}
	if supported != 3 {
		t.Errorf("DaDianNao supports %d/10 benchmarks, paper reports 3/10", supported)
	}
}

func TestCompileSupportedBenchmarks(t *testing.T) {
	for _, name := range []string{"MLP", "CNN", "RBM"} {
		b, _ := workload.ByName(name)
		p, err := Compile(&b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Len() == 0 {
			t.Errorf("%s: empty program", name)
		}
		if p.Len() != len(b.Ops) {
			t.Errorf("%s: %d layer instructions for %d ops", name, p.Len(), len(b.Ops))
		}
	}
}

func TestCompileRejectsWithTypedError(t *testing.T) {
	b, _ := workload.ByName("BM")
	_, err := Compile(&b)
	var ue *UnsupportedError
	if !errors.As(err, &ue) {
		t.Fatalf("want UnsupportedError, got %v", err)
	}
	if ue.Missing&workload.FeatLateral == 0 {
		t.Errorf("BM rejection should cite lateral connections, mask %#x", uint16(ue.Missing))
	}
}

func TestLayerKindMapping(t *testing.T) {
	cnn, _ := workload.ByName("CNN")
	p, err := Compile(&cnn)
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []LayerKind{LayerConv, LayerPool, LayerConv, LayerPool,
		LayerClassifier, LayerClassifier, LayerClassifier}
	for i, k := range wantKinds {
		if p.Instructions[i].Kind != k {
			t.Errorf("instruction %d kind %v, want %v", i, p.Instructions[i].Kind, k)
		}
	}
	rbm, _ := workload.ByName("RBM")
	pr, err := Compile(&rbm)
	if err != nil {
		t.Fatal(err)
	}
	foundSample := false
	for _, inst := range pr.Instructions {
		if inst.Sample {
			foundSample = true
		}
	}
	if !foundSample {
		t.Error("RBM should use the sampling path")
	}
}

func TestCyclesScaleWithWork(t *testing.T) {
	cfg := DefaultConfig()
	mlp, _ := workload.ByName("MLP")
	cnn, _ := workload.ByName("CNN")
	pm, _ := Compile(&mlp)
	pc, _ := Compile(&cnn)
	cm, am := cfg.Cycles(pm)
	cc, ac := cfg.Cycles(pc)
	if cm <= 0 || cc <= 0 {
		t.Fatal("non-positive cycles")
	}
	if cc <= cm {
		t.Errorf("CNN (%d cycles) should exceed MLP (%d cycles)", cc, cm)
	}
	if am.MACOps != mlp.MACs() || ac.MACOps != cnn.MACs() {
		t.Error("activity MACs should match workload")
	}
	if am.DMABytes != mlp.ParamBytes() {
		t.Errorf("MLP DMA bytes %d, want %d", am.DMABytes, mlp.ParamBytes())
	}
}

func TestRepeatsReuseWeights(t *testing.T) {
	cfg := DefaultConfig()
	rbm, _ := workload.ByName("RBM")
	p, _ := Compile(&rbm)
	_, act := cfg.Cycles(p)
	// Weights stream once even though the Gibbs chain repeats.
	if act.DMABytes != rbm.ParamBytes() {
		t.Errorf("DMA bytes %d, want %d", act.DMABytes, rbm.ParamBytes())
	}
	// Two FC + two sample layers per Gibbs step.
	if act.Instructions != int64(workload.GibbsSteps*4) {
		t.Errorf("dynamic layer count %d", act.Instructions)
	}
}

func TestLayerKindStrings(t *testing.T) {
	for _, k := range []LayerKind{LayerClassifier, LayerConv, LayerPool, LayerLRN} {
		if s := k.String(); s == "" || s[0] == 'L' {
			t.Errorf("kind %d missing name: %q", k, s)
		}
	}
}

func TestSecondsConversion(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.Seconds(1e9); got != 1 {
		t.Errorf("Seconds(1e9) = %v", got)
	}
}

func TestUnsupportedErrorMessage(t *testing.T) {
	b, _ := workload.ByName("LSTM")
	_, err := Compile(&b)
	if err == nil {
		t.Fatal("LSTM must not compile")
	}
	msg := err.Error()
	for _, want := range []string{"LSTM", "recurrence", "gating"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func TestVLIWEncodingRoundTrip(t *testing.T) {
	for _, name := range []string{"MLP", "CNN", "RBM"} {
		b, _ := workload.ByName(name)
		p, err := Compile(&b)
		if err != nil {
			t.Fatal(err)
		}
		words, err := EncodeProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(words) != p.Len() {
			t.Fatalf("%s: %d words for %d instructions", name, len(words), p.Len())
		}
		for i, w := range words {
			back, err := Decode(w)
			if err != nil {
				t.Fatal(err)
			}
			want := p.Instructions[i]
			if want.Repeat <= 0 {
				want.Repeat = 1
			}
			if back != want {
				t.Errorf("%s[%d]: %+v != %+v", name, i, back, want)
			}
		}
	}
}

func TestVLIWEncodingRejectsMalformed(t *testing.T) {
	if _, err := Encode(Instruction{Kind: 9}); err == nil {
		t.Error("bad kind accepted")
	}
	if _, err := Encode(Instruction{MACs: -1}); err == nil {
		t.Error("negative work accepted")
	}
	if _, err := Encode(Instruction{Repeat: 1000}); err == nil {
		t.Error("oversize repeat accepted")
	}
	var w Word
	w[0] = 200
	if _, err := Decode(w); err == nil {
		t.Error("bad kind word decoded")
	}
	w[0] = 0
	w[7] = 1
	if _, err := Decode(w); err == nil {
		t.Error("dirty reserved lane decoded")
	}
}

func TestVLIWCodeSizeContrast(t *testing.T) {
	// A DaDianNao instruction is 64 bytes; a Cambricon instruction is 8.
	// The MLP needs 3 VLIW words (192 bytes) vs 49 Cambricon instructions
	// (392 bytes) — few instructions, but each one enormously wide, which
	// is exactly the decoder-complexity trade the paper argues about.
	b, _ := workload.ByName("MLP")
	p, _ := Compile(&b)
	words, _ := EncodeProgram(p)
	if got := len(words) * 64; got != 192 {
		t.Errorf("MLP VLIW image = %d bytes", got)
	}
}
