package dadiannao

import "fmt"

// Word is one 512-bit VLIW instruction as eight 64-bit lanes. The paper
// specifies only the width ("four 512-bit VLIW instructions",
// Section V-B1); the field layout below is this model's documented choice:
//
//	lane 0: [7:0] kind, [8] sample flag, [39:32] repeat (low 8 bits)
//	lane 1: MACs
//	lane 2: element-wise work
//	lane 3: lookup-table (transcendental) work
//	lane 4: parameter bytes
//	lanes 5-7: reserved (zero)
type Word [8]uint64

// Encode packs a layer instruction into its 512-bit word.
func Encode(inst Instruction) (Word, error) {
	var w Word
	if inst.Kind > LayerLRN {
		return w, fmt.Errorf("dadiannao: invalid layer kind %d", inst.Kind)
	}
	if inst.MACs < 0 || inst.VecElems < 0 || inst.TransElems < 0 || inst.ParamBytes < 0 {
		return w, fmt.Errorf("dadiannao: negative work fields")
	}
	rep := inst.Repeat
	if rep <= 0 {
		rep = 1
	}
	if rep > 255 {
		return w, fmt.Errorf("dadiannao: repeat %d exceeds the 8-bit field", rep)
	}
	w[0] = uint64(inst.Kind)
	if inst.Sample {
		w[0] |= 1 << 8
	}
	w[0] |= uint64(rep) << 32
	w[1] = uint64(inst.MACs)
	w[2] = uint64(inst.VecElems)
	w[3] = uint64(inst.TransElems)
	w[4] = uint64(inst.ParamBytes)
	return w, nil
}

// Decode unpacks a 512-bit word.
func Decode(w Word) (Instruction, error) {
	kind := LayerKind(w[0] & 0xff)
	if kind > LayerLRN {
		return Instruction{}, fmt.Errorf("dadiannao: invalid layer kind %d in word", kind)
	}
	if w[5] != 0 || w[6] != 0 || w[7] != 0 {
		return Instruction{}, fmt.Errorf("dadiannao: reserved lanes must be zero")
	}
	return Instruction{
		Kind:       kind,
		Sample:     w[0]>>8&1 == 1,
		Repeat:     int(w[0] >> 32 & 0xff),
		MACs:       int64(w[1]),
		VecElems:   int64(w[2]),
		TransElems: int64(w[3]),
		ParamBytes: int64(w[4]),
	}, nil
}

// EncodeProgram packs a compiled program; total image size in bytes is
// 64 * len(instructions) — the code-size contrast with Cambricon's 8-byte
// instructions.
func EncodeProgram(p *Program) ([]Word, error) {
	out := make([]Word, 0, len(p.Instructions))
	for i, inst := range p.Instructions {
		w, err := Encode(inst)
		if err != nil {
			return nil, fmt.Errorf("dadiannao: instruction %d: %w", i, err)
		}
		out = append(out, w)
	}
	return out, nil
}
