// Package genarch models the paper's general-purpose baselines: x86 (Xeon
// E5-2620 + MKL), MIPS, and GPU (NVIDIA K40M + cuBLAS).
//
// We have neither the 2014 hardware nor the vendor toolchains, so both
// sides of the comparison are reproduced by construction (see DESIGN.md):
//
//   - Code density (Fig. 10): static pseudo-assembly listings generated
//     from the same workload IR the Cambricon code generators consume. The
//     listings model what an optimizing compiler emits for each layer-level
//     op — prologue and addressing code, alignment-peel / unrolled-vector /
//     remainder loop triples for vectorized loops, inlined polynomial
//     transcendentals, reduction trees — in each architecture's style.
//
//   - Performance and energy (Figs. 12, 13): analytic roofline models
//     (per-call overhead + max(compute, memory) + transcendental cost)
//     calibrated to the published machine specifications.
package genarch

import (
	"fmt"

	"cambricon/internal/workload"
)

// Style selects the instruction-emission strategy.
type Style uint8

const (
	// StyleSIMD is a CISC core with vector extensions (x86 + AVX).
	StyleSIMD Style = iota
	// StyleScalar is a classic RISC core without SIMD (MIPS).
	StyleScalar
	// StyleGPU is a PTX-like data-parallel target: one kernel per layer
	// op, per-thread scalar bodies.
	StyleGPU
)

// Arch describes one baseline instruction set for code generation.
type Arch struct {
	// Name labels listings and results.
	Name string
	// Style picks the emission strategy.
	Style Style
	// VecWidth is the SIMD element width (fp32 lanes) for StyleSIMD.
	VecWidth int
	// Unroll is the main-loop unroll factor the compiler applies.
	Unroll int
	// ExpSeq is the instruction count of one inlined exponential
	// approximation (range reduction + polynomial + scaling) — scalar
	// for StyleScalar, vector for StyleSIMD, per-thread for StyleGPU.
	ExpSeq int
}

// X86 is the paper's x86-CPU baseline ISA: AVX (256-bit = 8 fp32 lanes),
// compiler-style vectorization with peel/main/tail loops.
func X86() Arch {
	return Arch{Name: "x86", Style: StyleSIMD, VecWidth: 8, Unroll: 4, ExpSeq: 30}
}

// MIPS is the scalar RISC baseline: no SIMD, 4-way unrolled scalar loops,
// scalar polynomial exponential.
func MIPS() Arch {
	return Arch{Name: "MIPS", Style: StyleScalar, Unroll: 4, ExpSeq: 40}
}

// GPU is the PTX-like baseline: per-op kernels with hardware special
// function units for transcendentals.
func GPU() Arch {
	return Arch{Name: "GPU", Style: StyleGPU, ExpSeq: 4}
}

// Listing generates the static pseudo-assembly for one benchmark. The
// returned lines are the Fig. 10 code-length measurement.
func (a Arch) Listing(b *workload.Benchmark) []string {
	e := &emitter{arch: a}
	e.linef("# %s listing for %s (%s)", a.Name, b.Name, b.Structure)
	e.prologue(b.Name)
	for i, op := range b.Ops {
		e.emitOp(i, op)
	}
	e.epilogue()
	return e.lines
}

// CodeLength is the instruction count of Listing (comments excluded).
func (a Arch) CodeLength(b *workload.Benchmark) int {
	n := 0
	for _, l := range a.Listing(b) {
		if len(l) > 0 && l[0] != '#' {
			n++
		}
	}
	return n
}

// emitter accumulates listing lines.
type emitter struct {
	arch  Arch
	lines []string
	label int
}

func (e *emitter) linef(format string, args ...any) {
	e.lines = append(e.lines, fmt.Sprintf(format, args...))
}

// emit appends n synthesized instructions of the given class; the mnemonic
// stream is representative rather than executable.
func (e *emitter) emit(class string, mnemonics ...string) {
	for _, m := range mnemonics {
		e.lines = append(e.lines, "\t"+m+"\t# "+class)
	}
}

func (e *emitter) emitN(class, mnemonic string, n int) {
	for i := 0; i < n; i++ {
		e.emit(class, mnemonic)
	}
}

func (e *emitter) newLabel(prefix string) string {
	e.label++
	return fmt.Sprintf(".%s%d", prefix, e.label)
}

func (e *emitter) prologue(name string) {
	switch e.arch.Style {
	case StyleSIMD:
		e.emit("prologue", "push rbp", "mov rbp, rsp", "push rbx", "push r12",
			"push r13", "sub rsp, 64")
	case StyleScalar:
		e.emit("prologue", "addiu sp, sp, -48", "sw ra, 44(sp)", "sw s0, 40(sp)",
			"sw s1, 36(sp)", "sw s2, 32(sp)")
	case StyleGPU:
		e.emit("module", ".version 4.2", ".target sm_35", ".address_size 64")
	}
	_ = name
}

func (e *emitter) epilogue() {
	switch e.arch.Style {
	case StyleSIMD:
		e.emit("epilogue", "add rsp, 64", "pop r13", "pop r12", "pop rbx",
			"pop rbp", "ret")
	case StyleScalar:
		e.emit("epilogue", "lw ra, 44(sp)", "lw s0, 40(sp)", "lw s1, 36(sp)",
			"lw s2, 32(sp)", "addiu sp, sp, 48", "jr ra")
	case StyleGPU:
		// Kernel-per-op targets have no shared epilogue.
	}
}

// emitOp dispatches one layer-level op.
func (e *emitter) emitOp(idx int, op workload.Op) {
	e.linef("# op %d: %s", idx, op.Kind)
	switch e.arch.Style {
	case StyleGPU:
		e.emitGPUOp(op)
		return
	default:
	}
	switch op.Kind {
	case workload.OpFC, workload.OpBackFC:
		e.emitGEMV(op.Out)
		e.emitActivation(op)
	case workload.OpFCLateral:
		e.emitGEMV(op.Out)
		e.emitGEMV(op.Out)
		e.emitElemLoop("combine lateral term", 1)
		e.emitActivation(op)
	case workload.OpConv:
		e.emitConvLoops(op)
	case workload.OpPool:
		e.emitPoolLoops()
	case workload.OpElemwise:
		e.emitElemLoop("elementwise pass", 2)
	case workload.OpSample:
		e.emitSampleLoop()
	case workload.OpOuterUpdate:
		e.emitOuterLoops()
	case workload.OpDistance:
		e.emitDistanceLoops()
	case workload.OpArgExtreme:
		e.emitArgScan()
	}
}

// vectorizedLoop emits the peel / unrolled-main / remainder triple a
// vectorizing compiler generates, with the given per-element body size.
func (e *emitter) vectorizedLoop(what string, scalarBody, vecBody int) {
	peel := e.newLabel("peel")
	main := e.newLabel("main")
	tail := e.newLabel("tail")
	e.emit(what+" peel setup", "lea rax, [rdi]", "and rax, 31", "jz "+main)
	e.linef("%s:", peel)
	e.emitN(what+" peel body", "movss/mulss/addss ...", scalarBody)
	e.emit(what+" peel ctl", "add rdi, 4", "dec rcx", "jnz "+peel)
	e.linef("%s:", main)
	for u := 0; u < e.arch.Unroll; u++ {
		e.emitN(what+" vector body", "vmovups/vfmadd231ps ...", vecBody)
	}
	e.emit(what+" main ctl", "add rdi, 64", "sub rcx, 16", "ja "+main)
	e.linef("%s:", tail)
	e.emitN(what+" tail body", "movss/mulss/addss ...", scalarBody)
	e.emit(what+" tail ctl", "add rdi, 4", "dec rcx", "jnz "+tail)
}

// scalarLoop emits an unrolled scalar loop (MIPS style).
func (e *emitter) scalarLoop(what string, body int) {
	top := e.newLabel("loop")
	e.emit(what+" setup", "move t0, a0", "move t1, a1", "li t2, 0")
	e.linef("%s:", top)
	for u := 0; u < e.arch.Unroll; u++ {
		e.emitN(what+" body", "lw/mul/addu/sw ...", body)
	}
	e.emit(what+" ctl", "addiu t0, t0, 16", "addiu t2, t2, 4", "bne t2, t3, "+top, "nop")
	rem := e.newLabel("rem")
	e.linef("%s:", rem)
	e.emitN(what+" remainder", "lw/mul/addu/sw ...", body)
	e.emit(what+" rem ctl", "addiu t2, t2, 1", "bne t2, t4, "+rem, "nop")
}

// emitGEMV emits a dense matrix-vector product: an outer row loop wrapping
// a dot-product inner loop plus a horizontal reduction.
func (e *emitter) emitGEMV(rows int) {
	outer := e.newLabel("row")
	e.emit("gemv setup", "load matrix base", "load vector base", "load row count")
	e.linef("%s:", outer)
	switch e.arch.Style {
	case StyleSIMD:
		e.emit("gemv acc init", "vxorps ymm0, ymm0, ymm0")
		e.vectorizedLoop("dot", 3, 3)
		e.emit("gemv reduce", "vextractf128 ...", "vhaddps ...", "vhaddps ...",
			"vaddss ...", "movss store")
	case StyleScalar:
		e.emit("gemv acc init", "mtc1 zero, f0")
		e.scalarLoop("dot", 6)
		e.emit("gemv store", "swc1 f0, 0(t5)")
	}
	e.emit("gemv row ctl", "advance row pointer", "dec row counter", "jnz "+outer)
	_ = rows
}

// emitActivation emits the activation pass (sigmoid/tanh need an inlined
// exponential; sign is a compare loop).
func (e *emitter) emitActivation(op workload.Op) {
	switch op.Act {
	case workload.ActSigmoid, workload.ActTanh:
		switch e.arch.Style {
		case StyleSIMD:
			// The vectorizer clones the inlined exponential into the
			// alignment-peel, main-vector and remainder bodies.
			peel := e.newLabel("act_peel")
			main := e.newLabel("act_main")
			tail := e.newLabel("act_tail")
			e.emit("activation setup", "load count", "load base", "test alignment")
			e.linef("%s:", peel)
			e.emitN("inlined exp (peel)", "range-reduce/poly/scale ...", e.arch.ExpSeq)
			e.emit("sigmoid finish", "addss 1.0", "divss", "movss store")
			e.emit("activation peel ctl", "advance", "dec", "jnz "+peel)
			e.linef("%s:", main)
			e.emitN("inlined exp (vector)", "vrange-reduce/vpoly/vscale ...", e.arch.ExpSeq)
			e.emit("sigmoid finish", "vaddps 1.0", "vdivps", "vmovups store")
			e.emit("activation main ctl", "advance", "sub count", "ja "+main)
			e.linef("%s:", tail)
			e.emitN("inlined exp (tail)", "range-reduce/poly/scale ...", e.arch.ExpSeq)
			e.emit("sigmoid finish", "addss 1.0", "divss", "movss store")
			e.emit("activation tail ctl", "advance", "dec", "jnz "+tail)
		case StyleScalar:
			// Unrolled-by-two scalar loop plus a remainder copy.
			top := e.newLabel("act")
			rem := e.newLabel("act_rem")
			e.emit("activation setup", "load count", "load base")
			e.linef("%s:", top)
			e.emitN("inlined exp", "range-reduce/poly/scale ...", e.arch.ExpSeq)
			e.emit("sigmoid finish", "add.s 1.0", "div.s", "swc1 store")
			e.emitN("inlined exp (unrolled)", "range-reduce/poly/scale ...", e.arch.ExpSeq)
			e.emit("sigmoid finish", "add.s 1.0", "div.s", "swc1 store")
			e.emit("activation ctl", "addiu advance", "addiu dec", "bne "+top, "nop")
			e.linef("%s:", rem)
			e.emitN("inlined exp (remainder)", "range-reduce/poly/scale ...", e.arch.ExpSeq)
			e.emit("sigmoid finish", "add.s 1.0", "div.s", "swc1 store")
		}
	case workload.ActSign:
		e.emitElemLoop("sign threshold", 3)
	}
}

// emitElemLoop is a simple element-wise pass of the given body size.
func (e *emitter) emitElemLoop(what string, body int) {
	switch e.arch.Style {
	case StyleSIMD:
		e.vectorizedLoop(what, body, body)
	case StyleScalar:
		e.scalarLoop(what, body+1)
	}
}

// emitSampleLoop draws uniforms and thresholds them.
func (e *emitter) emitSampleLoop() {
	top := e.newLabel("sample")
	e.emit("sample setup", "load rng state", "load count")
	e.linef("%s:", top)
	e.emit("xorshift step", "xor/shift ...", "xor/shift ...", "xor/shift ...",
		"convert to float")
	e.emit("threshold", "compare", "set 0/1", "store")
	e.emit("sample ctl", "advance", "dec", "jnz "+top)
}

// emitConvLoops emits the four-deep convolution nest: output y/x loops,
// channel loop, and the kernel dot product.
func (e *emitter) emitConvLoops(op workload.Op) {
	yl := e.newLabel("conv_y")
	xl := e.newLabel("conv_x")
	cl := e.newLabel("conv_c")
	e.emit("conv setup", "load input base", "load weight base", "load output base",
		"load geometry", "compute strides")
	e.linef("%s:", yl)
	e.linef("%s:", xl)
	e.linef("%s:", cl)
	e.emit("patch addressing", "compute window base", "compute filter base")
	switch e.arch.Style {
	case StyleSIMD:
		e.vectorizedLoop("patch dot", 3, 3)
		e.emit("conv reduce", "vhaddps ...", "vhaddps ...", "vaddss bias")
	case StyleScalar:
		e.scalarLoop("patch dot", 6)
		e.emit("conv bias", "add.s f0, f0, f2")
	}
	e.emitN("inlined exp", "range-reduce/poly/scale ...", e.arch.ExpSeq)
	e.emit("sigmoid finish", "add 1.0", "divide", "store output")
	e.emit("conv c ctl", "advance filter", "dec channel", "jnz "+cl)
	e.emit("conv x ctl", "advance window", "dec x", "jnz "+xl)
	e.emit("conv y ctl", "advance row", "dec y", "jnz "+yl)
	_ = op
}

// emitPoolLoops emits the pooling nest.
func (e *emitter) emitPoolLoops() {
	yl := e.newLabel("pool_y")
	xl := e.newLabel("pool_x")
	e.emit("pool setup", "load input base", "load output base", "load geometry")
	e.linef("%s:", yl)
	e.linef("%s:", xl)
	e.emit("window max", "load (0,0)", "load (0,1)", "max", "load (1,0)", "max",
		"load (1,1)", "max", "store")
	e.emit("pool x ctl", "advance window", "dec x", "jnz "+xl)
	e.emit("pool y ctl", "advance row", "dec y", "jnz "+yl)
}

// emitOuterLoops emits the rank-1 update nest.
func (e *emitter) emitOuterLoops() {
	rl := e.newLabel("outer_r")
	e.emit("outer setup", "load a base", "load b base", "load W base", "load eta")
	e.linef("%s:", rl)
	e.emit("outer row scale", "load a[i]", "mul eta")
	e.emitElemLoop("rank-1 row update", 3)
	e.emit("outer row ctl", "advance row", "dec", "jnz "+rl)
}

// emitDistanceLoops emits the prototype-distance nest (SOM).
func (e *emitter) emitDistanceLoops() {
	nl := e.newLabel("dist_n")
	e.emit("distance setup", "load prototype base", "load input base")
	e.linef("%s:", nl)
	switch e.arch.Style {
	case StyleSIMD:
		e.vectorizedLoop("squared distance", 4, 4)
		e.emit("distance reduce", "vhaddps ...", "vhaddps ...", "store")
	case StyleScalar:
		e.scalarLoop("squared distance", 7)
		e.emit("distance store", "swc1 f0, 0(t6)")
	}
	e.emit("distance ctl", "advance prototype", "dec", "jnz "+nl)
}

// emitArgScan emits the argmin scan.
func (e *emitter) emitArgScan() {
	top := e.newLabel("argmin")
	e.emit("argmin setup", "load base", "init best")
	e.linef("%s:", top)
	e.emit("argmin body", "load", "compare", "cmov/branch update", "advance")
	e.emit("argmin ctl", "dec", "jnz "+top)
}

// emitGPUOp emits one PTX-like kernel per op.
func (e *emitter) emitGPUOp(op workload.Op) {
	e.linef(".visible .entry %s_kernel(", op.Kind)
	e.emit("kernel params", ".param .u64 in", ".param .u64 w", ".param .u64 b",
		".param .u64 out", ".param .u32 n", ".param .u32 k")
	e.emit("register decls", ".reg .pred %p<4>", ".reg .f32 %f<16>",
		".reg .b32 %r<12>", ".reg .b64 %rd<12>")
	e.emit("kernel header", "ld.param.u64 %rd1, [in]", "ld.param.u64 %rd2, [w]",
		"ld.param.u64 %rd3, [b]", "ld.param.u64 %rd4, [out]",
		"ld.param.u32 %r1, [n]", "mov.u32 %r2, %tid.x", "mov.u32 %r3, %ctaid.x",
		"mov.u32 %r4, %ntid.x", "mad.lo.u32 %r5, %r3, %r4, %r2",
		"setp.ge.u32 %p1, %r5, %r1", "@%p1 bra DONE",
		"cvta.to.global.u64 %rd5, %rd1", "cvta.to.global.u64 %rd6, %rd2",
		"cvta.to.global.u64 %rd7, %rd4", "mul.wide.u32 %rd8, %r5, 4",
		"add.u64 %rd9, %rd5, %rd8")
	switch op.Kind {
	case workload.OpFC, workload.OpBackFC, workload.OpFCLateral:
		top := e.newLabel("dot")
		e.linef("%s:", top)
		e.emit("dot body", "ld.global.f32 %f1, [w]", "ld.global.f32 %f2, [x]",
			"fma.rn.f32 %f0, %f1, %f2, %f0", "add.u64 w, w, 4", "add.u64 x, x, 4")
		e.emit("dot ctl", "add.u32 %i, %i, 1", "setp.lt.u32 %p, %i, K", "@%p bra "+top)
		if op.Kind == workload.OpFCLateral {
			top2 := e.newLabel("dot")
			e.linef("%s:", top2)
			e.emit("lateral dot body", "ld.global.f32 ...", "ld.global.f32 ...",
				"fma.rn.f32 ...", "add.u64 ...", "add.u64 ...")
			e.emit("lateral dot ctl", "add.u32 ...", "setp.lt.u32 ...", "@%p bra "+top2)
		}
		switch op.Act {
		case workload.ActSigmoid, workload.ActTanh:
			e.emit("bias", "ld.global.f32 %f3, [b]", "add.f32 %f0, %f0, %f3")
			e.emitN("sfu sigmoid", "ex2.approx.f32/rcp.approx.f32 ...", e.arch.ExpSeq)
		case workload.ActSign:
			// Hopfield-style threshold with hold-previous-state.
			e.emit("sign threshold", "ld.global.f32 %f4, [state]",
				"setp.gt.f32 %p2, %f0, 0f00000000", "setp.lt.f32 %p3, %f0, 0f00000000",
				"selp.f32 %f5, 0f3F800000, %f4, %p2", "selp.f32 %f5, 0fBF800000, %f5, %p3",
				"mov.f32 %f0, %f5")
		}
		e.emit("store", "st.global.f32 [out], %f0")
	case workload.OpConv:
		kyl := e.newLabel("ky")
		e.emit("conv index math", "div/rem for (y,x,c)", "compute window base",
			"compute filter base")
		e.linef("%s:", kyl)
		e.emit("conv body", "ld.global.f32 ...", "ld.global.f32 ...", "fma.rn.f32 ...",
			"add.u64 ...", "add.u64 ...")
		e.emit("conv ctl", "add.u32 ...", "setp.lt.u32 ...", "@%p bra "+kyl)
		e.emitN("sfu sigmoid", "ex2.approx.f32/rcp.approx.f32 ...", e.arch.ExpSeq)
		e.emit("store", "st.global.f32 [out], %f0")
	case workload.OpPool:
		e.emit("pool body", "ld.global.f32 ...", "ld.global.f32 ...", "max.f32 ...",
			"ld.global.f32 ...", "max.f32 ...", "ld.global.f32 ...", "max.f32 ...",
			"st.global.f32 ...")
	case workload.OpElemwise:
		e.emit("elemwise body", "ld.global.f32 ...", "mul.f32 ...", "add.f32 ...",
			"st.global.f32 ...")
	case workload.OpSample:
		e.emit("sample body", "curand xorshift ...", "curand xorshift ...",
			"cvt.rn.f32.u32 ...", "setp.gt.f32 ...", "selp.f32 ...", "st.global.f32 ...")
	case workload.OpOuterUpdate:
		e.emit("rank-1 body", "ld.global.f32 a", "ld.global.f32 b", "mul.f32 ...",
			"fma.rn.f32 ...", "st.global.f32 ...")
	case workload.OpDistance:
		top := e.newLabel("dist")
		e.linef("%s:", top)
		e.emit("distance body", "ld.global.f32 ...", "ld.global.f32 ...",
			"sub.f32 ...", "fma.rn.f32 ...", "add.u64 ...")
		e.emit("distance ctl", "add.u32 ...", "setp.lt.u32 ...", "@%p bra "+top)
		e.emit("store", "st.global.f32 [out], %f0")
	case workload.OpArgExtreme:
		e.emit("argmin body", "shared-memory tree reduction ...",
			"ld.shared/min/st.shared", "bar.sync 0", "ld.shared/min/st.shared",
			"bar.sync 0", "st.global ...")
	}
	e.emit("kernel end", "DONE: ret")
}
