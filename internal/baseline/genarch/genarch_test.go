package genarch

import (
	"strings"
	"testing"

	"cambricon/internal/workload"
)

func TestCodeLengthOrderingAcrossArchitectures(t *testing.T) {
	// Fig. 10's consistent ordering: for every benchmark, MIPS (pure
	// scalar) emits the longest code, then x86 (SIMD), then GPU (thread-
	// parallel kernels hide the loops).
	for _, b := range workload.Benchmarks() {
		b := b
		mips := MIPS().CodeLength(&b)
		x86 := X86().CodeLength(&b)
		gpu := GPU().CodeLength(&b)
		if !(mips > x86 && x86 > gpu) {
			t.Errorf("%s: want MIPS(%d) > x86(%d) > GPU(%d)", b.Name, mips, x86, gpu)
		}
		if gpu <= 0 {
			t.Errorf("%s: empty GPU listing", b.Name)
		}
	}
}

func TestListingsAreCommentedAssembly(t *testing.T) {
	b, _ := workload.ByName("MLP")
	for _, a := range []Arch{X86(), MIPS(), GPU()} {
		lines := Arch.Listing(a, &b)
		if len(lines) < 20 {
			t.Errorf("%s: suspiciously short listing (%d lines)", a.Name, len(lines))
		}
		if !strings.HasPrefix(lines[0], "#") {
			t.Errorf("%s: missing header comment", a.Name)
		}
	}
	// Sigmoid layers must include an inlined exponential on CPU ISAs.
	x := strings.Join(X86().Listing(&b), "\n")
	if !strings.Contains(x, "inlined exp") {
		t.Error("x86 listing missing inlined exponential")
	}
	g := strings.Join(GPU().Listing(&b), "\n")
	if !strings.Contains(g, "ex2.approx") {
		t.Error("GPU listing should use the SFU path")
	}
}

func TestCodeLengthDeterministic(t *testing.T) {
	b, _ := workload.ByName("CNN")
	if X86().CodeLength(&b) != X86().CodeLength(&b) {
		t.Error("code length must be deterministic")
	}
}

func TestStaticLengthIgnoresRepeats(t *testing.T) {
	// Static code length must not scale with trip counts: RNN code is
	// the same program whether it runs 8 or 800 timesteps.
	rnn, _ := workload.ByName("RNN")
	longer := rnn
	longer.Ops = append([]workload.Op(nil), rnn.Ops...)
	for i := range longer.Ops {
		longer.Ops[i].Repeat = 100 * longer.Ops[i].Times()
	}
	if X86().CodeLength(&rnn) != X86().CodeLength(&longer) {
		t.Error("static code length scaled with repeat count")
	}
}

func TestPerfModelsScaleWithWork(t *testing.T) {
	cpu, gpu := CPUPerf(), GPUPerf()
	mlp, _ := workload.ByName("MLP")
	bm, _ := workload.ByName("BM")
	if cpu.Seconds(&mlp) <= 0 || gpu.Seconds(&mlp) <= 0 {
		t.Fatal("non-positive time")
	}
	if cpu.Seconds(&bm) <= cpu.Seconds(&mlp) {
		t.Error("BM (2M MACs) should take the CPU longer than MLP (34k MACs)")
	}
	// The CPU is slower than the GPU on every benchmark (Fig. 12 shows
	// x86/Cambricon far above GPU/Cambricon).
	for _, b := range workload.Benchmarks() {
		b := b
		if cpu.Seconds(&b) <= gpu.Seconds(&b) {
			t.Errorf("%s: CPU (%.3g s) should be slower than GPU (%.3g s)",
				b.Name, cpu.Seconds(&b), gpu.Seconds(&b))
		}
	}
}

func TestEnergyUsesAveragePower(t *testing.T) {
	gpu := GPUPerf()
	b, _ := workload.ByName("RBM")
	if got, want := gpu.EnergyJoules(&b), gpu.AvgPowerWatts*gpu.Seconds(&b); got != want {
		t.Errorf("energy %v != power*time %v", got, want)
	}
}

func TestGPULaunchOverheadDominatesSmallNets(t *testing.T) {
	gpu := GPUPerf()
	mlp, _ := workload.ByName("MLP")
	overhead := gpu.CallOverheadSec * gpu.KernelsPerOp * float64(len(mlp.Ops))
	if gpu.Seconds(&mlp) < overhead {
		t.Error("total time below launch overhead")
	}
	if gpu.Seconds(&mlp) > 10*overhead {
		t.Error("MLP on the GPU should be launch-bound, not compute-bound")
	}
}
