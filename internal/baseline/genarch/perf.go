package genarch

import "cambricon/internal/workload"

// PerfModel is an analytic roofline performance/energy model for one
// general-purpose baseline: per-op dispatch overhead plus the larger of the
// compute and memory times, plus transcendental cost where the machine has
// no fast special-function path.
type PerfModel struct {
	// Name labels results.
	Name string
	// CallOverheadSec is the fixed cost of dispatching one layer-level
	// op (library-call overhead on the CPU, kernel-launch overhead on
	// the GPU).
	CallOverheadSec float64
	// KernelsPerOp is how many dispatches one layer op needs (e.g. GEMV
	// plus activation).
	KernelsPerOp float64
	// EffFLOPS is the sustained FLOP/s on these small NN kernels.
	EffFLOPS float64
	// MemBWBytesPerSec is the sustained memory bandwidth.
	MemBWBytesPerSec float64
	// ExpSecPerElem is the per-element cost of exp() where it runs on
	// the ALUs (zero when a special-function unit hides it).
	ExpSecPerElem float64
	// BytesPerElem is the storage width (the baselines compute in fp32).
	BytesPerElem float64
	// AvgPowerWatts is the average package power while running these
	// kernels (for the Fig. 13 energy comparison).
	AvgPowerWatts float64
}

// CPUPerf models the Xeon E5-2620 + MKL baseline: a 2.1 GHz Sandy
// Bridge-era core running MKL's small-GEMV paths. Small, skinny NN
// operands keep sustained throughput far below peak (no blocking, fp32
// GEMV is memory-shape bound), and libm exp costs tens of nanoseconds per
// element.
func CPUPerf() PerfModel {
	return PerfModel{
		Name:             "x86-CPU",
		CallOverheadSec:  2e-6,
		KernelsPerOp:     2,
		EffFLOPS:         1.2e9,
		MemBWBytesPerSec: 12e9,
		ExpSecPerElem:    60e-9,
		BytesPerElem:     4,
		AvgPowerWatts:    95,
	}
}

// GPUPerf models the K40M + cuBLAS baseline: 4.29 TFLOP/s peak but
// dispatch-floor-dominated on Table III's small layers (the paper measures
// kernel time, so the floor is the minimum kernel duration rather than the
// full host-side launch gap), with low achieved utilization and
// special-function units absorbing transcendentals.
func GPUPerf() PerfModel {
	return PerfModel{
		Name:             "GPU",
		CallOverheadSec:  1.5e-6,
		KernelsPerOp:     1.5,
		EffFLOPS:         4.29e12 * 0.08,
		MemBWBytesPerSec: 288e9 * 0.5,
		ExpSecPerElem:    0,
		BytesPerElem:     4,
		AvgPowerWatts:    75,
	}
}

// Seconds estimates the benchmark's execution time.
func (p PerfModel) Seconds(b *workload.Benchmark) float64 {
	var total float64
	for _, op := range b.Ops {
		reps := float64(op.Times())
		flops := 2 * float64(op.MACs())
		elemOps := float64(op.VectorElems())
		bytes := p.BytesPerElem * (float64(op.ParamBytes())/2 + elemOps)
		compute := (flops + elemOps) / p.EffFLOPS
		memory := bytes / p.MemBWBytesPerSec
		t := p.CallOverheadSec * p.KernelsPerOp
		if compute > memory {
			t += compute
		} else {
			t += memory
		}
		t += p.ExpSecPerElem * float64(op.TranscendentalElems())
		total += t * reps
	}
	return total
}

// EnergyJoules estimates the benchmark's energy as average power times
// execution time, the same product the paper uses (Section V-B4).
func (p PerfModel) EnergyJoules(b *workload.Benchmark) float64 {
	return p.AvgPowerWatts * p.Seconds(b)
}
