package genarch

import (
	"strings"
	"testing"

	"cambricon/internal/workload"
)

// opListing renders a one-op benchmark on the given arch.
func opListing(a Arch, op workload.Op) string {
	b := workload.Benchmark{Name: "probe", Structure: "probe", Ops: []workload.Op{op}}
	return strings.Join(a.Listing(&b), "\n")
}

func TestX86StructuralMarkers(t *testing.T) {
	a := X86()
	cases := []struct {
		op   workload.Op
		want []string
	}{
		{workload.Op{Kind: workload.OpFC, Act: workload.ActSigmoid, In: 64, Out: 32},
			[]string{"gemv", "peel", "vector body", "tail", "inlined exp", "divss"}},
		{workload.Op{Kind: workload.OpConv, Act: workload.ActSigmoid, InC: 3, InH: 8, InW: 8, OutC: 4, K: 3},
			[]string{"conv setup", "patch dot", "conv y ctl", "inlined exp"}},
		{workload.Op{Kind: workload.OpPool, InC: 4, InH: 8, InW: 8, K: 2},
			[]string{"window max", "pool x ctl"}},
		{workload.Op{Kind: workload.OpSample, Out: 64},
			[]string{"xorshift", "threshold"}},
		{workload.Op{Kind: workload.OpDistance, In: 16, Out: 8},
			[]string{"squared distance", "distance reduce"}},
		{workload.Op{Kind: workload.OpArgExtreme, In: 8},
			[]string{"argmin body"}},
		{workload.Op{Kind: workload.OpOuterUpdate, In: 16, Out: 8},
			[]string{"rank-1 row update", "outer row scale"}},
		{workload.Op{Kind: workload.OpFCLateral, Act: workload.ActSigmoid, In: 32, Out: 32},
			[]string{"combine lateral term"}},
		{workload.Op{Kind: workload.OpBackFC, Act: workload.ActNone, In: 16, Out: 16},
			[]string{"gemv"}},
		{workload.Op{Kind: workload.OpElemwise, Out: 64},
			[]string{"elementwise pass"}},
	}
	for _, c := range cases {
		text := opListing(a, c.op)
		for _, want := range c.want {
			if !strings.Contains(text, want) {
				t.Errorf("%v: x86 listing missing %q", c.op.Kind, want)
			}
		}
	}
}

func TestMIPSHasNoVectorInstructions(t *testing.T) {
	b, _ := workload.ByName("MLP")
	text := strings.Join(MIPS().Listing(&b), "\n")
	for _, forbidden := range []string{"vmovups", "vfmadd", "ymm"} {
		if strings.Contains(text, forbidden) {
			t.Errorf("MIPS listing contains SIMD artifact %q", forbidden)
		}
	}
	for _, want := range []string{"lw/mul", "addiu", "jr ra"} {
		if !strings.Contains(text, want) {
			t.Errorf("MIPS listing missing %q", want)
		}
	}
}

func TestGPUKernelPerOp(t *testing.T) {
	b, _ := workload.ByName("Autoencoder")
	text := strings.Join(GPU().Listing(&b), "\n")
	// One .visible .entry per op.
	if got := strings.Count(text, ".visible .entry"); got != len(b.Ops) {
		t.Errorf("%d kernels for %d ops", got, len(b.Ops))
	}
	for _, want := range []string{".param .u64", ".reg .pred", "mad.lo.u32",
		"cvta.to.global", "st.global.f32"} {
		if !strings.Contains(text, want) {
			t.Errorf("GPU listing missing %q", want)
		}
	}
}

func TestGPUHopfieldHoldState(t *testing.T) {
	// The sign activation carries hold-previous-state logic.
	text := opListing(GPU(), workload.Op{Kind: workload.OpFC, Act: workload.ActSign, In: 100, Out: 100})
	if !strings.Contains(text, "selp.f32") {
		t.Error("GPU sign activation missing select chain")
	}
}

func TestListingLabelsUnique(t *testing.T) {
	// Labels must be unique within a listing or the modelled assembly
	// would not assemble.
	for _, a := range []Arch{X86(), MIPS(), GPU()} {
		b, _ := workload.ByName("CNN")
		seen := map[string]bool{}
		for _, line := range a.Listing(&b) {
			if strings.HasSuffix(line, ":") && strings.HasPrefix(line, ".") {
				if seen[line] {
					t.Errorf("%s: duplicate label %q", a.Name, line)
				}
				seen[line] = true
			}
		}
	}
}

func TestCPUFasterOnBiggerMachineAssumptions(t *testing.T) {
	// Sanity of the roofline: doubling effective FLOPS cannot slow any
	// benchmark down.
	base := CPUPerf()
	fast := base
	fast.EffFLOPS *= 2
	for _, b := range workload.Benchmarks() {
		b := b
		if fast.Seconds(&b) > base.Seconds(&b) {
			t.Errorf("%s: faster machine is slower", b.Name)
		}
	}
}
