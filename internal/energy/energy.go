// Package energy models the area and power of the Cambricon-ACC prototype
// and the activity-based energy integration behind the paper's Fig. 13 and
// Table IV.
//
// We cannot run the Synopsys synthesis/power flow, so the published Table
// IV layout numbers act as the model's calibration points: the chip's three
// regions (core & vector part, matrix part, channel part) have the
// published peak powers, and a run's energy integrates each region's power
// scaled by its measured activity (an idle fraction covers clock tree and
// leakage, which Table IV shows dominate — the clock network alone draws
// 43.89% of total power).
package energy

import (
	"cambricon/internal/baseline/dadiannao"
	"cambricon/internal/sim"
)

// Component is one Table IV layout row.
type Component struct {
	Name    string
	AreaUm2 float64
	PowerMW float64
}

// Layout returns the Table IV rows of the Cambricon-ACC implementation
// (TSMC 65 nm, 1 GHz): first the region partition (core & vector, matrix,
// channel), then the cell-type partition (combinational, memory, registers,
// clock network, filler).
func Layout() []Component {
	return []Component{
		{"Whole Chip", 56241000, 1695.60},
		{"Core & Vector", 5062500, 139.04},
		{"Matrix", 35259840, 1004.81},
		{"Channel", 15918660, 551.75},
		{"Combinational", 18081482, 476.97},
		{"Memory", 8461445, 174.14},
		{"Registers", 5612851, 300.29},
		{"Clock network", 877360, 744.20},
		{"Filler Cell", 23207862, 0},
	}
}

// Published headline numbers (Section V-B5).
const (
	// TotalAreaUm2 is the Cambricon-ACC die area (56.24 mm^2).
	TotalAreaUm2 = 56241000.0
	// PeakPowerMW is the 100%-toggle-rate power (1.695 W).
	PeakPowerMW = 1695.60
	// DaDianNaoAreaUm2 is the re-implemented baseline's area
	// (55.34 mm^2); Cambricon-ACC is about 1.6% larger.
	DaDianNaoAreaUm2 = 55340000.0
)

// Region peak powers (mW), the Table IV region partition.
const (
	coreVectorPeakMW = 139.04
	matrixPeakMW     = 1004.81
	channelPeakMW    = 551.75
)

// IdleFraction is the share of each region's peak power drawn regardless of
// activity (clock tree + leakage). Table IV's clock network alone is 43.89%
// of total power, so the floor is high.
const IdleFraction = 0.45

// regionPower scales a region's peak power by utilization over the idle
// floor.
func regionPower(peakMW, util float64) float64 {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	return peakMW * (IdleFraction + (1-IdleFraction)*util)
}

// CambriconPowerMW returns the average power of a Cambricon-ACC run from
// its simulator statistics.
func CambriconPowerMW(st *sim.Stats) float64 {
	if st.Cycles == 0 {
		return IdleFraction * PeakPowerMW
	}
	cycles := float64(st.Cycles)
	uMatrix := float64(st.MatrixBusyCycles) / cycles
	// The core & vector region covers the instruction pipeline, scalar
	// unit and vector unit: its activity follows both the vector unit
	// and the instruction stream (2-wide issue).
	uCoreVec := float64(st.VectorBusyCycles)/cycles +
		float64(st.Instructions)/(2*cycles)
	// The channel part toggles with data movement between the blocks:
	// approximate its utilization by the busier of the two compute
	// regions (the h-tree moves operands whenever the matrix part runs).
	uChannel := uMatrix
	if uCoreVec > uChannel {
		uChannel = uCoreVec
	}
	return regionPower(coreVectorPeakMW, uCoreVec) +
		regionPower(matrixPeakMW, uMatrix) +
		regionPower(channelPeakMW, uChannel)
}

// CambriconEnergyJoules integrates a run's energy at the given clock.
func CambriconEnergyJoules(st *sim.Stats, clockHz float64) float64 {
	return CambriconPowerMW(st) / 1e3 * st.Seconds(clockHz)
}

// DaDianNao's power model: the same regional structure minus the costs the
// VLIW design avoids — the instruction pipeline, issue/memory queues and
// the vector transcendental (CORDIC) operators — plus a low-precision
// lookup table. The paper measures the net effect as DaDianNao consuming
// 0.916x Cambricon-ACC's energy on the shared benchmarks (Section V-B4).
const (
	// ddnCoreSavingsMW: removed decode/issue/queue logic and CORDIC
	// operators, net of the added lookup table.
	ddnCoreSavingsMW = 55.0
)

// DaDianNaoPowerMW returns the baseline's average power for a run.
func DaDianNaoPowerMW(act *dadiannao.Activity) float64 {
	if act.Cycles == 0 {
		return IdleFraction * (PeakPowerMW - ddnCoreSavingsMW)
	}
	cycles := float64(act.Cycles)
	uMatrix := float64(act.MACOps) / 1056 / cycles
	uCoreVec := float64(act.VectorElems+act.LookupElems) / 32 / cycles
	uChannel := uMatrix
	if uCoreVec > uChannel {
		uChannel = uCoreVec
	}
	return regionPower(coreVectorPeakMW-ddnCoreSavingsMW, uCoreVec) +
		regionPower(matrixPeakMW, uMatrix) +
		regionPower(channelPeakMW, uChannel)
}

// DaDianNaoEnergyJoules integrates the baseline's energy.
func DaDianNaoEnergyJoules(act *dadiannao.Activity, clockHz float64) float64 {
	return DaDianNaoPowerMW(act) / 1e3 * float64(act.Cycles) / clockHz
}
