package energy

import (
	"math"
	"testing"

	"cambricon/internal/baseline/dadiannao"
	"cambricon/internal/sim"
)

func TestLayoutMatchesPublishedTableIV(t *testing.T) {
	rows := Layout()
	byName := map[string]Component{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	chip := byName["Whole Chip"]
	if chip.AreaUm2 != 56241000 || chip.PowerMW != 1695.60 {
		t.Errorf("whole chip row wrong: %+v", chip)
	}
	// The region partition must sum to the chip totals (Table IV).
	areaSum := byName["Core & Vector"].AreaUm2 + byName["Matrix"].AreaUm2 +
		byName["Channel"].AreaUm2
	powerSum := byName["Core & Vector"].PowerMW + byName["Matrix"].PowerMW +
		byName["Channel"].PowerMW
	if math.Abs(powerSum-chip.PowerMW) > 0.01 {
		t.Errorf("region powers sum to %.2f, chip is %.2f", powerSum, chip.PowerMW)
	}
	// The paper's region areas sum to 56,241,000 um^2 exactly.
	if math.Abs(areaSum-chip.AreaUm2) > 0.001*chip.AreaUm2 {
		t.Errorf("region areas sum to %.0f, chip is %.0f", areaSum, chip.AreaUm2)
	}
	// Published percentages: matrix 62.69% area, clock 43.89% power.
	if p := byName["Matrix"].AreaUm2 / chip.AreaUm2; math.Abs(p-0.6269) > 0.001 {
		t.Errorf("matrix area share %.4f, want 0.6269", p)
	}
	if p := byName["Clock network"].PowerMW / chip.PowerMW; math.Abs(p-0.4389) > 0.001 {
		t.Errorf("clock power share %.4f, want 0.4389", p)
	}
}

func TestAreaOverheadVersusDaDianNao(t *testing.T) {
	// Section V-B5: Cambricon-ACC is about 1.6% larger than the
	// re-implemented DaDianNao.
	overhead := TotalAreaUm2/DaDianNaoAreaUm2 - 1
	if math.Abs(overhead-0.016) > 0.002 {
		t.Errorf("area overhead %.4f, want ~0.016", overhead)
	}
}

func TestPowerBoundedByPeak(t *testing.T) {
	busy := &sim.Stats{Cycles: 1000, MatrixBusyCycles: 1000,
		VectorBusyCycles: 1000, Instructions: 2000}
	p := CambriconPowerMW(busy)
	if p > PeakPowerMW+0.01 {
		t.Errorf("power %v exceeds peak %v", p, PeakPowerMW)
	}
	if p < 0.9*PeakPowerMW {
		t.Errorf("fully busy machine should be near peak, got %v", p)
	}
	idle := &sim.Stats{Cycles: 1000}
	if pi := CambriconPowerMW(idle); pi >= p || pi < IdleFraction*PeakPowerMW-1 {
		t.Errorf("idle power %v out of range", pi)
	}
}

func TestEnergyScalesWithTime(t *testing.T) {
	st := &sim.Stats{Cycles: 1_000_000, MatrixBusyCycles: 500_000}
	e1 := CambriconEnergyJoules(st, 1e9)
	st2 := *st
	st2.Cycles *= 2
	st2.MatrixBusyCycles *= 2
	e2 := CambriconEnergyJoules(&st2, 1e9)
	if math.Abs(e2-2*e1) > 1e-12 {
		t.Errorf("double-length run should double energy: %v vs %v", e1, e2)
	}
}

func TestDaDianNaoDrawsLessPowerAtEqualActivity(t *testing.T) {
	// Same utilization: the VLIW machine's simpler control must draw
	// slightly less power (the source of the 0.916x energy ratio).
	st := &sim.Stats{Cycles: 1000, MatrixBusyCycles: 800, VectorBusyCycles: 200,
		Instructions: 500}
	act := &dadiannao.Activity{Cycles: 1000, MACOps: 800 * 1056,
		VectorElems: 200 * 32}
	pc := CambriconPowerMW(st)
	pd := DaDianNaoPowerMW(act)
	if pd >= pc {
		t.Errorf("DaDianNao power %v should be below Cambricon %v", pd, pc)
	}
	if pd < 0.8*pc {
		t.Errorf("DaDianNao power %v implausibly low vs %v", pd, pc)
	}
}

func TestDaDianNaoEnergyIntegration(t *testing.T) {
	act := &dadiannao.Activity{Cycles: 2_000_000, MACOps: 1056 * 1_000_000}
	e := DaDianNaoEnergyJoules(act, 1e9)
	want := DaDianNaoPowerMW(act) / 1e3 * 2e-3
	if math.Abs(e-want) > 1e-15 {
		t.Errorf("energy %v, want %v", e, want)
	}
}

func TestZeroCycleRunsAreIdle(t *testing.T) {
	if p := CambriconPowerMW(&sim.Stats{}); p != IdleFraction*PeakPowerMW {
		t.Errorf("zero-cycle power %v", p)
	}
	if p := DaDianNaoPowerMW(&dadiannao.Activity{}); p <= 0 {
		t.Errorf("zero-cycle DaDianNao power %v", p)
	}
}

func TestUtilizationClamps(t *testing.T) {
	// Overcounted activity must not push power past peak.
	st := &sim.Stats{Cycles: 10, MatrixBusyCycles: 1000, VectorBusyCycles: 1000,
		Instructions: 1000}
	if p := CambriconPowerMW(st); p > PeakPowerMW+0.01 {
		t.Errorf("power %v exceeds peak", p)
	}
}
