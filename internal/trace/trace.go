// Package trace is the observability layer of the Cambricon-ACC
// simulator: a low-overhead event stream threaded through the seven-stage
// pipeline of internal/sim, with sinks that turn it into a Chrome Trace
// Event / Perfetto timeline (Chrome) or a streaming stall-attribution
// profile (Profile).
//
// The contract with the simulator's hot path is strict: a Machine with a
// nil Tracer makes no trace calls at all and allocates nothing, and a
// Machine with any Tracer attached must produce bit-identical simulated
// cycle counts — tracing observes the timing model, it never perturbs it.
// Sinks receive events through pointers to buffers the simulator reuses,
// so they must copy anything they keep beyond the call.
package trace

import (
	"encoding/json"
	"fmt"

	"cambricon/internal/core"
)

// Tracer receives the event stream of one simulation run. Implementations
// must not retain *InstEvent pointers across calls: the simulator reuses
// one event buffer for the whole run.
type Tracer interface {
	// BeginRun opens a run and carries the machine parameters the sinks
	// need to scale their output (clock, lane counts, bank counts).
	BeginRun(meta RunMeta)
	// Instruction reports one committed dynamic instruction with its
	// stage timestamps and the stall attribution of its commit window.
	Instruction(ev *InstEvent)
	// BankConflict reports crossbar serialization on a scratchpad: an
	// access set kept the named bank busy extraCycles beyond the ideal
	// parallel streaming cost. atCycle is the approximate simulated time
	// (the last commit when the conflict was modelled).
	BankConflict(spad string, bank int, extraCycles, atCycle int64)
	// EndRun closes a run with the total simulated cycle count.
	EndRun(totalCycles int64)
}

// RunMeta describes the machine a run executes on.
type RunMeta struct {
	ClockHz      float64 `json:"clock_hz"`
	VectorLanes  int     `json:"vector_lanes"`
	MatrixBlocks int     `json:"matrix_blocks"`
	MACsPerBlock int     `json:"macs_per_block"`
	SpadBanks    int     `json:"spad_banks"`
}

// FU identifies the execution resource of an instruction. The values
// mirror internal/sim's routing (Fig. 8).
type FU uint8

const (
	FUScalar    FU = iota // scalar functional unit
	FUScalarMem           // scalar load/store via AGU + L1
	FUVector              // vector functional unit (and its DMAs)
	FUMatrix              // matrix functional unit (and its DMAs)

	NumFUs = 4
)

func (f FU) String() string {
	switch f {
	case FUScalar:
		return "scalar"
	case FUScalarMem:
		return "l1"
	case FUVector:
		return "vector"
	case FUMatrix:
		return "matrix"
	}
	return fmt.Sprintf("fu(%d)", uint8(f))
}

// Cause labels one slice of a CPI stack: what the committing
// instruction's critical path was doing (or waiting on) during a cycle.
type Cause uint8

const (
	// CauseCompute is useful work: register read, address generation,
	// functional-unit execution and write-back.
	CauseCompute Cause = iota
	// CauseMemDep is time in the memory queue behind an earlier
	// overlapping access (the paper's footnote-2 dependence rule).
	CauseMemDep
	// CauseFUBusy is a ready instruction waiting for an occupied
	// functional unit (the Section V-B3 pipeline bubbles).
	CauseFUBusy
	// CauseRegDep is an issue-stage wait for a source register.
	CauseRegDep
	// CauseROBFull is an issue-stage wait for reorder-buffer space.
	CauseROBFull
	// CauseMemQueueFull is an issue-stage wait for memory-queue space.
	CauseMemQueueFull
	// CauseIQFull is a fetch blocked on issue-queue space.
	CauseIQFull
	// CauseBranch is the fetch bubble after a taken branch redirect.
	CauseBranch
	// CauseCommit is an in-order or bandwidth-limited commit wait.
	CauseCommit
	// CauseFrontend is remaining fetch/decode/issue bandwidth and
	// in-order issue serialization.
	CauseFrontend

	// NumCauses sizes per-cause accumulators.
	NumCauses = 10
)

var causeNames = [NumCauses]string{
	"compute", "mem-dep", "fu-busy", "reg-dep", "rob-full",
	"memq-full", "iq-full", "branch", "commit-bw", "frontend",
}

func (c Cause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// Causes lists every cause in declaration order.
func Causes() []Cause {
	out := make([]Cause, NumCauses)
	for i := range out {
		out[i] = Cause(i)
	}
	return out
}

// Breakdown is a CPI stack: cycles per cause. Indexed by Cause, it
// marshals as a JSON object keyed by cause name.
type Breakdown [NumCauses]int64

// Sum returns the total attributed cycles.
func (b *Breakdown) Sum() int64 {
	var s int64
	for _, v := range b {
		s += v
	}
	return s
}

// MarshalJSON renders the stack as {"compute": N, "mem-dep": N, ...}.
func (b Breakdown) MarshalJSON() ([]byte, error) {
	buf := make([]byte, 0, 16*NumCauses)
	buf = append(buf, '{')
	for i, v := range b {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, '"')
		buf = append(buf, causeNames[i]...)
		buf = append(buf, '"', ':')
		buf = appendInt(buf, v)
	}
	return append(buf, '}'), nil
}

// UnmarshalJSON parses the object form produced by MarshalJSON; unknown
// keys are rejected so schema drift is caught early.
func (b *Breakdown) UnmarshalJSON(data []byte) error {
	var m map[string]int64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	*b = Breakdown{}
	for k, v := range m {
		found := false
		for i, name := range causeNames {
			if k == name {
				b[i] = v
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("trace: unknown stall cause %q", k)
		}
	}
	return nil
}

func appendInt(buf []byte, v int64) []byte {
	if v < 0 {
		buf = append(buf, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(buf, tmp[i:]...)
}

// InstEvent is the trace record of one committed dynamic instruction.
// All times are simulated cycles.
type InstEvent struct {
	// Index is the dynamic instruction index (0-based) and PC the static
	// program counter.
	Index int64
	PC    int
	Op    core.Opcode
	FU    FU

	// Stage timestamps: the cycle each pipeline milestone was reached.
	// Fetch <= Decode <= Issue <= ExecStart <= ExecDone < Commit.
	Fetch, Decode, Issue        int64
	ExecStart, ExecDone, Commit int64

	// ExecCycles is the functional-unit occupancy (ExecDone - ExecStart).
	ExecCycles int64

	BranchTaken bool

	// IsDMA marks scratchpad<->main-memory transfers (VLOAD, VSTORE,
	// MLOAD, MSTORE); DMABytes is the transfer size.
	IsDMA    bool
	DMABytes int

	// Gap is the width of this instruction's commit window — the cycles
	// between the previous commit and this one — and Attr distributes
	// every one of those cycles over stall causes. Summing Gap (or Attr)
	// over all instructions of a run yields exactly the total cycle
	// count, which is what makes profile tables add up.
	Gap  int64
	Attr Breakdown

	// Latency view: how long this instruction itself waited at each
	// pipeline obstacle, regardless of what else was in flight. Unlike
	// Attr these overlap across instructions (ten instructions queued
	// behind one busy unit each record the full wait), so they explain
	// per-instruction latency, not wall-clock cycles.
	RegWait, ROBWait, MemQueueWait, MemDepWait, FUBusyWait int64
}

// FaultObserver is an optional Tracer extension for fault-injection
// runs: a sink that also implements it receives one event per injected
// fault (see internal/fault). Keeping it a separate interface means
// existing Tracer implementations stay valid; the simulator discovers
// support with a type assertion when the tracer is attached.
type FaultObserver interface {
	// Fault reports one injected fault: its model kind (e.g. "gpr-bit"),
	// the program counter of the instruction it hit, and the approximate
	// simulated cycle (the last commit when the fault was applied).
	Fault(kind string, pc int, atCycle int64)
}

// Tee fans one event stream out to several sinks. Nil entries are
// dropped; with zero live sinks it returns nil so the simulator keeps
// its untraced fast path.
func Tee(ts ...Tracer) Tracer {
	live := make([]Tracer, 0, len(ts))
	for _, t := range ts {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return tee(live)
}

type tee []Tracer

func (t tee) BeginRun(meta RunMeta) {
	for _, s := range t {
		s.BeginRun(meta)
	}
}

func (t tee) Instruction(ev *InstEvent) {
	for _, s := range t {
		s.Instruction(ev)
	}
}

func (t tee) BankConflict(spad string, bank int, extraCycles, atCycle int64) {
	for _, s := range t {
		s.BankConflict(spad, bank, extraCycles, atCycle)
	}
}

func (t tee) EndRun(totalCycles int64) {
	for _, s := range t {
		s.EndRun(totalCycles)
	}
}

// Fault forwards to the members that observe faults. A tee always
// satisfies FaultObserver; forwarding to zero interested members is a
// no-op, so the assertion in the simulator stays correct either way.
func (t tee) Fault(kind string, pc int, atCycle int64) {
	for _, s := range t {
		if fo, ok := s.(FaultObserver); ok {
			fo.Fault(kind, pc, atCycle)
		}
	}
}
