package trace_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cambricon/internal/asm"
	"cambricon/internal/sim"
	"cambricon/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden trace files")

// goldenProgram is a small hand-written program exercising every trace
// track: a scalar countdown loop (taken branches), then the paper's
// Fig. 7 MLP layer (vector/matrix DMAs, matrix-vector multiply and the
// sigmoid vector chain). It is fully deterministic, so its trace is too.
const goldenProgram = `
.data 100: 0.5, -1, 0.25
.data 300: 0.5, 1, -0.5, -1, 0.25, 0.75, 2, -1, 0.5
.data 400: 0.1, -0.2, 0.3
	SMOVE  $9, #2
spin:	SADD   $9, $9, #-1
	CB     #spin, $9
	SMOVE  $0, #3
	SMOVE  $1, #3
	SMOVE  $2, #9
	SMOVE  $3, #0
	SMOVE  $4, #0
	SMOVE  $5, #64
	SMOVE  $6, #512
	SMOVE  $7, #128
	SMOVE  $8, #192
	VLOAD  $3, $0, #100
	VLOAD  $5, $1, #400
	MLOAD  $4, $2, #300
	MMV    $7, $1, $4, $3, $0
	VAV    $7, $1, $7, $5
	VEXP   $8, $1, $7
	VAS    $7, $1, $8, #256
	VDV    $6, $1, $8, $7
	VSTORE $6, $1, #200
`

// runGolden executes goldenProgram with a Chrome sink attached and
// returns the emitted document plus the run statistics.
func runGolden(t *testing.T) ([]byte, sim.Stats) {
	t.Helper()
	p, err := asm.Assemble(goldenProgram)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Data {
		if err := m.WriteMainNums(c.Addr, c.Values); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	c := trace.NewChrome(&buf)
	m.SetTracer(c)
	m.LoadProgram(p.Instructions)
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), stats
}

func TestChromeGolden(t *testing.T) {
	got, _ := runGolden(t)
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/trace -run TestChromeGolden -update` to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace differs from golden file %s (re-run with -update if the change is intended)\ngot %d bytes, want %d",
			golden, len(got), len(want))
	}
}

// chromeDoc is the subset of the Chrome Trace Event format the tests
// inspect.
type chromeDoc struct {
	DisplayTimeUnit string           `json:"displayTimeUnit"`
	OtherData       map[string]any   `json:"otherData"`
	TraceEvents     []map[string]any `json:"traceEvents"`
}

func TestChromeValidJSON(t *testing.T) {
	raw, stats := runGolden(t)
	var doc chromeDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	names := map[string]bool{}
	var lastCounter map[string]any
	spans := 0
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph == "" {
			t.Fatalf("event without ph: %v", ev)
		}
		if _, ok := ev["pid"]; !ok {
			t.Fatalf("event without pid: %v", ev)
		}
		switch ph {
		case "X":
			spans++
			if dur, ok := ev["dur"].(float64); !ok || dur < 0 {
				t.Errorf("span with bad dur: %v", ev)
			}
		case "M":
			if args, ok := ev["args"].(map[string]any); ok {
				if n, ok := args["name"].(string); ok {
					names[n] = true
				}
			}
		case "C":
			lastCounter, _ = ev["args"].(map[string]any)
		}
	}
	if spans == 0 {
		t.Error("no duration spans emitted")
	}
	for _, track := range []string{"frontend (fetch->issue)", "vector FU", "matrix FU", "vector DMA", "matrix DMA", "commit"} {
		if !names[track] {
			t.Errorf("track %q not declared", track)
		}
	}
	// The cumulative stall counter must end exactly at the cycle count:
	// the CPI stack covers the whole run.
	if lastCounter == nil {
		t.Fatal("no stall counter events")
	}
	var sum int64
	for _, v := range lastCounter {
		sum += int64(v.(float64))
	}
	if sum != stats.Cycles {
		t.Errorf("final cumulative stalls = %d, want Cycles = %d", sum, stats.Cycles)
	}
	// The run-end marker carries the same total.
	last := doc.TraceEvents[len(doc.TraceEvents)-1]
	if last["name"] != "run end" {
		t.Errorf("last event = %v, want run end", last)
	}
}

func TestChromeEmptyClose(t *testing.T) {
	var buf bytes.Buffer
	c := trace.NewChrome(&buf)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(doc.TraceEvents) != 0 {
		t.Errorf("empty trace has %d events", len(doc.TraceEvents))
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) > w.n {
		p = p[:w.n]
	}
	w.n -= len(p)
	return len(p), nil
}

func TestChromeWriteErrorSurfaces(t *testing.T) {
	c := trace.NewChrome(&failWriter{n: 16})
	c.BeginRun(trace.RunMeta{})
	for i := 0; i < 10000; i++ {
		ev := trace.InstEvent{Index: int64(i), Gap: 1}
		c.Instruction(&ev)
	}
	c.EndRun(10000)
	if err := c.Close(); err == nil {
		t.Error("Close did not report the write error")
	}
}
