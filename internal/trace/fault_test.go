package trace_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cambricon/internal/trace"
)

// TestProfileFaultAccumulation checks the profiler's FaultObserver
// extension: repeated kinds accumulate and the report sorts rows by
// kind for deterministic output.
func TestProfileFaultAccumulation(t *testing.T) {
	p := trace.NewProfile()
	p.BeginRun(trace.RunMeta{})
	p.Fault("spad-bit", 3, 10)
	p.Fault("gpr-bit", 4, 20)
	p.Fault("spad-bit", 5, 30)
	p.EndRun(100)
	r := p.Report(5)
	if len(r.Faults) != 2 {
		t.Fatalf("report has %d fault rows, want 2", len(r.Faults))
	}
	if r.Faults[0].Kind != "gpr-bit" || r.Faults[0].Count != 1 {
		t.Errorf("row 0 = %+v, want gpr-bit x1", r.Faults[0])
	}
	if r.Faults[1].Kind != "spad-bit" || r.Faults[1].Count != 2 {
		t.Errorf("row 1 = %+v, want spad-bit x2", r.Faults[1])
	}
	if !strings.Contains(r.Render(), "injected faults") {
		t.Error("rendered report does not mention injected faults")
	}
}

// TestProfileNoFaultsOmitted pins the fault-free report shape: no
// faults means no Faults field in the JSON at all, so existing report
// consumers see byte-identical output.
func TestProfileNoFaultsOmitted(t *testing.T) {
	p := trace.NewProfile()
	p.BeginRun(trace.RunMeta{})
	p.EndRun(10)
	raw, err := json.Marshal(p.Report(5))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("faults")) {
		t.Errorf("fault-free report mentions faults: %s", raw)
	}
	if strings.Contains(p.Report(5).Render(), "injected faults") {
		t.Error("fault-free render mentions injected faults")
	}
}

// TestChromeFaultTrack checks the Chrome sink's lazily-declared fault
// track: fault-free traces carry no trace of it, faulted traces declare
// the track metadata exactly once before the instant events.
func TestChromeFaultTrack(t *testing.T) {
	var clean bytes.Buffer
	c := trace.NewChrome(&clean)
	c.BeginRun(trace.RunMeta{})
	c.EndRun(1)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(clean.Bytes(), []byte("injected faults")) {
		t.Error("fault-free trace declares the fault track")
	}

	var dirty bytes.Buffer
	c = trace.NewChrome(&dirty)
	c.BeginRun(trace.RunMeta{})
	c.Fault("dma-bit", 7, 42)
	c.Fault("dma-bit", 7, 43)
	c.EndRun(50)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(dirty.Bytes(), []byte("injected faults")); got != 1 {
		t.Errorf("fault track declared %d times, want 1", got)
	}
	var doc chromeDoc
	if err := json.Unmarshal(dirty.Bytes(), &doc); err != nil {
		t.Fatalf("faulted trace is not valid JSON: %v", err)
	}
	events := 0
	for _, ev := range doc.TraceEvents {
		if name, _ := ev["name"].(string); name == "fault: dma-bit" {
			events++
		}
	}
	if events != 2 {
		t.Errorf("trace carries %d fault events, want 2", events)
	}
}

// faultSink records forwarded fault events (a Tracer that also
// observes faults); plainSink does not observe faults.
type faultSink struct {
	nullSink
	kinds []string
}

func (s *faultSink) Fault(kind string, pc int, atCycle int64) { s.kinds = append(s.kinds, kind) }

type nullSink struct{}

func (nullSink) BeginRun(trace.RunMeta)                 {}
func (nullSink) Instruction(*trace.InstEvent)           {}
func (nullSink) BankConflict(string, int, int64, int64) {}
func (nullSink) EndRun(int64)                           {}

// TestTeeForwardsFaults checks that a tee satisfies FaultObserver and
// forwards only to members that observe faults.
func TestTeeForwardsFaults(t *testing.T) {
	fs := &faultSink{}
	tr := trace.Tee(nullSink{}, fs)
	fo, ok := tr.(trace.FaultObserver)
	if !ok {
		t.Fatal("tee does not satisfy FaultObserver")
	}
	fo.Fault("stuck-lane", 1, 2)
	fo.Fault("gpr-bit", 3, 4)
	if len(fs.kinds) != 2 || fs.kinds[0] != "stuck-lane" || fs.kinds[1] != "gpr-bit" {
		t.Errorf("forwarded kinds = %v", fs.kinds)
	}
}
