package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"cambricon/internal/core"
)

// feedProfile drives a Profile with a small synthetic run: two scalar
// adds, one vector DMA, one occupying vector op, and a bank conflict.
func feedProfile() *Profile {
	p := NewProfile()
	p.Label = "synthetic"
	p.BeginRun(RunMeta{ClockHz: 1e9, VectorLanes: 32, SpadBanks: 4})
	events := []InstEvent{
		{Index: 0, Op: core.SADD, FU: FUScalar, ExecCycles: 1, Gap: 5,
			Attr: Breakdown{CauseCompute: 3, CauseFrontend: 2}, RegWait: 1},
		{Index: 1, Op: core.SADD, FU: FUScalar, ExecCycles: 1, Gap: 1,
			Attr: Breakdown{CauseCompute: 1}},
		{Index: 2, Op: core.VLOAD, FU: FUVector, IsDMA: true, DMABytes: 128,
			ExecCycles: 10, Gap: 12, Attr: Breakdown{CauseCompute: 10, CauseMemDep: 2},
			MemDepWait: 2},
		{Index: 3, Op: core.VAV, FU: FUVector, ExecCycles: 4, Gap: 6,
			Attr: Breakdown{CauseCompute: 4, CauseFUBusy: 2}, FUBusyWait: 2,
			BranchTaken: true},
	}
	for i := range events {
		p.Instruction(&events[i])
	}
	p.BankConflict("vector-spad", 2, 3, 11)
	p.BankConflict("vector-spad", 2, 1, 15)
	p.EndRun(24)
	return p
}

func TestProfileRollup(t *testing.T) {
	p := feedProfile()
	if p.TotalCycles() != 24 || p.Instructions() != 4 {
		t.Fatalf("total=%d insts=%d", p.TotalCycles(), p.Instructions())
	}
	causes := p.Causes()
	if causes.Sum() != 24 {
		t.Errorf("cause sum = %d, want total 24", causes.Sum())
	}
	rep := p.Report(0)
	if rep.Label != "synthetic" || rep.Cycles != 24 || rep.Instructions != 4 {
		t.Errorf("report header = %+v", rep)
	}
	if rep.CPI != 6 {
		t.Errorf("CPI = %v, want 6", rep.CPI)
	}
	if rep.Branches != 1 || rep.DMABytes != 128 || rep.DMACycles != 10 {
		t.Errorf("branches=%d dmaBytes=%d dmaCycles=%d", rep.Branches, rep.DMABytes, rep.DMACycles)
	}
	// Stall rows cover every cycle and arrive sorted descending.
	var sum int64
	for i, s := range rep.Stalls {
		sum += s.Cycles
		if i > 0 && s.Cycles > rep.Stalls[i-1].Cycles {
			t.Errorf("stall rows not sorted at %d", i)
		}
	}
	if sum != 24 {
		t.Errorf("stall rows sum to %d, want 24", sum)
	}
	if rep.Stalls[0].Cause != "compute" || rep.Stalls[0].Cycles != 18 {
		t.Errorf("top stall = %+v", rep.Stalls[0])
	}
	// Latency view.
	if rep.Latency.MemDep != 2 || rep.Latency.FUBusy != 2 || rep.Latency.RegDep != 1 {
		t.Errorf("latency = %+v", rep.Latency)
	}
	// Opcode histogram: SADD pooled (2 ops, 6 cycles), sorted by cycles.
	ops := map[string]OpcodeProfile{}
	for _, o := range rep.Opcodes {
		ops[o.Op] = o
	}
	if o := ops["SADD"]; o.Count != 2 || o.Cycles != 6 || o.StallCycles != 2 {
		t.Errorf("SADD row = %+v", o)
	}
	if o := ops["VLOAD"]; o.Count != 1 || o.Cycles != 12 || o.StallCycles != 2 {
		t.Errorf("VLOAD row = %+v", o)
	}
	// FU utilization: vector busy 14 of 24; scalar pipelined 2 ops.
	fus := map[string]FUUtil{}
	for _, f := range rep.FUs {
		fus[f.FU] = f
	}
	if f := fus["vector"]; f.Ops != 2 || f.BusyCycles != 14 {
		t.Errorf("vector FU = %+v", f)
	}
	if f := fus["scalar"]; f.Ops != 2 || f.BusyCycles != 2 {
		t.Errorf("scalar FU = %+v", f)
	}
	// Bank-conflict heatmap.
	if len(rep.BankConflicts) != 1 {
		t.Fatalf("conflicts = %+v", rep.BankConflicts)
	}
	bc := rep.BankConflicts[0]
	if bc.Spad != "vector-spad" || bc.Total != 4 || bc.PerBank[2] != 4 {
		t.Errorf("heatmap = %+v", bc)
	}
}

func TestProfileReportTopN(t *testing.T) {
	p := feedProfile()
	rep := p.Report(1)
	if len(rep.Opcodes) != 1 {
		t.Errorf("topN=1 kept %d opcode rows", len(rep.Opcodes))
	}
	if rep.Opcodes[0].Op != "VLOAD" {
		t.Errorf("top opcode = %q, want the most expensive (VLOAD)", rep.Opcodes[0].Op)
	}
}

func TestProfileRender(t *testing.T) {
	out := feedProfile().Report(0).Render()
	for _, want := range []string{
		"profile: synthetic", "cycles=24", "stall attribution",
		"total", "100.0%", "vector-spad", "per-instruction wait totals",
		"dma: 128 bytes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestProfileReportJSON(t *testing.T) {
	rep := feedProfile().Report(0)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Cycles != rep.Cycles || got.Label != rep.Label || len(got.Stalls) != len(rep.Stalls) {
		t.Errorf("JSON round trip mismatch: %+v", got)
	}
}

func TestProfileUnknownOpcodePools(t *testing.T) {
	p := NewProfile()
	p.BeginRun(RunMeta{})
	ev := InstEvent{Op: core.Opcode(250), FU: FU(250), Gap: 3, Attr: Breakdown{CauseCompute: 3}}
	p.Instruction(&ev)
	p.EndRun(3)
	rep := p.Report(0)
	// Unknown opcodes pool at index 0, which is skipped by the histogram;
	// the stall attribution still covers the cycles.
	var sum int64
	for _, s := range rep.Stalls {
		sum += s.Cycles
	}
	if sum != 3 {
		t.Errorf("stall sum = %d, want 3", sum)
	}
}
