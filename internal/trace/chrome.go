package trace

import (
	"bufio"
	"fmt"
	"io"
)

// Chrome is a Tracer that streams the run as Chrome Trace Event JSON,
// the format ui.perfetto.dev and chrome://tracing open directly. One
// simulated cycle is rendered as one microsecond of trace time.
//
// The timeline is organized as one track per pipeline resource:
//
//	frontend     fetch->issue span of every instruction (stalled fetches
//	             and issue-stage waits show up as long spans)
//	scalar FU    execution spans of scalar ALU instructions
//	L1 port      scalar load/store execution spans
//	vector FU    vector functional-unit occupancy spans
//	matrix FU    matrix functional-unit occupancy spans
//	vector DMA   VLOAD/VSTORE transfer spans
//	matrix DMA   MLOAD/MSTORE transfer spans
//	commit       one instant per committed instruction
//	bank conflicts  instants where a scratchpad access serialized in the
//	                crossbar
//	stall cycles    cumulative per-cause counter track (the CPI stack
//	                over time; the slope shows what the machine was
//	                limited by at each point of the run)
//
// Events stream through a buffered writer as they arrive; Close finishes
// the JSON document and reports the first write error.
type Chrome struct {
	w      *bufio.Writer
	err    error
	events int // emitted events, for comma placement
	begun  bool
	cum    Breakdown // running totals behind the counter track

	// faultTrack latches whether the injected-faults track metadata has
	// been emitted (lazily, on the first fault event, so fault-free
	// traces are unchanged).
	faultTrack bool
}

// Track ids (Chrome "tid" values) in display order.
const (
	tidFrontend = 1 + iota
	tidScalar
	tidL1
	tidVector
	tidMatrix
	tidVecDMA
	tidMatDMA
	tidCommit
	tidConflict
	tidStalls
	tidFault
)

var trackNames = map[int]string{
	tidFrontend: "frontend (fetch->issue)",
	tidScalar:   "scalar FU",
	tidL1:       "L1 port",
	tidVector:   "vector FU",
	tidMatrix:   "matrix FU",
	tidVecDMA:   "vector DMA",
	tidMatDMA:   "matrix DMA",
	tidCommit:   "commit",
	tidConflict: "bank conflicts",
}

// NewChrome builds a writer emitting to w. Call Close after the run to
// finish the document.
func NewChrome(w io.Writer) *Chrome {
	return &Chrome{w: bufio.NewWriterSize(w, 64<<10)}
}

// printf appends one raw fragment, latching the first error.
func (c *Chrome) printf(format string, args ...any) {
	if c.err != nil {
		return
	}
	_, c.err = fmt.Fprintf(c.w, format, args...)
}

// event appends one trace event object (the leading comma is managed
// here; body must be a complete JSON object).
func (c *Chrome) event(format string, args ...any) {
	if c.err != nil {
		return
	}
	if c.events > 0 {
		c.printf(",\n")
	} else {
		c.printf("\n")
	}
	c.events++
	c.printf(format, args...)
}

// BeginRun writes the document preamble and track metadata. Only the
// first call opens the document; later runs append to the same timeline.
func (c *Chrome) BeginRun(meta RunMeta) {
	if c.begun {
		return
	}
	c.begun = true
	c.printf(`{"displayTimeUnit":"ms","otherData":{"tool":"cambricon camsim","cycle_unit":"1 trace us = 1 simulated cycle","clock_hz":%g,"vector_lanes":%d,"matrix_blocks":%d,"macs_per_block":%d,"spad_banks":%d},"traceEvents":[`,
		meta.ClockHz, meta.VectorLanes, meta.MatrixBlocks, meta.MACsPerBlock, meta.SpadBanks)
	c.event(`{"ph":"M","pid":0,"tid":0,"name":"process_name","args":{"name":"cambricon-acc"}}`)
	for tid := tidFrontend; tid <= tidConflict; tid++ {
		c.event(`{"ph":"M","pid":0,"tid":%d,"name":"thread_name","args":{"name":%q}}`, tid, trackNames[tid])
		c.event(`{"ph":"M","pid":0,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`, tid, tid)
	}
}

// fuTid maps an instruction to its execution track.
func fuTid(ev *InstEvent) int {
	switch {
	case ev.FU == FUVector && ev.IsDMA:
		return tidVecDMA
	case ev.FU == FUMatrix && ev.IsDMA:
		return tidMatDMA
	case ev.FU == FUVector:
		return tidVector
	case ev.FU == FUMatrix:
		return tidMatrix
	case ev.FU == FUScalarMem:
		return tidL1
	}
	return tidScalar
}

// Instruction emits the instruction's frontend span, execution span,
// commit instant, and advances the stall counter track.
func (c *Chrome) Instruction(ev *InstEvent) {
	op := ev.Op.String()
	// Frontend: fetch through issue.
	c.event(`{"ph":"X","pid":0,"tid":%d,"ts":%d,"dur":%d,"name":%q,"args":{"pc":%d,"idx":%d}}`,
		tidFrontend, ev.Fetch, ev.Issue-ev.Fetch, op, ev.PC, ev.Index)
	// Execution span on the owning FU or DMA engine track.
	if ev.IsDMA {
		c.event(`{"ph":"X","pid":0,"tid":%d,"ts":%d,"dur":%d,"name":%q,"args":{"pc":%d,"idx":%d,"bytes":%d}}`,
			fuTid(ev), ev.ExecStart, ev.ExecDone-ev.ExecStart, op, ev.PC, ev.Index, ev.DMABytes)
	} else {
		c.event(`{"ph":"X","pid":0,"tid":%d,"ts":%d,"dur":%d,"name":%q,"args":{"pc":%d,"idx":%d}}`,
			fuTid(ev), ev.ExecStart, ev.ExecDone-ev.ExecStart, op, ev.PC, ev.Index)
	}
	// Commit instant; taken branches are annotated.
	name := op
	if ev.BranchTaken {
		name = op + " taken"
	}
	c.event(`{"ph":"i","pid":0,"tid":%d,"ts":%d,"s":"t","name":%q,"args":{"pc":%d,"idx":%d}}`,
		tidCommit, ev.Commit, name, ev.PC, ev.Index)
	// Cumulative CPI-stack counters.
	for i := range ev.Attr {
		c.cum[i] += ev.Attr[i]
	}
	if c.err != nil {
		return
	}
	if c.events > 0 {
		c.printf(",\n")
	}
	c.events++
	c.printf(`{"ph":"C","pid":0,"tid":%d,"ts":%d,"name":"stall cycles (cumulative)","args":{`, tidStalls, ev.Commit)
	for i, v := range c.cum {
		if i > 0 {
			c.printf(",")
		}
		c.printf(`%q:%d`, Cause(i).String(), v)
	}
	c.printf("}}")
}

// Fault emits an instant on the fault-injection track. The track's
// metadata is emitted lazily on the first fault so fault-free traces
// stay byte-identical to what they were before fault support existed.
func (c *Chrome) Fault(kind string, pc int, atCycle int64) {
	if !c.faultTrack {
		c.faultTrack = true
		c.event(`{"ph":"M","pid":0,"tid":%d,"name":"thread_name","args":{"name":"injected faults"}}`, tidFault)
		c.event(`{"ph":"M","pid":0,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`, tidFault, tidFault)
	}
	c.event(`{"ph":"i","pid":0,"tid":%d,"ts":%d,"s":"t","name":%q,"args":{"pc":%d}}`,
		tidFault, atCycle, "fault: "+kind, pc)
}

// BankConflict emits an instant on the conflict track.
func (c *Chrome) BankConflict(spad string, bank int, extraCycles, atCycle int64) {
	c.event(`{"ph":"i","pid":0,"tid":%d,"ts":%d,"s":"t","name":"conflict","args":{"spad":%q,"bank":%d,"extra_cycles":%d}}`,
		tidConflict, atCycle, spad, bank, extraCycles)
}

// EndRun marks the end of the run on the commit track.
func (c *Chrome) EndRun(totalCycles int64) {
	c.event(`{"ph":"i","pid":0,"tid":%d,"ts":%d,"s":"g","name":"run end","args":{"total_cycles":%d}}`,
		tidCommit, totalCycles, totalCycles)
}

// Close finishes the JSON document, flushes, and returns the first error
// seen on the underlying writer. A Chrome that never saw a run still
// produces a valid empty trace.
func (c *Chrome) Close() error {
	if !c.begun {
		c.printf(`{"traceEvents":[`)
	}
	c.printf("\n]}\n")
	if c.err != nil {
		return c.err
	}
	return c.w.Flush()
}
