package trace

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestBreakdownSum(t *testing.T) {
	var b Breakdown
	if b.Sum() != 0 {
		t.Errorf("zero Breakdown sums to %d", b.Sum())
	}
	for i := range b {
		b[i] = int64(i + 1)
	}
	want := int64(NumCauses * (NumCauses + 1) / 2)
	if b.Sum() != want {
		t.Errorf("Sum = %d, want %d", b.Sum(), want)
	}
}

func TestBreakdownJSONRoundTrip(t *testing.T) {
	var b Breakdown
	for i := range b {
		b[i] = int64(i * 100)
	}
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	// The object must be keyed by cause names.
	for _, c := range Causes() {
		if !strings.Contains(string(data), `"`+c.String()+`"`) {
			t.Errorf("marshal missing cause %q: %s", c, data)
		}
	}
	var got Breakdown
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got != b {
		t.Errorf("round trip = %v, want %v", got, b)
	}
}

func TestBreakdownJSONRejectsUnknownKey(t *testing.T) {
	var b Breakdown
	if err := json.Unmarshal([]byte(`{"compute":1,"bogus":2}`), &b); err == nil {
		t.Error("unknown stall cause accepted")
	}
	if err := json.Unmarshal([]byte(`[1,2]`), &b); err == nil {
		t.Error("non-object accepted")
	}
}

func TestBreakdownJSONNegative(t *testing.T) {
	b := Breakdown{0: -5}
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var got Breakdown
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got[0] != -5 {
		t.Errorf("negative value round trip = %d", got[0])
	}
}

func TestCauseAndFUStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Causes() {
		s := c.String()
		if s == "" || strings.HasPrefix(s, "cause(") {
			t.Errorf("cause %d has no name", c)
		}
		if seen[s] {
			t.Errorf("duplicate cause name %q", s)
		}
		seen[s] = true
	}
	if len(Causes()) != NumCauses {
		t.Errorf("Causes() returned %d entries", len(Causes()))
	}
	if got := Cause(200).String(); got != "cause(200)" {
		t.Errorf("out-of-range cause = %q", got)
	}
	fus := map[string]bool{}
	for fu := FU(0); fu < NumFUs; fu++ {
		s := fu.String()
		if s == "" || strings.HasPrefix(s, "fu(") {
			t.Errorf("FU %d has no name", fu)
		}
		if fus[s] {
			t.Errorf("duplicate FU name %q", s)
		}
		fus[s] = true
	}
	if got := FU(200).String(); got != "fu(200)" {
		t.Errorf("out-of-range FU = %q", got)
	}
}

// recorder captures every tracer call for assertions.
type recorder struct {
	begins    int
	insts     []InstEvent
	conflicts int
	total     int64
}

func (r *recorder) BeginRun(meta RunMeta)     { r.begins++ }
func (r *recorder) Instruction(ev *InstEvent) { r.insts = append(r.insts, *ev) }
func (r *recorder) BankConflict(spad string, bank int, extraCycles, atCycle int64) {
	r.conflicts++
}
func (r *recorder) EndRun(totalCycles int64) { r.total = totalCycles }

func TestTee(t *testing.T) {
	if Tee() != nil {
		t.Error("Tee() of nothing should be nil")
	}
	if Tee(nil, nil) != nil {
		t.Error("Tee(nil, nil) should be nil")
	}
	one := &recorder{}
	if got := Tee(nil, one, nil); got != Tracer(one) {
		t.Error("Tee with one live sink should return it unchanged")
	}
	a, b := &recorder{}, &recorder{}
	tt := Tee(a, nil, b)
	tt.BeginRun(RunMeta{})
	ev := &InstEvent{Index: 3, Gap: 7}
	tt.Instruction(ev)
	tt.BankConflict("vector-spad", 1, 2, 10)
	tt.EndRun(99)
	for i, r := range []*recorder{a, b} {
		if r.begins != 1 || len(r.insts) != 1 || r.conflicts != 1 || r.total != 99 {
			t.Errorf("sink %d saw begins=%d insts=%d conflicts=%d total=%d",
				i, r.begins, len(r.insts), r.conflicts, r.total)
		}
		if !reflect.DeepEqual(r.insts[0], *ev) {
			t.Errorf("sink %d event = %+v", i, r.insts[0])
		}
	}
}
