package trace

import (
	"fmt"
	"sort"
	"strings"

	"cambricon/internal/core"
)

// Profile is a Tracer that rolls the event stream up into a
// stall-attribution profile: a CPI stack (cycles per cause), per-opcode
// cycle histograms, functional-unit utilization and a bank-conflict
// heatmap. It streams — per-instruction work is a handful of array adds,
// with no allocation after BeginRun — so it can ride along on any run.
//
// The accounting inherits the event stream's invariant: every cycle of
// the run is attributed to exactly one cause, so the profile's stall
// rows sum to the simulated cycle count exactly.
type Profile struct {
	// Label names the run in reports (e.g. the benchmark name).
	Label string

	meta  RunMeta
	total int64
	insts int64

	causes   Breakdown
	fuOps    [NumFUs]int64
	fuBusy   [NumFUs]int64
	branches int64

	dmaBytes  int64
	dmaCycles int64

	lat LatencyWaits

	opCycles [core.NumInstructions + 1]int64
	opStall  [core.NumInstructions + 1]int64
	opCount  [core.NumInstructions + 1]int64

	// conflicts maps scratchpad name -> per-bank extra serialization
	// cycles.
	conflicts     map[string][]int64
	conflictTotal int64

	// faults counts injected-fault events per model kind, in first-seen
	// order (runs see at most a handful of kinds, so a sorted slice beats
	// a map for deterministic reports).
	faults []FaultCount
}

// FaultCount is one fault-model row of the profile.
type FaultCount struct {
	Kind  string `json:"kind"`
	Count int64  `json:"count"`
}

// Fault counts an injected-fault event (FaultObserver extension).
func (p *Profile) Fault(kind string, pc int, atCycle int64) {
	for i := range p.faults {
		if p.faults[i].Kind == kind {
			p.faults[i].Count++
			return
		}
	}
	p.faults = append(p.faults, FaultCount{Kind: kind, Count: 1})
}

// NewProfile builds an empty profile.
func NewProfile() *Profile {
	return &Profile{conflicts: map[string][]int64{}}
}

// BeginRun records the machine parameters.
func (p *Profile) BeginRun(meta RunMeta) { p.meta = meta }

// Instruction folds one committed instruction into the rollup.
func (p *Profile) Instruction(ev *InstEvent) {
	p.insts++
	for i, v := range ev.Attr {
		p.causes[i] += v
	}
	op := int(ev.Op)
	if op >= len(p.opCycles) {
		op = 0 // defensive: unknown opcodes pool at index 0
	}
	p.opCycles[op] += ev.Gap
	p.opStall[op] += ev.Gap - ev.Attr[CauseCompute]
	p.opCount[op]++
	fu := ev.FU
	if fu >= NumFUs {
		fu = FUScalar
	}
	p.fuOps[fu]++
	switch fu {
	case FUVector, FUMatrix:
		// Occupying units: busy for the whole operation.
		p.fuBusy[fu] += ev.ExecCycles
	default:
		// Pipelined units accept one operation per cycle.
		p.fuBusy[fu]++
	}
	if ev.BranchTaken {
		p.branches++
	}
	if ev.IsDMA {
		p.dmaBytes += int64(ev.DMABytes)
		p.dmaCycles += ev.ExecCycles
	}
	p.lat.RegDep += ev.RegWait
	p.lat.ROBFull += ev.ROBWait
	p.lat.MemQueueFull += ev.MemQueueWait
	p.lat.MemDep += ev.MemDepWait
	p.lat.FUBusy += ev.FUBusyWait
}

// BankConflict accumulates the heatmap.
func (p *Profile) BankConflict(spad string, bank int, extraCycles, atCycle int64) {
	if bank < 0 {
		return
	}
	banks := p.conflicts[spad]
	for len(banks) <= bank {
		banks = append(banks, 0)
	}
	banks[bank] += extraCycles
	p.conflicts[spad] = banks
	p.conflictTotal += extraCycles
}

// EndRun records the total cycle count.
func (p *Profile) EndRun(totalCycles int64) { p.total = totalCycles }

// TotalCycles returns the run length seen by the profile.
func (p *Profile) TotalCycles() int64 { return p.total }

// Instructions returns the committed dynamic instruction count.
func (p *Profile) Instructions() int64 { return p.insts }

// Causes returns the accumulated CPI stack.
func (p *Profile) Causes() Breakdown { return p.causes }

// CauseShare is one row of the stall-attribution table.
type CauseShare struct {
	Cause   string  `json:"cause"`
	Cycles  int64   `json:"cycles"`
	Percent float64 `json:"percent"`
}

// OpcodeProfile is one row of the per-opcode cycle histogram.
type OpcodeProfile struct {
	Op          string  `json:"op"`
	Count       int64   `json:"count"`
	Cycles      int64   `json:"cycles"`
	StallCycles int64   `json:"stall_cycles"`
	Percent     float64 `json:"percent"`
}

// FUUtil is one functional unit's utilization.
type FUUtil struct {
	FU          string  `json:"fu"`
	Ops         int64   `json:"ops"`
	BusyCycles  int64   `json:"busy_cycles"`
	Utilization float64 `json:"utilization"`
}

// LatencyWaits sums how long instructions themselves waited at each
// pipeline obstacle. Unlike the attributed CPI stack these overlap
// across in-flight instructions, so they measure per-instruction
// latency pressure, not wall-clock cycles, and can exceed the run
// length on congested queues.
type LatencyWaits struct {
	RegDep       int64 `json:"reg_dep"`
	ROBFull      int64 `json:"rob_full"`
	MemQueueFull int64 `json:"memq_full"`
	MemDep       int64 `json:"mem_dep"`
	FUBusy       int64 `json:"fu_busy"`
}

// SpadConflicts is one scratchpad's bank-conflict heatmap.
type SpadConflicts struct {
	Spad    string  `json:"spad"`
	PerBank []int64 `json:"per_bank_extra_cycles"`
	Total   int64   `json:"total_extra_cycles"`
}

// Report is the materialized, JSON-serializable form of a Profile.
type Report struct {
	Label         string          `json:"label,omitempty"`
	Meta          RunMeta         `json:"machine"`
	Cycles        int64           `json:"cycles"`
	Instructions  int64           `json:"instructions"`
	CPI           float64         `json:"cpi"`
	Branches      int64           `json:"branches_taken"`
	DMABytes      int64           `json:"dma_bytes"`
	DMACycles     int64           `json:"dma_cycles"`
	Stalls        []CauseShare    `json:"stall_attribution"`
	Latency       LatencyWaits    `json:"latency_waits"`
	Opcodes       []OpcodeProfile `json:"opcodes"`
	FUs           []FUUtil        `json:"fu_utilization"`
	BankConflicts []SpadConflicts `json:"bank_conflicts"`
	// Faults lists injected-fault events per model kind; empty (and
	// omitted from JSON) on fault-free runs, so existing reports are
	// unchanged.
	Faults []FaultCount `json:"faults,omitempty"`
}

// Report materializes the rollup. topN bounds the opcode histogram
// (<= 0 means all opcodes seen).
func (p *Profile) Report(topN int) *Report {
	r := &Report{
		Label:        p.Label,
		Meta:         p.meta,
		Cycles:       p.total,
		Instructions: p.insts,
		Branches:     p.branches,
		DMABytes:     p.dmaBytes,
		DMACycles:    p.dmaCycles,
		Latency:      p.lat,
	}
	if p.insts > 0 {
		r.CPI = float64(p.total) / float64(p.insts)
	}
	pct := func(c int64) float64 {
		if p.total == 0 {
			return 0
		}
		return 100 * float64(c) / float64(p.total)
	}
	for i, c := range p.causes {
		r.Stalls = append(r.Stalls, CauseShare{Cause: Cause(i).String(), Cycles: c, Percent: pct(c)})
	}
	sort.SliceStable(r.Stalls, func(i, j int) bool { return r.Stalls[i].Cycles > r.Stalls[j].Cycles })
	for op := 1; op < len(p.opCycles); op++ {
		if p.opCount[op] == 0 {
			continue
		}
		r.Opcodes = append(r.Opcodes, OpcodeProfile{
			Op:          core.Opcode(op).String(),
			Count:       p.opCount[op],
			Cycles:      p.opCycles[op],
			StallCycles: p.opStall[op],
			Percent:     pct(p.opCycles[op]),
		})
	}
	sort.SliceStable(r.Opcodes, func(i, j int) bool {
		if r.Opcodes[i].Cycles != r.Opcodes[j].Cycles {
			return r.Opcodes[i].Cycles > r.Opcodes[j].Cycles
		}
		return r.Opcodes[i].Op < r.Opcodes[j].Op
	})
	if topN > 0 && len(r.Opcodes) > topN {
		r.Opcodes = r.Opcodes[:topN]
	}
	for fu := 0; fu < NumFUs; fu++ {
		util := 0.0
		if p.total > 0 {
			util = float64(p.fuBusy[fu]) / float64(p.total)
		}
		r.FUs = append(r.FUs, FUUtil{
			FU:          FU(fu).String(),
			Ops:         p.fuOps[fu],
			BusyCycles:  p.fuBusy[fu],
			Utilization: util,
		})
	}
	if len(p.faults) > 0 {
		r.Faults = make([]FaultCount, len(p.faults))
		copy(r.Faults, p.faults)
		sort.SliceStable(r.Faults, func(i, j int) bool { return r.Faults[i].Kind < r.Faults[j].Kind })
	}
	names := make([]string, 0, len(p.conflicts))
	for name := range p.conflicts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		banks := p.conflicts[name]
		var total int64
		for _, v := range banks {
			total += v
		}
		out := make([]int64, len(banks))
		copy(out, banks)
		r.BankConflicts = append(r.BankConflicts, SpadConflicts{Spad: name, PerBank: out, Total: total})
	}
	return r
}

// Render formats the report as the `camsim -profile` text table.
func (r *Report) Render() string {
	var b strings.Builder
	label := r.Label
	if label == "" {
		label = "run"
	}
	fmt.Fprintf(&b, "profile: %s  cycles=%d instructions=%d CPI=%.2f branches=%d\n",
		label, r.Cycles, r.Instructions, r.CPI, r.Branches)

	fmt.Fprintf(&b, "stall attribution (every cycle charged to one cause):\n")
	var sum int64
	for _, s := range r.Stalls {
		if s.Cycles == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-10s %12d  %5.1f%%\n", s.Cause, s.Cycles, s.Percent)
		sum += s.Cycles
	}
	fmt.Fprintf(&b, "  %-10s %12d  %5.1f%%\n", "total", sum, 100.0)

	l := r.Latency
	if l.RegDep+l.ROBFull+l.MemQueueFull+l.MemDep+l.FUBusy > 0 {
		fmt.Fprintf(&b, "per-instruction wait totals (overlap across instructions):\n")
		fmt.Fprintf(&b, "  reg-dep %d  rob-full %d  memq-full %d  mem-dep %d  fu-busy %d\n",
			l.RegDep, l.ROBFull, l.MemQueueFull, l.MemDep, l.FUBusy)
	}

	if len(r.Opcodes) > 0 {
		fmt.Fprintf(&b, "per-opcode attributed cycles:\n")
		for _, o := range r.Opcodes {
			avg := float64(o.Cycles) / float64(o.Count)
			fmt.Fprintf(&b, "  %-8s %8d ops %12d cyc  %5.1f%%  avg %7.1f  stall %d\n",
				o.Op, o.Count, o.Cycles, o.Percent, avg, o.StallCycles)
		}
	}

	fmt.Fprintf(&b, "functional units:\n")
	for _, f := range r.FUs {
		if f.Ops == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-8s %8d ops %12d busy  %5.1f%% utilized\n",
			f.FU, f.Ops, f.BusyCycles, 100*f.Utilization)
	}

	if r.DMABytes > 0 {
		fmt.Fprintf(&b, "dma: %d bytes in %d transfer cycles\n", r.DMABytes, r.DMACycles)
	}

	if len(r.BankConflicts) > 0 {
		fmt.Fprintf(&b, "bank-conflict heatmap (extra serialization cycles per bank):\n")
		for _, s := range r.BankConflicts {
			fmt.Fprintf(&b, "  %-12s total %-8d %v\n", s.Spad, s.Total, s.PerBank)
		}
	}

	if len(r.Faults) > 0 {
		fmt.Fprintf(&b, "injected faults:\n")
		for _, f := range r.Faults {
			fmt.Fprintf(&b, "  %-12s %d\n", f.Kind, f.Count)
		}
	}
	return b.String()
}
