package bench

// Tests pinning the request-tracing contract (docs/OBSERVABILITY.md,
// "Request tracing & the flight recorder"): with no recorder on the
// context the warm request path allocates nothing and simulated
// statistics are bit-identical to a recorded run; with a recorder
// attached the span tree covers the documented phases.

import (
	"context"
	"reflect"
	"testing"

	"cambricon/internal/reqtrace"
	"cambricon/internal/sim"
	"cambricon/internal/trace"
)

// TestRunOnceBitIdenticalWithRecorder: attaching a request recorder must
// not perturb the simulation — same Stats, bit for bit, recorded or not.
func TestRunOnceBitIdenticalWithRecorder(t *testing.T) {
	s := NewSuite(7)
	plain, err := s.RunOnce(context.Background(), "MLP")
	if err != nil {
		t.Fatal(err)
	}
	rec := reqtrace.NewRecorder("request", reqtrace.Traceparent{})
	ctx := reqtrace.With(context.Background(), rec)
	traced, err := s.RunOnce(ctx, "MLP")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, traced) {
		t.Fatalf("stats diverge with a recorder attached:\nplain:  %+v\ntraced: %+v", plain, traced)
	}
}

// TestRunOnceSpanTimeline: a recorded warm run produces the documented
// span tree — pool.acquire, snapshot.restore and sim.run under the
// request root — with the sim.run span carrying the cycle counts and
// the full CPI-stack stall attribution, summing (with compute) to
// exactly the cycle total like Stats.CheckConsistency guarantees.
func TestRunOnceSpanTimeline(t *testing.T) {
	s := NewSuite(7)
	// First run pays snapshot preparation; the second is the steady-state
	// warm request whose timeline we assert.
	if _, err := s.RunOnce(context.Background(), "MLP"); err != nil {
		t.Fatal(err)
	}
	rec := reqtrace.NewRecorder("request", reqtrace.Traceparent{})
	ctx := reqtrace.With(context.Background(), rec)
	st, err := s.RunOnce(ctx, "MLP")
	if err != nil {
		t.Fatal(err)
	}
	b := rec.Finish()
	for _, want := range []string{"pool.acquire", "snapshot.restore", "sim.run"} {
		found := false
		for i := range b.Spans {
			if b.Spans[i].Name == want {
				found = true
				if b.Spans[i].Parent != 0 {
					t.Fatalf("span %s parent = %d, want 0 (root)", want, b.Spans[i].Parent)
				}
				if b.Spans[i].End < b.Spans[i].Start {
					t.Fatalf("span %s ends before it starts: %+v", want, b.Spans[i])
				}
			}
		}
		if !found {
			t.Fatalf("span %q missing from warm-run timeline: %+v", want, b.Spans)
		}
	}
	if cycles, ok := b.IntAttr("sim.run", "cycles"); !ok || cycles != st.Cycles {
		t.Fatalf("sim.run cycles attr = %d, %v; want %d", cycles, ok, st.Cycles)
	}
	if bytes, ok := b.IntAttr("snapshot.restore", "bytes"); !ok || bytes <= 0 {
		t.Fatalf("snapshot.restore bytes attr = %d, %v; want > 0", bytes, ok)
	}
	var attributed int64
	for _, c := range trace.Causes() {
		v, ok := b.IntAttr("sim.run", "stall."+c.String())
		if !ok {
			t.Fatalf("sim.run missing stall attr for cause %v", c)
		}
		attributed += v
	}
	if attributed != st.Cycles {
		t.Fatalf("span stall attrs sum to %d, want exactly Cycles=%d", attributed, st.Cycles)
	}
}

// TestWarmRequestPathNoRecorderAllocationFree pins the acceptance
// criterion: the instrumented warm request path — the decode-cache
// lookup with its span hooks, the snapshot restore, and a full decoded
// run — performs zero heap allocations when the context carries no
// recorder, exactly like the tracer/injector/metrics nil contracts.
// (This variant holds one fixed machine; TestWarmPooledRequestPathAllocationFree
// below runs the same loop through acquire/release now that the pool's
// bounded free list is deterministic.)
func TestWarmRequestPathNoRecorderAllocationFree(t *testing.T) {
	s := NewSuite(7)
	prog, err := s.Program(dispatchBenchmark)
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config
	cfg.Seed = s.Seed ^ 0xcafe
	ctx := context.Background()
	snap, err := s.preparedSnapshot(ctx, prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if dp, err := s.decodedProgram(ctx, prog); err != nil || dp == nil {
			t.Fatalf("decodedProgram: %v", err)
		}
		if err := m.Restore(snap); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm request path allocates %v times per run without a recorder, want 0", allocs)
	}
}

// TestWarmPooledRequestPathAllocationFree pins the full serving loop —
// pool acquire, snapshot restore, decoded run, pool release — at zero
// heap allocations per request. The explicit bounded free list makes
// this testable: the machine released at the end of one iteration is
// deterministically the machine acquired at the start of the next
// (sync.Pool, which the free list replaced, shed entries at random and
// could not be pinned this way). Bit-identical stats across iterations
// ride along for free.
func TestWarmPooledRequestPathAllocationFree(t *testing.T) {
	s := NewSuite(7)
	prog, err := s.Program(dispatchBenchmark)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Prime the caches and the pool outside the measured loop: snapshot,
	// decoded program, and one pooled machine.
	m, pooled, err := s.preparedMachine(ctx, prog, s.serveConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	s.releaseMachine(m, pooled)

	cfg := s.serveConfig()
	allocs := testing.AllocsPerRun(10, func() {
		m, pooled, err := s.preparedMachine(ctx, prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run()
		s.releaseMachine(m, pooled)
		if err != nil {
			t.Fatal(err)
		}
		if st != want {
			t.Fatalf("pooled rerun stats diverge:\n got  %+v\n want %+v", st, want)
		}
	})
	if allocs != 0 {
		t.Fatalf("pooled request path allocates %v times per run, want 0", allocs)
	}
	if builds, _ := s.PoolStats(); builds != 1 {
		t.Fatalf("pool built %d machines across the loop, want 1", builds)
	}
}
